(* sagma — command-line front end.

   One-shot demonstration tool: it loads a CSV, sets up a fresh SAGMA
   client, encrypts the table in memory and answers aggregation queries
   over the ciphertexts, reporting timings and the leakage profile.

     sagma query --csv data.csv --schema "salary:int,dept:str" \
                 --sum salary --group-by dept [--where dept=Sales] \
                 [--bucket-size 2] [--threshold 3]

     sagma inspect --csv data.csv --schema ... --column dept
         histogram, bucket exposure under PRF vs optimal partitioning,
         and the dummy-row budget to flatten the leakage

     sagma storage --l 4 --t 3 --k 2 --rows 1000 --domain 12
         the Table 10 / Figure 8 storage comparison at given parameters

     sagma demo
         the paper's worked example (Tables 1-7)                         *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Csv = Sagma_db.Csv
module Drbg = Sagma_crypto.Drbg
open Sagma
open Cmdliner

let parse_schema (spec : string) : Table.schema =
  List.map
    (fun field ->
      match String.split_on_char ':' (String.trim field) with
      | [ name; "int" ] -> { Table.name; ty = Value.TInt }
      | [ name; "str" ] -> { Table.name; ty = Value.TStr }
      | _ -> invalid_arg (Printf.sprintf "bad schema field %S (want name:int|str)" field))
    (String.split_on_char ',' spec)

let load_table ~csv ~schema =
  let ic = open_in csv in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  let schema = parse_schema schema in
  (schema, Csv.parse ~schema contents)

let parse_where (t : Table.t) (clauses : string list) : (string * Value.t) list =
  List.map
    (fun clause ->
      match String.index_opt clause '=' with
      | None -> invalid_arg (Printf.sprintf "bad --where %S (want col=value)" clause)
      | Some i ->
        let col = String.sub clause 0 i in
        let raw = String.sub clause (i + 1) (String.length clause - i - 1) in
        (col, Value.parse (Table.column_ty t col) raw))
    clauses

(* --- query ----------------------------------------------------------------- *)

let run_query csv schema sql sum count_flag avg group_by where bucket_size threshold seed metrics
    explain profile =
  if metrics || explain || profile then Sagma_obs.Metrics.set_enabled true;
  if profile then Sagma_obs.Prof.start ();
  let _, table = load_table ~csv ~schema in
  let q =
    match sql with
    | Some statement ->
      (* Full SQL front end, including BETWEEN range filters. *)
      Sagma_db.Sql.parse_query statement
    | None ->
      let aggregate =
        match (sum, count_flag, avg) with
        | Some c, false, None -> Query.Sum c
        | None, true, None -> Query.Count
        | None, false, Some c -> Query.Avg c
        | None, false, None -> Query.Count
        | _ -> invalid_arg "choose exactly one of --sum/--count/--avg"
      in
      if group_by = [] then invalid_arg "--group-by is required without --sql";
      Query.make ~where:(parse_where table where) ~group_by aggregate
  in
  let group_by = q.Query.group_by in
  let where = q.Query.where in
  let value_columns =
    match Query.value_column q.Query.aggregate with
    | Some c -> [ c ]
    | None -> begin
      (* COUNT-only query: pick any int column as a placeholder value. *)
      match
        List.find_opt
          (fun c ->
            Table.column_ty table c.Table.name = Value.TInt
            && not (List.mem c.Table.name group_by))
          (Table.schema table)
      with
      | Some c -> [ c.Table.name ]
      | None -> invalid_arg "no int column available as value column"
    end
  in
  let config =
    Config.make ~bucket_size ~max_group_attrs:(min threshold (List.length group_by))
      ~filter_columns:(List.map fst where)
      ~range_filter_columns:(List.map (fun (c, _, _) -> c) q.Query.ranges)
      ~value_columns ~group_columns:group_by ()
  in
  let domains = List.map (fun col -> (col, Table.distinct table col)) group_by in
  let drbg = Drbg.create seed in
  let t0 = Unix.gettimeofday () in
  let client = Scheme.setup config ~domains drbg in
  let t1 = Unix.gettimeofday () in
  let enc = Scheme.encrypt_table client table in
  let t2 = Unix.gettimeofday () in
  (* The query pipeline proper, each phase under its span. With
     --explain the whole thing runs inside a Trace request context, so
     the spans become the request's phase timings and the operation
     counters are captured into its cost block. *)
  let run_phases () =
    let tok = Sagma_obs.Trace.with_span "token" (fun () -> Scheme.token client q) in
    let agg = Sagma_obs.Trace.with_span "aggregate" (fun () -> Scheme.aggregate enc tok) in
    let t3 = Unix.gettimeofday () in
    let results =
      Sagma_obs.Trace.with_span "decrypt" (fun () ->
          Scheme.decrypt client tok agg ~total_rows:(Array.length enc.Scheme.rows))
    in
    (tok, t3, results)
  in
  let (tok, t3, results), request_trace =
    if explain then
      let v, rt = Sagma_obs.Trace.with_request_full run_phases in
      (v, Some rt)
    else (run_phases (), None)
  in
  let t4 = Unix.gettimeofday () in
  Printf.printf "%s\n" (Query.to_sql q);
  Printf.printf "%-14s | %s\n" (Query.aggregate_name q.Query.aggregate) (String.concat " | " group_by);
  List.iter
    (fun r ->
      Printf.printf "%-14g | %s\n" (Scheme.aggregate_value q r)
        (String.concat " | " (List.map Value.to_string r.Scheme.group)))
    results;
  Printf.printf
    "\nrows: %d   setup: %.2fs   encrypt: %.2fs   server aggregate: %.2fs   decrypt: %.2fs\n"
    (Table.row_count table) (t1 -. t0) (t2 -. t1) (t3 -. t2) (t4 -. t3);
  let leak = Leakage.profile enc [ tok ] in
  Printf.printf "leakage: %d SSE index entries; query touched %d bucket/filter tokens\n"
    leak.Leakage.index_size
    (List.length (List.concat_map (fun ql -> ql.Leakage.observations) leak.Leakage.queries));
  if metrics then begin
    print_endline "\n-- operation counters --";
    Format.printf "%a@." Sagma_obs.Metrics.pp_snapshot (Sagma_obs.Metrics.snapshot ());
    print_endline "-- query trace --";
    List.iter (Format.printf "%a@." Sagma_obs.Trace.pp) (Sagma_obs.Trace.roots ())
  end;
  match request_trace with
  | None -> ()
  | Some rt ->
    let module Trace = Sagma_obs.Trace in
    Printf.printf "\n-- explain (trace %s) --\n" rt.Trace.r_id;
    List.iter
      (fun (phase, ms) -> Printf.printf "  %-24s %10.3f ms\n" phase ms)
      (Trace.phase_timings rt.Trace.r_root);
    List.iter
      (fun (k, v) -> if v > 0 then Printf.printf "  cost.%-19s %10d\n" k v)
      (Trace.cost_fields rt.Trace.r_cost);
    (* The gc block: per-request Gc.quick_stat differential. heap_words
       is a size, not a delta, so it always prints. *)
    List.iter
      (fun (k, v) -> if v <> 0 then Printf.printf "  gc.%-21s %10d\n" k v)
      (Trace.gc_fields rt.Trace.r_gc);
    (match rt.Trace.r_alloc with
     | [] -> ()
     | sites ->
       print_endline "  -- allocation sites (words) --";
       List.iteri
         (fun i (span, words) -> if i < 10 then Printf.printf "  alloc.%-19s %10d\n" span words)
         sites)

(* --- inspect --------------------------------------------------------------- *)

let run_inspect csv schema column bucket_size =
  let _, table = load_table ~csv ~schema in
  let hist = Bucketing.histogram table column in
  Printf.printf "histogram of %s (%d distinct values, %d rows):\n" column (List.length hist)
    (Table.row_count table);
  List.iter (fun (v, c) -> Printf.printf "  %-20s %d\n" (Value.to_string v) c) hist;
  let domain = List.map fst hist in
  let prf = Mapping.make Mapping.Prf_random "inspect" domain ~bucket_size in
  let opt = Bucketing.optimal_mapping hist ~bucket_size in
  Printf.printf "\nexposure (B=%d): prf=%.4f optimal=%.4f\n" bucket_size
    (Bucketing.exposure prf hist) (Bucketing.exposure opt hist);
  let plan = Bucketing.dummy_plan_for_column opt hist in
  Printf.printf "dummy rows to flatten optimal buckets: %d\n"
    (List.fold_left (fun acc (_, k) -> acc + k) 0 plan)

(* --- storage --------------------------------------------------------------- *)

let run_storage l t k rows n b d =
  Printf.printf "server storage in ciphertexts (l=%d t=%d k=%d r=%d n=%d B=%d |D|=%d):\n" l t k
    rows n b d;
  Printf.printf "  pre-computed: %d\n" (Storage.precomputed_server ~l ~t ~k ~n ~d);
  Printf.printf "  seabed:       %d\n" (Storage.seabed_server ~l ~t ~k ~r:rows ~b);
  Printf.printf "  sagma:        %d  (m(l,t) = %d monomials/row)\n"
    (Storage.sagma_server ~l ~t ~k ~r:rows ~b)
    (Storage.monomial_count ~l ~t ~b);
  Printf.printf "client operations per query: pre-computed=%d seabed(rho=50)=%d sagma=%d\n"
    Storage.precomputed_client
    (Storage.seabed_client ~rho:50 ~t ~d)
    (Storage.sagma_client ~t ~d)

(* --- demo ------------------------------------------------------------------- *)

let run_demo () =
  let str s = Value.Str s and vi i = Value.Int i in
  let schema : Table.schema =
    [ { Table.name = "ID"; ty = Value.TInt }; { Table.name = "Salary"; ty = Value.TInt };
      { Table.name = "Gender"; ty = Value.TStr }; { Table.name = "Name"; ty = Value.TStr };
      { Table.name = "Department"; ty = Value.TStr } ]
  in
  let table =
    Table.of_rows schema
      [ [| vi 1; vi 1000; str "male"; str "Henry"; str "Sales" |];
        [| vi 2; vi 5000; str "female"; str "Jessica"; str "Sales" |];
        [| vi 3; vi 1500; str "female"; str "Alice"; str "Finance" |];
        [| vi 4; vi 3000; str "male"; str "Bob"; str "Sales" |];
        [| vi 5; vi 2000; str "male"; str "Paul"; str "Facility" |] ]
  in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~filter_columns:[ "Department" ]
      ~value_columns:[ "Salary" ] ~group_columns:[ "Gender"; "Department" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("Gender", [ str "male"; str "female" ]);
          ("Department", [ str "Sales"; str "Finance"; str "Facility" ]) ]
      (Drbg.create "cli-demo")
  in
  let enc = Scheme.encrypt_table client table in
  List.iter
    (fun q ->
      Printf.printf "%s\n" (Query.to_sql q);
      List.iter
        (fun r ->
          Printf.printf "  %-10g %s\n" (Scheme.aggregate_value q r)
            (String.concat " | " (List.map Value.to_string r.Scheme.group)))
        (Scheme.query client enc q);
      print_newline ())
    [ Query.make ~group_by:[ "Gender"; "Department" ] (Query.Sum "Salary");
      Query.make ~where:[ ("Department", str "Sales") ] ~group_by:[ "Gender"; "Department" ]
        (Query.Sum "Salary");
      Query.make ~group_by:[ "Department" ] Query.Count ]

(* --- remote mode (against bin/sagma_server.ml) ------------------------------- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Encrypt a CSV locally, persist the secret client state to [key_file]
   (private!), and upload the ciphertexts to the server. *)
let run_remote_upload csv schema group_by value_cols filter_cols bucket_size threshold seed port
    name key_file =
  let _, table = load_table ~csv ~schema in
  let config =
    Config.make ~bucket_size ~max_group_attrs:threshold ~filter_columns:filter_cols
      ~value_columns:value_cols ~group_columns:group_by ()
  in
  let domains = List.map (fun col -> (col, Table.distinct table col)) group_by in
  let client = Scheme.setup config ~domains (Drbg.create seed) in
  let enc = Scheme.encrypt_table client table in
  write_file key_file (Serialize.client_to_string client);
  let fd = Sagma_protocol.Transport.connect ~port () in
  let resp =
    Sagma_protocol.Transport.call fd (Sagma_protocol.Protocol.Upload { name; table = enc })
  in
  Unix.close fd;
  (match resp with
   | Sagma_protocol.Protocol.Ack ->
     Printf.printf "uploaded %d encrypted rows as %S; client key saved to %s\n"
       (Table.row_count table) name key_file
   | Sagma_protocol.Protocol.Failed { code; message } ->
     failwith (Printf.sprintf "%s: %s" (Sagma_protocol.Protocol.error_code_to_string code) message)
   | _ -> failwith "unexpected response")

(* Query a previously uploaded table: only the token goes up, only
   ciphertext aggregates come back. *)
let run_remote_query sum count_flag avg group_by where_raw port name key_file seed explain =
  let client = Serialize.client_of_string ~drbg:(Drbg.create (seed ^ "-session")) (read_file key_file) in
  let aggregate =
    match (sum, count_flag, avg) with
    | Some c, false, None -> Query.Sum c
    | None, _, None -> Query.Count
    | None, false, Some c -> Query.Avg c
    | _ -> invalid_arg "choose exactly one of --sum/--count/--avg"
  in
  let where =
    List.map
      (fun clause ->
        match String.index_opt clause '=' with
        | None -> invalid_arg (Printf.sprintf "bad --where %S" clause)
        | Some i ->
          let col = String.sub clause 0 i in
          let raw = String.sub clause (i + 1) (String.length clause - i - 1) in
          (* Filter values are parsed as strings unless they look numeric. *)
          (col, (match int_of_string_opt raw with Some v -> Value.Int v | None -> Value.Str raw)))
      where_raw
  in
  let q = Query.make ~where ~group_by aggregate in
  let tok = Scheme.token client q in
  let fd = Sagma_protocol.Transport.connect ~port () in
  let listing = Sagma_protocol.Transport.call fd Sagma_protocol.Protocol.List_tables in
  let total_rows =
    match listing with
    | Sagma_protocol.Protocol.Tables ts ->
      (match List.assoc_opt name ts with
       | Some rows -> rows
       | None -> failwith (Printf.sprintf "no such remote table %S" name))
    | _ -> failwith "unexpected response"
  in
  (* --explain sets the v4 sampling flag on the request, forcing the
     server to trace it and return an EXPLAIN trailer. *)
  let trace =
    if explain then Some { Sagma_protocol.Protocol.tc_id = None; tc_sampled = true } else None
  in
  let resp, wire_explain =
    Sagma_protocol.Transport.call_x ?trace fd
      (Sagma_protocol.Protocol.Aggregate { name; token = tok })
  in
  Unix.close fd;
  match resp with
  | Sagma_protocol.Protocol.Aggregates agg ->
    let results = Scheme.decrypt client tok agg ~total_rows in
    Printf.printf "%s\n" (Query.to_sql q);
    List.iter
      (fun r ->
        Printf.printf "%-14g | %s\n" (Scheme.aggregate_value q r)
          (String.concat " | " (List.map Value.to_string r.Scheme.group)))
      results;
    (* The server may attach a trailer unasked (e.g. --trace-sample 1
       samples every request); only print it when the user wanted it. *)
    (match wire_explain with
     | _ when not explain -> ()
     | None -> print_endline "\n(no EXPLAIN trailer: server not collecting metrics?)"
     | Some x ->
       let module Trace = Sagma_obs.Trace in
       Printf.printf "\n-- explain (server trace %s) --\n" x.Sagma_protocol.Protocol.x_id;
       List.iter
         (fun (phase, ms) -> Printf.printf "  %-24s %10.3f ms\n" phase ms)
         x.Sagma_protocol.Protocol.x_timings;
       List.iter
         (fun (k, v) -> if v > 0 then Printf.printf "  cost.%-19s %10d\n" k v)
         (Trace.cost_fields x.Sagma_protocol.Protocol.x_cost);
       (* v5 servers attach the per-request GC differential. *)
       match x.Sagma_protocol.Protocol.x_gc with
       | None -> ()
       | Some gc ->
         List.iter
           (fun (k, v) -> if v <> 0 then Printf.printf "  gc.%-21s %10d\n" k v)
           (Trace.gc_fields gc))
  | Sagma_protocol.Protocol.Failed { code; message } ->
    failwith (Printf.sprintf "%s: %s" (Sagma_protocol.Protocol.error_code_to_string code) message)
  | _ -> failwith "unexpected response"

(* Fetch the server's metrics snapshot + audit summary over the v2 Stats
   RPC. Rendered human-readable by default; --prometheus emits the
   text-format exposition (what a scrape endpoint would serve), --json
   the structured snapshot. *)
(* The v5 gc section rendered as the conventional Prometheus
   process-level families. *)
let gc_raw_samples (g : Sagma_protocol.Protocol.gc_stats) : (string * float) list =
  [ ("ocaml_gc_minor_words_total", g.Sagma_protocol.Protocol.gs_minor_words);
    ("ocaml_gc_promoted_words_total", g.Sagma_protocol.Protocol.gs_promoted_words);
    ("ocaml_gc_major_words_total", g.Sagma_protocol.Protocol.gs_major_words);
    ("ocaml_gc_minor_collections_total",
     float_of_int g.Sagma_protocol.Protocol.gs_minor_collections);
    ("ocaml_gc_major_collections_total",
     float_of_int g.Sagma_protocol.Protocol.gs_major_collections);
    ("ocaml_gc_compactions_total", float_of_int g.Sagma_protocol.Protocol.gs_compactions);
    ("ocaml_gc_heap_words", float_of_int g.Sagma_protocol.Protocol.gs_heap_words);
    ("ocaml_gc_top_heap_words", float_of_int g.Sagma_protocol.Protocol.gs_top_heap_words) ]

(* Split a federated series name into its base and the shard id its
   {shard="i"} label carries (None for unlabeled fleet aggregates). *)
let split_shard name =
  match String.index_opt name '{' with
  | None -> (name, None)
  | Some i ->
    let base = String.sub name 0 i in
    let rest = String.sub name i (String.length name - i) in
    let pfx = "{shard=\"" in
    let shard =
      if String.length rest > String.length pfx && String.sub rest 0 (String.length pfx) = pfx
      then
        let j = String.length pfx in
        match String.index_from_opt rest j '"' with
        | Some k -> int_of_string_opt (String.sub rest j (k - j))
        | None -> None
      else None
    in
    (base, shard)

(* The per-shard column view of a coordinator's federated snapshot:
   every series that arrived labeled {shard="i"} becomes a column next
   to the unlabeled fleet aggregate. *)
let render_cluster (r : Sagma_protocol.Protocol.stats_report) =
  let module P = Sagma_protocol.Protocol in
  let module M = Sagma_obs.Metrics in
  let tbl = Hashtbl.create 64 in
  let shard_ids = ref [] in
  let note (base, sh) v =
    match sh with
    | None -> ()
    | Some i ->
      if not (List.mem i !shard_ids) then shard_ids := i :: !shard_ids;
      Hashtbl.replace tbl (base, i) v
  in
  List.iter (fun (n, v) -> note (split_shard n) v) r.P.sr_snapshot.M.counters;
  List.iter (fun (n, v) -> note (split_shard n) v) r.P.sr_snapshot.M.gauges;
  let shards = List.sort compare !shard_ids in
  if shards = [] then
    print_endline
      "no per-shard series in this snapshot (expected a coordinator running with --metrics)"
  else begin
    (match r.P.sr_topology with
     | Some t when t.P.tp_role = "coordinator" ->
       Printf.printf "coordinator over %d shards (%s)\n\n" t.P.tp_shard_count
         (String.concat ", " t.P.tp_shards)
     | _ -> ());
    let bases =
      List.sort_uniq compare (Hashtbl.fold (fun (b, _) _ acc -> b :: acc) tbl [])
    in
    Printf.printf "%-34s %12s" "series" "fleet";
    List.iter (fun i -> Printf.printf " %12s" (Printf.sprintf "shard %d" i)) shards;
    print_newline ();
    List.iter
      (fun base ->
        let fleet =
          match List.assoc_opt base r.P.sr_snapshot.M.counters with
          | Some v -> string_of_int v
          | None -> (
            match List.assoc_opt base r.P.sr_snapshot.M.gauges with
            | Some v -> string_of_int v
            | None -> "-")
        in
        Printf.printf "%-34s %12s" base fleet;
        List.iter
          (fun i ->
            match Hashtbl.find_opt tbl (base, i) with
            | Some v -> Printf.printf " %12d" v
            | None -> Printf.printf " %12s" "-")
          shards;
        print_newline ())
      bases;
    (* Latency: the per-shard histograms next to the fleet-merged one. *)
    let hists = Hashtbl.create 16 in
    List.iter
      (fun (n, h) ->
        match split_shard n with
        | base, Some i -> Hashtbl.replace hists (base, i) h.M.h_p95
        | _ -> ())
      r.P.sr_snapshot.M.histograms;
    let hbases =
      List.sort_uniq compare (Hashtbl.fold (fun (b, _) _ acc -> b :: acc) hists [])
    in
    if hbases <> [] then begin
      Printf.printf "\n%-34s %12s" "p95 (ms)" "fleet";
      List.iter (fun i -> Printf.printf " %12s" (Printf.sprintf "shard %d" i)) shards;
      print_newline ();
      List.iter
        (fun base ->
          let fleet =
            match List.assoc_opt base r.P.sr_snapshot.M.histograms with
            | Some h -> Printf.sprintf "%.1f" h.M.h_p95
            | None -> "-"
          in
          Printf.printf "%-34s %12s" base fleet;
          List.iter
            (fun i ->
              match Hashtbl.find_opt hists (base, i) with
              | Some p -> Printf.printf " %12.1f" p
              | None -> Printf.printf " %12s" "-")
            shards;
          print_newline ())
        hbases
    end
  end

let run_stats port prometheus json cluster =
  let fd = Sagma_protocol.Transport.connect ~port () in
  let resp = Sagma_protocol.Transport.call fd Sagma_protocol.Protocol.Stats in
  Unix.close fd;
  match resp with
  | Sagma_protocol.Protocol.Stats_report
      ({ sr_snapshot; sr_audit; sr_uptime_s; sr_start_time; sr_gc; sr_topology } as report) ->
    if prometheus then
      (* The exposition carries the v4 uptime and the v5 heap/GC state
         rather than dropping them on the floor. *)
      print_string
        (Sagma_obs.Export.prometheus ~uptime_s:sr_uptime_s
           ~raw:(match sr_gc with Some g -> gc_raw_samples g | None -> [])
           sr_snapshot)
    else if json then
      (* One object carrying the whole report: snapshot, uptime, the v5
         gc block, the audit summary and the v6 topology — not just the
         bare snapshot. *)
      print_endline (Sagma_protocol.Protocol.stats_report_to_json report)
    else if cluster then render_cluster report
    else begin
      (if sr_snapshot.Sagma_obs.Metrics.counters = []
          && sr_snapshot.Sagma_obs.Metrics.histograms = []
       then print_endline "no metrics recorded (is the server running with --metrics?)"
       else Format.printf "%a@." Sagma_obs.Metrics.pp_snapshot sr_snapshot);
      (* Uptime arrived with protocol v4; a v2/v3 server decodes to 0. *)
      if sr_start_time > 0. then begin
        let t = Unix.localtime sr_start_time in
        Printf.printf "uptime: %.1fs (started %04d-%02d-%02d %02d:%02d:%02d)\n" sr_uptime_s
          (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour
          t.Unix.tm_min t.Unix.tm_sec
      end;
      (* The heap line arrived with protocol v5; older servers send no
         gc section. *)
      (match sr_gc with
       | Some g ->
         let mib words = float_of_int words *. float_of_int (Sys.word_size / 8) /. 1048576. in
         Printf.printf "heap: %.1f MiB (peak %.1f MiB) minor_gcs=%d major_gcs=%d\n"
           (mib g.Sagma_protocol.Protocol.gs_heap_words)
           (mib g.Sagma_protocol.Protocol.gs_top_heap_words)
           g.Sagma_protocol.Protocol.gs_minor_collections
           g.Sagma_protocol.Protocol.gs_major_collections
       | None -> ());
      (* The topology line arrived with protocol v6; pre-sharding
         servers send none. *)
      (match sr_topology with
       | Some t ->
         (match t.Sagma_protocol.Protocol.tp_role with
          | "shard" ->
            Printf.printf "topology: shard %d/%d\n" t.Sagma_protocol.Protocol.tp_shard_index
              t.Sagma_protocol.Protocol.tp_shard_count
          | "coordinator" ->
            Printf.printf "topology: coordinator over %d shards (%s)\n"
              t.Sagma_protocol.Protocol.tp_shard_count
              (String.concat ", " t.Sagma_protocol.Protocol.tp_shards)
          | role -> Printf.printf "topology: %s\n" role)
       | None -> ());
      Printf.printf "audit: requests=%d probes=%d checks=%d failures=%d\n"
        sr_audit.Sagma_obs.Audit.s_requests sr_audit.Sagma_obs.Audit.s_probes
        sr_audit.Sagma_obs.Audit.s_checks_run sr_audit.Sagma_obs.Audit.s_check_failures
    end
  | Sagma_protocol.Protocol.Failed { code; message } ->
    failwith (Printf.sprintf "%s: %s" (Sagma_protocol.Protocol.error_code_to_string code) message)
  | _ -> failwith "unexpected response"

(* --- top: live resource dashboard -------------------------------------------

   Polls the Stats RPC at an interval and renders the operational vitals
   as rates: req/s and pairings/s from counter deltas between polls, p95
   latency from the proto.request_ms histogram, pool queue depth and
   in-flight connections from gauges, shed connections from
   transport.rejected, heap size from the v5 gc section. --once prints a
   single frame (rates averaged over the server's uptime) and exits —
   the scripts/CI mode. *)

let fetch_stats port : Sagma_protocol.Protocol.stats_report =
  let fd = Sagma_protocol.Transport.connect ~port () in
  let resp = Sagma_protocol.Transport.call fd Sagma_protocol.Protocol.Stats in
  Unix.close fd;
  match resp with
  | Sagma_protocol.Protocol.Stats_report r -> r
  | Sagma_protocol.Protocol.Failed { code; message } ->
    failwith (Printf.sprintf "%s: %s" (Sagma_protocol.Protocol.error_code_to_string code) message)
  | _ -> failwith "unexpected response"

let run_top port interval once =
  let module P = Sagma_protocol.Protocol in
  let module M = Sagma_obs.Metrics in
  let counter (r : P.stats_report) name =
    Option.value ~default:0 (List.assoc_opt name r.P.sr_snapshot.M.counters)
  in
  let gauge (r : P.stats_report) name = List.assoc_opt name r.P.sr_snapshot.M.gauges in
  let render ~clear ~(prev : (P.stats_report * float) option) (r : P.stats_report) =
    (* Rates: deltas between polls once we have two frames, otherwise
       (and in --once mode) averages over the server's whole uptime. *)
    let rate name =
      match prev with
      | Some (p, dt) when dt > 0. -> float_of_int (counter r name - counter p name) /. dt
      | _ -> if r.P.sr_uptime_s > 0. then float_of_int (counter r name) /. r.P.sr_uptime_s else 0.
    in
    let p95 =
      match List.assoc_opt "proto.request_ms" r.P.sr_snapshot.M.histograms with
      | Some h -> Printf.sprintf "%.1f ms" h.M.h_p95
      | None -> "-"
    in
    let gauge_str name =
      match gauge r name with Some v -> string_of_int v | None -> "-"
    in
    let heap =
      match r.P.sr_gc with
      | Some g ->
        Printf.sprintf "%.1f MiB"
          (float_of_int g.P.gs_heap_words *. float_of_int (Sys.word_size / 8) /. 1048576.)
      | None -> "-"
    in
    if clear then print_string "\027[2J\027[H";
    Printf.printf "sagma top — 127.0.0.1:%d — uptime %.1fs%s\n\n" port r.P.sr_uptime_s
      (match prev with None -> " (rates averaged over uptime)" | Some _ -> "");
    Printf.printf "  %-22s %10.1f\n" "req/s" (rate "proto.requests");
    Printf.printf "  %-22s %10s\n" "p95 latency" p95;
    Printf.printf "  %-22s %10.1f\n" "pairings/s" (rate "pairing.pairings");
    Printf.printf "  %-22s %10s\n" "pool queue depth" (gauge_str "pool.queue_depth");
    Printf.printf "  %-22s %10s\n" "inflight connections" (gauge_str "transport.inflight");
    Printf.printf "  %-22s %10d\n" "shed connections" (counter r "transport.rejected");
    Printf.printf "  %-22s %10d\n" "requests total" (counter r "proto.requests");
    Printf.printf "  %-22s %10d\n" "requests failed" (counter r "proto.requests_failed");
    Printf.printf "  %-22s %10s\n" "heap" heap;
    (* Against a coordinator, the federated snapshot carries each
       shard's series labeled {shard="i"}: render them as columns. *)
    let shard_ids =
      List.filter_map
        (fun (n, _) -> match split_shard n with _, Some i -> Some i | _ -> None)
        r.P.sr_snapshot.M.counters
      |> List.sort_uniq compare
    in
    if shard_ids <> [] then begin
      Printf.printf "\n  %-8s %10s %10s %10s %12s\n" "shard" "req/s" "requests" "failed"
        "p95 (ms)";
      List.iter
        (fun i ->
          let l name = Sagma_obs.Export.labeled name [ ("shard", string_of_int i) ] in
          let p95 =
            match List.assoc_opt (l "proto.request_ms") r.P.sr_snapshot.M.histograms with
            | Some h -> Printf.sprintf "%.1f" h.M.h_p95
            | None -> "-"
          in
          Printf.printf "  %-8d %10.1f %10d %10d %12s\n" i
            (rate (l "proto.requests"))
            (counter r (l "proto.requests"))
            (counter r (l "proto.requests_failed"))
            p95)
        shard_ids
    end;
    print_string "";
    flush stdout
  in
  if once then render ~clear:false ~prev:None (fetch_stats port)
  else begin
    let prev = ref None in
    while true do
      let t0 = Unix.gettimeofday () in
      let r = fetch_stats port in
      render ~clear:true ~prev:!prev r;
      Unix.sleepf interval;
      prev := Some (r, Unix.gettimeofday () -. t0)
    done
  end

(* Pull the server's completed-trace ring (v4 Traces RPC) and export it
   as Chrome trace-event JSON — loadable in chrome://tracing or
   Perfetto. "-" writes to stdout. *)
let run_trace port out =
  let fd = Sagma_protocol.Transport.connect ~port () in
  let resp = Sagma_protocol.Transport.call fd Sagma_protocol.Protocol.Traces in
  Unix.close fd;
  match resp with
  | Sagma_protocol.Protocol.Trace_dump traces ->
    let json = Sagma_obs.Trace.chrome_json traces in
    if out = "-" then print_endline json
    else begin
      write_file out json;
      Printf.printf "wrote %d trace(s) to %s (chrome://tracing format)\n"
        (List.length traces) out
    end
  | Sagma_protocol.Protocol.Failed { code; message } ->
    failwith (Printf.sprintf "%s: %s" (Sagma_protocol.Protocol.error_code_to_string code) message)
  | _ -> failwith "unexpected response"

(* --- health: fleet health & alerting (protocol v7) ---------------------------

   One Health RPC: status word, uptime, currently-firing watchdog
   alerts, and — against a coordinator — the per-shard reachability
   block the background prober maintains. The command exits non-zero
   while the target is anything but a clean "ok", so scripts and CI can
   gate on it. --watch re-polls and redraws like top. *)

let fetch_health port : Sagma_protocol.Protocol.health_report =
  let fd = Sagma_protocol.Transport.connect ~port () in
  let resp = Sagma_protocol.Transport.call fd Sagma_protocol.Protocol.Health in
  Unix.close fd;
  match resp with
  | Sagma_protocol.Protocol.Health_report r -> r
  | Sagma_protocol.Protocol.Failed { code = Sagma_protocol.Protocol.Version_unsupported; _ } ->
    failwith "server does not speak protocol v7 (no Health RPC; upgrade the server)"
  | Sagma_protocol.Protocol.Failed { code; message } ->
    failwith (Printf.sprintf "%s: %s" (Sagma_protocol.Protocol.error_code_to_string code) message)
  | _ -> failwith "unexpected response"

let health_ok (r : Sagma_protocol.Protocol.health_report) =
  r.Sagma_protocol.Protocol.hr_status = "ok" && r.Sagma_protocol.Protocol.hr_alerts = []

let render_health port (r : Sagma_protocol.Protocol.health_report) =
  let module P = Sagma_protocol.Protocol in
  let module W = Sagma_obs.Watchdog in
  Printf.printf "127.0.0.1:%d: %s (uptime %.1fs)\n" port r.P.hr_status r.P.hr_uptime_s;
  (match r.P.hr_alerts with
   | [] -> ()
   | alerts ->
     print_endline "alerts:";
     List.iter
       (fun a ->
         Printf.printf "  %-24s firing %.1fs  value %g vs threshold %g  %s\n" a.W.a_rule
           (max 0. (Unix.gettimeofday () -. a.W.a_since))
           a.W.a_value a.W.a_threshold a.W.a_message)
       alerts);
  match r.P.hr_shards with
  | [] -> ()
  | shards ->
    print_endline "shards:";
    List.iter
      (fun s ->
        Printf.printf "  %d %-22s %-4s v%d  rtt %6.1fms  failures %d%s\n" s.P.shc_index
          s.P.shc_endpoint
          (if s.P.shc_reachable then "up" else "DOWN")
          s.P.shc_version s.P.shc_rtt_ms s.P.shc_failures
          (if s.P.shc_last_error = "" then ""
           else Printf.sprintf "  last error: %s" s.P.shc_last_error))
      shards

let run_health port json watch interval =
  if watch then
    while true do
      let r = fetch_health port in
      print_string "\027[2J\027[H";
      render_health port r;
      flush stdout;
      Unix.sleepf interval
    done
  else begin
    let r = fetch_health port in
    if json then print_endline (Sagma_protocol.Protocol.health_report_to_json r)
    else render_health port r;
    if not (health_ok r) then exit 1
  end

(* --- cmdliner wiring ----------------------------------------------------------- *)

let csv_arg = Arg.(required & opt (some file) None & info [ "csv" ] ~doc:"Input CSV file.")
let schema_arg =
  Arg.(required & opt (some string) None & info [ "schema" ] ~doc:"Schema, e.g. salary:int,dept:str.")

let query_cmd =
  let sql =
    Arg.(value & opt (some string) None
         & info [ "sql" ] ~doc:"Full SQL statement (supports WHERE ... BETWEEN).")
  in
  let sum = Arg.(value & opt (some string) None & info [ "sum" ] ~doc:"SUM this column.") in
  let count = Arg.(value & flag & info [ "count" ] ~doc:"COUNT rows per group.") in
  let avg = Arg.(value & opt (some string) None & info [ "avg" ] ~doc:"AVG this column.") in
  let group_by =
    Arg.(value & opt (list string) [] & info [ "group-by" ] ~doc:"Grouping columns.")
  in
  let where =
    Arg.(value & opt_all string [] & info [ "where" ] ~doc:"Equality filter col=value (repeatable).")
  in
  let bucket = Arg.(value & opt int 2 & info [ "bucket-size" ] ~doc:"Bucket size B.") in
  let threshold = Arg.(value & opt int 3 & info [ "threshold" ] ~doc:"Max grouping attributes t.") in
  let seed = Arg.(value & opt string "sagma-cli" & info [ "seed" ] ~doc:"DRBG seed.") in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect and print operation counters and a phase trace for the query.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Run the query under a trace context and print per-phase timings plus the \
                   EXPLAIN cost block (pairings, Miller-loop steps, dlog giant steps, ...) \
                   and the per-request gc block (minor/major words, collections, heap growth).")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Start the sampling resource profiler for the query: with --explain, the \
                   EXPLAIN output gains a span-attributed allocation-site table.")
  in
  Cmd.v (Cmd.info "query" ~doc:"Encrypt a CSV and answer an aggregation query over ciphertexts.")
    Term.(
      const run_query $ csv_arg $ schema_arg $ sql $ sum $ count $ avg $ group_by $ where
      $ bucket $ threshold $ seed $ metrics $ explain $ profile)

let inspect_cmd =
  let column = Arg.(required & opt (some string) None & info [ "column" ] ~doc:"Column to inspect.") in
  let bucket = Arg.(value & opt int 2 & info [ "bucket-size" ] ~doc:"Bucket size B.") in
  Cmd.v (Cmd.info "inspect" ~doc:"Histogram, exposure and dummy-row budget of a column.")
    Term.(const run_inspect $ csv_arg $ schema_arg $ column $ bucket)

let storage_cmd =
  let l = Arg.(value & opt int 4 & info [ "l" ] ~doc:"Group columns.") in
  let t = Arg.(value & opt int 3 & info [ "t" ] ~doc:"Threshold.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Value columns.") in
  let rows = Arg.(value & opt int 1000 & info [ "rows" ] ~doc:"Rows.") in
  let n = Arg.(value & opt int 2 & info [ "filters" ] ~doc:"Filtering clauses.") in
  let b = Arg.(value & opt int 2 & info [ "bucket-size" ] ~doc:"Bucket size B.") in
  let d = Arg.(value & opt int 12 & info [ "domain" ] ~doc:"Group domain size |D|.") in
  Cmd.v (Cmd.info "storage" ~doc:"Table 10 / Figure 8 storage comparison.")
    Term.(const run_storage $ l $ t $ k $ rows $ n $ b $ d)

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"The paper's worked example.") Term.(const run_demo $ const ())

let port_arg = Arg.(value & opt int 7477 & info [ "port" ] ~doc:"Server port.")
let name_arg = Arg.(value & opt string "default" & info [ "name" ] ~doc:"Remote table name.")
let key_file_arg =
  Arg.(value & opt string "sagma.key" & info [ "key-file" ] ~doc:"Secret client state file.")

let remote_upload_cmd =
  let group_by =
    Arg.(non_empty & opt (list string) [] & info [ "group-by" ] ~doc:"Group columns.")
  in
  let value_cols =
    Arg.(non_empty & opt (list string) [] & info [ "values" ] ~doc:"Value columns.")
  in
  let filter_cols =
    Arg.(value & opt (list string) [] & info [ "filters" ] ~doc:"Filter columns.")
  in
  let bucket = Arg.(value & opt int 2 & info [ "bucket-size" ] ~doc:"Bucket size B.") in
  let threshold = Arg.(value & opt int 2 & info [ "threshold" ] ~doc:"Max grouping attributes t.") in
  let seed = Arg.(value & opt string "sagma-cli" & info [ "seed" ] ~doc:"DRBG seed.") in
  Cmd.v
    (Cmd.info "remote-upload"
       ~doc:"Encrypt a CSV, save the client key locally and upload ciphertexts to a sagma_server.")
    Term.(
      const run_remote_upload $ csv_arg $ schema_arg $ group_by $ value_cols $ filter_cols
      $ bucket $ threshold $ seed $ port_arg $ name_arg $ key_file_arg)

let remote_query_cmd =
  let sum = Arg.(value & opt (some string) None & info [ "sum" ] ~doc:"SUM this column.") in
  let count = Arg.(value & flag & info [ "count" ] ~doc:"COUNT rows per group.") in
  let avg = Arg.(value & opt (some string) None & info [ "avg" ] ~doc:"AVG this column.") in
  let group_by =
    Arg.(non_empty & opt (list string) [] & info [ "group-by" ] ~doc:"Grouping columns.")
  in
  let where =
    Arg.(value & opt_all string [] & info [ "where" ] ~doc:"Equality filter col=value.")
  in
  let seed = Arg.(value & opt string "sagma-cli" & info [ "seed" ] ~doc:"DRBG seed.") in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Set the v4 sampling flag so the server traces this request, and print the \
                   EXPLAIN trailer (per-phase timings and cost block) from the reply.")
  in
  Cmd.v
    (Cmd.info "remote-query"
       ~doc:"Send a grouping token to a sagma_server and decrypt the returned aggregates.")
    Term.(
      const run_remote_query $ sum $ count $ avg $ group_by $ where $ port_arg $ name_arg
      $ key_file_arg $ seed $ explain)

let stats_cmd =
  let prometheus =
    Arg.(value & flag
         & info [ "prometheus" ] ~doc:"Emit the Prometheus text-format exposition.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the whole stats report as one JSON object (snapshot, uptime, gc, \
                   audit, topology).")
  in
  let cluster =
    Arg.(value & flag
         & info [ "cluster" ]
             ~doc:"Against a coordinator: render each {shard=\"i\"}-labeled series as a \
                   per-shard column next to the fleet aggregate.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Fetch a sagma_server's metrics snapshot and audit summary (protocol v2).")
    Term.(const run_stats $ port_arg $ prometheus $ json $ cluster)

let top_cmd =
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~doc:"Seconds between Stats polls (default 2).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Print a single frame (rates averaged over the server's uptime) and exit — \
                   for scripts and CI.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live resource dashboard for a sagma_server: req/s, p95 latency, pairings/s, pool \
             queue depth, shed connections and heap size, polled over the Stats RPC.")
    Term.(const run_top $ port_arg $ interval $ once)

let trace_cmd =
  let out =
    Arg.(value & opt string "sagma_trace.json"
         & info [ "out" ] ~doc:"Output file for the Chrome trace-event JSON (- for stdout).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Export a sagma_server's completed request traces as Chrome trace-event JSON \
             (protocol v4; view in chrome://tracing or Perfetto).")
    Term.(const run_trace $ port_arg $ out)

let health_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the health report as one JSON object.")
  in
  let watch =
    Arg.(value & flag
         & info [ "watch" ] ~doc:"Re-poll and redraw at --interval instead of exiting.")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~doc:"Seconds between polls with --watch (default 2).")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Fetch a sagma_server's v7 health report: status, firing SLO alerts and (on a \
             coordinator) per-shard reachability. Exits non-zero unless the status is a \
             clean \"ok\" with no alerts.")
    Term.(const run_health $ port_arg $ json $ watch $ interval)

let () =
  let info = Cmd.info "sagma" ~version:"1.0.0" ~doc:"Secure aggregation grouped by multiple attributes." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ query_cmd; inspect_cmd; storage_cmd; demo_cmd; remote_upload_cmd; remote_query_cmd;
            stats_cmd; top_cmd; trace_cmd; health_cmd ]))

(* sagma_server — the untrusted storage/compute half of the deployment.

   Holds uploaded encrypted tables in memory and answers Aggregate and
   Append requests using only public parameters; it never sees a key.

     dune exec bin/sagma_server.exe -- --port 7477 \
       [--metrics] [--audit] [--log-json FILE] [--log-level LEVEL]

   --metrics    collect operation counters (pairings, SSE postings
                scanned, request bytes/latency, ...) and dump them to
                stderr after every handled request; also served over the
                v2 Stats RPC (sagma stats).
   --audit      record per-request access-pattern traces (bucket ids
                touched, postings read, rows paired) for the leakage
                auditor; the trace summary rides along in Stats.
   --log-json   append one JSON object per event (request handled,
                connection opened/closed) to FILE.
   --log-level  debug|info|warn|error (default info). *)

module Log = Sagma_obs.Log

let () =
  let port = ref 7477 in
  let metrics = ref false in
  let audit = ref false in
  let log_json = ref "" in
  let log_level = ref "info" in
  let args =
    [ ("--port", Arg.Set_int port, "Listen port (default 7477)");
      ("--metrics", Arg.Set metrics, "Collect metrics; dump counters to stderr per request");
      ("--audit", Arg.Set audit, "Record per-request access-pattern traces (leakage auditor)");
      ("--log-json", Arg.Set_string log_json, "Append JSON-lines structured logs to FILE");
      ("--log-level", Arg.Set_string log_level, "Log threshold: debug|info|warn|error (default info)") ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "sagma_server [--port P] [--metrics] [--audit] [--log-json FILE] [--log-level L]";
  (match Log.level_of_string !log_level with
   | Some l -> Log.set_level l
   | None -> raise (Arg.Bad (Printf.sprintf "bad --log-level %S" !log_level)));
  if !log_json <> "" then Log.to_file !log_json;
  if !audit then Sagma_obs.Audit.set_enabled true;
  let state = Sagma_protocol.Server.create () in
  Printf.printf "sagma_server: listening on 127.0.0.1:%d%s%s%s\n%!" !port
    (if !metrics then " (metrics on)" else "")
    (if !audit then " (audit on)" else "")
    (if !log_json <> "" then Printf.sprintf " (logging to %s)" !log_json else "");
  Log.info "server.start"
    ~fields:
      [ Log.int "port" !port; Log.bool "metrics" !metrics; Log.bool "audit" !audit;
        Log.int "protocol_version" Sagma_protocol.Protocol.version ];
  if !metrics then begin
    Sagma_obs.Metrics.set_enabled true;
    let dump () =
      Format.eprintf "-- metrics after request --@.%a@." Sagma_obs.Metrics.pp_snapshot
        (Sagma_obs.Metrics.snapshot ())
    in
    Sagma_protocol.Transport.listen_and_serve ~after_request:dump ~port:!port state
  end
  else Sagma_protocol.Transport.listen_and_serve ~port:!port state

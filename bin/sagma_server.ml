(* sagma_server — the untrusted storage/compute half of the deployment.

   Holds uploaded encrypted tables in memory and answers Aggregate and
   Append requests using only public parameters; it never sees a key.

     dune exec bin/sagma_server.exe -- --port 7477 \
       [--workers N] [--max-conns M] [--request-timeout-ms T] \
       [--max-frame BYTES] [--agg-domains D] \
       [--shard-of I/N | --coordinator HOST:PORT,...] \
       [--metrics] [--audit] [--trace-sample N] [--slow-query-ms T] \
       [--profile] [--prof-rate R] \
       [--log-json FILE] [--log-level LEVEL]

   --workers    serve connections on an N-domain pool (default 4;
                0 = sequential, the pre-concurrency behavior).
   --shard-of   run as storage node I of an N-shard scatter-gather
                fleet ("I/N", zero-based): stores every uploaded row
                but only pairs the rows of slice row mod N = I, so a
                coordinator can ⊕-merge the partial aggregates.
   --coordinator  run as the fleet's query router instead of a storage
                node: fan every request out to the comma-separated
                shard endpoints, homomorphically merge Aggregate
                partials (never decrypting), stamp appends with global
                row ids. Mutually exclusive with --shard-of.
   --shard-deadline-ms  coordinator-side per-shard call deadline
                (default 5000; 0 = none).
   --max-conns  shed connections beyond M in flight with a Failed Busy
                response (default 64).
   --request-timeout-ms  per-connection read/write deadline; a peer
                stalled past it loses only its own connection
                (default 30000; 0 disables).
   --max-frame  largest accepted frame in bytes (default 64 MiB).
   --agg-domains  worker domains for row work inside each aggregation
                (default 1 = no intra-request parallelism); they form a
                second pool, separate from --workers.
   --metrics    collect operation counters (pairings, SSE postings
                scanned, request bytes/latency, ...) and dump them to
                stderr after every handled request; also served over the
                Stats RPC (sagma stats).
   --audit      record per-request access-pattern traces (bucket ids
                touched, postings read, rows paired) for the leakage
                auditor; the trace summary rides along in Stats.
   --trace-sample  trace every Nth request: span tree + per-request
                cost block land on the completed-trace ring (served by
                the v4 Traces RPC / sagma trace) and v4 replies carry
                an EXPLAIN trailer. Implies --metrics. 0 = off.
   --slow-query-ms  requests slower than T ms emit a slow_query log
                event with their span tree and cost block; implies
                tracing every request and --metrics. 0 = off.
   --profile    start the sampling resource profiler (Sagma_obs.Prof):
                span-attributed allocation sampling plus per-request GC
                deltas in EXPLAIN/trace exports. Implies --metrics.
   --prof-rate  Memprof sampling rate in (0,1] (default 0.001); the
                span-delta fallback sampler ignores it.
   --log-json   append one JSON object per event (request handled,
                connection opened/closed) to FILE.
   --log-level  debug|info|warn|error (default info).
   --probe-interval-ms  coordinator only: background-probe each shard
                every T ms, maintaining the per-shard health state v7
                Health reports and fast-failing fan-out to known-down
                shards (default 1000; 0 = off).
   --watchdog-interval-ms  evaluate the SLO watchdog rules every T ms;
                firing/resolved transitions emit `alert` log events and
                active alerts ride in v7 Health replies
                (default 1000; 0 disables the watchdog).
   --alert-rules  replace the default watchdog rules with FILE (one
                `name source cmp threshold` per line; see
                Sagma_obs.Watchdog.parse_rules).

   SIGINT/SIGTERM trigger a graceful shutdown: stop accepting (health
   turns "draining"), drain in-flight requests, flush logs and a final
   metrics snapshot. *)

module Log = Sagma_obs.Log
module Pool = Sagma_pool.Pool
module Watchdog = Sagma_obs.Watchdog

let () =
  let port = ref 7477 in
  let workers = ref 4 in
  let max_conns = ref 64 in
  let request_timeout_ms = ref 30000 in
  let max_frame = ref Sagma_protocol.Transport.default_server_max_frame in
  let agg_domains = ref 1 in
  let shard_of = ref "" in
  let coordinator = ref "" in
  let shard_deadline_ms = ref 5000 in
  let metrics = ref false in
  let audit = ref false in
  let trace_sample = ref 0 in
  let slow_query_ms = ref 0.0 in
  let profile = ref false in
  let prof_rate = ref Sagma_obs.Prof.default_rate in
  let log_json = ref "" in
  let log_level = ref "info" in
  let probe_interval_ms = ref 1000 in
  let watchdog_interval_ms = ref 1000 in
  let alert_rules = ref "" in
  let args =
    [ ("--port", Arg.Set_int port, "Listen port (default 7477)");
      ("--workers", Arg.Set_int workers,
       "Connection-serving domains (default 4; 0 = sequential)");
      ("--max-conns", Arg.Set_int max_conns,
       "In-flight connection limit; excess get Failed Busy (default 64)");
      ("--request-timeout-ms", Arg.Set_int request_timeout_ms,
       "Per-connection read/write deadline in ms (default 30000; 0 = none)");
      ("--max-frame", Arg.Set_int max_frame,
       "Largest accepted frame in bytes (default 64 MiB)");
      ("--agg-domains", Arg.Set_int agg_domains,
       "Worker domains per aggregation (default 1 = off)");
      ("--shard-of", Arg.Set_string shard_of,
       "Run as storage node I of an N-shard fleet (\"I/N\", zero-based)");
      ("--coordinator", Arg.Set_string coordinator,
       "Run as the query router over comma-separated shard endpoints (host:port,...)");
      ("--shard-deadline-ms", Arg.Set_int shard_deadline_ms,
       "Coordinator per-shard call deadline in ms (default 5000; 0 = none)");
      ("--metrics", Arg.Set metrics, "Collect metrics; dump counters to stderr per request");
      ("--audit", Arg.Set audit, "Record per-request access-pattern traces (leakage auditor)");
      ("--trace-sample", Arg.Set_int trace_sample,
       "Trace every Nth request (span tree + EXPLAIN cost; implies --metrics; 0 = off)");
      ("--slow-query-ms", Arg.Set_float slow_query_ms,
       "Log a slow_query event for requests over T ms (implies tracing all; 0 = off)");
      ("--profile", Arg.Set profile,
       "Start the sampling resource profiler (allocation sites + GC deltas; implies --metrics)");
      ("--prof-rate", Arg.Set_float prof_rate,
       "Memprof sampling rate in (0,1] (default 0.001)");
      ("--log-json", Arg.Set_string log_json, "Append JSON-lines structured logs to FILE");
      ("--log-level", Arg.Set_string log_level, "Log threshold: debug|info|warn|error (default info)");
      ("--probe-interval-ms", Arg.Set_int probe_interval_ms,
       "Coordinator shard-probe period in ms (default 1000; 0 = off)");
      ("--watchdog-interval-ms", Arg.Set_int watchdog_interval_ms,
       "SLO watchdog evaluation period in ms (default 1000; 0 = off)");
      ("--alert-rules", Arg.Set_string alert_rules,
       "Replace the default watchdog rules with FILE (name source cmp threshold per line)") ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "sagma_server [--port P] [--workers N] [--max-conns M] [--request-timeout-ms T] [--metrics] [--audit] [--log-json FILE] [--log-level L]";
  (match Log.level_of_string !log_level with
   | Some l -> Log.set_level l
   | None -> raise (Arg.Bad (Printf.sprintf "bad --log-level %S" !log_level)));
  if !log_json <> "" then Log.to_file !log_json;
  if !audit then Sagma_obs.Audit.set_enabled true;
  (* Tracing is built on the metrics scopes, so either flag drags
     collection on even without an explicit --metrics (the per-request
     stderr dump stays tied to --metrics itself). *)
  if !trace_sample > 0 || !slow_query_ms > 0.0 then Sagma_obs.Metrics.set_enabled true;
  (* The profiler's per-request attribution rides the request traces,
     so --profile drags metrics on too. *)
  if !profile then begin
    Sagma_obs.Metrics.set_enabled true;
    Sagma_obs.Prof.start ~rate:!prof_rate ()
  end;
  if !shard_of <> "" && !coordinator <> "" then
    raise (Arg.Bad "--shard-of and --coordinator are mutually exclusive");
  let shard =
    if !shard_of = "" then None
    else
      match String.index_opt !shard_of '/' with
      | Some k ->
        (try
           let i = int_of_string (String.sub !shard_of 0 k) in
           let n =
             int_of_string (String.sub !shard_of (k + 1) (String.length !shard_of - k - 1))
           in
           Some (i, n)
         with _ -> raise (Arg.Bad (Printf.sprintf "bad --shard-of %S (want I/N)" !shard_of)))
      | None -> raise (Arg.Bad (Printf.sprintf "bad --shard-of %S (want I/N)" !shard_of))
  in
  let agg_pool =
    if !agg_domains > 1 then Some (Pool.create ~name:"aggregation" ~workers:(!agg_domains - 1) ())
    else None
  in
  let rules =
    if !alert_rules = "" then None
    else begin
      let text =
        try
          let ic = open_in_bin !alert_rules in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic; s
        with Sys_error e -> raise (Arg.Bad (Printf.sprintf "--alert-rules: %s" e))
      in
      match Watchdog.parse_rules text with
      | Ok rs -> Some rs
      | Error e -> raise (Arg.Bad (Printf.sprintf "--alert-rules %s: %s" !alert_rules e))
    end
  in
  let watchdog =
    if !watchdog_interval_ms > 0 then Some (Watchdog.create ?rules ()) else None
  in
  let router =
    if !coordinator = "" then None
    else
      let endpoints =
        String.split_on_char ',' !coordinator
        |> List.map String.trim
        |> List.filter (fun e -> e <> "")
      in
      Some
        (Sagma_protocol.Router.create ~deadline_ms:!shard_deadline_ms
           ~trace_sample:!trace_sample ~slow_query_ms:!slow_query_ms
           ~probe_interval_ms:!probe_interval_ms ?watchdog endpoints)
  in
  Option.iter Sagma_protocol.Router.start_probes router;
  let state =
    Sagma_protocol.Server.create ?agg_pool ?shard ~trace_sample:!trace_sample
      ~slow_query_ms:!slow_query_ms ?watchdog ()
  in
  let handler =
    match router with
    | Some r -> Sagma_protocol.Router.handle_encoded r
    | None -> Sagma_protocol.Server.handle_encoded state
  in
  let role =
    match (router, shard) with
    | Some r, _ ->
      let t = Sagma_protocol.Router.topology r in
      Printf.sprintf " (coordinator over %d shards: %s)" t.Sagma_protocol.Protocol.tp_shard_count
        (String.concat "," t.Sagma_protocol.Protocol.tp_shards)
    | None, Some (i, n) -> Printf.sprintf " (shard %d/%d)" i n
    | None, None -> ""
  in
  let stop = Atomic.make false in
  let request_stop _ =
    Atomic.set stop true;
    (* Health flips to "draining" the moment the signal lands, so peers
       polling v7 Health see the shutdown before the listener closes. *)
    Sagma_protocol.Server.set_draining state true;
    Option.iter (fun r -> Sagma_protocol.Router.set_draining r true) router
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  (* The watchdog poll loop runs on its own domain: it only reads the
     metrics snapshot and the router's down-shard count, so it never
     contends with request handling. *)
  let watchdog_domain =
    match watchdog with
    | None -> None
    | Some wd ->
      Some
        (Domain.spawn (fun () ->
             let interval = float_of_int !watchdog_interval_ms /. 1000.0 in
             while not (Atomic.get stop) do
               (try
                  let shards_down =
                    match router with
                    | Some r -> Sagma_protocol.Router.down_count r
                    | None -> 0
                  in
                  Watchdog.poll wd ~snapshot:(Sagma_obs.Metrics.snapshot ()) ~shards_down
                with _ -> ());
               (* Sleep in short slices so shutdown stays prompt. *)
               let slept = ref 0.0 in
               while (not (Atomic.get stop)) && !slept < interval do
                 Unix.sleepf 0.05;
                 slept := !slept +. 0.05
               done
             done))
  in
  Printf.printf "sagma_server: listening on 127.0.0.1:%d (workers %d, max-conns %d)%s%s%s%s%s%s\n%!"
    !port !workers !max_conns role
    (if !metrics then " (metrics on)" else "")
    (if !audit then " (audit on)" else "")
    (if !trace_sample > 0 then Printf.sprintf " (tracing 1/%d)" !trace_sample else "")
    (if !slow_query_ms > 0.0 then Printf.sprintf " (slow-query %gms)" !slow_query_ms else "")
    ((if !profile then Printf.sprintf " (profiling: %s)" (Sagma_obs.Prof.mode_name ()) else "")
     ^ if !log_json <> "" then Printf.sprintf " (logging to %s)" !log_json else "");
  Log.info "server.start"
    ~fields:
      [ Log.int "port" !port; Log.int "workers" !workers; Log.int "max_conns" !max_conns;
        Log.int "request_timeout_ms" !request_timeout_ms; Log.int "agg_domains" !agg_domains;
        Log.str "role"
          (match (router, shard) with
           | Some _, _ -> "coordinator"
           | None, Some (i, n) -> Printf.sprintf "shard %d/%d" i n
           | None, None -> "single");
        Log.bool "metrics" !metrics; Log.bool "audit" !audit;
        Log.int "trace_sample" !trace_sample; Log.float "slow_query_ms" !slow_query_ms;
        Log.str "profiler" (Sagma_obs.Prof.mode_name ());
        Log.int "probe_interval_ms" (if router = None then 0 else !probe_interval_ms);
        Log.int "watchdog_interval_ms" !watchdog_interval_ms;
        Log.int "protocol_version" Sagma_protocol.Protocol.version ];
  let after_request =
    if !metrics then begin
      Sagma_obs.Metrics.set_enabled true;
      Some
        (fun () ->
          Format.eprintf "-- metrics after request --@.%a@." Sagma_obs.Metrics.pp_snapshot
            (Sagma_obs.Metrics.snapshot ()))
    end
    else None
  in
  Sagma_protocol.Transport.listen_and_serve ?after_request ~workers:!workers
    ~max_conns:!max_conns ~request_timeout_ms:!request_timeout_ms ~max_frame:!max_frame
    ~stop:(fun () -> Atomic.get stop)
    ~port:!port handler;
  (* listen_and_serve only returns once drained: flush the final
     numbers, then the log stream. *)
  Option.iter Domain.join watchdog_domain;
  Option.iter Sagma_protocol.Router.shutdown router;
  Option.iter Pool.shutdown agg_pool;
  Log.info "server.stop" ~fields:[ Log.int "port" !port ];
  if !metrics then
    Format.eprintf "-- final metrics --@.%a@." Sagma_obs.Metrics.pp_snapshot
      (Sagma_obs.Metrics.snapshot ());
  if !profile then begin
    Sagma_obs.Prof.stop ();
    Format.eprintf "-- top allocation sites --@.";
    List.iter
      (fun s ->
        Format.eprintf "%-24s %12d words %8d samples@." s.Sagma_obs.Prof.site_span
          s.Sagma_obs.Prof.site_words s.Sagma_obs.Prof.site_samples)
      (Sagma_obs.Prof.top_sites ())
  end;
  Log.detach ();
  Printf.printf "sagma_server: stopped\n%!"

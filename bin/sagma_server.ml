(* sagma_server — the untrusted storage/compute half of the deployment.

   Holds uploaded encrypted tables in memory and answers Aggregate and
   Append requests using only public parameters; it never sees a key.

     dune exec bin/sagma_server.exe -- --port 7477                        *)

let () =
  let port = ref 7477 in
  let args = [ ("--port", Arg.Set_int port, "Listen port (default 7477)") ] in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "sagma_server [--port P]";
  let state = Sagma_protocol.Server.create () in
  Printf.printf "sagma_server: listening on 127.0.0.1:%d\n%!" !port;
  Sagma_protocol.Transport.listen_and_serve ~port:!port state

(* sagma_server — the untrusted storage/compute half of the deployment.

   Holds uploaded encrypted tables in memory and answers Aggregate and
   Append requests using only public parameters; it never sees a key.

     dune exec bin/sagma_server.exe -- --port 7477 [--metrics]

   With --metrics, operation counters (pairings, SSE postings scanned,
   request bytes/latency, ...) are collected and dumped to stderr after
   every handled request. *)

let () =
  let port = ref 7477 in
  let metrics = ref false in
  let args =
    [ ("--port", Arg.Set_int port, "Listen port (default 7477)");
      ("--metrics", Arg.Set metrics, "Collect metrics; dump counters to stderr per request") ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "sagma_server [--port P] [--metrics]";
  let state = Sagma_protocol.Server.create () in
  Printf.printf "sagma_server: listening on 127.0.0.1:%d%s\n%!" !port
    (if !metrics then " (metrics on)" else "");
  if !metrics then begin
    Sagma_obs.Metrics.set_enabled true;
    let dump () =
      Format.eprintf "-- metrics after request --@.%a@." Sagma_obs.Metrics.pp_snapshot
        (Sagma_obs.Metrics.snapshot ())
    in
    Sagma_protocol.Transport.listen_and_serve ~after_request:dump ~port:!port state
  end
  else Sagma_protocol.Transport.listen_and_serve ~port:!port state

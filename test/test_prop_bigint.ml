(* Algebraic property suite for Sagma_bigint: ring laws, the divmod
   invariant, modexp/inverse/CRT/Jacobi cross-checks, plus pinned
   regression values for the Knuth Algorithm-D division edge cases
   (add-back path, negative operands, divisor with high limb ≥ base/2).

   The pinned quotients/remainders below were verified against an
   independent implementation (CPython's bignum divmod); the add-back
   inputs were found by instrumenting the add-back branch of
   lib/bigint/nat.ml and confirming it fires. *)

module Z = Sagma_bigint.Bigint
module Gen = Sagma_prop.Gen
module Shrink = Sagma_prop.Shrink
module R = Sagma_prop.Runner

let z_arb = R.arbitrary ~shrink:Shrink.bigint ~print:Z.to_string (Gen.bigint_signed ())

let z_pos_arb = R.arbitrary ~shrink:Shrink.bigint ~print:Z.to_string (Gen.bigint ())

let pair_print (a, b) = Printf.sprintf "(%s, %s)" (Z.to_string a) (Z.to_string b)

let triple_print (a, b, c) =
  Printf.sprintf "(%s, %s, %s)" (Z.to_string a) (Z.to_string b) (Z.to_string c)

let z2_arb =
  R.arbitrary
    ~shrink:(Shrink.pair Shrink.bigint Shrink.bigint)
    ~print:pair_print
    (Gen.pair (Gen.bigint_signed ()) (Gen.bigint_signed ()))

let z3_arb =
  R.arbitrary
    ~shrink:(Shrink.triple Shrink.bigint Shrink.bigint Shrink.bigint)
    ~print:triple_print
    (Gen.triple (Gen.bigint_signed ()) (Gen.bigint_signed ()) (Gen.bigint_signed ()))

(* --- ring laws --------------------------------------------------------------- *)

let t_add_comm = R.test ~count:300 ~name:"add commutative" z2_arb
    (fun (a, b) -> Z.equal (Z.add a b) (Z.add b a))

let t_add_assoc = R.test ~count:300 ~name:"add associative" z3_arb
    (fun (a, b, c) -> Z.equal (Z.add a (Z.add b c)) (Z.add (Z.add a b) c))

let t_mul_comm = R.test ~count:300 ~name:"mul commutative" z2_arb
    (fun (a, b) -> Z.equal (Z.mul a b) (Z.mul b a))

let t_mul_assoc = R.test ~count:200 ~name:"mul associative" z3_arb
    (fun (a, b, c) -> Z.equal (Z.mul a (Z.mul b c)) (Z.mul (Z.mul a b) c))

let t_distrib = R.test ~count:300 ~name:"mul distributes over add" z3_arb
    (fun (a, b, c) -> Z.equal (Z.mul a (Z.add b c)) (Z.add (Z.mul a b) (Z.mul a c)))

let t_add_sub = R.test ~count:300 ~name:"(a + b) - b = a" z2_arb
    (fun (a, b) -> Z.equal (Z.sub (Z.add a b) b) a)

let t_neg = R.test ~count:300 ~name:"neg involution and absorption" z_arb
    (fun a ->
      Z.equal (Z.neg (Z.neg a)) a
      && Z.is_zero (Z.add a (Z.neg a))
      && Z.equal (Z.abs a) (Z.abs (Z.neg a))
      && Z.sign (Z.neg a) = -Z.sign a)

let t_mul_int = R.test ~count:300 ~name:"mul_int agrees with mul"
    (R.arbitrary
       ~shrink:(Shrink.pair Shrink.bigint Shrink.int)
       ~print:(fun (a, k) -> Printf.sprintf "(%s, %d)" (Z.to_string a) k)
       (Gen.pair (Gen.bigint_signed ()) (Gen.int_edgy (-1000000) 1000000)))
    (fun (a, k) -> Z.equal (Z.mul_int a k) (Z.mul a (Z.of_int k)))

(* --- division ---------------------------------------------------------------- *)

let nonzero_pair = Gen.pair (Gen.bigint_signed ())
    (Gen.map2 (fun neg z -> if neg then Z.neg z else z) Gen.bool (Gen.bigint_nonzero ()))

let t_divmod = R.test ~count:400 ~name:"divmod invariant (truncated)"
    (R.arbitrary ~shrink:(Shrink.pair Shrink.bigint Shrink.bigint) ~print:pair_print nonzero_pair)
    (fun (a, b) ->
      if Z.is_zero b then raise R.Discard;
      let q, r = Z.divmod a b in
      Z.equal a (Z.add (Z.mul q b) r)
      && Z.lt (Z.abs r) (Z.abs b)
      && (Z.is_zero r || Z.sign r = Z.sign a))

let t_ediv = R.test ~count:400 ~name:"ediv_rem invariant (euclidean)"
    (R.arbitrary ~shrink:(Shrink.pair Shrink.bigint Shrink.bigint) ~print:pair_print nonzero_pair)
    (fun (a, b) ->
      if Z.is_zero b then raise R.Discard;
      let q, r = Z.ediv_rem a b in
      Z.equal a (Z.add (Z.mul q b) r) && Z.sign r >= 0 && Z.lt r (Z.abs b))

let t_divmod_native = R.test ~count:400 ~name:"divmod matches native / and mod"
    (R.arbitrary
       ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
       (Gen.pair (Gen.int_edgy (-1000000) 1000000) (Gen.int_edgy (-1000) 1000)))
    (fun (a, b) ->
      if b = 0 then raise R.Discard;
      let q, r = Z.divmod (Z.of_int a) (Z.of_int b) in
      Z.equal q (Z.of_int (a / b)) && Z.equal r (Z.of_int (a mod b)))

(* --- encodings and bit operations -------------------------------------------- *)

let t_string_rt = R.test ~count:300 ~name:"of_string . to_string = id" z_arb
    (fun a -> Z.equal (Z.of_string (Z.to_string a)) a)

let t_hex_rt = R.test ~count:300 ~name:"of_hex . to_hex = id (magnitude)" z_pos_arb
    (fun a -> Z.equal (Z.of_hex (Z.to_hex a)) a)

let t_bytes_rt = R.test ~count:300 ~name:"of_bytes_be . to_bytes_be = id" z_pos_arb
    (fun a -> Z.equal (Z.of_bytes_be (Z.to_bytes_be a)) a)

let t_shift = R.test ~count:300 ~name:"shifts multiply and divide by 2^k"
    (R.arbitrary
       ~print:(fun (a, k) -> Printf.sprintf "(%s, %d)" (Z.to_string a) k)
       (Gen.pair (Gen.bigint ()) (Gen.int_range 0 120)))
    (fun (a, k) ->
      Z.equal (Z.shift_left a k) (Z.mul a (Z.pow Z.two k))
      && Z.equal (Z.shift_right (Z.shift_left a k) k) a)

let t_num_bits = R.test ~count:300 ~name:"num_bits brackets the magnitude" z_pos_arb
    (fun a ->
      if Z.is_zero a then Z.num_bits a = 0
      else begin
        let n = Z.num_bits a in
        Z.leq (Z.pow Z.two (n - 1)) a && Z.lt a (Z.pow Z.two n)
      end)

(* --- modular arithmetic ------------------------------------------------------- *)

let modulus_gen = Gen.map (fun z -> Z.add (Z.abs z) Z.two) (Gen.bigint ~bits:128 ())

let t_powm_iter = R.test ~count:150 ~name:"powm matches iterated mulm"
    (R.arbitrary
       ~print:(fun ((a, m), e) -> Printf.sprintf "(%s^%d mod %s)" (Z.to_string a) e (Z.to_string m))
       (Gen.pair (Gen.pair (Gen.bigint ()) modulus_gen) (Gen.int_range 0 24)))
    (fun ((a, m), e) ->
      let expected = ref (Z.erem Z.one m) in
      for _ = 1 to e do
        expected := Z.mulm !expected a m
      done;
      Z.equal (Z.powm a (Z.of_int e) m) !expected)

let t_powm_add = R.test ~count:150 ~name:"powm exponent addition law"
    (R.arbitrary
       ~print:(fun ((a, m), (e1, e2)) ->
         Printf.sprintf "(%s, %s, %s, %s)" (Z.to_string a) (Z.to_string m) (Z.to_string e1)
           (Z.to_string e2))
       (Gen.pair (Gen.pair (Gen.bigint ()) modulus_gen)
          (Gen.pair (Gen.bigint_bits 64) (Gen.bigint_bits 64))))
    (fun ((a, m), (e1, e2)) ->
      Z.equal (Z.powm a (Z.add e1 e2) m) (Z.mulm (Z.powm a e1 m) (Z.powm a e2 m) m))

let t_invm = R.test ~count:200 ~name:"invm inverts exactly the units"
    (R.arbitrary ~print:pair_print (Gen.pair (Gen.bigint ()) modulus_gen))
    (fun (a, m) ->
      match Z.invm a m with
      | Some inv -> Z.equal (Z.mulm a inv m) (Z.erem Z.one m)
      | None -> not (Z.equal (Z.gcd a m) Z.one))

let odd_modulus_gen = Gen.map (fun z -> Z.succ (Z.mul_int (Z.add (Z.abs z) Z.one) 2)) (Gen.bigint ~bits:128 ())

let t_invm_batch = R.test ~count:100 ~name:"invm_batch agrees with per-element invm"
    (R.arbitrary
       ~print:(fun (xs, m) ->
         Printf.sprintf "([%s], %s)"
           (String.concat "; " (List.map Z.to_string xs))
           (Z.to_string m))
       (Gen.pair (Gen.list ~max_len:8 (Gen.bigint ())) modulus_gen))
    (fun (xs, m) ->
      (* Keep only units so the batch is well-defined. *)
      let xs = List.filter (fun x -> Z.equal (Z.gcd x m) Z.one) xs in
      let arr = Array.of_list xs in
      let batch = Z.invm_batch arr m in
      Array.length batch = Array.length arr
      && Array.for_all2 (fun x inv -> Z.equal inv (Z.invm_exn x m)) arr batch)

let t_mont = R.test ~count:150 ~name:"Mont ring ops match plain modular arithmetic"
    (R.arbitrary
       ~print:(fun ((a, b), m) ->
         Printf.sprintf "((%s, %s), %s)" (Z.to_string a) (Z.to_string b) (Z.to_string m))
       (Gen.pair (Gen.pair (Gen.bigint ()) (Gen.bigint ())) odd_modulus_gen))
    (fun ((a, b), m) ->
      let c = Z.Mont.make m in
      let ma = Z.Mont.of_z c a and mb = Z.Mont.of_z c b in
      Z.equal (Z.Mont.to_z c ma) (Z.erem a m)
      && Z.equal (Z.Mont.to_z c (Z.Mont.mul c ma mb)) (Z.mulm a b m)
      && Z.equal (Z.Mont.to_z c (Z.Mont.add c ma mb)) (Z.addm a b m)
      && Z.equal (Z.Mont.to_z c (Z.Mont.sub c ma mb)) (Z.subm a b m)
      && Z.equal (Z.Mont.to_z c (Z.Mont.one c)) (Z.erem Z.one m)
      && Z.Mont.is_zero (Z.Mont.zero c)
      && Z.Mont.equal ma (Z.Mont.of_z c (Z.add a m)))

let t_egcd = R.test ~count:300 ~name:"egcd Bezout identity" z2_arb
    (fun (a, b) ->
      let g, x, y = Z.egcd a b in
      Z.equal (Z.add (Z.mul a x) (Z.mul b y)) g
      && Z.sign g >= 0
      && Z.equal g (Z.gcd a b)
      && (Z.is_zero g || (Z.is_zero (Z.rem a g) && Z.is_zero (Z.rem b g))))

let small_primes = [ 3; 5; 7; 11; 13; 17; 19; 23; 29 ]

let t_crt = R.test ~count:200 ~name:"crt reconstructs all residues"
    (R.arbitrary
       ~print:(fun pairs ->
         String.concat "; "
           (List.map (fun (r, m) -> Printf.sprintf "%d mod %d" r m) pairs))
       (Gen.bind (Gen.subset small_primes) (fun ms ->
            fun d -> List.map (fun m -> (Gen.int_below m d, m)) ms)))
    (fun pairs ->
      let x = Z.crt (List.map (fun (r, m) -> (Z.of_int r, Z.of_int m)) pairs) in
      let prod = List.fold_left (fun acc (_, m) -> Z.mul_int acc m) Z.one pairs in
      Z.sign x >= 0 && Z.lt x prod
      && List.for_all (fun (r, m) -> Z.equal (Z.erem x (Z.of_int m)) (Z.of_int r)) pairs)

let odd_gen = Gen.map (fun z -> Z.succ (Z.mul_int (Z.abs z) 2)) (Gen.bigint ~bits:96 ())

let t_jacobi_mult = R.test ~count:200 ~name:"jacobi is multiplicative in a"
    (R.arbitrary
       ~print:(fun ((a, b), n) ->
         Printf.sprintf "((%s, %s) / %s)" (Z.to_string a) (Z.to_string b) (Z.to_string n))
       (Gen.pair (Gen.pair (Gen.bigint ()) (Gen.bigint ())) odd_gen))
    (fun ((a, b), n) -> Z.jacobi (Z.mul a b) n = Z.jacobi a n * Z.jacobi b n)

let t_jacobi_square = R.test ~count:200 ~name:"jacobi of a unit square is 1"
    (R.arbitrary ~print:pair_print (Gen.pair (Gen.bigint ()) odd_gen))
    (fun (a, n) ->
      if Z.equal n Z.one then raise R.Discard;
      if not (Z.equal (Z.gcd a n) Z.one) then raise R.Discard;
      Z.jacobi (Z.mul a a) n = 1)

let p3_primes =
  List.map Z.of_string
    [ "19"; "23"; "10007"; "1073741827"; "170141183460469231731687303715884105727" ]

let t_sqrtm = R.test ~count:150 ~name:"sqrtm_p3 inverts squaring mod p"
    (R.arbitrary
       ~print:(fun (a, p) -> Printf.sprintf "(%s mod %s)" (Z.to_string a) (Z.to_string p))
       (Gen.pair (Gen.bigint ()) (Gen.oneofl p3_primes)))
    (fun (a, p) ->
      let sq = Z.mulm a a p in
      match Z.sqrtm_p3 sq p with
      | None -> false (* a square must have a root *)
      | Some s -> Z.equal (Z.mulm s s p) sq)

let t_random_below = R.test ~count:150 ~name:"random_below stays in range"
    (R.arbitrary
       ~print:(fun (seed, bound) -> Printf.sprintf "(%S, %s)" seed (Z.to_string bound))
       (Gen.pair (Gen.bytes ()) (Gen.map Z.succ (Gen.bigint ~bits:128 ()))))
    (fun (seed, bound) ->
      let drbg = Sagma_crypto.Drbg.create ("rb|" ^ seed) in
      let v = Z.random_below (Sagma_crypto.Drbg.rng drbg) bound in
      Z.sign v >= 0 && Z.lt v bound)

(* --- division edge cases (example-based) --------------------------------------

   base = 2^26, h = base/2 = 2^25 in the limb representation of
   lib/bigint/nat.ml. *)

let check_div name a b expect_q expect_r ok =
  let q, r = Z.divmod a b in
  let good = Z.equal q (Z.of_string expect_q) && Z.equal r (Z.of_string expect_r) in
  if not good then begin
    Printf.printf "    %s: got q=%s r=%s\n" name (Z.to_string q) (Z.to_string r);
    false
  end
  else ok

let t_division_edges = R.test ~count:1 ~name:"division edge cases (pinned)"
    (R.arbitrary (Gen.return ()))
    (fun () ->
      let h = Z.shift_left Z.one 25 in
      let b26 k = Z.shift_left Z.one (26 * k) in
      (* Knuth add-back path: u limbs [0;0;h;h-1], v limbs [1;0;h]
         (verified to take the add-back branch under instrumentation). *)
      let u_ab = Z.add (Z.mul (Z.pred h) (b26 3)) (Z.mul h (b26 2)) in
      let v_ab = Z.succ (Z.mul h (b26 2)) in
      let ok = true in
      let ok =
        check_div "add-back (constructed)" u_ab v_ab "67108862" "151115727451828579729410" ok
      in
      (* Add-back triggers found by randomized instrumented search. *)
      let ok =
        check_div "add-back (regression 1)"
          (Z.of_string "860154662807894091006392077659940773857")
          (Z.of_string "190992702277602406812716")
          "4503599627370495" "1737490931559437" ok
      in
      let ok =
        check_div "add-back (regression 2)"
          (Z.of_string "1155266868427494970952508542643159652342")
          (Z.of_string "256520783027876377925440")
          "4503599493152767" "976214703959862" ok
      in
      (* Divisor whose high limb has its top bit set (no normalize shift):
         u limbs [0;b-2;h], v limbs [b-1;h]. *)
      let u_hi = Z.add (Z.mul h (b26 2)) (Z.mul (Z.sub (b26 1) Z.two) (b26 1)) in
      let v_hi = Z.add (Z.mul h (b26 1)) (Z.pred (b26 1)) in
      let ok = check_div "high-limb divisor" u_hi v_hi "67108863" "2251799813685247" ok in
      (* Negative operands: truncated division, remainder takes the
         dividend's sign (OCaml's / and mod semantics). *)
      let ok = check_div "(-7) / 3" (Z.of_int (-7)) (Z.of_int 3) "-2" "-1" ok in
      let ok = check_div "7 / (-3)" (Z.of_int 7) (Z.of_int (-3)) "-2" "1" ok in
      let ok = check_div "(-7) / (-3)" (Z.of_int (-7)) (Z.of_int (-3)) "2" "-1" ok in
      let ok = check_div "(-6) / 3 (exact)" (Z.of_int (-6)) (Z.of_int 3) "-2" "0" ok in
      (* Single-limb divisor fast path at its bounds. *)
      let ok =
        check_div "single-limb divisor (exact)" (Z.pred (b26 4)) (Z.pred (b26 1))
          "302231459407256988155905" "0" ok
      in
      let ok =
        check_div "single-limb divisor (rem 1)" (b26 4) (Z.pred (b26 1))
          "302231459407256988155905" "1" ok
      in
      ok)

let () =
  R.run ~suite:"test_prop_bigint"
    [ t_add_comm; t_add_assoc; t_mul_comm; t_mul_assoc; t_distrib; t_add_sub; t_neg; t_mul_int;
      t_divmod; t_ediv; t_divmod_native; t_string_rt; t_hex_rt; t_bytes_rt; t_shift; t_num_bits;
      t_powm_iter; t_powm_add; t_invm; t_invm_batch; t_mont; t_egcd; t_crt; t_jacobi_mult;
      t_jacobi_square; t_sqrtm;
      t_random_below; t_division_edges ]

(* Tests for the comparison baselines: CryptDB (det + Paillier), Seabed
   (ASHE + splayed columns), the pre-computation scheme and the
   download-everything yardstick — each checked against the plaintext
   executor and for its characteristic leakage. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Drbg = Sagma_crypto.Drbg
module Det = Sagma_crypto.Deterministic
module B = Sagma_baselines

let str s = Value.Str s
let vi i = Value.Int i

let schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt };
    { Table.name = "g"; ty = Value.TStr };
    { Table.name = "f"; ty = Value.TInt } ]

let table =
  let d = Drbg.create "baseline-data" in
  Table.of_rows schema
    (List.init 40 (fun _ ->
         [| vi (Drbg.int_below d 200);
            str [| "red"; "green"; "blue"; "cyan" |].(Drbg.int_below d 4);
            vi (Drbg.int_below d 3) |]))

let oracle q =
  List.map
    (fun r -> (List.map Value.to_string r.Executor.group, r.Executor.sum, r.Executor.count))
    (Executor.run table q)

(* --- deterministic encryption -------------------------------------------- *)

let test_det_roundtrip () =
  let k = Det.gen_key (Drbg.create "det") in
  List.iter
    (fun m ->
      Alcotest.(check (option string)) "roundtrip" (Some m) (Det.decrypt k (Det.encrypt k m)))
    [ ""; "a"; "hello"; String.make 500 'x' ];
  Alcotest.(check string) "deterministic" (Det.encrypt k "m") (Det.encrypt k "m");
  let k2 = Det.gen_key (Drbg.create "det2") in
  Alcotest.(check bool) "keyed" true (Det.encrypt k "m" <> Det.encrypt k2 "m");
  Alcotest.(check (option string)) "tamper" None
    (Det.decrypt k (Det.encrypt k2 "m"))

(* --- ASHE ------------------------------------------------------------------ *)

let test_ashe_roundtrip () =
  let k = B.Ashe.gen_key (Drbg.create "ashe") in
  List.iter
    (fun (id, m) ->
      Alcotest.(check int) "roundtrip" m (B.Ashe.decrypt k (B.Ashe.encrypt k ~id m)))
    [ (0, 0); (1, 42); (999, 123456); (7, B.Ashe.modulus - 1) ]

let test_ashe_additive () =
  let k = B.Ashe.gen_key (Drbg.create "ashe-add") in
  let c =
    List.fold_left
      (fun acc (id, m) -> B.Ashe.add acc (B.Ashe.encrypt k ~id m))
      B.Ashe.zero
      [ (0, 10); (1, 20); (2, 30); (3, 40) ]
  in
  Alcotest.(check int) "sum" 100 (B.Ashe.decrypt k c);
  Alcotest.(check int) "ops = ids" 4 (B.Ashe.decryption_operations c)

let test_ashe_hides_values () =
  let k = B.Ashe.gen_key (Drbg.create "ashe-sec") in
  (* Same plaintext, different ids → different ciphertext bodies. *)
  let a = B.Ashe.encrypt k ~id:1 7 and b = B.Ashe.encrypt k ~id:2 7 in
  Alcotest.(check bool) "id-dependent" true (a.B.Ashe.body <> b.B.Ashe.body)

(* --- CryptDB ----------------------------------------------------------------- *)

let cdb_client =
  B.Cryptdb.setup ~paillier_bits:256 ~value_columns:[ "v" ] ~group_columns:[ "g"; "f" ]
    ~filter_columns:[ "f" ] (Drbg.create "cryptdb")

let cdb_enc = B.Cryptdb.encrypt_table cdb_client table

let cdb_results q =
  List.map
    (fun r ->
      (List.map Value.to_string r.B.Cryptdb.group, r.B.Cryptdb.sum, r.B.Cryptdb.count))
    (B.Cryptdb.query cdb_client cdb_enc q)

let test_cryptdb_matches_oracle () =
  List.iter
    (fun q ->
      Alcotest.(check (list (triple (list string) int int))) (Query.to_sql q) (oracle q)
        (cdb_results q))
    [ Query.make ~group_by:[ "g" ] (Query.Sum "v");
      Query.make ~group_by:[ "g"; "f" ] (Query.Sum "v");
      Query.make ~group_by:[ "g" ] Query.Count;
      Query.make ~where:[ ("f", vi 1) ] ~group_by:[ "g" ] (Query.Sum "v") ]

let test_cryptdb_leaks_histogram () =
  (* The deterministic column exposes the exact plaintext histogram —
     the leakage-abuse vector SAGMA removes. *)
  let leaked = B.Cryptdb.leaked_histogram cdb_enc ~column:0 in
  let plain =
    List.sort compare
      (List.map
         (fun r -> r.Executor.count)
         (Executor.run table (Query.make ~group_by:[ "g" ] Query.Count)))
  in
  Alcotest.(check (list int)) "frequencies leak" plain
    (List.sort compare (List.map snd leaked))

(* --- Seabed ------------------------------------------------------------------- *)

let test_seabed_matches_oracle () =
  (* red and green are "common" (splayed); blue/cyan go to the overflow
     column. *)
  let c = B.Seabed.setup ~common:[ str "red"; str "green" ] (Drbg.create "seabed") in
  let enc = B.Seabed.encrypt_table c table ~value_column:"v" ~group_column:"g" in
  let results, _ops = B.Seabed.query c enc in
  let got =
    List.map (fun r -> ([ Value.to_string r.B.Seabed.group ], r.B.Seabed.sum, r.B.Seabed.count)) results
  in
  Alcotest.(check (list (triple (list string) int int))) "seabed vs oracle"
    (oracle (Query.make ~group_by:[ "g" ] (Query.Sum "v")))
    got

let test_seabed_flattens_common_values () =
  let c = B.Seabed.setup ~common:[ str "red"; str "green" ] (Drbg.create "seabed-leak") in
  let enc = B.Seabed.encrypt_table c table ~value_column:"v" ~group_column:"g" in
  let leaked = B.Seabed.leaked_histogram enc in
  (* Only uncommon values appear in the det column. *)
  Alcotest.(check int) "only 2 uncommon tags" 2 (List.length leaked)

let test_seabed_client_cost_grows_with_rows () =
  let c = B.Seabed.setup ~common:[ str "red" ] (Drbg.create "seabed-cost") in
  let enc = B.Seabed.encrypt_table c table ~value_column:"v" ~group_column:"g" in
  let _, ops = B.Seabed.query c enc in
  (* Every row contributes its id to every decrypted column sum. *)
  Alcotest.(check bool) (Printf.sprintf "ops %d >= rows" ops) true (ops >= Table.row_count table)

let test_seabed_splay_storage_model () =
  (* (B+1)^i − 1 columns per combination (§6.2). l=4, t=3, B=2:
     4·2 + 6·8 + 4·26 = 160. *)
  Alcotest.(check int) "splay columns" 160 (B.Seabed.splay_columns ~l:4 ~t:3 ~b:2)

(* --- Pre-computed --------------------------------------------------------------- *)

let test_precomputed_lookup () =
  let c = B.Precomputed.setup (Drbg.create "precomp") in
  let store =
    B.Precomputed.precompute c table
      ~aggregates:[ Query.Sum "v"; Query.Count ]
      ~group_columns:[ "g"; "f" ] ~threshold:2
      ~filters:[ [ ("f", vi 0) ]; [ ("f", vi 1) ] ]
  in
  let q = Query.make ~group_by:[ "g" ] (Query.Sum "v") in
  (match B.Precomputed.query c store q with
   | None -> Alcotest.fail "missing cell"
   | Some rs ->
     Alcotest.(check (list (triple (list string) int int))) "lookup" (oracle q)
       (List.map
          (fun r -> (List.map Value.to_string r.B.Precomputed.group, r.B.Precomputed.sum, r.B.Precomputed.count))
          rs));
  (* A filter that was not materialized is simply unavailable. *)
  Alcotest.(check bool) "unmaterialized filter" true
    (B.Precomputed.query c store (Query.make ~where:[ ("f", vi 2) ] ~group_by:[ "g" ] Query.Count)
     = None);
  (* Cells: 2 aggregates × 3 combos × 3 filter variants = 18. *)
  Alcotest.(check int) "cells" 18 (B.Precomputed.storage_cells store)

(* --- Download -------------------------------------------------------------------- *)

let test_download_matches_oracle () =
  let c = B.Download.setup ~schema (Drbg.create "download") in
  let enc = B.Download.encrypt_table c table in
  let q = Query.make ~group_by:[ "g"; "f" ] (Query.Sum "v") in
  Alcotest.(check (list (triple (list string) int int))) "download vs oracle" (oracle q)
    (List.map
       (fun r -> (List.map Value.to_string r.Executor.group, r.Executor.sum, r.Executor.count))
       (B.Download.query c enc q));
  Alcotest.(check bool) "bandwidth accounted" true (B.Download.bytes_transferred enc > 0)

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let props =
  [ qprop "ashe sum of random rows" 50
      QCheck.(list_of_size (QCheck.Gen.int_range 0 20) (int_range 0 10000))
      (fun ms ->
        let k = B.Ashe.gen_key (Drbg.create "ashe-prop") in
        let c =
          List.fold_left
            (fun (acc, id) m -> (B.Ashe.add acc (B.Ashe.encrypt k ~id m), id + 1))
            (B.Ashe.zero, 0) ms
          |> fst
        in
        B.Ashe.decrypt k c = List.fold_left ( + ) 0 ms);
    qprop "det injective on distinct values" 100 QCheck.(pair small_string small_string)
      (fun (a, b) ->
        let k = Det.gen_key (Drbg.create "det-prop") in
        a = b || Det.encrypt k a <> Det.encrypt k b);
  ]

let () =
  Alcotest.run "baselines"
    [ ("det", [ Alcotest.test_case "roundtrip" `Quick test_det_roundtrip ]);
      ( "ashe",
        [ Alcotest.test_case "roundtrip" `Quick test_ashe_roundtrip;
          Alcotest.test_case "additive" `Quick test_ashe_additive;
          Alcotest.test_case "id-dependent pads" `Quick test_ashe_hides_values ] );
      ( "cryptdb",
        [ Alcotest.test_case "matches oracle" `Quick test_cryptdb_matches_oracle;
          Alcotest.test_case "leaks histogram" `Quick test_cryptdb_leaks_histogram ] );
      ( "seabed",
        [ Alcotest.test_case "matches oracle" `Quick test_seabed_matches_oracle;
          Alcotest.test_case "flattens common values" `Quick test_seabed_flattens_common_values;
          Alcotest.test_case "client cost" `Quick test_seabed_client_cost_grows_with_rows;
          Alcotest.test_case "splay storage model" `Quick test_seabed_splay_storage_model ] );
      ("precomputed", [ Alcotest.test_case "lookup" `Quick test_precomputed_lookup ]);
      ("download", [ Alcotest.test_case "matches oracle" `Quick test_download_matches_oracle ]);
      ("properties", props);
    ]

(* Property tests for the leakage auditor: over random tables and random
   GROUP BY / WHERE queries, an honest run of Algorithm 5 must produce
   an access-pattern trace that Leakage.audit_check accepts (the server
   touched exactly what the declared leakage L of §4.2 licenses), while
   a server that reads one extra index entry — or pairs more rows than
   the prediction allows — must be flagged. Failures replay via the
   runner's case seed (SAGMA_PROP_SEED). *)

module Value = Sagma_db.Value
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module Audit = Sagma_obs.Audit
module Dbgen = Sagma_prop.Dbgen
module R = Sagma_prop.Runner
open Sagma

let scenario_arb =
  R.arbitrary ~shrink:Dbgen.scenario_shrink ~print:Dbgen.print_scenario
    (Dbgen.scenario_gen ~max_rows:10 ~max_queries:8 ())

let config_of (sc : Dbgen.scenario) =
  Config.make ~bucket_size:sc.bucket_size ~max_group_attrs:sc.max_group_attrs
    ~filter_columns:(List.map fst sc.filter_domains) ~value_columns:sc.value_columns
    ~group_columns:(List.map fst sc.group_domains) ()

let setup_enc ~seed (sc : Dbgen.scenario) =
  let client = Scheme.setup (config_of sc) ~domains:sc.group_domains (Drbg.create seed) in
  (client, Scheme.encrypt_table client sc.table)

(* Every audited (table, query) pair across all properties; the
   acceptance bar for this suite is at least 200. *)
let pairs = ref 0

let with_audit f =
  Fun.protect
    ~finally:(fun () ->
      Audit.set_enabled false;
      Audit.reset ())
    (fun () ->
      Audit.reset ();
      Audit.set_enabled true;
      f ())

let audited_trace enc tok =
  incr pairs;
  Audit.begin_request !pairs;
  ignore (Scheme.aggregate enc tok);
  match Audit.end_request () with
  | Some t -> t
  | None -> failwith "auditing enabled but no trace recorded"

let report_fail sc q errs =
  Printf.printf "    %s\n    scenario: %s\n    %s\n" (Query.to_sql q)
    (Dbgen.print_scenario sc)
    (String.concat "\n    " errs);
  false

(* --- honest executions pass ---------------------------------------------------- *)

let t_honest = R.test ~count:60 ~name:"honest aggregation matches declared leakage"
    scenario_arb
    (fun sc ->
      with_audit @@ fun () ->
      let client, enc = setup_enc ~seed:"prop-audit" sc in
      List.for_all
        (fun q ->
          let tok = Scheme.token client q in
          let t = audited_trace enc tok in
          match Leakage.audit_check enc tok t with
          | Audit.Pass -> true
          | Audit.Fail errs -> report_fail sc q errs)
        sc.queries)

(* --- mutated servers are flagged ------------------------------------------------ *)

(* A keyword no honest token ever queries: the forged probe goes through
   the production recording path (audited_search), exactly as a
   compromised server walking an extra index entry would. *)
let rogue_probe client enc =
  let rogue =
    Scheme.Sse.token client.Scheme.sse_key
      (Scheme.filter_keyword ~column:"__rogue__" (Value.Str "x"))
  in
  ignore (Scheme.audited_search ~kind:"sse.filter" enc.Scheme.index rogue)

let t_extra_probe = R.test ~count:10 ~name:"extra index probe is flagged"
    scenario_arb
    (fun sc ->
      with_audit @@ fun () ->
      let client, enc = setup_enc ~seed:"prop-audit-probe" sc in
      let q = List.hd sc.queries in
      let tok = Scheme.token client q in
      incr pairs;
      Audit.begin_request !pairs;
      ignore (Scheme.aggregate enc tok);
      rogue_probe client enc;
      let t = Option.get (Audit.end_request ()) in
      match Leakage.audit_check enc tok t with
      | Audit.Fail _ -> true
      | Audit.Pass ->
        Printf.printf "    forged probe escaped: %s\n" (Query.to_sql q);
        false)

let t_extra_pairing = R.test ~count:10 ~name:"excess paired rows are flagged"
    scenario_arb
    (fun sc ->
      with_audit @@ fun () ->
      let client, enc = setup_enc ~seed:"prop-audit-pair" sc in
      let q = List.hd sc.queries in
      let tok = Scheme.token client q in
      incr pairs;
      Audit.begin_request !pairs;
      ignore (Scheme.aggregate enc tok);
      (* No prediction can license more paired rows than the table has. *)
      Audit.rows_paired (Array.length enc.Scheme.rows + 1);
      let t = Option.get (Audit.end_request ()) in
      match Leakage.audit_check enc tok t with
      | Audit.Fail _ -> true
      | Audit.Pass ->
        Printf.printf "    excess pairing escaped: %s\n" (Query.to_sql q);
        false)

(* --- meta: failing audits shrink and replay ------------------------------------ *)

module Table = Sagma_db.Table

(* A deliberately broken property (it rejects any populated table) must
   fail, shrink to the minimal (table, query) scenario — one row and one
   query, since the shrinker drops rows first and never drops the last
   query — and print a case seed that replays to the byte-identical
   minimized counterexample. This pins the debugging loop every FAIL in
   this suite relies on. *)
let shrink_meta_ok () =
  (* Greedy shrinking recurses into the first still-failing candidate,
     so the last scenario the property rejects is the reported minimum. *)
  let minimal = ref None in
  let broken =
    R.test ~count:10 ~name:"audit-meta(deliberately broken)" scenario_arb (fun sc ->
        let failing = Table.row_count sc.Dbgen.table > 0 in
        if failing then minimal := Some sc;
        not failing)
  in
  (* The report's first line names the failing case index, which
     legitimately differs on replay (it becomes case 0); everything from
     the counterexample block on must match byte-for-byte. *)
  let minimized_part report =
    match String.index_opt report '\n' with
    | Some i -> String.sub report i (String.length report - i)
    | None -> report
  in
  match R.failure_of ~seed:"prop-audit-meta" broken with
  | None ->
    Printf.printf "  FAIL meta: deliberately broken property did not fail\n";
    false
  | Some (cs, report) ->
    let sc = Option.get !minimal in
    let is_minimal =
      Table.row_count sc.Dbgen.table = 1 && List.length sc.Dbgen.queries = 1
    in
    if not is_minimal then
      Printf.printf "  FAIL meta: shrink did not minimize (rows=%d, queries=%d)\n"
        (Table.row_count sc.Dbgen.table)
        (List.length sc.Dbgen.queries);
    let replayed =
      match R.failure_of ~seed:cs ~count:1 broken with
      | Some (cs', report') -> cs' = cs && minimized_part report' = minimized_part report
      | None -> false
    in
    if not replayed then
      Printf.printf "  FAIL meta: case seed %S did not replay the same minimal case\n" cs;
    if is_minimal && replayed then
      Printf.printf "  ok   failing audits shrink to (1 row, 1 query) and replay by seed\n";
    is_minimal && replayed

let () =
  let failures =
    R.run_result ~suite:"test_prop_audit" [ t_honest; t_extra_probe; t_extra_pairing ]
  in
  let meta_ok = shrink_meta_ok () in
  Printf.printf "test_prop_audit: %d table/query pairs audited\n" !pairs;
  if !pairs < 200 then
    Printf.printf "test_prop_audit: FAILED — expected at least 200 audited pairs\n";
  if failures > 0 || (not meta_ok) || !pairs < 200 then exit 1

(* Tests for the relational substrate: tables, CSV, the plaintext
   executor oracle, TPC-H generation, and the Figure 7 workloads. *)

module Db = Sagma_db
module Value = Db.Value
module Table = Db.Table
module Query = Db.Query
module Executor = Db.Executor
module Csv = Db.Csv
module Tpch = Db.Tpch
module Workload = Db.Workload
module Drbg = Sagma_crypto.Drbg

(* The paper's running example (Table 1). *)
let example_schema : Table.schema =
  [ { Table.name = "ID"; ty = Value.TInt };
    { Table.name = "Salary"; ty = Value.TInt };
    { Table.name = "Gender"; ty = Value.TStr };
    { Table.name = "Name"; ty = Value.TStr };
    { Table.name = "Department"; ty = Value.TStr } ]

let example_table =
  Table.of_rows example_schema
    [ [| Value.Int 1; Value.Int 1000; Value.Str "male"; Value.Str "Henry"; Value.Str "Sales" |];
      [| Value.Int 2; Value.Int 5000; Value.Str "female"; Value.Str "Jessica"; Value.Str "Sales" |];
      [| Value.Int 3; Value.Int 1500; Value.Str "female"; Value.Str "Alice"; Value.Str "Finance" |];
      [| Value.Int 4; Value.Int 3000; Value.Str "male"; Value.Str "Bob"; Value.Str "Sales" |];
      [| Value.Int 5; Value.Int 2000; Value.Str "male"; Value.Str "Paul"; Value.Str "Facility" |] ]

let result_to_list rs =
  List.map (fun r -> (List.map Value.to_string r.Executor.group, r.Executor.sum, r.Executor.count)) rs

(* --- table basics -------------------------------------------------------- *)

let test_table_basics () =
  Alcotest.(check int) "rows" 5 (Table.row_count example_table);
  Alcotest.(check int) "salary idx" 1 (Table.column_index example_table "Salary");
  Alcotest.(check (list string)) "distinct departments"
    [ "Facility"; "Finance"; "Sales" ]
    (List.map Value.to_string (Table.distinct example_table "Department"));
  Alcotest.check_raises "unknown column"
    (Invalid_argument "Table.column_index: no column \"Nope\"") (fun () ->
      ignore (Table.column_index example_table "Nope"))

let test_table_type_checking () =
  let t = Table.make example_schema in
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Table.insert: type mismatch in column \"Salary\"") (fun () ->
      ignore
        (Table.insert t
           [| Value.Int 9; Value.Str "oops"; Value.Str "male"; Value.Str "X"; Value.Str "Y" |]))

(* --- executor: the paper's Listing 1 and Listing 2 ---------------------- *)

let test_listing1 () =
  (* SELECT SUM(Salary) WHERE Department = 'Sales' GROUP BY Gender, Department *)
  let q =
    Query.make
      ~where:[ ("Department", Value.Str "Sales") ]
      ~group_by:[ "Gender"; "Department" ]
      (Query.Sum "Salary")
  in
  Alcotest.(check (list (triple (list string) int int)))
    "Table 2 result"
    [ ([ "female"; "Sales" ], 5000, 1); ([ "male"; "Sales" ], 4000, 2) ]
    (result_to_list (Executor.run example_table q))

let test_listing2 () =
  (* SELECT SUM(Salary) GROUP BY Gender, Department — Table 7. *)
  let q = Query.make ~group_by:[ "Gender"; "Department" ] (Query.Sum "Salary") in
  Alcotest.(check (list (triple (list string) int int)))
    "Table 7 result"
    [ ([ "female"; "Finance" ], 1500, 1);
      ([ "female"; "Sales" ], 5000, 1);
      ([ "male"; "Facility" ], 2000, 1);
      ([ "male"; "Sales" ], 4000, 2) ]
    (result_to_list (Executor.run example_table q))

let test_count_and_avg () =
  let qc = Query.make ~group_by:[ "Gender" ] Query.Count in
  Alcotest.(check (list (triple (list string) int int)))
    "count by gender"
    [ ([ "female" ], 0, 2); ([ "male" ], 0, 3) ]
    (result_to_list (Executor.run example_table qc));
  let qa = Query.make ~group_by:[ "Gender" ] (Query.Avg "Salary") in
  let results = Executor.run example_table qa in
  let avgs = List.map (fun r -> Executor.aggregate_value qa r) results in
  Alcotest.(check (list (float 0.001))) "avg" [ 3250.; 2000. ] avgs

let test_where_empty_result () =
  let q =
    Query.make ~where:[ ("Department", Value.Str "Nowhere") ] ~group_by:[ "Gender" ]
      Query.Count
  in
  Alcotest.(check int) "no groups" 0 (List.length (Executor.run example_table q))

let test_multi_where () =
  let q =
    Query.make
      ~where:[ ("Department", Value.Str "Sales"); ("Gender", Value.Str "male") ]
      ~group_by:[ "Department" ] (Query.Sum "Salary")
  in
  Alcotest.(check (list (triple (list string) int int)))
    "conjunction" [ ([ "Sales" ], 4000, 2) ]
    (result_to_list (Executor.run example_table q))

let test_query_validation () =
  Alcotest.check_raises "empty group by" (Invalid_argument "Query.make: empty GROUP BY")
    (fun () -> ignore (Query.make ~group_by:[] Query.Count));
  Alcotest.check_raises "duplicate attr"
    (Invalid_argument "Query.make: duplicate grouping attribute") (fun () ->
      ignore (Query.make ~group_by:[ "a"; "a" ] Query.Count))

let test_to_sql () =
  let q =
    Query.make
      ~where:[ ("Department", Value.Str "Sales") ]
      ~group_by:[ "Gender"; "Department" ]
      (Query.Sum "Salary")
  in
  Alcotest.(check string) "sql"
    "SELECT SUM(Salary), Gender, Department FROM t WHERE Department = 'Sales' GROUP BY Gender, Department;"
    (Query.to_sql q)

(* --- csv ----------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let rendered = Csv.render example_table in
  let parsed = Csv.parse ~schema:example_schema rendered in
  Alcotest.(check int) "rows" 5 (Table.row_count parsed);
  Alcotest.(check string) "stable" rendered (Csv.render parsed)

let test_csv_quoting () =
  let schema = [ { Table.name = "a"; ty = Value.TStr }; { Table.name = "b"; ty = Value.TInt } ] in
  let t = Table.of_rows schema [ [| Value.Str "x,y\"z"; Value.Int 7 |] ] in
  let parsed = Csv.parse ~schema (Csv.render t) in
  (match Table.rows parsed with
   | [ [| Value.Str s; Value.Int 7 |] ] -> Alcotest.(check string) "field" "x,y\"z" s
   | _ -> Alcotest.fail "bad parse")

(* --- tpch ---------------------------------------------------------------- *)

let test_tpch_shape () =
  let t = Tpch.generate ~rows:500 (Drbg.create "tpch-test") in
  Alcotest.(check int) "rows" 500 (Table.row_count t);
  let flags = List.map Value.to_string (Table.distinct t "l_returnflag") in
  List.iter (fun f -> Alcotest.(check bool) ("flag " ^ f) true (List.mem f [ "A"; "N"; "R" ])) flags;
  let statuses = List.map Value.to_string (Table.distinct t "l_linestatus") in
  List.iter (fun s -> Alcotest.(check bool) ("status " ^ s) true (List.mem s [ "O"; "F" ])) statuses;
  (* Quantities in [1, 50]. *)
  List.iter
    (fun row ->
      let q = Value.as_int row.(Table.column_index t "l_quantity") in
      Alcotest.(check bool) "quantity range" true (q >= 1 && q <= 50))
    (Table.rows t)

let test_tpch_deterministic () =
  let t1 = Tpch.generate ~rows:50 (Drbg.create "seed-x") in
  let t2 = Tpch.generate ~rows:50 (Drbg.create "seed-x") in
  Alcotest.(check string) "same seed same table" (Csv.render t1) (Csv.render t2);
  let t3 = Tpch.generate ~rows:50 (Drbg.create "seed-y") in
  Alcotest.(check bool) "different seed differs" true (Csv.render t1 <> Csv.render t3)

let test_tpch_queries_run () =
  let t = Tpch.generate ~rows:200 (Drbg.create "tpch-q") in
  let r1 = Executor.run t Tpch.query_sum_by_returnflag in
  Alcotest.(check bool) "some groups" true (List.length r1 >= 2 && List.length r1 <= 3);
  let r2 = Executor.run t Tpch.query_count_by_flag_status in
  let total = List.fold_left (fun acc r -> acc + r.Executor.count) 0 r2 in
  Alcotest.(check int) "counts partition rows" 200 total

(* --- workloads (Figure 7) ------------------------------------------------ *)

let test_workload_figure7_shape () =
  let d = Drbg.create "workload" in
  let check_app app spec =
    let queries = Workload.generate app d 2000 in
    List.iter
      (fun (k, lo, hi) ->
        let share = Workload.share_at_most queries k in
        Alcotest.(check bool)
          (Printf.sprintf "%s <=%d attrs in [%g, %g] (got %g)"
             (Workload.application_name app) k lo hi share)
          true
          (share >= lo && share <= hi))
      spec
  in
  (* Paper: Nextcloud 100/100/100, WordPress 97/99/100, Piwik 25/83/95.
     Allow sampling slack around the reported percentages. *)
  check_app Workload.Nextcloud [ (1, 100., 100.); (2, 100., 100.); (3, 100., 100.) ];
  check_app Workload.Wordpress [ (1, 94., 99.5); (2, 97., 100.); (3, 100., 100.) ];
  check_app Workload.Piwik [ (1, 20., 30.); (2, 78., 88.); (3, 91., 98.) ]

let test_workload_max_attributes () =
  let d = Drbg.create "workload-max" in
  Alcotest.(check int) "nextcloud max 1" 1
    (Workload.max_attributes (Workload.generate Workload.Nextcloud d 500));
  Alcotest.(check bool) "piwik max 5" true
    (Workload.max_attributes (Workload.generate Workload.Piwik d 2000) = 5)

let test_nextcloud_count_only () =
  let d = Drbg.create "workload-agg" in
  let queries = Workload.generate Workload.Nextcloud d 300 in
  List.iter
    (fun q ->
      match q.Query.aggregate with
      | Query.Count -> ()
      | _ -> Alcotest.fail "Nextcloud uses COUNT exclusively (paper §6.1)")
    queries

(* --- SQL parser ----------------------------------------------------------- *)

module Sql = Db.Sql

let test_sql_basic () =
  let stmt =
    Sql.parse "SELECT SUM(Salary), Gender, Department FROM Example WHERE Department = 'Sales' GROUP BY Gender, Department;"
  in
  Alcotest.(check string) "table" "Example" stmt.Sql.table;
  let q = stmt.Sql.query in
  Alcotest.(check (list string)) "group by" [ "Gender"; "Department" ] q.Query.group_by;
  Alcotest.(check bool) "aggregate" true (q.Query.aggregate = Query.Sum "Salary");
  Alcotest.(check bool) "where" true (q.Query.where = [ ("Department", Value.Str "Sales") ])

let test_sql_roundtrip_with_to_sql () =
  (* Query.to_sql output parses back to the same query. *)
  List.iter
    (fun q ->
      let q' = Sql.parse_query (Query.to_sql q) in
      Alcotest.(check string) "roundtrip" (Query.to_sql q) (Query.to_sql q'))
    [ Query.make ~group_by:[ "g" ] Query.Count;
      Query.make ~group_by:[ "a"; "b" ] (Query.Avg "v");
      Query.make ~where:[ ("f", Value.Str "x''y") ] ~group_by:[ "g" ] (Query.Sum "v");
      Query.make ~ranges:[ ("t", 3, 9) ] ~group_by:[ "g" ] (Query.Sum "v") ]

let test_sql_count_and_case () =
  let q = Sql.parse_query "select count(*) from t group by g" in
  Alcotest.(check bool) "count" true (q.Query.aggregate = Query.Count);
  let q2 = Sql.parse_query "SELECT COUNT(*) FROM t GROUP BY g;" in
  Alcotest.(check bool) "case-insensitive" true (q2.Query.aggregate = Query.Count)

let test_sql_between () =
  let q =
    Sql.parse_query
      "SELECT SUM(v) FROM t WHERE g = 'x' AND n BETWEEN 10 AND 20 AND m BETWEEN 1 AND 2 GROUP BY g"
  in
  Alcotest.(check bool) "eq clause" true (q.Query.where = [ ("g", Value.Str "x") ]);
  Alcotest.(check bool) "ranges" true (q.Query.ranges = [ ("n", 10, 20); ("m", 1, 2) ])

let test_sql_int_literal_and_quotes () =
  let q = Sql.parse_query "SELECT SUM(v) FROM t WHERE f = 42 GROUP BY g" in
  Alcotest.(check bool) "int literal" true (q.Query.where = [ ("f", Value.Int 42) ]);
  let q2 = Sql.parse_query "SELECT SUM(v) FROM t WHERE f = 'it''s' GROUP BY g" in
  Alcotest.(check bool) "escaped quote" true (q2.Query.where = [ ("f", Value.Str "it's") ])

let test_sql_errors () =
  let expect_error input =
    Alcotest.(check bool) input true
      (try
         ignore (Sql.parse input);
         false
       with Sql.Parse_error _ -> true)
  in
  List.iter expect_error
    [ "SELECT SUM(v) FROM t";                               (* no GROUP BY *)
      "SELECT MAX(v) FROM t GROUP BY g";                    (* unsupported agg *)
      "SELECT SUM(v), x FROM t GROUP BY g";                 (* select/group mismatch *)
      "SELECT SUM(v) FROM t WHERE f GROUP BY g";            (* bad clause *)
      "SELECT SUM(v) FROM t GROUP BY g extra";              (* trailing *)
      "SELECT SUM(v) FROM t WHERE f = 'unterminated GROUP BY g" ]

let test_executor_ranges () =
  let q = Query.make ~ranges:[ ("v", 1000, 2000) ] ~group_by:[ "Gender" ] Query.Count in
  (* Values 1000, 1500, 2000 fall inside; 3000, 5000 outside. *)
  let q = { q with Query.ranges = [ ("Salary", 1000, 2000) ] } in
  Alcotest.(check (list (triple (list string) int int)))
    "between filter"
    [ ([ "female" ], 0, 1); ([ "male" ], 0, 2) ]
    (result_to_list (Executor.run example_table q))

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* Random small tables for executor properties. *)
let random_table_gen =
  QCheck.make
    ~print:(fun rows -> string_of_int (List.length rows))
    QCheck.Gen.(
      list_size (int_range 0 40)
        (triple (int_range 0 500) (int_range 0 2) (int_range 0 3)))

let mini_schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt };
    { Table.name = "g1"; ty = Value.TInt };
    { Table.name = "g2"; ty = Value.TInt } ]

let mk_table rows =
  Table.of_rows mini_schema
    (List.map (fun (v, g1, g2) -> [| Value.Int v; Value.Int g1; Value.Int g2 |]) rows)

let props =
  [ qprop "group sums total to table sum" 100 random_table_gen
      (fun rows ->
        let t = mk_table rows in
        let q = Query.make ~group_by:[ "g1" ] (Query.Sum "v") in
        let results = Executor.run t q in
        let total = List.fold_left (fun acc r -> acc + r.Executor.sum) 0 results in
        total = List.fold_left (fun acc (v, _, _) -> acc + v) 0 rows);
    qprop "group counts partition rows" 100 random_table_gen
      (fun rows ->
        let t = mk_table rows in
        let q = Query.make ~group_by:[ "g1"; "g2" ] Query.Count in
        let results = Executor.run t q in
        List.fold_left (fun acc r -> acc + r.Executor.count) 0 results = List.length rows);
    qprop "where filters are a restriction" 100 random_table_gen
      (fun rows ->
        let t = mk_table rows in
        let q = Query.make ~where:[ ("g2", Value.Int 0) ] ~group_by:[ "g1" ] Query.Count in
        let filtered = Executor.run t q in
        let all = Executor.run t (Query.make ~group_by:[ "g1" ] Query.Count) in
        List.for_all
          (fun r ->
            match List.find_opt (fun a -> a.Executor.group = r.Executor.group) all with
            | None -> false
            | Some a -> r.Executor.count <= a.Executor.count)
          filtered);
    qprop "csv roundtrip preserves table" 50 random_table_gen
      (fun rows ->
        let t = mk_table rows in
        Csv.render (Csv.parse ~schema:mini_schema (Csv.render t)) = Csv.render t);
  ]

let () =
  Alcotest.run "db"
    [ ( "table",
        [ Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "type checking" `Quick test_table_type_checking ] );
      ( "executor",
        [ Alcotest.test_case "listing 1 (Table 2)" `Quick test_listing1;
          Alcotest.test_case "listing 2 (Table 7)" `Quick test_listing2;
          Alcotest.test_case "count and avg" `Quick test_count_and_avg;
          Alcotest.test_case "where empty" `Quick test_where_empty_result;
          Alcotest.test_case "multi where" `Quick test_multi_where;
          Alcotest.test_case "query validation" `Quick test_query_validation;
          Alcotest.test_case "to_sql" `Quick test_to_sql ] );
      ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting ] );
      ( "tpch",
        [ Alcotest.test_case "shape" `Quick test_tpch_shape;
          Alcotest.test_case "deterministic" `Quick test_tpch_deterministic;
          Alcotest.test_case "queries run" `Quick test_tpch_queries_run ] );
      ( "sql",
        [ Alcotest.test_case "basic" `Quick test_sql_basic;
          Alcotest.test_case "to_sql roundtrip" `Quick test_sql_roundtrip_with_to_sql;
          Alcotest.test_case "count + case" `Quick test_sql_count_and_case;
          Alcotest.test_case "between" `Quick test_sql_between;
          Alcotest.test_case "literals" `Quick test_sql_int_literal_and_quotes;
          Alcotest.test_case "errors" `Quick test_sql_errors;
          Alcotest.test_case "executor ranges" `Quick test_executor_ranges ] );
      ( "workload",
        [ Alcotest.test_case "figure 7 shape" `Quick test_workload_figure7_shape;
          Alcotest.test_case "max attributes" `Quick test_workload_max_attributes;
          Alcotest.test_case "nextcloud count-only" `Quick test_nextcloud_count_only ] );
      ("properties", props);
    ]

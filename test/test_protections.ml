(* Tests for SAGMA's building blocks: bucket mappings, shift polynomials,
   monomial management, and the §5 protection mechanisms (exposure,
   optimal partitioning, dummy rows, value splits). *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Drbg = Sagma_crypto.Drbg
open Sagma

let n = Z.of_string "604462909807314587353111" (* random-ish 79-bit prime *)

let str s = Value.Str s
let vi i = Value.Int i

(* --- mapping -------------------------------------------------------------- *)

let domain5 = [ str "a"; str "b"; str "c"; str "d"; str "e" ]

let test_mapping_permutation () =
  let m = Mapping.make Mapping.Prf_random "key-1" domain5 ~bucket_size:2 in
  (* Injective onto 0..4. *)
  let idxs = List.sort compare (List.map (Mapping.index m) domain5) in
  Alcotest.(check (list int)) "bijection" [ 0; 1; 2; 3; 4 ] idxs;
  (* Deterministic per key, different across keys. *)
  let m' = Mapping.make Mapping.Prf_random "key-1" domain5 ~bucket_size:2 in
  List.iter
    (fun v -> Alcotest.(check int) "stable" (Mapping.index m v) (Mapping.index m' v))
    domain5;
  let m2 = Mapping.make Mapping.Prf_random "key-2" domain5 ~bucket_size:2 in
  Alcotest.(check bool) "keyed" true
    (List.exists (fun v -> Mapping.index m v <> Mapping.index m2 v) domain5)

let test_mapping_buckets () =
  let m = Mapping.make (Mapping.Explicit domain5) "k" domain5 ~bucket_size:2 in
  Alcotest.(check int) "num buckets" 3 (Mapping.num_buckets m);
  Alcotest.(check int) "bucket a" 0 (Mapping.bucket m (str "a"));
  Alcotest.(check int) "offset b" 1 (Mapping.offset m (str "b"));
  Alcotest.(check int) "bucket e" 2 (Mapping.bucket m (str "e"));
  Alcotest.(check int) "offset e" 0 (Mapping.offset m (str "e"));
  (* Inverse lookups, including the uninhabited slot of the partial
     last bucket. *)
  Alcotest.(check bool) "value_at" true
    (Mapping.value_at m ~bucket:1 ~offset:0 = Some (str "c"));
  Alcotest.(check bool) "empty slot" true (Mapping.value_at m ~bucket:2 ~offset:1 = None);
  Alcotest.(check (list string)) "bucket members" [ "c"; "d" ]
    (List.map Value.to_string (Mapping.bucket_members m 1))

let test_mapping_out_of_domain () =
  let m = Mapping.make (Mapping.Explicit domain5) "k" domain5 ~bucket_size:2 in
  Alcotest.(check bool) "mem" true (Mapping.mem m (str "a"));
  Alcotest.(check bool) "not mem" false (Mapping.mem m (str "zz"));
  Alcotest.check_raises "index raises"
    (Invalid_argument "Mapping.index: value \"zz\" outside setup domain") (fun () ->
      ignore (Mapping.index m (str "zz")))

let test_mapping_duplicate_rejected () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Mapping.of_order: duplicate domain value")
    (fun () -> ignore (Mapping.of_order [ str "a"; str "a" ] ~bucket_size:2))

(* --- polynomials ----------------------------------------------------------- *)

let test_indicator_delta () =
  for b = 1 to 7 do
    for j = 0 to b - 1 do
      let coeffs = Polynomial.indicator ~n ~bucket_size:b j in
      Alcotest.(check int) "degree" b (Array.length coeffs);
      for x = 0 to b - 1 do
        let v = Polynomial.eval ~n coeffs x in
        let expected = if x = j then Z.one else Z.zero in
        Alcotest.(check string) (Printf.sprintf "I_%d(%d) B=%d" j x b)
          (Z.to_string expected) (Z.to_string v)
      done
    done
  done

let test_interpolate () =
  let targets = Array.map Z.of_int [| 7; 11; 13; 17 |] in
  let coeffs = Polynomial.interpolate ~n targets in
  Array.iteri
    (fun x want ->
      Alcotest.(check string) (Printf.sprintf "P(%d)" x) (Z.to_string want)
        (Z.to_string (Polynomial.eval ~n coeffs x)))
    targets

let test_packed_shift () =
  let coeffs = Polynomial.packed_shift ~n ~bucket_size:3 ~value_bits:8 in
  List.iteri
    (fun x want ->
      Alcotest.(check string) (Printf.sprintf "2^(8*%d)" x) (string_of_int want)
        (Z.to_string (Polynomial.eval ~n coeffs x)))
    [ 1; 256; 65536 ]

let test_multivariate_indicator () =
  let b = 3 in
  List.iter
    (fun j ->
      let terms = Polynomial.multivariate_indicator ~n ~bucket_size:b j in
      for x1 = 0 to b - 1 do
        for x2 = 0 to b - 1 do
          let v = Polynomial.eval_terms ~n terms [| x1; x2 |] in
          let expected = if [| x1; x2 |] = j then Z.one else Z.zero in
          Alcotest.(check string)
            (Printf.sprintf "I_%d%d(%d,%d)" j.(0) j.(1) x1 x2)
            (Z.to_string expected) (Z.to_string v)
        done
      done)
    [ [| 0; 0 |]; [| 1; 2 |]; [| 2; 2 |] ]

let test_multivariate_term_count () =
  (* At most B^q terms (the full monomial basis over the query). *)
  let terms = Polynomial.multivariate_indicator ~n ~bucket_size:4 [| 1; 3 |] in
  Alcotest.(check bool) "bounded" true (List.length terms <= 16)

(* --- monomials ------------------------------------------------------------- *)

let test_monomial_count_formula_vs_enumeration () =
  List.iter
    (fun (l, t, b) ->
      let m = Monomials.make ~num_columns:l ~bucket_size:b ~threshold:t in
      Alcotest.(check int)
        (Printf.sprintf "m(l=%d,t=%d,B=%d)" l t b)
        (Monomials.count_formula ~num_columns:l ~bucket_size:b ~threshold:t)
        (Monomials.count m))
    [ (1, 1, 2); (2, 1, 3); (3, 2, 2); (3, 3, 2); (4, 3, 3); (5, 2, 4); (4, 4, 2) ]

let test_monomial_figure2_example () =
  (* §3.4: three attributes, B = 2 — improved needs 7, naïve 19. *)
  Alcotest.(check int) "improved" 7
    (Monomials.count_formula ~num_columns:3 ~bucket_size:2 ~threshold:3);
  Alcotest.(check int) "naive" 19
    (Monomials.count_naive ~num_columns:3 ~bucket_size:2 ~threshold:3)

let test_monomial_table9_increments () =
  (* Table 9 row t: m(l,t) − m(l,t−1) = C(l,t)·(B−1)^t. *)
  List.iter
    (fun (l, b) ->
      for t = 1 to l do
        let inc =
          Monomials.count_formula ~num_columns:l ~bucket_size:b ~threshold:t
          - (if t = 1 then 0
             else Monomials.count_formula ~num_columns:l ~bucket_size:b ~threshold:(t - 1))
        in
        Alcotest.(check int)
          (Printf.sprintf "increment l=%d t=%d B=%d" l t b)
          (Storage.monomial_increment ~l ~t ~b)
          inc
      done)
    [ (3, 2); (4, 3); (5, 2) ]

let test_monomial_positions () =
  let m = Monomials.make ~num_columns:3 ~bucket_size:3 ~threshold:2 in
  (* Every enumerated vector is found at its own position. *)
  Array.iteri
    (fun i e -> Alcotest.(check int) "roundtrip" i (Monomials.position m e))
    m.Monomials.vectors;
  (* Vectors over threshold are rejected. *)
  Alcotest.check_raises "over threshold"
    (Invalid_argument "Monomials.position: unsupported exponent vector 1,1,1") (fun () ->
      ignore (Monomials.position m [| 1; 1; 1 |]))

let test_monomial_eval () =
  Alcotest.(check string) "x^2*y" "12"
    (Z.to_string (Monomials.eval_monomial [| 2; 1 |] [| 2; 3 |]));
  Alcotest.(check string) "empty exponents" "1"
    (Z.to_string (Monomials.eval_monomial [| 0; 0 |] [| 5; 7 |]))

let test_lift_exponents () =
  let m = Monomials.make ~num_columns:4 ~bucket_size:3 ~threshold:2 in
  let full = Monomials.lift_exponents m ~query_columns:[| 2; 0 |] [| 1; 2 |] in
  Alcotest.(check (array int)) "lift" [| 2; 0; 1; 0 |] full

(* --- bucketing / §5 -------------------------------------------------------- *)

let test_exposure_section5_example () =
  (* §5: values with frequencies 1, 2, 3 and B = 2. Putting {g1,g3}
     together gives unique bucket frequencies (4, 2) — full exposure of
     bucket membership. Putting {g1,g2} together gives (3, 3) —
     halved. *)
  let hist = [ (str "g1", 1); (str "g2", 2); (str "g3", 3) ] in
  let bad = Mapping.of_order [ str "g1"; str "g3"; str "g2" ] ~bucket_size:2 in
  let good = Mapping.of_order [ str "g1"; str "g2"; str "g3" ] ~bucket_size:2 in
  let e_bad = Bucketing.exposure bad hist in
  let e_good = Bucketing.exposure good hist in
  Alcotest.(check bool) (Printf.sprintf "good %g < bad %g" e_good e_bad) true (e_good < e_bad)

let test_exposure_bounds () =
  let hist = [ (str "a", 5); (str "b", 5); (str "c", 5); (str "d", 5) ] in
  let m = Mapping.of_order [ str "a"; str "b"; str "c"; str "d" ] ~bucket_size:2 in
  let e = Bucketing.exposure m hist in
  (* Two buckets with equal frequency, two members each: 1/(2*2). *)
  Alcotest.(check (float 0.0001)) "uniform case" 0.25 e;
  (* Degenerate: single bucket holding everything. *)
  let m1 = Mapping.of_order [ str "a"; str "b"; str "c"; str "d" ] ~bucket_size:4 in
  Alcotest.(check (float 0.0001)) "single bucket" 0.25 (Bucketing.exposure m1 hist)

let test_optimal_mapping_small () =
  let hist = [ (str "g1", 1); (str "g2", 2); (str "g3", 3) ] in
  let m = Bucketing.optimal_mapping hist ~bucket_size:2 in
  (* The optimum pairs g1 with g2 (freq 3+3); exposure 1/2 weighted…
     anything strictly better than the unique-frequency partition. *)
  let freqs = Bucketing.bucket_frequencies m hist in
  Array.sort compare freqs;
  Alcotest.(check (array int)) "balanced buckets" [| 3; 3 |] freqs

let test_optimal_mapping_undistinguishable_case () =
  (* §5: frequencies 1, 2, 4 — all partitions distinguishable; the search
     must still terminate and return some valid mapping. *)
  let hist = [ (str "x", 1); (str "y", 2); (str "z", 4) ] in
  let m = Bucketing.optimal_mapping hist ~bucket_size:2 in
  Alcotest.(check int) "valid" 2 (Mapping.num_buckets m);
  List.iter (fun (v, _) -> Alcotest.(check bool) "covers" true (Mapping.mem m v)) hist

let test_dummy_plan_equalizes () =
  let hist = [ (str "a", 10); (str "b", 2); (str "c", 7); (str "d", 1) ] in
  let m = Mapping.of_order [ str "a"; str "b"; str "c"; str "d" ] ~bucket_size:2 in
  let plan = Bucketing.dummy_plan_for_column m hist in
  (* Apply the plan to the histogram and recheck bucket frequencies. *)
  let padded = hist @ plan in
  let freqs = Bucketing.bucket_frequencies m padded in
  Alcotest.(check (array int)) "equalized" [| 12; 12 |] freqs;
  (* Already-equal buckets need no dummies. *)
  let even = [ (str "a", 3); (str "b", 3); (str "c", 3); (str "d", 3) ] in
  Alcotest.(check int) "no dummies" 0 (List.length (Bucketing.dummy_plan_for_column m even))

let test_dummy_rows_arity () =
  let m1 = Mapping.of_order [ str "a"; str "b" ] ~bucket_size:1 in
  let m2 = Mapping.of_order [ vi 1; vi 2 ] ~bucket_size:1 in
  let h1 = [ (str "a", 3); (str "b", 1) ] in
  let h2 = [ (vi 1, 2); (vi 2, 2) ] in
  let rows = Bucketing.dummy_rows [| m1; m2 |] [| h1; h2 |] in
  (* Column 1 needs 2 dummies, column 2 none → 2 rows of full arity. *)
  Alcotest.(check int) "count" 2 (List.length rows);
  List.iter (fun r -> Alcotest.(check int) "arity" 2 (Array.length r)) rows

let test_split_column () =
  let schema = [ { Table.name = "g"; ty = Value.TStr }; { Table.name = "v"; ty = Value.TInt } ] in
  let t =
    Table.of_rows schema
      (List.init 6 (fun i -> [| str "hot"; vi i |]) @ [ [| str "cold"; vi 100 |] ])
  in
  let t' = Bucketing.split_column t ~column:"g" ~value:(str "hot") ~parts:2 in
  let hist = Bucketing.histogram t' "g" in
  Alcotest.(check (list (pair string int))) "split histogram"
    [ ("cold", 1); ("hot.1", 3); ("hot.2", 3) ]
    (List.map (fun (v, c) -> (Value.to_string v, c)) hist);
  (* Totals preserved. *)
  Alcotest.(check int) "rows preserved" 7 (Table.row_count t')

let test_split_domain () =
  let d = Bucketing.split_domain [ str "x"; str "y" ] ~value:(str "x") ~parts:3 in
  Alcotest.(check (list string)) "domain" [ "x.1"; "x.2"; "x.3"; "y" ]
    (List.map Value.to_string d)

let test_split_rejects_int () =
  Alcotest.check_raises "int split"
    (Invalid_argument "Bucketing.split_domain: only string values are splittable") (fun () ->
      ignore (Bucketing.split_domain [ vi 1 ] ~value:(vi 1) ~parts:2))

let test_histogram () =
  let schema = [ { Table.name = "g"; ty = Value.TStr } ] in
  let t = Table.of_rows schema [ [| str "a" |]; [| str "b" |]; [| str "a" |] ] in
  Alcotest.(check (list (pair string int))) "histogram" [ ("a", 2); ("b", 1) ]
    (List.map (fun (v, c) -> (Value.to_string v, c)) (Bucketing.histogram t "g"))

(* --- naive multi-attribute scheme (Table 4) -------------------------------- *)

let test_naive_subsets () =
  let subs = Naive_multi.subsets ~l:3 ~t:2 in
  Alcotest.(check int) "count" 6 (List.length subs)

let test_naive_monomial_cost () =
  Alcotest.(check int) "naive l=3 t=3 B=2" 19 (Naive_multi.monomials_per_row ~l:3 ~t:3 ~b:2);
  Alcotest.(check bool) "reuse wins" true
    (Monomials.count_formula ~num_columns:3 ~bucket_size:2 ~threshold:3
     < Naive_multi.monomials_per_row ~l:3 ~t:3 ~b:2)

let test_naive_table4_leakage () =
  (* Two rows share both individual buckets but can split under a
     combined attribute with bucket size B (instead of B²). *)
  let gender = [ str "male"; str "female" ] in
  let dept = [ str "Sales"; str "Finance" ] in
  let m_g = Mapping.of_order gender ~bucket_size:2 in
  let m_d = Mapping.of_order dept ~bucket_size:2 in
  (* Combined domain in an order that separates the two rows' pairs. *)
  let pair g d = Value.Str (Value.encode (str g) ^ "|" ^ Value.encode (str d)) in
  let combined_domain =
    [ pair "male" "Sales"; pair "male" "Finance"; pair "female" "Sales"; pair "female" "Finance" ]
  in
  let m_c = Mapping.of_order combined_domain ~bucket_size:2 in
  let row1 = Naive_multi.buckets_of_row [| m_g; m_d |] m_c [| str "male"; str "Sales" |] in
  let row2 = Naive_multi.buckets_of_row [| m_g; m_d |] m_c [| str "female"; str "Finance" |] in
  Alcotest.(check bool) "Table 4 leak" true (Naive_multi.distinguishable row1 row2);
  (* With the safe combined bucket size B² = 4 the leak disappears. *)
  Alcotest.(check int) "safe size" 4 (Naive_multi.safe_combined_bucket_size ~b:2 ~arity:2);
  let m_c4 = Mapping.of_order combined_domain ~bucket_size:4 in
  let row1' = Naive_multi.buckets_of_row [| m_g; m_d |] m_c4 [| str "male"; str "Sales" |] in
  let row2' = Naive_multi.buckets_of_row [| m_g; m_d |] m_c4 [| str "female"; str "Finance" |] in
  Alcotest.(check bool) "no leak at B^2" false (Naive_multi.distinguishable row1' row2')

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let props =
  [ qprop "indicator sums to one over grid" 30 QCheck.(int_range 1 7)
      (fun b ->
        (* Σ_j I_j(x) = 1 for every x — partition of unity. *)
        let ok = ref true in
        for x = 0 to b - 1 do
          let total =
            List.fold_left
              (fun acc j ->
                Z.addm acc (Polynomial.eval ~n (Polynomial.indicator ~n ~bucket_size:b j) x) n)
              Z.zero
              (List.init b (fun j -> j))
          in
          if not (Z.equal total Z.one) then ok := false
        done;
        !ok);
    qprop "mapping roundtrip" 50
      QCheck.(pair (int_range 1 20) (int_range 1 6))
      (fun (nv, b) ->
        let domain = List.init nv (fun i -> vi i) in
        let m = Mapping.make Mapping.Prf_random "prop-key" domain ~bucket_size:b in
        List.for_all
          (fun v ->
            Mapping.value_at m ~bucket:(Mapping.bucket m v) ~offset:(Mapping.offset m v)
            = Some v)
          domain);
    qprop "optimal mapping never worse than prf" 40
      QCheck.(list_of_size (QCheck.Gen.int_range 2 6) (int_range 1 30))
      (fun freqs ->
        let hist = List.mapi (fun i f -> (vi i, f)) freqs in
        let domain = List.map fst hist in
        let opt = Bucketing.optimal_mapping ~max_domain:6 hist ~bucket_size:2 in
        let prf = Mapping.make Mapping.Prf_random "prop-prf" domain ~bucket_size:2 in
        Bucketing.exposure opt hist <= Bucketing.exposure prf hist +. 1e-9);
    qprop "exposure within (0, 1]" 60
      QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 1 20))
      (fun freqs ->
        let hist = List.mapi (fun i f -> (vi i, f)) freqs in
        let m = Mapping.make Mapping.Prf_random "prop-exp" (List.map fst hist) ~bucket_size:3 in
        let e = Bucketing.exposure m hist in
        e > 0. && e <= 1.0 +. 1e-9);
    qprop "dummy plan never over-pads" 50
      QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 0 20))
      (fun freqs ->
        let hist = List.mapi (fun i f -> (vi i, f)) freqs in
        let m = Mapping.make Mapping.Prf_random "k" (List.map fst hist) ~bucket_size:2 in
        let plan = Bucketing.dummy_plan_for_column m hist in
        let padded = Bucketing.bucket_frequencies m (hist @ plan) in
        let maxf = Array.fold_left max 0 (Bucketing.bucket_frequencies m hist) in
        Array.for_all (fun f -> f = maxf) padded);
  ]

let () =
  Alcotest.run "protections"
    [ ( "mapping",
        [ Alcotest.test_case "permutation" `Quick test_mapping_permutation;
          Alcotest.test_case "buckets" `Quick test_mapping_buckets;
          Alcotest.test_case "out of domain" `Quick test_mapping_out_of_domain;
          Alcotest.test_case "duplicate rejected" `Quick test_mapping_duplicate_rejected ] );
      ( "polynomial",
        [ Alcotest.test_case "indicator delta" `Quick test_indicator_delta;
          Alcotest.test_case "interpolate" `Quick test_interpolate;
          Alcotest.test_case "packed shift" `Quick test_packed_shift;
          Alcotest.test_case "multivariate indicator" `Quick test_multivariate_indicator;
          Alcotest.test_case "term count" `Quick test_multivariate_term_count ] );
      ( "monomials",
        [ Alcotest.test_case "formula vs enumeration" `Quick test_monomial_count_formula_vs_enumeration;
          Alcotest.test_case "figure 2 example" `Quick test_monomial_figure2_example;
          Alcotest.test_case "table 9 increments" `Quick test_monomial_table9_increments;
          Alcotest.test_case "positions" `Quick test_monomial_positions;
          Alcotest.test_case "eval" `Quick test_monomial_eval;
          Alcotest.test_case "lift" `Quick test_lift_exponents ] );
      ( "bucketing",
        [ Alcotest.test_case "§5 exposure example" `Quick test_exposure_section5_example;
          Alcotest.test_case "exposure bounds" `Quick test_exposure_bounds;
          Alcotest.test_case "optimal mapping" `Quick test_optimal_mapping_small;
          Alcotest.test_case "optimal (all distinguishable)" `Quick
            test_optimal_mapping_undistinguishable_case;
          Alcotest.test_case "dummy plan equalizes" `Quick test_dummy_plan_equalizes;
          Alcotest.test_case "dummy rows arity" `Quick test_dummy_rows_arity;
          Alcotest.test_case "split column" `Quick test_split_column;
          Alcotest.test_case "split domain" `Quick test_split_domain;
          Alcotest.test_case "split rejects int" `Quick test_split_rejects_int;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ( "naive-multi",
        [ Alcotest.test_case "subsets" `Quick test_naive_subsets;
          Alcotest.test_case "monomial cost" `Quick test_naive_monomial_cost;
          Alcotest.test_case "table 4 leakage" `Quick test_naive_table4_leakage ] );
      ("properties", props);
    ]

(* The security-games suite: every paper-level security claim runs as an
   adversary-vs-oracle game that wins or loses with a replayable seed.

   - IND-CPA for BGN and Paillier (left-or-right oracle): the built-in
     distinguisher must stay statistically indistinguishable from a coin
     flip, while the deliberately leaky variants (plaintext bit copied
     into the ciphertext) must be distinguished — proving the game can
     lose.
   - The §4.2 simulator-indistinguishability game: real SAGMA/SSE
     transcripts over adversary-chosen equal-leakage table pairs vs.
     Leakage.simulate output; the leaky-SSE variant (access patterns
     skipping dummy rows) must be won by the adversary.
   - Properties: the equal-leakage pair generator really produces
     equal-leakage/different-plaintext pairs (the game's precondition);
     Leakage.simulate is deterministic per seed (byte-identical
     transcripts, pinned regression digest) and seed-sensitive.
   - Meta: Runner.run_result/failure_of expose the failure path, so a
     lost game provably yields a nonzero exit (check.sh also asserts the
     SAGMA_GAMES_EXPECT_FAIL negative run below).

   Env knobs: SAGMA_GAMES_SEED, SAGMA_GAMES_TRIALS (per IND-CPA game;
   the sim game runs half), SAGMA_GAMES_JSON=FILE (write the per-game
   advantage/bound artifact CI uploads). Replay one trial with
   SAGMA_GAMES_SEED="<seed>@<i>" SAGMA_GAMES_TRIALS=1. *)

module Drbg = Sagma_crypto.Drbg
module Sha256 = Sagma_crypto.Sha256
module R = Sagma_prop.Runner
module Dbgen = Sagma_prop.Dbgen
module Game = Sagma_games.Game
module Ind_cpa = Sagma_games.Ind_cpa
module Sim_ind = Sagma_games.Sim_ind
open Sagma

let seed =
  match Sys.getenv_opt "SAGMA_GAMES_SEED" with Some s -> s | None -> "sagma-games-2026"

let trials =
  match Option.bind (Sys.getenv_opt "SAGMA_GAMES_TRIALS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 64

let sim_trials = Stdlib.max 1 (trials / 2)

let failures = ref 0
let outcomes : Game.outcome list ref = ref []

let check ~(expect_broken : bool) (o : Game.outcome) =
  outcomes := o :: !outcomes;
  let ok = o.Game.distinguished = expect_broken in
  Printf.printf "  %s %s\n%!" (if ok then "ok  " else "FAIL") (Game.report o);
  if not ok then begin
    incr failures;
    if expect_broken then
      Printf.printf
        "       mutation NOT caught: the broken scheme passed as secure (seed %S)\n%!"
        o.Game.seed
    else
      Printf.printf
        "       security violation: adversary advantage %.3f exceeds the bound; replay \
         with SAGMA_GAMES_SEED=%S\n%!"
        o.Game.advantage o.Game.seed
  end

(* --- negative smoke: a lost game must exit nonzero --------------------------

   check.sh runs this suite with SAGMA_GAMES_EXPECT_FAIL=1 and asserts
   the process fails: we score a known-leaky scheme against the honest
   expectation, so the failure path (and its propagation through the
   shell gate) is itself tested. *)

let () =
  if Sys.getenv_opt "SAGMA_GAMES_EXPECT_FAIL" <> None then begin
    check ~expect_broken:false (Ind_cpa.game ~trials:32 Ind_cpa.leaky_bgn ~seed);
    exit (if !failures > 0 then 1 else 0)
  end

(* --- the games --------------------------------------------------------------- *)

let () =
  Printf.printf "security games: seed %S, %d trials (%d for sim-ind)\n%!" seed trials
    sim_trials;
  check ~expect_broken:false (Ind_cpa.game ~trials Ind_cpa.bgn ~seed);
  check ~expect_broken:false (Ind_cpa.game ~trials Ind_cpa.paillier ~seed);
  check ~expect_broken:false (Sim_ind.game ~trials:sim_trials ~seed ());
  check ~expect_broken:true (Ind_cpa.game ~trials Ind_cpa.leaky_bgn ~seed);
  check ~expect_broken:true (Ind_cpa.game ~trials Ind_cpa.leaky_paillier ~seed);
  check ~expect_broken:true (Sim_ind.game ~trials:sim_trials ~variant:Sim_ind.Leaky_sse ~seed ())

(* --- JSON artifact ----------------------------------------------------------- *)

let () =
  match Sys.getenv_opt "SAGMA_GAMES_JSON" with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc "{\"schema_version\": 1, \"seed\": %S, \"games\": [%s]}\n" seed
      (String.concat ", " (List.rev_map Game.json !outcomes));
    close_out oc;
    Printf.printf "wrote per-game advantage/bound artifact: %s\n%!" file

(* --- properties: the game's precondition and the simulator ------------------- *)

let config_of (sc : Dbgen.scenario) =
  Config.make ~bucket_size:sc.Dbgen.bucket_size ~max_group_attrs:sc.Dbgen.max_group_attrs
    ~filter_columns:(List.map fst sc.Dbgen.filter_domains)
    ~value_columns:sc.Dbgen.value_columns
    ~group_columns:(List.map fst sc.Dbgen.group_domains) ()

let pair_arb =
  R.arbitrary
    ~print:(fun (sc, t1) ->
      Dbgen.print_scenario sc ^ "twin:\n" ^ Format.asprintf "%a" Sagma_db.Table.pp t1)
    (Dbgen.equal_leakage_pair_gen ~max_rows:6 ~max_queries:2 ())

(* Satellite: the chosen-input precondition of the sim-ind game. The
   generated twin must have (a) identical leakage profiles under every
   generated query and (b) different plaintexts. *)
let t_equal_leakage_pair =
  R.test ~count:12 ~name:"equal-leakage pairs: same profile, different plaintexts" pair_arb
    (fun (sc, t1) ->
      let client =
        Scheme.setup (config_of sc) ~domains:sc.Dbgen.group_domains
          (Drbg.create "games-pair-client")
      in
      let enc0 = Scheme.encrypt_table client sc.Dbgen.table in
      let enc1 = Scheme.encrypt_table client t1 in
      let tokens = List.map (Scheme.token client) sc.Dbgen.queries in
      Leakage.equal (Leakage.profile enc0 tokens) (Leakage.profile enc1 tokens)
      && Sagma_db.Table.rows sc.Dbgen.table <> Sagma_db.Table.rows t1)

let scenario_arb =
  R.arbitrary ~shrink:Dbgen.scenario_shrink ~print:Dbgen.print_scenario
    (Dbgen.scenario_gen ~max_rows:6 ~max_queries:2 ())

let simulated_of (sc : Dbgen.scenario) (sim_seed : string) =
  let client =
    Scheme.setup (config_of sc) ~domains:sc.Dbgen.group_domains
      (Drbg.create "games-det-client")
  in
  let enc = Scheme.encrypt_table client sc.Dbgen.table in
  let tokens = List.map (Scheme.token client) sc.Dbgen.queries in
  let leak = Leakage.profile enc tokens in
  Leakage.simulate client.Scheme.pp.Scheme.bgn_pk leak (Drbg.create sim_seed)

(* Satellite: simulator determinism. Identical DRBG seed ⇒ byte-identical
   simulated transcript; a distinct seed ⇒ a distinct transcript. *)
let t_simulate_deterministic =
  R.test ~count:10 ~name:"Leakage.simulate: same seed = same bytes, new seed = new bytes"
    scenario_arb
    (fun sc ->
      let b1 = Leakage.transcript_bytes (simulated_of sc "games-det-sim") in
      let b2 = Leakage.transcript_bytes (simulated_of sc "games-det-sim") in
      let b3 = Leakage.transcript_bytes (simulated_of sc "games-det-sim-2") in
      b1 = b2 && b1 <> b3)

let prop_failures =
  R.run_result ~seed:"sagma-games-props" ~suite:"test_games"
    [ t_equal_leakage_pair; t_simulate_deterministic ]

(* Pinned regression: one fixed (client, table, queries, sim seed)
   combination whose simulated transcript must never drift. If an
   intentional simulator change lands, re-pin this digest in the same
   commit. *)
let pinned_digest = "1273afac0b217b5380ba6172c47e50f4141eec13b324429ae44a4bdeff6467d6"

let () =
  let schema =
    [ { Sagma_db.Table.name = "v"; ty = Sagma_db.Value.TInt };
      { Sagma_db.Table.name = "g"; ty = Sagma_db.Value.TStr } ]
  in
  let str s = Sagma_db.Value.Str s in
  let vi i = Sagma_db.Value.Int i in
  let table =
    Sagma_db.Table.of_rows schema
      [ [| vi 5; str "a" |]; [| vi 7; str "b" |]; [| vi 11; str "a" |]; [| vi 2; str "c" |] ]
  in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "v" ]
      ~group_columns:[ "g" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("g", [ str "a"; str "b"; str "c"; str "d" ]) ]
      (Drbg.create "games-digest-client")
  in
  let enc = Scheme.encrypt_table client table in
  let tok = Scheme.token client (Sagma_db.Query.make ~group_by:[ "g" ] Sagma_db.Query.Count) in
  let leak = Leakage.profile enc [ tok ] in
  let sim = Leakage.simulate client.Scheme.pp.Scheme.bgn_pk leak (Drbg.create "games-digest-sim") in
  let digest = Sha256.hexdigest (Leakage.transcript_bytes sim) in
  if digest = pinned_digest then Printf.printf "  ok   simulated transcript digest pinned\n%!"
  else begin
    incr failures;
    Printf.printf "  FAIL simulated transcript digest drifted:\n       expected %s\n       got      %s\n%!"
      pinned_digest digest
  end

(* --- meta: the failure path itself ------------------------------------------- *)

let () =
  (* A property that always fails must surface through failure_of (with
     a counterexample report) and count as a failure in run_result —
     run/exit is a thin wrapper over exactly these, so a lost game
     cannot pass CI silently. *)
  let failing =
    R.test ~count:3 ~name:"meta-always-false"
      (R.arbitrary (fun d -> Drbg.int_below d 100))
      (fun _ -> false)
  in
  let passing =
    R.test ~count:3 ~name:"meta-always-true"
      (R.arbitrary (fun d -> Drbg.int_below d 100))
      (fun _ -> true)
  in
  (match R.failure_of ~seed:"games-meta" failing with
   | Some (_, report) when String.length report > 0 ->
     Printf.printf "  ok   failure_of reports a failing property\n%!"
   | _ ->
     incr failures;
     Printf.printf "  FAIL failure_of missed a failing property\n%!");
  (match R.failure_of ~seed:"games-meta" passing with
   | None -> Printf.printf "  ok   failure_of is silent on a passing property\n%!"
   | Some _ ->
     incr failures;
     Printf.printf "  FAIL failure_of flagged a passing property\n%!")

let () =
  let total = !failures + prop_failures in
  if total > 0 then begin
    Printf.printf "test_games: %d FAILED\n%!" total;
    exit 1
  end
  else Printf.printf "test_games: all passed\n%!"

(* Tests for the observability subsystem (Sagma_obs) and the Client_api
   facade: metrics are free when disabled, counters match the analytic
   cost model of §3.4 (pairings per row × block × channel), spans nest
   per query phase, and the facade agrees with the plaintext oracle. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Metrics = Sagma_obs.Metrics
module Trace = Sagma_obs.Trace
module Prof = Sagma_obs.Prof
module Export = Sagma_obs.Export
module Log = Sagma_obs.Log
module Audit = Sagma_obs.Audit
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

(* Every test leaves the registry the way it found it: disabled, zeroed. *)
let with_metrics ?(enabled = true) f =
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Trace.reset ())
    (fun () ->
      Metrics.reset ();
      Trace.reset ();
      Metrics.set_enabled enabled;
      f ())

(* --- metrics registry ----------------------------------------------------- *)

let test_disabled_by_default () =
  Alcotest.(check bool) "collection starts off" false !Metrics.enabled;
  let c = Metrics.counter "test.off" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr/add are no-ops when off" 0 (Metrics.value c);
  let h = Metrics.histogram "test.off_hist" in
  Metrics.observe h 3.0;
  let s = Metrics.snapshot () in
  Alcotest.(check bool)
    "histogram untouched when off" false
    (List.mem_assoc "test.off_hist" s.Metrics.histograms)

let test_counter_basics () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.basics" in
  Metrics.incr c;
  Metrics.add c 9;
  Alcotest.(check int) "incr + add" 10 (Metrics.value c);
  (* registration is idempotent: same name, same cell *)
  let c' = Metrics.counter "test.basics" in
  Metrics.incr c';
  Alcotest.(check int) "same cell under one name" 11 (Metrics.value c);
  let s = Metrics.snapshot () in
  Alcotest.(check (option int))
    "snapshot carries the count" (Some 11)
    (List.assoc_opt "test.basics" s.Metrics.counters);
  Alcotest.(check bool)
    "zero counters are filtered out" false
    (List.mem_assoc "test.off" s.Metrics.counters);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.value c)

let test_gauge_basics () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.gauge_set g 5;
  Alcotest.(check int) "set is a no-op when off" 0 (Metrics.gauge_value g);
  with_metrics @@ fun () ->
  Metrics.gauge_set g 5;
  Metrics.gauge_add g 3;
  Metrics.gauge_incr g;
  Metrics.gauge_decr g;
  Alcotest.(check int) "set/add/incr/decr" 8 (Metrics.gauge_value g);
  (* registration is idempotent: same name, same cell *)
  Metrics.gauge_incr (Metrics.gauge "test.gauge");
  Alcotest.(check int) "same cell under one name" 9 (Metrics.gauge_value g);
  let zero = Metrics.gauge "test.gauge_zero" in
  Metrics.gauge_incr zero;
  Metrics.gauge_decr zero;
  let untouched = Metrics.gauge "test.gauge_untouched" in
  ignore untouched;
  let s = Metrics.snapshot () in
  Alcotest.(check (option int)) "snapshot carries the level" (Some 9)
    (List.assoc_opt "test.gauge" s.Metrics.gauges);
  (* A gauge that moved and came back to 0 is a meaningful reading —
     unlike counters, zero is not filtered once touched. *)
  Alcotest.(check (option int)) "touched zero gauge included" (Some 0)
    (List.assoc_opt "test.gauge_zero" s.Metrics.gauges);
  Alcotest.(check bool) "untouched gauge excluded" false
    (List.mem_assoc "test.gauge_untouched" s.Metrics.gauges);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes the level" 0 (Metrics.gauge_value g);
  Alcotest.(check bool) "reset forgets touched gauges" true
    ((Metrics.snapshot ()).Metrics.gauges = [])

let test_histogram_stats () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test.hist" in
  Metrics.observe h 1.0;
  Metrics.observe h 3.0;
  let s = Metrics.snapshot () in
  let st = List.assoc "test.hist" s.Metrics.histograms in
  Alcotest.(check int) "count" 2 st.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "sum" 4.0 st.Metrics.h_sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 st.Metrics.h_min;
  Alcotest.(check (float 1e-9)) "max" 3.0 st.Metrics.h_max

let test_observe_ms () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test.timed" in
  Alcotest.(check int) "return value passes through" 7 (Metrics.observe_ms h (fun () -> 7));
  let st = List.assoc "test.timed" (Metrics.snapshot ()).Metrics.histograms in
  Alcotest.(check int) "one observation" 1 st.Metrics.h_count;
  Alcotest.(check bool) "non-negative duration" true (st.Metrics.h_min >= 0.0)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_snapshot_json () =
  with_metrics @@ fun () ->
  Metrics.add (Metrics.counter "test.json") 5;
  Metrics.observe (Metrics.histogram "test.json_hist") 2.0;
  let j = Metrics.snapshot_to_json (Metrics.snapshot ()) in
  Alcotest.(check bool) "counter in JSON" true (contains j "\"test.json\":5");
  Alcotest.(check bool) "histogram in JSON" true (contains j "\"test.json_hist\"");
  Alcotest.(check string) "escaping" "a\\\"b\\\\c\\n" (Metrics.json_escape "a\"b\\c\n")

let test_gauge_export () =
  with_metrics @@ fun () ->
  Metrics.gauge_set (Metrics.gauge "proto.inflight") 4;
  let s = Metrics.snapshot () in
  let j = Metrics.snapshot_to_json s in
  Alcotest.(check bool) "gauge in JSON" true (contains j "\"gauges\":{\"proto.inflight\":4}");
  let text = Export.prometheus s in
  Alcotest.(check bool) "gauge TYPE" true
    (contains text "# TYPE sagma_proto_inflight gauge");
  Alcotest.(check bool) "gauge sample" true (contains text "sagma_proto_inflight 4")

let test_bucket_boundaries () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test.bounds" in
  (* Grid is 0.001·2^i: first bound 0.001, second 0.002. Bounds are
     inclusive upper limits, so 0.001 itself lands in the first slot. *)
  Metrics.observe h 0.0005;
  Metrics.observe h 0.001;
  Metrics.observe h 0.0011;
  Metrics.observe h 1e12 (* beyond the last bound: +∞ overflow slot *);
  let st = List.assoc "test.bounds" (Metrics.snapshot ()).Metrics.histograms in
  let n = Array.length st.Metrics.h_buckets in
  Alcotest.(check int) "one slot per bound plus +inf"
    (Array.length Metrics.bucket_bounds + 1) n;
  let b0, c0 = st.Metrics.h_buckets.(0) in
  Alcotest.(check (float 1e-12)) "first bound" 0.001 b0;
  Alcotest.(check int) "bounds are inclusive" 2 c0;
  let b1, c1 = st.Metrics.h_buckets.(1) in
  Alcotest.(check (float 1e-12)) "bounds double" 0.002 b1;
  Alcotest.(check int) "cumulative counts" 3 c1;
  let binf, cinf = st.Metrics.h_buckets.(n - 1) in
  Alcotest.(check bool) "last bound is +inf" true (binf = infinity);
  Alcotest.(check int) "+inf sees everything" 4 cinf;
  let prev = ref 0 in
  Array.iter
    (fun (_, c) ->
      Alcotest.(check bool) "cumulative monotone" true (c >= !prev);
      prev := c)
    st.Metrics.h_buckets

let test_quantiles () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test.quant" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let st = List.assoc "test.quant" (Metrics.snapshot ()).Metrics.histograms in
  Alcotest.(check bool) "quantiles ordered" true
    (st.Metrics.h_p50 <= st.Metrics.h_p95 && st.Metrics.h_p95 <= st.Metrics.h_p99);
  Alcotest.(check bool) "quantiles inside [min, max]" true
    (st.Metrics.h_p50 >= st.Metrics.h_min && st.Metrics.h_p99 <= st.Metrics.h_max);
  (* Uniform 1..100: the median interpolates inside the (32.768, 65.536]
     bucket, so the estimate stays within one bucket of the true 50. *)
  Alcotest.(check bool) "p50 near true median" true
    (st.Metrics.h_p50 > 32.0 && st.Metrics.h_p50 <= 66.0);
  (* p95's bucket reaches past the max, so the clamp kicks in. *)
  Alcotest.(check (float 1e-9)) "p95 clamped to max" 100.0 st.Metrics.h_p95;
  (* Degenerate distribution: every quantile is the single value. *)
  let h1 = Metrics.histogram "test.quant_one" in
  Metrics.observe h1 5.0;
  let st1 = List.assoc "test.quant_one" (Metrics.snapshot ()).Metrics.histograms in
  Alcotest.(check (float 1e-9)) "single obs p50" 5.0 st1.Metrics.h_p50;
  Alcotest.(check (float 1e-9)) "single obs p99" 5.0 st1.Metrics.h_p99

let test_prometheus_exposition () =
  with_metrics @@ fun () ->
  Metrics.add (Metrics.counter "proto.requests") 3;
  let h = Metrics.histogram "proto.request_ms" in
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  let text = Export.prometheus (Metrics.snapshot ()) in
  Alcotest.(check string) "name sanitization" "sagma_proto_request_ms"
    (Export.metric_name "proto.request_ms");
  Alcotest.(check bool) "counter sample" true (contains text "sagma_proto_requests_total 3");
  Alcotest.(check bool) "counter TYPE" true
    (contains text "# TYPE sagma_proto_requests_total counter");
  Alcotest.(check bool) "histogram TYPE" true
    (contains text "# TYPE sagma_proto_request_ms histogram");
  Alcotest.(check bool) "+Inf bucket closes the family" true
    (contains text "sagma_proto_request_ms_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "sum" true (contains text "sagma_proto_request_ms_sum 2");
  Alcotest.(check bool) "count" true (contains text "sagma_proto_request_ms_count 2");
  Alcotest.(check bool) "p50 gauge" true (contains text "sagma_proto_request_ms_p50 ");
  Alcotest.(check bool) "p99 gauge" true (contains text "sagma_proto_request_ms_p99 ");
  (* Shape: every non-comment line is "name value" or "name{labels} value". *)
  List.iter
    (fun l ->
      if l <> "" && l.[0] <> '#' then
        match String.split_on_char ' ' l with
        | [ _name; _value ] -> ()
        | _ -> Alcotest.failf "malformed exposition line %S" l)
    (String.split_on_char '\n' text)

(* --- label escaping & federated exposition (PR 10) --------------------------- *)

let test_label_escaping () =
  Alcotest.(check string) "backslash" "a\\\\b" (Export.escape_label_value "a\\b");
  Alcotest.(check string) "double quote" "a\\\"b" (Export.escape_label_value "a\"b");
  Alcotest.(check string) "newline" "a\\nb" (Export.escape_label_value "a\nb");
  Alcotest.(check string) "benign passes through" "host:7482" (Export.escape_label_value "host:7482");
  Alcotest.(check string) "no labels, no block" "router.shard_up" (Export.labeled "router.shard_up" []);
  Alcotest.(check string) "labeled builds the block"
    "proto.requests{shard=\"1\"}"
    (Export.labeled "proto.requests" [ ("shard", "1") ]);
  (* A hostile endpoint string — quotes, backslashes, a newline that
     would otherwise inject a fake sample line — stays one escaped label
     value. *)
  let hostile = "shard\"0\"\\host\nname" in
  let name = Export.labeled "router.shard_up" [ ("endpoint", hostile) ] in
  Alcotest.(check string) "hostile endpoint escaped"
    "router.shard_up{endpoint=\"shard\\\"0\\\"\\\\host\\nname\"}" name;
  Alcotest.(check bool) "no raw newline survives" false (String.contains name '\n');
  (* Rendered, the series is still a single well-formed line. *)
  let text = Export.prometheus { Metrics.counters = []; gauges = [ (name, 1) ]; histograms = [] } in
  Alcotest.(check bool) "exposition keeps the escaped block" true
    (contains text "sagma_router_shard_up{endpoint=\"shard\\\"0\\\"\\\\host\\nname\"} 1");
  (* Label *keys* are sanitized like metric names (an attacker-chosen
     key cannot break out of the block either). *)
  Alcotest.(check string) "label key sanitized" "m{bad_key=\"v\"}"
    (Export.labeled "m" [ ("bad key", "v") ])

let test_labeled_exposition () =
  with_metrics @@ fun () ->
  Metrics.add (Metrics.counter "proto.requests") 10;
  Metrics.add (Metrics.counter (Export.labeled "proto.requests" [ ("shard", "0") ])) 4;
  Metrics.add (Metrics.counter (Export.labeled "proto.requests" [ ("shard", "1") ])) 6;
  Metrics.observe (Metrics.histogram (Export.labeled "proto.request_ms" [ ("shard", "0") ])) 1.0;
  let text = Export.prometheus (Metrics.snapshot ()) in
  Alcotest.(check bool) "fleet aggregate unlabeled" true
    (contains text "sagma_proto_requests_total 10");
  Alcotest.(check bool) "shard 0 labeled sample" true
    (contains text "sagma_proto_requests_total{shard=\"0\"} 4");
  Alcotest.(check bool) "shard 1 labeled sample" true
    (contains text "sagma_proto_requests_total{shard=\"1\"} 6");
  (* One TYPE header per family, not per labeled series — a duplicate
     TYPE line is a parse error for a real scraper. *)
  let occurrences needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i acc =
      if i + nl > hl then acc
      else go (i + 1) (if String.sub text i nl = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "counter TYPE emitted once" 1
    (occurrences "# TYPE sagma_proto_requests_total counter");
  (* The histogram's `le` merges into the series' own label block. *)
  Alcotest.(check bool) "bucket merges le into the block" true
    (contains text "sagma_proto_request_ms_bucket{shard=\"0\",le=\"+Inf\"} 1");
  Alcotest.(check bool) "labeled sum" true (contains text "sagma_proto_request_ms_sum{shard=\"0\"} 1")

let test_merge_hist_stats () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "merge.ms" in
  Metrics.observe h 1.0;
  Metrics.observe h 2.0;
  let s1 = List.assoc "merge.ms" (Metrics.snapshot ()).Metrics.histograms in
  Metrics.reset ();
  Metrics.observe (Metrics.histogram "merge.ms") 100.0;
  let s2 = List.assoc "merge.ms" (Metrics.snapshot ()).Metrics.histograms in
  let m = Metrics.merge_hist_stats s1 s2 in
  Alcotest.(check int) "counts add" 3 m.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "sums add" 103.0 m.Metrics.h_sum;
  Alcotest.(check (float 1e-9)) "min widens" 1.0 m.Metrics.h_min;
  Alcotest.(check (float 1e-9)) "max widens" 100.0 m.Metrics.h_max;
  (* The +Inf bucket of the merge carries every observation. *)
  let _, inf_cum = m.Metrics.h_buckets.(Array.length m.Metrics.h_buckets - 1) in
  Alcotest.(check int) "+Inf cumulative is the total" 3 inf_cum;
  (* Quantiles are re-estimated from the merged buckets: the p99 must
     land near the 100ms outlier, not near the 2ms side. *)
  Alcotest.(check bool)
    (Printf.sprintf "merged p99 tracks the slow node (%.3f)" m.Metrics.h_p99)
    true (m.Metrics.h_p99 > 50.0);
  (* Merging with an empty histogram is the identity. *)
  Metrics.reset ();
  ignore (Metrics.histogram "merge.ms");
  let empty =
    match List.assoc_opt "merge.ms" (Metrics.snapshot ()).Metrics.histograms with
    | Some e -> e
    | None ->
      { Metrics.h_count = 0; h_sum = 0.; h_min = 0.; h_max = 0.; h_buckets = [||]; h_p50 = 0.;
        h_p95 = 0.; h_p99 = 0. }
  in
  Alcotest.(check bool) "empty is the identity" true (Metrics.merge_hist_stats s1 empty = s1)

let test_merge_snapshots () =
  let s1 =
    { Metrics.counters = [ ("a", 1); ("b", 2) ]; gauges = [ ("g", 5) ]; histograms = [] }
  in
  let s2 =
    { Metrics.counters = [ ("b", 3); ("c", 4) ]; gauges = [ ("g", 7); ("h", 1) ]; histograms = [] }
  in
  let m = Metrics.merge_snapshots s1 s2 in
  Alcotest.(check (list (pair string int))) "counters sum pointwise"
    [ ("a", 1); ("b", 5); ("c", 4) ] m.Metrics.counters;
  Alcotest.(check (list (pair string int))) "gauges sum pointwise"
    [ ("g", 12); ("h", 1) ] m.Metrics.gauges

(* --- SLO watchdog ------------------------------------------------------------ *)

module Watchdog = Sagma_obs.Watchdog

let empty_snap = { Metrics.counters = []; gauges = []; histograms = [] }

let test_watchdog_rules_roundtrip () =
  (* Every default rule survives its own file syntax. *)
  List.iter
    (fun r ->
      match Watchdog.parse_rules (Watchdog.rule_to_string r) with
      | Ok [ r' ] ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip %s" (Watchdog.rule_to_string r))
          true (r = r')
      | Ok _ -> Alcotest.fail "one rule parsed to many"
      | Error e -> Alcotest.failf "default rule failed to parse: %s" e)
    Watchdog.default_rules;
  (* Comments, blank lines and every source form parse. *)
  (match
     Watchdog.parse_rules
       "# slo rules\n\nerr ratio:proto.requests_failed/proto.requests > 0.25\nrps rate:proto.requests > 1000\nqd gauge:pool.queue_depth > 64\nslow p99:proto.request_ms > 250\ndown shards_down > 0\nidle rate:proto.requests < 0.5\n"
   with
   | Ok rules -> Alcotest.(check int) "six rules parsed" 6 (List.length rules)
   | Error e -> Alcotest.failf "rule file rejected: %s" e);
  (* Errors name the offending line. *)
  (match Watchdog.parse_rules "ok gauge:g > 1\nbroken nonsense" with
   | Error e ->
     Alcotest.(check bool) (Printf.sprintf "error names line 2: %s" e) true (contains e "line 2")
   | Ok _ -> Alcotest.fail "malformed rule accepted");
  match Watchdog.parse_rules "x gauge:g >= 5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown comparator accepted"

let test_watchdog_fire_resolve () =
  let rule =
    { Watchdog.r_name = "qd"; r_source = Watchdog.Gauge "pool.queue_depth";
      r_cmp = Watchdog.Gt; r_threshold = 10. }
  in
  let wd = Watchdog.create ~rules:[ rule ] () in
  let snap depth = { empty_snap with Metrics.gauges = [ ("pool.queue_depth", depth) ] } in
  Watchdog.poll ~now:100. wd ~snapshot:(snap 5) ~shards_down:0;
  Alcotest.(check int) "below threshold: quiet" 0 (Watchdog.firing_count wd);
  Watchdog.poll ~now:101. wd ~snapshot:(snap 20) ~shards_down:0;
  (match Watchdog.active wd with
   | [ a ] ->
     Alcotest.(check string) "alert names the rule" "qd" a.Watchdog.a_rule;
     Alcotest.(check (float 1e-9)) "since stamps the firing edge" 101. a.Watchdog.a_since;
     Alcotest.(check (float 1e-9)) "value recorded" 20. a.Watchdog.a_value;
     Alcotest.(check bool) "message readable" true (contains a.Watchdog.a_message "qd")
   | l -> Alcotest.failf "expected one alert, got %d" (List.length l));
  (* Still breaching: the alert stays, its since unchanged (steady state,
     no re-fire). *)
  Watchdog.poll ~now:105. wd ~snapshot:(snap 30) ~shards_down:0;
  (match Watchdog.active wd with
   | [ a ] ->
     Alcotest.(check (float 1e-9)) "since survives steady firing" 101. a.Watchdog.a_since;
     Alcotest.(check (float 1e-9)) "value tracks the latest poll" 30. a.Watchdog.a_value
   | l -> Alcotest.failf "expected one alert, got %d" (List.length l));
  Watchdog.poll ~now:106. wd ~snapshot:(snap 3) ~shards_down:0;
  Alcotest.(check int) "back under threshold: resolved" 0 (Watchdog.firing_count wd)

let test_watchdog_ratio_and_rate_need_history () =
  let rules =
    [ { Watchdog.r_name = "err";
        r_source = Watchdog.Ratio ("proto.requests_failed", "proto.requests");
        r_cmp = Watchdog.Gt; r_threshold = 0.5 };
      { Watchdog.r_name = "rps"; r_source = Watchdog.Rate "proto.requests";
        r_cmp = Watchdog.Gt; r_threshold = 10. } ]
  in
  let wd = Watchdog.create ~rules () in
  let snap total failed =
    { empty_snap with
      Metrics.counters = [ ("proto.requests", total); ("proto.requests_failed", failed) ] }
  in
  (* First poll: no history, delta rules stay silent even though the
     lifetime ratio breaches. *)
  Watchdog.poll ~now:0. wd ~snapshot:(snap 4 3) ~shards_down:0;
  Alcotest.(check int) "first poll silent" 0 (Watchdog.firing_count wd);
  (* No traffic since: a zero denominator is not a 100% error rate. *)
  Watchdog.poll ~now:1. wd ~snapshot:(snap 4 3) ~shards_down:0;
  Alcotest.(check int) "zero-delta denominator silent" 0 (Watchdog.firing_count wd);
  (* 16 new requests in 1s, 12 failed: both rules breach on the delta. *)
  Watchdog.poll ~now:2. wd ~snapshot:(snap 20 15) ~shards_down:0;
  Alcotest.(check int) "ratio and rate fire on deltas" 2 (Watchdog.firing_count wd);
  (* The next second is clean and slow: both resolve. *)
  Watchdog.poll ~now:4. wd ~snapshot:(snap 21 15) ~shards_down:0;
  Alcotest.(check int) "clean interval resolves both" 0 (Watchdog.firing_count wd)

let test_watchdog_shards_down () =
  (* The default pack includes shard-down; feed it the router's count. *)
  let wd = Watchdog.create () in
  Watchdog.poll ~now:50. wd ~snapshot:empty_snap ~shards_down:1;
  (match Watchdog.active wd with
   | [ a ] ->
     Alcotest.(check string) "shard-down fires" "shard-down" a.Watchdog.a_rule;
     Alcotest.(check (float 1e-9)) "count recorded" 1. a.Watchdog.a_value
   | l -> Alcotest.failf "expected exactly shard-down, got %d alerts" (List.length l));
  Watchdog.poll ~now:51. wd ~snapshot:empty_snap ~shards_down:0;
  Alcotest.(check int) "recovery resolves it" 0 (Watchdog.firing_count wd)

(* --- structured logging ----------------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let with_log_file f =
  let path = Filename.temp_file "sagma_test_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Log.detach ();
      Log.set_level Log.Info;
      Sys.remove path)
    (fun () ->
      Log.to_file path;
      f path)

let test_log_jsonl () =
  with_log_file @@ fun path ->
  Log.set_level Log.Debug;
  Log.debug "fields"
    ~fields:[ Log.str "s" "a\"b"; Log.int "n" 42; Log.float "f" 1.5; Log.bool "b" true ];
  Log.info "bare";
  Log.detach ();
  match read_lines path with
  | [ l1; l2 ] ->
    Alcotest.(check bool) "object per line" true
      (String.length l1 > 1 && l1.[0] = '{' && l1.[String.length l1 - 1] = '}');
    Alcotest.(check bool) "event name" true (contains l1 "\"event\":\"fields\"");
    Alcotest.(check bool) "level" true (contains l1 "\"level\":\"debug\"");
    Alcotest.(check bool) "timestamp" true (contains l1 "\"ts\":");
    Alcotest.(check bool) "string field escaped" true (contains l1 "\"s\":\"a\\\"b\"");
    Alcotest.(check bool) "int field" true (contains l1 "\"n\":42");
    Alcotest.(check bool) "bool field" true (contains l1 "\"b\":true");
    Alcotest.(check bool) "second event" true (contains l2 "\"event\":\"bare\"")
  | lines -> Alcotest.failf "expected 2 log lines, got %d" (List.length lines)

let test_log_threshold () =
  with_log_file @@ fun path ->
  Log.set_level Log.Warn;
  Alcotest.(check bool) "info below threshold" false (Log.enabled Log.Info);
  Alcotest.(check bool) "error above threshold" true (Log.enabled Log.Error);
  Log.info "dropped";
  Log.warn "kept";
  Log.error "kept too";
  Log.detach ();
  let lines = read_lines path in
  Alcotest.(check int) "threshold filters" 2 (List.length lines);
  Alcotest.(check bool) "warn first" true (contains (List.nth lines 0) "\"level\":\"warn\"")

let test_log_no_sink () =
  Log.detach ();
  Alcotest.(check bool) "sink-less logging disabled" false (Log.enabled Log.Error);
  (* Must not raise. *)
  Log.error "into the void";
  let a = Log.next_request_id () in
  let b = Log.next_request_id () in
  Alcotest.(check bool) "request ids increase" true (b > a)

let test_level_of_string () =
  List.iter
    (fun (s, l) -> Alcotest.(check bool) s true (Log.level_of_string s = Some l))
    [ ("debug", Log.Debug); ("info", Log.Info); ("warn", Log.Warn); ("error", Log.Error) ];
  Alcotest.(check bool) "unknown level rejected" true (Log.level_of_string "loud" = None)

(* --- span tracing ---------------------------------------------------------- *)

let span_names roots = List.map (fun s -> s.Trace.name) roots

let test_span_nesting () =
  with_metrics @@ fun () ->
  let v =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "first" (fun () -> ()) ;
        Trace.with_span "second" (fun () -> 42))
  in
  Alcotest.(check int) "value passes through" 42 v;
  (match Trace.roots () with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" root.Trace.name;
    Alcotest.(check (list string))
      "children in execution order" [ "first"; "second" ]
      (span_names root.Trace.children);
    Alcotest.(check bool) "duration covers children" true
      (root.Trace.ms >= 0.0
      && List.for_all (fun c -> c.Trace.ms <= root.Trace.ms +. 1e-6) root.Trace.children)
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots));
  Trace.reset ();
  Alcotest.(check int) "reset drops roots" 0 (List.length (Trace.roots ()))

let test_span_disabled_and_exn () =
  (* disabled: no recording at all *)
  Trace.reset ();
  Trace.with_span "ghost" (fun () -> ());
  Alcotest.(check int) "nothing recorded when off" 0 (List.length (Trace.roots ()));
  (* enabled: a raising body still closes its span *)
  with_metrics @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check (list string)) "span recorded despite raise" [ "boom" ]
    (span_names (Trace.roots ()))

let test_span_off_domain () =
  with_metrics @@ fun () ->
  (* Trace state is domain-local: a span opened on another domain builds
     its own intact tree and lands on the shared completed ring — no
     corruption of this domain's stack, no degraded histogram fallback. *)
  let d = Domain.spawn (fun () -> Trace.with_span "offdom" (fun () -> 13)) in
  Alcotest.(check int) "value passes through off-domain" 13 (Domain.join d);
  Alcotest.(check (list string)) "off-domain span recorded intact" [ "offdom" ]
    (span_names (Trace.roots ()));
  (* Main-domain spans land on the same ring, after it. *)
  Trace.with_span "ondom" (fun () -> ());
  Alcotest.(check (list string)) "ring shared across domains" [ "offdom"; "ondom" ]
    (span_names (Trace.roots ()))

let test_with_request_basics () =
  with_metrics @@ fun () ->
  let v, root =
    Trace.with_request (fun () ->
        Trace.with_span "phase_a" (fun () -> ());
        Trace.with_span "phase_b" (fun () -> 17))
  in
  Alcotest.(check int) "value passes through" 17 v;
  Alcotest.(check string) "root is the request" "request" root.Trace.name;
  Alcotest.(check (list string)) "phases in order" [ "phase_a"; "phase_b" ]
    (span_names root.Trace.children);
  Alcotest.(check int) "request trees stay off the ambient ring" 0
    (List.length (Trace.roots ()));
  (match Trace.requests () with
   | [ rt ] ->
     Alcotest.(check bool) "fresh trace id assigned" true (String.length rt.Trace.r_id > 0);
     Alcotest.(check (list string)) "ring holds the same tree" [ "phase_a"; "phase_b" ]
       (span_names rt.Trace.r_root.Trace.children)
   | rts -> Alcotest.failf "expected 1 request trace, got %d" (List.length rts));
  (* A caller-supplied (wire-propagated) id is preserved verbatim. *)
  let _, rt = Trace.with_request_full ~trace_id:"client-42" (fun () -> ()) in
  Alcotest.(check string) "caller id preserved" "client-42" rt.Trace.r_id;
  (* A raising request still completes its trace, then re-raises. *)
  (try ignore (Trace.with_request (fun () -> failwith "x")) with Failure _ -> ());
  Alcotest.(check int) "raising request still recorded" 3
    (List.length (Trace.requests ()))

let test_pool_inherits_context () =
  with_metrics @@ fun () ->
  let module Pool = Sagma_pool.Pool in
  let pool = Pool.create ~name:"trace-test" ~workers:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let total, root =
    Trace.with_request (fun () ->
        Trace.with_span "fanout" (fun () ->
            List.init 4 (fun i ->
                Pool.submit pool (fun () ->
                    Trace.with_span (Printf.sprintf "task%d" i) (fun () -> i)))
            |> List.map Pool.await
            |> List.fold_left ( + ) 0))
  in
  Alcotest.(check int) "futures resolved" 6 total;
  match root.Trace.children with
  | [ fanout ] ->
    Alcotest.(check string) "fanout phase" "fanout" fanout.Trace.name;
    (* Worker spans attach under the frame open on the submitting domain
       at submit time — completion order is nondeterministic, the set is
       not. *)
    Alcotest.(check (list string)) "worker spans inherited the request context"
      [ "task0"; "task1"; "task2"; "task3" ]
      (List.sort compare (span_names fanout.Trace.children));
    Alcotest.(check int) "no stray ambient roots" 0 (List.length (Trace.roots ()))
  | cs -> Alcotest.failf "expected 1 fanout child, got %d" (List.length cs)

let test_concurrent_requests_no_leak () =
  with_metrics @@ fun () ->
  (* Four domains each run their own request at once. Every tree must
     come back intact with only its own spans, and every cost scope must
     see only its own counter bumps. *)
  let rows_counter = Metrics.counter "scheme.agg.rows" in
  let ds =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            Trace.with_request_full ~trace_id:(Printf.sprintf "req%d" i) (fun () ->
                for _ = 1 to 50 do
                  Trace.with_span (Printf.sprintf "work%d" i) (fun () -> ())
                done;
                Metrics.add rows_counter (i + 1))))
  in
  let rts = List.map (fun d -> snd (Domain.join d)) ds in
  List.iteri
    (fun i rt ->
      Alcotest.(check string) "trace id survives" (Printf.sprintf "req%d" i) rt.Trace.r_id;
      Alcotest.(check int) "every span present" 50 (List.length rt.Trace.r_root.Trace.children);
      List.iter
        (fun c ->
          Alcotest.(check string) "no cross-request span leakage"
            (Printf.sprintf "work%d" i) c.Trace.name)
        rt.Trace.r_root.Trace.children;
      Alcotest.(check int) "cost scope isolated per request" (i + 1)
        rt.Trace.r_cost.Trace.agg_rows)
    rts;
  Alcotest.(check int) "all four requests on the ring" 4 (List.length (Trace.requests ()));
  Alcotest.(check int) "global counter saw every scoped bump" 10 (Metrics.value rows_counter)

let test_request_ring_eviction_under_load () =
  with_metrics @@ fun () ->
  (* Two domains push 700 traced requests each — more than the ring's
     1024-entry bound. The ring must stay at the bound, evict oldest
     first, and every surviving tree must still be intact. *)
  let per_domain = 700 in
  let ds =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              ignore
                (Trace.with_request_full ~trace_id:(Printf.sprintf "d%d-%d" d i) (fun () ->
                     Trace.with_span "work" (fun () -> ())))
            done))
  in
  List.iter Domain.join ds;
  let reqs = Trace.requests () in
  Alcotest.(check int) "ring capped at its bound" 1024 (List.length reqs);
  (* Eviction is oldest-first and each domain pushes its own requests in
     order, so the survivors from either domain are a contiguous suffix
     of that domain's submission sequence, ending at its last request. *)
  List.iter
    (fun d ->
      let prefix = Printf.sprintf "d%d-" d in
      let plen = String.length prefix in
      let ids =
        List.filter_map
          (fun rt ->
            let id = rt.Trace.r_id in
            if String.length id > plen && String.sub id 0 plen = prefix then
              Some (int_of_string (String.sub id plen (String.length id - plen)))
            else None)
          reqs
      in
      Alcotest.(check bool) (Printf.sprintf "domain %d kept some requests" d) true (ids <> []);
      Alcotest.(check (list int))
        (Printf.sprintf "domain %d survivors in submission order" d)
        (List.sort compare ids) ids;
      let lo = List.hd ids in
      Alcotest.(check (list int))
        (Printf.sprintf "domain %d survivors form a contiguous suffix" d)
        (List.init (List.length ids) (fun i -> lo + i))
        ids;
      Alcotest.(check int)
        (Printf.sprintf "domain %d newest request survives" d)
        (per_domain - 1)
        (List.nth ids (List.length ids - 1)))
    [ 0; 1 ];
  (* No torn trees: every survivor carries exactly its one child span. *)
  List.iter
    (fun rt ->
      Alcotest.(check (list string)) "tree intact" [ "work" ]
        (span_names rt.Trace.r_root.Trace.children))
    reqs

let test_snapshot_concurrent_with_writers () =
  with_metrics @@ fun () ->
  (* Four writer domains hammer a counter, a gauge and a histogram while
     the main domain snapshots concurrently: every snapshot must be
     internally consistent (counters monotone across snapshots,
     cumulative buckets monotone with the +Inf bucket equal to the
     count), and the final totals must be exact. *)
  let c = Metrics.counter "test.conc_total" in
  let g = Metrics.gauge "test.conc_gauge" in
  let h = Metrics.histogram "test.conc_ms" in
  let iters = 2000 in
  let writers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              Metrics.incr c;
              Metrics.gauge_set g ((d * iters) + i);
              Metrics.observe h (float_of_int (i mod 50))
            done))
  in
  let last_count = ref 0 in
  for _ = 1 to 50 do
    let s = Metrics.snapshot () in
    (match List.assoc_opt "test.conc_total" s.Metrics.counters with
     | Some n ->
       Alcotest.(check bool) "counter monotone and bounded" true
         (n >= !last_count && n <= 4 * iters);
       last_count := n
     | None -> ());
    match List.assoc_opt "test.conc_ms" s.Metrics.histograms with
    | Some hist ->
      let bound = Array.length hist.Metrics.h_buckets in
      let _, cum_last = hist.Metrics.h_buckets.(bound - 1) in
      Alcotest.(check int) "+Inf bucket equals count" hist.Metrics.h_count cum_last;
      let prev = ref 0 in
      Array.iter
        (fun (_, cum) ->
          Alcotest.(check bool) "buckets cumulative-monotone" true (cum >= !prev);
          prev := cum)
        hist.Metrics.h_buckets
    | None -> ()
  done;
  List.iter Domain.join writers;
  let s = Metrics.snapshot () in
  Alcotest.(check (option int)) "final counter exact" (Some (4 * iters))
    (List.assoc_opt "test.conc_total" s.Metrics.counters);
  (match List.assoc_opt "test.conc_ms" s.Metrics.histograms with
   | Some hist -> Alcotest.(check int) "final histogram count exact" (4 * iters) hist.Metrics.h_count
   | None -> Alcotest.fail "histogram missing from the final snapshot");
  match List.assoc_opt "test.conc_gauge" s.Metrics.gauges with
  | Some v ->
    Alcotest.(check bool) "gauge holds some writer's last value" true (v >= 1 && v <= 4 * iters)
  | None -> Alcotest.fail "gauge missing from the final snapshot"

(* --- leakage auditor -------------------------------------------------------- *)

let with_audit f =
  Fun.protect
    ~finally:(fun () ->
      Audit.set_enabled false;
      Audit.reset ())
    (fun () ->
      Audit.reset ();
      Audit.set_enabled true;
      f ())

let check_fails name = function
  | Audit.Fail _ -> ()
  | Audit.Pass -> Alcotest.failf "%s: expected Fail, got Pass" name

let check_passes name = function
  | Audit.Pass -> ()
  | Audit.Fail errs -> Alcotest.failf "%s: unexpected Fail: %s" name (String.concat "; " errs)

let test_audit_record_and_check () =
  with_audit @@ fun () ->
  Audit.begin_request 7;
  Audit.probe ~kind:"sse.bucket" ~tag:"t1" ~matches:[ 2; 0; 1 ];
  Audit.probe ~kind:"sse.bucket" ~tag:"t1" ~matches:[ 0; 2; 1 ] (* repeat = search pattern *);
  Audit.rows_paired 3;
  let t = Option.get (Audit.end_request ()) in
  Alcotest.(check int) "trace id" 7 t.Audit.t_id;
  Alcotest.(check int) "probes kept in order" 2 (List.length t.Audit.t_probes);
  Alcotest.(check int) "rows paired" 3 t.Audit.t_rows_paired;
  let predicted = [ ("sse.bucket", "t1", [ 0; 1; 2 ]) ] in
  check_passes "order-insensitive match"
    (Audit.check ~max_rows_paired:3 ~predicted t);
  check_fails "unpredicted probe" (Audit.check ~predicted:[] t);
  check_fails "access-pattern mismatch"
    (Audit.check ~predicted:[ ("sse.bucket", "t1", [ 0; 1 ]) ] t);
  check_fails "wrong kind"
    (Audit.check ~predicted:[ ("sse.filter", "t1", [ 0; 1; 2 ]) ] t);
  check_fails "rows paired beyond bound" (Audit.check ~max_rows_paired:2 ~predicted t);
  let s = Audit.summary () in
  Alcotest.(check int) "summary requests" 1 s.Audit.s_requests;
  Alcotest.(check int) "summary probes" 2 s.Audit.s_probes;
  Alcotest.(check int) "summary checks" 5 s.Audit.s_checks_run;
  Alcotest.(check int) "summary failures" 4 s.Audit.s_check_failures

let test_audit_disabled_noop () =
  Audit.reset ();
  Alcotest.(check bool) "off by default" false !Audit.enabled;
  Audit.begin_request 1;
  Audit.probe ~kind:"sse.bucket" ~tag:"t" ~matches:[ 0 ];
  Audit.rows_paired 5;
  Alcotest.(check bool) "no trace when off" true (Audit.end_request () = None);
  Alcotest.(check int) "nothing retained" 0 (List.length (Audit.traces ()))

let test_audit_failure_messages () =
  with_audit @@ fun () ->
  Audit.begin_request 1;
  Audit.probe ~kind:"sse.bucket" ~tag:"rogue" ~matches:[ 9 ];
  let t = Option.get (Audit.end_request ()) in
  match Audit.check ~predicted:[] t with
  | Audit.Pass -> Alcotest.fail "expected Fail"
  | Audit.Fail errs ->
    Alcotest.(check bool) "message names the probe" true
      (List.exists (fun e -> contains e "rogue") errs);
    let b = Buffer.create 64 in
    let fmt = Format.formatter_of_buffer b in
    Audit.pp_verdict fmt (Audit.Fail errs);
    Format.pp_print_flush fmt ();
    Alcotest.(check bool) "pp_verdict renders messages" true
      (contains (Buffer.contents b) "rogue")

(* --- scheme counters vs the analytic cost model ---------------------------- *)

let schema : Table.schema =
  [ { Table.name = "salary"; ty = Value.TInt }; { Table.name = "dept"; ty = Value.TStr } ]

let dept_domain = [ str "A"; str "B"; str "C" ]

let table =
  Table.of_rows schema
    [ [| vi 1000; str "A" |];
      [| vi 2000; str "B" |];
      [| vi 3000; str "C" |];
      [| vi 4000; str "A" |] ]

let config =
  Config.make ~bucket_size:2 ~max_group_attrs:1 ~filter_columns:[ "dept" ]
    ~value_columns:[ "salary" ] ~group_columns:[ "dept" ] ()

(* Built with metrics disabled so setup/encryption costs don't pollute the
   per-query counter assertions below. *)
let client = Scheme.setup config ~domains:[ ("dept", dept_domain) ] (Sagma_crypto.Drbg.create "obs-tests")
let enc = Scheme.encrypt_table client table

let test_sum_matches_cost_model () =
  with_metrics @@ fun () ->
  let q = Query.make ~group_by:[ "dept" ] (Query.Sum "salary") in
  let rows = Scheme.query client enc q in
  Alcotest.(check int) "three groups" 3 (List.length rows);
  (* §3.4: one ciphertext multiplication (pairing) per touched row, per
     block of the joint bucket (B^arity = 2) and per CRT channel. *)
  let channels = Scheme.Crt.channels client.Scheme.pp.Scheme.channels in
  let expected_mul = 4 * 2 * channels in
  Alcotest.(check int) "bgn.mul = rows × blocks × channels" expected_mul
    (Metrics.value (Metrics.counter "bgn.mul"));
  Alcotest.(check int) "every row touched exactly once" 4
    (Metrics.value (Metrics.counter "scheme.agg.rows"));
  Alcotest.(check int) "one joint bucket per dept bucket" 2
    (Metrics.value (Metrics.counter "scheme.agg.joint_buckets"));
  Alcotest.(check bool) "decryption solved discrete logs" true
    (Metrics.value (Metrics.counter "bgn.dlog.solves") > 0);
  (* PR 6: the server side runs batched products of pairings, yet the
     pairing count itself must still follow the analytic model — and the
     per-step field inversions of the old affine Miller loop are gone. *)
  Alcotest.(check int) "pairing.pairings matches bgn.mul" expected_mul
    (Metrics.value (Metrics.counter "pairing.pairings"));
  Alcotest.(check bool) "aggregation uses pairing_prod" true
    (Metrics.value (Metrics.counter "pairing.prod_calls") > 0);
  Alcotest.(check bool) "invm collapsed below one per pairing" true
    (Metrics.value (Metrics.counter "bigint.invm") < expected_mul)

let test_count_needs_no_pairings () =
  with_metrics @@ fun () ->
  (* Count_level1 (no dummy rows): indicators are summed in G1 — curve
     additions only, zero ciphertext multiplications. *)
  let q = Query.make ~group_by:[ "dept" ] Query.Count in
  let rows = Scheme.query client enc q in
  Alcotest.(check int) "three groups" 3 (List.length rows);
  Alcotest.(check int) "COUNT performs no bgn.mul" 0
    (Metrics.value (Metrics.counter "bgn.mul"));
  Alcotest.(check int) "rows still walked" 4
    (Metrics.value (Metrics.counter "scheme.agg.rows"))

let test_query_trace_shape () =
  with_metrics @@ fun () ->
  let q = Query.make ~group_by:[ "dept" ] (Query.Sum "salary") in
  ignore (Scheme.query client enc q);
  Alcotest.(check (list string)) "one root per query phase"
    [ "token"; "aggregate"; "decrypt" ]
    (span_names (Trace.roots ()));
  let agg = List.nth (Trace.roots ()) 1 in
  Alcotest.(check (list string)) "aggregate sub-phases"
    [ "filter"; "bucket_intersection"; "indicator_coeffs"; "pairing_loop" ]
    (span_names agg.Trace.children)

let test_explain_cost_matches_model () =
  with_metrics @@ fun () ->
  (* The per-request cost scope must reproduce the §3.4 analytic model:
     bgn_mul = rows × blocks per joint bucket (B^arity = 2) × CRT
     channels, exactly what the global counters already verify — but
     here as a request-scoped delta, the number an EXPLAIN block ships. *)
  let q = Query.make ~group_by:[ "dept" ] (Query.Sum "salary") in
  let rows, rt = Trace.with_request_full (fun () -> Scheme.query client enc q) in
  Alcotest.(check int) "three groups" 3 (List.length rows);
  let channels = Scheme.Crt.channels client.Scheme.pp.Scheme.channels in
  Alcotest.(check int) "cost.bgn_mul = rows × blocks × channels" (4 * 2 * channels)
    rt.Trace.r_cost.Trace.bgn_mul;
  Alcotest.(check int) "cost.agg_rows counts each row once" 4
    rt.Trace.r_cost.Trace.agg_rows;
  Alcotest.(check int) "cost.agg_buckets" 2 rt.Trace.r_cost.Trace.agg_buckets;
  Alcotest.(check bool) "dlog solves attributed" true
    (rt.Trace.r_cost.Trace.dlog_solves > 0);
  Alcotest.(check bool) "index postings attributed" true
    (rt.Trace.r_cost.Trace.sse_postings > 0);
  (* For a lone request the scoped delta equals the global counter. *)
  Alcotest.(check int) "scope delta = global counter"
    (Metrics.value (Metrics.counter "bgn.mul"))
    rt.Trace.r_cost.Trace.bgn_mul;
  (* The request tree carries the usual phase spans. *)
  Alcotest.(check (list string)) "request phases"
    [ "token"; "aggregate"; "decrypt" ]
    (List.map (fun (n, _) -> n) (Trace.phase_timings rt.Trace.r_root))

(* --- resource profiler ------------------------------------------------------ *)

let test_request_gc_delta () =
  with_metrics @@ fun () ->
  (* The per-request GC differential must be real allocation, bounded by
     an outer Gc.quick_stat differential taken around the same request:
     the EXPLAIN gc block can't claim more minor words than the whole
     enclosing region allocated. *)
  let q = Query.make ~group_by:[ "dept" ] (Query.Sum "salary") in
  let before = Gc.quick_stat () in
  let rows, rt = Trace.with_request_full (fun () -> Scheme.query client enc q) in
  let after = Gc.quick_stat () in
  Alcotest.(check int) "three groups" 3 (List.length rows);
  let outer = int_of_float (after.Gc.minor_words -. before.Gc.minor_words) in
  let inner = rt.Trace.r_gc.Trace.gc_minor_words in
  Alcotest.(check bool) "SUM allocates nonzero minor words" true (inner > 0);
  Alcotest.(check bool) "request delta bounded by the outer differential" true (inner <= outer);
  Alcotest.(check bool) "heap size recorded" true (rt.Trace.r_gc.Trace.gc_heap_words > 0)

let test_prof_attributes_pairing_loop () =
  with_metrics @@ fun () ->
  Prof.reset ();
  Prof.start ();
  Fun.protect
    ~finally:(fun () ->
      Prof.stop ();
      Prof.reset ())
    (fun () ->
      Alcotest.(check bool) "profiler active" true (Prof.active ());
      let q = Query.make ~group_by:[ "dept" ] (Query.Sum "salary") in
      let _, rt = Trace.with_request_full (fun () -> Scheme.query client enc q) in
      (* A SUM is pairings per row × block × channel: the pairing loop
         must dominate the request's allocation table. *)
      (match rt.Trace.r_alloc with
       | (top, w) :: _ ->
         Alcotest.(check string) "pairing_loop dominates the request" "pairing_loop" top;
         Alcotest.(check bool) "with real weight" true (w > 0)
       | [] -> Alcotest.fail "profiler left the allocation table empty");
      (* The global site table agrees with the per-request view. *)
      match Prof.top_sites ~n:1 () with
      | [ s ] ->
        Alcotest.(check string) "global top site" "pairing_loop" s.Prof.site_span;
        Alcotest.(check bool) "samples counted" true (s.Prof.site_samples > 0)
      | _ -> Alcotest.fail "no allocation sites recorded")

(* --- leakage auditor against the real scheme -------------------------------- *)

let run_audited tok =
  Audit.begin_request (Log.next_request_id ());
  ignore (Scheme.aggregate enc tok);
  Option.get (Audit.end_request ())

let test_scheme_audit_honest_pass () =
  with_audit @@ fun () ->
  let q =
    Query.make ~where:[ ("dept", str "A") ] ~group_by:[ "dept" ] (Query.Sum "salary")
  in
  let tok = Scheme.token client q in
  let t = run_audited tok in
  Alcotest.(check bool) "probes recorded" true (List.length t.Audit.t_probes > 0);
  Alcotest.(check bool) "filter probe present" true
    (List.exists (fun p -> p.Audit.p_kind = "sse.filter") t.Audit.t_probes);
  Alcotest.(check bool) "bucket probes present" true
    (List.exists (fun p -> p.Audit.p_kind = "sse.bucket") t.Audit.t_probes);
  check_passes "honest execution matches declared leakage"
    (Leakage.audit_check enc tok t)

let test_scheme_audit_flags_extra_probe () =
  with_audit @@ fun () ->
  (* A compromised/buggy server that reads one index entry beyond what
     the query's leakage licenses must be flagged. We forge the extra
     read through the production recording path (audited_search) with a
     filter token the query never issued. *)
  let q =
    Query.make ~where:[ ("dept", str "A") ] ~group_by:[ "dept" ] (Query.Sum "salary")
  in
  let tok = Scheme.token client q in
  Audit.begin_request (Log.next_request_id ());
  ignore (Scheme.aggregate enc tok);
  let rogue = Scheme.Sse.token client.Scheme.sse_key (Scheme.filter_keyword ~column:"dept" (str "B")) in
  ignore (Scheme.audited_search ~kind:"sse.filter" enc.Scheme.index rogue);
  let t = Option.get (Audit.end_request ()) in
  (match Leakage.audit_check enc tok t with
  | Audit.Fail errs ->
    Alcotest.(check bool) "failure mentions the unpredicted probe" true
      (List.exists (fun e -> contains e "unpredicted") errs)
  | Audit.Pass -> Alcotest.fail "forged probe escaped the auditor")

let test_scheme_audit_flags_extra_pairing () =
  with_audit @@ fun () ->
  let q = Query.make ~group_by:[ "dept" ] (Query.Sum "salary") in
  let tok = Scheme.token client q in
  Audit.begin_request (Log.next_request_id ());
  ignore (Scheme.aggregate enc tok);
  Audit.rows_paired 1000 (* server pairing rows it should not touch *);
  let t = Option.get (Audit.end_request ()) in
  check_fails "excess paired rows flagged" (Leakage.audit_check enc tok t)

(* --- Client_api facade vs the plaintext oracle ------------------------------ *)

let results_to_list rs =
  List.map (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count)) rs

let oracle_to_list rs =
  List.map (fun r -> (List.map Value.to_string r.Executor.group, r.Executor.sum, r.Executor.count)) rs

let facade () =
  let t = Client_api.create ~config ~domains:[ ("dept", dept_domain) ] ~seed:"obs-facade" () in
  Client_api.encrypt t ~table;
  t

let check_facade_matches_oracle name t plain_table q =
  Alcotest.(check (list (triple (list string) int int)))
    name
    (oracle_to_list (Executor.run plain_table q))
    (results_to_list (Client_api.query t q))

let test_facade_matches_executor () =
  let t = facade () in
  Alcotest.(check int) "row_count" 4 (Client_api.row_count t);
  check_facade_matches_oracle "SUM" t table (Query.make ~group_by:[ "dept" ] (Query.Sum "salary"));
  check_facade_matches_oracle "COUNT" t table (Query.make ~group_by:[ "dept" ] Query.Count);
  check_facade_matches_oracle "AVG" t table (Query.make ~group_by:[ "dept" ] (Query.Avg "salary"));
  check_facade_matches_oracle "filtered SUM" t table
    (Query.make ~where:[ ("dept", str "A") ] ~group_by:[ "dept" ] (Query.Sum "salary"))

let test_facade_append_matches_executor () =
  let t = facade () in
  Client_api.append t ~values:[| 5000 |] ~groups:[| str "B" |]
    ~filters:[ ("dept", str "B") ];
  Alcotest.(check int) "row appended" 5 (Client_api.row_count t);
  let extended =
    Table.of_rows schema
      [ [| vi 1000; str "A" |];
        [| vi 2000; str "B" |];
        [| vi 3000; str "C" |];
        [| vi 4000; str "A" |];
        [| vi 5000; str "B" |] ]
  in
  check_facade_matches_oracle "SUM after append" t extended
    (Query.make ~group_by:[ "dept" ] (Query.Sum "salary"));
  check_facade_matches_oracle "filtered SUM after append" t extended
    (Query.make ~where:[ ("dept", str "B") ] ~group_by:[ "dept" ] (Query.Sum "salary"))

let test_facade_unencrypted_raises () =
  let t = Client_api.create ~config ~domains:[ ("dept", dept_domain) ] () in
  Alcotest.(check int) "no rows yet" 0 (Client_api.row_count t);
  Alcotest.check_raises "query before encrypt"
    (Invalid_argument "Client_api: no table encrypted yet") (fun () ->
      ignore (Client_api.query t (Query.make ~group_by:[ "dept" ] Query.Count)))

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "gauge export" `Quick test_gauge_export;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "observe_ms" `Quick test_observe_ms;
          Alcotest.test_case "snapshot to JSON" `Quick test_snapshot_json;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "quantile estimates" `Quick test_quantiles;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition ] );
      ( "federation",
        [ Alcotest.test_case "label escaping" `Quick test_label_escaping;
          Alcotest.test_case "labeled exposition" `Quick test_labeled_exposition;
          Alcotest.test_case "merge hist stats" `Quick test_merge_hist_stats;
          Alcotest.test_case "merge snapshots" `Quick test_merge_snapshots ] );
      ( "watchdog",
        [ Alcotest.test_case "rules roundtrip + parse errors" `Quick test_watchdog_rules_roundtrip;
          Alcotest.test_case "fire and resolve" `Quick test_watchdog_fire_resolve;
          Alcotest.test_case "ratio/rate need history" `Quick
            test_watchdog_ratio_and_rate_need_history;
          Alcotest.test_case "shard-down via router count" `Quick test_watchdog_shards_down ] );
      ( "log",
        [ Alcotest.test_case "JSON-lines events" `Quick test_log_jsonl;
          Alcotest.test_case "level threshold" `Quick test_log_threshold;
          Alcotest.test_case "no sink" `Quick test_log_no_sink;
          Alcotest.test_case "level_of_string" `Quick test_level_of_string ] );
      ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled + exception safety" `Quick test_span_disabled_and_exn;
          Alcotest.test_case "off-domain spans intact" `Quick test_span_off_domain;
          Alcotest.test_case "request contexts" `Quick test_with_request_basics;
          Alcotest.test_case "pool inherits context" `Quick test_pool_inherits_context;
          Alcotest.test_case "concurrent requests isolated" `Quick
            test_concurrent_requests_no_leak;
          Alcotest.test_case "ring eviction under load" `Quick
            test_request_ring_eviction_under_load;
          Alcotest.test_case "snapshot vs concurrent writers" `Quick
            test_snapshot_concurrent_with_writers ] );
      ( "audit",
        [ Alcotest.test_case "record and check" `Quick test_audit_record_and_check;
          Alcotest.test_case "disabled is a no-op" `Quick test_audit_disabled_noop;
          Alcotest.test_case "failure messages" `Quick test_audit_failure_messages ] );
      ( "scheme counters",
        [ Alcotest.test_case "SUM matches cost model" `Quick test_sum_matches_cost_model;
          Alcotest.test_case "COUNT needs no pairings" `Quick test_count_needs_no_pairings;
          Alcotest.test_case "query trace shape" `Quick test_query_trace_shape;
          Alcotest.test_case "EXPLAIN cost matches model" `Quick
            test_explain_cost_matches_model ] );
      ( "profiler",
        [ Alcotest.test_case "request gc delta" `Quick test_request_gc_delta;
          Alcotest.test_case "allocation attributed to pairing_loop" `Quick
            test_prof_attributes_pairing_loop ] );
      ( "scheme audit",
        [ Alcotest.test_case "honest execution passes" `Quick test_scheme_audit_honest_pass;
          Alcotest.test_case "extra probe flagged" `Quick test_scheme_audit_flags_extra_probe;
          Alcotest.test_case "extra pairing flagged" `Quick test_scheme_audit_flags_extra_pairing ] );
      ( "facade",
        [ Alcotest.test_case "matches Executor.run" `Quick test_facade_matches_executor;
          Alcotest.test_case "append matches Executor.run" `Quick
            test_facade_append_matches_executor;
          Alcotest.test_case "query before encrypt raises" `Quick test_facade_unencrypted_raises ] )
    ]

(* Tests for the observability subsystem (Sagma_obs) and the Client_api
   facade: metrics are free when disabled, counters match the analytic
   cost model of §3.4 (pairings per row × block × channel), spans nest
   per query phase, and the facade agrees with the plaintext oracle. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Metrics = Sagma_obs.Metrics
module Trace = Sagma_obs.Trace
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

(* Every test leaves the registry the way it found it: disabled, zeroed. *)
let with_metrics ?(enabled = true) f =
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Trace.reset ())
    (fun () ->
      Metrics.reset ();
      Trace.reset ();
      Metrics.set_enabled enabled;
      f ())

(* --- metrics registry ----------------------------------------------------- *)

let test_disabled_by_default () =
  Alcotest.(check bool) "collection starts off" false !Metrics.enabled;
  let c = Metrics.counter "test.off" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr/add are no-ops when off" 0 (Metrics.value c);
  let h = Metrics.histogram "test.off_hist" in
  Metrics.observe h 3.0;
  let s = Metrics.snapshot () in
  Alcotest.(check bool)
    "histogram untouched when off" false
    (List.mem_assoc "test.off_hist" s.Metrics.histograms)

let test_counter_basics () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.basics" in
  Metrics.incr c;
  Metrics.add c 9;
  Alcotest.(check int) "incr + add" 10 (Metrics.value c);
  (* registration is idempotent: same name, same cell *)
  let c' = Metrics.counter "test.basics" in
  Metrics.incr c';
  Alcotest.(check int) "same cell under one name" 11 (Metrics.value c);
  let s = Metrics.snapshot () in
  Alcotest.(check (option int))
    "snapshot carries the count" (Some 11)
    (List.assoc_opt "test.basics" s.Metrics.counters);
  Alcotest.(check bool)
    "zero counters are filtered out" false
    (List.mem_assoc "test.off" s.Metrics.counters);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.value c)

let test_histogram_stats () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test.hist" in
  Metrics.observe h 1.0;
  Metrics.observe h 3.0;
  let s = Metrics.snapshot () in
  let st = List.assoc "test.hist" s.Metrics.histograms in
  Alcotest.(check int) "count" 2 st.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "sum" 4.0 st.Metrics.h_sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 st.Metrics.h_min;
  Alcotest.(check (float 1e-9)) "max" 3.0 st.Metrics.h_max

let test_observe_ms () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test.timed" in
  Alcotest.(check int) "return value passes through" 7 (Metrics.observe_ms h (fun () -> 7));
  let st = List.assoc "test.timed" (Metrics.snapshot ()).Metrics.histograms in
  Alcotest.(check int) "one observation" 1 st.Metrics.h_count;
  Alcotest.(check bool) "non-negative duration" true (st.Metrics.h_min >= 0.0)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_snapshot_json () =
  with_metrics @@ fun () ->
  Metrics.add (Metrics.counter "test.json") 5;
  Metrics.observe (Metrics.histogram "test.json_hist") 2.0;
  let j = Metrics.snapshot_to_json (Metrics.snapshot ()) in
  Alcotest.(check bool) "counter in JSON" true (contains j "\"test.json\":5");
  Alcotest.(check bool) "histogram in JSON" true (contains j "\"test.json_hist\"");
  Alcotest.(check string) "escaping" "a\\\"b\\\\c\\n" (Metrics.json_escape "a\"b\\c\n")

(* --- span tracing ---------------------------------------------------------- *)

let span_names roots = List.map (fun s -> s.Trace.name) roots

let test_span_nesting () =
  with_metrics @@ fun () ->
  let v =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "first" (fun () -> ()) ;
        Trace.with_span "second" (fun () -> 42))
  in
  Alcotest.(check int) "value passes through" 42 v;
  (match Trace.roots () with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" root.Trace.name;
    Alcotest.(check (list string))
      "children in execution order" [ "first"; "second" ]
      (span_names root.Trace.children);
    Alcotest.(check bool) "duration covers children" true
      (root.Trace.ms >= 0.0
      && List.for_all (fun c -> c.Trace.ms <= root.Trace.ms +. 1e-6) root.Trace.children)
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots));
  Trace.reset ();
  Alcotest.(check int) "reset drops roots" 0 (List.length (Trace.roots ()))

let test_span_disabled_and_exn () =
  (* disabled: no recording at all *)
  Trace.reset ();
  Trace.with_span "ghost" (fun () -> ());
  Alcotest.(check int) "nothing recorded when off" 0 (List.length (Trace.roots ()));
  (* enabled: a raising body still closes its span *)
  with_metrics @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check (list string)) "span recorded despite raise" [ "boom" ]
    (span_names (Trace.roots ()))

(* --- scheme counters vs the analytic cost model ---------------------------- *)

let schema : Table.schema =
  [ { Table.name = "salary"; ty = Value.TInt }; { Table.name = "dept"; ty = Value.TStr } ]

let dept_domain = [ str "A"; str "B"; str "C" ]

let table =
  Table.of_rows schema
    [ [| vi 1000; str "A" |];
      [| vi 2000; str "B" |];
      [| vi 3000; str "C" |];
      [| vi 4000; str "A" |] ]

let config =
  Config.make ~bucket_size:2 ~max_group_attrs:1 ~filter_columns:[ "dept" ]
    ~value_columns:[ "salary" ] ~group_columns:[ "dept" ] ()

(* Built with metrics disabled so setup/encryption costs don't pollute the
   per-query counter assertions below. *)
let client = Scheme.setup config ~domains:[ ("dept", dept_domain) ] (Sagma_crypto.Drbg.create "obs-tests")
let enc = Scheme.encrypt_table client table

let test_sum_matches_cost_model () =
  with_metrics @@ fun () ->
  let q = Query.make ~group_by:[ "dept" ] (Query.Sum "salary") in
  let rows = Scheme.query client enc q in
  Alcotest.(check int) "three groups" 3 (List.length rows);
  (* §3.4: one ciphertext multiplication (pairing) per touched row, per
     block of the joint bucket (B^arity = 2) and per CRT channel. *)
  let channels = Scheme.Crt.channels client.Scheme.pp.Scheme.channels in
  let expected_mul = 4 * 2 * channels in
  Alcotest.(check int) "bgn.mul = rows × blocks × channels" expected_mul
    (Metrics.value (Metrics.counter "bgn.mul"));
  Alcotest.(check int) "every row touched exactly once" 4
    (Metrics.value (Metrics.counter "scheme.agg.rows"));
  Alcotest.(check int) "one joint bucket per dept bucket" 2
    (Metrics.value (Metrics.counter "scheme.agg.joint_buckets"));
  Alcotest.(check bool) "decryption solved discrete logs" true
    (Metrics.value (Metrics.counter "bgn.dlog.solves") > 0)

let test_count_needs_no_pairings () =
  with_metrics @@ fun () ->
  (* Count_level1 (no dummy rows): indicators are summed in G1 — curve
     additions only, zero ciphertext multiplications. *)
  let q = Query.make ~group_by:[ "dept" ] Query.Count in
  let rows = Scheme.query client enc q in
  Alcotest.(check int) "three groups" 3 (List.length rows);
  Alcotest.(check int) "COUNT performs no bgn.mul" 0
    (Metrics.value (Metrics.counter "bgn.mul"));
  Alcotest.(check int) "rows still walked" 4
    (Metrics.value (Metrics.counter "scheme.agg.rows"))

let test_query_trace_shape () =
  with_metrics @@ fun () ->
  let q = Query.make ~group_by:[ "dept" ] (Query.Sum "salary") in
  ignore (Scheme.query client enc q);
  Alcotest.(check (list string)) "one root per query phase"
    [ "token"; "aggregate"; "decrypt" ]
    (span_names (Trace.roots ()));
  let agg = List.nth (Trace.roots ()) 1 in
  Alcotest.(check (list string)) "aggregate sub-phases"
    [ "filter"; "bucket_intersection"; "indicator_coeffs"; "pairing_loop" ]
    (span_names agg.Trace.children)

(* --- Client_api facade vs the plaintext oracle ------------------------------ *)

let results_to_list rs =
  List.map (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count)) rs

let oracle_to_list rs =
  List.map (fun r -> (List.map Value.to_string r.Executor.group, r.Executor.sum, r.Executor.count)) rs

let facade () =
  let t = Client_api.create ~config ~domains:[ ("dept", dept_domain) ] ~seed:"obs-facade" () in
  Client_api.encrypt t ~table;
  t

let check_facade_matches_oracle name t plain_table q =
  Alcotest.(check (list (triple (list string) int int)))
    name
    (oracle_to_list (Executor.run plain_table q))
    (results_to_list (Client_api.query t q))

let test_facade_matches_executor () =
  let t = facade () in
  Alcotest.(check int) "row_count" 4 (Client_api.row_count t);
  check_facade_matches_oracle "SUM" t table (Query.make ~group_by:[ "dept" ] (Query.Sum "salary"));
  check_facade_matches_oracle "COUNT" t table (Query.make ~group_by:[ "dept" ] Query.Count);
  check_facade_matches_oracle "AVG" t table (Query.make ~group_by:[ "dept" ] (Query.Avg "salary"));
  check_facade_matches_oracle "filtered SUM" t table
    (Query.make ~where:[ ("dept", str "A") ] ~group_by:[ "dept" ] (Query.Sum "salary"))

let test_facade_append_matches_executor () =
  let t = facade () in
  Client_api.append t ~values:[| 5000 |] ~groups:[| str "B" |]
    ~filters:[ ("dept", str "B") ];
  Alcotest.(check int) "row appended" 5 (Client_api.row_count t);
  let extended =
    Table.of_rows schema
      [ [| vi 1000; str "A" |];
        [| vi 2000; str "B" |];
        [| vi 3000; str "C" |];
        [| vi 4000; str "A" |];
        [| vi 5000; str "B" |] ]
  in
  check_facade_matches_oracle "SUM after append" t extended
    (Query.make ~group_by:[ "dept" ] (Query.Sum "salary"));
  check_facade_matches_oracle "filtered SUM after append" t extended
    (Query.make ~where:[ ("dept", str "B") ] ~group_by:[ "dept" ] (Query.Sum "salary"))

let test_facade_unencrypted_raises () =
  let t = Client_api.create ~config ~domains:[ ("dept", dept_domain) ] () in
  Alcotest.(check int) "no rows yet" 0 (Client_api.row_count t);
  Alcotest.check_raises "query before encrypt"
    (Invalid_argument "Client_api: no table encrypted yet") (fun () ->
      ignore (Client_api.query t (Query.make ~group_by:[ "dept" ] Query.Count)))

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "observe_ms" `Quick test_observe_ms;
          Alcotest.test_case "snapshot to JSON" `Quick test_snapshot_json ] );
      ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled + exception safety" `Quick test_span_disabled_and_exn ] );
      ( "scheme counters",
        [ Alcotest.test_case "SUM matches cost model" `Quick test_sum_matches_cost_model;
          Alcotest.test_case "COUNT needs no pairings" `Quick test_count_needs_no_pairings;
          Alcotest.test_case "query trace shape" `Quick test_query_trace_shape ] );
      ( "facade",
        [ Alcotest.test_case "matches Executor.run" `Quick test_facade_matches_executor;
          Alcotest.test_case "append matches Executor.run" `Quick
            test_facade_append_matches_executor;
          Alcotest.test_case "query before encrypt raises" `Quick test_facade_unencrypted_raises ] )
    ]

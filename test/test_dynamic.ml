(* Regression tests for the §3.3 dynamically-shifted construction
   (append-then-query: aggregates must track the growing row set) and
   for the leakage profile (bucket-level access patterns of permuted
   tables are equal up to the permutation — leakage must not depend on
   anything beyond what §4.2's L declares). *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

(* --- Dynamic: append then query ---------------------------------------------- *)

let dyn_domain = [ str "male"; str "female"; str "other" ]

let dyn_client () =
  Dynamic.setup ~bgn_bits:64 ~value_bits:12 ~channel_bits:8 ~bucket_size:2
    ~domain:dyn_domain (Drbg.create "dynamic-append")

let dyn_results c rows =
  let aggs = Dynamic.aggregate c rows in
  let dec = Dynamic.decrypt c aggs ~total_rows:(List.length rows) in
  List.sort compare
    (List.map (fun r -> (Value.to_string r.Dynamic.group, r.Dynamic.sum, r.Dynamic.count)) dec)

let plain_results tuples =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, g) ->
      let s, c = try Hashtbl.find tbl g with Not_found -> (0, 0) in
      Hashtbl.replace tbl g (s + v, c + 1))
    tuples;
  List.sort compare (Hashtbl.fold (fun g (s, c) acc -> (g, s, c) :: acc) tbl [])

let test_dynamic_append_then_query () =
  let c = dyn_client () in
  let initial = [ (10, "male"); (20, "female"); (5, "male") ] in
  let enc_of = List.map (fun (v, g) -> Dynamic.enc_row c ~value:v ~group:(str g)) in
  let rows = enc_of initial in
  Alcotest.(check (list (triple string int int)))
    "initial aggregate" (plain_results initial) (dyn_results c rows);
  (* Append one row per bucket boundary case: an existing group, a group
     unseen so far, and a second append to the same group. *)
  let appended = initial @ [ (7, "male") ] in
  let rows = rows @ enc_of [ (7, "male") ] in
  Alcotest.(check (list (triple string int int)))
    "after appending to an existing group" (plain_results appended) (dyn_results c rows);
  let appended = appended @ [ (13, "other") ] in
  let rows = rows @ enc_of [ (13, "other") ] in
  Alcotest.(check (list (triple string int int)))
    "after appending a new group" (plain_results appended) (dyn_results c rows);
  let appended = appended @ [ (0, "other"); (40, "female") ] in
  let rows = rows @ enc_of [ (0, "other"); (40, "female") ] in
  Alcotest.(check (list (triple string int int)))
    "after a batch append" (plain_results appended) (dyn_results c rows)

let test_dynamic_append_zero_rows () =
  let c = dyn_client () in
  Alcotest.(check (list (triple string int int))) "empty table" [] (dyn_results c []);
  let rows = [ Dynamic.enc_row c ~value:9 ~group:(str "female") ] in
  Alcotest.(check (list (triple string int int)))
    "first append into empty table"
    [ ("female", 9, 1) ]
    (dyn_results c rows)

(* --- Scheme-level append then query (the protocol path) ----------------------- *)

let schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt }; { Table.name = "g"; ty = Value.TStr } ]

let test_scheme_append_then_query () =
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "v" ]
      ~group_columns:[ "g" ] ()
  in
  let t =
    Client_api.create ~config
      ~domains:[ ("g", [ str "x"; str "y"; str "z" ]) ]
      ~seed:"append-regression" ()
  in
  let table =
    Table.of_rows schema [ [| vi 10; str "x" |]; [| vi 20; str "y" |]; [| vi 1; str "x" |] ]
  in
  Client_api.encrypt t ~table;
  let q = Query.make ~group_by:[ "g" ] (Query.Sum "v") in
  let results tt =
    List.sort compare
      (List.map
         (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
         (Client_api.query tt q))
  in
  Alcotest.(check (list (triple (list string) int int)))
    "before append"
    [ ([ "x" ], 11, 2); ([ "y" ], 20, 1) ]
    (results t);
  Client_api.append t ~values:[| 5 |] ~groups:[| str "z" |] ~filters:[];
  Client_api.append t ~values:[| 100 |] ~groups:[| str "x" |] ~filters:[];
  Alcotest.(check (list (triple (list string) int int)))
    "after appends"
    [ ([ "x" ], 111, 3); ([ "y" ], 20, 1); ([ "z" ], 5, 1) ]
    (results t)

(* --- Leakage: bucket patterns of permuted tables ------------------------------ *)

let leak_config =
  Config.make ~bucket_size:2 ~max_group_attrs:1 ~filter_columns:[ "f" ]
    ~value_columns:[ "v" ] ~group_columns:[ "g" ] ()

let leak_schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt };
    { Table.name = "g"; ty = Value.TStr };
    { Table.name = "f"; ty = Value.TInt } ]

let leak_rows =
  [ [| vi 10; str "x"; vi 0 |]; [| vi 20; str "y"; vi 1 |]; [| vi 30; str "z"; vi 0 |];
    [| vi 40; str "x"; vi 1 |]; [| vi 50; str "y"; vi 0 |]; [| vi 60; str "x"; vi 0 |] ]

(* A fixed non-trivial permutation: row i of the permuted table is row
   [perm.(i)] of the original. *)
let perm = [| 4; 2; 0; 5; 1; 3 |]

let leak_queries = [ Query.make ~group_by:[ "g" ] (Query.Sum "v");
                     Query.make ~where:[ ("f", vi 0) ] ~group_by:[ "g" ] (Query.Sum "v") ]

let profile_of rows =
  (* Same seed → same keys: only the row order differs between the two
     profiles. *)
  let client =
    Scheme.setup leak_config
      ~domains:[ ("g", [ str "x"; str "y"; str "z" ]) ]
      (Drbg.create "leakage-perm")
  in
  let enc = Scheme.encrypt_table client (Table.of_rows leak_schema rows) in
  let tokens = List.map (Scheme.token client) leak_queries in
  Leakage.profile enc tokens

let test_leakage_permutation_equivariant () =
  let base = profile_of leak_rows in
  let permuted = profile_of (List.map (fun i -> List.nth leak_rows i) (Array.to_list perm)) in
  Alcotest.(check int) "num rows" base.Leakage.num_rows permuted.Leakage.num_rows;
  Alcotest.(check int) "index size" base.Leakage.index_size permuted.Leakage.index_size;
  (* inv.(orig_row) = permuted_row *)
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun permuted_row orig_row -> inv.(orig_row) <- permuted_row) perm;
  List.iter2
    (fun qb qp ->
      List.iter2
        (fun (ob : Leakage.sse_observation) (op : Leakage.sse_observation) ->
          (* Search pattern: the same keyword produces the same tag. *)
          Alcotest.(check string) "token tag" ob.Leakage.token_tag op.Leakage.token_tag;
          (* Access pattern: the same row set, renamed by the permutation —
             the bucket pattern itself (set sizes per keyword) is
             invariant. *)
          Alcotest.(check (list int)) "bucket pattern"
            (List.sort compare (List.map (fun r -> inv.(r)) ob.Leakage.matches))
            (List.sort compare op.Leakage.matches))
        qb.Leakage.observations qp.Leakage.observations)
    base.Leakage.queries permuted.Leakage.queries

let test_leakage_value_independent () =
  (* Same groups/filters, different values: the leakage profile must be
     bit-for-bit identical in everything L declares. *)
  let bump = List.map (function
      | [| Value.Int v; g; f |] -> [| vi (v + 7); g; f |]
      | _ -> assert false)
  in
  let base = profile_of leak_rows in
  let bumped = profile_of (bump leak_rows) in
  List.iter2
    (fun qb qp ->
      List.iter2
        (fun (ob : Leakage.sse_observation) (op : Leakage.sse_observation) ->
          Alcotest.(check string) "token tag" ob.Leakage.token_tag op.Leakage.token_tag;
          Alcotest.(check (list int)) "matches" ob.Leakage.matches op.Leakage.matches)
        qb.Leakage.observations qp.Leakage.observations)
    base.Leakage.queries bumped.Leakage.queries

let () =
  Alcotest.run "dynamic"
    [ ( "dynamic-append",
        [ Alcotest.test_case "append then query" `Quick test_dynamic_append_then_query;
          Alcotest.test_case "append into empty" `Quick test_dynamic_append_zero_rows;
          Alcotest.test_case "scheme append then query" `Quick test_scheme_append_then_query ] );
      ( "leakage",
        [ Alcotest.test_case "permutation equivariant" `Quick
            test_leakage_permutation_equivariant;
          Alcotest.test_case "value independent" `Quick test_leakage_value_independent ] ) ]

(* Tests for the layered constructions: §3.1 initial static shifting,
   §3.2 statically shifted bucketization, §3.3 dynamic shifting — plus the
   storage cost models (Table 9/10, Figure 8) and the Table 11 record. *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Drbg = Sagma_crypto.Drbg
open Sagma

let str s = Value.Str s

(* The paper's running tuples: (1000,male), (5000,female), (1500,female),
   (3000,male), (2000,male). *)
let tuples =
  [ (1000, "male"); (5000, "female"); (1500, "female"); (3000, "male"); (2000, "male") ]

let gender_domain = [ str "male"; str "female" ]

(* --- §3.1 full-domain static shifting --------------------------------------- *)

let test_static_full_domain_figure1 () =
  (* With the explicit paper mapping (female → block 0, male → block 1),
     the homomorphic total unpacks to female=6500, male=6000. *)
  let drbg = Drbg.create "static-3.1" in
  let c =
    Static.setup ~paillier_bits:256 ~value_bits:32
      ~mapping_strategy:(Mapping.Explicit [ str "female"; str "male" ])
      ~domain:gender_domain drbg
  in
  let rows = List.map (fun (v, g) -> Static.Full_domain.enc_row c ~value:v ~group:(str g)) tuples in
  let agg = Static.Full_domain.aggregate c rows in
  Alcotest.(check (list (pair string int)))
    "totals"
    [ ("female", 6500); ("male", 6000) ]
    (List.map (fun (g, v) -> (Value.to_string g, v)) (Static.Full_domain.decrypt c agg))

let test_static_full_domain_multi_ct () =
  (* Domain bigger than one ciphertext's block capacity: 20 values with
     value_bits sized so a 256-bit Paillier plaintext holds few blocks. *)
  let drbg = Drbg.create "static-3.1-wide" in
  let domain = List.init 20 (fun i -> Value.Int i) in
  let c = Static.setup ~paillier_bits:256 ~value_bits:32 ~domain drbg in
  Alcotest.(check bool) "several cts per row" true (Static.Full_domain.cts_per_row c > 1);
  let rows =
    List.map
      (fun i -> Static.Full_domain.enc_row c ~value:(100 + i) ~group:(Value.Int (i mod 20)))
      (List.init 40 (fun i -> i))
  in
  let agg = Static.Full_domain.aggregate c rows in
  let dec = Static.Full_domain.decrypt c agg in
  (* Every group i got values (100+i) and (100+i+20). *)
  List.iter
    (fun (g, total) ->
      let i = Value.as_int g in
      Alcotest.(check int) (Printf.sprintf "group %d" i) ((100 + i) + (100 + i + 20)) total)
    dec

let test_static_empty_aggregate () =
  let drbg = Drbg.create "static-empty" in
  let c = Static.setup ~paillier_bits:256 ~domain:gender_domain drbg in
  let dec = Static.Full_domain.decrypt c (Static.Full_domain.aggregate c []) in
  List.iter (fun (_, v) -> Alcotest.(check int) "zero" 0 v) dec

(* --- §3.2 bucketized static shifting ----------------------------------------- *)

let test_static_bucketized () =
  let drbg = Drbg.create "static-3.2" in
  let domain = List.init 10 (fun i -> Value.Int i) in
  let cb =
    Static.Bucketized.setup ~paillier_bits:256 ~value_bits:16 ~bucket_size:4 ~domain drbg
  in
  let d = Drbg.create "data-3.2" in
  let data = List.init 60 (fun _ -> (Drbg.int_below d 1000, Drbg.int_below d 10)) in
  let rows =
    List.map (fun (v, g) -> Static.Bucketized.enc_row cb ~value:v ~group:(Value.Int g)) data
  in
  let aggs = Static.Bucketized.aggregate cb rows in
  let dec = Static.Bucketized.decrypt cb aggs in
  (* Oracle: plain sums per group. *)
  let expect = Hashtbl.create 10 in
  List.iter
    (fun (v, g) -> Hashtbl.replace expect g (v + Option.value (Hashtbl.find_opt expect g) ~default:0))
    data;
  List.iter
    (fun (g, total) ->
      let g = Value.as_int g in
      Alcotest.(check int) (Printf.sprintf "group %d" g)
        (Option.value (Hashtbl.find_opt expect g) ~default:0)
        total)
    dec

let test_static_bucketized_leaks_only_bucket () =
  (* Rows in the same bucket produce the same public tag, others differ. *)
  let drbg = Drbg.create "static-3.2-leak" in
  let domain = List.init 4 (fun i -> Value.Int i) in
  let cb =
    Static.Bucketized.setup ~paillier_bits:256 ~bucket_size:2
      ~mapping_strategy:(Mapping.Explicit domain) ~domain drbg
  in
  let r0 = Static.Bucketized.enc_row cb ~value:1 ~group:(Value.Int 0) in
  let r1 = Static.Bucketized.enc_row cb ~value:2 ~group:(Value.Int 1) in
  let r2 = Static.Bucketized.enc_row cb ~value:3 ~group:(Value.Int 2) in
  Alcotest.(check int) "same bucket" r0.Static.Bucketized.bucket r1.Static.Bucketized.bucket;
  Alcotest.(check bool) "different bucket" true
    (r0.Static.Bucketized.bucket <> r2.Static.Bucketized.bucket)

(* --- §3.3 dynamic shifting (packed strategy) ---------------------------------- *)

let test_dynamic_table3_shifts () =
  (* Table 3: s(male) = 1, s(female) = 2^value_bits. *)
  let drbg = Drbg.create "dynamic-3.3" in
  let c =
    Dynamic.setup ~bgn_bits:64 ~value_bits:12 ~bucket_size:2
      ~mapping_strategy:(Mapping.Explicit gender_domain) ~domain:gender_domain drbg
  in
  Alcotest.(check string) "s(male)" "1" (Z.to_string (Dynamic.shift_value c (str "male")));
  Alcotest.(check string) "s(female)" (Z.to_string (Z.shift_left Z.one 12))
    (Z.to_string (Dynamic.shift_value c (str "female")))

let test_dynamic_aggregation () =
  let drbg = Drbg.create "dynamic-agg" in
  let c =
    Dynamic.setup ~bgn_bits:64 ~value_bits:12 ~channel_bits:8 ~bucket_size:2
      ~mapping_strategy:(Mapping.Explicit gender_domain) ~domain:gender_domain drbg
  in
  (* Scale salaries to fit 12-bit blocks: /10. *)
  let rows =
    List.map (fun (v, g) -> Dynamic.enc_row c ~value:(v / 10) ~group:(str g)) tuples
  in
  let aggs = Dynamic.aggregate c rows in
  let dec = Dynamic.decrypt c aggs ~total_rows:(List.length tuples) in
  Alcotest.(check (list (triple string int int)))
    "sums and counts"
    [ ("female", 650, 2); ("male", 600, 3) ]
    (List.map (fun r -> (Value.to_string r.Dynamic.group, r.Dynamic.sum, r.Dynamic.count)) dec)

let test_dynamic_larger_bucket () =
  let drbg = Drbg.create "dynamic-b4" in
  let domain = List.init 8 (fun i -> Value.Int i) in
  let c =
    Dynamic.setup ~bgn_bits:64 ~value_bits:10 ~channel_bits:8 ~bucket_size:4 ~domain drbg
  in
  let d = Drbg.create "data-b4" in
  let data = List.init 30 (fun _ -> (Drbg.int_below d 100, Drbg.int_below d 8)) in
  let rows = List.map (fun (v, g) -> Dynamic.enc_row c ~value:v ~group:(Value.Int g)) data in
  let dec = Dynamic.decrypt c (Dynamic.aggregate c rows) ~total_rows:30 in
  let expect_sum = Hashtbl.create 8 and expect_cnt = Hashtbl.create 8 in
  List.iter
    (fun (v, g) ->
      Hashtbl.replace expect_sum g (v + Option.value (Hashtbl.find_opt expect_sum g) ~default:0);
      Hashtbl.replace expect_cnt g (1 + Option.value (Hashtbl.find_opt expect_cnt g) ~default:0))
    data;
  List.iter
    (fun r ->
      let g = Value.as_int r.Dynamic.group in
      Alcotest.(check int) (Printf.sprintf "sum %d" g)
        (Option.value (Hashtbl.find_opt expect_sum g) ~default:0) r.Dynamic.sum;
      Alcotest.(check int) (Printf.sprintf "count %d" g)
        (Option.value (Hashtbl.find_opt expect_cnt g) ~default:0) r.Dynamic.count)
    dec

(* --- storage models (Tables 9/10, Figure 8) ------------------------------------ *)

let test_table10_paper_point () =
  (* §6.2 fixes l=4, t=3, k=2, r=1000, n=2; with B=2 and |D|=12 the
     ordering the paper reports holds — Seabed needs an excessive amount,
     SAGMA beats pre-computation for t ≥ 3 and |D| ≥ 10. *)
  let sagma = Storage.sagma_server ~l:4 ~t:3 ~k:2 ~r:1000 ~b:2 in
  let seabed = Storage.seabed_server ~l:4 ~t:3 ~k:2 ~r:1000 ~b:2 in
  let pre = Storage.precomputed_server ~l:4 ~t:3 ~k:2 ~n:2 ~d:12 in
  Alcotest.(check bool) (Printf.sprintf "seabed (%d) worst" seabed) true
    (seabed > sagma && seabed > pre);
  Alcotest.(check bool) (Printf.sprintf "sagma (%d) < pre-computed (%d)" sagma pre) true
    (sagma < pre)

let test_figure8a_crossover () =
  let rows = Storage.figure8a () in
  (* SAGMA beats the pre-computed scheme from t = 3 onward. *)
  List.iter
    (fun r ->
      if r.Storage.x >= 3 then
        Alcotest.(check bool)
          (Printf.sprintf "t=%d sagma<pre" r.Storage.x)
          true (r.Storage.sagma < r.Storage.precomputed))
    rows;
  (* Monotone growth in t for all three schemes. *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "monotone" true
        (a.Storage.sagma <= b.Storage.sagma && a.Storage.precomputed <= b.Storage.precomputed
         && a.Storage.seabed <= b.Storage.seabed);
      mono rest
    | _ -> ()
  in
  mono rows

let test_figure8b_crossover () =
  let rows = Storage.figure8b () in
  (* SAGMA's storage is independent of |D|; pre-computed grows and crosses
     over around |D| = 10. *)
  let sagma0 = (List.hd rows).Storage.sagma in
  List.iter (fun r -> Alcotest.(check int) "flat sagma" sagma0 r.Storage.sagma) rows;
  List.iter
    (fun r ->
      if r.Storage.x >= 10 then
        Alcotest.(check bool)
          (Printf.sprintf "D=%d sagma<pre" r.Storage.x)
          true (r.Storage.sagma < r.Storage.precomputed))
    rows

let test_client_costs () =
  Alcotest.(check int) "pre-computed client" 1 Storage.precomputed_client;
  Alcotest.(check int) "sagma client C=|D|^t" (12 * 12 * 12) (Storage.sagma_client ~t:3 ~d:12);
  Alcotest.(check bool) "seabed client rho*C" true
    (Storage.seabed_client ~rho:50 ~t:3 ~d:12 = 50 * Storage.sagma_client ~t:3 ~d:12)

let test_monomial_vs_naive_storage () =
  (* §4.1: reuse reduces the per-row monomial count for every l,t,B. *)
  List.iter
    (fun (l, t, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "l=%d t=%d B=%d" l t b)
        true
        (Storage.monomial_count ~l ~t ~b <= Storage.monomial_count_naive ~l ~t ~b))
    [ (2, 2, 2); (3, 3, 2); (4, 3, 3); (5, 4, 4) ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_comparison_table11 () =
  let r = Comparison.render () in
  Alcotest.(check bool) "mentions all five schemes" true
    (List.for_all
       (fun s -> contains ~needle:s r)
       [ "Bucketization"; "CryptDB"; "Seabed"; "SAGMA" ]);
  (* SAGMA is the only row with aggregation + grouping + proof +
     multi-attribute support. *)
  let full_rows =
    List.filter
      (fun row ->
        row.Comparison.aggregation && row.Comparison.grouping && row.Comparison.proof
        && row.Comparison.multiple_attributes)
      Comparison.rows
  in
  Alcotest.(check (list string)) "only SAGMA" [ "SAGMA" ]
    (List.map (fun r -> r.Comparison.name) full_rows)

let () =
  Alcotest.run "constructions"
    [ ( "static-3.1",
        [ Alcotest.test_case "figure 1 packing" `Quick test_static_full_domain_figure1;
          Alcotest.test_case "multi-ciphertext domain" `Quick test_static_full_domain_multi_ct;
          Alcotest.test_case "empty aggregate" `Quick test_static_empty_aggregate ] );
      ( "static-3.2",
        [ Alcotest.test_case "bucketized aggregation" `Quick test_static_bucketized;
          Alcotest.test_case "leaks only bucket" `Quick test_static_bucketized_leaks_only_bucket ] );
      ( "dynamic-3.3",
        [ Alcotest.test_case "table 3 shifts" `Quick test_dynamic_table3_shifts;
          Alcotest.test_case "aggregation" `Quick test_dynamic_aggregation;
          Alcotest.test_case "bucket size 4" `Slow test_dynamic_larger_bucket ] );
      ( "storage",
        [ Alcotest.test_case "table 10 paper point" `Quick test_table10_paper_point;
          Alcotest.test_case "figure 8a crossover" `Quick test_figure8a_crossover;
          Alcotest.test_case "figure 8b crossover" `Quick test_figure8b_crossover;
          Alcotest.test_case "client costs" `Quick test_client_costs;
          Alcotest.test_case "reuse beats naive" `Quick test_monomial_vs_naive_storage ] );
      ("comparison", [ Alcotest.test_case "table 11" `Quick test_comparison_table11 ]);
    ]

(* Tests for the homomorphic encryption substrates: BGN (both ciphertext
   levels, the single multiplication, BSGS decryption, CRT channels) and
   Paillier. *)

module Z = Sagma_bigint.Bigint
module Drbg = Sagma_crypto.Drbg
module Bgn = Sagma_bgn.Bgn
module Dlog = Sagma_bgn.Dlog
module Crt = Sagma_bgn.Crt_channels
module Paillier = Sagma_paillier.Paillier
module Curve = Sagma_pairing.Curve
module Fp2 = Sagma_pairing.Fp2

let drbg = Drbg.create "homomorphic-tests"

(* Small key so the whole suite stays fast; correctness is size-independent. *)
let kp = Bgn.keygen ~bits:64 drbg
let pk = kp.Bgn.pk

let z = Z.of_int

(* --- dlog --------------------------------------------------------------- *)

let test_dlog_int_group () =
  (* BSGS over plain modular integers as a sanity oracle. *)
  let p = z 1000003 in
  let ops =
    { Dlog.mul = (fun a b -> Z.mulm a b p);
      inv = (fun a -> Z.invm_exn a p);
      one = Z.one;
      serialize = Z.to_string }
  in
  let base = z 2 in
  let table = Dlog.make ops base ~max:100000 in
  List.iter
    (fun x ->
      let target = Z.powm base (z x) p in
      Alcotest.(check (option int)) (Printf.sprintf "dlog %d" x) (Some x)
        (Dlog.solve table target ~max:100000))
    [ 0; 1; 2; 77; 1000; 99999; 100000 ];
  (* Out-of-range exponent must not be found. *)
  let target = Z.powm base (z 100001) p in
  Alcotest.(check (option int)) "out of range" None (Dlog.solve table target ~max:100000)

(* --- BGN level 1 -------------------------------------------------------- *)

let test_bgn_enc_dec_level1 () =
  let table = Bgn.make_dec1_table kp ~max:1000 in
  List.iter
    (fun m ->
      let c = Bgn.enc1_int pk drbg m in
      Alcotest.(check (option int)) (Printf.sprintf "dec %d" m) (Some m)
        (Bgn.dec1 kp table ~max:1000 c))
    [ 0; 1; 2; 42; 999; 1000 ]

let test_bgn_additive () =
  let table = Bgn.make_dec1_table kp ~max:200 in
  let c1 = Bgn.enc1_int pk drbg 57 and c2 = Bgn.enc1_int pk drbg 99 in
  Alcotest.(check (option int)) "sum" (Some 156)
    (Bgn.dec1 kp table ~max:200 (Bgn.add1 pk c1 c2));
  Alcotest.(check (option int)) "scalar" (Some 171)
    (Bgn.dec1 kp table ~max:200 (Bgn.smul1 pk (z 3) c1));
  Alcotest.(check (option int)) "zero" (Some 0)
    (Bgn.dec1 kp table ~max:200 Bgn.zero1)

let test_bgn_semantic_randomness () =
  let c1 = Bgn.enc1_int pk drbg 5 and c2 = Bgn.enc1_int pk drbg 5 in
  Alcotest.(check bool) "fresh randomness" false (Curve.equal c1 c2);
  let r = Bgn.rerandomize1 pk drbg c1 in
  Alcotest.(check bool) "rerandomized differs" false (Curve.equal c1 r);
  Alcotest.(check (option int)) "rerandomized decrypts" (Some 5) (Bgn.dec1_once kp ~max:10 r)

(* --- BGN level 2 / multiplication --------------------------------------- *)

let test_bgn_multiplication () =
  let table2 = Bgn.make_dec2_table kp ~max:10000 in
  List.iter
    (fun (a, b) ->
      let ca = Bgn.enc1_int pk drbg a and cb = Bgn.enc1_int pk drbg b in
      let prod = Bgn.mul pk ca cb in
      Alcotest.(check (option int)) (Printf.sprintf "%d*%d" a b) (Some (a * b))
        (Bgn.dec2 kp table2 ~max:10000 prod))
    [ (0, 5); (1, 1); (3, 7); (99, 101) ]

let test_bgn_level2_additive () =
  let table2 = Bgn.make_dec2_table kp ~max:1000 in
  let ca = Bgn.enc1_int pk drbg 6 and cb = Bgn.enc1_int pk drbg 7 in
  let cc = Bgn.enc1_int pk drbg 10 and cd = Bgn.enc1_int pk drbg 3 in
  (* 6*7 + 10*3 = 72 *)
  let s = Bgn.add2 pk (Bgn.mul pk ca cb) (Bgn.mul pk cc cd) in
  Alcotest.(check (option int)) "sum of products" (Some 72)
    (Bgn.dec2 kp table2 ~max:1000 s);
  (* scalar on level 2: 3 * (6*7) = 126 *)
  Alcotest.(check (option int)) "scalar level2" (Some 126)
    (Bgn.dec2 kp table2 ~max:1000 (Bgn.smul2 pk (z 3) (Bgn.mul pk ca cb)));
  Alcotest.(check (option int)) "enc2 direct" (Some 55)
    (Bgn.dec2 kp table2 ~max:1000 (Bgn.enc2 pk drbg (z 55)));
  let r = Bgn.rerandomize2 pk drbg (Bgn.mul pk ca cb) in
  Alcotest.(check (option int)) "rerandomize2" (Some 42) (Bgn.dec2 kp table2 ~max:1000 r)

let test_bgn_mul_many () =
  let table2 = Bgn.make_dec2_table kp ~max:1000 in
  (* The batched product-of-pairings path must agree with folding mul
     results through add2: 6*7 + 10*3 + 4*5 = 92. *)
  let pairs =
    List.map
      (fun (a, b) -> (Bgn.enc1_int pk drbg a, Bgn.enc1_int pk drbg b))
      [ (6, 7); (10, 3); (4, 5) ]
  in
  Alcotest.(check (option int)) "mul_many sum of products" (Some 92)
    (Bgn.dec2 kp table2 ~max:1000 (Bgn.mul_many pk pairs));
  let folded =
    List.fold_left (fun acc (a, b) -> Bgn.add2 pk acc (Bgn.mul pk a b)) Bgn.zero2 pairs
  in
  Alcotest.(check (option int)) "matches termwise fold" (Some 92)
    (Bgn.dec2 kp table2 ~max:1000 folded);
  Alcotest.(check (option int)) "empty batch is zero2" (Some 0)
    (Bgn.dec2 kp table2 ~max:1000 (Bgn.mul_many pk []));
  (* Precomputed left arguments: one cache per distinct ciphertext,
     reused across two different batches. *)
  let ca = Bgn.enc1_int pk drbg 11 and cb = Bgn.enc1_int pk drbg 2 in
  let pre = Bgn.precompute1 pk ca in
  Alcotest.(check (option int)) "mul_many_pre" (Some 22)
    (Bgn.dec2 kp table2 ~max:1000 (Bgn.mul_many_pre pk [ (pre, cb) ]));
  Alcotest.(check (option int)) "precomp reused" (Some 33)
    (Bgn.dec2 kp table2 ~max:1000 (Bgn.mul_many_pre pk [ (pre, Bgn.enc1_int pk drbg 3) ]))

let test_bgn_mul_bilinearity_of_blinding () =
  (* The blinding term must vanish: Enc(m1)·Enc(m2) decrypts to m1·m2
     regardless of the randomness used. Run several times. *)
  let table2 = Bgn.make_dec2_table kp ~max:100 in
  for _ = 1 to 5 do
    let ca = Bgn.enc1_int pk drbg 8 and cb = Bgn.enc1_int pk drbg 9 in
    Alcotest.(check (option int)) "product" (Some 72)
      (Bgn.dec2 kp table2 ~max:100 (Bgn.mul pk ca cb))
  done

let test_bgn_table_reuse () =
  let table = Bgn.make_dec1_table kp ~max:500 in
  for m = 0 to 20 do
    Alcotest.(check (option int)) "reuse" (Some (m * 20))
      (Bgn.dec1 kp table ~max:500 (Bgn.enc1_int pk drbg (m * 20)))
  done

(* --- CRT channels ------------------------------------------------------- *)

let test_crt_choose () =
  let ch = Crt.choose ~channel_bits:8 ~capacity_bits:40 in
  Alcotest.(check bool) "enough capacity" true (Crt.capacity_bits ch >= 40);
  Alcotest.(check bool) "several channels" true (Crt.channels ch >= 5)

let test_crt_roundtrip () =
  let ch = Crt.choose ~channel_bits:10 ~capacity_bits:48 in
  List.iter
    (fun v ->
      let v = Z.of_string v in
      let enc = Crt.encode ch v in
      Alcotest.(check string) ("roundtrip " ^ Z.to_string v) (Z.to_string v)
        (Z.to_string (Crt.decode ch enc)))
    [ "0"; "1"; "123456789"; "281474976710655" (* 2^48 - 1 *) ]

let test_crt_additive () =
  (* Channel-wise sums decode to the true sum (values may exceed moduli). *)
  let ch = Crt.choose ~channel_bits:8 ~capacity_bits:32 in
  let vals = [ 123456; 789012; 555555; 1000000 ] in
  let sums = Array.make (Crt.channels ch) 0 in
  List.iter
    (fun v ->
      let e = Crt.encode_int ch v in
      Array.iteri (fun i r -> sums.(i) <- sums.(i) + r) e)
    vals;
  Alcotest.(check string) "sum" (string_of_int (List.fold_left ( + ) 0 vals))
    (Z.to_string (Crt.decode ch sums))

let test_crt_rejects_noncoprime () =
  Alcotest.check_raises "non coprime" (Invalid_argument "Crt_channels.make: moduli not coprime")
    (fun () -> ignore (Crt.make [| 6; 9 |]))

let test_crt_with_bgn () =
  (* End-to-end: big value through BGN via channels. *)
  let ch = Crt.choose ~channel_bits:8 ~capacity_bits:34 in
  let v = Z.of_string "12345678901" in
  let residues = Crt.encode ch v in
  let cts = Array.map (fun r -> Bgn.enc1_int pk drbg r) residues in
  let table = Bgn.make_dec1_table kp ~max:300 in
  let dec = Array.map (fun c -> Option.get (Bgn.dec1 kp table ~max:300 c)) cts in
  Alcotest.(check string) "via bgn" (Z.to_string v) (Z.to_string (Crt.decode ch dec))

(* --- Paillier ----------------------------------------------------------- *)

let pkp = Paillier.keygen ~bits:128 drbg
let ppk = pkp.Paillier.pk

let test_paillier_roundtrip () =
  List.iter
    (fun m ->
      let m = Z.of_string m in
      let c = Paillier.encrypt ppk drbg m in
      Alcotest.(check string) ("dec " ^ Z.to_string m) (Z.to_string m)
        (Z.to_string (Paillier.decrypt pkp c)))
    [ "0"; "1"; "42"; "123456789012345678901234567890123456" ]

let test_paillier_additive () =
  let a = Z.of_string "111111111111111111" and b = Z.of_string "222222222222222222" in
  let ca = Paillier.encrypt ppk drbg a and cb = Paillier.encrypt ppk drbg b in
  Alcotest.(check string) "sum" (Z.to_string (Z.add a b))
    (Z.to_string (Paillier.decrypt pkp (Paillier.add ppk ca cb)));
  Alcotest.(check string) "scalar" (Z.to_string (Z.mul_int a 7))
    (Z.to_string (Paillier.decrypt pkp (Paillier.smul ppk (z 7) ca)))

let test_paillier_packed_blocks () =
  (* The §3.1 packing pattern: values shifted into 32-bit blocks, summed
     homomorphically, unpacked after decryption. *)
  let block v idx = Z.shift_left (z v) (32 * idx) in
  let rows = [ (1000, 1); (5000, 0); (1500, 0); (3000, 1); (2000, 1) ] in
  let cts = List.map (fun (v, g) -> Paillier.encrypt ppk drbg (block v g)) rows in
  let total = List.fold_left (Paillier.add ppk) (List.hd cts) (List.tl cts) in
  let packed = Paillier.decrypt pkp total in
  let block0 = Z.to_int_exn (Z.erem packed (Z.shift_left Z.one 32)) in
  let block1 = Z.to_int_exn (Z.erem (Z.shift_right packed 32) (Z.shift_left Z.one 32)) in
  Alcotest.(check int) "female total" 6500 block0;
  Alcotest.(check int) "male total" 6000 block1

let test_paillier_randomized () =
  let c1 = Paillier.encrypt ppk drbg (z 9) and c2 = Paillier.encrypt ppk drbg (z 9) in
  Alcotest.(check bool) "semantic" false (Z.equal c1 c2)

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let props =
  [ qprop "bgn add1 homomorphic" 20 QCheck.(pair (int_range 0 100) (int_range 0 100))
      (fun (a, b) ->
        let c = Bgn.add1 pk (Bgn.enc1_int pk drbg a) (Bgn.enc1_int pk drbg b) in
        Bgn.dec1_once kp ~max:200 c = Some (a + b));
    qprop "bgn mul homomorphic" 10 QCheck.(pair (int_range 0 30) (int_range 0 30))
      (fun (a, b) ->
        let c = Bgn.mul pk (Bgn.enc1_int pk drbg a) (Bgn.enc1_int pk drbg b) in
        Bgn.dec2_once kp ~max:900 c = Some (a * b));
    qprop "paillier roundtrip" 20 QCheck.(int_range 0 1000000)
      (fun m ->
        Z.to_int_exn (Paillier.decrypt pkp (Paillier.encrypt_int ppk drbg m)) = m);
    qprop "crt roundtrip" 50 QCheck.(int_range 0 1000000000)
      (fun v ->
        let ch = Crt.choose ~channel_bits:8 ~capacity_bits:32 in
        Z.to_int_exn (Crt.decode ch (Crt.encode_int ch v)) = v);
  ]

let () =
  Alcotest.run "homomorphic"
    [ ("dlog", [ Alcotest.test_case "bsgs int group" `Quick test_dlog_int_group ]);
      ( "bgn-level1",
        [ Alcotest.test_case "enc/dec" `Quick test_bgn_enc_dec_level1;
          Alcotest.test_case "additive" `Quick test_bgn_additive;
          Alcotest.test_case "semantic randomness" `Quick test_bgn_semantic_randomness;
          Alcotest.test_case "table reuse" `Quick test_bgn_table_reuse ] );
      ( "bgn-level2",
        [ Alcotest.test_case "multiplication" `Quick test_bgn_multiplication;
          Alcotest.test_case "level2 additive" `Quick test_bgn_level2_additive;
          Alcotest.test_case "mul_many" `Quick test_bgn_mul_many;
          Alcotest.test_case "blinding vanishes" `Quick test_bgn_mul_bilinearity_of_blinding ] );
      ( "crt-channels",
        [ Alcotest.test_case "choose" `Quick test_crt_choose;
          Alcotest.test_case "roundtrip" `Quick test_crt_roundtrip;
          Alcotest.test_case "additive" `Quick test_crt_additive;
          Alcotest.test_case "rejects non-coprime" `Quick test_crt_rejects_noncoprime;
          Alcotest.test_case "with bgn" `Quick test_crt_with_bgn ] );
      ( "paillier",
        [ Alcotest.test_case "roundtrip" `Quick test_paillier_roundtrip;
          Alcotest.test_case "additive" `Quick test_paillier_additive;
          Alcotest.test_case "packed blocks (§3.1)" `Quick test_paillier_packed_blocks;
          Alcotest.test_case "randomized" `Quick test_paillier_randomized ] );
      ("properties", props);
    ]

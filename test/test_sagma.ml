(* End-to-end tests of the full SAGMA scheme (Algorithms 1–6) against the
   plaintext executor oracle, including the paper's worked example
   (Tables 1–7, Listings 1–2), filters, dummy rows and value splits. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Drbg = Sagma_crypto.Drbg
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

(* --- the paper's example table (Table 1) --------------------------------- *)

let example_schema : Table.schema =
  [ { Table.name = "ID"; ty = Value.TInt };
    { Table.name = "Salary"; ty = Value.TInt };
    { Table.name = "Gender"; ty = Value.TStr };
    { Table.name = "Name"; ty = Value.TStr };
    { Table.name = "Department"; ty = Value.TStr } ]

let example_table =
  Table.of_rows example_schema
    [ [| vi 1; vi 1000; str "male"; str "Henry"; str "Sales" |];
      [| vi 2; vi 5000; str "female"; str "Jessica"; str "Sales" |];
      [| vi 3; vi 1500; str "female"; str "Alice"; str "Finance" |];
      [| vi 4; vi 3000; str "male"; str "Bob"; str "Sales" |];
      [| vi 5; vi 2000; str "male"; str "Paul"; str "Facility" |] ]

let gender_domain = [ str "male"; str "female" ]
let department_domain = [ str "Sales"; str "Finance"; str "Facility" ]

(* Mapping strategy pinning the paper's §3.4 example: f1(male)=0,
   f1(female)=1; f2(Sales)=0, f2(Finance)=1, f2(Facility)=2; B=2. *)
let paper_mappings = function
  | "Gender" -> Mapping.Explicit gender_domain
  | "Department" -> Mapping.Explicit department_domain
  | _ -> Mapping.Prf_random

let example_config =
  Config.make ~bucket_size:2 ~max_group_attrs:2 ~filter_columns:[ "Department"; "Name" ]
    ~value_columns:[ "Salary" ] ~group_columns:[ "Gender"; "Department" ] ()

let example_client =
  Scheme.setup ~mapping_strategy:paper_mappings example_config
    ~domains:[ ("Gender", gender_domain); ("Department", department_domain) ]
    (Drbg.create "sagma-tests")

let example_enc = Scheme.encrypt_table example_client example_table

let results_to_list rs =
  List.map (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count)) rs

let oracle_to_list rs =
  List.map (fun r -> (List.map Value.to_string r.Executor.group, r.Executor.sum, r.Executor.count)) rs

let check_matches_oracle name table enc client q =
  let encrypted = results_to_list (Scheme.query client enc q) in
  let plain = oracle_to_list (Executor.run table q) in
  Alcotest.(check (list (triple (list string) int int))) name plain encrypted

(* --- the worked example ---------------------------------------------------- *)

let test_paper_bucket_index () =
  (* Table 5: Gen1 = {1..5}, Dept1 = {1,2,3,4}, Dept2 = {5} (row ids are
     0-based here). *)
  let m_gender = example_client.Scheme.mappings.(0) in
  let m_dept = example_client.Scheme.mappings.(1) in
  Alcotest.(check int) "one gender bucket" 1 (Mapping.num_buckets m_gender);
  Alcotest.(check int) "two dept buckets" 2 (Mapping.num_buckets m_dept);
  Alcotest.(check int) "Sales in Dept1" 0 (Mapping.bucket m_dept (str "Sales"));
  Alcotest.(check int) "Finance in Dept1" 0 (Mapping.bucket m_dept (str "Finance"));
  Alcotest.(check int) "Facility in Dept2" 1 (Mapping.bucket m_dept (str "Facility"))

let test_paper_table7 () =
  (* Listing 2: SELECT SUM(Salary) GROUP BY Gender, Department → Table 7. *)
  let q = Query.make ~group_by:[ "Gender"; "Department" ] (Query.Sum "Salary") in
  Alcotest.(check (list (triple (list string) int int)))
    "Table 7"
    [ ([ "female"; "Finance" ], 1500, 1);
      ([ "female"; "Sales" ], 5000, 1);
      ([ "male"; "Facility" ], 2000, 1);
      ([ "male"; "Sales" ], 4000, 2) ]
    (results_to_list (Scheme.query example_client example_enc q))

let test_paper_listing1_with_filter () =
  (* Listing 1 adds WHERE Department = 'Sales' → Table 2. *)
  let q =
    Query.make
      ~where:[ ("Department", str "Sales") ]
      ~group_by:[ "Gender"; "Department" ]
      (Query.Sum "Salary")
  in
  Alcotest.(check (list (triple (list string) int int)))
    "Table 2"
    [ ([ "female"; "Sales" ], 5000, 1); ([ "male"; "Sales" ], 4000, 2) ]
    (results_to_list (Scheme.query example_client example_enc q))

let test_single_attribute_queries () =
  check_matches_oracle "by gender" example_table example_enc example_client
    (Query.make ~group_by:[ "Gender" ] (Query.Sum "Salary"));
  check_matches_oracle "by department" example_table example_enc example_client
    (Query.make ~group_by:[ "Department" ] (Query.Sum "Salary"))

let test_count_query () =
  check_matches_oracle "count by dept" example_table example_enc example_client
    (Query.make ~group_by:[ "Department" ] Query.Count);
  check_matches_oracle "count by both" example_table example_enc example_client
    (Query.make ~group_by:[ "Gender"; "Department" ] Query.Count)

let test_avg_query () =
  let q = Query.make ~group_by:[ "Gender" ] (Query.Avg "Salary") in
  let rs = Scheme.query example_client example_enc q in
  let avgs = List.map (fun r -> Scheme.aggregate_value q r) rs in
  Alcotest.(check (list (float 0.001))) "avg salary" [ 3250.; 2000. ] avgs

let test_filter_by_name () =
  check_matches_oracle "name filter" example_table example_enc example_client
    (Query.make ~where:[ ("Name", str "Paul") ] ~group_by:[ "Gender" ] (Query.Sum "Salary"));
  check_matches_oracle "empty filter result" example_table example_enc example_client
    (Query.make ~where:[ ("Name", str "Nobody") ] ~group_by:[ "Gender" ] (Query.Sum "Salary"))

let test_conjunctive_filter () =
  check_matches_oracle "two filters" example_table example_enc example_client
    (Query.make
       ~where:[ ("Department", str "Sales"); ("Name", str "Bob") ]
       ~group_by:[ "Gender" ] (Query.Sum "Salary"))

let test_threshold_enforced () =
  (* t = 2 but querying… there are only 2 group columns; build a config
     with t = 1 instead. *)
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "Salary" ]
      ~group_columns:[ "Gender"; "Department" ] ()
  in
  let client =
    Scheme.setup ~mapping_strategy:paper_mappings config
      ~domains:[ ("Gender", gender_domain); ("Department", department_domain) ]
      (Drbg.create "threshold-test")
  in
  Alcotest.check_raises "too many attrs"
    (Invalid_argument "Scheme.token: 2 grouping attributes exceed threshold t=1") (fun () ->
      ignore (Scheme.token client (Query.make ~group_by:[ "Gender"; "Department" ] Query.Count)))

let test_non_filter_column_rejected () =
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "Salary" ]
      ~group_columns:[ "Gender" ] ()
  in
  let client =
    Scheme.setup ~mapping_strategy:paper_mappings config
      ~domains:[ ("Gender", gender_domain) ] (Drbg.create "filter-test")
  in
  Alcotest.check_raises "not a filter column"
    (Invalid_argument "Scheme.token: \"Department\" is not a filter column") (fun () ->
      ignore
        (Scheme.token client
           (Query.make ~where:[ ("Department", str "Sales") ] ~group_by:[ "Gender" ] Query.Count)))

(* --- randomized oracle comparison ------------------------------------------ *)

let random_test_table seed rows =
  let d = Drbg.create seed in
  let schema =
    [ { Table.name = "v"; ty = Value.TInt };
      { Table.name = "g1"; ty = Value.TInt };
      { Table.name = "g2"; ty = Value.TStr } ]
  in
  let g2vals = [| "x"; "y"; "z"; "w"; "q" |] in
  Table.of_rows schema
    (List.init rows (fun _ ->
         [| vi (Drbg.int_below d 1000);
            vi (Drbg.int_below d 7);
            str g2vals.(Drbg.int_below d 5) |]))

let test_random_tables_match_oracle () =
  List.iter
    (fun (seed, rows, bucket_size) ->
      let table = random_test_table seed rows in
      let config =
        Config.make ~bucket_size ~max_group_attrs:2 ~filter_columns:[ "g2" ]
          ~value_columns:[ "v" ] ~group_columns:[ "g1"; "g2" ] ()
      in
      let client =
        Scheme.setup config
          ~domains:
            [ ("g1", List.init 7 (fun i -> vi i));
              ("g2", [ str "x"; str "y"; str "z"; str "w"; str "q" ]) ]
          (Drbg.create ("client-" ^ seed))
      in
      let enc = Scheme.encrypt_table client table in
      List.iter
        (fun q -> check_matches_oracle (seed ^ ": " ^ Query.to_sql q) table enc client q)
        [ Query.make ~group_by:[ "g1" ] (Query.Sum "v");
          Query.make ~group_by:[ "g2" ] (Query.Sum "v");
          Query.make ~group_by:[ "g1"; "g2" ] (Query.Sum "v");
          Query.make ~group_by:[ "g1"; "g2" ] Query.Count;
          Query.make ~where:[ ("g2", str "x") ] ~group_by:[ "g1" ] (Query.Sum "v") ])
    [ ("rnd-1", 30, 2); ("rnd-2", 25, 3); ("rnd-3", 20, 4) ]

let test_multiple_value_columns () =
  let schema =
    [ { Table.name = "price"; ty = Value.TInt };
      { Table.name = "qty"; ty = Value.TInt };
      { Table.name = "region"; ty = Value.TStr } ]
  in
  let d = Drbg.create "multi-value" in
  let regions = [| "eu"; "us"; "apac" |] in
  let table =
    Table.of_rows schema
      (List.init 20 (fun _ ->
           [| vi (Drbg.int_below d 500); vi (Drbg.int_below d 50);
              str regions.(Drbg.int_below d 3) |]))
  in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "price"; "qty" ]
      ~group_columns:[ "region" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("region", [ str "eu"; str "us"; str "apac" ]) ]
      (Drbg.create "client-mv")
  in
  let enc = Scheme.encrypt_table client table in
  check_matches_oracle "sum price" table enc client
    (Query.make ~group_by:[ "region" ] (Query.Sum "price"));
  check_matches_oracle "sum qty" table enc client
    (Query.make ~group_by:[ "region" ] (Query.Sum "qty"))

(* --- dummy rows ------------------------------------------------------------- *)

let test_dummy_rows_preserve_results () =
  (* Pad Department buckets; results must not change, and counting must
     switch to the paired (dummy-safe) mode. *)
  let hist_g = Bucketing.histogram example_table "Gender" in
  let hist_d = Bucketing.histogram example_table "Department" in
  let dummies =
    Bucketing.dummy_rows
      [| example_client.Scheme.mappings.(0); example_client.Scheme.mappings.(1) |]
      [| hist_g; hist_d |]
  in
  Alcotest.(check bool) "some dummies" true (List.length dummies > 0);
  let enc = Scheme.encrypt_table ~dummy_groups:dummies example_client example_table in
  Alcotest.(check bool) "paired mode" true (enc.Scheme.count_mode = Scheme.Count_paired);
  List.iter
    (fun q -> check_matches_oracle ("dummies: " ^ Query.to_sql q) example_table enc example_client q)
    [ Query.make ~group_by:[ "Gender"; "Department" ] (Query.Sum "Salary");
      Query.make ~group_by:[ "Department" ] Query.Count;
      Query.make ~group_by:[ "Gender" ] (Query.Sum "Salary") ]

let test_dummy_rows_flatten_leakage () =
  (* After padding, all Department buckets must expose the same access
     pattern size. *)
  let hist_d = Bucketing.histogram example_table "Department" in
  let m_d = example_client.Scheme.mappings.(1) in
  let plan = Bucketing.dummy_plan_for_column m_d hist_d in
  let freqs = Bucketing.bucket_frequencies m_d (hist_d @ plan) in
  Alcotest.(check bool) "flat" true (Array.for_all (fun f -> f = freqs.(0)) freqs)

(* --- attribute value splits -------------------------------------------------- *)

let test_value_split_roundtrip () =
  let table' =
    Bucketing.split_column example_table ~column:"Department" ~value:(str "Sales") ~parts:2
  in
  let dept_domain' =
    Bucketing.split_domain department_domain ~value:(str "Sales") ~parts:2
  in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "Salary" ]
      ~group_columns:[ "Gender"; "Department" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("Gender", gender_domain); ("Department", dept_domain') ]
      (Drbg.create "split-test")
  in
  let enc = Scheme.encrypt_table client table' in
  let q = Query.make ~group_by:[ "Gender"; "Department" ] (Query.Sum "Salary") in
  let raw = Scheme.query client enc q in
  let merged =
    Bucketing.merge_split_results raw ~position:1 ~value:(str "Sales") ~parts:2
  in
  (* After merging we must recover the original Table 7. *)
  Alcotest.(check (list (triple (list string) int int)))
    "merged = Table 7"
    [ ([ "female"; "Finance" ], 1500, 1);
      ([ "female"; "Sales" ], 5000, 1);
      ([ "male"; "Facility" ], 2000, 1);
      ([ "male"; "Sales" ], 4000, 2) ]
    (results_to_list merged)

(* --- range filtering (dyadic SSE cover) ----------------------------------------- *)

let range_schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt };
    { Table.name = "g"; ty = Value.TStr };
    { Table.name = "ts"; ty = Value.TInt } ]

let range_table =
  let d = Drbg.create "range-data" in
  Table.of_rows range_schema
    (List.init 30 (fun _ ->
         [| vi (Drbg.int_below d 100);
            str [| "a"; "b"; "c" |].(Drbg.int_below d 3);
            vi (Drbg.int_below d 256) |]))

let range_client =
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~range_filter_columns:[ "ts" ] ~range_bits:8
      ~value_columns:[ "v" ] ~group_columns:[ "g" ] ()
  in
  Scheme.setup config
    ~domains:[ ("g", [ str "a"; str "b"; str "c" ]) ]
    (Drbg.create "range-client")

let range_enc = Scheme.encrypt_table range_client range_table

let test_range_filter_matches_oracle () =
  List.iter
    (fun (lo, hi) ->
      let q =
        Query.make ~ranges:[ ("ts", lo, hi) ] ~group_by:[ "g" ] (Query.Sum "v")
      in
      check_matches_oracle
        (Printf.sprintf "BETWEEN %d AND %d" lo hi)
        range_table range_enc range_client q)
    [ (0, 255); (100, 200); (17, 17); (200, 255); (250, 255) ]

let test_range_filter_empty_result () =
  (* A range below every stored timestamp: the cover exists but matches
     nothing (stored values are < 256 and the range is valid-but-vacant
     only if no row hits it; force with an impossible-but-valid range
     after checking the data). *)
  let q = Query.make ~ranges:[ ("ts", 0, 255) ] ~group_by:[ "g" ] Query.Count in
  let all = Scheme.query range_client range_enc q in
  let total = List.fold_left (fun acc r -> acc + r.Scheme.count) 0 all in
  Alcotest.(check int) "full range covers all rows" 30 total

let test_range_with_sql () =
  (* Parse a SQL BETWEEN query and run it over the encrypted table. *)
  let q = Sagma_db.Sql.parse_query "SELECT SUM(v), g FROM t WHERE ts BETWEEN 50 AND 150 GROUP BY g" in
  check_matches_oracle "sql range" range_table range_enc range_client q

let test_range_column_validation () =
  Alcotest.check_raises "not a range column"
    (Invalid_argument "Scheme.token: \"v\" is not a range filter column") (fun () ->
      ignore
        (Scheme.token range_client
           (Query.make ~ranges:[ ("v", 0, 10) ] ~group_by:[ "g" ] Query.Count)))

let test_range_append () =
  let enc =
    Scheme.append_row ~range_values:[ ("ts", 99) ] range_client range_enc ~values:[| 1000 |]
      ~groups:[| str "a" |] ~filters:[]
  in
  let q = Query.make ~ranges:[ ("ts", 99, 99) ] ~group_by:[ "g" ] (Query.Sum "v") in
  let rs = Scheme.query range_client enc q in
  (* The appended row must be found by a point-range query on ts = 99. *)
  let appended = List.find_opt (fun r -> r.Scheme.group = [ str "a" ] && r.Scheme.sum >= 1000) rs in
  Alcotest.(check bool) "appended row rangeable" true (appended <> None)

(* --- joint bucket index (§3.4 Boolean-SSE alternative) ------------------------- *)

let test_joint_index_matches_per_attribute () =
  let table = random_test_table "joint" 30 in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~filter_columns:[ "g2" ]
      ~value_columns:[ "v" ] ~group_columns:[ "g1"; "g2" ] ()
  in
  let domains =
    [ ("g1", List.init 7 (fun i -> vi i)); ("g2", [ str "x"; str "y"; str "z"; str "w"; str "q" ]) ]
  in
  let client = Scheme.setup config ~domains (Drbg.create "joint-client") in
  let per = Scheme.encrypt_table ~index_mode:Scheme.Per_attribute client table in
  let joint = Scheme.encrypt_table ~index_mode:Scheme.Joint client table in
  List.iter
    (fun q ->
      Alcotest.(check (list (triple (list string) int int)))
        ("joint = per-attribute: " ^ Query.to_sql q)
        (results_to_list (Scheme.query client per q))
        (results_to_list (Scheme.query client joint q)))
    [ Query.make ~group_by:[ "g1" ] (Query.Sum "v");
      Query.make ~group_by:[ "g1"; "g2" ] (Query.Sum "v");
      Query.make ~group_by:[ "g2"; "g1" ] Query.Count;  (* query order ≠ storage order *)
      Query.make ~where:[ ("g2", str "x") ] ~group_by:[ "g1" ] (Query.Sum "v") ]

let test_joint_index_hides_individual_buckets () =
  (* In joint mode, a 2-attribute query's observations are per joint
     bucket; the per-attribute keywords are never queried, so their
     access patterns are not part of the trace. *)
  let table = random_test_table "joint-leak" 24 in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "v" ]
      ~group_columns:[ "g1"; "g2" ] ()
  in
  let domains =
    [ ("g1", List.init 7 (fun i -> vi i)); ("g2", [ str "x"; str "y"; str "z"; str "w"; str "q" ]) ]
  in
  let client = Scheme.setup config ~domains (Drbg.create "joint-leak-client") in
  let joint = Scheme.encrypt_table ~index_mode:Scheme.Joint client table in
  let q = Query.make ~group_by:[ "g1"; "g2" ] Query.Count in
  let tok = Scheme.token ~index_mode:Scheme.Joint client q in
  let leak = Sagma.Leakage.profile joint [ tok ] in
  let ql = List.hd leak.Sagma.Leakage.queries in
  (* Observations = s_1 × s_2 joint buckets (4 × 3 = 12). *)
  Alcotest.(check int) "joint observations" 12 (List.length ql.Sagma.Leakage.observations);
  (* Every queried keyword is a joint one: its access pattern sizes
     partition the rows, and no single-attribute pattern is derivable
     without summing — structurally the per-attribute keywords are absent
     from the index altogether. *)
  let per_attr_tok = Scheme.token ~index_mode:Scheme.Per_attribute client q in
  (match per_attr_tok.Scheme.source with
   | Scheme.Per_attribute_tokens per ->
     Array.iter
       (Array.iter (fun t ->
            Alcotest.(check (list int)) "per-attribute keywords unindexed" []
              (Sagma_sse.Sse.search joint.Scheme.index t)))
       per
   | _ -> Alcotest.fail "expected per-attribute tokens")

let test_joint_index_append () =
  let table = random_test_table "joint-append" 10 in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "v" ]
      ~group_columns:[ "g1"; "g2" ] ()
  in
  let domains =
    [ ("g1", List.init 7 (fun i -> vi i)); ("g2", [ str "x"; str "y"; str "z"; str "w"; str "q" ]) ]
  in
  let client = Scheme.setup config ~domains (Drbg.create "joint-append-client") in
  let joint = Scheme.encrypt_table ~index_mode:Scheme.Joint client table in
  let joint = Scheme.append_row client joint ~values:[| 500 |] ~groups:[| vi 0; str "x" |] ~filters:[] in
  let q = Query.make ~group_by:[ "g1"; "g2" ] (Query.Sum "v") in
  let with_append = results_to_list (Scheme.query client joint q) in
  (* Oracle: plaintext table plus the appended row. *)
  let table' =
    Sagma_db.Table.of_rows (Sagma_db.Table.schema table)
      (Sagma_db.Table.rows table @ [ [| vi 500; vi 0; str "x" |] ])
  in
  Alcotest.(check (list (triple (list string) int int))) "append in joint mode"
    (oracle_to_list (Executor.run table' q))
    with_append

(* --- OXT conjunctive index (§3.2/§3.4, Cash et al. [6]) ------------------------- *)

let oxt_client_and_table () =
  let table = random_test_table "oxt-mode" 25 in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~filter_columns:[ "g2" ]
      ~value_columns:[ "v" ] ~group_columns:[ "g1"; "g2" ] ()
  in
  let domains =
    [ ("g1", List.init 7 (fun i -> vi i)); ("g2", [ str "x"; str "y"; str "z"; str "w"; str "q" ]) ]
  in
  let client = Scheme.setup config ~domains (Drbg.create "oxt-mode-client") in
  (client, table)

let test_oxt_mode_matches_oracle () =
  let client, table = oxt_client_and_table () in
  let enc = Scheme.encrypt_table ~index_mode:Scheme.Oxt_conjunctive client table in
  Alcotest.(check bool) "has oxt index" true (enc.Scheme.oxt_index <> None);
  List.iter
    (fun q -> check_matches_oracle ("oxt: " ^ Query.to_sql q) table enc client q)
    [ Query.make ~group_by:[ "g1" ] (Query.Sum "v");
      Query.make ~group_by:[ "g1"; "g2" ] (Query.Sum "v");
      Query.make ~group_by:[ "g2"; "g1" ] Query.Count;
      Query.make ~where:[ ("g2", str "x") ] ~group_by:[ "g1" ] (Query.Sum "v") ]

let test_oxt_mode_storage_is_linear () =
  (* Per row: l TSet entries + l XSet tags, vs Σ C(l,i) Π_bas postings in
     Joint mode. *)
  let client, table = oxt_client_and_table () in
  let enc = Scheme.encrypt_table ~index_mode:Scheme.Oxt_conjunctive client table in
  let oxt = Option.get enc.Scheme.oxt_index in
  let rows = Array.length enc.Scheme.rows in
  Alcotest.(check int) "tset = l * rows" (2 * rows) (Sagma_sse.Oxt.tset_size oxt);
  (* The pi-bas index holds only the filter keywords. *)
  Alcotest.(check int) "pi-bas holds filters only" rows (Sagma_sse.Sse.size enc.Scheme.index)

let test_oxt_mode_append () =
  let client, table = oxt_client_and_table () in
  let enc = Scheme.encrypt_table ~index_mode:Scheme.Oxt_conjunctive client table in
  let enc =
    Scheme.append_row client enc ~values:[| 777 |] ~groups:[| vi 3; str "y" |]
      ~filters:[ ("g2", str "y") ]
  in
  let q = Query.make ~group_by:[ "g1"; "g2" ] (Query.Sum "v") in
  let table' =
    Sagma_db.Table.of_rows (Sagma_db.Table.schema table)
      (Sagma_db.Table.rows table @ [ [| vi 777; vi 3; str "y" |] ])
  in
  Alcotest.(check (list (triple (list string) int int))) "append in oxt mode"
    (oracle_to_list (Executor.run table' q))
    (results_to_list (Scheme.query client enc q))

let test_oxt_mode_remote_append_rejected () =
  let client, _ = oxt_client_and_table () in
  Alcotest.(check bool) "payload rejected" true
    (try
       ignore
         (Scheme.append_payload ~index_mode:Scheme.Oxt_conjunctive client ~values:[| 1 |]
            ~groups:[| vi 0; str "x" |] ~filters:[]);
       false
     with Invalid_argument _ -> true)

let test_oxt_mode_token_needs_rows () =
  let client, table = oxt_client_and_table () in
  ignore (Scheme.encrypt_table ~index_mode:Scheme.Oxt_conjunctive client table);
  Alcotest.check_raises "oxt_rows required"
    (Invalid_argument "Scheme.token: OXT mode needs ~oxt_rows (the table's row count)")
    (fun () ->
      ignore
        (Scheme.token ~index_mode:Scheme.Oxt_conjunctive client
           (Query.make ~group_by:[ "g1" ] Query.Count)))

(* --- parallel aggregation ------------------------------------------------------ *)

let test_parallel_aggregation_equivalent () =
  (* Multi-domain aggregation must produce aggregates that decrypt to the
     same results as the sequential path (ciphertexts differ — addition
     order changes blinding — but plaintexts must not). *)
  let table = random_test_table "parallel" 40 in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "v" ]
      ~group_columns:[ "g1"; "g2" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("g1", List.init 7 (fun i -> vi i));
          ("g2", [ str "x"; str "y"; str "z"; str "w"; str "q" ]) ]
      (Drbg.create "parallel-client")
  in
  let enc = Scheme.encrypt_table client table in
  let q = Query.make ~group_by:[ "g1"; "g2" ] (Query.Sum "v") in
  let tok = Scheme.token client q in
  let seq = Scheme.aggregate ~domains:1 enc tok in
  let par = Scheme.aggregate ~domains:4 enc tok in
  let dec agg =
    List.map
      (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
      (Scheme.decrypt client tok agg ~total_rows:40)
  in
  Alcotest.(check (list (triple (list string) int int))) "parallel = sequential" (dec seq) (dec par)

(* --- database updates (append_row) ------------------------------------------- *)

let test_append_row () =
  (* Start from the paper example, append Eve (4000, female, Finance) and
     re-run Listing 2: the new row must land in the right group, through
     the updated SSE index. *)
  let enc = Scheme.encrypt_table example_client example_table in
  let enc =
    Scheme.append_row example_client enc ~values:[| 4000 |]
      ~groups:[| str "female"; str "Finance" |]
      ~filters:[ ("Department", str "Finance"); ("Name", str "Eve") ]
  in
  let q = Query.make ~group_by:[ "Gender"; "Department" ] (Query.Sum "Salary") in
  Alcotest.(check (list (triple (list string) int int)))
    "after append"
    [ ([ "female"; "Finance" ], 5500, 2);
      ([ "female"; "Sales" ], 5000, 1);
      ([ "male"; "Facility" ], 2000, 1);
      ([ "male"; "Sales" ], 4000, 2) ]
    (results_to_list (Scheme.query example_client enc q));
  (* The appended row is filterable. *)
  let qf =
    Query.make ~where:[ ("Name", str "Eve") ] ~group_by:[ "Department" ] (Query.Sum "Salary")
  in
  Alcotest.(check (list (triple (list string) int int)))
    "filter finds appended row"
    [ ([ "Finance" ], 4000, 1) ]
    (results_to_list (Scheme.query example_client enc qf))

let test_append_row_validation () =
  let enc = Scheme.encrypt_table example_client example_table in
  Alcotest.check_raises "group arity" (Invalid_argument "Scheme.append_row: group arity mismatch")
    (fun () ->
      ignore (Scheme.append_row example_client enc ~values:[| 1 |] ~groups:[| str "male" |] ~filters:[]));
  Alcotest.check_raises "bad filter column"
    (Invalid_argument "Scheme.append_row: \"Salary\" is not a filter column") (fun () ->
      ignore
        (Scheme.append_row example_client enc ~values:[| 1 |]
           ~groups:[| str "male"; str "Sales" |]
           ~filters:[ ("Salary", Value.Int 1) ]))

(* --- structural properties of the encrypted table ---------------------------- *)

let test_enc_table_shape () =
  let pp = example_enc.Scheme.pp in
  Alcotest.(check int) "rows" 5 (Array.length example_enc.Scheme.rows);
  let expected_monomials =
    Monomials.count_formula ~num_columns:2 ~bucket_size:2 ~threshold:2
  in
  Alcotest.(check int) "monomials per row (m(2,2), B=2 → 3)" expected_monomials
    (Array.length example_enc.Scheme.rows.(0).Scheme.monomial_cts);
  Alcotest.(check int) "value columns" 1
    (Array.length example_enc.Scheme.rows.(0).Scheme.values);
  Alcotest.(check int) "channels" (Sagma_bgn.Crt_channels.channels pp.Scheme.channels)
    (Array.length example_enc.Scheme.rows.(0).Scheme.values.(0))

let test_fresh_randomness_across_rows () =
  (* Rows 1 and 4 both hold Salary values ≠ but identical Gender (male):
     their gender-monomial ciphertexts must differ (semantic security). *)
  let r0 = example_enc.Scheme.rows.(0) and r3 = example_enc.Scheme.rows.(3) in
  Alcotest.(check bool) "monomial cts differ" false
    (Sagma_pairing.Curve.equal r0.Scheme.monomial_cts.(0) r3.Scheme.monomial_cts.(0))

(* --- randomized end-to-end fuzzing --------------------------------------------

   Random (B, t, domain sizes, table, query, index mode) through the full
   pipeline, checked against the plaintext oracle. Sizes stay small so the
   whole fuzz batch runs in seconds. *)

let fuzz_one (seed : int) : bool =
  let d = Drbg.of_int_seed seed in
  let bucket_size = Drbg.int_range d 1 3 in
  let d1_size = Drbg.int_range d 1 5 in
  let d2_size = Drbg.int_range d 2 4 in
  let rows = Drbg.int_range d 0 12 in
  let schema =
    [ { Table.name = "v"; ty = Value.TInt };
      { Table.name = "g1"; ty = Value.TInt };
      { Table.name = "g2"; ty = Value.TStr } ]
  in
  let g2_values = Array.init d2_size (fun i -> Printf.sprintf "s%d" i) in
  let table =
    Table.of_rows schema
      (List.init rows (fun _ ->
           [| vi (Drbg.int_below d 500);
              vi (Drbg.int_below d d1_size);
              str g2_values.(Drbg.int_below d d2_size) |]))
  in
  let index_mode =
    match Drbg.int_below d 3 with
    | 0 -> Scheme.Per_attribute
    | 1 -> Scheme.Joint
    | _ -> Scheme.Oxt_conjunctive
  in
  let config =
    Config.make ~bucket_size ~max_group_attrs:2 ~value_columns:[ "v" ]
      ~group_columns:[ "g1"; "g2" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("g1", List.init d1_size (fun i -> vi i));
          ("g2", Array.to_list (Array.map str g2_values)) ]
      (Drbg.of_int_seed (seed * 7 + 1))
  in
  let enc = Scheme.encrypt_table ~index_mode client table in
  let q =
    let group_by =
      match Drbg.int_below d 3 with
      | 0 -> [ "g1" ]
      | 1 -> [ "g2" ]
      | _ -> [ "g1"; "g2" ]
    in
    let agg = if Drbg.bool d then Query.Sum "v" else Query.Count in
    Query.make ~group_by agg
  in
  let got = results_to_list (Scheme.query client enc q) in
  let want = oracle_to_list (Executor.run table q) in
  got = want

let test_fuzz_pipeline () =
  for seed = 1 to 12 do
    Alcotest.(check bool) (Printf.sprintf "fuzz seed %d" seed) true (fuzz_one seed)
  done

let test_setup_requires_domains () =
  Alcotest.check_raises "missing domain"
    (Invalid_argument "Scheme.setup: no domain for group column \"Department\"") (fun () ->
      ignore
        (Scheme.setup example_config ~domains:[ ("Gender", gender_domain) ]
           (Drbg.create "missing")))

let () =
  Alcotest.run "sagma"
    [ ( "paper-example",
        [ Alcotest.test_case "bucket index (Table 5)" `Quick test_paper_bucket_index;
          Alcotest.test_case "Listing 2 → Table 7" `Quick test_paper_table7;
          Alcotest.test_case "Listing 1 → Table 2 (filter)" `Quick test_paper_listing1_with_filter;
          Alcotest.test_case "single-attribute queries" `Quick test_single_attribute_queries;
          Alcotest.test_case "count" `Quick test_count_query;
          Alcotest.test_case "avg" `Quick test_avg_query ] );
      ( "filters",
        [ Alcotest.test_case "filter by name" `Quick test_filter_by_name;
          Alcotest.test_case "conjunctive" `Quick test_conjunctive_filter ] );
      ( "validation",
        [ Alcotest.test_case "threshold enforced" `Quick test_threshold_enforced;
          Alcotest.test_case "filter column checked" `Quick test_non_filter_column_rejected;
          Alcotest.test_case "setup requires domains" `Quick test_setup_requires_domains ] );
      ( "oracle",
        [ Alcotest.test_case "random tables" `Slow test_random_tables_match_oracle;
          Alcotest.test_case "multiple value columns" `Quick test_multiple_value_columns;
          Alcotest.test_case "randomized pipeline fuzz" `Slow test_fuzz_pipeline ] );
      ( "dummy-rows",
        [ Alcotest.test_case "results preserved" `Quick test_dummy_rows_preserve_results;
          Alcotest.test_case "leakage flattened" `Quick test_dummy_rows_flatten_leakage ] );
      ("splits", [ Alcotest.test_case "split + merge roundtrip" `Quick test_value_split_roundtrip ]);
      ( "updates",
        [ Alcotest.test_case "append row" `Quick test_append_row;
          Alcotest.test_case "append validation" `Quick test_append_row_validation ] );
      ( "range-filters",
        [ Alcotest.test_case "matches oracle" `Slow test_range_filter_matches_oracle;
          Alcotest.test_case "full range" `Quick test_range_filter_empty_result;
          Alcotest.test_case "via sql" `Quick test_range_with_sql;
          Alcotest.test_case "validation" `Quick test_range_column_validation;
          Alcotest.test_case "append with range values" `Quick test_range_append ] );
      ( "joint-index",
        [ Alcotest.test_case "matches per-attribute" `Slow test_joint_index_matches_per_attribute;
          Alcotest.test_case "hides individual buckets" `Quick test_joint_index_hides_individual_buckets;
          Alcotest.test_case "append" `Quick test_joint_index_append ] );
      ( "oxt-index",
        [ Alcotest.test_case "matches oracle" `Slow test_oxt_mode_matches_oracle;
          Alcotest.test_case "linear storage" `Quick test_oxt_mode_storage_is_linear;
          Alcotest.test_case "append" `Quick test_oxt_mode_append;
          Alcotest.test_case "remote append rejected" `Quick test_oxt_mode_remote_append_rejected;
          Alcotest.test_case "token needs rows" `Quick test_oxt_mode_token_needs_rows ] );
      ( "parallel",
        [ Alcotest.test_case "multi-domain equivalence" `Slow test_parallel_aggregation_equivalent ] );
      ( "structure",
        [ Alcotest.test_case "encrypted table shape" `Quick test_enc_table_shape;
          Alcotest.test_case "fresh randomness" `Quick test_fresh_randomness_across_rows ] );
    ]

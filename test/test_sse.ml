(* Tests for the Π_bas searchable symmetric encryption substrate. *)

module Sse = Sagma_sse.Sse
module Drbg = Sagma_crypto.Drbg

let drbg = Drbg.create "sse-tests"
let key = Sse.gen drbg

let corpus =
  [ ("apple", [ 1; 4; 9 ]);
    ("banana", [ 2 ]);
    ("cherry", [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]);
    ("date", []) ]

let index = Sse.build key corpus

let sorted = List.sort compare

let test_search_matches_plaintext () =
  List.iter
    (fun (w, ids) ->
      Alcotest.(check (list int)) ("search " ^ w) (sorted ids)
        (sorted (Sse.search index (Sse.token key w))))
    corpus

let test_search_missing_keyword () =
  Alcotest.(check (list int)) "absent keyword" [] (Sse.search index (Sse.token key "absent"))

let test_wrong_key_finds_nothing () =
  let other = Sse.gen (Drbg.create "other") in
  Alcotest.(check (list int)) "wrong key" [] (Sse.search index (Sse.token other "apple"))

let test_token_deterministic () =
  let t1 = Sse.token key "apple" and t2 = Sse.token key "apple" in
  Alcotest.(check string) "search pattern" (Sse.token_id t1) (Sse.token_id t2);
  let t3 = Sse.token key "banana" in
  Alcotest.(check bool) "distinct keywords" false (Sse.token_id t1 = Sse.token_id t3)

let test_index_size () =
  (* One dictionary entry per (keyword, id) posting. *)
  Alcotest.(check int) "size" (3 + 1 + 10 + 0) (Sse.size index)

let test_add_posting () =
  let idx = Sse.build key [ ("k", [ 10; 20 ]) ] in
  let idx = Sse.add key idx "k" ~counter:2 30 in
  Alcotest.(check (list int)) "after add" [ 10; 20; 30 ]
    (sorted (Sse.search idx (Sse.token key "k")));
  (* New keyword via add. *)
  let idx = Sse.add key idx "fresh" ~counter:0 77 in
  Alcotest.(check (list int)) "fresh keyword" [ 77 ]
    (Sse.search idx (Sse.token key "fresh"))

let test_large_ids () =
  let big = (1 lsl 40) + 12345 in
  let idx = Sse.build key [ ("w", [ big; 0 ]) ] in
  Alcotest.(check (list int)) "large id" [ 0; big ]
    (sorted (Sse.search idx (Sse.token key "w")))

let test_simulated_index_shape () =
  (* The simulator must reproduce the only thing the adversary sees
     statically: the index size. *)
  let sim = Sse.simulate_index drbg ~entries:(Sse.size index) in
  Alcotest.(check int) "same size" (Sse.size index) (Sse.size sim)

(* --- dyadic range covers ---------------------------------------------------- *)

module Dyadic = Sagma_sse.Dyadic

let test_dyadic_keywords_for_value () =
  let ks = Dyadic.keywords_for_value ~depth:4 11 in
  Alcotest.(check int) "depth+1 ancestors" 5 (List.length ks);
  List.iter
    (fun i -> Alcotest.(check bool) "each contains v" true (Dyadic.interval_contains i 11))
    ks

let test_dyadic_cover_exact () =
  (* [4, 11] over depth 4 decomposes into [4,7] ∪ [8,11]. *)
  let cover = Dyadic.cover ~depth:4 ~lo:4 ~hi:11 in
  let spans = List.map Dyadic.interval_range cover in
  Alcotest.(check (list (pair int int))) "canonical cover" [ (4, 7); (8, 11) ] spans

let test_dyadic_cover_full_and_single () =
  Alcotest.(check (list (pair int int))) "whole domain" [ (0, 15) ]
    (List.map Dyadic.interval_range (Dyadic.cover ~depth:4 ~lo:0 ~hi:15));
  Alcotest.(check (list (pair int int))) "single point" [ (7, 7) ]
    (List.map Dyadic.interval_range (Dyadic.cover ~depth:4 ~lo:7 ~hi:7))

let test_dyadic_errors () =
  Alcotest.check_raises "empty range" (Invalid_argument "Dyadic.cover: empty range") (fun () ->
      ignore (Dyadic.cover ~depth:4 ~lo:5 ~hi:4));
  Alcotest.check_raises "out of domain" (Invalid_argument "Dyadic.cover: out of domain")
    (fun () -> ignore (Dyadic.cover ~depth:4 ~lo:0 ~hi:16))

(* --- OXT conjunctive SSE ------------------------------------------------------ *)

module Oxt = Sagma_sse.Oxt

let oxt_params = Oxt.make_params ()
let oxt_key = Oxt.gen (Drbg.create "oxt-tests")

(* A small document collection with known conjunctions. *)
let oxt_corpus =
  [ ("red", [ 1; 2; 3; 4; 10 ]);
    ("big", [ 2; 4; 5; 6 ]);
    ("old", [ 4; 6; 7; 10 ]);
    ("rare", [ 10 ]) ]

let oxt_index = Oxt.build oxt_params oxt_key oxt_corpus

let oxt_oracle terms =
  match List.map (fun w -> List.assoc w oxt_corpus) terms with
  | [] -> []
  | first :: rest ->
    List.filter (fun id -> List.for_all (List.mem id) rest) first |> List.sort compare

let test_oxt_single_term () =
  List.iter
    (fun (w, ids) ->
      Alcotest.(check (list int)) ("single " ^ w) (List.sort compare ids)
        (List.sort compare (Oxt.conjunction oxt_params oxt_key oxt_index [ w ])))
    oxt_corpus

let test_oxt_two_term_conjunctions () =
  List.iter
    (fun terms ->
      Alcotest.(check (list int))
        (String.concat "&" terms)
        (oxt_oracle terms)
        (List.sort compare (Oxt.conjunction oxt_params oxt_key oxt_index terms)))
    [ [ "red"; "big" ]; [ "big"; "old" ]; [ "rare"; "red" ]; [ "red"; "old" ] ]

let test_oxt_three_term_conjunction () =
  Alcotest.(check (list int)) "red&big&old" [ 4 ]
    (List.sort compare (Oxt.conjunction oxt_params oxt_key oxt_index [ "red"; "big"; "old" ]));
  Alcotest.(check (list int)) "rare&red&old" [ 10 ]
    (List.sort compare (Oxt.conjunction oxt_params oxt_key oxt_index [ "rare"; "red"; "old" ]))

let test_oxt_empty_intersection () =
  let idx = Oxt.build oxt_params oxt_key [ ("a", [ 1; 2 ]); ("b", [ 3; 4 ]) ] in
  Alcotest.(check (list int)) "disjoint" [] (Oxt.conjunction oxt_params oxt_key idx [ "a"; "b" ])

let test_oxt_sterm_leakage_profile () =
  (* The server learns the s-term's count, not the x-terms': stag_count of
     "rare" is 1 even when conjoined with frequent terms. *)
  let st = Oxt.stag oxt_key "rare" in
  Alcotest.(check int) "s-term count" 1 (Oxt.stag_count oxt_index st);
  (* Structure sizes: one TSet entry and one XSet tag per posting. *)
  let postings = List.fold_left (fun acc (_, ids) -> acc + List.length ids) 0 oxt_corpus in
  Alcotest.(check int) "tset size" postings (Oxt.tset_size oxt_index);
  Alcotest.(check int) "xset size" postings (Oxt.xset_size oxt_index)

let test_oxt_wrong_key_finds_nothing () =
  let other = Oxt.gen (Drbg.create "oxt-other") in
  Alcotest.(check (list int)) "wrong key" []
    (Oxt.conjunction oxt_params other oxt_index [ "red" ])

let test_oxt_two_round_api () =
  (* Drive the rounds by hand, as a network deployment would. *)
  let st = Oxt.stag oxt_key "big" in
  let count = Oxt.stag_count oxt_index st in
  Alcotest.(check int) "round 1 count" 4 count;
  let xtoks = Oxt.xtokens oxt_params oxt_key ~s_term:"big" ~x_terms:[ "red" ] ~count in
  Alcotest.(check (list int)) "round 2" [ 2; 4 ]
    (List.sort compare (Oxt.search oxt_params oxt_index st xtoks))

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let props =
  [ qprop "search recovers exactly the postings" 50
      QCheck.(list_of_size (QCheck.Gen.int_range 0 20) (int_range 0 1000))
      (fun ids ->
        let ids = List.sort_uniq compare ids in
        let idx = Sse.build key [ ("kw", ids) ] in
        sorted (Sse.search idx (Sse.token key "kw")) = ids);
    qprop "keywords are independent" 30
      QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 10) (int_range 0 100))
                (list_of_size (QCheck.Gen.int_range 0 10) (int_range 0 100)))
      (fun (a, b) ->
        let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
        let idx = Sse.build key [ ("a", a); ("b", b) ] in
        sorted (Sse.search idx (Sse.token key "a")) = a
        && sorted (Sse.search idx (Sse.token key "b")) = b);
    qprop "dyadic cover is exact and minimal-canonical" 200
      QCheck.(pair (int_range 0 255) (int_range 0 255))
      (fun (a, b) ->
        let lo = min a b and hi = max a b in
        let cover = Dyadic.cover ~depth:8 ~lo ~hi in
        (* Exactness: v in [lo,hi] iff some interval contains it. *)
        let exact = ref true in
        for v = 0 to 255 do
          let covered = List.exists (fun i -> Dyadic.interval_contains i v) cover in
          if covered <> (lo <= v && v <= hi) then exact := false
        done;
        (* Canonical size bound: at most 2·depth intervals. *)
        !exact && List.length cover <= 16);
    qprop "dyadic membership matches search semantics" 100
      QCheck.(pair (int_range 0 63) (pair (int_range 0 63) (int_range 0 63)))
      (fun (v, (a, b)) ->
        let lo = min a b and hi = max a b in
        (* v's ancestor keywords intersect the cover exactly when v is in
           range — the property SSE range filtering relies on. *)
        let ancestors = List.map Dyadic.keyword_tag (Dyadic.keywords_for_value ~depth:6 v) in
        let cover = List.map Dyadic.keyword_tag (Dyadic.cover ~depth:6 ~lo ~hi) in
        List.exists (fun k -> List.mem k cover) ancestors = (lo <= v && v <= hi));
  ]

let () =
  Alcotest.run "sse"
    [ ( "pi-bas",
        [ Alcotest.test_case "search matches plaintext" `Quick test_search_matches_plaintext;
          Alcotest.test_case "missing keyword" `Quick test_search_missing_keyword;
          Alcotest.test_case "wrong key" `Quick test_wrong_key_finds_nothing;
          Alcotest.test_case "token determinism" `Quick test_token_deterministic;
          Alcotest.test_case "index size" `Quick test_index_size;
          Alcotest.test_case "dynamic add" `Quick test_add_posting;
          Alcotest.test_case "large ids" `Quick test_large_ids;
          Alcotest.test_case "simulated index shape" `Quick test_simulated_index_shape ] );
      ( "oxt",
        [ Alcotest.test_case "single term" `Quick test_oxt_single_term;
          Alcotest.test_case "two-term conjunctions" `Quick test_oxt_two_term_conjunctions;
          Alcotest.test_case "three-term conjunction" `Quick test_oxt_three_term_conjunction;
          Alcotest.test_case "empty intersection" `Quick test_oxt_empty_intersection;
          Alcotest.test_case "s-term leakage profile" `Quick test_oxt_sterm_leakage_profile;
          Alcotest.test_case "wrong key" `Quick test_oxt_wrong_key_finds_nothing;
          Alcotest.test_case "two-round api" `Quick test_oxt_two_round_api ] );
      ( "dyadic",
        [ Alcotest.test_case "keywords for value" `Quick test_dyadic_keywords_for_value;
          Alcotest.test_case "cover exact" `Quick test_dyadic_cover_exact;
          Alcotest.test_case "full + single" `Quick test_dyadic_cover_full_and_single;
          Alcotest.test_case "errors" `Quick test_dyadic_errors ] );
      ("properties", props);
    ]

(* Security-oriented tests: the leakage function L (§4.2), the simulator
   of Theorem 1 run as an executable experiment, and statistical sanity
   checks on ciphertext randomness. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module Sse = Sagma_sse.Sse
module Curve = Sagma_pairing.Curve
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

let schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt };
    { Table.name = "g1"; ty = Value.TStr };
    { Table.name = "g2"; ty = Value.TInt } ]

let g1_domain = [ str "a"; str "b"; str "c"; str "d" ]
let g2_domain = List.init 6 (fun i -> vi i)

let table =
  let d = Drbg.create "security-data" in
  Table.of_rows schema
    (List.init 24 (fun _ ->
         [| vi (Drbg.int_below d 100);
            str [| "a"; "b"; "c"; "d" |].(Drbg.int_below d 4);
            vi (Drbg.int_below d 6) |]))

let config =
  Config.make ~bucket_size:2 ~max_group_attrs:2 ~filter_columns:[ "g2" ]
    ~value_columns:[ "v" ] ~group_columns:[ "g1"; "g2" ] ()

let client =
  Scheme.setup config
    ~domains:[ ("g1", g1_domain); ("g2", g2_domain) ]
    (Drbg.create "security-client")

let enc = Scheme.encrypt_table client table

let queries =
  [ Query.make ~group_by:[ "g1" ] (Query.Sum "v");
    Query.make ~group_by:[ "g1"; "g2" ] Query.Count;
    Query.make ~where:[ ("g2", vi 3) ] ~group_by:[ "g1" ] (Query.Sum "v") ]

let tokens = List.map (Scheme.token client) queries

let leak = Leakage.profile enc tokens

(* --- leakage contents ------------------------------------------------------ *)

let test_leakage_shape () =
  Alcotest.(check int) "rows" 24 leak.Leakage.num_rows;
  Alcotest.(check int) "queries" 3 (List.length leak.Leakage.queries);
  Alcotest.(check int) "index size" (Sse.size enc.Scheme.index) leak.Leakage.index_size

let test_leakage_reveals_only_identifiers () =
  (* The query leakage names column identifiers, never attribute values. *)
  let q1 = List.nth leak.Leakage.queries 0 in
  Alcotest.(check (option int)) "value column id" (Some 0) q1.Leakage.value_column;
  Alcotest.(check (array int)) "group column ids" [| 0 |] q1.Leakage.group_columns

let test_search_pattern_repetition () =
  (* Queries 1 and 3 both touch g1's buckets: their tokens repeat, and the
     leakage shows identical tags — the search pattern. *)
  let tags q = List.map (fun o -> o.Leakage.token_tag) q.Leakage.observations in
  let q1 = List.nth leak.Leakage.queries 0 and q3 = List.nth leak.Leakage.queries 2 in
  let q1_tags = tags q1 in
  List.iteri
    (fun i tag -> Alcotest.(check string) (Printf.sprintf "tag %d repeats" i) (List.nth q1_tags i) tag)
    (List.filteri (fun i _ -> i < List.length q1_tags) (tags q3))

let test_access_pattern_is_bucket_level () =
  (* The union of g1's bucket access patterns covers all rows; each bucket
     holds at least two distinct g1 values' rows (indistinguishable). *)
  let q1 = List.nth leak.Leakage.queries 0 in
  let all = List.concat_map (fun o -> o.Leakage.matches) q1.Leakage.observations in
  Alcotest.(check int) "covers all rows" 24 (List.length (List.sort_uniq compare all));
  let m = client.Scheme.mappings.(0) in
  List.iter
    (fun b ->
      Alcotest.(check int) (Printf.sprintf "bucket %d has 2 values" b) 2
        (List.length (Mapping.bucket_members m b)))
    [ 0; 1 ]

(* --- the simulator experiment (Theorem 1) ----------------------------------- *)

let sim = Leakage.simulate client.Scheme.pp.Scheme.bgn_pk leak (Drbg.create "simulator")

let test_simulator_structural_equality () =
  (* Same number of rows, same per-row ciphertext arity, same index size:
     the adversary's static view has identical shape. *)
  Alcotest.(check int) "rows" (Array.length enc.Scheme.rows) (Array.length sim.Leakage.sim_rows);
  let real0 = enc.Scheme.rows.(0) and sim0 = sim.Leakage.sim_rows.(0) in
  Alcotest.(check int) "monomial arity"
    (Array.length real0.Scheme.monomial_cts)
    (Array.length sim0.Scheme.monomial_cts);
  Alcotest.(check int) "value arity" (Array.length real0.Scheme.values)
    (Array.length sim0.Scheme.values);
  Alcotest.(check int) "channel arity"
    (Array.length real0.Scheme.values.(0))
    (Array.length sim0.Scheme.values.(0));
  Alcotest.(check int) "index size" (Sse.size enc.Scheme.index) (Sse.size sim.Leakage.sim_index)

let test_simulator_replays_access_patterns () =
  (* Searching the simulated index with the simulated tokens must return
     exactly the leaked access patterns. *)
  List.iter
    (fun q ->
      List.iter
        (fun obs ->
          match List.assoc_opt obs.Leakage.token_tag sim.Leakage.sim_tokens with
          | None -> Alcotest.fail "missing simulated token"
          | Some tok ->
            Alcotest.(check (list int)) "replayed pattern" obs.Leakage.matches
              (Sse.search sim.Leakage.sim_index tok))
        q.Leakage.observations)
    leak.Leakage.queries

let test_simulated_ciphertexts_valid () =
  (* Simulated ciphertexts are valid group elements (on the curve). *)
  let curve = client.Scheme.pp.Scheme.bgn_pk.Sagma_bgn.Bgn.group.Sagma_pairing.Pairing.curve in
  Array.iter
    (fun (row : Scheme.enc_row) ->
      Alcotest.(check bool) "count ct on curve" true (Curve.is_on_curve curve row.Scheme.count_ct);
      Array.iter
        (fun m -> Alcotest.(check bool) "monomial on curve" true (Curve.is_on_curve curve m))
        row.Scheme.monomial_cts)
    sim.Leakage.sim_rows

(* --- ciphertext randomness sanity -------------------------------------------- *)

let test_equal_plaintexts_distinct_ciphertexts () =
  (* Two rows with identical group values and identical salaries must have
     entirely distinct ciphertexts. *)
  let t2 =
    Table.of_rows schema [ [| vi 42; str "a"; vi 0 |]; [| vi 42; str "a"; vi 0 |] ]
  in
  let e2 = Scheme.encrypt_table client t2 in
  let r0 = e2.Scheme.rows.(0) and r1 = e2.Scheme.rows.(1) in
  Alcotest.(check bool) "value cts differ" false
    (Curve.equal r0.Scheme.values.(0).(0) r1.Scheme.values.(0).(0));
  Alcotest.(check bool) "monomial cts differ" false
    (Curve.equal r0.Scheme.monomial_cts.(0) r1.Scheme.monomial_cts.(0));
  Alcotest.(check bool) "count cts differ" false
    (Curve.equal r0.Scheme.count_ct r1.Scheme.count_ct)

let test_wrong_client_cannot_decrypt () =
  (* A different client (different BGN factorization, same public
     parameters shape) gets nothing meaningful out of the aggregates. *)
  let other =
    Scheme.setup config
      ~domains:[ ("g1", g1_domain); ("g2", g2_domain) ]
      (Drbg.create "security-wrong-client")
  in
  let q = Query.make ~group_by:[ "g1" ] (Query.Sum "v") in
  let tok = Scheme.token client q in
  let agg = Scheme.aggregate enc tok in
  (* Decrypting with the wrong secret key: dlogs fail (count 0) so no
     groups survive, or garbage that differs from the truth. *)
  let truth =
    List.map (fun r -> (r.Scheme.group, r.Scheme.sum)) (Scheme.decrypt client tok agg ~total_rows:24)
  in
  let forged =
    List.map (fun r -> (r.Scheme.group, r.Scheme.sum))
      (Scheme.decrypt other tok agg ~total_rows:24)
  in
  Alcotest.(check bool) "wrong key learns nothing" true (forged <> truth || truth = [])

let test_frequencies_hidden_within_bucket () =
  (* Two values in the same bucket are indistinguishable even when their
     frequencies differ wildly: both buckets' SSE patterns merge them. *)
  let skew =
    Table.of_rows schema
      (List.init 20 (fun i ->
           if i < 19 then [| vi 1; str "a"; vi 0 |] else [| vi 1; str "b"; vi 0 |]))
  in
  (* Force a and b into the same bucket. *)
  let strategy = function
    | "g1" -> Mapping.Explicit g1_domain  (* a,b → bucket 0 *)
    | _ -> Mapping.Prf_random
  in
  let cl =
    Scheme.setup ~mapping_strategy:strategy config
      ~domains:[ ("g1", g1_domain); ("g2", g2_domain) ]
      (Drbg.create "skew-client")
  in
  let e = Scheme.encrypt_table cl skew in
  let tok = Scheme.token cl (Query.make ~group_by:[ "g1" ] Query.Count) in
  let l = Leakage.profile e [ tok ] in
  let q = List.hd l.Leakage.queries in
  (* Bucket 0 shows 20 rows, revealing nothing about the 19/1 split. *)
  let sizes = List.map (fun o -> List.length o.Leakage.matches) q.Leakage.observations in
  Alcotest.(check (list int)) "bucket sizes" [ 20; 0 ] sizes

(* --- leakage-abuse attacks (Naveed et al.) ------------------------------------ *)

module Attacks = Sagma.Attacks
module B = Sagma_baselines

(* A skewed plaintext distribution with distinct frequencies — the
   setting where frequency analysis is strongest. *)
let attack_schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt }; { Table.name = "dept"; ty = Value.TStr } ]

let attack_dept_freqs = [ ("eng", 40); ("sales", 25); ("hr", 12); ("legal", 7); ("ops", 3) ]

let attack_table =
  Table.of_rows attack_schema
    (List.concat_map
       (fun (d, n) -> List.init n (fun i -> [| vi i; str d |]))
       attack_dept_freqs)

let attack_aux : Attacks.auxiliary = List.map (fun (d, n) -> (str d, n)) attack_dept_freqs

let test_attack_breaks_cryptdb () =
  (* Full recovery against deterministic encryption: every frequency is
     unique, so matching is exact. *)
  let c =
    B.Cryptdb.setup ~paillier_bits:256 ~value_columns:[ "v" ] ~group_columns:[ "dept" ]
      (Drbg.create "attack-cryptdb")
  in
  let enc = B.Cryptdb.encrypt_table c attack_table in
  let leaked = B.Cryptdb.leaked_histogram enc ~column:0 in
  (* Ground truth: map each det tag to its plaintext via the known table
     (the adversary does NOT use this — it scores the attack). *)
  let truth =
    List.map (fun (d, _) -> (B.Cryptdb.det_value c (str d), str d)) attack_dept_freqs
  in
  let rate = Attacks.attack_cryptdb ~leaked ~aux:attack_aux ~truth in
  Alcotest.(check (float 0.0001)) "100% recovery" 1.0 rate

let test_attack_blunted_by_buckets () =
  (* Against SAGMA's bucket leakage the attacker at best recovers the
     most frequent member of each identified bucket. *)
  let hist = Bucketing.histogram attack_table "dept" in
  let m =
    Mapping.make Mapping.Prf_random "attack-map" (List.map fst hist) ~bucket_size:2
  in
  let rate = Attacks.attack_sagma_buckets m ~histogram:hist in
  Alcotest.(check bool) (Printf.sprintf "recovery %.2f < 1" rate) true (rate < 1.0);
  (* With B = 2, at most the heavier member of each bucket is
     recoverable: bounded by the total weight of per-bucket maxima. *)
  let bound =
    let freqs = Bucketing.bucket_frequencies m hist in
    ignore freqs;
    List.fold_left
      (fun acc b ->
        acc
        + List.fold_left
            (fun best v -> max best (Option.value (List.assoc_opt v hist) ~default:0))
            0
            (Mapping.bucket_members m b))
      0
      (List.init (Mapping.num_buckets m) (fun b -> b))
  in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  Alcotest.(check bool) "within structural bound" true
    (rate <= (float_of_int bound /. float_of_int total) +. 0.0001)

let test_attack_neutralized_by_dummies () =
  (* Pad buckets to equal frequencies: bucket identification collapses to
     1/#buckets, pushing recovery toward the blind-guess floor. *)
  let hist = Bucketing.histogram attack_table "dept" in
  let m = Bucketing.optimal_mapping ~max_domain:5 hist ~bucket_size:2 in
  let plan = Bucketing.dummy_plan_for_column m hist in
  let padded = hist @ plan in
  let rate_before = Attacks.attack_sagma_buckets m ~histogram:hist in
  let rate_after = Attacks.attack_sagma_buckets m ~histogram:padded in
  Alcotest.(check bool)
    (Printf.sprintf "dummies reduce recovery (%.3f -> %.3f)" rate_before rate_after)
    true (rate_after < rate_before);
  (* All buckets share one frequency, so identification is 1/#buckets. *)
  let freqs = Bucketing.bucket_frequencies m padded in
  Alcotest.(check bool) "flat buckets" true (Array.for_all (fun f -> f = freqs.(0)) freqs)

let test_attack_hierarchy () =
  (* The headline comparison: CryptDB ≥ SAGMA buckets > dummies ≈ guess. *)
  let hist = Bucketing.histogram attack_table "dept" in
  let m = Bucketing.optimal_mapping ~max_domain:5 hist ~bucket_size:2 in
  let cryptdb_rate = 1.0 (* proven by test_attack_breaks_cryptdb *) in
  let bucket_rate = Attacks.attack_sagma_buckets m ~histogram:hist in
  let padded = hist @ Bucketing.dummy_plan_for_column m hist in
  let dummy_rate = Attacks.attack_sagma_buckets m ~histogram:padded in
  Alcotest.(check bool)
    (Printf.sprintf "hierarchy %.2f > %.2f >= %.2f" cryptdb_rate bucket_rate dummy_rate)
    true
    (cryptdb_rate > bucket_rate && bucket_rate >= dummy_rate)

let () =
  Alcotest.run "security"
    [ ( "leakage",
        [ Alcotest.test_case "shape" `Quick test_leakage_shape;
          Alcotest.test_case "identifiers only" `Quick test_leakage_reveals_only_identifiers;
          Alcotest.test_case "search pattern" `Quick test_search_pattern_repetition;
          Alcotest.test_case "bucket-level access pattern" `Quick
            test_access_pattern_is_bucket_level ] );
      ( "simulator",
        [ Alcotest.test_case "structural equality" `Quick test_simulator_structural_equality;
          Alcotest.test_case "replays access patterns" `Quick test_simulator_replays_access_patterns;
          Alcotest.test_case "valid ciphertexts" `Quick test_simulated_ciphertexts_valid ] );
      ( "randomness",
        [ Alcotest.test_case "fresh ciphertexts" `Quick test_equal_plaintexts_distinct_ciphertexts;
          Alcotest.test_case "in-bucket frequency hiding" `Quick
            test_frequencies_hidden_within_bucket;
          Alcotest.test_case "wrong client cannot decrypt" `Quick
            test_wrong_client_cannot_decrypt ] );
      ( "leakage-abuse",
        [ Alcotest.test_case "breaks CryptDB" `Quick test_attack_breaks_cryptdb;
          Alcotest.test_case "blunted by buckets" `Quick test_attack_blunted_by_buckets;
          Alcotest.test_case "neutralized by dummies" `Quick test_attack_neutralized_by_dummies;
          Alcotest.test_case "hierarchy" `Quick test_attack_hierarchy ] );
    ]

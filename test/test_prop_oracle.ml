(* Differential oracle: random tables and random GROUP BY / WHERE
   aggregation queries, answered through the full encrypted pipeline
   (Client_api: Setup → EncTable → Token → Aggregate → Decrypt) and
   through the plaintext Executor — the two must agree exactly. The
   CryptDB, Seabed and ASHE baselines are held to the same oracle, so
   every aggregation scheme in the repository is cross-checked against
   the same random workload. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Drbg = Sagma_crypto.Drbg
module B = Sagma_baselines
module Gen = Sagma_prop.Gen
module Dbgen = Sagma_prop.Dbgen
module R = Sagma_prop.Runner
open Sagma

let scenario_arb =
  R.arbitrary ~shrink:Dbgen.scenario_shrink ~print:Dbgen.print_scenario
    (Dbgen.scenario_gen ~max_rows:10 ~max_queries:3 ())

(* Results normalized to a comparable, order-independent form. *)
let norm rows = List.sort compare rows

let oracle_results table q =
  norm
    (List.map
       (fun r -> (List.map Value.to_string r.Executor.group, r.Executor.sum, r.Executor.count))
       (Executor.run table q))

(* SAGMA_PROP_WORKERS=n (n > 1) runs every encrypted aggregation on an
   n-domain pool, so the differential oracle also cross-checks the
   concurrent aggregation path against the plaintext executor. *)
let pool =
  match Option.bind (Sys.getenv_opt "SAGMA_PROP_WORKERS") int_of_string_opt with
  | Some n when n > 1 ->
    let p = Sagma_pool.Pool.create ~name:"prop-oracle" ~workers:(n - 1) () in
    at_exit (fun () -> Sagma_pool.Pool.shutdown p);
    Some p
  | _ -> None

let sagma_results t q =
  norm
    (List.map
       (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
       (Client_api.query ?pool t q))

let report q expected got =
  Printf.printf "    %s\n      oracle:    %s\n      encrypted: %s\n" (Query.to_sql q)
    (String.concat " | "
       (List.map (fun (g, s, c) -> Printf.sprintf "%s: sum=%d count=%d" (String.concat "," g) s c)
          expected))
    (String.concat " | "
       (List.map (fun (g, s, c) -> Printf.sprintf "%s: sum=%d count=%d" (String.concat "," g) s c)
          got));
  false

let config_of (sc : Dbgen.scenario) =
  Config.make ~bucket_size:sc.bucket_size ~max_group_attrs:sc.max_group_attrs
    ~filter_columns:(List.map fst sc.filter_domains) ~value_columns:sc.value_columns
    ~group_columns:(List.map fst sc.group_domains) ()

(* --- SAGMA vs plaintext ------------------------------------------------------- *)

let t_sagma = R.test ~count:12 ~name:"SAGMA = plaintext oracle" scenario_arb
    (fun sc ->
      let t =
        Client_api.create ~config:(config_of sc) ~domains:sc.group_domains
          ~seed:"prop-oracle" ()
      in
      Client_api.encrypt t ~table:sc.table;
      List.for_all
        (fun q ->
          let expected = oracle_results sc.table q in
          let got = sagma_results t q in
          got = expected || report q expected got)
        sc.queries)

(* Dummy rows (§5) must change no query result: they carry Enc(0)
   indicators and the dummy-safe paired count. *)
let t_sagma_dummies = R.test ~count:6 ~name:"SAGMA with dummy rows = oracle" scenario_arb
    (fun sc ->
      let t =
        Client_api.create ~config:(config_of sc) ~domains:sc.group_domains
          ~seed:"prop-oracle-dummy" ()
      in
      let dummy =
        Array.of_list (List.map (fun (_, dom) -> List.hd dom) sc.group_domains)
      in
      Client_api.encrypt t ~dummy_groups:[ dummy; dummy ] ~table:sc.table;
      List.for_all
        (fun q ->
          let expected = oracle_results sc.table q in
          let got = sagma_results t q in
          got = expected || report q expected got)
        sc.queries)

(* --- baselines against the same oracle ---------------------------------------- *)

let t_cryptdb = R.test ~count:8 ~name:"CryptDB baseline = oracle" scenario_arb
    (fun sc ->
      let client =
        B.Cryptdb.setup ~paillier_bits:256 ~value_columns:sc.value_columns
          ~group_columns:(List.map fst sc.group_domains)
          ~filter_columns:(List.map fst sc.filter_domains)
          (Drbg.create "prop-cryptdb")
      in
      let enc = B.Cryptdb.encrypt_table client sc.table in
      List.for_all
        (fun q ->
          let expected = oracle_results sc.table q in
          let got =
            norm
              (List.map
                 (fun r ->
                   ( List.map Value.to_string r.B.Cryptdb.group,
                     r.B.Cryptdb.sum, r.B.Cryptdb.count ))
                 (B.Cryptdb.query client enc q))
          in
          got = expected || report q expected got)
        sc.queries)

let t_seabed = R.test ~count:8 ~name:"Seabed baseline = oracle (single attribute)" scenario_arb
    (fun sc ->
      let gcol, gdom = List.hd sc.group_domains in
      let vcol = List.hd sc.value_columns in
      (* Splitting the domain into common/uncommon exercises both the
         splayed ASHE columns and the deterministic overflow column. *)
      let common = List.filteri (fun i _ -> i mod 2 = 0) gdom in
      let client = B.Seabed.setup ~common (Drbg.create "prop-seabed") in
      let enc =
        B.Seabed.encrypt_table client sc.table ~value_column:vcol ~group_column:gcol
      in
      let q = Query.make ~group_by:[ gcol ] (Query.Sum vcol) in
      let expected = oracle_results sc.table q in
      let results, _ops = B.Seabed.query client enc in
      let got =
        norm
          (List.map
             (fun r -> ([ Value.to_string r.B.Seabed.group ], r.B.Seabed.sum, r.B.Seabed.count))
             results)
      in
      got = expected || report q expected got)

let t_ashe = R.test ~count:60 ~name:"ASHE sums additively"
    (R.arbitrary
       ~print:(fun (seed, ms) ->
         Printf.sprintf "seed=%S [%s]" seed (String.concat "; " (List.map string_of_int ms)))
       (Gen.pair (Gen.bytes_size (Gen.return 8))
          (Gen.list ~max_len:24 (Gen.int_edgy 0 (B.Ashe.modulus - 1)))))
    (fun (seed, ms) ->
      let k = B.Ashe.gen_key (Drbg.create ("prop-ashe|" ^ seed)) in
      let c, _ =
        List.fold_left
          (fun (acc, id) m -> (B.Ashe.add acc (B.Ashe.encrypt k ~id m), id + 1))
          (B.Ashe.zero, 0) ms
      in
      B.Ashe.decrypt k c = List.fold_left (fun a m -> (a + m) mod B.Ashe.modulus) 0 ms)

(* --- aggregate-value agreement ------------------------------------------------ *)

let t_agg_value = R.test ~count:8 ~name:"SUM/COUNT/AVG values agree with oracle" scenario_arb
    (fun sc ->
      let t =
        Client_api.create ~config:(config_of sc) ~domains:sc.group_domains
          ~seed:"prop-oracle-agg" ()
      in
      Client_api.encrypt t ~table:sc.table;
      List.for_all
        (fun q ->
          let expected =
            norm
              (List.map
                 (fun r ->
                   (List.map Value.to_string r.Executor.group, Executor.aggregate_value q r))
                 (Executor.run sc.table q))
          in
          let got =
            norm
              (List.map
                 (fun r ->
                   (List.map Value.to_string r.Scheme.group, Scheme.aggregate_value q r))
                 (Client_api.query t q))
          in
          got = expected)
        sc.queries)

let () =
  R.run ~suite:"test_prop_oracle"
    [ t_sagma; t_sagma_dummies; t_cryptdb; t_seabed; t_ashe; t_agg_value ]

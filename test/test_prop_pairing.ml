(* Property suite for the pairing substrate: curve group laws, scalar
   arithmetic, and bilinearity / distortion-map consistency of the
   modified Tate pairing.

   Counts are small: every case costs one or more Miller loops. The
   prime-order Mersenne group (2^61 − 1) keeps cases fast while
   exercising the same code paths BGN uses; one composite-order group
   checks the μ_n membership BGN depends on. *)

module Z = Sagma_bigint.Bigint
module Curve = Sagma_pairing.Curve
module Fp2 = Sagma_pairing.Fp2
module Pairing = Sagma_pairing.Pairing
module Gen = Sagma_prop.Gen
module R = Sagma_prop.Runner

let n61 = Z.of_string "2305843009213693951" (* Mersenne prime 2^61 - 1 *)
let group = Pairing.make_group n61
let params = group.Pairing.curve

let q1 = Z.of_string "1073741827"
let q2 = Z.of_string "1073741831"
let group_comp = Pairing.make_group (Z.mul q1 q2)

(* Order-n points and scalars drawn from the case DRBG, so every
   counterexample replays from its printed seed. *)
let point_gen : Curve.point Gen.t =
 fun d -> Pairing.random_order_n_point group (Sagma_crypto.Drbg.rng d)

let scalar_gen : Z.t Gen.t = Gen.bigint_below n61

let point_arb = R.arbitrary ~print:Curve.to_string point_gen

let pp2 (a, b) = Printf.sprintf "(%s, %s)" (Curve.to_string a) (Curve.to_string b)

let pp3 (a, b, c) =
  Printf.sprintf "(%s, %s, %s)" (Curve.to_string a) (Curve.to_string b) (Curve.to_string c)

let point2_arb = R.arbitrary ~print:pp2 (Gen.pair point_gen point_gen)
let point3_arb = R.arbitrary ~print:pp3 (Gen.triple point_gen point_gen point_gen)

(* --- curve group laws ------------------------------------------------------- *)

let t_closure = R.test ~count:25 ~name:"curve ops stay on the curve" point2_arb
    (fun (a, b) ->
      Curve.is_on_curve params a
      && Curve.is_on_curve params (Curve.add params a b)
      && Curve.is_on_curve params (Curve.double params a)
      && Curve.is_on_curve params (Curve.neg params a))

let t_add_comm = R.test ~count:25 ~name:"point addition commutative" point2_arb
    (fun (a, b) -> Curve.equal (Curve.add params a b) (Curve.add params b a))

let t_add_assoc = R.test ~count:20 ~name:"point addition associative" point3_arb
    (fun (a, b, c) ->
      Curve.equal
        (Curve.add params a (Curve.add params b c))
        (Curve.add params (Curve.add params a b) c))

let t_identity = R.test ~count:15 ~name:"infinity is the identity" point_arb
    (fun a ->
      Curve.equal (Curve.add params a Curve.Infinity) a
      && Curve.equal (Curve.add params Curve.Infinity a) a
      && Curve.is_infinity (Curve.add params a (Curve.neg params a)))

let t_double = R.test ~count:15 ~name:"double = add P P" point_arb
    (fun a -> Curve.equal (Curve.double params a) (Curve.add params a a))

let t_mul_distrib = R.test ~count:12 ~name:"(j + k)P = jP + kP"
    (R.arbitrary
       ~print:(fun ((j, k), pt) ->
         Printf.sprintf "(%s, %s, %s)" (Z.to_string j) (Z.to_string k) (Curve.to_string pt))
       (Gen.pair (Gen.pair scalar_gen scalar_gen) point_gen))
    (fun ((j, k), pt) ->
      Curve.equal
        (Curve.mul params (Z.add j k) pt)
        (Curve.add params (Curve.mul params j pt) (Curve.mul params k pt)))

let t_mul_assoc = R.test ~count:12 ~name:"j(kP) = (jk mod n)P"
    (R.arbitrary
       ~print:(fun ((j, k), pt) ->
         Printf.sprintf "(%s, %s, %s)" (Z.to_string j) (Z.to_string k) (Curve.to_string pt))
       (Gen.pair (Gen.pair scalar_gen scalar_gen) point_gen))
    (fun ((j, k), pt) ->
      Curve.equal
        (Curve.mul params j (Curve.mul params k pt))
        (Curve.mul params (Z.erem (Z.mul j k) n61) pt))

let t_mul_small = R.test ~count:12 ~name:"mul agrees with repeated addition"
    (R.arbitrary
       ~print:(fun (k, pt) -> Printf.sprintf "(%d, %s)" k (Curve.to_string pt))
       (Gen.pair (Gen.int_range 0 12) point_gen))
    (fun (k, pt) ->
      let expected = ref Curve.Infinity in
      for _ = 1 to k do
        expected := Curve.add params !expected pt
      done;
      Curve.equal (Curve.mul_int params k pt) !expected)

let t_order = R.test ~count:10 ~name:"order-n points die at n" point_arb
    (fun a -> Curve.is_infinity (Curve.mul params n61 a))

(* --- pairing ----------------------------------------------------------------- *)

let e p q = Pairing.pairing group p q

let t_bilinear = R.test ~count:10 ~name:"bilinearity e(jP, kQ) = e(P,Q)^(jk)"
    (R.arbitrary
       ~print:(fun ((j, k), (p, q)) ->
         Printf.sprintf "(%s, %s, %s, %s)" (Z.to_string j) (Z.to_string k) (Curve.to_string p)
           (Curve.to_string q))
       (Gen.pair (Gen.pair scalar_gen scalar_gen) (Gen.pair point_gen point_gen)))
    (fun ((j, k), (p, q)) ->
      Pairing.gt_equal
        (e (Curve.mul params j p) (Curve.mul params k q))
        (Pairing.gt_pow group (e p q) (Z.erem (Z.mul j k) n61)))

let t_additive = R.test ~count:10 ~name:"e(P+Q, R) = e(P,R) * e(Q,R)" point3_arb
    (fun (p, q, r) ->
      Pairing.gt_equal (e (Curve.add params p q) r) (Pairing.gt_mul group (e p r) (e q r)))

let t_symmetric = R.test ~count:10 ~name:"pairing symmetric (distortion map)" point2_arb
    (fun (p, q) -> Pairing.gt_equal (e p q) (e q p))

let t_scalar_slides = R.test ~count:10 ~name:"e(kP, Q) = e(P, kQ)"
    (R.arbitrary
       ~print:(fun (k, (p, q)) ->
         Printf.sprintf "(%s, %s, %s)" (Z.to_string k) (Curve.to_string p) (Curve.to_string q))
       (Gen.pair scalar_gen (Gen.pair point_gen point_gen)))
    (fun (k, (p, q)) ->
      Pairing.gt_equal (e (Curve.mul params k p) q) (e p (Curve.mul params k q)))

let t_nondegenerate = R.test ~count:8 ~name:"e(P, P) <> 1 off infinity" point_arb
    (fun p ->
      if Curve.is_infinity p then raise R.Discard;
      not (Pairing.gt_equal (e p p) Pairing.gt_one))

let t_infinity = R.test ~count:8 ~name:"pairing with infinity is 1" point_arb
    (fun p ->
      Pairing.gt_equal (e p Curve.Infinity) Pairing.gt_one
      && Pairing.gt_equal (e Curve.Infinity p) Pairing.gt_one)

let t_target_order = R.test ~count:6 ~name:"pairing lands in mu_n" point2_arb
    (fun (p, q) -> Pairing.gt_equal (Pairing.gt_pow group (e p q) n61) Pairing.gt_one)

(* --- multi-pairing / precomputation surface ----------------------------------- *)

let t_new_vs_affine = R.test ~count:12 ~name:"fast pairing equals affine reference" point2_arb
    (fun (p, q) -> Pairing.gt_equal (Pairing.pairing group p q) (Pairing.pairing_affine group p q))

let t_precomp_reuse = R.test ~count:8 ~name:"one precomp serves many right points" point3_arb
    (fun (p, q, r) ->
      let pre = Pairing.precompute group p in
      Pairing.gt_equal (Pairing.pairing_prod group [ (pre, q) ]) (e p q)
      && Pairing.gt_equal (Pairing.pairing_prod group [ (pre, r) ]) (e p r))

let t_prod_product = R.test ~count:8 ~name:"pairing_prod equals product of pairings"
    (R.arbitrary
       ~print:(fun pairs ->
         String.concat "; " (List.map (fun (p, q) -> pp2 (p, q)) pairs))
       (Gen.list ~max_len:3 (Gen.pair point_gen point_gen)))
    (fun pairs ->
      let prod =
        Pairing.pairing_prod group
          (List.map (fun (p, q) -> (Pairing.precompute group p, q)) pairs)
      in
      let expected =
        List.fold_left
          (fun acc (p, q) -> Pairing.gt_mul group acc (Pairing.pairing_affine group p q))
          Pairing.gt_one pairs
      in
      Pairing.gt_equal prod expected)

let t_prod_infinity = R.test ~count:6 ~name:"pairing_prod skips infinity pairs" point2_arb
    (fun (p, q) ->
      let pre_p = Pairing.precompute group p in
      let pre_inf = Pairing.precompute group Curve.Infinity in
      Pairing.gt_equal
        (Pairing.pairing_prod group [ (pre_p, q); (pre_inf, q); (pre_p, Curve.Infinity) ])
        (e p q)
      && Pairing.gt_equal (Pairing.pairing_prod group []) Pairing.gt_one)

let t_prod_additive = R.test ~count:8 ~name:"e(P+Q, R) via one pairing_prod call" point3_arb
    (fun (p, q, r) ->
      (* Multi-pairing form of the additive law: one call, shared final
         exponentiation, versus two affine pairings multiplied in G_T. *)
      let lhs =
        Pairing.pairing_prod group
          [ (Pairing.precompute group p, r); (Pairing.precompute group q, r) ]
      in
      Pairing.gt_equal lhs (e (Curve.add params p q) r))

let t_mul_batch = R.test ~count:10 ~name:"mul_batch agrees with scalar mul"
    (R.arbitrary
       ~print:(fun pairs ->
         String.concat "; "
           (List.map (fun (k, pt) -> Printf.sprintf "%s·%s" (Z.to_string k) (Curve.to_string pt)) pairs))
       (Gen.list ~max_len:5 (Gen.pair scalar_gen point_gen)))
    (fun pairs ->
      let arr = Array.of_list pairs in
      let batch = Curve.mul_batch params arr in
      Array.length batch = Array.length arr
      && Array.for_all2 (fun (k, pt) b -> Curve.equal b (Curve.mul params k pt)) arr batch)

let t_composite_prod = R.test ~count:4 ~name:"composite order: fast equals affine on projected points"
    (R.arbitrary
       ~print:(fun s -> Printf.sprintf "%S" s)
       (Gen.bytes_size (Gen.return 16)))
    (fun seed ->
      let d = Sagma_crypto.Drbg.create ("compfast|" ^ seed) in
      let rng = Sagma_crypto.Drbg.rng d in
      let cp = group_comp.Pairing.curve in
      let p = Pairing.random_order_n_point group_comp rng in
      let q = Pairing.random_order_n_point group_comp rng in
      (* Small-order points make the Miller ladder hit the mid-loop
         vertical/infinity edge cases; both paths must agree there. *)
      let p1 = Curve.mul cp q1 p in
      let q2pt = Curve.mul cp q2 q in
      Pairing.gt_equal (Pairing.pairing group_comp p1 q) (Pairing.pairing_affine group_comp p1 q)
      && Pairing.gt_equal
           (Pairing.pairing group_comp p1 q2pt)
           (Pairing.pairing_affine group_comp p1 q2pt)
      && Pairing.gt_equal
           (Pairing.pairing group_comp q2pt p1)
           (Pairing.pairing_affine group_comp q2pt p1))

(* --- target group helpers ---------------------------------------------------- *)

let t_gt_ops = R.test ~count:8 ~name:"gt helpers are consistent"
    (R.arbitrary
       ~print:(fun (k, (p, q)) ->
         Printf.sprintf "(%s, %s, %s)" (Z.to_string k) (Curve.to_string p) (Curve.to_string q))
       (Gen.pair scalar_gen (Gen.pair point_gen point_gen)))
    (fun (k, (p, q)) ->
      let g = e p q in
      Pairing.gt_equal (Pairing.gt_sqr group g) (Pairing.gt_mul group g g)
      && Pairing.gt_equal (Pairing.gt_mul group g (Pairing.gt_inv group g)) Pairing.gt_one
      && Pairing.gt_equal
           (Pairing.gt_pow group g (Z.succ k))
           (Pairing.gt_mul group (Pairing.gt_pow group g k) g))

(* --- composite order (BGN's setting) ----------------------------------------- *)

let t_composite = R.test ~count:4 ~name:"composite-order subgroup projection"
    (R.arbitrary
       ~print:(fun s -> Printf.sprintf "%S" s)
       (Gen.bytes_size (Gen.return 16)))
    (fun seed ->
      let d = Sagma_crypto.Drbg.create ("comp|" ^ seed) in
      let rng = Sagma_crypto.Drbg.rng d in
      let cp = group_comp.Pairing.curve in
      let p = Pairing.random_order_n_point group_comp rng in
      let q = Pairing.random_order_n_point group_comp rng in
      (* Multiplying by q1 projects onto the order-q2 subgroup: the
         pairing must then have order dividing q2 — the trapdoor BGN
         decryption uses. *)
      let p1 = Curve.mul cp q1 p in
      let g = Pairing.pairing group_comp p1 q in
      Pairing.gt_equal (Pairing.gt_pow group_comp g q2) Pairing.gt_one)

let () =
  R.run ~suite:"test_prop_pairing"
    [ t_closure; t_add_comm; t_add_assoc; t_identity; t_double; t_mul_distrib; t_mul_assoc;
      t_mul_small; t_order; t_bilinear; t_additive; t_symmetric; t_scalar_slides;
      t_nondegenerate; t_infinity; t_target_order; t_new_vs_affine; t_precomp_reuse;
      t_prod_product; t_prod_infinity; t_prod_additive; t_mul_batch; t_composite_prod;
      t_gt_ops; t_composite ]

(* Tests for the bignum substrate: unit vectors plus qcheck properties
   checked against the native-int oracle. *)

module Z = Sagma_bigint.Bigint
module Nat = Sagma_bigint.Nat

(* Deterministic pseudo-random byte source for primality tests; test-only,
   so a simple splitmix-style generator is enough. *)
let test_rng : Z.rng =
  let state = ref 0x1e3779b97f4a7c15 in
  fun n ->
    String.init n (fun _ ->
        state := (!state * 2862933555777941757) + 1442695040888963407;
        Char.chr ((!state lsr 33) land 0xff))

let z = Z.of_int
let zs = Z.of_string

let check_z msg expected actual =
  Alcotest.(check string) msg (Z.to_string expected) (Z.to_string actual)

(* --- unit tests --------------------------------------------------------- *)

let test_of_to_int () =
  List.iter
    (fun x -> Alcotest.(check (option int)) "roundtrip" (Some x) (Z.to_int_opt (z x)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; max_int; -max_int ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Z.to_string (zs s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-999999999999999999999999999999999999";
      "10000000000000000000000000000000000000000000001" ]

let test_hex_roundtrip () =
  let a = zs "123456789012345678901234567890123456789" in
  check_z "hex" a (Z.of_hex (Z.to_hex a));
  Alcotest.(check string) "ff" "255" (Z.to_string (Z.of_hex "ff"));
  Alcotest.(check string) "hex of 255" "ff" (Z.to_hex (z 255))

let test_bytes_roundtrip () =
  let a = zs "987654321098765432109876543210" in
  check_z "bytes" a (Z.of_bytes_be (Z.to_bytes_be a));
  Alcotest.(check string) "empty" "" (Z.to_bytes_be Z.zero)

let test_add_large () =
  let a = zs "99999999999999999999999999999999" in
  check_z "carry chain" (zs "100000000000000000000000000000000") (Z.succ a);
  check_z "a+a" (zs "199999999999999999999999999999998") (Z.add a a)

let test_mul_large () =
  let a = zs "123456789123456789123456789" in
  let b = zs "987654321987654321987654321" in
  check_z "product"
    (zs "121932631356500531591068431581771069347203169112635269")
    (Z.mul a b)

let test_karatsuba_matches_schoolbook () =
  (* Build operands big enough to cross the Karatsuba threshold. *)
  let big k seed =
    let digits = Buffer.create (k * 8) in
    Buffer.add_string digits "1";
    for i = 0 to k - 1 do
      Buffer.add_string digits (string_of_int (1000000 + ((seed * (i + 7) * 2654435761) land 0xfffff)))
    done;
    zs (Buffer.contents digits)
  in
  let a = big 80 3 and b = big 90 5 in
  let product = Z.mul a b in
  (* Verify via divmod: product / a = b exactly. *)
  let q, r = Z.divmod product a in
  check_z "quotient" b q;
  check_z "remainder" Z.zero r

let test_divmod_basic () =
  let a = zs "1000000000000000000000000000007" in
  let b = zs "1234567891011" in
  let q, r = Z.divmod a b in
  check_z "reconstruct" a (Z.add (Z.mul q b) r);
  Alcotest.(check bool) "remainder bound" true (Z.lt r b && Z.geq r Z.zero)

let test_divmod_signs () =
  (* Truncated semantics must match OCaml's (/) and (mod). *)
  List.iter
    (fun (a, b) ->
      let q, r = Z.divmod (z a) (z b) in
      Alcotest.(check int) (Printf.sprintf "q %d/%d" a b) (a / b) (Z.to_int_exn q);
      Alcotest.(check int) (Printf.sprintf "r %d/%d" a b) (a mod b) (Z.to_int_exn r))
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (-6, 3); (0, 5) ]

let test_ediv_rem () =
  List.iter
    (fun (a, b) ->
      let q, r = Z.ediv_rem (z a) (z b) in
      Alcotest.(check bool) "0 <= r < |b|" true
        (Z.geq r Z.zero && Z.lt r (Z.abs (z b)));
      check_z "a = q*b + r" (z a) (Z.add (Z.mul q (z b)) r))
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (0, 4); (-1, 1 lsl 40) ]

let test_shifts () =
  let a = zs "123456789123456789" in
  check_z "shl/shr" a (Z.shift_right (Z.shift_left a 67) 67);
  check_z "shl = *2^k" (Z.mul a (Z.pow Z.two 67)) (Z.shift_left a 67);
  check_z "shr drops" (Z.div a (Z.pow Z.two 5)) (Z.shift_right a 5)

let test_num_bits () =
  Alcotest.(check int) "zero" 0 (Z.num_bits Z.zero);
  Alcotest.(check int) "one" 1 (Z.num_bits Z.one);
  Alcotest.(check int) "255" 8 (Z.num_bits (z 255));
  Alcotest.(check int) "256" 9 (Z.num_bits (z 256));
  Alcotest.(check int) "2^100" 101 (Z.num_bits (Z.pow Z.two 100))

let test_pow () =
  check_z "2^10" (z 1024) (Z.pow Z.two 10);
  check_z "x^0" Z.one (Z.pow (z 12345) 0);
  check_z "3^40" (zs "12157665459056928801") (Z.pow (z 3) 40)

let test_powm () =
  let p = zs "1000000007" in
  (* Fermat: a^(p-1) = 1 mod p *)
  check_z "fermat" Z.one (Z.powm (z 123456789) (Z.pred p) p);
  check_z "zero exp" Z.one (Z.powm (z 5) Z.zero p);
  check_z "mod 1" Z.zero (Z.powm (z 5) (z 10) Z.one)

let test_egcd () =
  let a = zs "123456789123456789" and b = zs "987654321987654" in
  let g, x, y = Z.egcd a b in
  check_z "bezout" g (Z.add (Z.mul a x) (Z.mul b y));
  check_z "divides a" Z.zero (Z.erem a g);
  check_z "divides b" Z.zero (Z.erem b g)

let test_invm () =
  let p = zs "1000000007" in
  let a = z 123456 in
  let inv = Z.invm_exn a p in
  check_z "a * a^-1 = 1" Z.one (Z.mulm a inv p);
  Alcotest.(check bool) "non invertible" true (Z.invm (z 6) (z 9) = None)

let test_jacobi () =
  (* (a/p) agrees with Euler's criterion for odd primes. *)
  let p = z 1009 in
  for a = 1 to 50 do
    let ja = Z.jacobi (z a) p in
    let euler = Z.powm (z a) (Z.shift_right (Z.pred p) 1) p in
    let expected = if Z.equal euler Z.one then 1 else if Z.is_zero euler then 0 else -1 in
    Alcotest.(check int) (Printf.sprintf "jacobi %d/1009" a) expected ja
  done

let test_sqrtm () =
  let p = zs "1000003" in
  (* 1000003 mod 4 = 3 *)
  let a = z 1234 in
  let sq = Z.mulm a a p in
  (match Z.sqrtm_p3 sq p with
   | None -> Alcotest.fail "should have root"
   | Some r ->
     Alcotest.(check bool) "root" true (Z.equal r (Z.erem a p) || Z.equal r (Z.sub p (Z.erem a p))));
  (* A non-residue: find one by Jacobi. *)
  let nr = z 2 in
  if Z.jacobi nr p = -1 then
    Alcotest.(check bool) "non-residue" true (Z.sqrtm_p3 nr p = None)

let test_crt () =
  let x = Z.crt [ (z 2, z 3); (z 3, z 5); (z 2, z 7) ] in
  check_z "classic CRT" (z 23) x;
  let m1 = zs "1000003" and m2 = zs "1000033" in
  let v = zs "123456789012" in
  let x = Z.crt [ (Z.erem v m1, m1); (Z.erem v m2, m2) ] in
  check_z "two big moduli" (Z.erem v (Z.mul m1 m2)) x

let test_primality_known () =
  let primes = [ "2"; "3"; "5"; "101"; "1000000007"; "170141183460469231731687303715884105727" ] in
  let composites =
    [ "1"; "0"; "4"; "100"; "561"; "1105"; "6601"; (* Carmichael numbers *)
      "170141183460469231731687303715884105725" ]
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("prime " ^ s) true (Z.is_probable_prime test_rng (zs s)))
    primes;
  List.iter
    (fun s -> Alcotest.(check bool) ("composite " ^ s) false (Z.is_probable_prime test_rng (zs s)))
    composites

let test_random_prime () =
  let p = Z.random_prime test_rng ~bits:64 in
  Alcotest.(check int) "exact bits" 64 (Z.num_bits p);
  Alcotest.(check bool) "prime" true (Z.is_probable_prime test_rng p)

let test_random_below () =
  let bound = zs "1000000000000" in
  for _ = 1 to 50 do
    let v = Z.random_below test_rng bound in
    Alcotest.(check bool) "in range" true (Z.geq v Z.zero && Z.lt v bound)
  done

let test_nat_divmod_edge () =
  (* Exercise the add-back branch region with adversarial divisors. *)
  let a = Z.pred (Z.pow Z.two 260) in
  let b = Z.succ (Z.pow Z.two 130) in
  let q, r = Z.divmod a b in
  check_z "reconstruct" a (Z.add (Z.mul q b) r);
  Alcotest.(check bool) "bound" true (Z.lt r b)

(* --- Montgomery multiplication ------------------------------------------ *)

module Mont = Sagma_bigint.Montgomery

let big_odd_modulus =
  (* 2^192 - 237, a prime; comfortably over the dispatch threshold. *)
  Z.sub (Z.pow Z.two 192) (z 237)

let test_montgomery_limb_inverse () =
  List.iter
    (fun n0 ->
      let inv = Mont.limb_inverse n0 in
      Alcotest.(check int) (Printf.sprintf "inv %d" n0) 1 (n0 * inv land ((1 lsl 26) - 1)))
    [ 1; 3; 5; 1023; 12345677; 67108863 ]

let test_montgomery_roundtrip () =
  let ctx = Mont.make (Sagma_bigint.Nat.of_hex (Z.to_hex big_odd_modulus)) in
  List.iter
    (fun v ->
      let v = Z.erem v big_odd_modulus in
      let nat = Sagma_bigint.Nat.of_hex (Z.to_hex v) in
      let back = Mont.of_mont ctx (Mont.to_mont ctx nat) in
      Alcotest.(check string) "to/of mont" (Z.to_string v)
        (Sagma_bigint.Nat.to_string back))
    [ Z.zero; Z.one; z 123456789; Z.pred big_odd_modulus; Z.pow (z 3) 100 ]

let test_montgomery_powm_fermat () =
  (* a^(p-1) = 1 mod p through the Montgomery path. *)
  let a = zs "987654321987654321987654321" in
  check_z "fermat via montgomery" Z.one (Z.powm a (Z.pred big_odd_modulus) big_odd_modulus)

let test_montgomery_matches_small_path () =
  (* Same powm results whether or not Montgomery dispatches: compare a
     big odd modulus against brute iteration. *)
  let m = big_odd_modulus in
  let b = zs "314159265358979323846264338327950288419" in
  let rec naive acc e = if e = 0 then acc else naive (Z.mulm acc b m) (e - 1) in
  for e = 0 to 20 do
    check_z (Printf.sprintf "b^%d" e) (naive Z.one e) (Z.powm b (z e) m)
  done

(* --- qcheck properties --------------------------------------------------- *)

let small_int_gen = QCheck.int_range (-1_000_000_000) 1_000_000_000

(* Arbitrary bigints of up to ~200 bits, built from int chunks. *)
let big_gen =
  QCheck.make
    ~print:(fun l -> Z.to_string (snd l))
    QCheck.Gen.(
      list_size (int_range 1 7) (int_range 0 ((1 lsl 30) - 1)) >>= fun chunks ->
      bool >|= fun negative ->
      let v = List.fold_left (fun acc c -> Z.add (Z.shift_left acc 30) (Z.of_int c)) Z.zero chunks in
      ((negative, chunks), if negative then Z.neg v else v))

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let props =
  [ qprop "add matches int oracle" 500
      QCheck.(pair small_int_gen small_int_gen)
      (fun (a, b) -> Z.to_int_exn (Z.add (z a) (z b)) = a + b);
    qprop "mul matches int oracle" 500
      QCheck.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
      (fun (a, b) -> Z.to_int_exn (Z.mul (z a) (z b)) = a * b);
    qprop "divmod matches int oracle" 500
      QCheck.(pair small_int_gen (int_range 1 1000000))
      (fun (a, b) ->
        let q, r = Z.divmod (z a) (z b) in
        Z.to_int_exn q = a / b && Z.to_int_exn r = a mod b);
    qprop "string roundtrip" 300 big_gen
      (fun (_, v) -> Z.equal v (Z.of_string (Z.to_string v)));
    qprop "add commutative" 300 QCheck.(pair big_gen big_gen)
      (fun ((_, a), (_, b)) -> Z.equal (Z.add a b) (Z.add b a));
    qprop "add associative" 300 QCheck.(triple big_gen big_gen big_gen)
      (fun ((_, a), (_, b), (_, c)) ->
        Z.equal (Z.add (Z.add a b) c) (Z.add a (Z.add b c)));
    qprop "mul distributes over add" 300 QCheck.(triple big_gen big_gen big_gen)
      (fun ((_, a), (_, b), (_, c)) ->
        Z.equal (Z.mul a (Z.add b c)) (Z.add (Z.mul a b) (Z.mul a c)));
    qprop "sub inverse of add" 300 QCheck.(pair big_gen big_gen)
      (fun ((_, a), (_, b)) -> Z.equal a (Z.sub (Z.add a b) b));
    qprop "divmod reconstructs" 300 QCheck.(pair big_gen big_gen)
      (fun ((_, a), (_, b)) ->
        QCheck.assume (not (Z.is_zero b));
        let q, r = Z.divmod a b in
        Z.equal a (Z.add (Z.mul q b) r) && Z.lt (Z.abs r) (Z.abs b));
    qprop "erem in range" 300 QCheck.(pair big_gen big_gen)
      (fun ((_, a), (_, b)) ->
        QCheck.assume (not (Z.is_zero b));
        let r = Z.erem a b in
        Z.geq r Z.zero && Z.lt r (Z.abs b));
    qprop "compare antisymmetric" 300 QCheck.(pair big_gen big_gen)
      (fun ((_, a), (_, b)) -> Z.compare a b = -Z.compare b a);
    qprop "gcd divides both" 200 QCheck.(pair big_gen big_gen)
      (fun ((_, a), (_, b)) ->
        QCheck.assume (not (Z.is_zero a) || not (Z.is_zero b));
        let g = Z.gcd a b in
        Z.gt g Z.zero && Z.is_zero (Z.erem a g) && Z.is_zero (Z.erem b g));
    qprop "powm agrees with pow" 100
      QCheck.(triple (int_range 0 50) (int_range 0 12) (int_range 2 100000))
      (fun (b, e, m) ->
        Z.equal (Z.powm (z b) (z e) (z m)) (Z.erem (Z.pow (z b) e) (z m)));
    qprop "montgomery powm exponent law" 60 QCheck.(triple big_gen big_gen big_gen)
      (fun ((_, a), (_, e1), (_, e2)) ->
        (* a^(e1+e2) = a^e1 · a^e2 mod m, with a modulus big and odd
           enough to force the Montgomery dispatch path. *)
        let m = Z.succ (Z.shift_left (Z.abs a) 130) in
        let a = Z.abs e1 and e1 = Z.abs e1 and e2 = Z.abs e2 in
        Z.equal
          (Z.powm a (Z.add e1 e2) m)
          (Z.mulm (Z.powm a e1 m) (Z.powm a e2 m) m));
    qprop "invm correct when coprime" 200
      QCheck.(pair (int_range 1 1000000) (int_range 2 1000000))
      (fun (a, m) ->
        match Z.invm (z a) (z m) with
        | None -> not (Z.equal (Z.gcd (z a) (z m)) Z.one)
        | Some inv -> Z.equal Z.one (Z.mulm (z a) inv (z m)));
    qprop "shift roundtrip" 200 QCheck.(pair big_gen (int_range 0 100))
      (fun ((_, a), k) ->
        let a = Z.abs a in
        Z.equal a (Z.shift_right (Z.shift_left a k) k));
    qprop "hex roundtrip" 200 big_gen
      (fun (_, v) -> Z.equal v (Z.of_hex (Z.to_hex v)));
    qprop "num_bits bounds value" 200 big_gen
      (fun (_, v) ->
        let v = Z.abs v in
        let b = Z.num_bits v in
        if Z.is_zero v then b = 0
        else Z.lt v (Z.pow Z.two b) && Z.geq v (Z.pow Z.two (b - 1)));
  ]

let () =
  Alcotest.run "bigint"
    [ ( "unit",
        [ Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "add large" `Quick test_add_large;
          Alcotest.test_case "mul large" `Quick test_mul_large;
          Alcotest.test_case "karatsuba vs schoolbook" `Quick test_karatsuba_matches_schoolbook;
          Alcotest.test_case "divmod basic" `Quick test_divmod_basic;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "ediv_rem" `Quick test_ediv_rem;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "powm" `Quick test_powm;
          Alcotest.test_case "egcd" `Quick test_egcd;
          Alcotest.test_case "invm" `Quick test_invm;
          Alcotest.test_case "jacobi" `Quick test_jacobi;
          Alcotest.test_case "sqrtm p=3 mod 4" `Quick test_sqrtm;
          Alcotest.test_case "crt" `Quick test_crt;
          Alcotest.test_case "primality known values" `Quick test_primality_known;
          Alcotest.test_case "random prime" `Quick test_random_prime;
          Alcotest.test_case "random below" `Quick test_random_below;
          Alcotest.test_case "divmod adversarial" `Quick test_nat_divmod_edge;
        ] );
      ( "montgomery",
        [ Alcotest.test_case "limb inverse" `Quick test_montgomery_limb_inverse;
          Alcotest.test_case "roundtrip" `Quick test_montgomery_roundtrip;
          Alcotest.test_case "fermat" `Quick test_montgomery_powm_fermat;
          Alcotest.test_case "matches naive" `Quick test_montgomery_matches_small_path ] );
      ("properties", props);
    ]

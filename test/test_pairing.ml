(* Tests for the pairing substrate: F_p² field axioms, curve group laws,
   subgroup structure and (the critical one) bilinearity of the modified
   Tate pairing. *)

module Z = Sagma_bigint.Bigint
module Fp2 = Sagma_pairing.Fp2
module Curve = Sagma_pairing.Curve
module Pairing = Sagma_pairing.Pairing
module Drbg = Sagma_crypto.Drbg

let drbg = Drbg.create "pairing-tests"
let rng = Drbg.rng drbg

(* A small prime group order for fast tests (pairing subgroup of prime
   order keeps the subtleties while staying quick). *)
let n61 = Z.of_string "2305843009213693951" (* Mersenne prime 2^61 - 1 *)
let group = Pairing.make_group n61

(* A composite order n = q1*q2 as BGN uses. *)
let q1 = Z.of_string "1073741827"
let q2 = Z.of_string "1073741831"
let n_comp = Z.mul q1 q2
let group_comp = Pairing.make_group n_comp

let p = group.Pairing.p

let fp2_gen =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
    QCheck.Gen.(pair (int_range 0 1000000) (int_range 0 1000000))

let lift (a, b) = Fp2.make ~p (Z.of_int a) (Z.of_int b)

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* --- group construction ------------------------------------------------- *)

let test_group_params () =
  Alcotest.(check bool) "p prime" true (Z.is_probable_prime rng p);
  Alcotest.(check int) "p mod 4 = 3" 3 (Z.to_int_exn (Z.erem p (Z.of_int 4)));
  Alcotest.(check string) "p = l*n - 1" (Z.to_string (Z.pred (Z.mul group.Pairing.l group.Pairing.n)))
    (Z.to_string p);
  Alcotest.(check string) "final exp exact" "0"
    (Z.to_string (Z.erem (Z.pred (Z.mul p p)) group.Pairing.n))

(* --- Fp2 ---------------------------------------------------------------- *)

let fp2_props =
  [ qprop "fp2 mul commutative" 200 QCheck.(pair fp2_gen fp2_gen)
      (fun (a, b) ->
        let a = lift a and b = lift b in
        Fp2.equal (Fp2.mul ~p a b) (Fp2.mul ~p b a));
    qprop "fp2 mul associative" 200 QCheck.(triple fp2_gen fp2_gen fp2_gen)
      (fun (a, b, c) ->
        let a = lift a and b = lift b and c = lift c in
        Fp2.equal (Fp2.mul ~p (Fp2.mul ~p a b) c) (Fp2.mul ~p a (Fp2.mul ~p b c)));
    qprop "fp2 distributive" 200 QCheck.(triple fp2_gen fp2_gen fp2_gen)
      (fun (a, b, c) ->
        let a = lift a and b = lift b and c = lift c in
        Fp2.equal (Fp2.mul ~p a (Fp2.add ~p b c))
          (Fp2.add ~p (Fp2.mul ~p a b) (Fp2.mul ~p a c)));
    qprop "fp2 sqr = mul self" 200 fp2_gen
      (fun a ->
        let a = lift a in
        Fp2.equal (Fp2.sqr ~p a) (Fp2.mul ~p a a));
    qprop "fp2 inverse" 200 fp2_gen
      (fun a ->
        let a = lift a in
        QCheck.assume (not (Fp2.is_zero a));
        Fp2.is_one (Fp2.mul ~p a (Fp2.inv ~p a)));
    qprop "fp2 conj multiplicative norm" 200 fp2_gen
      (fun a ->
        let a = lift a in
        let nrm = Fp2.mul ~p a (Fp2.conj ~p a) in
        Z.equal nrm.Fp2.re (Fp2.norm ~p a) && Z.is_zero nrm.Fp2.im);
  ]

let test_fp2_pow () =
  let a = Fp2.make ~p (Z.of_int 3) (Z.of_int 7) in
  (* pow by small exponents agrees with iterated multiplication *)
  let rec naive k = if k = 0 then Fp2.one else Fp2.mul ~p a (naive (k - 1)) in
  for k = 0 to 12 do
    Alcotest.(check bool) (Printf.sprintf "pow %d" k) true
      (Fp2.equal (Fp2.pow ~p a (Z.of_int k)) (naive k))
  done

let test_fp2_fermat () =
  (* a^(p²−1) = 1 for a ≠ 0. *)
  let a = Fp2.make ~p (Z.of_int 12345) (Z.of_int 67890) in
  Alcotest.(check bool) "unit group order" true
    (Fp2.is_one (Fp2.pow ~p a (Z.pred (Z.mul p p))))

(* --- curve -------------------------------------------------------------- *)

let cp = group.Pairing.curve

let random_pt () = Curve.random_point cp rng

let test_curve_membership () =
  for _ = 1 to 10 do
    let pt = random_pt () in
    Alcotest.(check bool) "on curve" true (Curve.is_on_curve cp pt)
  done

let test_curve_group_laws () =
  let a = random_pt () and b = random_pt () and c = random_pt () in
  Alcotest.(check bool) "commutative" true
    (Curve.equal (Curve.add cp a b) (Curve.add cp b a));
  Alcotest.(check bool) "associative" true
    (Curve.equal (Curve.add cp (Curve.add cp a b) c) (Curve.add cp a (Curve.add cp b c)));
  Alcotest.(check bool) "identity" true (Curve.equal a (Curve.add cp a Curve.Infinity));
  Alcotest.(check bool) "inverse" true
    (Curve.is_infinity (Curve.add cp a (Curve.neg cp a)));
  Alcotest.(check bool) "double = add self" true
    (Curve.equal (Curve.double cp a) (Curve.add cp a a))

let test_curve_scalar_mul () =
  let a = random_pt () in
  (* k*P via double-and-add matches repeated addition. *)
  let rec rep k = if k = 0 then Curve.Infinity else Curve.add cp a (rep (k - 1)) in
  for k = 0 to 12 do
    Alcotest.(check bool) (Printf.sprintf "mul %d" k) true
      (Curve.equal (Curve.mul_int cp k a) (rep k))
  done;
  (* Distribution over scalar addition. *)
  let k1 = Z.of_int 123456 and k2 = Z.of_int 654321 in
  Alcotest.(check bool) "mul distributes" true
    (Curve.equal
       (Curve.mul cp (Z.add k1 k2) a)
       (Curve.add cp (Curve.mul cp k1 a) (Curve.mul cp k2 a)))

let test_curve_order () =
  (* #E(F_p) = p + 1: every point is killed by p + 1. *)
  let a = random_pt () in
  Alcotest.(check bool) "(p+1)P = O" true
    (Curve.is_infinity (Curve.mul cp (Z.succ p) a))

let test_subgroup_order () =
  let g = Pairing.random_order_n_point group rng in
  Alcotest.(check bool) "on curve" true (Curve.is_on_curve cp g);
  Alcotest.(check bool) "nontrivial" false (Curve.is_infinity g);
  Alcotest.(check bool) "order divides n" true
    (Curve.is_infinity (Curve.mul cp group.Pairing.n g))

(* --- pairing ------------------------------------------------------------ *)

let test_pairing_nondegenerate () =
  let g = Pairing.random_order_n_point group rng in
  let e = Pairing.pairing group g g in
  Alcotest.(check bool) "e(g,g) <> 1" false (Fp2.is_one e);
  Alcotest.(check bool) "e(g,g) in mu_n" true
    (Fp2.is_one (Fp2.pow ~p e group.Pairing.n))

let test_pairing_bilinear () =
  let g = Pairing.random_order_n_point group rng in
  let h = Pairing.random_order_n_point group rng in
  let a = Z.of_int 123457 and b = Z.of_int 987651 in
  let lhs = Pairing.pairing group (Curve.mul cp a g) (Curve.mul cp b h) in
  let rhs = Fp2.pow ~p (Pairing.pairing group g h) (Z.mul a b) in
  Alcotest.(check bool) "e(aP,bQ) = e(P,Q)^ab" true (Fp2.equal lhs rhs);
  (* Additivity in the first argument. *)
  let lhs2 = Pairing.pairing group (Curve.add cp g h) g in
  let rhs2 = Fp2.mul ~p (Pairing.pairing group g g) (Pairing.pairing group h g) in
  Alcotest.(check bool) "e(P+Q,R) = e(P,R)e(Q,R)" true (Fp2.equal lhs2 rhs2)

let test_pairing_identity () =
  let g = Pairing.random_order_n_point group rng in
  Alcotest.(check bool) "e(O,g) = 1" true
    (Fp2.is_one (Pairing.pairing group Curve.Infinity g));
  Alcotest.(check bool) "e(g,O) = 1" true
    (Fp2.is_one (Pairing.pairing group g Curve.Infinity))

let test_pairing_composite_order () =
  (* The BGN-relevant structure: in a group of order n = q1*q2, pairing a
     q1-order point with a q2-order point gives 1 after raising to q1. *)
  let cpc = group_comp.Pairing.curve in
  let pc = group_comp.Pairing.p in
  let g = Pairing.random_order_n_point group_comp rng in
  let h = Curve.mul cpc q2 g (* order q1 *) in
  let e_gg = Pairing.pairing group_comp g g in
  let e_gh = Pairing.pairing group_comp g h in
  Alcotest.(check bool) "e(g,h) = e(g,g)^q2" true
    (Fp2.equal e_gh (Fp2.pow ~p:pc e_gg q2));
  Alcotest.(check bool) "e(g,h)^q1 = 1" true
    (Fp2.is_one (Fp2.pow ~p:pc e_gh q1));
  Alcotest.(check bool) "e(g,g)^q1 <> 1" false
    (Fp2.is_one (Fp2.pow ~p:pc e_gg q1))

let test_pairing_bilinear_composite () =
  let cpc = group_comp.Pairing.curve in
  let pc = group_comp.Pairing.p in
  let g = Pairing.random_order_n_point group_comp rng in
  let a = Z.of_int 31337 and b = Z.of_int 271828 in
  let lhs = Pairing.pairing group_comp (Curve.mul cpc a g) (Curve.mul cpc b g) in
  let rhs = Fp2.pow ~p:pc (Pairing.pairing group_comp g g) (Z.mul a b) in
  Alcotest.(check bool) "bilinearity (composite)" true (Fp2.equal lhs rhs)

let () =
  Alcotest.run "pairing"
    [ ("group", [ Alcotest.test_case "parameters" `Quick test_group_params ]);
      ( "fp2",
        [ Alcotest.test_case "pow small" `Quick test_fp2_pow;
          Alcotest.test_case "fermat" `Quick test_fp2_fermat ]
        @ fp2_props );
      ( "curve",
        [ Alcotest.test_case "membership" `Quick test_curve_membership;
          Alcotest.test_case "group laws" `Quick test_curve_group_laws;
          Alcotest.test_case "scalar mul" `Quick test_curve_scalar_mul;
          Alcotest.test_case "curve order p+1" `Quick test_curve_order;
          Alcotest.test_case "subgroup order n" `Quick test_subgroup_order ] );
      ( "pairing",
        [ Alcotest.test_case "non-degenerate" `Quick test_pairing_nondegenerate;
          Alcotest.test_case "bilinear" `Quick test_pairing_bilinear;
          Alcotest.test_case "identity" `Quick test_pairing_identity;
          Alcotest.test_case "composite order structure" `Quick test_pairing_composite_order;
          Alcotest.test_case "bilinear composite" `Quick test_pairing_bilinear_composite ] );
    ]

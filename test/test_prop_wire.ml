(* Byte-level fuzzing of the wire layer: roundtrips of the Wire
   primitives and Serialize codecs, then truncation / mutation / garbage
   attacks on encoded protocol frames. The contract under attack:
   decoders raise only [Wire.Decode_error] or [Protocol.Version_mismatch]
   on malformed input, and [Server.handle_encoded] never lets any
   exception escape. *)

module W = Sagma_wire.Wire
module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module P = Sagma_protocol.Protocol
module Server = Sagma_protocol.Server
module Gen = Sagma_prop.Gen
module Shrink = Sagma_prop.Shrink
module R = Sagma_prop.Runner
open Sagma

(* A mutated Upload frame carries a mutated BGN modulus; cap the decoder's
   key-size ceiling so no fuzz case can start a large prime search. *)
let () = Serialize.max_pk_bits := 256

(* --- a small but complete corpus of valid frames ----------------------------- *)

let str s = Value.Str s
let vi i = Value.Int i

let schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt };
    { Table.name = "g"; ty = Value.TStr };
    { Table.name = "f"; ty = Value.TInt } ]

let table =
  let d = Drbg.create "prop-wire-data" in
  Table.of_rows schema
    (List.init 8 (fun _ ->
         [| vi (Drbg.int_below d 100);
            str [| "x"; "y"; "z" |].(Drbg.int_below d 3);
            vi (Drbg.int_below d 2) |]))

let config =
  Config.make ~bucket_size:2 ~max_group_attrs:1 ~filter_columns:[ "f" ]
    ~value_columns:[ "v" ] ~group_columns:[ "g" ] ()

let client =
  Scheme.setup config
    ~domains:[ ("g", [ str "x"; str "y"; str "z" ]) ]
    (Drbg.create "prop-wire-client")

let enc = Scheme.encrypt_table client table
let token = Scheme.token client (Query.make ~group_by:[ "g" ] (Query.Sum "v"))
let agg = Scheme.aggregate enc token

let append_row, append_keywords =
  Scheme.append_payload client ~values:[| 7 |] ~groups:[| str "y" |] ~filters:[ ("f", vi 1) ]

(* A populated metrics snapshot so the Stats_report frame exercises the
   histogram codec (buckets, quantiles, f64 fields). *)
let stats_report =
  let module M = Sagma_obs.Metrics in
  M.reset ();
  M.set_enabled true;
  M.add (M.counter "prop.wire") 3;
  M.observe (M.histogram "prop.wire_ms") 1.25;
  M.observe (M.histogram "prop.wire_ms") 40.0;
  M.set_enabled false;
  let snap = M.snapshot () in
  M.reset ();
  { P.sr_snapshot = snap; sr_audit = Sagma_obs.Audit.summary (); sr_uptime_s = 9.5;
    sr_start_time = 1234.0; sr_gc = None;
    (* v6 shard topology: encoded in the current-version corpus, dropped
       from the v1 reframings. *)
    sr_topology =
      Some
        { P.tp_role = "coordinator"; tp_shard_index = -1; tp_shard_count = 2;
          tp_shards = [ "7481"; "host:7482" ] } }

(* A v7 health report exercising every codec branch: an alert list, a
   mixed up/down shard block, empty and non-empty strings. *)
let health_report =
  { P.hr_status = "degraded"; hr_uptime_s = 33.25;
    hr_alerts =
      [ { Sagma_obs.Watchdog.a_rule = "error-rate"; a_since = 500.5; a_value = 0.8;
          a_threshold = 0.5; a_message = "error-rate breached" } ];
    hr_shards =
      [ { P.shc_index = 0; shc_endpoint = "7481"; shc_reachable = true; shc_since = 400.0;
          shc_failures = 0; shc_last_error = ""; shc_version = 7; shc_rtt_ms = 0.5 };
        { P.shc_index = 1; shc_endpoint = "host:7482"; shc_reachable = false;
          shc_since = 450.75; shc_failures = 4; shc_last_error = "Connection refused";
          shc_version = 5; shc_rtt_ms = 2.25 } ] }

let v1_requests =
  [ P.Upload { name = "t"; table = enc };
    P.Aggregate { name = "t"; token };
    P.Append { name = "t"; row = append_row; keywords = append_keywords; row_id = None };
    (* The v6 coordinator-stamped row id; older encodings drop it. *)
    P.Append { name = "t"; row = append_row; keywords = append_keywords; row_id = Some 8 };
    P.List_tables;
    P.Drop "t" ]

let v1_responses =
  [ P.Ack;
    P.Tables [ ("t", 8); ("u", 0) ];
    P.Aggregates agg;
    P.Failed { code = P.No_such_table; message = "no such table" } ]

let request_corpus = List.map P.encode_request (v1_requests @ [ P.Stats; P.Health ])
let response_corpus =
  List.map P.encode_response
    (v1_responses @ [ P.Stats_report stats_report; P.Health_report health_report ])

(* v1 reframings of every message that exists in v1: the v2 decoders
   must keep accepting these, and the fuzz contract holds for them too. *)
let v1_request_corpus = List.map (P.encode_request ~version:1) v1_requests
let v1_response_corpus = List.map (P.encode_response ~version:1) v1_responses

let all_requests = request_corpus @ v1_request_corpus
let all_responses = response_corpus @ v1_response_corpus
let corpus = all_requests @ all_responses

(* Decoders matching each corpus frame, index-aligned. *)
let decoder_of i : string -> unit =
  if i < List.length all_requests then fun s -> ignore (P.decode_request s)
  else fun s -> ignore (P.decode_response s)

(* --- primitive roundtrips ----------------------------------------------------- *)

let t_int_rt = R.test ~count:300 ~name:"put_int/get_int roundtrip"
    (R.arbitrary ~shrink:Shrink.int ~print:string_of_int
       (Gen.int_edgy (min_int + 1) max_int))
    (fun x -> W.decode W.get_int (W.encode W.put_int x) = x)

let t_u62_rt = R.test ~count:300 ~name:"put_u62/get_u62 roundtrip"
    (R.arbitrary ~shrink:Shrink.int ~print:string_of_int (Gen.int_edgy 0 max_int))
    (fun x -> W.decode W.get_u62 (W.encode W.put_u62 x) = x)

let t_u32_rt = R.test ~count:300 ~name:"put_u32/get_u32 roundtrip"
    (R.arbitrary ~shrink:Shrink.int ~print:string_of_int (Gen.int_edgy 0 0xFFFF_FFFF))
    (fun x -> W.decode W.get_u32 (W.encode W.put_u32 x) = x)

let t_bytes_rt = R.test ~count:300 ~name:"put_bytes/get_bytes roundtrip"
    (R.arbitrary ~shrink:Shrink.string ~print:String.escaped (Gen.bytes ()))
    (fun s -> W.decode W.get_bytes (W.encode W.put_bytes s) = s)

let t_compound_rt = R.test ~count:200 ~name:"list/option/pair roundtrip"
    (R.arbitrary
       ~shrink:(Shrink.pair (Shrink.list ~shrink_elt:Shrink.int ()) (Shrink.option Shrink.string))
       ~print:(fun (l, o) ->
         Printf.sprintf "([%s], %s)"
           (String.concat "; " (List.map string_of_int l))
           (match o with None -> "None" | Some s -> "Some " ^ String.escaped s))
       (Gen.pair (Gen.list ~max_len:20 (Gen.int_edgy (-1000) 1000))
          (Gen.oneof [ Gen.return None; Gen.map (fun s -> Some s) (Gen.bytes ()) ])))
    (fun (l, o) ->
      let put s (l, o) =
        W.put_pair s (fun s -> W.put_list s (fun s v -> W.put_int s v))
          (fun s -> W.put_option s W.put_bytes) (l, o)
      in
      let get s =
        W.get_pair s (fun s -> W.get_list s W.get_int) (fun s -> W.get_option s W.get_bytes)
      in
      W.decode get (W.encode put (l, o)) = (l, o))

let t_count_guard = R.test ~count:200 ~name:"get_count rejects oversized counts"
    (R.arbitrary
       ~print:(fun (n, extra) -> Printf.sprintf "count=%d extra=%d" n extra)
       (Gen.pair (Gen.int_edgy 1 0xFFFF_FFFF) (Gen.int_range 0 32)))
    (fun (n, extra) ->
      if extra >= n then raise R.Discard;
      let s = W.sink () in
      W.put_u32 s n;
      for _ = 1 to extra do W.put_u8 s 0 done;
      match W.decode (fun src -> W.get_list src W.get_u8) (W.contents s) with
      | _ -> false
      | exception W.Decode_error _ -> true)

let t_z_rt = R.test ~count:300 ~name:"put_z/get_z roundtrip"
    (R.arbitrary ~shrink:Shrink.bigint ~print:Z.to_string (Gen.bigint_signed ()))
    (fun z -> Z.equal (W.decode Serialize.get_z (W.encode Serialize.put_z z)) z)

let t_value_rt = R.test ~count:300 ~name:"put_value/get_value roundtrip"
    (R.arbitrary ~print:Value.to_string
       (Gen.oneof
          [ Gen.map (fun i -> Value.Int i) (Gen.int_edgy (-1000000) 1000000);
            Gen.map (fun s -> Value.Str s) (Gen.bytes ()) ]))
    (fun v -> Value.equal (W.decode Serialize.get_value (W.encode Serialize.put_value v)) v)

(* --- canonical encodings: decode then re-encode is byte-identical ------------- *)

let t_request_canonical = R.test ~count:40 ~name:"request encoding canonical"
    (R.arbitrary ~print:String.escaped (Gen.oneofl request_corpus))
    (fun frame -> P.encode_request (P.decode_request frame) = frame)

let t_response_canonical = R.test ~count:40 ~name:"response encoding canonical"
    (R.arbitrary ~print:String.escaped (Gen.oneofl response_corpus))
    (fun frame -> P.encode_response (P.decode_response frame) = frame)

let t_v1_canonical = R.test ~count:40 ~name:"v1 reframing canonical"
    (R.arbitrary ~print:String.escaped (Gen.oneofl v1_request_corpus))
    (fun frame -> P.encode_request ~version:1 (P.decode_request frame) = frame)

(* --- adversarial inputs ------------------------------------------------------- *)

let well_behaved (decode : string -> unit) (s : string) : bool =
  match decode s with
  | () -> true
  | exception W.Decode_error _ -> true
  | exception P.Version_mismatch _ -> true
  | exception e ->
      Printf.printf "    escaped exception: %s\n" (Printexc.to_string e);
      false

let frame_pick : (int * string) Gen.t =
  Gen.bind (Gen.int_below (List.length corpus)) (fun i ->
      Gen.return (i, List.nth corpus i))

let t_truncation = R.test ~count:150 ~name:"truncated frames fail cleanly"
    (R.arbitrary
       ~print:(fun (i, cut) -> Printf.sprintf "frame %d cut at %d" i cut)
       (Gen.bind frame_pick (fun (i, frame) ->
            Gen.map (fun cut -> (i, cut)) (Gen.int_below (String.length frame)))))
    (fun (i, cut) ->
      let frame = List.nth corpus i in
      let prefix = String.sub frame 0 cut in
      match decoder_of i prefix with
      | () -> false (* a strict prefix of a canonical frame cannot decode *)
      | exception W.Decode_error _ -> true
      | exception P.Version_mismatch _ -> true
      | exception e ->
          Printf.printf "    escaped exception: %s\n" (Printexc.to_string e);
          false)

let mutated_gen : (int * string) Gen.t =
 fun d ->
  let i, frame = frame_pick d in
  let b = Bytes.of_string frame in
  let hits = Gen.int_range 1 4 d in
  for _ = 1 to hits do
    Bytes.set b (Gen.int_below (Bytes.length b) d) (Char.chr (Gen.int_below 256 d))
  done;
  (i, Bytes.to_string b)

let t_mutation = R.test ~count:250 ~name:"mutated frames fail cleanly"
    (R.arbitrary
       ~print:(fun (i, s) -> Printf.sprintf "frame %d mutated to %s" i (String.escaped s))
       mutated_gen)
    (fun (i, s) -> well_behaved (decoder_of i) s)

let t_garbage = R.test ~count:300 ~name:"garbage never crashes the decoders"
    (R.arbitrary ~shrink:Shrink.string ~print:String.escaped (Gen.bytes ~max_len:200 ()))
    (fun s ->
      well_behaved (fun s -> ignore (P.decode_request s)) s
      && well_behaved (fun s -> ignore (P.decode_response s)) s)

(* v6 constructs (stamped append row ids, shard topology) reframed into
   a v5 frame must read as trailing garbage: the v5 layout ends before
   those bytes, so the decoder rejects the forgery instead of smuggling
   newer fields into an older frame. *)
let reframe v frame = String.mapi (fun i c -> if i = 2 then Char.chr v else c) frame

let t_v5_reframe = R.test ~count:1 ~name:"v6 bytes inside a v5 frame are trailing garbage"
    (R.arbitrary ~print:(fun () -> "()") (Gen.return ()))
    (fun () ->
      let append_v6 =
        P.encode_request
          (P.Append { name = "t"; row = append_row; keywords = append_keywords; row_id = Some 8 })
      in
      let stats_v6 = P.encode_response (P.Stats_report stats_report) in
      (match P.decode_request (reframe 5 append_v6) with
       | _ -> false
       | exception W.Decode_error _ -> true)
      &&
      match P.decode_response (reframe 5 stats_v6) with
      | _ -> false
      | exception W.Decode_error _ -> true)

(* Same forgery at the v7 boundary: a Health request (tag 7) and a
   Health_report (tag 6) reframed as v6 claim tags that version never
   defined, so both must be rejected — forged v6 frames cannot smuggle
   the fleet-health constructs to a v6 peer. *)
let t_v6_reframe = R.test ~count:1 ~name:"v7 bytes inside a v6 frame are trailing garbage"
    (R.arbitrary ~print:(fun () -> "()") (Gen.return ()))
    (fun () ->
      let health_v7 = P.encode_request P.Health in
      let report_v7 = P.encode_response (P.Health_report health_report) in
      (match P.decode_request (reframe 6 health_v7) with
       | _ -> false
       | exception W.Decode_error _ -> true)
      &&
      match P.decode_response (reframe 6 report_v7) with
      | _ -> false
      | exception W.Decode_error _ -> true)

(* --- the server absorbs anything ---------------------------------------------- *)

let server =
  let t = Server.create () in
  (match Server.handle t (P.Upload { name = "t"; table = enc }) with
  | P.Ack -> ()
  | _ -> failwith "upload failed");
  t

let server_absorbs (s : string) : bool =
  match Server.handle_encoded server s with
  | reply -> (
      match P.decode_response reply with
      | _ -> true
      | exception e ->
          Printf.printf "    undecodable reply: %s\n" (Printexc.to_string e);
          false)
  | exception e ->
      Printf.printf "    handle_encoded raised: %s\n" (Printexc.to_string e);
      false

let t_server_valid = R.test ~count:30 ~name:"server answers every valid request"
    (R.arbitrary ~print:String.escaped (Gen.oneofl all_requests))
    server_absorbs

let t_server_mutated = R.test ~count:200 ~name:"server absorbs mutated requests"
    (R.arbitrary
       ~print:(fun (i, s) -> Printf.sprintf "frame %d mutated to %s" i (String.escaped s))
       (Gen.bind (Gen.int_below (List.length all_requests)) (fun i ->
            fun d ->
             let frame = List.nth all_requests i in
             let b = Bytes.of_string frame in
             let hits = Gen.int_range 1 4 d in
             for _ = 1 to hits do
               Bytes.set b (Gen.int_below (Bytes.length b) d) (Char.chr (Gen.int_below 256 d))
             done;
             (i, Bytes.to_string b))))
    (fun (_, s) -> server_absorbs s)

let t_server_garbage = R.test ~count:200 ~name:"server absorbs garbage"
    (R.arbitrary ~shrink:Shrink.string ~print:String.escaped (Gen.bytes ~max_len:200 ()))
    server_absorbs

let () =
  R.run ~suite:"test_prop_wire"
    [ t_int_rt; t_u62_rt; t_u32_rt; t_bytes_rt; t_compound_rt; t_count_guard; t_z_rt;
      t_value_rt; t_request_canonical; t_response_canonical; t_v1_canonical; t_truncation;
      t_mutation; t_garbage; t_v5_reframe; t_v6_reframe; t_server_valid; t_server_mutated;
      t_server_garbage ]

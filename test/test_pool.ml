(* Tests for Sagma_pool: result ordering, exception propagation with
   backtraces, shutdown draining queued work, the inline workers=0 mode,
   and agreement between pooled and sequential aggregation. *)

module Pool = Sagma_pool.Pool
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
open Sagma

let with_pool ?(workers = 2) f =
  let p = Pool.create ~name:"test" ~workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_submit_await_order () =
  with_pool (fun p ->
      let futs = List.init 50 (fun i -> Pool.submit p (fun () -> i * i)) in
      Alcotest.(check (list int))
        "each future carries its own task's result"
        (List.init 50 (fun i -> i * i))
        (List.map Pool.await futs))

exception Boom of int

let test_exception_propagation () =
  with_pool ~workers:1 (fun p ->
      let f = Pool.submit p (fun () -> raise (Boom 7)) in
      (match Pool.await f with
       | _ -> Alcotest.fail "await should re-raise the task's exception"
       | exception Boom 7 -> ());
      (* A failed task must not take its worker down with it. *)
      Alcotest.(check int) "worker survives" 42 (Pool.await (Pool.submit p (fun () -> 42))))

let test_shutdown_drains_queue () =
  let p = Pool.create ~name:"drain" ~workers:1 () in
  let ran = Atomic.make 0 in
  (* The first task parks the single worker long enough for the rest to
     still be queued when shutdown is called. *)
  let futs =
    List.init 10 (fun i ->
        Pool.submit p (fun () ->
            if i = 0 then Unix.sleepf 0.05;
            Atomic.incr ran))
  in
  Pool.shutdown p;
  List.iter Pool.await futs;
  Alcotest.(check int) "queued tasks ran before shutdown returned" 10 (Atomic.get ran);
  (match Pool.submit p (fun () -> ()) with
   | _ -> Alcotest.fail "submit after shutdown should be rejected"
   | exception Invalid_argument _ -> ());
  (* Second shutdown is a no-op, not a crash. *)
  Pool.shutdown p

let test_inline_mode () =
  with_pool ~workers:0 (fun p ->
      Alcotest.(check int) "workers 0 runs inline" 0 (Pool.workers p);
      let seen = ref false in
      let f = Pool.submit p (fun () -> seen := true; 9) in
      Alcotest.(check bool) "ran during submit" true !seen;
      Alcotest.(check int) "await sees result" 9 (Pool.await f))

(* The server-side aggregation path: a shared pool must produce the same
   aggregates as the sequential and owned-domains variants. *)
let test_pooled_aggregate_matches () =
  let schema : Table.schema =
    [ { Table.name = "v"; ty = Value.TInt }; { Table.name = "g"; ty = Value.TStr } ]
  in
  let d = Drbg.create "pool-agg-data" in
  let table =
    Table.of_rows schema
      (List.init 24 (fun _ ->
           [| Value.Int (Drbg.int_below d 50);
              Value.Str [| "x"; "y"; "z" |].(Drbg.int_below d 3) |]))
  in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "v" ]
      ~group_columns:[ "g" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("g", [ Value.Str "x"; Value.Str "y"; Value.Str "z" ]) ]
      (Drbg.create "pool-agg-client")
  in
  let enc = Scheme.encrypt_table client table in
  let q = Query.make ~group_by:[ "g" ] (Query.Sum "v") in
  let results qr =
    List.map (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count)) qr
  in
  let expected = results (Scheme.query client enc q) in
  let check_res = Alcotest.(check (list (triple (list string) int int))) in
  with_pool ~workers:2 (fun p ->
      check_res "shared pool" expected (results (Scheme.query ~pool:p client enc q));
      (* The pool survives a query and answers the next one too. *)
      check_res "shared pool, second query" expected
        (results (Scheme.query ~pool:p client enc q)));
  check_res "owned domains" expected (results (Scheme.query ~domains:3 client enc q))

let () =
  Alcotest.run "pool"
    [ ( "pool",
        [ Alcotest.test_case "submit/await order" `Quick test_submit_await_order;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "shutdown drains queue" `Quick test_shutdown_drains_queue;
          Alcotest.test_case "inline workers=0" `Quick test_inline_mode ] );
      ( "aggregation",
        [ Alcotest.test_case "pooled = sequential" `Quick test_pooled_aggregate_matches ] ) ]

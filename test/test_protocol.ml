(* Tests for the serialization layer and the client/server protocol:
   codec roundtrips (including qcheck on the wire primitives), the
   key-free server handler, full client/server exchanges over a real
   socket pair, and client-state persistence. *)

module W = Sagma_wire.Wire
module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module P = Sagma_protocol.Protocol
module Server = Sagma_protocol.Server
module Transport = Sagma_protocol.Transport
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

(* --- wire primitives -------------------------------------------------------- *)

let test_wire_primitives () =
  let s = W.sink () in
  W.put_u8 s 255;
  W.put_u32 s 123456;
  W.put_int s (-42);
  W.put_int s max_int;
  W.put_bool s true;
  W.put_bytes s "hello\x00world";
  W.put_list s (fun s v -> W.put_int s v) [ 1; 2; 3 ];
  W.put_option s (fun s v -> W.put_bytes s v) (Some "x");
  W.put_option s (fun s v -> W.put_bytes s v) None;
  let src = W.source (W.contents s) in
  Alcotest.(check int) "u8" 255 (W.get_u8 src);
  Alcotest.(check int) "u32" 123456 (W.get_u32 src);
  Alcotest.(check int) "neg int" (-42) (W.get_int src);
  Alcotest.(check int) "max int" max_int (W.get_int src);
  Alcotest.(check bool) "bool" true (W.get_bool src);
  Alcotest.(check string) "bytes" "hello\x00world" (W.get_bytes src);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (W.get_list src W.get_int);
  Alcotest.(check (option string)) "some" (Some "x") (W.get_option src W.get_bytes);
  Alcotest.(check (option string)) "none" None (W.get_option src W.get_bytes);
  W.expect_end src

let test_wire_errors () =
  Alcotest.check_raises "truncated" (W.Decode_error "truncated input: need 4 bytes, have 0")
    (fun () -> ignore (W.get_u32 (W.source "")));
  Alcotest.check_raises "trailing" (W.Decode_error "trailing garbage: 1 bytes") (fun () ->
      ignore (W.decode W.get_u8 "ab"))

(* --- scheme-level roundtrips -------------------------------------------------- *)

let schema : Table.schema =
  [ { Table.name = "v"; ty = Value.TInt };
    { Table.name = "g"; ty = Value.TStr };
    { Table.name = "f"; ty = Value.TInt } ]

let table =
  let d = Drbg.create "protocol-data" in
  Table.of_rows schema
    (List.init 15 (fun _ ->
         [| vi (Drbg.int_below d 100);
            str [| "x"; "y"; "z" |].(Drbg.int_below d 3);
            vi (Drbg.int_below d 2) |]))

let config =
  Config.make ~bucket_size:2 ~max_group_attrs:1 ~filter_columns:[ "f" ]
    ~value_columns:[ "v" ] ~group_columns:[ "g" ] ()

let client =
  Scheme.setup config
    ~domains:[ ("g", [ str "x"; str "y"; str "z" ]) ]
    (Drbg.create "protocol-client")

let enc = Scheme.encrypt_table client table

let query = Query.make ~group_by:[ "g" ] (Query.Sum "v")

let results_of c e q =
  List.map
    (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
    (Scheme.query c e q)

let expected = results_of client enc query

let test_enc_table_roundtrip () =
  let encoded = Serialize.enc_table_to_string enc in
  let decoded = Serialize.enc_table_of_string encoded in
  (* Deterministic canonical encoding. *)
  Alcotest.(check string) "stable encoding" encoded (Serialize.enc_table_to_string decoded);
  (* The decoded table still answers queries correctly. *)
  Alcotest.(check (list (triple (list string) int int))) "still queryable" expected
    (results_of client decoded query)

let test_token_and_aggregate_roundtrip () =
  let tok = Scheme.token client query in
  let tok' = Serialize.token_of_string (Serialize.token_to_string tok) in
  let agg = Scheme.aggregate enc tok' in
  let agg' = Serialize.agg_result_of_string (Serialize.agg_result_to_string agg) in
  let results = Scheme.decrypt client tok' agg' ~total_rows:(Array.length enc.Scheme.rows) in
  Alcotest.(check (list (triple (list string) int int))) "through the wire" expected
    (List.map
       (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
       results)

let test_client_persistence () =
  let saved = Serialize.client_to_string client in
  let restored = Serialize.client_of_string ~drbg:(Drbg.create "restored-session") saved in
  (* The restored client can decrypt data encrypted by the original... *)
  Alcotest.(check (list (triple (list string) int int))) "restored decrypts" expected
    (results_of restored enc query);
  (* ...and encrypt new tables the original can query. *)
  let enc2 = Scheme.encrypt_table restored table in
  Alcotest.(check (list (triple (list string) int int))) "restored encrypts" expected
    (results_of client enc2 query)

let test_corrupted_input_rejected () =
  let encoded = Serialize.token_to_string (Scheme.token client query) in
  let truncated = String.sub encoded 0 (String.length encoded - 3) in
  Alcotest.(check bool) "truncation detected" true
    (try
       ignore (Serialize.token_of_string truncated);
       false
     with W.Decode_error _ -> true)

(* --- server handler ------------------------------------------------------------ *)

let test_server_handler () =
  let state = Server.create () in
  Alcotest.(check bool) "upload" true
    (Server.handle state (P.Upload { name = "t"; table = enc }) = P.Ack);
  (match Server.handle state P.List_tables with
   | P.Tables [ ("t", 15) ] -> ()
   | _ -> Alcotest.fail "bad listing");
  let tok = Scheme.token client query in
  (match Server.handle state (P.Aggregate { name = "t"; token = tok }) with
   | P.Aggregates agg ->
     let results = Scheme.decrypt client tok agg ~total_rows:15 in
     Alcotest.(check (list (triple (list string) int int))) "server aggregate" expected
       (List.map
          (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
          results)
   | _ -> Alcotest.fail "expected aggregates");
  (match Server.handle state (P.Aggregate { name = "missing"; token = tok }) with
   | P.Failed _ -> ()
   | _ -> Alcotest.fail "expected failure");
  Alcotest.(check bool) "drop" true (Server.handle state (P.Drop "t") = P.Ack);
  (match Server.handle state (P.Drop "t") with
   | P.Failed _ -> ()
   | _ -> Alcotest.fail "double drop")

let test_server_remote_append () =
  let state = Server.create () in
  ignore (Server.handle state (P.Upload { name = "t"; table = enc }));
  let row, keywords =
    Scheme.append_payload client ~values:[| 55 |] ~groups:[| str "x" |]
      ~filters:[ ("f", vi 0) ]
  in
  Alcotest.(check bool) "append ok" true
    (Server.handle state (P.Append { name = "t"; row; keywords; row_id = None }) = P.Ack);
  let tok = Scheme.token client query in
  match Server.handle state (P.Aggregate { name = "t"; token = tok }) with
  | P.Aggregates agg ->
    let results = Scheme.decrypt client tok agg ~total_rows:16 in
    let x_row =
      List.find (fun r -> r.Scheme.group = [ str "x" ]) results
    in
    let x_before = List.find (fun (g, _, _) -> g = [ "x" ]) expected in
    let _, sum_before, count_before = x_before in
    Alcotest.(check int) "sum grew" (sum_before + 55) x_row.Scheme.sum;
    Alcotest.(check int) "count grew" (count_before + 1) x_row.Scheme.count
  | _ -> Alcotest.fail "expected aggregates"

let test_malformed_request () =
  let state = Server.create () in
  let raw = Server.handle_encoded state "\xff\x00garbage" in
  (* An undecodable frame tells us nothing about the peer's version, so
     the failure is framed at min_version for maximum reach. *)
  Alcotest.(check int) "failure framed at min_version" P.min_version (Char.code raw.[2]);
  match P.decode_response raw with
  | P.Failed { code; message } ->
    Alcotest.(check string) "bad-request code" "bad-request" (P.error_code_to_string code);
    Alcotest.(check bool) "mentions malformed" true
      (String.length message >= 9 && String.sub message 0 9 = "malformed")
  | _ -> Alcotest.fail "expected failure"

(* --- versioned framing ---------------------------------------------------------- *)

let test_version_prefix () =
  (* Every frame opens with the magic and the current version byte. *)
  let req = P.encode_request P.List_tables in
  Alcotest.(check string) "request magic" P.magic (String.sub req 0 2);
  Alcotest.(check int) "request version" P.version (Char.code req.[2]);
  let resp = P.encode_response P.Ack in
  Alcotest.(check string) "response magic" P.magic (String.sub resp 0 2);
  Alcotest.(check int) "response version" P.version (Char.code resp.[2]);
  (* And both round-trip. *)
  Alcotest.(check bool) "request roundtrip" true (P.decode_request req = P.List_tables);
  Alcotest.(check bool) "response roundtrip" true (P.decode_response resp = P.Ack)

let flip_version (frame : string) ~(v : int) : string =
  String.mapi (fun i c -> if i = 2 then Char.chr v else c) frame

let test_old_frame_rejected () =
  (* A frame carrying another version must raise the typed exception,
     not misparse: flip the version byte of a valid frame. *)
  let req = flip_version (P.encode_request P.List_tables) ~v:(P.version + 1) in
  Alcotest.check_raises "future version"
    (P.Version_mismatch { expected = P.version; got = P.version + 1 })
    (fun () -> ignore (P.decode_request req));
  let old = flip_version (P.encode_request (P.Drop "t")) ~v:0 in
  Alcotest.check_raises "version 0"
    (P.Version_mismatch { expected = P.version; got = 0 })
    (fun () -> ignore (P.decode_request old));
  (* A frame without the magic is not a SAGMA frame at all. *)
  (match P.decode_request ("XX" ^ String.make 3 '\x01') with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "bad magic accepted")

let test_encoder_version_bounds () =
  (* Encoders refuse out-of-range versions outright instead of silently
     emitting a frame every conforming decoder rejects. *)
  List.iter
    (fun v ->
      match P.encode_request ~version:v P.List_tables with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "request encoded at unsupported version %d" v)
    [ 0; P.version + 1 ];
  List.iter
    (fun v ->
      match P.encode_response ~version:v P.Ack with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "response encoded at unsupported version %d" v)
    [ 0; P.version + 1 ]

let test_server_rejects_old_frame () =
  (* The server answers a mismatched frame with a current-version
     structured failure rather than crashing the connection. *)
  let state = Server.create () in
  let old = flip_version (P.encode_request P.List_tables) ~v:(P.version + 3) in
  match P.decode_response (Server.handle_encoded state old) with
  | P.Failed { code = P.Version_unsupported; _ } -> ()
  | P.Failed { code; _ } ->
    Alcotest.failf "wrong code %s" (P.error_code_to_string code)
  | _ -> Alcotest.fail "expected failure"

(* --- v1 compatibility ------------------------------------------------------------ *)

let decode_with state req = P.decode_response (Server.handle_encoded state req)

let test_v1_frames_still_served () =
  (* A v2 server keeps answering v1-encoded requests: every v1 message
     uses the same tag and payload encoding in v2. *)
  let state = Server.create () in
  let send req = decode_with state (P.encode_request ~version:1 req) in
  Alcotest.(check int) "v1 frame carries version byte 1" 1
    (Char.code (P.encode_request ~version:1 P.List_tables).[2]);
  (* The reply to a v1 request must itself be a v1 frame — a real v1
     client's decoder rejects any other version byte, even on an Ack to
     its own request. *)
  Alcotest.(check int) "v1 request answered with a v1 frame" 1
    (Char.code (Server.handle_encoded state (P.encode_request ~version:1 P.List_tables)).[2]);
  Alcotest.(check int) "v2 request answered with a v2 frame" 2
    (Char.code (Server.handle_encoded state (P.encode_request ~version:2 P.List_tables)).[2]);
  Alcotest.(check bool) "v1 upload" true (send (P.Upload { name = "t"; table = enc }) = P.Ack);
  (match send P.List_tables with
   | P.Tables [ ("t", 15) ] -> ()
   | _ -> Alcotest.fail "bad listing for v1 client");
  let tok = Scheme.token client query in
  (match send (P.Aggregate { name = "t"; token = tok }) with
   | P.Aggregates agg ->
     let results = Scheme.decrypt client tok agg ~total_rows:15 in
     Alcotest.(check (list (triple (list string) int int))) "v1 aggregate" expected
       (List.map
          (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
          results)
   | _ -> Alcotest.fail "expected aggregates for v1 client");
  Alcotest.(check bool) "v1 drop" true (send (P.Drop "t") = P.Ack);
  (* Anything past the current version still gets the typed rejection. *)
  let future = flip_version (P.encode_request P.List_tables) ~v:9 in
  Alcotest.check_raises "future version rejected"
    (P.Version_mismatch { expected = P.version; got = 9 })
    (fun () -> ignore (P.decode_request future));
  (match decode_with state future with
   | P.Failed { code = P.Version_unsupported; _ } -> ()
   | _ -> Alcotest.fail "server accepted a future version");
  (* When the claimed version is unknown, the rejection is framed at
     min_version — the one framing any conforming peer can read. *)
  Alcotest.(check int) "version rejection framed at min_version" P.min_version
    (Char.code (Server.handle_encoded state future).[2])

let test_v2_only_messages_gated () =
  (* Stats does not exist in v1: encoders refuse to emit it... *)
  (match P.encode_request ~version:1 P.Stats with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Stats encoded into a v1 frame");
  (match
     P.encode_response ~version:1
       (P.Stats_report
          { P.sr_snapshot = { Sagma_obs.Metrics.counters = []; gauges = []; histograms = [] };
            sr_audit = Sagma_obs.Audit.summary (); sr_uptime_s = 0.; sr_start_time = 0.;
            sr_gc = None; sr_topology = None })
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Stats_report encoded into a v1 frame");
  (* ...and a forged v1 frame carrying the v2-only tag is malformed —
     a decode error, not a version mismatch. *)
  let forged = flip_version (P.encode_request P.Stats) ~v:1 in
  (match P.decode_request forged with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "v2-only tag accepted inside a v1 frame")

let test_stats_roundtrip () =
  let module M = Sagma_obs.Metrics in
  let module A = Sagma_obs.Audit in
  M.reset ();
  M.set_enabled true;
  M.add (M.counter "test.proto_stats") 7;
  let h = M.histogram "test.proto_stats_ms" in
  M.observe h 0.5;
  M.observe h 12.0;
  M.set_enabled false;
  let report =
    { P.sr_snapshot = M.snapshot (); sr_audit = A.summary (); sr_uptime_s = 12.5;
      sr_start_time = 1000.25; sr_gc = None; sr_topology = None }
  in
  M.reset ();
  Alcotest.(check bool) "Stats roundtrips" true
    (P.decode_request (P.encode_request P.Stats) = P.Stats);
  let resp = P.Stats_report report in
  (match P.decode_response (P.encode_response resp) with
   | P.Stats_report r ->
     Alcotest.(check bool) "snapshot survives the wire" true (r.P.sr_snapshot = report.P.sr_snapshot);
     Alcotest.(check bool) "audit summary survives the wire" true (r.P.sr_audit = report.P.sr_audit);
     Alcotest.(check (float 1e-9)) "uptime survives the wire" 12.5 r.P.sr_uptime_s;
     Alcotest.(check (float 1e-9)) "start time survives the wire" 1000.25 r.P.sr_start_time
   | _ -> Alcotest.fail "expected Stats_report")

let test_stats_via_server () =
  let module M = Sagma_obs.Metrics in
  let state = Server.create () in
  M.reset ();
  M.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled false;
      M.reset ())
    (fun () ->
      (* Generate some request traffic, then ask for the numbers. *)
      ignore (decode_with state (P.encode_request P.List_tables));
      match decode_with state (P.encode_request P.Stats) with
      | P.Stats_report { P.sr_snapshot; _ } ->
        let requests = List.assoc_opt "proto.requests" sr_snapshot.M.counters in
        Alcotest.(check bool) "proto.requests counted" true
          (match requests with Some n -> n >= 1 | None -> false);
        Alcotest.(check bool) "request latency histogram present" true
          (List.mem_assoc "proto.request_ms" sr_snapshot.M.histograms)
      | _ -> Alcotest.fail "expected Stats_report from the server")

let test_error_code_roundtrip () =
  List.iter
    (fun code ->
      let resp = P.Failed { code; message = "m" } in
      Alcotest.(check bool)
        (P.error_code_to_string code)
        true
        (P.decode_response (P.encode_response resp) = resp))
    [ P.No_such_table; P.Bad_request; P.Unsupported; P.Version_unsupported;
      P.Internal_error; P.Busy ]

let test_v3_only_constructs_gated () =
  (* Busy does not exist before v3: encoders refuse to emit it... *)
  (match P.encode_response ~version:2 (P.Failed { code = P.Busy; message = "m" }) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Busy encoded into a v2 frame");
  (* ...and a forged v2 frame carrying error code 5 is malformed. *)
  let forged = flip_version (P.encode_response (P.Failed { code = P.Busy; message = "m" })) ~v:2 in
  (match P.decode_response forged with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "v3-only error code accepted inside a v2 frame");
  (* Stats_report gauges travel only in v3 frames: a v2 encoding drops
     them and decodes to an empty gauge list. *)
  let module M = Sagma_obs.Metrics in
  let report =
    { P.sr_snapshot =
        { M.counters = [ ("c", 1) ]; gauges = [ ("g", 2) ]; histograms = [] };
      sr_audit = Sagma_obs.Audit.summary (); sr_uptime_s = 3.5; sr_start_time = 77.;
      sr_gc = None; sr_topology = None }
  in
  (match P.decode_response (P.encode_response ~version:2 (P.Stats_report report)) with
   | P.Stats_report r ->
     Alcotest.(check bool) "counters survive a v2 frame" true
       (r.P.sr_snapshot.M.counters = [ ("c", 1) ]);
     Alcotest.(check bool) "gauges dropped from a v2 frame" true
       (r.P.sr_snapshot.M.gauges = [])
   | _ -> Alcotest.fail "expected Stats_report");
  (match P.decode_response (P.encode_response (P.Stats_report report)) with
   | P.Stats_report r ->
     Alcotest.(check bool) "gauges survive a v3 frame" true
       (r.P.sr_snapshot.M.gauges = [ ("g", 2) ])
   | _ -> Alcotest.fail "expected Stats_report")

(* --- v4: trace contexts, EXPLAIN trailers, Trace_dump ---------------------------- *)

module Trace = Sagma_obs.Trace

let sample_cost =
  { Trace.pairings = 1; miller_steps = 2; bgn_mul = 3; dlog_solves = 4; dlog_giant_steps = 5;
    sse_postings = 6; agg_rows = 7; agg_buckets = 8; bytes_in = 9; bytes_out = 10 }

(* Patch the tag byte of a frame whose header is magic(2) + version(1):
   v1–v3 frames put the tag right after the header. *)
let flip_tag (frame : string) ~(tag : int) : string =
  String.mapi (fun i c -> if i = 3 then Char.chr tag else c) frame

let test_v4_only_constructs_gated () =
  (* Trace contexts, Traces/Trace_dump and EXPLAIN trailers do not exist
     before v4: encoders refuse to emit them... *)
  (match P.encode_request ~version:3 ~trace:{ P.tc_id = None; tc_sampled = true } P.Stats with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "trace context encoded into a v3 frame");
  (match P.encode_request ~version:3 P.Traces with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Traces encoded into a v3 frame");
  (match P.encode_response ~version:3 (P.Trace_dump []) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Trace_dump encoded into a v3 frame");
  (match
     P.encode_response ~version:3
       ~explain:{ P.x_id = "t"; x_timings = []; x_cost = sample_cost; x_gc = None } P.Ack
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "explain trailer encoded into a v3 frame");
  (* ...and forged v3 frames carrying the v4-only tags are malformed —
     a decode error, not a version mismatch. *)
  let forged_req = flip_tag (P.encode_request ~version:3 P.List_tables) ~tag:6 in
  (match P.decode_request forged_req with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "v4-only request tag accepted inside a v3 frame");
  let forged_resp = flip_tag (P.encode_response ~version:3 P.Ack) ~tag:5 in
  (match P.decode_response forged_resp with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "v4-only response tag accepted inside a v3 frame");
  (* Uptime travels only in v4 Stats_report frames: a v3 encoding drops
     it and decodes to 0. *)
  let module M = Sagma_obs.Metrics in
  let report =
    { P.sr_snapshot = { M.counters = []; gauges = []; histograms = [] };
      sr_audit = Sagma_obs.Audit.summary (); sr_uptime_s = 42.0; sr_start_time = 99.0;
      sr_gc = None; sr_topology = None }
  in
  (match P.decode_response (P.encode_response ~version:3 (P.Stats_report report)) with
   | P.Stats_report r ->
     Alcotest.(check (float 1e-9)) "uptime dropped from a v3 frame" 0. r.P.sr_uptime_s;
     Alcotest.(check (float 1e-9)) "start time dropped from a v3 frame" 0. r.P.sr_start_time
   | _ -> Alcotest.fail "expected Stats_report")

let test_v4_trace_ctx_roundtrip () =
  (* A request carrying a trace context: id and sampling flag survive,
     and the version/trace-aware decoder exposes them. *)
  let tc = { P.tc_id = Some "client-7"; tc_sampled = true } in
  (match P.decode_request_vt (P.encode_request ~trace:tc P.Stats) with
   | v, Some tc', P.Stats when v = P.version ->
     Alcotest.(check (option string)) "trace id" (Some "client-7") tc'.P.tc_id;
     Alcotest.(check bool) "sampling flag" true tc'.P.tc_sampled
   | _ -> Alcotest.fail "trace context lost on the wire");
  (* Without a context the current-version frame still decodes (None),
     and the plain decoder keeps working on the same bytes. *)
  (match P.decode_request_vt (P.encode_request P.List_tables) with
   | v, None, P.List_tables when v = P.version -> ()
   | _ -> Alcotest.fail "bare v4 request misdecoded");
  Alcotest.(check bool) "plain decoder drops the context" true
    (P.decode_request (P.encode_request ~trace:tc P.Stats) = P.Stats);
  (* Traces request roundtrips. *)
  Alcotest.(check bool) "Traces roundtrips" true
    (P.decode_request (P.encode_request P.Traces) = P.Traces)

let test_v4_explain_roundtrip () =
  let x =
    { P.x_id = "t99-1"; x_timings = [ ("aggregate", 1.5); ("decrypt", 0.25) ];
      x_cost = sample_cost; x_gc = None }
  in
  (match P.decode_response_x (P.encode_response ~explain:x P.Ack) with
   | P.Ack, Some x' ->
     Alcotest.(check string) "explain id" "t99-1" x'.P.x_id;
     Alcotest.(check (list (pair string (float 1e-9)))) "phase timings"
       x.P.x_timings x'.P.x_timings;
     Alcotest.(check bool) "cost block" true (x'.P.x_cost = sample_cost)
   | _ -> Alcotest.fail "explain trailer lost on the wire");
  (* No trailer: v4 frames still carry the (empty) option; old decoders
     of the same response constructor keep working at v3. *)
  (match P.decode_response_x (P.encode_response P.Ack) with
   | P.Ack, None -> ()
   | _ -> Alcotest.fail "bare v4 response misdecoded");
  Alcotest.(check bool) "v3 Ack still decodes" true
    (P.decode_response (P.encode_response ~version:3 P.Ack) = P.Ack)

let test_v4_trace_dump_roundtrip () =
  let leaf = { Trace.name = "pairing_loop"; t0 = 10.5; ms = 3.25; children = [] } in
  let mid = { Trace.name = "aggregate"; t0 = 10.0; ms = 5.0; children = [ leaf ] } in
  let root = { Trace.name = "request"; t0 = 9.5; ms = 6.0; children = [ mid ] } in
  let rt =
    { Trace.r_id = "t1-1"; r_start = 9.5; r_root = root; r_cost = sample_cost;
      r_gc = Trace.zero_gc; r_alloc = [] }
  in
  (match P.decode_response (P.encode_response (P.Trace_dump [ rt ])) with
   | P.Trace_dump [ rt' ] ->
     Alcotest.(check string) "trace id" "t1-1" rt'.Trace.r_id;
     Alcotest.(check bool) "span tree survives" true (rt'.Trace.r_root = root);
     Alcotest.(check bool) "cost survives" true (rt'.Trace.r_cost = sample_cost)
   | _ -> Alcotest.fail "expected Trace_dump");
  (* A forged frame with a pathologically deep span tree is rejected
     instead of recursing the decoder off the stack. *)
  let deep =
    let rec build n acc =
      if n = 0 then acc
      else build (n - 1) { Trace.name = "d"; t0 = 0.; ms = 0.; children = [ acc ] }
    in
    build 80 { Trace.name = "leaf"; t0 = 0.; ms = 0.; children = [] }
  in
  let rt_deep =
    { Trace.r_id = "deep"; r_start = 0.; r_root = deep; r_cost = sample_cost;
      r_gc = Trace.zero_gc; r_alloc = [] }
  in
  (match P.decode_response (P.encode_response (P.Trace_dump [ rt_deep ])) with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "80-deep span tree decoded")

(* --- v5: GC telemetry on the wire ------------------------------------------------ *)

let sample_gc =
  { Trace.gc_minor_words = 4096; gc_promoted_words = 512; gc_major_words = 768;
    gc_minor_collections = 3; gc_major_collections = 1; gc_heap_words = 65536;
    gc_heap_growth = 8192 }

let sample_gc_stats =
  { P.gs_minor_words = 1e6; gs_promoted_words = 2e5; gs_major_words = 3e5;
    gs_minor_collections = 17; gs_major_collections = 4; gs_compactions = 1;
    gs_heap_words = 1 lsl 20; gs_top_heap_words = 1 lsl 21 }

let empty_snapshot = { Sagma_obs.Metrics.counters = []; gauges = []; histograms = [] }

let test_v5_gc_roundtrip () =
  (* Stats_report heap stats survive a v5 frame... *)
  let report =
    { P.sr_snapshot = empty_snapshot; sr_audit = Sagma_obs.Audit.summary ();
      sr_uptime_s = 1.5; sr_start_time = 10.; sr_gc = Some sample_gc_stats; sr_topology = None }
  in
  (match P.decode_response (P.encode_response (P.Stats_report report)) with
   | P.Stats_report r ->
     Alcotest.(check bool) "gc stats survive a v5 frame" true (r.P.sr_gc = Some sample_gc_stats)
   | _ -> Alcotest.fail "expected Stats_report");
  (* ...the EXPLAIN trailer's gc differential survives... *)
  let x = { P.x_id = "x"; x_timings = []; x_cost = sample_cost; x_gc = Some sample_gc } in
  (match P.decode_response_x (P.encode_response ~explain:x P.Ack) with
   | P.Ack, Some x' ->
     Alcotest.(check bool) "explain gc survives a v5 frame" true (x'.P.x_gc = Some sample_gc)
   | _ -> Alcotest.fail "explain trailer lost on the wire");
  (* ...and so do the trace dump's gc block and allocation table. *)
  let root = { Trace.name = "request"; t0 = 0.; ms = 1.; children = [] } in
  let rt =
    { Trace.r_id = "t5-1"; r_start = 0.; r_root = root; r_cost = sample_cost;
      r_gc = sample_gc; r_alloc = [ ("pairing_loop", 4000); ("filter", 96) ] }
  in
  (match P.decode_response (P.encode_response (P.Trace_dump [ rt ])) with
   | P.Trace_dump [ rt' ] ->
     Alcotest.(check bool) "trace gc survives" true (rt'.Trace.r_gc = sample_gc);
     Alcotest.(check bool) "alloc table survives" true
       (rt'.Trace.r_alloc = [ ("pairing_loop", 4000); ("filter", 96) ])
   | _ -> Alcotest.fail "expected Trace_dump")

let test_v5_only_constructs_gated () =
  (* GC telemetry travels only in v5 frames: v4 encodings silently drop
     it — the same discipline as v4's uptime in v3 frames. *)
  let report =
    { P.sr_snapshot = empty_snapshot; sr_audit = Sagma_obs.Audit.summary ();
      sr_uptime_s = 2.; sr_start_time = 20.; sr_gc = Some sample_gc_stats; sr_topology = None }
  in
  (match P.decode_response (P.encode_response ~version:4 (P.Stats_report report)) with
   | P.Stats_report r ->
     Alcotest.(check bool) "gc stats dropped from a v4 frame" true (r.P.sr_gc = None);
     Alcotest.(check (float 1e-9)) "uptime still travels at v4" 2. r.P.sr_uptime_s
   | _ -> Alcotest.fail "expected Stats_report");
  let x = { P.x_id = "x"; x_timings = []; x_cost = sample_cost; x_gc = Some sample_gc } in
  (match P.decode_response_x (P.encode_response ~version:4 ~explain:x P.Ack) with
   | P.Ack, Some x' ->
     Alcotest.(check bool) "explain gc dropped from a v4 frame" true (x'.P.x_gc = None)
   | _ -> Alcotest.fail "explain trailer lost in a v4 frame");
  let root = { Trace.name = "request"; t0 = 0.; ms = 1.; children = [] } in
  let rt =
    { Trace.r_id = "t5-2"; r_start = 0.; r_root = root; r_cost = sample_cost;
      r_gc = sample_gc; r_alloc = [ ("pairing_loop", 4000) ] }
  in
  (match P.decode_response (P.encode_response ~version:4 (P.Trace_dump [ rt ])) with
   | P.Trace_dump [ rt' ] ->
     Alcotest.(check bool) "trace gc dropped at v4" true (rt'.Trace.r_gc = Trace.zero_gc);
     Alcotest.(check bool) "alloc table dropped at v4" true (rt'.Trace.r_alloc = [])
   | _ -> Alcotest.fail "expected Trace_dump");
  (* A forged v4 frame that still carries the v5 gc bytes is malformed:
     the v4 layout ends before them, so the decoder reports trailing
     garbage instead of smuggling newer fields into an older frame. *)
  let forged = flip_version (P.encode_response (P.Stats_report report)) ~v:4 in
  (match P.decode_response forged with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "v5 gc bytes accepted inside a v4 frame");
  let forged_x = flip_version (P.encode_response ~explain:x P.Ack) ~v:4 in
  (match P.decode_response_x forged_x with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "v5 explain gc accepted inside a v4 frame")

(* --- transport over a real socket pair ------------------------------------------- *)

let test_socket_roundtrip () =
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let state = Server.create () in
  let server_thread = Thread.create (fun () -> Transport.serve_connection (Server.handle_encoded state) server_fd) () in
  (* Upload, list, aggregate, drop — all over the framed byte stream. *)
  Alcotest.(check bool) "upload" true
    (Transport.call client_fd (P.Upload { name = "remote"; table = enc }) = P.Ack);
  (match Transport.call client_fd P.List_tables with
   | P.Tables [ ("remote", 15) ] -> ()
   | _ -> Alcotest.fail "bad listing");
  let tok = Scheme.token client query in
  (match Transport.call client_fd (P.Aggregate { name = "remote"; token = tok }) with
   | P.Aggregates agg ->
     let results = Scheme.decrypt client tok agg ~total_rows:15 in
     Alcotest.(check (list (triple (list string) int int))) "socket aggregate" expected
       (List.map
          (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
          results)
   | _ -> Alcotest.fail "expected aggregates");
  Unix.close client_fd;
  Thread.join server_thread;
  Unix.close server_fd

(* --- concurrent serving (listen_and_serve + domain pool) ------------------------ *)

(* A live TCP server on [port] with table "t" preloaded, torn down
   gracefully (stop flag + drain) when [f] returns. *)
let with_live_server ?(workers = 2) ?(max_conns = 16) ?(request_timeout_ms = 0) ?max_frame
    ?(trace_sample = 0) ?(slow_query_ms = 0.) ~port f =
  let state = Server.create ~trace_sample ~slow_query_ms () in
  (match Server.handle state (P.Upload { name = "t"; table = enc }) with
   | P.Ack -> ()
   | _ -> Alcotest.fail "preload upload failed");
  let stop = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Transport.listen_and_serve ~workers ~max_conns ~request_timeout_ms ?max_frame
          ~stop:(fun () -> Atomic.get stop)
          ~port (Server.handle_encoded state))
  in
  let rec wait_up tries =
    match Transport.connect ~port () with
    | fd -> Unix.close fd
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) when tries > 0 ->
      Unix.sleepf 0.02;
      wait_up (tries - 1)
  in
  wait_up 250;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join srv)
    f

(* COUNT keeps per-request service time small enough for latency
   assertions (SUM drags CRT-channel pairings through every request). *)
let count_query = Query.make ~group_by:[ "g" ] Query.Count
let expected_counts = results_of client enc count_query

let aggregate_round fd =
  let tok = Scheme.token client count_query in
  match Transport.call fd (P.Aggregate { name = "t"; token = tok }) with
  | P.Aggregates agg ->
    List.map
      (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
      (Scheme.decrypt client tok agg ~total_rows:15)
  | _ -> Alcotest.fail "expected aggregates"

let test_parallel_clients () =
  with_live_server ~workers:3 ~port:7491 (fun _ ->
      let errors = Atomic.make 0 in
      let threads =
        List.init 3 (fun i ->
            Thread.create
              (fun i ->
                let fd = Transport.connect ~port:7491 () in
                Fun.protect
                  ~finally:(fun () -> Unix.close fd)
                  (fun () ->
                    for _ = 1 to 4 do
                      if i = 0 then begin
                        (* One client speaks v2; its replies must come back
                           framed at v2, not the server's v3. *)
                        Transport.send fd (P.encode_request ~version:2 P.List_tables);
                        let raw = Transport.recv fd in
                        if Char.code raw.[2] <> 2 then Atomic.incr errors
                        else
                          match P.decode_response raw with
                          | P.Tables [ ("t", 15) ] -> ()
                          | _ -> Atomic.incr errors
                      end
                      else if aggregate_round fd <> expected_counts then Atomic.incr errors
                    done))
              i)
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "all parallel clients answered correctly" 0 (Atomic.get errors))

let test_stalled_client_isolated () =
  with_live_server ~workers:2 ~request_timeout_ms:300 ~port:7492 (fun _ ->
      let stall_s = 0.8 in
      let staller =
        Thread.create
          (fun () ->
            let fd = Transport.connect ~port:7492 () in
            (* Two bytes of a frame header, then silence: the read
               deadline must reclaim this connection's worker without
               touching anyone else's. *)
            ignore (Unix.write fd (Bytes.of_string "\x00\x00") 0 2);
            Thread.delay stall_s;
            Unix.close fd)
          ()
      in
      Thread.delay 0.05;
      let fd = Transport.connect ~port:7492 () in
      let max_latency = ref 0. in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          for _ = 1 to 5 do
            let t0 = Unix.gettimeofday () in
            (match Transport.call fd P.List_tables with
             | P.Tables [ ("t", 15) ] -> ()
             | _ -> Alcotest.fail "bad reply during stall");
            max_latency := Float.max !max_latency (Unix.gettimeofday () -. t0)
          done);
      Thread.join staller;
      Alcotest.(check bool)
        (Printf.sprintf "fast client unaffected by staller (max %.0f ms)"
           (!max_latency *. 1000.))
        true
        (!max_latency < stall_s /. 2.))

let test_midrequest_disconnect () =
  with_live_server ~workers:2 ~port:7493 (fun _ ->
      (* A peer that dies mid-frame: header promising 100 bytes, 10
         delivered, then gone. *)
      let fd = Transport.connect ~port:7493 () in
      let partial = Bytes.of_string "\x00\x00\x00\x64partial..." in
      ignore (Unix.write fd partial 0 (Bytes.length partial));
      Unix.close fd;
      Unix.sleepf 0.05;
      (* The server must shrug that connection off and keep serving. *)
      let fd = Transport.connect ~port:7493 () in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Alcotest.(check (list (triple (list string) int int)))
            "server still serving after mid-request disconnect" expected_counts
            (aggregate_round fd)))

let test_max_conns_shed () =
  with_live_server ~workers:2 ~max_conns:1 ~port:7494 (fun _ ->
      Unix.sleepf 0.05;
      (* occupies the single in-flight slot *)
      let holder = Transport.connect ~port:7494 () in
      Unix.sleepf 0.2;
      let shed = Transport.connect ~port:7494 () in
      (match P.decode_response (Transport.recv shed) with
       | P.Failed { code = P.Busy; _ } -> ()
       | _ -> Alcotest.fail "expected Failed Busy over the limit");
      Unix.close shed;
      Unix.close holder;
      Unix.sleepf 0.2;
      (* slot freed: the next client is served normally again *)
      let fd = Transport.connect ~port:7494 () in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          match Transport.call fd P.List_tables with
          | P.Tables [ ("t", 15) ] -> ()
          | _ -> Alcotest.fail "server did not recover after shedding"))

(* The PR-5 acceptance test: a --workers 4 server tracing every request,
   hammered by version-mixed parallel clients. Every sampled v4 reply
   must carry an EXPLAIN trailer; every captured trace must be one
   intact tree (aggregate an ancestor of pairing_loop) with a cost block
   scoped to its own request — no cross-request leakage even though
   requests run concurrently on pool domains. *)
let test_traced_parallel_clients () =
  let module M = Sagma_obs.Metrics in
  M.reset ();
  Trace.reset ();
  M.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled false;
      M.reset ();
      Trace.reset ())
    (fun () ->
      with_live_server ~workers:4 ~trace_sample:1 ~port:7496 (fun _ ->
          let errors = Atomic.make 0 in
          let explains = Atomic.make 0 in
          let threads =
            List.init 4 (fun i ->
                Thread.create
                  (fun i ->
                    let fd = Transport.connect ~port:7496 () in
                    Fun.protect
                      ~finally:(fun () -> Unix.close fd)
                      (fun () ->
                        for _ = 1 to 3 do
                          if i = 0 then begin
                            (* One v2 peer in the mix: its replies must stay
                               v2-framed with no trailer bytes. *)
                            Transport.send fd (P.encode_request ~version:2 P.List_tables);
                            let raw = Transport.recv fd in
                            if Char.code raw.[2] <> 2 then Atomic.incr errors
                            else
                              match P.decode_response raw with
                              | P.Tables [ ("t", 15) ] -> ()
                              | _ -> Atomic.incr errors
                          end
                          else begin
                            let tok = Scheme.token client count_query in
                            match
                              Transport.call_x
                                ~trace:{ P.tc_id = Some (Printf.sprintf "cli%d" i);
                                         tc_sampled = true }
                                fd (P.Aggregate { name = "t"; token = tok })
                            with
                            | P.Aggregates agg, x ->
                              (match x with
                               | Some x ->
                                 Atomic.incr explains;
                                 if x.P.x_cost.Trace.agg_rows <> 15 then Atomic.incr errors
                               | None -> Atomic.incr errors);
                              let results =
                                List.map
                                  (fun r ->
                                    ( List.map Value.to_string r.Scheme.group, r.Scheme.sum,
                                      r.Scheme.count ))
                                  (Scheme.decrypt client tok agg ~total_rows:15)
                              in
                              if results <> expected_counts then Atomic.incr errors
                            | _ -> Atomic.incr errors
                          end
                        done))
                  i)
          in
          List.iter Thread.join threads;
          Alcotest.(check int) "all traced parallel clients answered correctly" 0
            (Atomic.get errors);
          Alcotest.(check int) "every sampled v4 reply carried an EXPLAIN trailer" 9
            (Atomic.get explains);
          (* Pull the completed ring over the v4 Traces RPC and validate
             every aggregate trace's shape and cost attribution. *)
          let fd = Transport.connect ~port:7496 () in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              match Transport.call fd P.Traces with
              | P.Trace_dump traces ->
                let rec has name s =
                  s.Trace.name = name || List.exists (has name) s.Trace.children
                in
                let agg_traces =
                  List.filter
                    (fun rt ->
                      List.exists
                        (fun c -> c.Trace.name = "aggregate")
                        rt.Trace.r_root.Trace.children)
                    traces
                in
                Alcotest.(check int) "one intact trace per sampled aggregate" 9
                  (List.length agg_traces);
                List.iter
                  (fun rt ->
                    let agg =
                      List.find
                        (fun c -> c.Trace.name = "aggregate")
                        rt.Trace.r_root.Trace.children
                    in
                    Alcotest.(check bool) "aggregate is an ancestor of pairing_loop" true
                      (has "pairing_loop" agg);
                    (* Concurrent requests each walked exactly table "t"'s
                       15 rows: any other number means another request's
                       counters bled into this scope. *)
                    Alcotest.(check int) "cost scoped to this request" 15
                      rt.Trace.r_cost.Trace.agg_rows)
                  agg_traces;
                Alcotest.(check bool) "wire-propagated trace ids preserved" true
                  (List.exists (fun rt -> rt.Trace.r_id = "cli1") agg_traces)
              | _ -> Alcotest.fail "expected Trace_dump")))

let test_oversized_frame_rejected () =
  with_live_server ~workers:2 ~max_frame:65536 ~port:7495 (fun _ ->
      let fd = Transport.connect ~port:7495 () in
      (* Header claiming 64 MiB against a 64 KiB cap: the server must
         drop the connection up front instead of buffering the claim. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int (64 * 1024 * 1024));
      ignore (Unix.write fd header 0 4);
      (match Transport.recv fd with
       | _ -> Alcotest.fail "oversized frame should sever the connection"
       | exception Failure _ -> ());
      Unix.close fd;
      let fd = Transport.connect ~port:7495 () in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          match Transport.call fd P.List_tables with
          | P.Tables [ ("t", 15) ] -> ()
          | _ -> Alcotest.fail "server did not survive an oversized frame"))

(* --- v6: scatter-gather sharding -------------------------------------------------- *)

module Router = Sagma_protocol.Router
module Sse = Sagma_sse.Sse

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let sample_topology =
  { P.tp_role = "shard"; tp_shard_index = 1; tp_shard_count = 4;
    tp_shards = [ "7481"; "7482"; "host:7483"; "7484" ] }

let test_v6_topology_gated () =
  (* The shard topology travels only in v6 Stats_report frames. *)
  let report =
    { P.sr_snapshot = empty_snapshot; sr_audit = Sagma_obs.Audit.summary ();
      sr_uptime_s = 1.; sr_start_time = 10.; sr_gc = Some sample_gc_stats;
      sr_topology = Some sample_topology }
  in
  (match P.decode_response (P.encode_response (P.Stats_report report)) with
   | P.Stats_report r ->
     Alcotest.(check bool) "topology survives a v6 frame" true
       (r.P.sr_topology = Some sample_topology)
   | _ -> Alcotest.fail "expected Stats_report");
  (* A v5 encoding drops it — and keeps the v5 gc section intact. *)
  (match P.decode_response (P.encode_response ~version:5 (P.Stats_report report)) with
   | P.Stats_report r ->
     Alcotest.(check bool) "topology dropped from a v5 frame" true (r.P.sr_topology = None);
     Alcotest.(check bool) "gc stats still travel at v5" true (r.P.sr_gc = Some sample_gc_stats)
   | _ -> Alcotest.fail "expected Stats_report");
  (* A forged v5 frame still carrying the v6 topology bytes is
     malformed: the v5 layout ends before them, so the decoder reports
     trailing garbage instead of smuggling topology into an old frame. *)
  let forged = flip_version (P.encode_response (P.Stats_report report)) ~v:5 in
  match P.decode_response forged with
  | exception W.Decode_error _ -> ()
  | _ -> Alcotest.fail "v6 topology bytes accepted inside a v5 frame"

let test_v6_append_row_id_gated () =
  let row, keywords =
    Scheme.append_payload client ~values:[| 1 |] ~groups:[| str "x" |] ~filters:[ ("f", vi 0) ]
  in
  let req = P.Append { name = "t"; row; keywords; row_id = Some 15 } in
  (* The coordinator-stamped row id survives a v6 frame... *)
  (match P.decode_request (P.encode_request req) with
   | P.Append { row_id = Some 15; _ } -> ()
   | _ -> Alcotest.fail "row id lost on the wire");
  (* ...a v5 encoding drops it (the shard assigns its local next
     position — the pre-sharding behavior)... *)
  (match P.decode_request (P.encode_request ~version:5 req) with
   | P.Append { row_id = None; _ } -> ()
   | _ -> Alcotest.fail "row id leaked into a v5 frame");
  (* ...and a forged v5 frame still carrying the id bytes is trailing
     garbage. *)
  let forged = flip_version (P.encode_request req) ~v:5 in
  match P.decode_request forged with
  | exception W.Decode_error _ -> ()
  | _ -> Alcotest.fail "v6 row id bytes accepted inside a v5 frame"

(* Upload accepted any table name — including "" and multi-MiB strings
   that bloat every List_tables reply. Empty and oversized names are now
   Bad_request; anything else, however weird, round-trips. *)
let test_table_name_validation () =
  let state = Server.create () in
  (match Server.handle state (P.Upload { name = ""; table = enc }) with
   | P.Failed { code = P.Bad_request; _ } -> ()
   | _ -> Alcotest.fail "empty table name accepted");
  let big = String.make (2 * 1024 * 1024) 'a' in
  (match Server.handle state (P.Upload { name = big; table = enc }) with
   | P.Failed { code = P.Bad_request; _ } -> ()
   | _ -> Alcotest.fail "multi-MiB table name accepted");
  (match Server.handle state (P.Drop "") with
   | P.Failed _ -> ()
   | _ -> Alcotest.fail "dropping the empty name succeeded");
  (* Weird-but-bounded names (spaces, NUL, non-UTF-8 bytes) are data,
     not errors. *)
  let weird = "we ird\ttable\xc3\xa9\x00name" in
  Alcotest.(check bool) "weird name uploads" true
    (Server.handle state (P.Upload { name = weird; table = enc }) = P.Ack);
  (match Server.handle state P.List_tables with
   | P.Tables [ (n, 15) ] when n = weird -> ()
   | _ -> Alcotest.fail "weird name mangled in listing");
  Alcotest.(check bool) "weird name drops" true (Server.handle state (P.Drop weird) = P.Ack)

(* Append recomputed every keyword's posting counter with a full
   [Sse.search] under the registry lock — O(postings) per append. The
   per-token counter cache makes warm appends O(1): against a
   10k-posting token, the first append pays one search and the rest
   scan nothing. *)
let test_append_posting_count_cached () =
  let module M = Sagma_obs.Metrics in
  let fat_tok = Sse.token (Sse.gen (Drbg.create "pr9-fat")) "fat-keyword" in
  let postings = 10_000 in
  let dict = Hashtbl.copy enc.Scheme.index.Sse.dict in
  for c = 0 to postings - 1 do
    let label, value = Sse.entry fat_tok c (c mod 15) in
    Hashtbl.add dict label value
  done;
  let fat_enc =
    { enc with Scheme.index = { Sse.dict; entries = enc.Scheme.index.Sse.entries + postings } }
  in
  let state = Server.create () in
  (match Server.handle state (P.Upload { name = "t"; table = fat_enc }) with
   | P.Ack -> ()
   | _ -> Alcotest.fail "upload failed");
  let row, _ =
    Scheme.append_payload client ~values:[| 1 |] ~groups:[| str "x" |] ~filters:[ ("f", vi 0) ]
  in
  let append () =
    match Server.handle state (P.Append { name = "t"; row; keywords = [ fat_tok ]; row_id = None }) with
    | P.Ack -> ()
    | _ -> Alcotest.fail "append failed"
  in
  M.reset ();
  M.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled false;
      M.reset ())
    (fun () ->
      let scanned () =
        match List.assoc_opt "sse.postings_scanned" (M.snapshot ()).M.counters with
        | Some n -> n
        | None -> 0
      in
      append ();
      let cold = scanned () in
      Alcotest.(check bool)
        (Printf.sprintf "cold append walked the %d postings once (%d)" postings cold)
        true (cold >= postings);
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 50 do append () done;
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check int) "warm appends scan no postings" cold (scanned ());
      Alcotest.(check bool)
        (Printf.sprintf "50 warm appends took %.0f ms" (elapsed *. 1000.))
        true (elapsed < 2.))

(* The EXPLAIN cost block's bytes_out was filled from the response's
   first encoding, before the v4 trailer itself was attached — always
   short. It must equal the final frame length, trailer included. *)
let test_explain_bytes_out_exact () =
  let module M = Sagma_obs.Metrics in
  let state = Server.create ~trace_sample:1 () in
  ignore (Server.handle state (P.Upload { name = "t"; table = enc }));
  M.reset ();
  Trace.reset ();
  M.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled false;
      M.reset ();
      Trace.reset ())
    (fun () ->
      let tok = Scheme.token client query in
      let raw =
        Server.handle_encoded state
          (P.encode_request
             ~trace:{ P.tc_id = None; tc_sampled = true }
             (P.Aggregate { name = "t"; token = tok }))
      in
      match P.decode_response_x raw with
      | P.Aggregates _, Some x ->
        Alcotest.(check int) "bytes_out equals the final frame length" (String.length raw)
          x.P.x_cost.Trace.bytes_out
      | _, None -> Alcotest.fail "sampled reply carried no EXPLAIN trailer"
      | _ -> Alcotest.fail "expected a traced aggregate reply")

(* A live TCP endpoint serving an arbitrary raw-frame handler — the
   building block for the cluster tests below. *)
let with_handler ~port handler f =
  let stop = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Transport.listen_and_serve ~workers:0 ~max_conns:16 ~request_timeout_ms:0
          ~stop:(fun () -> Atomic.get stop)
          ~port handler)
  in
  let rec wait_up tries =
    match Transport.connect ~port () with
    | fd -> Unix.close fd
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) when tries > 0 ->
      Unix.sleepf 0.02;
      wait_up (tries - 1)
  in
  wait_up 250;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join srv)
    f

let test_coordinator_scatter_gather () =
  let s0 = Server.create ~shard:(0, 2) () in
  let s1 = Server.create ~shard:(1, 2) () in
  with_handler ~port:7481 (Server.handle_encoded s0) (fun () ->
      with_handler ~port:7482 (Server.handle_encoded s1) (fun () ->
          let r = Router.create [ "7481"; "7482" ] in
          Fun.protect
            ~finally:(fun () -> Router.shutdown r)
            (fun () ->
              (match Router.handle r (P.Upload { name = "t"; table = enc }) with
               | P.Ack -> ()
               | P.Failed { message; _ } -> Alcotest.failf "coordinator upload: %s" message
               | _ -> Alcotest.fail "unexpected upload reply");
              let tok = Scheme.token client query in
              let merged =
                match Router.handle r (P.Aggregate { name = "t"; token = tok }) with
                | P.Aggregates a -> a
                | P.Failed { message; _ } -> Alcotest.failf "coordinator aggregate: %s" message
                | _ -> Alcotest.fail "unexpected aggregate reply"
              in
              (* The ⊕-merged partials are byte-identical to the answer a
                 single unsharded server computes. *)
              Alcotest.(check string) "merged result byte-identical to the single-server answer"
                (Serialize.agg_result_to_string (Scheme.aggregate enc tok))
                (Serialize.agg_result_to_string merged);
              (* An append fans to every replica (with a stamped global
                 row id) and shows up in the next merged aggregate. *)
              let row, keywords =
                Scheme.append_payload client ~values:[| 55 |] ~groups:[| str "x" |]
                  ~filters:[ ("f", vi 0) ]
              in
              (match Router.handle r (P.Append { name = "t"; row; keywords; row_id = None }) with
               | P.Ack -> ()
               | P.Failed { message; _ } -> Alcotest.failf "coordinator append: %s" message
               | _ -> Alcotest.fail "unexpected append reply");
              match Router.handle r (P.Aggregate { name = "t"; token = tok }) with
              | P.Aggregates agg ->
                let results = Scheme.decrypt client tok agg ~total_rows:16 in
                let x_row = List.find (fun r -> r.Scheme.group = [ str "x" ]) results in
                let _, sum_before, count_before =
                  List.find (fun (g, _, _) -> g = [ "x" ]) expected
                in
                Alcotest.(check int) "appended sum visible through the coordinator"
                  (sum_before + 55) x_row.Scheme.sum;
                Alcotest.(check int) "appended count visible through the coordinator"
                  (count_before + 1) x_row.Scheme.count
              | _ -> Alcotest.fail "unexpected aggregate reply after append")))

let test_coordinator_shard_down () =
  let s0 = Server.create ~shard:(0, 2) () in
  with_handler ~port:7483 (Server.handle_encoded s0) (fun () ->
      (* Nothing listens on :7484 — connection refused, instantly. *)
      let r = Router.create ~deadline_ms:1000 [ "7483"; "7484" ] in
      Fun.protect
        ~finally:(fun () -> Router.shutdown r)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          (match Router.handle r (P.Upload { name = "t"; table = enc }) with
           | P.Failed { message; _ } ->
             Alcotest.(check bool)
               (Printf.sprintf "failure names the dead shard: %s" message)
               true (contains message "shard 1")
           | _ -> Alcotest.fail "upload through a half-dead fleet succeeded");
          Alcotest.(check bool) "refused connection fails fast" true
            (Unix.gettimeofday () -. t0 < 3.));
      (* A shard that accepts (kernel backlog) but never answers must be
         cut off by the per-call deadline, not hang the coordinator. *)
      let silent = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt silent Unix.SO_REUSEADDR true;
      Unix.bind silent (Unix.ADDR_INET (Unix.inet_addr_loopback, 7484));
      Unix.listen silent 1;
      Fun.protect
        ~finally:(fun () -> Unix.close silent)
        (fun () ->
          let r = Router.create ~deadline_ms:500 [ "7483"; "7484" ] in
          Fun.protect
            ~finally:(fun () -> Router.shutdown r)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              (match Router.handle r (P.Upload { name = "t"; table = enc }) with
               | P.Failed { message; _ } ->
                 Alcotest.(check bool)
                   (Printf.sprintf "deadline failure names the silent shard: %s" message)
                   true
                   (contains message "shard 1" && contains message "deadline")
               | _ -> Alcotest.fail "upload through a silent shard succeeded");
              let elapsed = Unix.gettimeofday () -. t0 in
              Alcotest.(check bool)
                (Printf.sprintf "deadline honored (%.0f ms)" (elapsed *. 1000.))
                true
                (elapsed >= 0.4 && elapsed < 5.))))

let test_coordinator_version_mixed_fleet () =
  let s0 = Server.create ~shard:(0, 2) () in
  let s1 = Server.create ~shard:(1, 2) () in
  (* Simulate a v5-era binary for shard 1: it rejects v6 frames the way
     the real pre-v6 server rejects future versions — a structured
     Version_unsupported framed at min_version — and serves v5 frames
     normally. *)
  let v5_handler raw =
    if String.length raw > 2 && Char.code raw.[2] > 5 then
      P.encode_response ~version:P.min_version
        (P.Failed
           { code = P.Version_unsupported;
             message = "frame version 6 newer than 5: this server speaks 5" })
    else Server.handle_encoded s1 raw
  in
  with_handler ~port:7485 (Server.handle_encoded s0) (fun () ->
      with_handler ~port:7486 v5_handler (fun () ->
          let r = Router.create [ "7485"; "7486" ] in
          Fun.protect
            ~finally:(fun () -> Router.shutdown r)
            (fun () ->
              (* The router steps down to v5 for that shard and the
                 fleet still answers. *)
              (match Router.handle r (P.Upload { name = "t"; table = enc }) with
               | P.Ack -> ()
               | P.Failed { message; _ } -> Alcotest.failf "mixed-fleet upload: %s" message
               | _ -> Alcotest.fail "unexpected upload reply");
              (* Appends still work: the v5 encoding drops the stamped
                 row id, and the v5 shard assigns the same position
                 locally because replicas are aligned. *)
              let row, keywords =
                Scheme.append_payload client ~values:[| 7 |] ~groups:[| str "y" |]
                  ~filters:[ ("f", vi 1) ]
              in
              (match Router.handle r (P.Append { name = "t"; row; keywords; row_id = None }) with
               | P.Ack -> ()
               | P.Failed { message; _ } -> Alcotest.failf "mixed-fleet append: %s" message
               | _ -> Alcotest.fail "unexpected append reply");
              let tok = Scheme.token client query in
              match Router.handle r (P.Aggregate { name = "t"; token = tok }) with
              | P.Aggregates merged ->
                let results = Scheme.decrypt client tok merged ~total_rows:16 in
                let y_row = List.find (fun r -> r.Scheme.group = [ str "y" ]) results in
                let _, sum_before, count_before =
                  List.find (fun (g, _, _) -> g = [ "y" ]) expected
                in
                Alcotest.(check int) "mixed-fleet merged sum" (sum_before + 7) y_row.Scheme.sum;
                Alcotest.(check int) "mixed-fleet merged count" (count_before + 1)
                  y_row.Scheme.count
              | P.Failed { message; _ } -> Alcotest.failf "mixed-fleet aggregate: %s" message
              | _ -> Alcotest.fail "unexpected aggregate reply")))

(* --- v7: fleet health & alerting --------------------------------------------------- *)

module Wd = Sagma_obs.Watchdog

let sample_alert =
  { Wd.a_rule = "error-rate"; a_since = 1000.5; a_value = 0.75; a_threshold = 0.5;
    a_message = "error-rate: ratio:proto.requests_failed/proto.requests = 0.75 > 0.5" }

let sample_shard_health =
  { P.shc_index = 1; shc_endpoint = "host:7482"; shc_reachable = false; shc_since = 2000.25;
    shc_failures = 3; shc_last_error = "Connection refused"; shc_version = 5;
    shc_rtt_ms = 1.75 }

let sample_health_report =
  { P.hr_status = "degraded"; hr_uptime_s = 42.5; hr_alerts = [ sample_alert ];
    hr_shards =
      [ { sample_shard_health with P.shc_index = 0; shc_endpoint = "7481"; shc_reachable = true;
          shc_failures = 0; shc_last_error = ""; shc_version = 7 };
        sample_shard_health ] }

let test_v7_health_gated () =
  (* The Health request and its report round-trip at the current
     version, alerts and shard block intact. *)
  (match P.decode_request (P.encode_request P.Health) with
   | P.Health -> ()
   | _ -> Alcotest.fail "Health request lost on the wire");
  (match P.decode_response (P.encode_response (P.Health_report sample_health_report)) with
   | P.Health_report hr ->
     Alcotest.(check bool) "health report survives a v7 frame" true (hr = sample_health_report)
   | _ -> Alcotest.fail "expected Health_report");
  (* Neither construct exists before v7: the encoder refuses to frame
     them for an old peer instead of emitting bytes it cannot label. *)
  (match P.encode_request ~version:6 P.Health with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Health encoded into a v6 frame");
  (match P.encode_response ~version:6 (P.Health_report sample_health_report) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Health_report encoded into a v6 frame");
  (* Forged v6 frames carrying the v7 bytes are trailing garbage: tag 7
     (request) and tag 6 (response) are undefined at v6. *)
  (match P.decode_request (flip_version (P.encode_request P.Health) ~v:6) with
   | exception W.Decode_error _ -> ()
   | _ -> Alcotest.fail "v7 Health bytes accepted inside a v6 frame");
  match
    P.decode_response (flip_version (P.encode_response (P.Health_report sample_health_report)) ~v:6)
  with
  | exception W.Decode_error _ -> ()
  | _ -> Alcotest.fail "v7 Health_report bytes accepted inside a v6 frame"

let test_v7_old_peer_stats_unchanged () =
  (* The v7 bump must not disturb what older peers see: a v6-framed
     Stats_report still round-trips with its topology, and v5 keeps the
     gc section. *)
  let report =
    { P.sr_snapshot = empty_snapshot; sr_audit = Sagma_obs.Audit.summary (); sr_uptime_s = 1.;
      sr_start_time = 10.; sr_gc = Some sample_gc_stats; sr_topology = Some sample_topology }
  in
  (match P.decode_response (P.encode_response ~version:6 (P.Stats_report report)) with
   | P.Stats_report r ->
     Alcotest.(check bool) "v6 stats round-trips under a v7 codebase" true
       (r.P.sr_topology = Some sample_topology && r.P.sr_gc = Some sample_gc_stats)
   | _ -> Alcotest.fail "expected Stats_report");
  match P.decode_request (P.encode_request ~version:1 P.List_tables) with
  | P.List_tables -> ()
  | _ -> Alcotest.fail "v1 request no longer decodes"

let test_stats_report_json () =
  (* The whole report as one JSON object — snapshot, uptime, gc, audit
     and topology — not just the bare snapshot (`sagma stats --json`). *)
  let report =
    { P.sr_snapshot =
        { Sagma_obs.Metrics.counters = [ ("proto.requests", 17) ]; gauges = [ ("pool.queue_depth", 2) ];
          histograms = [] };
      sr_audit = Sagma_obs.Audit.summary (); sr_uptime_s = 12.5; sr_start_time = 99.25;
      sr_gc = Some sample_gc_stats; sr_topology = Some sample_topology }
  in
  let j = P.stats_report_to_json report in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "stats json carries %s" needle) true (contains j needle))
    [ "\"snapshot\":"; "\"proto.requests\":17"; "\"pool.queue_depth\":2"; "\"uptime_s\":12.5";
      "\"start_time\":99.25"; "\"audit\":"; "\"gc\":"; "\"topology\":"; "\"role\":\"shard\"" ];
  (* Without the optional sections the keys stay present but null, so
     consumers need no key-existence probing. *)
  let bare = { report with P.sr_gc = None; sr_topology = None } in
  let j = P.stats_report_to_json bare in
  Alcotest.(check bool) "absent gc is null" true (contains j "\"gc\":null");
  Alcotest.(check bool) "absent topology is null" true (contains j "\"topology\":null")

let test_health_report_json () =
  let j = P.health_report_to_json sample_health_report in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "health json carries %s" needle) true (contains j needle))
    [ "\"status\":\"degraded\""; "\"uptime_s\":42.5"; "\"rule\":\"error-rate\"";
      "\"endpoint\":\"host:7482\""; "\"reachable\":false"; "\"last_error\":\"Connection refused\"" ]

let test_coordinator_health_probing () =
  let s0 = Server.create ~shard:(0, 2) () in
  let s1 = Server.create ~shard:(1, 2) () in
  with_handler ~port:7497 (Server.handle_encoded s0) (fun () ->
      let r = Router.create ~deadline_ms:1000 ~probe_interval_ms:50 [ "7497"; "7498" ] in
      Fun.protect
        ~finally:(fun () -> Router.shutdown r)
        (fun () ->
          Router.start_probes r;
          with_handler ~port:7498 (Server.handle_encoded s1) (fun () ->
              (* Probes must see both shards up and negotiate v7. *)
              let rec wait_up tries =
                let h = Router.shard_health r in
                if
                  List.for_all (fun s -> s.P.shc_reachable && s.P.shc_version = P.version) h
                  && Router.down_count r = 0
                then ()
                else if tries = 0 then Alcotest.fail "probes never saw both shards up at v7"
                else begin
                  Unix.sleepf 0.05;
                  wait_up (tries - 1)
                end
              in
              wait_up 100;
              match Router.handle r P.Health with
              | P.Health_report hr ->
                Alcotest.(check string) "healthy fleet is ok" "ok" hr.P.hr_status;
                Alcotest.(check int) "report carries both shards" 2 (List.length hr.P.hr_shards)
              | _ -> Alcotest.fail "expected Health_report");
          (* Shard 1's listener is gone now: the prober must notice
             within a couple of intervals... *)
          let rec wait_down tries =
            if Router.down_count r >= 1 then ()
            else if tries = 0 then Alcotest.fail "prober never noticed the dead shard"
            else begin
              Unix.sleepf 0.05;
              wait_down (tries - 1)
            end
          in
          wait_down 100;
          (match Router.handle r P.Health with
           | P.Health_report hr ->
             Alcotest.(check string) "half-dead fleet is degraded" "degraded" hr.P.hr_status;
             let sh1 = List.nth hr.P.hr_shards 1 in
             Alcotest.(check bool) "shard 1 reported unreachable" false sh1.P.shc_reachable;
             Alcotest.(check bool) "failure streak recorded" true (sh1.P.shc_failures > 0)
           | _ -> Alcotest.fail "expected Health_report");
          (* ...and fan-out to the known-down shard fast-fails without
             waiting on a connect. *)
          let t0 = Unix.gettimeofday () in
          (match Router.handle r (P.Upload { name = "t"; table = enc }) with
           | P.Failed { message; _ } ->
             Alcotest.(check bool)
               (Printf.sprintf "fast-fail names the down shard: %s" message)
               true (contains message "shard 1")
           | _ -> Alcotest.fail "upload to a known-down fleet succeeded");
          Alcotest.(check bool) "known-down shard fails fast" true
            (Unix.gettimeofday () -. t0 < 0.5)))

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let props =
  [ qprop "int zig-zag roundtrip" 300 QCheck.int
      (fun v ->
        QCheck.assume (v > min_int);
        W.decode W.get_int (W.encode W.put_int v) = v);
    qprop "bytes roundtrip" 200 QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
      (fun v -> W.decode W.get_bytes (W.encode W.put_bytes v) = v);
    qprop "bigint codec roundtrip" 200 QCheck.(pair bool (string_of_size (QCheck.Gen.int_range 0 30)))
      (fun (neg, raw) ->
        let z = Z.of_bytes_be raw in
        let z = if neg then Z.neg z else z in
        Z.equal z (W.decode Serialize.get_z (W.encode Serialize.put_z z)));
    qprop "value codec roundtrip" 200
      QCheck.(oneof [ map (fun i -> Value.Int i) small_int; map (fun s -> Value.Str s) small_string ])
      (fun v ->
        Value.equal v (W.decode Serialize.get_value (W.encode Serialize.put_value v)));
    qprop "list codec roundtrip" 100 QCheck.(list small_int)
      (fun v ->
        W.decode (fun s -> W.get_list s W.get_int) (W.encode (fun s -> W.put_list s (fun s x -> W.put_int s x)) v)
        = v);
  ]

let () =
  Alcotest.run "protocol"
    [ ( "wire",
        [ Alcotest.test_case "primitives" `Quick test_wire_primitives;
          Alcotest.test_case "errors" `Quick test_wire_errors ] );
      ( "serialize",
        [ Alcotest.test_case "enc_table roundtrip" `Quick test_enc_table_roundtrip;
          Alcotest.test_case "token + aggregate" `Quick test_token_and_aggregate_roundtrip;
          Alcotest.test_case "client persistence" `Quick test_client_persistence;
          Alcotest.test_case "corruption rejected" `Quick test_corrupted_input_rejected ] );
      ( "server",
        [ Alcotest.test_case "handler" `Quick test_server_handler;
          Alcotest.test_case "remote append" `Quick test_server_remote_append;
          Alcotest.test_case "malformed request" `Quick test_malformed_request ] );
      ( "versioning",
        [ Alcotest.test_case "frame prefix" `Quick test_version_prefix;
          Alcotest.test_case "old frame rejected" `Quick test_old_frame_rejected;
          Alcotest.test_case "encoder version bounds" `Quick test_encoder_version_bounds;
          Alcotest.test_case "server rejects old frame" `Quick test_server_rejects_old_frame;
          Alcotest.test_case "error code roundtrip" `Quick test_error_code_roundtrip;
          Alcotest.test_case "v3-only constructs gated" `Quick test_v3_only_constructs_gated;
          Alcotest.test_case "v4-only constructs gated" `Quick test_v4_only_constructs_gated ] );
      ( "v4 tracing",
        [ Alcotest.test_case "trace context roundtrip" `Quick test_v4_trace_ctx_roundtrip;
          Alcotest.test_case "explain trailer roundtrip" `Quick test_v4_explain_roundtrip;
          Alcotest.test_case "trace dump roundtrip" `Quick test_v4_trace_dump_roundtrip ] );
      ( "v5 resource telemetry",
        [ Alcotest.test_case "gc telemetry roundtrip" `Quick test_v5_gc_roundtrip;
          Alcotest.test_case "v5-only constructs gated" `Quick test_v5_only_constructs_gated ] );
      ( "v6 sharding",
        [ Alcotest.test_case "topology gated" `Quick test_v6_topology_gated;
          Alcotest.test_case "append row id gated" `Quick test_v6_append_row_id_gated;
          Alcotest.test_case "table name validation" `Quick test_table_name_validation;
          Alcotest.test_case "append posting-count cache" `Quick test_append_posting_count_cached;
          Alcotest.test_case "explain bytes_out exact" `Quick test_explain_bytes_out_exact;
          Alcotest.test_case "coordinator scatter-gather" `Quick test_coordinator_scatter_gather;
          Alcotest.test_case "coordinator shard down" `Quick test_coordinator_shard_down;
          Alcotest.test_case "version-mixed fleet" `Quick test_coordinator_version_mixed_fleet ] );
      ( "v7 fleet health",
        [ Alcotest.test_case "health constructs gated" `Quick test_v7_health_gated;
          Alcotest.test_case "old-peer stats unchanged" `Quick test_v7_old_peer_stats_unchanged;
          Alcotest.test_case "stats report json" `Quick test_stats_report_json;
          Alcotest.test_case "health report json" `Quick test_health_report_json;
          Alcotest.test_case "coordinator health probing" `Quick test_coordinator_health_probing ] );
      ( "v1 compat",
        [ Alcotest.test_case "v1 frames still served" `Quick test_v1_frames_still_served;
          Alcotest.test_case "v2-only messages gated" `Quick test_v2_only_messages_gated;
          Alcotest.test_case "stats roundtrip" `Quick test_stats_roundtrip;
          Alcotest.test_case "stats via server" `Quick test_stats_via_server ] );
      ("transport", [ Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip ]);
      ( "concurrency",
        [ Alcotest.test_case "parallel clients" `Quick test_parallel_clients;
          Alcotest.test_case "stalled client isolated" `Quick test_stalled_client_isolated;
          Alcotest.test_case "mid-request disconnect" `Quick test_midrequest_disconnect;
          Alcotest.test_case "max-conns shed -> Busy" `Quick test_max_conns_shed;
          Alcotest.test_case "traced parallel clients" `Quick test_traced_parallel_clients;
          Alcotest.test_case "oversized frame rejected" `Quick test_oversized_frame_rejected ] );
      ("properties", props);
    ]

(* Tests for the symmetric crypto substrate against published vectors
   (FIPS 180-4, RFC 4231, RFC 5869, RFC 8439) plus behavioural properties. *)

module C = Sagma_crypto
module Hex = C.Encoding

let check_hex msg expected actual = Alcotest.(check string) msg expected (Hex.to_hex actual)

(* --- SHA-256: FIPS 180-4 / NIST CAVS vectors --- *)

let test_sha256_vectors () =
  let cases =
    [ ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
      ("The quick brown fox jumps over the lazy dog",
       "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592") ]
  in
  List.iter (fun (msg, want) -> check_hex ("sha256 " ^ msg) want (C.Sha256.digest msg)) cases

let test_sha256_million_a () =
  (* FIPS long test: one million 'a'. *)
  let msg = String.make 1_000_000 'a' in
  check_hex "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (C.Sha256.digest msg)

let test_sha256_block_boundaries () =
  (* Lengths around the 55/56/64 padding boundaries must not crash and must
     be distinct. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let d = C.Sha256.digest (String.make n 'x') in
      Alcotest.(check bool) (Printf.sprintf "unique %d" n) false (Hashtbl.mem seen d);
      Hashtbl.add seen d n)
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ]

(* --- HMAC-SHA256: RFC 4231 --- *)

let test_hmac_rfc4231 () =
  let cases =
    [ (String.make 20 '\x0b', "Hi There",
       "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
      ("Jefe", "what do ya want for nothing?",
       "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
      (String.make 20 '\xaa', String.make 50 '\xdd',
       "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
      (String.make 131 '\xaa', "Test Using Larger Than Block-Size Key - Hash Key First",
       "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54") ]
  in
  List.iter
    (fun (key, msg, want) -> check_hex "hmac" want (C.Hmac.mac ~key msg))
    cases

let test_hmac_verify () =
  let key = "secret key" and msg = "message" in
  let tag = C.Hmac.mac ~key msg in
  Alcotest.(check bool) "accepts" true (C.Hmac.verify ~key msg tag);
  Alcotest.(check bool) "rejects bad tag" false (C.Hmac.verify ~key msg (String.make 32 '\000'));
  Alcotest.(check bool) "rejects bad msg" false (C.Hmac.verify ~key "other" tag)

(* --- HKDF: RFC 5869 test case 1 --- *)

let test_hkdf_rfc5869 () =
  let ikm = String.make 22 '\x0b' in
  let salt = Hex.of_hex "000102030405060708090a0b0c" in
  let info = Hex.of_hex "f0f1f2f3f4f5f6f7f8f9" in
  let okm = C.Hmac.hkdf ~salt ~info ~ikm 42 in
  check_hex "hkdf tc1"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    okm

(* --- ChaCha20: RFC 8439 --- *)

let test_chacha20_block_vector () =
  (* RFC 8439 section 2.3.2 *)
  let key = Hex.of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = Hex.of_hex "000000090000004a00000000" in
  let ks = C.Chacha20.block ~key ~nonce 1 in
  check_hex "keystream block"
    ("10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
     ^ "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
    ks

let test_chacha20_encrypt_vector () =
  (* RFC 8439 section 2.4.2 *)
  let key = Hex.of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = Hex.of_hex "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  let ct = C.Chacha20.encrypt ~counter:1 ~key ~nonce plaintext in
  check_hex "ciphertext"
    ("6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
     ^ "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
     ^ "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
     ^ "5af90bbf74a35be6b40b8eedf2785e42874d")
    ct;
  Alcotest.(check string) "roundtrip" plaintext (C.Chacha20.decrypt ~counter:1 ~key ~nonce ct)

(* --- AES / AES-GCM: FIPS 197 + McGrew-Viega vectors --- *)

let test_aes_fips197 () =
  let pt = Hex.of_hex "00112233445566778899aabbccddeeff" in
  let k128 = C.Aes.expand_key (Hex.of_hex "000102030405060708090a0b0c0d0e0f") in
  check_hex "aes-128 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (C.Aes.encrypt_block k128 pt);
  let k256 =
    C.Aes.expand_key
      (Hex.of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
  in
  check_hex "aes-256 C.3" "8ea2b7ca516745bfeafc49904b496089" (C.Aes.encrypt_block k256 pt)

let test_aes_gf_mul () =
  (* FIPS 197 §4.2 example: 0x57 · 0x83 = 0xc1. *)
  Alcotest.(check int) "57*83" 0xc1 (C.Aes.gf_mul 0x57 0x83);
  Alcotest.(check int) "57*13" 0xfe (C.Aes.gf_mul 0x57 0x13);
  Alcotest.(check int) "identity" 0x7a (C.Aes.gf_mul 0x7a 1)

let test_gcm_vectors () =
  (* GCM spec (McGrew & Viega) test cases 1-2. *)
  let k = C.Aes.expand_key (String.make 16 '\000') in
  let nonce = String.make 12 '\000' in
  let ct1, tag1 = C.Aes.gcm_encrypt k ~nonce "" in
  Alcotest.(check string) "tc1 empty ct" "" ct1;
  check_hex "tc1 tag" "58e2fccefa7e3061367f1d57a4e7455a" tag1;
  let ct2, tag2 = C.Aes.gcm_encrypt k ~nonce (String.make 16 '\000') in
  check_hex "tc2 ct" "0388dace60b6a392f328c2b971b2fe78" ct2;
  check_hex "tc2 tag" "ab6e47d42cec13bdf53a67b21257bddf" tag2

let test_gcm_roundtrip_and_tamper () =
  let k = C.Aes.expand_key (C.Drbg.bytes (C.Drbg.create "gcm-key") 32) in
  let nonce = C.Drbg.bytes (C.Drbg.create "gcm-nonce") 12 in
  List.iter
    (fun pt ->
      let ct, tag = C.Aes.gcm_encrypt k ~nonce ~aad:"header" pt in
      Alcotest.(check (option string)) "roundtrip" (Some pt)
        (C.Aes.gcm_decrypt k ~nonce ~aad:"header" ~tag ct);
      Alcotest.(check (option string)) "wrong aad" None
        (C.Aes.gcm_decrypt k ~nonce ~aad:"other" ~tag ct);
      if String.length ct > 0 then begin
        let bad = Bytes.of_string ct in
        Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
        Alcotest.(check (option string)) "tamper" None
          (C.Aes.gcm_decrypt k ~nonce ~aad:"header" ~tag (Bytes.to_string bad))
      end)
    [ ""; "x"; "exactly sixteen."; String.make 100 'q' ]

(* --- DRBG --- *)

let test_drbg_deterministic () =
  let a = C.Drbg.create "seed-1" and b = C.Drbg.create "seed-1" in
  Alcotest.(check string) "same seed same stream" (C.Drbg.bytes a 100) (C.Drbg.bytes b 100);
  let c = C.Drbg.create "seed-2" in
  Alcotest.(check bool) "different seeds differ" true (C.Drbg.bytes c 100 <> C.Drbg.bytes b 100)
  [@@warning "-6"]

let test_drbg_chunking_irrelevant () =
  let a = C.Drbg.create "s" and b = C.Drbg.create "s" in
  let big = C.Drbg.bytes a 100 in
  let p1 = C.Drbg.bytes b 3 in
  let p2 = C.Drbg.bytes b 64 in
  let p3 = C.Drbg.bytes b 33 in
  let parts = p1 ^ p2 ^ p3 in
  Alcotest.(check string) "chunking" big parts

let test_drbg_int_below () =
  let d = C.Drbg.of_int_seed 7 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let v = C.Drbg.int_below d 10 in
    Alcotest.(check bool) "range" true (v >= 0 && v < 10);
    counts.(v) <- counts.(v) + 1
  done;
  (* Rough uniformity: every bucket within 3x of the mean. *)
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d populated" i) true (c > 166 && c < 1500))
    counts

let test_drbg_shuffle_permutes () =
  let d = C.Drbg.of_int_seed 42 in
  let a = Array.init 50 (fun i -> i) in
  C.Drbg.shuffle d a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

(* --- PRF --- *)

let test_prf_determinism_and_bound () =
  let d = C.Drbg.of_int_seed 1 in
  let k = C.Prf.gen_key d in
  Alcotest.(check string) "deterministic" (C.Prf.eval k "x") (C.Prf.eval k "x");
  Alcotest.(check bool) "keyed" true
    (C.Prf.eval k "x" <> C.Prf.eval (C.Prf.derive k ~domain:"other") "x");
  for i = 0 to 200 do
    let v = C.Prf.eval_int k (string_of_int i) ~bound:7 in
    Alcotest.(check bool) "bound" true (v >= 0 && v < 7)
  done

let test_prf_int_distribution () =
  let d = C.Drbg.of_int_seed 2 in
  let k = C.Prf.gen_key d in
  let counts = Array.make 5 0 in
  for i = 0 to 4999 do
    let v = C.Prf.eval_int k ("input" ^ string_of_int i) ~bound:5 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 600 && c < 1500)) counts

(* --- Secretbox --- *)

let test_secretbox_roundtrip () =
  let d = C.Drbg.of_int_seed 3 in
  let k = C.Secretbox.gen_key d in
  List.iter
    (fun pt ->
      let box = C.Secretbox.seal k d pt in
      Alcotest.(check string) "roundtrip" pt (C.Secretbox.open_exn k box))
    [ ""; "a"; "hello world"; String.make 1000 'z' ]

let test_secretbox_tamper () =
  let d = C.Drbg.of_int_seed 4 in
  let k = C.Secretbox.gen_key d in
  let box = C.Secretbox.seal k d "attack at dawn" in
  let tampered = Bytes.of_string box in
  Bytes.set tampered (String.length box / 2)
    (Char.chr (Char.code (Bytes.get tampered (String.length box / 2)) lxor 1));
  Alcotest.(check bool) "tamper detected" true
    (C.Secretbox.open_opt k (Bytes.to_string tampered) = None);
  let d2 = C.Drbg.of_int_seed 5 in
  let k2 = C.Secretbox.gen_key d2 in
  Alcotest.(check bool) "wrong key" true (C.Secretbox.open_opt k2 box = None)

let test_secretbox_nondeterministic () =
  let d = C.Drbg.of_int_seed 6 in
  let k = C.Secretbox.gen_key d in
  let b1 = C.Secretbox.seal k d "msg" and b2 = C.Secretbox.seal k d "msg" in
  Alcotest.(check bool) "fresh nonces" true (b1 <> b2)

(* --- Encoding --- *)

let test_encoding () =
  Alcotest.(check string) "hex enc" "00ff10" (Hex.to_hex "\x00\xff\x10");
  Alcotest.(check string) "hex dec" "\x00\xff\x10" (Hex.of_hex "00ff10");
  Alcotest.(check string) "xor" "\x03" (Hex.xor "\x01" "\x02");
  Alcotest.(check bool) "ct eq" true (Hex.equal_ct "abc" "abc");
  Alcotest.(check bool) "ct neq" false (Hex.equal_ct "abc" "abd");
  Alcotest.(check bool) "ct len" false (Hex.equal_ct "ab" "abc")

let qprop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let props =
  [ qprop "chacha20 decrypt inverts encrypt" 100 QCheck.(string_of_size (QCheck.Gen.int_range 0 300))
      (fun pt ->
        let key = String.make 32 'k' and nonce = String.make 12 'n' in
        C.Chacha20.decrypt ~key ~nonce (C.Chacha20.encrypt ~key ~nonce pt) = pt);
    qprop "hex roundtrip" 200 QCheck.(string_of_size (QCheck.Gen.int_range 0 100))
      (fun s -> Hex.of_hex (Hex.to_hex s) = s);
    qprop "secretbox roundtrip" 50 QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
      (fun pt ->
        let d = C.Drbg.of_int_seed 99 in
        let k = C.Secretbox.gen_key d in
        C.Secretbox.open_exn k (C.Secretbox.seal k d pt) = pt);
    qprop "sha256 distinct on distinct inputs" 200 QCheck.(pair small_string small_string)
      (fun (a, b) -> a = b || C.Sha256.digest a <> C.Sha256.digest b);
  ]

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries ] );
      ( "hmac",
        [ Alcotest.test_case "rfc4231" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          Alcotest.test_case "hkdf rfc5869" `Quick test_hkdf_rfc5869 ] );
      ( "chacha20",
        [ Alcotest.test_case "block vector" `Quick test_chacha20_block_vector;
          Alcotest.test_case "encrypt vector" `Quick test_chacha20_encrypt_vector ] );
      ( "aes",
        [ Alcotest.test_case "fips-197 blocks" `Quick test_aes_fips197;
          Alcotest.test_case "gf(2^8)" `Quick test_aes_gf_mul;
          Alcotest.test_case "gcm vectors" `Quick test_gcm_vectors;
          Alcotest.test_case "gcm roundtrip + tamper" `Quick test_gcm_roundtrip_and_tamper ] );
      ( "drbg",
        [ Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "chunking" `Quick test_drbg_chunking_irrelevant;
          Alcotest.test_case "int_below" `Quick test_drbg_int_below;
          Alcotest.test_case "shuffle" `Quick test_drbg_shuffle_permutes ] );
      ( "prf",
        [ Alcotest.test_case "determinism + bound" `Quick test_prf_determinism_and_bound;
          Alcotest.test_case "distribution" `Quick test_prf_int_distribution ] );
      ( "secretbox",
        [ Alcotest.test_case "roundtrip" `Quick test_secretbox_roundtrip;
          Alcotest.test_case "tamper" `Quick test_secretbox_tamper;
          Alcotest.test_case "nondeterministic" `Quick test_secretbox_nondeterministic ] );
      ("encoding", [ Alcotest.test_case "basics" `Quick test_encoding ]);
      ("properties", props);
    ]

(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§6), plus ablations for the design choices DESIGN.md calls
   out.

   Usage:
     dune exec bench/main.exe                 # everything, reduced sizes
     dune exec bench/main.exe -- fig5a fig6b  # a subset
     SAGMA_BENCH_FULL=1 dune exec bench/main.exe   # paper-scale sweeps

   Absolute numbers differ from the paper's Java/2×Xeon testbed; the
   reproduced quantity is the *shape* of each curve (who wins, growth
   orders, crossover points). EXPERIMENTS.md records both. *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Tpch = Sagma_db.Tpch
module Workload = Sagma_db.Workload
module Drbg = Sagma_crypto.Drbg
module Bgn = Sagma_bgn.Bgn
module Paillier = Sagma_paillier.Paillier
open Sagma

let full = Sys.getenv_opt "SAGMA_BENCH_FULL" <> None

let str s = Value.Str s

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let header title = Printf.printf "\n== %s ==\n%!" title

(* --- continuous-bench history ----------------------------------------------- *)

(* Every json-* bench appends its headline numbers to BENCH_HISTORY.jsonl,
   one schema-versioned line per metric, so runs accumulate into a
   comparable series; scripts/bench_trend replays the file and fails on
   noise-adjusted regressions against the best prior run. The commit id
   comes from CI ($GITHUB_SHA) or falls back to "local". *)
let append_history ~pr ~bench (metrics : (string * float * string) list) =
  let commit =
    match Sys.getenv_opt "GITHUB_SHA" with Some s when s <> "" -> s | _ -> "local"
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_HISTORY.jsonl" in
  List.iter
    (fun (metric, value, unit_) ->
      Printf.fprintf oc
        "{\"schema_version\":1,\"pr\":%d,\"commit\":%S,\"bench\":%S,\"metric\":%S,\
         \"value\":%g,\"unit\":%S,\"full\":%b}\n"
        pr commit bench metric value unit_ full)
    metrics;
  close_out oc;
  Printf.printf "appended %d metrics to BENCH_HISTORY.jsonl\n%!" (List.length metrics)

(* --- Figure 5: processing time vs number of rows --------------------------- *)

(* Group by l_returnflag (B = 2 → 2 buckets over {A, N, R}), SUM and COUNT
   of l_quantity, exactly one grouping attribute as in the row sweep. *)
let fig5 () =
  header "Figure 5a/5b: aggregation and decryption time vs rows (SUM, COUNT)";
  Printf.printf "%8s %14s %14s %14s %14s\n%!" "rows" "agg SUM (ms)" "agg COUNT (ms)"
    "dec SUM (ms)" "dec COUNT (ms)";
  let row_counts = if full then [ 1000; 2500; 5000; 7500; 10000 ] else [ 50; 100; 150; 200 ] in
  (* One client (one key) across the sweep so per-point keygen variance
     does not pollute the curve. *)
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("l_returnflag", [ str "A"; str "N"; str "R" ]) ]
      (Drbg.create "fig5-client")
  in
  List.iter
    (fun rows ->
      let table = Tpch.generate ~rows (Drbg.create (Printf.sprintf "fig5-%d" rows)) in
      let enc = Scheme.encrypt_table client table in
      let q_sum = Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity") in
      let q_cnt = Query.make ~group_by:[ "l_returnflag" ] Query.Count in
      let tok_sum = Scheme.token client q_sum in
      let tok_cnt = Scheme.token client q_cnt in
      let agg_sum, t_agg_sum = time_ms (fun () -> Scheme.aggregate enc tok_sum) in
      let agg_cnt, t_agg_cnt = time_ms (fun () -> Scheme.aggregate enc tok_cnt) in
      let _, t_dec_sum =
        time_ms (fun () -> Scheme.decrypt client tok_sum agg_sum ~total_rows:rows)
      in
      let _, t_dec_cnt =
        time_ms (fun () -> Scheme.decrypt client tok_cnt agg_cnt ~total_rows:rows)
      in
      Printf.printf "%8d %14.1f %14.1f %14.1f %14.1f\n%!" rows t_agg_sum t_agg_cnt t_dec_sum
        t_dec_cnt)
    row_counts;
  print_endline
    "(paper: both aggregations linear in rows, COUNT cheaper than SUM; SUM decryption grows\n\
    \ with rows through the CRT dlog bound while COUNT decryption stays nearly flat)"

(* --- Figure 6a: aggregation time vs bucket size ----------------------------- *)

let fig6a () =
  header "Figure 6a: aggregation time vs bucket size B (SUM, COUNT)";
  Printf.printf "%8s %14s %14s\n%!" "B" "SUM (ms)" "COUNT (ms)";
  let rows = if full then 1000 else 60 in
  let sizes = if full then [ 2; 3; 4; 5; 6; 7 ] else [ 2; 3; 4; 5 ] in
  let table = Tpch.generate ~rows (Drbg.create "fig6a") in
  let domain = Array.to_list (Array.map str Tpch.ship_modes) in
  List.iter
    (fun b ->
      let config =
        Config.make ~bucket_size:b ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
          ~group_columns:[ "l_shipmode" ] ()
      in
      let client =
        Scheme.setup config ~domains:[ ("l_shipmode", domain) ]
          (Drbg.create (Printf.sprintf "fig6a-%d" b))
      in
      let enc = Scheme.encrypt_table client table in
      let tok_sum =
        Scheme.token client (Query.make ~group_by:[ "l_shipmode" ] (Query.Sum "l_quantity"))
      in
      let tok_cnt = Scheme.token client (Query.make ~group_by:[ "l_shipmode" ] Query.Count) in
      let _, t_sum = time_ms (fun () -> Scheme.aggregate enc tok_sum) in
      let _, t_cnt = time_ms (fun () -> Scheme.aggregate enc tok_cnt) in
      Printf.printf "%8d %14.1f %14.1f\n%!" b t_sum t_cnt)
    sizes;
  print_endline
    "(paper: superlinear growth in B — B indicator polynomials of degree B each;\n\
    \ COUNT cheaper than SUM)"

(* --- Figure 6b: time vs number of grouping attributes ----------------------- *)

let fig6b () =
  header "Figure 6b: aggregate and decrypt time vs grouping attributes";
  Printf.printf "%8s %14s %14s\n%!" "attrs" "aggregate (ms)" "decrypt (ms)";
  let rows = if full then 1000 else 40 in
  let table = Tpch.generate ~rows (Drbg.create "fig6b") in
  let all_groups = [ "l_returnflag"; "l_linestatus"; "l_shipmonth"; "l_shippriority" ] in
  let domains =
    [ ("l_returnflag", [ str "A"; str "N"; str "R" ]);
      ("l_linestatus", [ str "O"; str "F" ]);
      ("l_shipmonth", List.init 12 (fun i -> Value.Int (i + 1)));
      ("l_shippriority", List.init 5 (fun i -> Value.Int i)) ]
  in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:4 ~value_columns:[ "l_quantity" ]
      ~group_columns:all_groups ()
  in
  let client = Scheme.setup config ~domains (Drbg.create "fig6b-client") in
  let enc = Scheme.encrypt_table client table in
  List.iteri
    (fun i _ ->
      let group_by = List.filteri (fun j _ -> j <= i) all_groups in
      let tok = Scheme.token client (Query.make ~group_by (Query.Sum "l_quantity")) in
      let agg, t_agg = time_ms (fun () -> Scheme.aggregate enc tok) in
      let _, t_dec = time_ms (fun () -> Scheme.decrypt client tok agg ~total_rows:rows) in
      Printf.printf "%8d %14.1f %14.1f\n%!" (i + 1) t_agg t_dec)
    all_groups;
  print_endline "(paper: superlinear growth in the number of combined attributes)"

(* --- Figure 7: grouping-attribute counts per application --------------------- *)

let fig7 () =
  header "Figure 7: share of grouping queries with <=1 / <=2 / <=3 attributes";
  Printf.printf "%-12s %8s %8s %8s   (paper)\n%!" "Application" "<=1" "<=2" "<=3";
  let n = if full then 20000 else 4000 in
  let d = Drbg.create "fig7" in
  List.iter
    (fun (app, paper) ->
      let queries = Workload.generate app d n in
      Printf.printf "%-12s %7.0f%% %7.0f%% %7.0f%%   (%s)\n%!"
        (Workload.application_name app)
        (Workload.share_at_most queries 1)
        (Workload.share_at_most queries 2)
        (Workload.share_at_most queries 3)
        paper)
    [ (Workload.Nextcloud, "100/100/100");
      (Workload.Wordpress, "97/99/100");
      (Workload.Piwik, "25/83/95") ]

(* --- Figure 8 / Table 10: server storage comparison --------------------------- *)

let fig8 () =
  header "Figure 8a: server storage vs threshold t (l=4, k=2, r=1000, n=2, B=2, |D|=12)";
  Printf.printf "%4s %16s %16s %16s\n%!" "t" "Pre-computed" "Seabed" "SAGMA";
  List.iter
    (fun r ->
      Printf.printf "%4d %16d %16d %16d\n%!" r.Storage.x r.Storage.precomputed r.Storage.seabed
        r.Storage.sagma)
    (Storage.figure8a ());
  header "Figure 8b: server storage vs domain size |D| (t=3)";
  Printf.printf "%4s %16s %16s %16s\n%!" "|D|" "Pre-computed" "Seabed" "SAGMA";
  List.iter
    (fun r ->
      Printf.printf "%4d %16d %16d %16d\n%!" r.Storage.x r.Storage.precomputed r.Storage.seabed
        r.Storage.sagma)
    (Storage.figure8b ());
  print_endline
    "(paper: Seabed needs excessive storage; SAGMA beats pre-computation for t>=3 and |D|>=10)"

(* --- Table 9: monomial counts -------------------------------------------------- *)

let table9 () =
  header "Table 9: monomials m(l,t) - m(l,t-1) to support grouping t attributes";
  let l = 5 in
  List.iter
    (fun b ->
      Printf.printf "l=%d, B=%d:\n" l b;
      Printf.printf "%4s %18s %14s %14s\n%!" "t" "increment" "m(l,t)" "enumerated";
      for t = 1 to l do
        let enumerated =
          Monomials.count (Monomials.make ~num_columns:l ~bucket_size:b ~threshold:t)
        in
        Printf.printf "%4d %18d %14d %14d\n%!" t
          (Storage.monomial_increment ~l ~t ~b)
          (Storage.monomial_count ~l ~t ~b)
          enumerated
      done)
    [ 2; 3 ]

(* --- Table 10: measured storage and client cost ---------------------------------- *)

let table10 () =
  header "Table 10: storage/client-cost models and a measured SAGMA instance";
  let l = 4 and t = 3 and k = 2 and r = 1000 and n = 2 and b = 2 and d = 12 in
  Printf.printf "parameters: l=%d t=%d k=%d r=%d n=%d B=%d |D|=%d\n\n" l t k r n b d;
  Printf.printf "%-14s %20s %20s\n%!" "Scheme" "server (ciphertexts)" "client (operations)";
  Printf.printf "%-14s %20d %20d\n" "Pre-computed"
    (Storage.precomputed_server ~l ~t ~k ~n ~d)
    Storage.precomputed_client;
  Printf.printf "%-14s %20d %20d   (rho=50)\n" "Seabed"
    (Storage.seabed_server ~l ~t ~k ~r ~b)
    (Storage.seabed_client ~rho:50 ~t ~d);
  Printf.printf "%-14s %20d %20d\n\n" "SAGMA" (Storage.sagma_server ~l ~t ~k ~r ~b)
    (Storage.sagma_client ~t ~d);
  (* Cross-check the model against an actual encrypted table. *)
  let rows = 30 in
  let table =
    Table.of_rows
      [ { Table.name = "v1"; ty = Value.TInt };
        { Table.name = "v2"; ty = Value.TInt };
        { Table.name = "g1"; ty = Value.TInt };
        { Table.name = "g2"; ty = Value.TInt };
        { Table.name = "g3"; ty = Value.TInt };
        { Table.name = "g4"; ty = Value.TInt } ]
      (List.init rows (fun i ->
           [| Value.Int i; Value.Int (i * 2); Value.Int (i mod 3); Value.Int (i mod 4);
              Value.Int (i mod 2); Value.Int (i mod 5) |]))
  in
  let config =
    Config.make ~bucket_size:b ~max_group_attrs:t ~value_columns:[ "v1"; "v2" ]
      ~group_columns:[ "g1"; "g2"; "g3"; "g4" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("g1", List.init 3 (fun i -> Value.Int i)); ("g2", List.init 4 (fun i -> Value.Int i));
          ("g3", List.init 2 (fun i -> Value.Int i)); ("g4", List.init 5 (fun i -> Value.Int i)) ]
      (Drbg.create "table10")
  in
  let enc = Scheme.encrypt_table client table in
  let row0 = enc.Scheme.rows.(0) in
  let monomials = Array.length row0.Scheme.monomial_cts in
  Printf.printf
    "measured instance (r=%d): %d monomial cts/row (model m(%d,%d)=%d), %d value cols x %d CRT channels + 1 count ct\n%!"
    rows monomials l t
    (Storage.monomial_count ~l ~t ~b)
    (Array.length row0.Scheme.values)
    (Array.length row0.Scheme.values.(0))

(* --- Table 11 --------------------------------------------------------------------- *)

let table11 () =
  header "Table 11: comparison of related schemes";
  print_string (Comparison.render ())

(* --- Ablations --------------------------------------------------------------------- *)

let ablation_karatsuba () =
  header "Ablation: Karatsuba vs schoolbook multiplication crossover";
  Printf.printf "%8s %16s %16s\n%!" "bits" "schoolbook (us)" "karatsuba (us)";
  let drbg = Drbg.create "karatsuba" in
  List.iter
    (fun bits ->
      let a = Z.random_bits (Drbg.rng drbg) bits in
      let b = Z.random_bits (Drbg.rng drbg) bits in
      let na = Sagma_bigint.Nat.of_hex (Z.to_hex a) in
      let nb = Sagma_bigint.Nat.of_hex (Z.to_hex b) in
      let time_us f =
        let t0 = Unix.gettimeofday () in
        let iters = ref 0 in
        while Unix.gettimeofday () -. t0 < 0.2 do
          ignore (f ());
          incr iters
        done;
        (Unix.gettimeofday () -. t0) *. 1_000_000. /. float_of_int !iters
      in
      let t_school = time_us (fun () -> Sagma_bigint.Nat.mul_schoolbook na nb) in
      let t_kara = time_us (fun () -> Sagma_bigint.Nat.mul na nb) in
      Printf.printf "%8d %16.2f %16.2f\n%!" bits t_school t_kara)
    [ 256; 512; 1024; 2048; 4096; 8192 ]

let ablation_crt () =
  header "Ablation: CRT channel width vs aggregation/decryption time (Hu et al. trade-off)";
  Printf.printf "%14s %9s %14s %14s\n%!" "channel bits" "channels" "aggregate (ms)" "decrypt (ms)";
  let rows = if full then 500 else 60 in
  let table = Tpch.generate ~rows (Drbg.create "crt-ablation") in
  List.iter
    (fun channel_bits ->
      let config =
        Config.make ~bucket_size:2 ~max_group_attrs:1 ~channel_bits
          ~value_columns:[ "l_quantity" ] ~group_columns:[ "l_returnflag" ] ()
      in
      let client =
        Scheme.setup config
          ~domains:[ ("l_returnflag", [ str "A"; str "N"; str "R" ]) ]
          (Drbg.create (Printf.sprintf "crt-%d" channel_bits))
      in
      let enc = Scheme.encrypt_table client table in
      let tok =
        Scheme.token client (Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity"))
      in
      let agg, t_agg = time_ms (fun () -> Scheme.aggregate enc tok) in
      let _, t_dec = time_ms (fun () -> Scheme.decrypt client tok agg ~total_rows:rows) in
      Printf.printf "%14d %9d %14.1f %14.1f\n%!" channel_bits
        (Sagma_bgn.Crt_channels.channels client.Scheme.pp.Scheme.channels)
        t_agg t_dec)
    [ 8; 10; 12; 14; 16 ]

let ablation_shift_strategy () =
  header "Ablation: unit-shift indicators (Scheme) vs packed shifts (Dynamic, §3.3)";
  let rows = if full then 400 else 60 in
  let bucket_size = 4 in
  let domain = List.init 8 (fun i -> Value.Int i) in
  let d = Drbg.create "shift-data" in
  let data = List.init rows (fun _ -> (Drbg.int_below d 800, Drbg.int_below d 8)) in
  (* Unit shifts: the full scheme on a single group column. *)
  let table =
    Table.of_rows
      [ { Table.name = "v"; ty = Value.TInt }; { Table.name = "g"; ty = Value.TInt } ]
      (List.map (fun (v, g) -> [| Value.Int v; Value.Int g |]) data)
  in
  let config =
    Config.make ~bucket_size ~max_group_attrs:1 ~value_columns:[ "v" ] ~group_columns:[ "g" ] ()
  in
  let client = Scheme.setup config ~domains:[ ("g", domain) ] (Drbg.create "shift-unit") in
  let enc = Scheme.encrypt_table client table in
  let tok = Scheme.token client (Query.make ~group_by:[ "g" ] (Query.Sum "v")) in
  let agg, t_agg_unit = time_ms (fun () -> Scheme.aggregate enc tok) in
  let _, t_dec_unit = time_ms (fun () -> Scheme.decrypt client tok agg ~total_rows:rows) in
  (* Packed shifts: the §3.3 construction. *)
  let dyn =
    Dynamic.setup ~bgn_bits:64 ~value_bits:12 ~channel_bits:8 ~bucket_size ~domain
      (Drbg.create "shift-packed")
  in
  let dyn_rows = List.map (fun (v, g) -> Dynamic.enc_row dyn ~value:v ~group:(Value.Int g)) data in
  let dyn_agg, t_agg_packed = time_ms (fun () -> Dynamic.aggregate dyn dyn_rows) in
  let _, t_dec_packed = time_ms (fun () -> Dynamic.decrypt dyn dyn_agg ~total_rows:rows) in
  Printf.printf "%-28s %14s %14s\n" "strategy" "aggregate (ms)" "decrypt (ms)";
  Printf.printf "%-28s %14.1f %14.1f\n" "unit shifts (B aggregates)" t_agg_unit t_dec_unit;
  Printf.printf "%-28s %14.1f %14.1f\n%!" "packed shift (1 aggregate)" t_agg_packed t_dec_packed;
  print_endline
    "(packed needs one pairing per row per channel but a (d-1)^2-range dlog;\n\
    \ unit shifts need B pairings per row with a (d-1)-range dlog — the paper's choice)"

let ablation_bsgs () =
  header "Ablation: BSGS table size vs discrete-log solve time";
  Printf.printf "%14s %12s %16s\n%!" "dlog bound" "table size" "solve (us)";
  let drbg = Drbg.create "bsgs" in
  let kp = Bgn.keygen ~bits:64 drbg in
  List.iter
    (fun max ->
      let table = Bgn.make_dec1_table kp ~max in
      let cts = List.init 20 (fun i -> Bgn.enc1_int kp.Bgn.pk drbg (i * (max / 20))) in
      let t0 = Unix.gettimeofday () in
      List.iter (fun c -> ignore (Bgn.dec1 kp table ~max c)) cts;
      let dt = (Unix.gettimeofday () -. t0) *. 1_000_000. /. 20. in
      Printf.printf "%14d %12d %16.1f\n%!" max (int_of_float (sqrt (float_of_int max)) + 1) dt)
    [ 1_000; 10_000; 100_000; 1_000_000 ]

let ablation_mapping () =
  header "Ablation: bucket partitioning strategy vs exposure coefficient (§5)";
  (* Chosen so one frequency-balancing partition exists among the 15
     pairings: 12+2 = 10+4 = 8+6 = 14. *)
  let hist =
    [ (str "a", 12); (str "b", 10); (str "c", 8); (str "d", 6); (str "e", 4); (str "f", 2) ]
  in
  let domain = List.map fst hist in
  Printf.printf "histogram: %s\n\n"
    (String.concat ", " (List.map (fun (v, c) -> Printf.sprintf "%s=%d" (Value.to_string v) c) hist));
  Printf.printf "%-22s %10s\n%!" "strategy" "exposure";
  let strategies =
    [ ("prf (random)", Mapping.make Mapping.Prf_random "bench-demo-key" domain ~bucket_size:2);
      ("balanced heuristic", Mapping.make (Mapping.Optimal hist) "bench-demo-key" domain ~bucket_size:2);
      ("optimal (exhaustive)", Bucketing.optimal_mapping hist ~bucket_size:2) ]
  in
  List.iter
    (fun (name, m) -> Printf.printf "%-22s %10.4f\n%!" name (Bucketing.exposure m hist))
    strategies;
  let opt = Bucketing.optimal_mapping hist ~bucket_size:2 in
  let dummies = Bucketing.dummy_plan_for_column opt hist in
  Printf.printf "\ndummy rows to flatten the optimal mapping completely: %d\n%!"
    (List.fold_left (fun acc (_, k) -> acc + k) 0 dummies)

let ablation_attack () =
  header "Ablation: frequency-analysis attack (Naveed et al.) vs each scheme's leakage";
  (* Zipf-ish department distribution with distinct frequencies — the
     attacker's best case. *)
  let dept_freqs =
    [ ("eng", 100); ("sales", 61); ("support", 37); ("hr", 22); ("legal", 13); ("ops", 8);
      ("it", 5); ("pr", 3) ]
  in
  let hist = List.map (fun (d, n) -> (str d, n)) dept_freqs in
  let aux : Attacks.auxiliary = hist in
  Printf.printf "distribution: %s\n\n"
    (String.concat ", " (List.map (fun (d, n) -> Printf.sprintf "%s=%d" d n) dept_freqs));
  Printf.printf "%-40s %14s\n%!" "leakage surface" "recovery rate";
  (* CryptDB: the full histogram leaks; frequencies distinct → 100%. *)
  let tags = List.map (fun (d, n) -> ("tag-" ^ d, n)) dept_freqs in
  let truth = List.map (fun (d, _) -> ("tag-" ^ d, str d)) dept_freqs in
  Printf.printf "%-40s %13.1f%%\n" "CryptDB (deterministic column)"
    (100. *. Attacks.attack_cryptdb ~leaked:tags ~aux ~truth);
  List.iter
    (fun b ->
      let m = Mapping.make Mapping.Prf_random "attack-bench" (List.map fst hist) ~bucket_size:b in
      Printf.printf "%-40s %13.1f%%\n"
        (Printf.sprintf "SAGMA buckets, B=%d (prf mapping)" b)
        (100. *. Attacks.attack_sagma_buckets m ~histogram:hist))
    [ 2; 3; 4 ];
  let m_opt = Bucketing.optimal_mapping ~max_domain:8 hist ~bucket_size:2 in
  Printf.printf "%-40s %13.1f%%\n" "SAGMA buckets, B=2 (optimal mapping)"
    (100. *. Attacks.attack_sagma_buckets m_opt ~histogram:hist);
  let padded = hist @ Bucketing.dummy_plan_for_column m_opt hist in
  Printf.printf "%-40s %13.1f%%\n" "SAGMA B=2 optimal + dummy rows"
    (100. *. Attacks.attack_sagma_buckets m_opt ~histogram:padded);
  Printf.printf "%-40s %13.1f%%\n%!" "blind guess (auxiliary mode)"
    (100. *. Attacks.baseline_guess aux ~histogram:hist);
  print_endline
    "(the paper's motivation, measured: deterministic encryption falls to frequency\n\
    \ matching; bucketization caps the attack; dummy rows flatten it to near-guessing)"

let ablation_montgomery () =
  header "Ablation: Montgomery (CIOS) vs divide-and-reduce modular exponentiation";
  Printf.printf "%8s %18s %18s %9s\n%!" "bits" "binary powm (ms)" "montgomery (ms)" "speedup";
  let drbg = Drbg.create "montgomery" in
  (* Division-based reference exponentiation. *)
  let powm_naive base expo m =
    let nbits = Z.num_bits expo in
    let b = ref (Z.erem base m) and acc = ref Z.one in
    for i = 0 to nbits - 1 do
      if Z.bit expo i then acc := Z.mulm !acc !b m;
      if i < nbits - 1 then b := Z.mulm !b !b m
    done;
    !acc
  in
  List.iter
    (fun bits ->
      let m = Z.random_prime (Drbg.rng drbg) ~bits in
      let base = Z.random_below (Drbg.rng drbg) m in
      let expo = Z.random_below (Drbg.rng drbg) m in
      let time f =
        let t0 = Unix.gettimeofday () in
        let iters = ref 0 in
        while Unix.gettimeofday () -. t0 < 0.3 do
          ignore (f ());
          incr iters
        done;
        (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int !iters
      in
      let t_naive = time (fun () -> powm_naive base expo m) in
      let t_mont = time (fun () -> Z.powm base expo m) in
      Printf.printf "%8d %18.3f %18.3f %8.2fx\n%!" bits t_naive t_mont (t_naive /. t_mont))
    [ 128; 256; 512; 1024; 2048 ]

let ablation_joint_index () =
  header "Ablation: per-attribute vs joint bucket index (§3.4 Boolean-SSE alternative)";
  let rows = if full then 500 else 80 in
  let table = Tpch.generate ~rows (Drbg.create "joint-ablation") in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag"; "l_linestatus" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("l_returnflag", [ str "A"; str "N"; str "R" ]); ("l_linestatus", [ str "O"; str "F" ]) ]
      (Drbg.create "joint-ablation-client")
  in
  let q = Query.make ~group_by:[ "l_returnflag"; "l_linestatus" ] (Query.Sum "l_quantity") in
  Printf.printf "%-16s %12s %16s %14s\n%!" "index mode" "SSE entries" "tokens per query"
    "aggregate (ms)";
  List.iter
    (fun (name, mode) ->
      let enc = Scheme.encrypt_table ~index_mode:mode client table in
      let tok = Scheme.token ~index_mode:mode client q in
      let tokens =
        match tok.Scheme.source with
        | Scheme.Per_attribute_tokens per -> Array.fold_left (fun a p -> a + Array.length p) 0 per
        | Scheme.Joint_tokens e -> Array.length e
        | Scheme.Oxt_tokens e -> Array.length e
      in
      let _, t = time_ms (fun () -> Scheme.aggregate enc tok) in
      Printf.printf "%-16s %12d %16d %14.1f\n%!" name (Sagma_sse.Sse.size enc.Scheme.index) tokens t)
    [ ("per-attribute", Scheme.Per_attribute); ("joint", Scheme.Joint) ];
  print_endline
    "(joint mode never reveals per-attribute bucket membership, at the cost of\n\
    \ sum_{i<=t} C(l,i) postings per row instead of l)"

let ablation_parallel () =
  header "Ablation: multi-domain aggregation (paper: 16-core parallel query execution)";
  Printf.printf "%10s %14s %10s\n%!" "domains" "aggregate (ms)" "speedup";
  let rows = if full then 400 else 100 in
  let table = Tpch.generate ~rows (Drbg.create "parallel") in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("l_returnflag", [ str "A"; str "N"; str "R" ]) ]
      (Drbg.create "parallel-client")
  in
  let enc = Scheme.encrypt_table client table in
  let tok = Scheme.token client (Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity")) in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "(%d core(s) available to this process)\n%!" cores;
  let base = ref 0. in
  List.iter
    (fun d ->
      let _, t = time_ms (fun () -> Scheme.aggregate ~domains:d enc tok) in
      if d = 1 then base := t;
      Printf.printf "%10d %14.1f %9.2fx\n%!" d t (!base /. t))
    (List.filter (fun d -> d = 1 || d <= 2 * cores) [ 1; 2; 4; 8 ]);
  if cores = 1 then
    print_endline
      "(single-core container: domain overhead dominates; on multi-core hosts the speedup\n\
      \ tracks core count, matching the paper's parallelized evaluation)"

(* --- Bechamel micro-benchmarks of the crypto substrate ------------------------------ *)

let micro () =
  header "Micro-benchmarks (Bechamel): crypto substrate primitives";
  let open Bechamel in
  let drbg = Drbg.create "micro" in
  let kp = Bgn.keygen ~bits:64 drbg in
  let pk = kp.Bgn.pk in
  let c1 = Bgn.enc1_int pk drbg 5 and c2 = Bgn.enc1_int pk drbg 7 in
  let curve = pk.Bgn.group.Sagma_pairing.Pairing.curve in
  let scalar = Z.of_string "9876543210987654321" in
  let pkp = Paillier.keygen ~bits:512 drbg in
  let msg = String.make 1024 'x' in
  let tests =
    Test.make_grouped ~name:"crypto"
      [ Test.make ~name:"sha256 (1 KiB)" (Staged.stage (fun () -> Sagma_crypto.Sha256.digest msg));
        Test.make ~name:"hmac-sha256" (Staged.stage (fun () -> Sagma_crypto.Hmac.mac ~key:"k" msg));
        Test.make ~name:"chacha20 (1 KiB)"
          (Staged.stage (fun () ->
               Sagma_crypto.Chacha20.encrypt ~key:(String.make 32 'k') ~nonce:(String.make 12 'n')
                 msg));
        Test.make ~name:"bgn pairing (64-bit n)" (Staged.stage (fun () -> Bgn.mul pk c1 c2));
        Test.make ~name:"curve scalar mul"
          (Staged.stage (fun () -> Sagma_pairing.Curve.mul curve scalar c1));
        Test.make ~name:"bgn enc1" (Staged.stage (fun () -> Bgn.enc1_int pk drbg 42));
        Test.make ~name:"paillier enc (512)"
          (Staged.stage (fun () -> Paillier.encrypt_int pkp.Paillier.pk drbg 42)) ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> acc)
      results []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  Printf.printf "%-36s %16s\n%!" "operation" "time";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1_000_000. then Printf.sprintf "%.2f ms" (ns /. 1_000_000.)
        else if ns > 1_000. then Printf.sprintf "%.2f us" (ns /. 1_000.)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-36s %16s\n%!" name pretty)
    rows

(* --- BENCH_PR1.json: machine-readable op counts + phase timings ------------------------- *)

module Obs = Sagma_obs.Metrics
module Trace = Sagma_obs.Trace

(* One instrumented end-to-end query: metrics and tracing are switched on
   for exactly the query (setup/encryption stay uncounted, so the op
   counts match the paper's per-query cost model). *)
let run_instrumented client enc q =
  Obs.reset ();
  Trace.reset ();
  Obs.set_enabled true;
  let results = Scheme.query client enc q in
  Obs.set_enabled false;
  let spans = Trace.roots () in
  let span_ms name =
    match List.find_opt (fun s -> s.Trace.name = name) spans with
    | Some s -> s.Trace.ms
    | None -> 0.
  in
  (results, Obs.snapshot (), spans, span_ms)

let bench_json () =
  header "BENCH_PR1.json: per-workload operation counts and phase timings";
  let rows = if full then 1000 else 60 in
  let table = Tpch.generate ~rows (Drbg.create "bench-json") in
  let returnflag_domain = [ str "A"; str "N"; str "R" ] in
  let linestatus_domain = [ str "O"; str "F" ] in
  let single_config ?(filter_columns = []) () =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~filter_columns
      ~value_columns:[ "l_quantity" ] ~group_columns:[ "l_returnflag" ] ()
  in
  let pair_config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag"; "l_linestatus" ] ()
  in
  let make_client config domains seed = Scheme.setup config ~domains (Drbg.create seed) in
  (* name, client, encrypted table, query *)
  let workloads =
    [ (let c =
         make_client (single_config ()) [ ("l_returnflag", returnflag_domain) ] "bj-sum"
       in
       ("sum_per_attribute", c, Scheme.encrypt_table c table,
        Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity")));
      (let c =
         make_client (single_config ()) [ ("l_returnflag", returnflag_domain) ] "bj-count"
       in
       ("count_per_attribute", c, Scheme.encrypt_table c table,
        Query.make ~group_by:[ "l_returnflag" ] Query.Count));
      (let c =
         make_client pair_config
           [ ("l_returnflag", returnflag_domain); ("l_linestatus", linestatus_domain) ]
           "bj-joint"
       in
       ("sum_joint_index", c, Scheme.encrypt_table ~index_mode:Scheme.Joint c table,
        Query.make ~group_by:[ "l_returnflag"; "l_linestatus" ] (Query.Sum "l_quantity")));
      (let c =
         make_client
           (single_config ~filter_columns:[ "l_linestatus" ] ())
           [ ("l_returnflag", returnflag_domain) ]
           "bj-filter"
       in
       ("sum_filtered", c, Scheme.encrypt_table c table,
        Query.make
          ~where:[ ("l_linestatus", str "O") ]
          ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity"))) ]
  in
  let buf = Buffer.create 4096 in
  let hist = ref [] in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema_version\":1,\"bench\":\"json\",\"full\":%b,\"rows\":%d,\"workloads\":["
       full rows);
  List.iteri
    (fun i (name, client, enc, q) ->
      if i > 0 then Buffer.add_char buf ',';
      let results, snap, spans, span_ms = run_instrumented client enc q in
      hist := (name ^ ".aggregate_ms", span_ms "aggregate", "ms") :: !hist;
      Printf.printf "%-22s token %8.1f ms   aggregate %8.1f ms   decrypt %8.1f ms   %d groups\n%!"
        name (span_ms "token") (span_ms "aggregate") (span_ms "decrypt") (List.length results);
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"rows\":%d,\"result_groups\":%d,\
            \"timings_ms\":{\"token\":%.3f,\"aggregate\":%.3f,\"decrypt\":%.3f},\
            \"spans\":[%s],\"metrics\":%s}"
           (Obs.json_escape name) (Array.length enc.Scheme.rows) (List.length results)
           (span_ms "token") (span_ms "aggregate") (span_ms "decrypt")
           (String.concat "," (List.map Trace.to_json spans))
           (Obs.snapshot_to_json snap)))
    workloads;
  Buffer.add_string buf "]}";
  let path = "BENCH_PR1.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (Buffer.length buf + 1);
  append_history ~pr:1 ~bench:"json" (List.rev !hist)

(* --- BENCH_PR3.json: counter-derived cost model ------------------------------------------ *)

(* The §6 evaluation argues in operations, not milliseconds: pairings per
   row, bounded-dlog giant steps, postings scanned. This bench derives
   those unit costs from the metrics counters of an instrumented query —
   wall-clock rides along but the reproducible quantities are the ratios
   (pairings/row is machine-independent). *)
let bench_pr3 () =
  header "BENCH_PR3.json: counter-derived cost model (pairings/row, dlog steps)";
  let rows = if full then 1000 else 60 in
  let table = Tpch.generate ~rows (Drbg.create "bench-pr3") in
  let returnflag_domain = [ str "A"; str "N"; str "R" ] in
  let linestatus_domain = [ str "O"; str "F" ] in
  let workloads =
    [ (let config =
         Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
           ~group_columns:[ "l_returnflag" ] ()
       in
       let c =
         Scheme.setup config ~domains:[ ("l_returnflag", returnflag_domain) ]
           (Drbg.create "pr3-sum")
       in
       ("sum_single_attr", c, Scheme.encrypt_table c table,
        Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity")));
      (let config =
         Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
           ~group_columns:[ "l_returnflag" ] ()
       in
       let c =
         Scheme.setup config ~domains:[ ("l_returnflag", returnflag_domain) ]
           (Drbg.create "pr3-count")
       in
       ("count_single_attr", c, Scheme.encrypt_table c table,
        Query.make ~group_by:[ "l_returnflag" ] Query.Count));
      (let config =
         Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "l_quantity" ]
           ~group_columns:[ "l_returnflag"; "l_linestatus" ] ()
       in
       let c =
         Scheme.setup config
           ~domains:
             [ ("l_returnflag", returnflag_domain); ("l_linestatus", linestatus_domain) ]
           (Drbg.create "pr3-pair")
       in
       ("sum_two_attrs", c, Scheme.encrypt_table c table,
        Query.make ~group_by:[ "l_returnflag"; "l_linestatus" ] (Query.Sum "l_quantity"))) ]
  in
  let buf = Buffer.create 4096 in
  let hist = ref [] in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema_version\":1,\"bench\":\"pr3\",\"full\":%b,\"rows\":%d,\"workloads\":["
       full rows);
  Printf.printf "%-18s %12s %14s %12s %16s\n%!" "workload" "pairings" "pairings/row"
    "dlog solves" "giant steps/solve";
  List.iteri
    (fun i (name, client, enc, q) ->
      if i > 0 then Buffer.add_char buf ',';
      let _, snap, _, span_ms = run_instrumented client enc q in
      let cv n = Option.value (List.assoc_opt n snap.Obs.counters) ~default:0 in
      let agg_rows = cv "scheme.agg.rows" in
      let pairings = cv "pairing.pairings" in
      let dlog_solves = cv "bgn.dlog.solves" in
      let giant_steps = cv "bgn.dlog.giant_steps" in
      let ratio a b = if b = 0 then 0. else float_of_int a /. float_of_int b in
      Printf.printf "%-18s %12d %14.2f %12d %16.1f\n%!" name pairings
        (ratio pairings agg_rows) dlog_solves (ratio giant_steps dlog_solves);
      hist :=
        (name ^ ".aggregate_ms", span_ms "aggregate", "ms")
        :: (name ^ ".pairings_per_row", ratio pairings agg_rows, "ratio")
        :: !hist;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"rows\":%d,\
            \"timings_ms\":{\"token\":%.3f,\"aggregate\":%.3f,\"decrypt\":%.3f},\
            \"cost_model\":{\"rows_aggregated\":%d,\"pairings\":%d,\"pairings_per_row\":%.4f,\
            \"bgn_mul\":%d,\"dlog_solves\":%d,\"dlog_giant_steps\":%d,\
            \"giant_steps_per_solve\":%.2f,\"sse_postings_scanned\":%d,\
            \"bigint_powm\":%d},\
            \"metrics\":%s}"
           (Obs.json_escape name) (Array.length enc.Scheme.rows)
           (span_ms "token") (span_ms "aggregate") (span_ms "decrypt")
           agg_rows pairings (ratio pairings agg_rows)
           (cv "bgn.mul") dlog_solves giant_steps
           (ratio giant_steps dlog_solves)
           (cv "sse.postings_scanned")
           (cv "bigint.powm")
           (Obs.snapshot_to_json snap)))
    workloads;
  Buffer.add_string buf "]}";
  let path = "BENCH_PR3.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (Buffer.length buf + 1);
  append_history ~pr:3 ~bench:"pr3" (List.rev !hist)

(* --- BENCH_PR4.json: concurrent serving throughput --------------------------------------- *)

module Rpc = Sagma_protocol.Protocol
module Rpc_server = Sagma_protocol.Server
module Transport = Sagma_protocol.Transport

(* Runs [f] against a live server on [port], then stops it gracefully.
   The listener polls [stop] a few times per second, so shutdown adds at
   most ~a quarter second per server. *)
let with_server ~workers ~port ?(max_conns = 64) ?(request_timeout_ms = 0) handler f =
  let stop = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Transport.listen_and_serve ~workers ~max_conns ~request_timeout_ms
          ~stop:(fun () -> Atomic.get stop)
          ~port handler)
  in
  let rec wait_up tries =
    match Transport.connect ~port () with
    | fd -> Unix.close fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when tries > 0 ->
      Unix.sleepf 0.02;
      wait_up (tries - 1)
  in
  wait_up 250;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join srv)
    f

(* [clients] threads, each opening one connection and issuing [requests]
   RPCs with [think_s] of client-side work (sleep) after each reply —
   the think time is what a pooled server can overlap across
   connections. Returns (elapsed_s, ok_count, max_latency_s). *)
let drive_clients ~port ~clients ~requests ~think_s req =
  let ok = Atomic.make 0 in
  let latencies = Array.make clients 0. in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun i ->
            let fd = Transport.connect ~port () in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                for _ = 1 to requests do
                  let s = Unix.gettimeofday () in
                  (match Transport.call fd req with
                   | Rpc.Aggregates _ -> Atomic.incr ok
                   | Rpc.Failed { message; _ } -> failwith ("bench_pr4 request failed: " ^ message)
                   | _ -> failwith "bench_pr4: unexpected response");
                  let l = Unix.gettimeofday () -. s in
                  if l > latencies.(i) then latencies.(i) <- l;
                  if think_s > 0. then Thread.delay think_s
                done))
          i)
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  (elapsed, Atomic.get ok, Array.fold_left max 0. latencies)

(* Sequential serving costs clients × requests × (service + think);
   pooled serving overlaps the think times (and the client-side work
   they stand in for), so on the same single-CPU box throughput climbs
   toward clients× — that is the quantity BENCH_PR4.json records. *)
let bench_pr4 () =
  header "BENCH_PR4.json: sequential vs pooled request throughput, stalled client";
  let rows = if full then 60 else 12 in
  let clients = 4 in
  let requests = if full then 12 else 6 in
  let workers = 4 in
  let table = Tpch.generate ~rows (Drbg.create "bench-pr4") in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("l_returnflag", [ str "A"; str "N"; str "R" ]) ]
      (Drbg.create "pr4-client")
  in
  let enc = Scheme.encrypt_table client table in
  (* COUNT keeps the per-request service time in the low tens of
     milliseconds (SUM drags ~18 ms/row of CRT-channel pairings through
     every request); a serving bench wants the transport, not the
     crypto, on the critical path. *)
  let q = Query.make ~group_by:[ "l_returnflag" ] Query.Count in
  let req = Rpc.Aggregate { name = "t"; token = Scheme.token client q } in
  let state () =
    let s = Rpc_server.create () in
    (match Rpc_server.handle s (Rpc.Upload { name = "t"; table = enc }) with
     | Rpc.Ack -> ()
     | _ -> failwith "bench_pr4: upload failed");
    s
  in
  (* Estimate one request's service time, then pick a think time safely
     above it so the pooled win measures overlap, not noise. *)
  let svc_s =
    with_server ~workers:0 ~port:7461 (Rpc_server.handle_encoded (state ())) (fun () ->
        let e, _, _ = drive_clients ~port:7461 ~clients:1 ~requests:3 ~think_s:0. req in
        e /. 3.)
  in
  (* Well above the service time (including the multicore-GC inflation
     the worker domains suffer on small machines), so the comparison
     measures overlap rather than raw CPU. *)
  let think_s = Float.min 0.3 (Float.max 0.1 (8. *. svc_s)) in
  let seq_elapsed, seq_ok, seq_max =
    with_server ~workers:0 ~port:7461 (Rpc_server.handle_encoded (state ())) (fun () ->
        drive_clients ~port:7461 ~clients ~requests ~think_s req)
  in
  let pool_elapsed, pool_ok, pool_max =
    with_server ~workers ~port:7462 (Rpc_server.handle_encoded (state ())) (fun () ->
        drive_clients ~port:7462 ~clients ~requests ~think_s req)
  in
  let total = clients * requests in
  if seq_ok <> total || pool_ok <> total then
    failwith
      (Printf.sprintf "bench_pr4: dropped requests (sequential %d/%d, pooled %d/%d)" seq_ok
         total pool_ok total);
  let rps elapsed = float_of_int total /. elapsed in
  let speedup = rps pool_elapsed /. rps seq_elapsed in
  Printf.printf "service %.1f ms   think %.1f ms   %d clients x %d requests\n%!"
    (svc_s *. 1000.) (think_s *. 1000.) clients requests;
  Printf.printf "sequential %8.1f req/s (%.0f ms)   pooled %8.1f req/s (%.0f ms)   speedup %.2fx\n%!"
    (rps seq_elapsed) (seq_elapsed *. 1000.) (rps pool_elapsed) (pool_elapsed *. 1000.) speedup;
  (* Stalled client: sends two bytes of a frame header and goes quiet.
     With per-connection deadlines and pooled serving, only its own
     connection times out; a concurrent fast client must keep getting
     answers promptly the whole while. *)
  let stall_s = 0.8 in
  let request_timeout_ms = 300 in
  let fast_requests = 8 in
  let fast_ok, fast_max =
    with_server ~workers ~port:7463 ~request_timeout_ms (Rpc_server.handle_encoded (state ())) (fun () ->
        let staller =
          Thread.create
            (fun () ->
              let fd = Transport.connect ~port:7463 () in
              ignore (Unix.write fd (Bytes.of_string "\x00\x00") 0 2);
              Thread.delay stall_s;
              Unix.close fd)
            ()
        in
        Thread.delay 0.05;
        let _, ok, max_l =
          drive_clients ~port:7463 ~clients:1 ~requests:fast_requests ~think_s:0.01 req
        in
        Thread.join staller;
        (ok, max_l))
  in
  let stalled_passed = fast_ok = fast_requests && fast_max < stall_s in
  Printf.printf "stalled client: fast client %d/%d ok, max latency %.1f ms (stall %.0f ms) -> %s\n%!"
    fast_ok fast_requests (fast_max *. 1000.) (stall_s *. 1000.)
    (if stalled_passed then "pass" else "FAIL");
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":1,\"bench\":\"pr4\",\"full\":%b,\"rows\":%d,\
        \"clients\":%d,\"requests_per_client\":%d,\"workers\":%d,\
        \"service_ms_estimate\":%.3f,\"think_ms\":%.3f,\
        \"sequential\":{\"elapsed_ms\":%.3f,\"rps\":%.3f,\"max_latency_ms\":%.3f},\
        \"pooled\":{\"elapsed_ms\":%.3f,\"rps\":%.3f,\"max_latency_ms\":%.3f},\
        \"speedup\":%.3f,\
        \"stalled\":{\"request_timeout_ms\":%d,\"stall_ms\":%.0f,\"fast_requests\":%d,\
        \"fast_ok\":%d,\"fast_max_latency_ms\":%.3f,\"passed\":%b}}"
       full rows clients requests workers (svc_s *. 1000.) (think_s *. 1000.)
       (seq_elapsed *. 1000.) (rps seq_elapsed) (seq_max *. 1000.)
       (pool_elapsed *. 1000.) (rps pool_elapsed) (pool_max *. 1000.)
       speedup request_timeout_ms (stall_s *. 1000.) fast_requests fast_ok
       (fast_max *. 1000.) stalled_passed);
  let path = "BENCH_PR4.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (Buffer.length buf + 1);
  append_history ~pr:4 ~bench:"pr4"
    [ ("sequential_rps", rps seq_elapsed, "req_per_s");
      ("pooled_rps", rps pool_elapsed, "req_per_s"); ("pool_speedup", speedup, "ratio") ]

(* --- BENCH_PR5.json: request tracing overhead ------------------------------------------- *)

(* PR 5 adds domain-safe request tracing (span trees + EXPLAIN cost
   blocks). Spans cost two clock reads and one allocation each, and the
   cost block is a counter-scope subtraction — so serving with
   --trace-sample 1 should be nearly free next to the pairing work every
   request already does. This bench measures traced vs untraced
   throughput on the PR4 workload and asserts the ratio. *)
let bench_pr5 () =
  header "BENCH_PR5.json: throughput with tracing off vs --trace-sample 1";
  let rows = if full then 60 else 12 in
  let clients = 4 in
  let requests = if full then 12 else 6 in
  let workers = 4 in
  let table = Tpch.generate ~rows (Drbg.create "bench-pr5") in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("l_returnflag", [ str "A"; str "N"; str "R" ]) ]
      (Drbg.create "pr5-client")
  in
  let enc = Scheme.encrypt_table client table in
  let q = Query.make ~group_by:[ "l_returnflag" ] Query.Count in
  let req = Rpc.Aggregate { name = "t"; token = Scheme.token client q } in
  let state ?(trace_sample = 0) () =
    let s = Rpc_server.create ~trace_sample () in
    (match Rpc_server.handle s (Rpc.Upload { name = "t"; table = enc }) with
     | Rpc.Ack -> ()
     | _ -> failwith "bench_pr5: upload failed");
    s
  in
  let total = clients * requests in
  (* Untraced baseline: metrics collection off, sampling off. *)
  Obs.set_enabled false;
  let off_elapsed, off_ok, off_max =
    with_server ~workers ~port:7464 (Rpc_server.handle_encoded (state ())) (fun () ->
        drive_clients ~port:7464 ~clients ~requests ~think_s:0. req)
  in
  (* Traced run: every request gets a span tree and a cost block. *)
  Obs.reset ();
  Trace.reset ();
  Obs.set_enabled true;
  let (on_elapsed, on_ok, on_max), traces_captured, explain_ok =
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled false)
      (fun () ->
        with_server ~workers ~port:7465 (Rpc_server.handle_encoded (state ~trace_sample:1 ())) (fun () ->
            let timing = drive_clients ~port:7465 ~clients ~requests ~think_s:0. req in
            (* One more request through the explicit v4 path, to confirm
               the EXPLAIN trailer rides along when asked for. *)
            let fd = Transport.connect ~port:7465 () in
            let explain_ok =
              Fun.protect
                ~finally:(fun () -> Unix.close fd)
                (fun () ->
                  match
                    Transport.call_x
                      ~trace:{ Rpc.tc_id = Some "bench-pr5"; tc_sampled = true }
                      fd req
                  with
                  | Rpc.Aggregates _, Some x -> x.Rpc.x_cost.Trace.agg_rows = rows
                  | _ -> false)
            in
            (timing, List.length (Trace.requests ()), explain_ok)))
  in
  if off_ok <> total || on_ok <> total then
    failwith
      (Printf.sprintf "bench_pr5: dropped requests (untraced %d/%d, traced %d/%d)" off_ok total
         on_ok total);
  if not explain_ok then failwith "bench_pr5: EXPLAIN trailer missing or wrong on traced request";
  if traces_captured < total then
    failwith
      (Printf.sprintf "bench_pr5: only %d/%d requests landed on the trace ring" traces_captured
         total);
  let rps elapsed = float_of_int total /. elapsed in
  let ratio = rps on_elapsed /. rps off_elapsed in
  (* Tracing must not halve throughput. The real overhead is a couple of
     percent; 0.5 leaves room for scheduler noise on loaded CI boxes. *)
  let bound = 0.5 in
  let passed = ratio >= bound in
  Printf.printf
    "untraced %8.1f req/s (%.0f ms)   traced %8.1f req/s (%.0f ms)   ratio %.2f (bound %.2f) -> %s\n%!"
    (rps off_elapsed) (off_elapsed *. 1000.) (rps on_elapsed) (on_elapsed *. 1000.) ratio bound
    (if passed then "pass" else "FAIL");
  Printf.printf "traces captured: %d (of %d requests)   EXPLAIN trailer: ok\n%!" traces_captured
    (total + 1);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":1,\"bench\":\"pr5\",\"full\":%b,\"rows\":%d,\
        \"clients\":%d,\"requests_per_client\":%d,\"workers\":%d,\
        \"untraced\":{\"elapsed_ms\":%.3f,\"rps\":%.3f,\"max_latency_ms\":%.3f},\
        \"traced\":{\"elapsed_ms\":%.3f,\"rps\":%.3f,\"max_latency_ms\":%.3f},\
        \"throughput_ratio\":%.3f,\"ratio_bound\":%.2f,\
        \"traces_captured\":%d,\"explain_ok\":%b,\"passed\":%b}"
       full rows clients requests workers (off_elapsed *. 1000.) (rps off_elapsed)
       (off_max *. 1000.) (on_elapsed *. 1000.) (rps on_elapsed) (on_max *. 1000.) ratio bound
       traces_captured explain_ok passed);
  let path = "BENCH_PR5.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (Buffer.length buf + 1);
  append_history ~pr:5 ~bench:"pr5"
    [ ("untraced_rps", rps off_elapsed, "req_per_s"); ("traced_rps", rps on_elapsed, "req_per_s");
      ("throughput_ratio", ratio, "ratio") ];
  if not passed then
    failwith (Printf.sprintf "bench_pr5: tracing overhead out of bound (ratio %.2f < %.2f)" ratio bound)

(* --- BENCH_PR6.json: pairing-engine speedup ---------------------------------------------- *)

module Pairing = Sagma_pairing.Pairing

(* PR 6 rewrote the Miller loop on Jacobian coordinates in Montgomery
   form, batched products of pairings under one final exponentiation, and
   cached fixed-argument precomputation per encrypted table. This bench
   pins the claim: it times the legacy affine pairing against the batched
   path µs-for-µs, re-runs the PR 1 two-attribute SUM query, and projects
   what that query would have cost on the old engine (same pairing count,
   old per-pairing price). Fails the run if either speedup drops below
   4× or the `pairings` counter drifts off the n·B^arity·c model. *)
let bench_pr6 () =
  header "BENCH_PR6.json: pairing engine old-vs-new (us/pairing) and SUM-query speedup";
  let drbg = Drbg.create "bench-pr6" in
  let kp = Bgn.keygen ~bits:64 drbg in
  let pk = kp.Bgn.pk in
  let group = pk.Bgn.group in
  let rng = Drbg.rng drbg in
  let time_us f =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.3 do
      ignore (f ());
      incr iters
    done;
    ((Unix.gettimeofday () -. t0) *. 1_000_000. /. float_of_int !iters, !iters)
  in
  let p = Pairing.random_order_n_point group rng in
  let q = Pairing.random_order_n_point group rng in
  let t_old_us, old_iters = time_us (fun () -> Pairing.pairing_affine group p q) in
  let t_scalar_us, _ = time_us (fun () -> Pairing.pairing group p q) in
  (* The shape Scheme.aggregate actually runs: left arguments precomputed
     once (the per-table cache), many pairs sharing one final
     exponentiation. Per-pairing cost is the batch time over its size. *)
  let batch_size = 8 in
  let batch =
    List.init batch_size (fun _ ->
        ( Pairing.precompute group (Pairing.random_order_n_point group rng),
          Pairing.random_order_n_point group rng ))
  in
  let t_batch_total_us, _ = time_us (fun () -> Pairing.pairing_prod group batch) in
  let t_batch_us = t_batch_total_us /. float_of_int batch_size in
  let engine_speedup = t_old_us /. t_batch_us in
  Printf.printf
    "pairing  affine %8.1f us   scalar %8.1f us   batched(%d) %8.1f us/pairing   speedup %.1fx (%d affine iters)\n%!"
    t_old_us t_scalar_us batch_size t_batch_us engine_speedup old_iters;
  (* End to end: the PR 1 two-attribute SUM workload (60 rows, B = 2,
     arity 2), instrumented. The legacy estimate swaps each batched
     pairing back to its affine price and leaves everything else alone —
     conservative, since the old engine also paid per-step invm in every
     scalar multiplication. *)
  let rows = 60 in
  let table = Tpch.generate ~rows (Drbg.create "bench-pr6-table") in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag"; "l_linestatus" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("l_returnflag", [ str "A"; str "N"; str "R" ]);
          ("l_linestatus", [ str "O"; str "F" ]) ]
      (Drbg.create "pr6-sum")
  in
  let enc = Scheme.encrypt_table client table in
  let q = Query.make ~group_by:[ "l_returnflag"; "l_linestatus" ] (Query.Sum "l_quantity") in
  let (results, snap, _, _), query_ms = time_ms (fun () -> run_instrumented client enc q) in
  let cv n = Option.value (List.assoc_opt n snap.Obs.counters) ~default:0 in
  let pairings = cv "pairing.pairings" in
  let prod_calls = cv "pairing.prod_calls" in
  let precomp_hits = cv "pairing.precomp_hits" in
  let invm = cv "bigint.invm" in
  let invm_batch = cv "bigint.invm_batch" in
  let channels = Sagma_bgn.Crt_channels.channels client.Scheme.pp.Scheme.channels in
  (* §6 cost model: one pairing per row per block (B^arity = 4) per CRT
     channel; the engine rewrite must not change what gets counted. *)
  let expected_pairings = rows * 4 * channels in
  let legacy_ms =
    query_ms -. (float_of_int pairings *. t_batch_us /. 1000.)
    +. (float_of_int pairings *. t_old_us /. 1000.)
  in
  let query_speedup = legacy_ms /. query_ms in
  Printf.printf
    "sum_two_attrs: %d groups   %8.1f ms (legacy est %8.1f ms, %.1fx)   pairings %d (model %d)\n%!"
    (List.length results) query_ms legacy_ms query_speedup pairings expected_pairings;
  Printf.printf "counters: prod_calls %d   precomp_hits %d   invm %d   invm_batch %d\n%!"
    prod_calls precomp_hits invm invm_batch;
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  check (pairings = expected_pairings)
    (Printf.sprintf "pairings counter %d != n*B^arity*c = %d" pairings expected_pairings);
  check (engine_speedup >= 4.)
    (Printf.sprintf "engine speedup %.2fx < 4x" engine_speedup);
  check (query_speedup >= 4.)
    (Printf.sprintf "estimated query speedup %.2fx < 4x" query_speedup);
  check (prod_calls > 0) "pairing.prod_calls stayed zero";
  check (invm_batch > 0) "bigint.invm_batch stayed zero";
  check (invm < pairings)
    (Printf.sprintf "bigint.invm %d did not collapse below pairings %d" invm pairings);
  let passed = !failures = [] in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":1,\"bench\":\"pr6\",\"full\":%b,\"rows\":%d,\
        \"micro\":{\"pairing_affine_us\":%.3f,\"pairing_scalar_us\":%.3f,\
        \"pairing_batched_us\":%.3f,\"batch_size\":%d,\"engine_speedup\":%.3f},\
        \"query\":{\"name\":\"sum_two_attrs\",\"result_groups\":%d,\
        \"query_ms\":%.3f,\"legacy_est_ms\":%.3f,\"query_speedup\":%.3f,\
        \"pairings\":%d,\"expected_pairings\":%d,\"channels\":%d,\
        \"prod_calls\":%d,\"precomp_hits\":%d,\"invm\":%d,\"invm_batch\":%d},\
        \"passed\":%b}"
       full rows t_old_us t_scalar_us t_batch_us batch_size engine_speedup
       (List.length results) query_ms legacy_ms query_speedup pairings expected_pairings
       channels prod_calls precomp_hits invm invm_batch passed);
  let path = "BENCH_PR6.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (Buffer.length buf + 1);
  (* No [pairing_batched_us] in the history: a handful-of-us microbench
     swings well past the trend tolerance run to run, while the
     within-run [engine_speedup] ratio self-normalizes machine speed
     away and the ms-scale query time is coarse enough to gate. *)
  append_history ~pr:6 ~bench:"pr6"
    [ ("engine_speedup", engine_speedup, "ratio");
      ("sum_two_attrs.query_ms", query_ms, "ms") ];
  if not passed then
    failwith ("bench_pr6: " ^ String.concat "; " (List.rev !failures))

(* --- BENCH_PR8.json: resource profiler overhead + per-query allocation ------------------- *)

module Prof = Sagma_obs.Prof

(* PR 8 adds span-attributed allocation sampling and per-request GC
   deltas, both riding the PR 5 tracing path — so the cost question is
   the same one: serving the PR 4 workload with --trace-sample 1 AND the
   profiler on must not halve throughput against the untraced baseline.
   The second headline number is the per-query allocation of the PR 1
   two-attribute SUM, in minor words: a machine-independent quantity the
   trend harness can watch for allocation regressions. *)
let bench_pr8 () =
  header "BENCH_PR8.json: profiled serving throughput and per-query allocation";
  let rows = if full then 60 else 12 in
  let clients = 4 in
  let requests = if full then 12 else 6 in
  let workers = 4 in
  let table = Tpch.generate ~rows (Drbg.create "bench-pr8") in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("l_returnflag", [ str "A"; str "N"; str "R" ]) ]
      (Drbg.create "pr8-client")
  in
  let enc = Scheme.encrypt_table client table in
  let q = Query.make ~group_by:[ "l_returnflag" ] Query.Count in
  let req = Rpc.Aggregate { name = "t"; token = Scheme.token client q } in
  let state ?(trace_sample = 0) () =
    let s = Rpc_server.create ~trace_sample () in
    (match Rpc_server.handle s (Rpc.Upload { name = "t"; table = enc }) with
     | Rpc.Ack -> ()
     | _ -> failwith "bench_pr8: upload failed");
    s
  in
  let total = clients * requests in
  (* Untraced baseline: collection off, profiler off. *)
  Obs.set_enabled false;
  let off_elapsed, off_ok, _ =
    with_server ~workers ~port:7466 (Rpc_server.handle_encoded (state ())) (fun () ->
        drive_clients ~port:7466 ~clients ~requests ~think_s:0. req)
  in
  (* Profiled run: every request traced, allocation sampler on. *)
  Obs.reset ();
  Trace.reset ();
  Prof.reset ();
  Obs.set_enabled true;
  Prof.start ();
  let (on_elapsed, on_ok, _), mode, gc_deltas_ok =
    Fun.protect
      ~finally:(fun () ->
        Prof.stop ();
        Obs.set_enabled false)
      (fun () ->
        with_server ~workers ~port:7467 (Rpc_server.handle_encoded (state ~trace_sample:1 ())) (fun () ->
            let timing = drive_clients ~port:7467 ~clients ~requests ~think_s:0. req in
            (* Every traced request must carry a real GC differential. *)
            let rts = Trace.requests () in
            let gc_ok =
              rts <> []
              && List.for_all (fun rt -> rt.Trace.r_gc.Trace.gc_minor_words > 0) rts
            in
            (timing, Prof.mode_name (), gc_ok)))
  in
  if off_ok <> total || on_ok <> total then
    failwith
      (Printf.sprintf "bench_pr8: dropped requests (untraced %d/%d, profiled %d/%d)" off_ok total
         on_ok total);
  let rps elapsed = float_of_int total /. elapsed in
  let ratio = rps on_elapsed /. rps off_elapsed in
  let bound = 0.5 in
  Printf.printf
    "untraced %8.1f req/s (%.0f ms)   profiled[%s] %8.1f req/s (%.0f ms)   ratio %.2f (bound %.2f)\n%!"
    (rps off_elapsed) (off_elapsed *. 1000.) mode (rps on_elapsed) (on_elapsed *. 1000.) ratio
    bound;
  (* Per-query allocation: one traced, profiled run of the PR 1
     two-attribute SUM. The gc block gives the minor words, the
     allocation table names the site the words belong to. *)
  let pair_config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag"; "l_linestatus" ] ()
  in
  let sum_client =
    Scheme.setup pair_config
      ~domains:
        [ ("l_returnflag", [ str "A"; str "N"; str "R" ]);
          ("l_linestatus", [ str "O"; str "F" ]) ]
      (Drbg.create "pr8-sum")
  in
  let sum_enc = Scheme.encrypt_table sum_client table in
  let sum_q = Query.make ~group_by:[ "l_returnflag"; "l_linestatus" ] (Query.Sum "l_quantity") in
  Obs.reset ();
  Trace.reset ();
  Prof.reset ();
  Obs.set_enabled true;
  Prof.start ();
  let alloc_words, top_site, top_words =
    Fun.protect
      ~finally:(fun () ->
        Prof.stop ();
        Prof.reset ();
        Obs.set_enabled false;
        Obs.reset ();
        Trace.reset ())
      (fun () ->
        let _, rt = Trace.with_request_full (fun () -> Scheme.query sum_client sum_enc sum_q) in
        let top_site, top_words =
          match rt.Trace.r_alloc with (s, w) :: _ -> (s, w) | [] -> ("(none)", 0)
        in
        (rt.Trace.r_gc.Trace.gc_minor_words, top_site, top_words))
  in
  Printf.printf "sum_two_attrs: %d minor words/query   top site %s (%d sampled words)\n%!"
    alloc_words top_site top_words;
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  check (ratio >= bound)
    (Printf.sprintf "profiled throughput ratio %.2f < %.2f" ratio bound);
  check gc_deltas_ok "a traced request reported a zero GC differential";
  check (alloc_words > 0) "two-attribute SUM reported zero minor words";
  check (top_site = "pairing_loop")
    (Printf.sprintf "top allocation site %S, expected pairing_loop" top_site);
  let passed = !failures = [] in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":1,\"bench\":\"pr8\",\"full\":%b,\"rows\":%d,\
        \"clients\":%d,\"requests_per_client\":%d,\"workers\":%d,\
        \"profiler_mode\":\"%s\",\
        \"untraced\":{\"elapsed_ms\":%.3f,\"rps\":%.3f},\
        \"profiled\":{\"elapsed_ms\":%.3f,\"rps\":%.3f},\
        \"throughput_ratio\":%.3f,\"ratio_bound\":%.2f,\"gc_deltas_ok\":%b,\
        \"sum_two_attrs\":{\"alloc_minor_words\":%d,\"top_site\":\"%s\",\
        \"top_site_words\":%d},\"passed\":%b}"
       full rows clients requests workers mode (off_elapsed *. 1000.) (rps off_elapsed)
       (on_elapsed *. 1000.) (rps on_elapsed) ratio bound gc_deltas_ok alloc_words
       (Obs.json_escape top_site) top_words passed);
  let path = "BENCH_PR8.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (Buffer.length buf + 1);
  append_history ~pr:8 ~bench:"pr8"
    [ ("untraced_rps", rps off_elapsed, "req_per_s");
      ("profiled_rps", rps on_elapsed, "req_per_s"); ("throughput_ratio", ratio, "ratio");
      ("sum_two_attrs.alloc_minor_words", float_of_int alloc_words, "words") ];
  if not passed then failwith ("bench_pr8: " ^ String.concat "; " (List.rev !failures))

(* --- PR 9: scatter-gather sharding ------------------------------------------------------ *)

module Router = Sagma_protocol.Router

(* [with_cluster ~shards ~base_port f] runs [f router] against [shards]
   live storage nodes (shard i of n on base_port+i) fronted by a query
   router served on base_port+shards; the table is uploaded through the
   router so every replica holds it and the router caches its public
   key. *)
let with_cluster ~shards ~base_port ~enc f =
  let rec spin i k =
    if i = shards then k ()
    else
      let s = Rpc_server.create ~shard:(i, shards) () in
      with_server ~workers:0 ~port:(base_port + i) (Rpc_server.handle_encoded s) (fun () ->
          spin (i + 1) k)
  in
  spin 0 (fun () ->
      let endpoints = List.init shards (fun i -> string_of_int (base_port + i)) in
      let router = Router.create endpoints in
      Fun.protect
        ~finally:(fun () -> Router.shutdown router)
        (fun () ->
          (match Router.handle router (Rpc.Upload { name = "t"; table = enc }) with
           | Rpc.Ack -> ()
           | Rpc.Failed { message; _ } -> failwith ("bench_pr9: upload failed: " ^ message)
           | _ -> failwith "bench_pr9: unexpected upload reply");
          with_server ~workers:2 ~port:(base_port + shards) (Router.handle_encoded router)
            (fun () -> f router)))

(* Scatter-gather speedup on a pairing-bound SUM: the same workload
   against 1 shard and against 4, both through a coordinator, so the
   only variable is how many nodes split the Miller loops. Wall-clock
   speedup needs real cores; the merge/identity/no-decrypt invariants
   hold everywhere and are always asserted. *)
let bench_pr9 () =
  header "BENCH_PR9.json: 1-shard vs 4-shard aggregate throughput through the coordinator";
  let rows = if full then 40 else 12 in
  let clients = 2 in
  let requests = if full then 4 else 2 in
  let shards = 4 in
  let table = Tpch.generate ~rows (Drbg.create "bench-pr9") in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("l_returnflag", [ str "A"; str "N"; str "R" ]) ]
      (Drbg.create "pr9-client")
  in
  let enc = Scheme.encrypt_table client table in
  (* SUM keeps the pairings (not the transport) on the critical path —
     the workload sharding is supposed to split. *)
  let q = Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity") in
  let tok = Scheme.token client q in
  let req = Rpc.Aggregate { name = "t"; token = tok } in
  let total = clients * requests in
  let run shards base_port =
    with_cluster ~shards ~base_port ~enc (fun _router ->
        let elapsed, ok, _ =
          drive_clients ~port:(base_port + shards) ~clients ~requests ~think_s:0. req
        in
        if ok <> total then
          failwith (Printf.sprintf "bench_pr9: %d-shard run dropped requests (%d/%d)" shards ok total);
        float_of_int total /. elapsed)
  in
  let rps1 = run 1 7471 in
  let rps4 = run shards 7471 in
  let speedup = rps4 /. rps1 in
  (* Invariant run: merged result vs the single-server answer, byte for
     byte, with the dlog counter proving the coordinator never
     decrypted. Metrics must be live or the zero delta would be
     vacuous, so the run brackets set_enabled. *)
  let dlog = Obs.counter "bgn.dlog.solves" in
  let merged, solves_during_merge, shard_calls =
    Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled false)
      (fun () ->
        with_cluster ~shards ~base_port:7471 ~enc (fun router ->
            let calls0 = Obs.value (Obs.counter "router.shard_calls") in
            let d0 = Obs.value dlog in
            let merged =
              match Router.handle router req with
              | Rpc.Aggregates r -> r
              | Rpc.Failed { message; _ } -> failwith ("bench_pr9: aggregate failed: " ^ message)
              | _ -> failwith "bench_pr9: unexpected aggregate reply"
            in
            ( merged,
              Obs.value dlog - d0,
              Obs.value (Obs.counter "router.shard_calls") - calls0 )))
  in
  let direct = Scheme.aggregate enc tok in
  let byte_identical =
    Serialize.agg_result_to_string merged = Serialize.agg_result_to_string direct
  in
  (* The client-side decrypt does solve dlogs — proving the counter
     watches the path the zero delta above vouches for. *)
  Obs.set_enabled true;
  let d0 = Obs.value dlog in
  let rows_out =
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled false)
      (fun () -> Scheme.decrypt client tok merged ~total_rows:rows)
  in
  let client_solves = Obs.value dlog - d0 in
  let multi_core = Domain.recommended_domain_count () >= shards in
  Printf.printf
    "1 shard %6.2f req/s   %d shards %6.2f req/s   speedup %.2fx%s\n%!" rps1 shards rps4 speedup
    (if multi_core then ""
     else " (single-core container: domain overhead dominates; the >=2.5x gate applies on multi-core hosts)");
  Printf.printf
    "merged vs single-server: byte_identical=%b   coordinator dlog solves=%d   shard calls=%d   client dlog solves=%d   groups=%d\n%!"
    byte_identical solves_during_merge shard_calls client_solves (List.length rows_out);
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  check byte_identical "merged aggregate differs from the single-server answer";
  check (solves_during_merge = 0)
    (Printf.sprintf "coordinator solved %d dlogs during scatter-gather" solves_during_merge);
  check (shard_calls = shards)
    (Printf.sprintf "aggregate fanned out to %d shards, expected %d" shard_calls shards);
  check (client_solves > 0) "client decrypt registered no dlog solves (counter dead?)";
  check (rows_out <> []) "decrypted result is empty";
  if multi_core then
    check (speedup >= 2.5) (Printf.sprintf "%d-shard speedup %.2fx < 2.5x" shards speedup);
  let passed = !failures = [] in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":1,\"bench\":\"pr9\",\"full\":%b,\"rows\":%d,\
        \"clients\":%d,\"requests_per_client\":%d,\"shards\":%d,\
        \"single\":{\"rps\":%.3f},\"sharded\":{\"rps\":%.3f},\
        \"speedup\":%.3f,\"speedup_gate\":2.5,\"multi_core\":%b,\
        \"byte_identical\":%b,\"coordinator_dlog_solves\":%d,\
        \"shard_calls\":%d,\"client_dlog_solves\":%d,\"passed\":%b}"
       full rows clients requests shards rps1 rps4 speedup multi_core byte_identical
       solves_during_merge shard_calls client_solves passed);
  let path = "BENCH_PR9.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (Buffer.length buf + 1);
  append_history ~pr:9 ~bench:"pr9"
    ([ ("single_rps", rps1, "req_per_s"); ("sharded4_rps", rps4, "req_per_s") ]
     @ (if multi_core then [ ("shard_speedup", speedup, "ratio") ] else []));
  if not passed then failwith ("bench_pr9: " ^ String.concat "; " (List.rev !failures))

(* --- PR 10: fleet health probing & watchdog overhead ------------------------------------ *)

module Watchdog = Sagma_obs.Watchdog

(* Two questions, both gated: (1) what does the health stack — the
   background shard prober plus a 100ms watchdog poll loop — cost on the
   PR 4 aggregate workload (throughput ratio on vs off must stay >=
   0.9)? (2) how fast does the prober notice a killed shard (must be
   under 2 probe intervals, measured from the moment the listener is
   gone)? The kill/recover cycle also asserts the watchdog edge events:
   shard-down fires on detection and resolves on recovery. *)
let bench_pr10 () =
  header "BENCH_PR10.json: health probing + watchdog overhead, shard-kill detection latency";
  let rows = if full then 40 else 12 in
  let clients = 2 in
  let requests = if full then 6 else 4 in
  let shards = 2 in
  let probe_interval_ms = 100 in
  let base_port = 7531 in
  let table = Tpch.generate ~rows (Drbg.create "bench-pr10") in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:1 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:[ ("l_returnflag", [ str "A"; str "N"; str "R" ]) ]
      (Drbg.create "pr10-client")
  in
  let enc = Scheme.encrypt_table client table in
  let q = Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity") in
  let tok = Scheme.token client q in
  let req = Rpc.Aggregate { name = "t"; token = tok } in
  let total = clients * requests in
  let wait_for ?(timeout_s = 10.) pred msg =
    let t0 = Unix.gettimeofday () in
    let rec go () =
      if pred () then ()
      else if Unix.gettimeofday () -. t0 > timeout_s then
        failwith ("bench_pr10: timed out waiting for " ^ msg)
      else begin
        Unix.sleepf 0.002;
        go ()
      end
    in
    go ()
  in
  (* The PR 4 aggregate workload through a 2-shard coordinator, with the
     health stack on or off. The watchdog poll loop runs at the probe
     cadence, like bin/sagma_server does. *)
  let run_rps ~probing =
    let rec spin i k =
      if i = shards then k ()
      else
        let s = Rpc_server.create ~shard:(i, shards) () in
        with_server ~workers:0 ~port:(base_port + i) (Rpc_server.handle_encoded s) (fun () ->
            spin (i + 1) k)
    in
    spin 0 (fun () ->
        let endpoints = List.init shards (fun i -> string_of_int (base_port + i)) in
        let wd = if probing then Some (Watchdog.create ()) else None in
        let router =
          Router.create
            ~probe_interval_ms:(if probing then probe_interval_ms else 0)
            ?watchdog:wd endpoints
        in
        Fun.protect
          ~finally:(fun () -> Router.shutdown router)
          (fun () ->
            if probing then Router.start_probes router;
            let wd_stop = Atomic.make false in
            let wd_domain =
              Option.map
                (fun w ->
                  Domain.spawn (fun () ->
                      while not (Atomic.get wd_stop) do
                        Watchdog.poll w ~snapshot:(Obs.snapshot ())
                          ~shards_down:(Router.down_count router);
                        Unix.sleepf (float_of_int probe_interval_ms /. 1000.)
                      done))
                wd
            in
            Fun.protect
              ~finally:(fun () ->
                Atomic.set wd_stop true;
                Option.iter Domain.join wd_domain)
              (fun () ->
                (match Router.handle router (Rpc.Upload { name = "t"; table = enc }) with
                 | Rpc.Ack -> ()
                 | Rpc.Failed { message; _ } -> failwith ("bench_pr10: upload failed: " ^ message)
                 | _ -> failwith "bench_pr10: unexpected upload reply");
                with_server ~workers:2 ~port:(base_port + shards) (Router.handle_encoded router)
                  (fun () ->
                    let elapsed, ok, _ =
                      drive_clients ~port:(base_port + shards) ~clients ~requests ~think_s:0. req
                    in
                    if ok <> total then
                      failwith
                        (Printf.sprintf "bench_pr10: run dropped requests (%d/%d)" ok total);
                    float_of_int total /. elapsed))))
  in
  (* Three runs per side, best of each: the quantity under test is the
     steady-state cost of the health stack, not scheduler noise. *)
  let best f = max (f ()) (max (f ()) (f ())) in
  let rps_off = best (fun () -> run_rps ~probing:false) in
  let rps_on = best (fun () -> run_rps ~probing:true) in
  let ratio = rps_on /. rps_off in
  (* Kill/recover cycle: shard 1 runs on its own stop flag so the
     listener can be torn down mid-flight, like a SIGKILL'd process. *)
  let detect_cycle () =
    let s0 = Rpc_server.create ~shard:(0, shards) () in
    let s1 = Rpc_server.create ~shard:(1, shards) () in
    let p0 = base_port and p1 = base_port + 1 in
    let spawn_shard1 () =
      let stop = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            Transport.listen_and_serve ~workers:0 ~max_conns:16 ~request_timeout_ms:0
              ~stop:(fun () -> Atomic.get stop)
              ~port:p1 (Rpc_server.handle_encoded s1))
      in
      let rec wait_up tries =
        match Transport.connect ~port:p1 () with
        | fd -> Unix.close fd
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when tries > 0 ->
          Unix.sleepf 0.02;
          wait_up (tries - 1)
      in
      wait_up 250;
      (stop, d)
    in
    with_server ~workers:0 ~port:p0 (Rpc_server.handle_encoded s0) (fun () ->
        let stop1, srv1 = spawn_shard1 () in
        let wd = Watchdog.create () in
        let router =
          Router.create ~probe_interval_ms ~watchdog:wd [ string_of_int p0; string_of_int p1 ]
        in
        Fun.protect
          ~finally:(fun () -> Router.shutdown router)
          (fun () ->
            Router.start_probes router;
            (* A probed RTT on both shards means a full round has
               completed — the baseline for the kill. *)
            wait_for
              (fun () ->
                List.for_all
                  (fun h -> h.Rpc.shc_reachable && h.Rpc.shc_rtt_ms > 0.)
                  (Router.shard_health router))
              "both shards probed up";
            Atomic.set stop1 true;
            Domain.join srv1;
            let t0 = Unix.gettimeofday () in
            wait_for (fun () -> Router.down_count router >= 1) "shard-kill detection";
            let detect_s = Unix.gettimeofday () -. t0 in
            Watchdog.poll wd ~snapshot:(Obs.snapshot ())
              ~shards_down:(Router.down_count router);
            let alert_fired = Watchdog.firing_count wd > 0 in
            let stop1b, srv1b = spawn_shard1 () in
            let t1 = Unix.gettimeofday () in
            wait_for (fun () -> Router.down_count router = 0) "shard recovery";
            let recover_s = Unix.gettimeofday () -. t1 in
            Watchdog.poll wd ~snapshot:(Obs.snapshot ())
              ~shards_down:(Router.down_count router);
            let alert_resolved = Watchdog.firing_count wd = 0 in
            Atomic.set stop1b true;
            Domain.join srv1b;
            (detect_s, recover_s, alert_fired, alert_resolved)))
  in
  let detect_gate_s = 2. *. float_of_int probe_interval_ms /. 1000. in
  (* One retry damps scheduler hiccups on loaded CI runners; the gate is
     about the probing design, not a worst-case latency SLO. *)
  let detect_s, recover_s, alert_fired, alert_resolved =
    let ((d, _, _, _) as r) = detect_cycle () in
    if d < detect_gate_s then r else detect_cycle ()
  in
  Printf.printf
    "probes off %6.2f req/s   probes+watchdog on %6.2f req/s   ratio %.3f (gate >= 0.9)\n%!"
    rps_off rps_on ratio;
  Printf.printf
    "shard-kill detected in %.0f ms (gate < %.0f ms)   recovery seen in %.0f ms   alert fired=%b resolved=%b\n%!"
    (detect_s *. 1000.) (detect_gate_s *. 1000.) (recover_s *. 1000.) alert_fired alert_resolved;
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  check (ratio >= 0.9)
    (Printf.sprintf "health stack costs too much: on/off throughput ratio %.3f < 0.9" ratio);
  check (detect_s < detect_gate_s)
    (Printf.sprintf "detection took %.0f ms, over 2 probe intervals (%.0f ms)"
       (detect_s *. 1000.) (detect_gate_s *. 1000.));
  check alert_fired "watchdog did not fire shard-down after the kill";
  check alert_resolved "watchdog did not resolve shard-down after recovery";
  let passed = !failures = [] in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":1,\"bench\":\"pr10\",\"full\":%b,\"rows\":%d,\
        \"clients\":%d,\"requests_per_client\":%d,\"shards\":%d,\
        \"probe_interval_ms\":%d,\
        \"probes_off\":{\"rps\":%.3f},\"probes_on\":{\"rps\":%.3f},\
        \"overhead_ratio\":%.3f,\"ratio_gate\":0.9,\
        \"detect_latency_s\":%.4f,\"detect_gate_s\":%.3f,\
        \"recover_latency_s\":%.4f,\"alert_fired\":%b,\"alert_resolved\":%b,\
        \"passed\":%b}"
       full rows clients requests shards probe_interval_ms rps_off rps_on ratio detect_s
       detect_gate_s recover_s alert_fired alert_resolved passed);
  let path = "BENCH_PR10.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (Buffer.length buf + 1);
  (* Detection latency is NOT appended: it is uniform in [0, probe
     interval] depending on where in the probe cycle the kill lands, so
     two honest runs differ by far more than the trend gate's noise
     tolerance. The hard `< 2 probe intervals` gate above covers it. *)
  append_history ~pr:10 ~bench:"pr10"
    [ ("probes_off_rps", rps_off, "req_per_s"); ("probes_on_rps", rps_on, "req_per_s");
      ("health_overhead_ratio", ratio, "ratio") ];
  if not passed then failwith ("bench_pr10: " ^ String.concat "; " (List.rev !failures))

(* --- driver ---------------------------------------------------------------------------- *)

let benches =
  [ ("fig5a", fig5); ("fig5b", fig5); ("fig6a", fig6a); ("fig6b", fig6b); ("fig7", fig7);
    ("fig8a", fig8); ("fig8b", fig8); ("table9", table9); ("table10", table10);
    ("table11", table11); ("ablation:karatsuba", ablation_karatsuba);
    ("ablation:crt", ablation_crt); ("ablation:shift-strategy", ablation_shift_strategy);
    ("ablation:bsgs", ablation_bsgs); ("ablation:mapping", ablation_mapping);
    ("ablation:attack", ablation_attack); ("ablation:montgomery", ablation_montgomery); ("ablation:joint-index", ablation_joint_index); ("ablation:parallel", ablation_parallel); ("json", bench_json); ("json-pr3", bench_pr3); ("json-pr4", bench_pr4); ("json-pr5", bench_pr5); ("json-pr6", bench_pr6); ("json-pr8", bench_pr8); ("json-pr9", bench_pr9); ("json-pr10", bench_pr10); ("micro", micro) ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    if requested = [] then
      (* fig5a/fig5b and fig8a/fig8b share implementations; run each once. *)
      [ fig5; fig6a; fig6b; fig7; fig8; table9; table10; table11; ablation_karatsuba;
        ablation_crt; ablation_shift_strategy; ablation_bsgs; ablation_mapping;
        ablation_attack; ablation_montgomery; ablation_joint_index; ablation_parallel;
        bench_json; bench_pr3; bench_pr4; bench_pr5; bench_pr6; bench_pr8; bench_pr9;
        bench_pr10; micro ]
    else
      List.map
        (fun name ->
          match List.assoc_opt name benches with
          | Some f -> f
          | None ->
            Printf.eprintf "unknown bench %S; available: %s\n" name
              (String.concat ", " (List.map fst benches));
            exit 1)
        requested
  in
  Printf.printf "SAGMA benchmark harness (%s sizes)\n%!" (if full then "paper-scale" else "reduced");
  List.iter (fun f -> f ()) to_run

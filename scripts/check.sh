#!/bin/sh
# Repository gate: build, run every test suite, then smoke-test the
# instrumented bench target and validate the BENCH_PR1.json it emits.
# Usage: scripts/check.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== fuzz smoke (pinned seed, bounded counts) =="
# A deeper pass over the property/fuzz suites than the runtest default:
# the pinned seed keeps CI deterministic, the scale bound keeps it fast.
# Replay any failure with the SAGMA_PROP_SEED printed in its report
# (see TESTING.md).
SAGMA_PROP_SEED="sagma-fuzz-smoke" SAGMA_PROP_SCALE=200 \
  dune exec test/test_prop_wire.exe
SAGMA_PROP_SEED="sagma-fuzz-smoke" SAGMA_PROP_SCALE=100 \
  dune exec test/test_prop_bigint.exe
SAGMA_PROP_SEED="sagma-fuzz-smoke" \
  dune exec test/test_prop_audit.exe

echo "== observability smoke (server --metrics --audit --log-json + Stats RPC) =="
OBS_DIR=$(mktemp -d)
OBS_PORT=7499
SERVER=_build/default/bin/sagma_server.exe
CLI=_build/default/bin/sagma_cli.exe
cat > "$OBS_DIR/data.csv" <<'CSV'
salary,dept
1000,sales
2000,finance
3000,sales
4000,facility
CSV
"$SERVER" --port "$OBS_PORT" --metrics --audit --workers 4 \
  --request-timeout-ms 10000 \
  --log-json "$OBS_DIR/server.jsonl" > "$OBS_DIR/server.out" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$OBS_DIR"' EXIT
sleep 1
"$CLI" remote-upload --csv "$OBS_DIR/data.csv" --schema "salary:int,dept:str" \
  --group-by dept --values salary --filters dept --threshold 1 \
  --port "$OBS_PORT" --name smoke --key-file "$OBS_DIR/sagma.key"
"$CLI" remote-query --sum salary --group-by dept \
  --port "$OBS_PORT" --name smoke --key-file "$OBS_DIR/sagma.key"
# Concurrent clients against the 4-worker pool: all must succeed.
for i in 1 2 3; do
  "$CLI" remote-query --sum salary --group-by dept \
    --port "$OBS_PORT" --name smoke --key-file "$OBS_DIR/sagma.key" \
    > "$OBS_DIR/conc.$i.out" 2>&1 &
  eval "CONC_$i=\$!"
done
wait "$CONC_1" "$CONC_2" "$CONC_3"
for i in 1 2 3; do grep -q "sales" "$OBS_DIR/conc.$i.out"; done
echo "concurrent queries OK"
# The Stats RPC must answer with a parseable Prometheus exposition:
# a known counter, the +Inf-closed bucket family, and quantile gauges.
"$CLI" stats --port "$OBS_PORT" --prometheus > "$OBS_DIR/exposition.txt"
grep -q "^sagma_proto_requests_total " "$OBS_DIR/exposition.txt"
grep -q "^sagma_scheme_agg_rows_total " "$OBS_DIR/exposition.txt"
grep -q 'sagma_proto_request_ms_bucket{le="+Inf"}' "$OBS_DIR/exposition.txt"
grep -q "^sagma_proto_request_ms_p50 " "$OBS_DIR/exposition.txt"
grep -q "^sagma_proto_request_ms_p99 " "$OBS_DIR/exposition.txt"
# The audit ran and flagged nothing.
"$CLI" stats --port "$OBS_PORT" | grep "^audit: " | grep -q " failures=0"
# The structured log is non-empty JSON lines including request events.
[ -s "$OBS_DIR/server.jsonl" ]
grep -q '"event":"request"' "$OBS_DIR/server.jsonl"
python3 -c 'import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty log"
assert any(e["event"] == "request" and "ms" in e for e in lines), lines' \
  "$OBS_DIR/server.jsonl"
kill "$SERVER_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$OBS_DIR"
echo "observability smoke OK"

echo "== bench smoke (json targets -> BENCH_PR1.json, BENCH_PR3.json, BENCH_PR4.json) =="
dune exec bench/main.exe -- json
dune exec bench/main.exe -- json-pr3
dune exec bench/main.exe -- json-pr4

echo "== validate BENCH_PR1.json =="
python3 - <<'EOF'
import json, sys

with open("BENCH_PR1.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "json"
workloads = doc["workloads"]
assert len(workloads) >= 4, f"expected >= 4 workloads, got {len(workloads)}"
for w in workloads:
    for key in ("name", "rows", "result_groups", "timings_ms", "spans", "metrics"):
        assert key in w, f"workload {w.get('name')} missing {key}"
    for phase in ("token", "aggregate", "decrypt"):
        assert w["timings_ms"][phase] >= 0
    assert w["result_groups"] > 0, f"{w['name']} returned no groups"
    names = [s["name"] for s in w["spans"]]
    assert names == ["token", "aggregate", "decrypt"], names
    counters = w["metrics"]["counters"]
    assert counters.get("scheme.agg.rows", 0) > 0, f"{w['name']}: no rows aggregated"
    if w["name"].startswith("sum"):
        assert counters.get("bgn.mul", 0) > 0, f"{w['name']}: no pairings recorded"

print(f"BENCH_PR1.json OK: {len(workloads)} workloads")
EOF

echo "== validate BENCH_PR3.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR3.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr3"
workloads = doc["workloads"]
assert len(workloads) >= 3, f"expected >= 3 workloads, got {len(workloads)}"
for w in workloads:
    for key in ("name", "rows", "timings_ms", "cost_model", "metrics"):
        assert key in w, f"workload {w.get('name')} missing {key}"
    cm = w["cost_model"]
    assert cm["rows_aggregated"] > 0, f"{w['name']}: no rows aggregated"
    if w["name"].startswith("sum"):
        assert cm["pairings"] > 0, f"{w['name']}: no pairings recorded"
        assert cm["pairings_per_row"] > 0
        assert cm["dlog_solves"] > 0, f"{w['name']}: no discrete logs solved"
    else:
        assert cm["pairings"] == 0, f"{w['name']}: COUNT should pair nothing"

print(f"BENCH_PR3.json OK: {len(workloads)} workloads")
EOF

echo "== validate BENCH_PR4.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR4.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr4"
assert doc["clients"] == 4, doc["clients"]
total = doc["clients"] * doc["requests_per_client"]
for mode in ("sequential", "pooled"):
    assert doc[mode]["rps"] > 0, f"{mode}: no throughput recorded"
    assert doc[mode]["elapsed_ms"] > 0
# The tentpole claim: pooled serving at K=4 clients beats sequential
# serving by at least 2x on the same workload.
assert doc["speedup"] >= 2.0, f"pooled speedup {doc['speedup']} < 2.0"
st = doc["stalled"]
assert st["passed"], st
assert st["fast_ok"] == st["fast_requests"], st
assert st["fast_max_latency_ms"] < st["stall_ms"], st

print(f"BENCH_PR4.json OK: speedup {doc['speedup']}x, "
      f"stalled-client max latency {st['fast_max_latency_ms']:.1f} ms")
EOF

echo "== all checks passed =="

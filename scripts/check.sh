#!/bin/sh
# Repository gate: build, run every test suite, then smoke-test the
# instrumented bench target and validate the BENCH_PR1.json it emits.
# Usage: scripts/check.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== fuzz smoke (pinned seed, bounded counts) =="
# A deeper pass over the property/fuzz suites than the runtest default:
# the pinned seed keeps CI deterministic, the scale bound keeps it fast.
# Replay any failure with the SAGMA_PROP_SEED printed in its report
# (see TESTING.md).
SAGMA_PROP_SEED="sagma-fuzz-smoke" SAGMA_PROP_SCALE=200 \
  dune exec test/test_prop_wire.exe
SAGMA_PROP_SEED="sagma-fuzz-smoke" SAGMA_PROP_SCALE=100 \
  dune exec test/test_prop_bigint.exe

echo "== bench smoke (json target -> BENCH_PR1.json) =="
dune exec bench/main.exe -- json

echo "== validate BENCH_PR1.json =="
python3 - <<'EOF'
import json, sys

with open("BENCH_PR1.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "json"
workloads = doc["workloads"]
assert len(workloads) >= 4, f"expected >= 4 workloads, got {len(workloads)}"
for w in workloads:
    for key in ("name", "rows", "result_groups", "timings_ms", "spans", "metrics"):
        assert key in w, f"workload {w.get('name')} missing {key}"
    for phase in ("token", "aggregate", "decrypt"):
        assert w["timings_ms"][phase] >= 0
    assert w["result_groups"] > 0, f"{w['name']} returned no groups"
    names = [s["name"] for s in w["spans"]]
    assert names == ["token", "aggregate", "decrypt"], names
    counters = w["metrics"]["counters"]
    assert counters.get("scheme.agg.rows", 0) > 0, f"{w['name']}: no rows aggregated"
    if w["name"].startswith("sum"):
        assert counters.get("bgn.mul", 0) > 0, f"{w['name']}: no pairings recorded"

print(f"BENCH_PR1.json OK: {len(workloads)} workloads")
EOF

echo "== all checks passed =="

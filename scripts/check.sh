#!/bin/sh
# Repository gate: build, run every test suite, then smoke-test the
# instrumented bench target and validate the BENCH_PR1.json it emits.
# Usage: scripts/check.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== fuzz smoke (pinned seed, bounded counts) =="
# A deeper pass over the property/fuzz suites than the runtest default:
# the pinned seed keeps CI deterministic, the scale bound keeps it fast.
# Replay any failure with the SAGMA_PROP_SEED printed in its report
# (see TESTING.md).
SAGMA_PROP_SEED="sagma-fuzz-smoke" SAGMA_PROP_SCALE=200 \
  dune exec test/test_prop_wire.exe
SAGMA_PROP_SEED="sagma-fuzz-smoke" SAGMA_PROP_SCALE=100 \
  dune exec test/test_prop_bigint.exe
SAGMA_PROP_SEED="sagma-fuzz-smoke" \
  dune exec test/test_prop_audit.exe

echo "== security games smoke (pinned seed, reduced trials) =="
# The adversary games (TESTING.md "Security games"): honest schemes must
# stay inside the Wilson acceptance region, the leaky mutants must be
# distinguished. 32 trials (16 for sim-ind) stays above the z^2 ~= 10.8
# floor where an always-winning adversary's interval clears 1/2.
SAGMA_GAMES_SEED="sagma-games-smoke" SAGMA_GAMES_TRIALS=32 \
  SAGMA_GAMES_JSON=GAMES.json dune exec test/test_games.exe
# A lost game must fail the gate: the EXPECT_FAIL run scores a known
# leaky scheme against the honest expectation, so the suite must exit
# nonzero — this checks the failure path all the way through the shell.
if SAGMA_GAMES_EXPECT_FAIL=1 dune exec test/test_games.exe > /dev/null 2>&1; then
  echo "games negative check FAILED: a lost game exited zero" >&2
  exit 1
fi
echo "games negative check OK (lost game exits nonzero)"

echo "== validate GAMES.json =="
python3 - <<'EOF'
import json

doc = json.load(open("GAMES.json"))
assert doc["schema_version"] == 1, doc.get("schema_version")
games = {g["game"]: g for g in doc["games"]}
expected = {
    "ind-cpa-bgn": False,
    "ind-cpa-paillier": False,
    "sim-ind-4.2": False,
    "ind-cpa-bgn-leaky": True,
    "ind-cpa-paillier-leaky": True,
    "sim-ind-4.2-leaky-sse": True,
}
assert set(games) == set(expected), set(games)
for name, broken in expected.items():
    g = games[name]
    assert g["distinguished"] == broken, (name, g)
    assert 0.0 <= g["lo"] <= g["hi"] <= 1.0, g
    assert abs(g["advantage"] - abs(g["win_rate"] - 0.5)) < 1e-9, g
    if broken:
        assert g["lo"] > 0.5, (name, g["lo"])
        assert g["winning_seeds"], f"{name}: no replayable winning seeds"

print(f"GAMES.json OK: {len(games)} games, mutants distinguished, honest within bound")
EOF

echo "== observability smoke (server --metrics --audit --log-json + Stats RPC) =="
OBS_DIR=$(mktemp -d)
OBS_PORT=7499
SERVER=_build/default/bin/sagma_server.exe
CLI=_build/default/bin/sagma_cli.exe
cat > "$OBS_DIR/data.csv" <<'CSV'
salary,dept
1000,sales
2000,finance
3000,sales
4000,facility
CSV
"$SERVER" --port "$OBS_PORT" --metrics --audit --workers 4 \
  --request-timeout-ms 10000 \
  --trace-sample 1 --slow-query-ms 1 --profile \
  --log-json "$OBS_DIR/server.jsonl" > "$OBS_DIR/server.out" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$OBS_DIR"' EXIT
sleep 1
"$CLI" remote-upload --csv "$OBS_DIR/data.csv" --schema "salary:int,dept:str" \
  --group-by dept --values salary --filters dept --threshold 1 \
  --port "$OBS_PORT" --name smoke --key-file "$OBS_DIR/sagma.key"
"$CLI" remote-query --sum salary --group-by dept \
  --port "$OBS_PORT" --name smoke --key-file "$OBS_DIR/sagma.key"
# Concurrent clients against the 4-worker pool: all must succeed.
for i in 1 2 3; do
  "$CLI" remote-query --sum salary --group-by dept \
    --port "$OBS_PORT" --name smoke --key-file "$OBS_DIR/sagma.key" \
    > "$OBS_DIR/conc.$i.out" 2>&1 &
  eval "CONC_$i=\$!"
done
wait "$CONC_1" "$CONC_2" "$CONC_3"
for i in 1 2 3; do grep -q "sales" "$OBS_DIR/conc.$i.out"; done
echo "concurrent queries OK"
# The Stats RPC must answer with a parseable Prometheus exposition:
# a known counter, the +Inf-closed bucket family, and quantile gauges.
"$CLI" stats --port "$OBS_PORT" --prometheus > "$OBS_DIR/exposition.txt"
grep -q "^sagma_proto_requests_total " "$OBS_DIR/exposition.txt"
grep -q "^sagma_scheme_agg_rows_total " "$OBS_DIR/exposition.txt"
grep -q 'sagma_proto_request_ms_bucket{le="+Inf"}' "$OBS_DIR/exposition.txt"
grep -q "^sagma_proto_request_ms_p50 " "$OBS_DIR/exposition.txt"
grep -q "^sagma_proto_request_ms_p99 " "$OBS_DIR/exposition.txt"
# v5 additions: server uptime and the process-level GC gauges derived
# from the Stats reply's gc section.
grep -q "^sagma_uptime_seconds " "$OBS_DIR/exposition.txt"
grep -q "^ocaml_gc_heap_words " "$OBS_DIR/exposition.txt"
grep -q "^ocaml_gc_minor_words_total " "$OBS_DIR/exposition.txt"
# A traced query's reply must carry the EXPLAIN trailer: per-phase
# timings plus the cost block derived from request-scoped counters.
"$CLI" remote-query --sum salary --group-by dept --explain \
  --port "$OBS_PORT" --name smoke --key-file "$OBS_DIR/sagma.key" \
  > "$OBS_DIR/explain.out"
grep -q "sales" "$OBS_DIR/explain.out"
grep -q -- "-- explain (server trace " "$OBS_DIR/explain.out"
grep -q "cost.agg_rows" "$OBS_DIR/explain.out"
grep -q "cost.bgn_mul" "$OBS_DIR/explain.out"
# With --profile on the server, the trailer also carries the request's
# GC differential (v5).
grep -q "gc.minor_words" "$OBS_DIR/explain.out"
# The live dashboard's script mode: one frame against the same server.
"$CLI" top --once --port "$OBS_PORT" > "$OBS_DIR/top.out"
grep -q "req/s" "$OBS_DIR/top.out"
grep -q "pairings/s" "$OBS_DIR/top.out"
grep -q "heap" "$OBS_DIR/top.out"
grep -q "MiB" "$OBS_DIR/top.out"
echo "top --once OK"
# Export the completed-trace ring as Chrome trace-event JSON and
# validate its shape: every sampled request is an intact span tree
# with the aggregate phase and the pairing loop under it.
"$CLI" trace --port "$OBS_PORT" --out "$OBS_DIR/trace.json"
python3 -c 'import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "no trace events exported"
xs = [e for e in events if e.get("ph") == "X"]
names = {e["name"] for e in xs}
assert "request" in names, names
assert "aggregate" in names, names
assert "pairing_loop" in names, names
roots = [e for e in xs if e["name"] == "request"]
assert all("trace_id" in e.get("args", {}) for e in roots), roots
assert all(e["dur"] >= 0 for e in xs)
print(f"trace export OK: {len(roots)} request tree(s), {len(xs)} spans")' \
  "$OBS_DIR/trace.json"
cp "$OBS_DIR/trace.json" sagma_trace.json
# The audit ran and flagged nothing.
"$CLI" stats --port "$OBS_PORT" | grep "^audit: " | grep -q " failures=0"
# The structured log is non-empty JSON lines including request events
# (now with duration_ms/bytes_out) and, with --slow-query-ms 1, at
# least one slow_query event carrying a span tree and cost block.
[ -s "$OBS_DIR/server.jsonl" ]
grep -q '"event":"request"' "$OBS_DIR/server.jsonl"
grep -q '"event":"slow_query"' "$OBS_DIR/server.jsonl"
python3 -c 'import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty log"
assert any(e["event"] == "request" and "ms" in e for e in lines), lines
reqs = [e for e in lines if e["event"] == "request"]
assert all("duration_ms" in e and "bytes_out" in e for e in reqs), reqs
slow = [e for e in lines if e["event"] == "slow_query"]
assert slow, "no slow_query events despite --slow-query-ms 1"
assert any("spans" in e and "cost_bgn_mul" in e for e in slow), slow' \
  "$OBS_DIR/server.jsonl"
kill "$SERVER_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$OBS_DIR"
echo "observability smoke OK"

echo "== cluster smoke (2 shards + coordinator, v6 scatter-gather, v7 health) =="
CL_DIR=$(mktemp -d)
SHARD0_PORT=7501
SHARD1_PORT=7502
COORD_PORT=7503
cat > "$CL_DIR/data.csv" <<'CSV'
salary,dept
1000,sales
2000,finance
3000,sales
4000,facility
CSV
# Two storage nodes, each owning half the row space, plus a query
# router fanning out over them. --metrics on the shards lets the
# coordinator's sampled requests pull EXPLAIN trailers back for span
# grafting; --trace-sample 1 on the coordinator traces every request.
"$SERVER" --port "$SHARD0_PORT" --shard-of 0/2 --metrics \
  > "$CL_DIR/shard0.out" 2>&1 &
SHARD0_PID=$!
"$SERVER" --port "$SHARD1_PORT" --shard-of 1/2 --metrics \
  > "$CL_DIR/shard1.out" 2>&1 &
SHARD1_PID=$!
sleep 1
"$SERVER" --port "$COORD_PORT" \
  --coordinator "127.0.0.1:$SHARD0_PORT,127.0.0.1:$SHARD1_PORT" \
  --trace-sample 1 --probe-interval-ms 200 --watchdog-interval-ms 200 \
  --log-json "$CL_DIR/coord.jsonl" > "$CL_DIR/coord.out" 2>&1 &
COORD_PID=$!
trap 'kill "$SHARD0_PID" "$SHARD1_PID" "$COORD_PID" 2>/dev/null || true; rm -rf "$CL_DIR"' EXIT
sleep 1
grep -q "shard 0/2" "$CL_DIR/shard0.out"
grep -q "coordinator over 2 shards" "$CL_DIR/coord.out"
# Upload and a remote GROUP BY, both through the coordinator: the
# shards each pair only their slice and the router ⊕-merges the
# partials — the client sees one ordinary answer.
"$CLI" remote-upload --csv "$CL_DIR/data.csv" --schema "salary:int,dept:str" \
  --group-by dept --values salary --filters dept --threshold 1 \
  --port "$COORD_PORT" --name cluster --key-file "$CL_DIR/sagma.key"
"$CLI" remote-query --sum salary --group-by dept \
  --port "$COORD_PORT" --name cluster --key-file "$CL_DIR/sagma.key" \
  > "$CL_DIR/query.out"
grep -q "sales" "$CL_DIR/query.out"
grep -q "4000" "$CL_DIR/query.out"
# The v6 Stats topology line names each node's role.
"$CLI" stats --port "$COORD_PORT" | grep -q "^topology: coordinator over 2 shards"
"$CLI" stats --port "$SHARD0_PORT" | grep -q "^topology: shard 0/2"
# The distributed request renders as ONE stitched span tree on the
# coordinator: request -> fanout -> shard:N -> remote:<phase>, the
# remote spans grafted from each shard's EXPLAIN trailer.
"$CLI" trace --port "$COORD_PORT" --out "$CL_DIR/cluster_trace.json"
python3 -c 'import json, sys
doc = json.load(open(sys.argv[1]))
xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
names = {e["name"] for e in xs}
assert "fanout" in names, names
assert "shard:0" in names and "shard:1" in names, names
remote = [n for n in names if n.startswith("remote:")]
assert remote, f"no grafted shard spans in {names}"
print(f"cluster trace OK: stitched spans {sorted(names)}")' \
  "$CL_DIR/cluster_trace.json"
# --- v7 fleet health: probe, kill a shard, alert, recover -------------
# With both shards up the coordinator's health report is "ok" and the
# health subcommand exits zero.
"$CLI" health --port "$COORD_PORT" > "$CL_DIR/health_ok.out"
grep -q ": ok (uptime" "$CL_DIR/health_ok.out"
grep -q "$SHARD1_PORT" "$CL_DIR/health_ok.out"
# Federated Prometheus: the coordinator serves per-shard labeled series
# next to the fleet aggregates, plus the router's liveness gauges.
"$CLI" stats --port "$COORD_PORT" --prometheus > "$CL_DIR/coord_expo.txt"
grep -q '{shard="0"}' "$CL_DIR/coord_expo.txt"
grep -q '{shard="1"}' "$CL_DIR/coord_expo.txt"
grep -q '^sagma_router_shard_up{shard="0",endpoint=' "$CL_DIR/coord_expo.txt"
# Per-shard columns in the human view, and the --json satellite fix:
# one whole report object, not just the counter map.
"$CLI" stats --port "$COORD_PORT" --cluster > "$CL_DIR/cluster_stats.out"
grep -q "shard 0" "$CL_DIR/cluster_stats.out"
grep -q "shard 1" "$CL_DIR/cluster_stats.out"
"$CLI" stats --port "$COORD_PORT" --json > "$CL_DIR/stats.json"
python3 -c 'import json, sys
doc = json.load(open(sys.argv[1]))
assert "snapshot" in doc and "uptime_s" in doc and "topology" in doc, doc.keys()
assert doc["snapshot"]["counters"], "empty counter map in stats --json"
assert doc["topology"]["role"] == "coordinator", doc["topology"]' \
  "$CL_DIR/stats.json"
# SIGKILL shard 1: within a couple of probe intervals the coordinator
# must notice, flip the health status to degraded naming the dead
# shard, exit nonzero from `sagma_cli health`, and log a structured
# firing `alert` event for the shard-down rule.
kill -9 "$SHARD1_PID" 2>/dev/null || true
i=0
while "$CLI" health --port "$COORD_PORT" > "$CL_DIR/health_degraded.out" 2>&1; do
  i=$((i+1))
  [ "$i" -lt 50 ] || { echo "health never went degraded after shard kill" >&2; exit 1; }
  sleep 0.1
done
grep -q ": degraded (uptime" "$CL_DIR/health_degraded.out"
grep -q "DOWN" "$CL_DIR/health_degraded.out"
grep -q "$SHARD1_PORT" "$CL_DIR/health_degraded.out"
i=0
until grep -q '"event":"alert"' "$CL_DIR/coord.jsonl" 2>/dev/null; do
  i=$((i+1))
  [ "$i" -lt 50 ] || { echo "no alert event in coordinator log" >&2; exit 1; }
  sleep 0.1
done
grep '"event":"alert"' "$CL_DIR/coord.jsonl" | grep '"state":"firing"' \
  | grep -q '"rule":"shard-down"'
# Restart the shard: recovery probing must bring it back, resolve the
# alert, and flip the health exit status back to zero.
"$SERVER" --port "$SHARD1_PORT" --shard-of 1/2 --metrics \
  > "$CL_DIR/shard1b.out" 2>&1 &
SHARD1_PID=$!
trap 'kill "$SHARD0_PID" "$SHARD1_PID" "$COORD_PID" 2>/dev/null || true; rm -rf "$CL_DIR"' EXIT
i=0
until "$CLI" health --port "$COORD_PORT" > "$CL_DIR/health_recovered.out" 2>&1; do
  i=$((i+1))
  [ "$i" -lt 100 ] || { echo "health never recovered after shard restart" >&2; exit 1; }
  sleep 0.1
done
grep -q ": ok (uptime" "$CL_DIR/health_recovered.out"
i=0
until grep '"event":"alert"' "$CL_DIR/coord.jsonl" | grep -q '"state":"resolved"'; do
  i=$((i+1))
  [ "$i" -lt 50 ] || { echo "shard-down alert never resolved" >&2; exit 1; }
  sleep 0.1
done
echo "fleet health kill/alert/recover OK"
kill "$SHARD0_PID" "$SHARD1_PID" "$COORD_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$CL_DIR"
echo "cluster smoke OK"

echo "== bench smoke (json targets -> BENCH_PR1..6,8,9,10.json + BENCH_HISTORY.jsonl) =="
dune exec bench/main.exe -- json
dune exec bench/main.exe -- json-pr3
dune exec bench/main.exe -- json-pr4
dune exec bench/main.exe -- json-pr5
dune exec bench/main.exe -- json-pr6
dune exec bench/main.exe -- json-pr8
dune exec bench/main.exe -- json-pr9
dune exec bench/main.exe -- json-pr10

echo "== validate BENCH_PR1.json =="
python3 - <<'EOF'
import json, sys

with open("BENCH_PR1.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "json"
workloads = doc["workloads"]
assert len(workloads) >= 4, f"expected >= 4 workloads, got {len(workloads)}"
for w in workloads:
    for key in ("name", "rows", "result_groups", "timings_ms", "spans", "metrics"):
        assert key in w, f"workload {w.get('name')} missing {key}"
    for phase in ("token", "aggregate", "decrypt"):
        assert w["timings_ms"][phase] >= 0
    assert w["result_groups"] > 0, f"{w['name']} returned no groups"
    names = [s["name"] for s in w["spans"]]
    assert names == ["token", "aggregate", "decrypt"], names
    counters = w["metrics"]["counters"]
    assert counters.get("scheme.agg.rows", 0) > 0, f"{w['name']}: no rows aggregated"
    if w["name"].startswith("sum"):
        assert counters.get("bgn.mul", 0) > 0, f"{w['name']}: no pairings recorded"

print(f"BENCH_PR1.json OK: {len(workloads)} workloads")
EOF

echo "== validate BENCH_PR3.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR3.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr3"
workloads = doc["workloads"]
assert len(workloads) >= 3, f"expected >= 3 workloads, got {len(workloads)}"
for w in workloads:
    for key in ("name", "rows", "timings_ms", "cost_model", "metrics"):
        assert key in w, f"workload {w.get('name')} missing {key}"
    cm = w["cost_model"]
    assert cm["rows_aggregated"] > 0, f"{w['name']}: no rows aggregated"
    if w["name"].startswith("sum"):
        assert cm["pairings"] > 0, f"{w['name']}: no pairings recorded"
        assert cm["pairings_per_row"] > 0
        assert cm["dlog_solves"] > 0, f"{w['name']}: no discrete logs solved"
    else:
        assert cm["pairings"] == 0, f"{w['name']}: COUNT should pair nothing"

print(f"BENCH_PR3.json OK: {len(workloads)} workloads")
EOF

echo "== validate BENCH_PR4.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR4.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr4"
assert doc["clients"] == 4, doc["clients"]
total = doc["clients"] * doc["requests_per_client"]
for mode in ("sequential", "pooled"):
    assert doc[mode]["rps"] > 0, f"{mode}: no throughput recorded"
    assert doc[mode]["elapsed_ms"] > 0
# The tentpole claim: pooled serving at K=4 clients beats sequential
# serving by at least 2x on the same workload.
assert doc["speedup"] >= 2.0, f"pooled speedup {doc['speedup']} < 2.0"
st = doc["stalled"]
assert st["passed"], st
assert st["fast_ok"] == st["fast_requests"], st
assert st["fast_max_latency_ms"] < st["stall_ms"], st

print(f"BENCH_PR4.json OK: speedup {doc['speedup']}x, "
      f"stalled-client max latency {st['fast_max_latency_ms']:.1f} ms")
EOF

echo "== validate BENCH_PR5.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR5.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr5"
total = doc["clients"] * doc["requests_per_client"]
for mode in ("untraced", "traced"):
    assert doc[mode]["rps"] > 0, f"{mode}: no throughput recorded"
    assert doc[mode]["elapsed_ms"] > 0
# Tracing every request must stay cheap next to the pairing work:
# the bench itself asserts the bound, re-check it here.
assert doc["throughput_ratio"] >= doc["ratio_bound"], \
    f"tracing overhead out of bound: {doc['throughput_ratio']} < {doc['ratio_bound']}"
assert doc["traces_captured"] >= total, doc["traces_captured"]
assert doc["explain_ok"], "EXPLAIN trailer missing on traced request"
assert doc["passed"], doc

print(f"BENCH_PR5.json OK: traced/untraced throughput ratio "
      f"{doc['throughput_ratio']:.2f} (bound {doc['ratio_bound']}), "
      f"{doc['traces_captured']} traces captured")
EOF

echo "== validate BENCH_PR6.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR6.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr6"
micro = doc["micro"]
assert micro["pairing_affine_us"] > 0 and micro["pairing_batched_us"] > 0
# The tentpole claim: the Jacobian/Montgomery multi-pairing engine beats
# the legacy affine pairing by at least 4x per pairing, and the
# two-attribute SUM query gains at least 4x end to end.
assert micro["engine_speedup"] >= 4.0, f"engine speedup {micro['engine_speedup']} < 4.0"
q = doc["query"]
assert q["query_speedup"] >= 4.0, f"query speedup {q['query_speedup']} < 4.0"
# The rewrite must not change what gets counted: one pairing per row per
# block (B^arity) per CRT channel, exactly as before.
assert q["pairings"] == q["expected_pairings"], (q["pairings"], q["expected_pairings"])
assert q["prod_calls"] > 0, "no batched pairing calls recorded"
assert q["invm_batch"] > 0, "batched inversion never used"
assert q["invm"] < q["pairings"], \
    f"per-step inversions did not collapse: invm {q['invm']} >= pairings {q['pairings']}"
assert doc["passed"], doc

print(f"BENCH_PR6.json OK: engine {micro['engine_speedup']:.1f}x, "
      f"query {q['query_speedup']:.1f}x, pairings {q['pairings']} (model exact)")
EOF

echo "== validate BENCH_PR8.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR8.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr8"
assert doc["profiler_mode"] in ("memprof", "spans"), doc["profiler_mode"]
for mode in ("untraced", "profiled"):
    assert doc[mode]["rps"] > 0, f"{mode}: no throughput recorded"
    assert doc[mode]["elapsed_ms"] > 0
# Tracing + profiling every request must not halve throughput.
assert doc["throughput_ratio"] >= doc["ratio_bound"], \
    f"profiler overhead out of bound: {doc['throughput_ratio']} < {doc['ratio_bound']}"
assert doc["gc_deltas_ok"], "a traced request carried no GC differential"
s = doc["sum_two_attrs"]
assert s["alloc_minor_words"] > 0, "per-query allocation not recorded"
assert s["top_site"] == "pairing_loop", s["top_site"]
assert s["top_site_words"] > 0, s
assert doc["passed"], doc

print(f"BENCH_PR8.json OK: profiled/untraced ratio {doc['throughput_ratio']:.2f} "
      f"({doc['profiler_mode']}), SUM allocates {s['alloc_minor_words']} words/query, "
      f"top site {s['top_site']}")
EOF

echo "== validate BENCH_PR9.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR9.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr9"
assert doc["shards"] == 4, doc["shards"]
for mode in ("single", "sharded"):
    assert doc[mode]["rps"] > 0, f"{mode}: no throughput recorded"
# Core correctness holds everywhere: the coordinator's ⊕-merged answer
# is byte-identical to the single-server one, computed without a single
# decrypt, with every shard queried.
assert doc["byte_identical"], "merged aggregate differs from the single-server answer"
assert doc["coordinator_dlog_solves"] == 0, doc["coordinator_dlog_solves"]
assert doc["shard_calls"] == doc["shards"], (doc["shard_calls"], doc["shards"])
assert doc["client_dlog_solves"] > 0, "decrypt counter dead"
# The tentpole claim — near-linear scatter-gather scaling — needs real
# cores; the bench gates it only on multi-core hosts (CI qualifies).
if doc["multi_core"]:
    assert doc["speedup"] >= doc["speedup_gate"], \
        f"4-shard speedup {doc['speedup']} < {doc['speedup_gate']}"
assert doc["passed"], doc

print(f"BENCH_PR9.json OK: 4-shard speedup {doc['speedup']:.2f}x "
      f"({'gated' if doc['multi_core'] else 'single-core, gate deferred'}), "
      f"merge byte-identical, 0 coordinator decrypts")
EOF

echo "== validate BENCH_PR10.json =="
python3 - <<'EOF'
import json

with open("BENCH_PR10.json") as f:
    doc = json.load(f)

assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["bench"] == "pr10"
assert doc["shards"] == 2, doc["shards"]
for mode in ("probes_off", "probes_on"):
    assert doc[mode]["rps"] > 0, f"{mode}: no throughput recorded"
# Health probing + the SLO watchdog must ride along nearly for free
# next to the pairing work.
assert doc["overhead_ratio"] >= doc["ratio_gate"], \
    f"health overhead out of bound: {doc['overhead_ratio']} < {doc['ratio_gate']}"
# A killed shard must be detected within two probe intervals, the
# shard-down alert must fire, and recovery must resolve it.
assert doc["detect_latency_s"] < doc["detect_gate_s"], \
    f"detection {doc['detect_latency_s']}s >= gate {doc['detect_gate_s']}s"
assert doc["recover_latency_s"] >= 0, doc["recover_latency_s"]
assert doc["alert_fired"], "shard-down alert never fired"
assert doc["alert_resolved"], "shard-down alert never resolved"
assert doc["passed"], doc

print(f"BENCH_PR10.json OK: health overhead ratio {doc['overhead_ratio']:.2f} "
      f"(gate {doc['ratio_gate']}), shard kill detected in "
      f"{doc['detect_latency_s'] * 1000:.0f} ms, alert fired+resolved")
EOF

echo "== bench trend (BENCH_HISTORY.jsonl) =="
# Every json-* bench above appended its headline metrics; the trend gate
# compares against any prior local runs (first runs pass vacuously).
[ -s BENCH_HISTORY.jsonl ]
grep -q '"bench":"pr8"' BENCH_HISTORY.jsonl
grep -q '"bench":"pr9"' BENCH_HISTORY.jsonl
grep -q '"bench":"pr10"' BENCH_HISTORY.jsonl
scripts/bench_trend
# Negative check: a synthetic 2x regression on the newest pr8 run must
# fail the gate. Build a doctored history in a temp file — halve the
# throughput metrics and double the allocation — and expect nonzero.
TREND_DIR=$(mktemp -d)
trap 'rm -rf "$TREND_DIR"' EXIT
python3 - "$TREND_DIR/doctored.jsonl" <<'EOF'
import json, sys

out = open(sys.argv[1], "w")
entries = [json.loads(l) for l in open("BENCH_HISTORY.jsonl") if l.strip()]
for e in entries:
    out.write(json.dumps(e) + "\n")
# Re-append the last pr8 run with every metric regressed 2x.
last = {}
for e in entries:
    if e["bench"] == "pr8":
        last[e["metric"]] = e
assert last, "no pr8 metrics in history"
for e in last.values():
    bad = dict(e)
    lower_better = e["unit"] in ("ms", "us", "s", "words", "bytes")
    bad["value"] = e["value"] * 2.0 if lower_better else e["value"] / 2.0
    bad["commit"] = "synthetic-regression"
    out.write(json.dumps(bad) + "\n")
out.close()
EOF
if scripts/bench_trend "$TREND_DIR/doctored.jsonl" > "$TREND_DIR/trend.out" 2>&1; then
  echo "bench_trend negative check FAILED: 2x regression passed the gate" >&2
  cat "$TREND_DIR/trend.out" >&2
  exit 1
fi
grep -q "REGRESSED" "$TREND_DIR/trend.out"
rm -rf "$TREND_DIR"
trap - EXIT
echo "bench_trend negative check OK (2x regression exits nonzero)"

echo "== all checks passed =="

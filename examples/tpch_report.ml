(* TPC-H lineitem pricing summary over encrypted data.

   The paper's evaluation (§6.1) aggregates TPC-H's lineitem table; this
   example runs a Q1-style pricing report (SUM/AVG of quantity grouped by
   returnflag and linestatus) through all five schemes in the repository
   — SAGMA, CryptDB, Seabed, pre-computed and download — and cross-checks
   every result against the plaintext executor.

     dune exec examples/tpch_report.exe                                   *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Tpch = Sagma_db.Tpch
module Drbg = Sagma_crypto.Drbg
module B = Sagma_baselines
open Sagma

let str s = Value.Str s
let rows = 150

let table = Tpch.generate ~rows (Drbg.create "tpch-example")

let q = Query.make ~group_by:[ "l_returnflag"; "l_linestatus" ] (Query.Sum "l_quantity")

let triple_of_exec (r : Executor.result_row) =
  (List.map Value.to_string r.Executor.group, r.Executor.sum, r.Executor.count)

let print_rows title rs =
  Printf.printf "-- %s\n" title;
  List.iter
    (fun (g, s, c) -> Printf.printf "   %-8s sum_qty=%-7d count=%d\n" (String.concat "/" g) s c)
    rs;
  print_newline ()

let () =
  Printf.printf "== TPC-H lineitem (%d rows): %s ==\n\n" rows (Query.to_sql q);
  let oracle = List.map triple_of_exec (Executor.run table q) in
  print_rows "plaintext oracle" oracle;

  (* SAGMA *)
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2
      ~value_columns:[ "l_quantity"; "l_extendedprice" ]
      ~group_columns:[ "l_returnflag"; "l_linestatus" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("l_returnflag", [ str "A"; str "N"; str "R" ]);
          ("l_linestatus", [ str "O"; str "F" ]) ]
      (Drbg.create "tpch-sagma")
  in
  let t0 = Unix.gettimeofday () in
  let enc = Scheme.encrypt_table client table in
  let t1 = Unix.gettimeofday () in
  let sagma_rs =
    List.map
      (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count))
      (Scheme.query client enc q)
  in
  let t2 = Unix.gettimeofday () in
  print_rows (Printf.sprintf "SAGMA (encrypt %.2fs, query %.2fs)" (t1 -. t0) (t2 -. t1)) sagma_rs;
  assert (sagma_rs = oracle);

  (* CryptDB *)
  let cdb =
    B.Cryptdb.setup ~paillier_bits:256 ~value_columns:[ "l_quantity" ]
      ~group_columns:[ "l_returnflag"; "l_linestatus" ] (Drbg.create "tpch-cryptdb")
  in
  let cdb_enc = B.Cryptdb.encrypt_table cdb table in
  let cdb_rs =
    List.map
      (fun r -> (List.map Value.to_string r.B.Cryptdb.group, r.B.Cryptdb.sum, r.B.Cryptdb.count))
      (B.Cryptdb.query cdb cdb_enc q)
  in
  print_rows "CryptDB baseline (leaks per-group frequencies!)" cdb_rs;
  assert (cdb_rs = oracle);

  (* Seabed (single-attribute grouping natively). *)
  let q1 = Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_quantity") in
  let oracle1 = List.map triple_of_exec (Executor.run table q1) in
  let sea = B.Seabed.setup ~common:[ str "N" ] (Drbg.create "tpch-seabed") in
  let sea_enc = B.Seabed.encrypt_table sea table ~value_column:"l_quantity" ~group_column:"l_returnflag" in
  let sea_rs, ops = B.Seabed.query sea sea_enc in
  print_rows
    (Printf.sprintf "Seabed baseline, single attribute (%d client ops): %s" ops (Query.to_sql q1))
    (List.map (fun r -> ([ Value.to_string r.B.Seabed.group ], r.B.Seabed.sum, r.B.Seabed.count)) sea_rs);
  assert
    (List.map (fun r -> ([ Value.to_string r.B.Seabed.group ], r.B.Seabed.sum, r.B.Seabed.count)) sea_rs
     = oracle1);

  (* Pre-computed *)
  let pre = B.Precomputed.setup (Drbg.create "tpch-pre") in
  let store =
    B.Precomputed.precompute pre table ~aggregates:[ Query.Sum "l_quantity"; Query.Count ]
      ~group_columns:[ "l_returnflag"; "l_linestatus" ] ~threshold:2 ~filters:[]
  in
  (match B.Precomputed.query pre store q with
   | None -> assert false
   | Some rs ->
     let rs =
       List.map
         (fun r -> (List.map Value.to_string r.B.Precomputed.group, r.B.Precomputed.sum, r.B.Precomputed.count))
         rs
     in
     print_rows
       (Printf.sprintf "pre-computed baseline (%d stored cells)" (B.Precomputed.storage_cells store))
       rs;
     assert (rs = oracle));

  (* Download-everything *)
  let dl = B.Download.setup ~schema:Tpch.schema (Drbg.create "tpch-dl") in
  let dl_enc = B.Download.encrypt_table dl table in
  let dl_rs = List.map triple_of_exec (B.Download.query dl dl_enc q) in
  print_rows
    (Printf.sprintf "download baseline (%d bytes transferred per query)"
       (B.Download.bytes_transferred dl_enc))
    dl_rs;
  assert (dl_rs = oracle);

  print_endline "all five schemes agree with the plaintext oracle."

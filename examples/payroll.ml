(* Payroll analytics under a skewed distribution: demonstrates the §5
   protection mechanisms working together.

   A payroll table with a heavily skewed department distribution would
   leak that skew through bucket access patterns. This example measures
   the exposure coefficient of the naive (PRF) partitioning, then applies
   (a) an optimal mapping, (b) dummy rows equalizing bucket frequencies
   and (c) an attribute value split of the dominant department — and
   verifies the query results are unchanged.

     dune exec examples/payroll.exe                                       *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

let schema : Table.schema =
  [ { Table.name = "salary"; ty = Value.TInt };
    { Table.name = "department"; ty = Value.TStr };
    { Table.name = "seniority"; ty = Value.TStr } ]

let departments = [| "eng"; "eng"; "eng"; "eng"; "eng"; "eng"; "sales"; "sales"; "hr"; "legal" |]
let seniorities = [| "junior"; "senior"; "staff" |]

let table =
  let d = Drbg.create "payroll-data" in
  Table.of_rows schema
    (List.init 60 (fun _ ->
         [| vi (40_000 + Drbg.int_below d 100_000);
            str departments.(Drbg.int_below d (Array.length departments));
            str seniorities.(Drbg.int_below d 3) |]))

let dept_domain = [ str "eng"; str "sales"; str "hr"; str "legal" ]
let seniority_domain = [ str "junior"; str "senior"; str "staff" ]

let show q rs =
  Printf.printf "  %s\n" (Query.to_sql q);
  List.iter
    (fun r ->
      Printf.printf "    %-24s sum=%-8d count=%d\n"
        (String.concat ", " (List.map Value.to_string r.Scheme.group))
        r.Scheme.sum r.Scheme.count)
    rs;
  print_newline ()

let () =
  print_endline "== Payroll: skew-aware bucketing, dummy rows, value splits ==\n";
  let hist = Bucketing.histogram table "department" in
  Printf.printf "department histogram: %s\n\n"
    (String.concat ", " (List.map (fun (v, c) -> Printf.sprintf "%s=%d" (Value.to_string v) c) hist));

  (* Exposure under a random PRF partition vs the optimal one. *)
  let prf_map = Mapping.make Mapping.Prf_random "demo-key" dept_domain ~bucket_size:2 in
  let opt_map = Bucketing.optimal_mapping hist ~bucket_size:2 in
  Printf.printf "exposure coefficient: prf=%.3f optimal=%.3f\n"
    (Bucketing.exposure prf_map hist) (Bucketing.exposure opt_map hist);

  (* Dummy rows flatten what remains. *)
  let plan = Bucketing.dummy_plan_for_column opt_map hist in
  Printf.printf "dummy rows needed to flatten buckets: %d\n\n"
    (List.fold_left (fun acc (_, k) -> acc + k) 0 plan);

  (* Set up SAGMA with the optimal department partition. *)
  let strategy = function
    | "department" -> Mapping.Optimal hist
    | _ -> Mapping.Prf_random
  in
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~filter_columns:[ "seniority" ]
      ~value_columns:[ "salary" ] ~group_columns:[ "department"; "seniority" ] ()
  in
  let t =
    Client_api.create ~mapping_strategy:strategy ~seed:"payroll-client" ~config
      ~domains:[ ("department", dept_domain); ("seniority", seniority_domain) ]
      ()
  in
  (* Encrypt with dummy rows derived from the per-column plans. *)
  let maps = Client_api.mappings t in
  let dummies =
    Bucketing.dummy_rows
      [| maps.(0); maps.(1) |]
      [| hist; Bucketing.histogram table "seniority" |]
  in
  Printf.printf "encrypting %d real rows + %d dummy rows (count mode switches to paired)\n\n"
    (Table.row_count table) (List.length dummies);
  Client_api.encrypt ~dummy_groups:dummies t ~table;

  let q1 = Query.make ~group_by:[ "department" ] (Query.Avg "salary") in
  show q1 (Client_api.query t q1);
  let q2 =
    Query.make ~where:[ ("seniority", str "senior") ] ~group_by:[ "department" ]
      (Query.Sum "salary")
  in
  show q2 (Client_api.query t q2);

  (* Value split: "eng" dominates; split it in two sub-values. *)
  print_endline "-- splitting department value \"eng\" into eng.1 / eng.2 --\n";
  let split_table = Bucketing.split_column table ~column:"department" ~value:(str "eng") ~parts:2 in
  let split_dom = Bucketing.split_domain dept_domain ~value:(str "eng") ~parts:2 in
  let t2 =
    Client_api.create ~seed:"payroll-split" ~config
      ~domains:[ ("department", split_dom); ("seniority", seniority_domain) ]
      ()
  in
  Client_api.encrypt t2 ~table:split_table;
  let q3 = Query.make ~group_by:[ "department" ] (Query.Sum "salary") in
  let raw = Client_api.query t2 q3 in
  Printf.printf "  raw (split) groups: %s\n"
    (String.concat ", " (List.map (fun r -> Value.to_string (List.hd r.Scheme.group)) raw));
  let merged = Bucketing.merge_split_results raw ~position:0 ~value:(str "eng") ~parts:2 in
  show q3 merged;
  (* Cross-check against the unsplit pipeline. *)
  let reference = Client_api.query t q3 in
  let as_triples rs =
    List.map (fun r -> (List.map Value.to_string r.Scheme.group, r.Scheme.sum, r.Scheme.count)) rs
  in
  assert (as_triples merged = as_triples reference);
  print_endline "merged split results match the unsplit pipeline — done."

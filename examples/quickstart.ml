(* Quickstart: the paper's running example, end to end.

   Encrypts Table 1, runs Listing 1 (filtered) and Listing 2
   (multi-attribute GROUP BY) over the ciphertexts only, and prints the
   results the paper shows in Table 2 and Table 7.

     dune exec examples/quickstart.exe                                     *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

(* Table 1 of the paper. *)
let schema : Table.schema =
  [ { Table.name = "ID"; ty = Value.TInt };
    { Table.name = "Salary"; ty = Value.TInt };
    { Table.name = "Gender"; ty = Value.TStr };
    { Table.name = "Name"; ty = Value.TStr };
    { Table.name = "Department"; ty = Value.TStr } ]

let table =
  Table.of_rows schema
    [ [| vi 1; vi 1000; str "male"; str "Henry"; str "Sales" |];
      [| vi 2; vi 5000; str "female"; str "Jessica"; str "Sales" |];
      [| vi 3; vi 1500; str "female"; str "Alice"; str "Finance" |];
      [| vi 4; vi 3000; str "male"; str "Bob"; str "Sales" |];
      [| vi 5; vi 2000; str "male"; str "Paul"; str "Facility" |] ]

let print_results (q : Query.t) (rs : Scheme.result_row list) =
  Printf.printf "  %s\n" (Query.to_sql q);
  Printf.printf "  %-12s | %s\n" (Query.aggregate_name q.Query.aggregate)
    (String.concat " | " q.Query.group_by);
  List.iter
    (fun r ->
      Printf.printf "  %-12g | %s\n"
        (Scheme.aggregate_value q r)
        (String.concat " | " (List.map Value.to_string r.Scheme.group)))
    rs;
  print_newline ()

let () =
  print_endline "== SAGMA quickstart: the paper's worked example ==\n";
  (* 1. Setup (Algorithm 1): fix the scheme parameters and the group
     column domains. B = 2 and t = 2 as in §3.4's walkthrough. The
     Client_api facade bundles the client and its encrypted table. *)
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2
      ~filter_columns:[ "Department" ]
      ~value_columns:[ "Salary" ]
      ~group_columns:[ "Gender"; "Department" ] ()
  in
  let t =
    Client_api.create ~seed:"quickstart" ~config
      ~domains:
        [ ("Gender", [ str "male"; str "female" ]);
          ("Department", [ str "Sales"; str "Finance"; str "Facility" ]) ]
      ()
  in
  (* 2. EncTable (Algorithm 2): encrypt and "outsource". The server-side
     value holds only BGN ciphertexts and an SSE index. *)
  Client_api.encrypt t ~table;
  let enc = Client_api.encrypted t in
  Printf.printf "encrypted %d rows: %d monomial ciphertexts/row, %d CRT channels, SSE index of %d entries\n\n"
    (Array.length enc.Scheme.rows)
    (Array.length enc.Scheme.rows.(0).Scheme.monomial_cts)
    (Array.length enc.Scheme.rows.(0).Scheme.values.(0))
    (Sagma_sse.Sse.size enc.Scheme.index);
  (* 3. Listing 2: GROUP BY Gender, Department (paper Table 7). *)
  let q2 = Query.make ~group_by:[ "Gender"; "Department" ] (Query.Sum "Salary") in
  print_results q2 (Client_api.query t q2);
  (* 4. Listing 1: the same with WHERE Department = 'Sales' (Table 2).
     Filtering runs server-side through the SSE index. *)
  let q1 =
    Query.make
      ~where:[ ("Department", str "Sales") ]
      ~group_by:[ "Gender"; "Department" ]
      (Query.Sum "Salary")
  in
  print_results q1 (Client_api.query t q1);
  (* 5. COUNT and AVG ride the same machinery. *)
  let qc = Query.make ~group_by:[ "Department" ] Query.Count in
  print_results qc (Client_api.query t qc);
  let qa = Query.make ~group_by:[ "Gender" ] (Query.Avg "Salary") in
  print_results qa (Client_api.query t qa);
  (* 6. Appends ride the update path (EncRow + SSE posting extension). *)
  Client_api.append t ~values:[| 4500 |] ~groups:[| str "female"; str "Finance" |];
  Printf.printf "after appending one encrypted row (%d total):\n" (Client_api.row_count t);
  print_results q2 (Client_api.query t q2)

(* The full outsourced-database deployment, in one process.

   Spins up the key-free server in a thread, connects over a socket pair,
   and drives the whole life cycle through the wire protocol: upload an
   encrypted table, aggregate remotely, append a row remotely, re-query,
   and verify the server state never contained a key. Everything crossing
   the "network" is serialized bytes.

     dune exec examples/remote_pipeline.exe                              *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module P = Sagma_protocol.Protocol
module Server = Sagma_protocol.Server
module Transport = Sagma_protocol.Transport
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

let schema : Table.schema =
  [ { Table.name = "amount"; ty = Value.TInt };
    { Table.name = "region"; ty = Value.TStr };
    { Table.name = "channel"; ty = Value.TStr } ]

let table =
  let d = Drbg.create "remote-data" in
  let regions = [| "emea"; "amer"; "apac" |] in
  let channels = [| "web"; "store" |] in
  Table.of_rows schema
    (List.init 24 (fun _ ->
         [| vi (10 + Drbg.int_below d 490);
            str regions.(Drbg.int_below d 3);
            str channels.(Drbg.int_below d 2) |]))

let () =
  print_endline "== Remote SAGMA pipeline (client | wire | key-free server) ==\n";
  (* Client-side setup and encryption. *)
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:2 ~value_columns:[ "amount" ]
      ~group_columns:[ "region"; "channel" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("region", [ str "emea"; str "amer"; str "apac" ]);
          ("channel", [ str "web"; str "store" ]) ]
      (Drbg.create "remote-client")
  in
  let enc = Scheme.encrypt_table client table in
  (* Persist + restore the client state, as a real deployment would. *)
  let saved = Serialize.client_to_string client in
  let client = Serialize.client_of_string ~drbg:(Drbg.create "remote-session") saved in
  Printf.printf "client key file: %d bytes (secret)\n" (String.length saved);

  (* The "server": a thread holding only ciphertexts. *)
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let state = Server.create () in
  let server_thread = Thread.create (fun () -> Transport.serve_connection (Server.handle_encoded state) server_fd) () in

  let call req = Transport.call client_fd req in
  let payload = Serialize.enc_table_to_string enc in
  Printf.printf "uploading %d encrypted rows (%d bytes on the wire)\n"
    (Table.row_count table) (String.length payload);
  assert (call (P.Upload { name = "sales"; table = enc }) = P.Ack);

  let run_query q =
    let tok = Scheme.token client q in
    let total_rows =
      match call P.List_tables with
      | P.Tables ts -> List.assoc "sales" ts
      | _ -> failwith "listing failed"
    in
    match call (P.Aggregate { name = "sales"; token = tok }) with
    | P.Aggregates agg ->
      Printf.printf "\n%s\n" (Query.to_sql q);
      List.iter
        (fun r ->
          Printf.printf "  %-16s %g\n"
            (String.concat "/" (List.map Value.to_string r.Scheme.group))
            (Scheme.aggregate_value q r))
        (Scheme.decrypt client tok agg ~total_rows)
    | P.Failed { code; message } ->
      failwith (Printf.sprintf "%s: %s" (P.error_code_to_string code) message)
    | _ -> failwith "unexpected response"
  in
  run_query (Query.make ~group_by:[ "region" ] (Query.Sum "amount"));
  run_query (Query.make ~group_by:[ "region"; "channel" ] Query.Count);

  (* Remote append: the server extends the SSE postings from tokens. *)
  let row, keywords =
    Scheme.append_payload client ~values:[| 999 |] ~groups:[| str "apac"; str "web" |]
      ~filters:[]
  in
  assert (call (P.Append { name = "sales"; row; keywords; row_id = None }) = P.Ack);
  print_endline "\nappended one encrypted row remotely; re-querying:";
  run_query (Query.make ~group_by:[ "region" ] (Query.Sum "amount"));

  Unix.close client_fd;
  Thread.join server_thread;
  Unix.close server_fd;
  print_endline "\nserver shut down; it never held a key or a plaintext."

(* Piwik-style web analytics over encrypted visit logs.

   The paper's motivating application: a web-analytics backend that
   "determines the number of visitors of a site by country, browser,
   referrer, time and many other attributes" (§1) — here outsourced
   encrypted, with every report computed by the server over ciphertexts.

     dune exec examples/web_analytics.exe                                 *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Workload = Sagma_db.Workload
module Drbg = Sagma_crypto.Drbg
open Sagma

let str s = Value.Str s
let vi i = Value.Int i

let countries = [| "DE"; "US"; "FR"; "NL"; "CA"; "JP" |]
let browsers = [| "firefox"; "chrome"; "safari"; "edge" |]
let referrers = [| "search"; "direct"; "social" |]

let schema : Table.schema =
  [ { Table.name = "visit_time"; ty = Value.TInt };   (* seconds on site *)
    { Table.name = "actions"; ty = Value.TInt };
    { Table.name = "country"; ty = Value.TStr };
    { Table.name = "browser"; ty = Value.TStr };
    { Table.name = "referrer"; ty = Value.TStr };
    { Table.name = "month"; ty = Value.TInt } ]

let visits =
  let d = Drbg.create "analytics-visits" in
  Table.of_rows schema
    (List.init 120 (fun _ ->
         [| vi (10 + Drbg.int_below d 600);
            vi (1 + Drbg.int_below d 20);
            str countries.(Drbg.int_below d (Array.length countries));
            str browsers.(Drbg.int_below d (Array.length browsers));
            str referrers.(Drbg.int_below d (Array.length referrers));
            vi (1 + Drbg.int_below d 12) |]))

let show title q rs =
  Printf.printf "-- %s\n   %s\n" title (Query.to_sql q);
  List.iter
    (fun r ->
      Printf.printf "   %-20s %g\n"
        (String.concat "/" (List.map Value.to_string r.Scheme.group))
        (Scheme.aggregate_value q r))
    rs;
  print_newline ()

let () =
  print_endline "== Encrypted web analytics (Piwik-style reports) ==\n";
  (* Piwik queries group by up to 5 attributes, but 95% use at most 3
     (Figure 7); we provision t = 3. *)
  let config =
    Config.make ~bucket_size:2 ~max_group_attrs:3
      ~filter_columns:[ "referrer"; "month" ]
      ~value_columns:[ "visit_time"; "actions" ]
      ~group_columns:[ "country"; "browser"; "referrer" ] ()
  in
  let client =
    Scheme.setup config
      ~domains:
        [ ("country", Array.to_list (Array.map str countries));
          ("browser", Array.to_list (Array.map str browsers));
          ("referrer", Array.to_list (Array.map str referrers)) ]
      (Drbg.create "analytics-client")
  in
  let enc = Scheme.encrypt_table client visits in
  Printf.printf "outsourced %d visits; monomials per row m(3,3) = %d\n\n"
    (Table.row_count visits)
    (Array.length enc.Scheme.rows.(0).Scheme.monomial_cts);

  let q1 = Query.make ~group_by:[ "country" ] Query.Count in
  show "visitors by country" q1 (Scheme.query client enc q1);

  let q2 = Query.make ~group_by:[ "browser"; "referrer" ] Query.Count in
  show "visitors by browser and referrer" q2 (Scheme.query client enc q2);

  let q3 =
    Query.make ~where:[ ("referrer", str "search") ] ~group_by:[ "country" ]
      (Query.Avg "visit_time")
  in
  show "average time on site for search traffic, by country" q3 (Scheme.query client enc q3);

  let q4 = Query.make ~group_by:[ "country"; "browser"; "referrer" ] (Query.Sum "actions") in
  show "actions by country, browser and referrer (t = 3)" q4 (Scheme.query client enc q4);

  (* The workload lens of Figure 7: what share of each application's
     grouping queries this t = 3 deployment covers. *)
  let d = Drbg.create "workload-sample" in
  print_endline "-- GROUP BY attribute counts across applications (Figure 7)";
  List.iter
    (fun app ->
      let queries = Workload.generate app d 1000 in
      Printf.printf "   %-10s <=1: %5.1f%%  <=2: %5.1f%%  <=3: %5.1f%%\n"
        (Workload.application_name app)
        (Workload.share_at_most queries 1)
        (Workload.share_at_most queries 2)
        (Workload.share_at_most queries 3))
    [ Workload.Nextcloud; Workload.Wordpress; Workload.Piwik ]

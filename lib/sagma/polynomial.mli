(** Shift polynomials over Z_n (§3.3–§3.4).

    The server derives each row's shift by evaluating a polynomial with
    public coefficients over the row's encrypted monomials. Unit-shift
    (Lagrange indicator) polynomials are the production path — they keep
    BGN's discrete-log decryption bounds tiny; the packed single
    polynomial of §3.3 is retained for the ablation. All arithmetic is
    mod n = q₁q₂ (Lagrange denominators, products of integers < B, are
    invertible). *)

module Z = Sagma_bigint.Bigint

val expand_roots : n:Z.t -> int list -> Z.t array
(** Coefficients of Π (X − k) mod n, lowest degree first. *)

val eval : n:Z.t -> Z.t array -> int -> Z.t
(** Horner evaluation (the tests' oracle). *)

val indicator : n:Z.t -> bucket_size:int -> int -> Z.t array
(** [indicator ~n ~bucket_size j] is I_j with I_j(x) = 1 iff x = j on the
    grid {0..B−1}; length-B coefficient array. *)

val interpolate : n:Z.t -> Z.t array -> Z.t array
(** Polynomial through arbitrary grid targets: P(x) = targets.(x). *)

val packed_shift : n:Z.t -> bucket_size:int -> value_bits:int -> Z.t array
(** §3.3's shift polynomial: P(x) = 2^(value_bits·x). *)

type term = { exponents : int array; coeff : Z.t }
(** One monomial of a multivariate polynomial; [exponents] parallels the
    query's attribute list. *)

val multivariate_indicator : n:Z.t -> bucket_size:int -> int array -> term list
(** Joint indicator Π_c I_{j_c}(x_c) expanded in the monomial basis —
    the coefficients Algorithm 5 pairs with the stored monomials. *)

val eval_terms : n:Z.t -> term list -> int array -> Z.t
(** Oracle evaluation of a term list. *)

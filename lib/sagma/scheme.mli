(** The full SAGMA construction (§3.4, Algorithms 1–6).

    Client-side state: a BGN keypair, an SSE key and one secret mapping
    per group column. Server-side state ({!enc_table}): per row, BGN
    level-1 encryptions of (a) each value column split into CRT residue
    channels, (b) a hidden count column fixed to 1 (0 for dummy rows) and
    (c) the monomials of the bucketized group offsets; plus an SSE index
    over bucket identifiers and filter keywords.

    Query processing: the server locates each queried bucket's rows
    through SSE, intersects them into joint buckets, derives every row's
    unit-shift indicator S_r^(j) by evaluating public Lagrange
    coefficients over the encrypted monomials (additive homomorphism
    only), pairs it with the value/count ciphertexts — the scheme's
    single ciphertext multiplication — and sums in the target group. The
    client decrypts each aggregate with a bounded discrete log and
    recombines CRT channels.

    The server never sees a group value, only bucket identifiers: the
    leakage is exactly L of §4.2 (see {!Leakage}). *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module Bgn = Sagma_bgn.Bgn
module Crt = Sagma_bgn.Crt_channels
module Sse = Sagma_sse.Sse
module Curve = Sagma_pairing.Curve
module Oxt = Sagma_sse.Oxt

(** {1 Setup (Algorithm 1)} *)

type public_params = {
  config : Config.t;
  bgn_pk : Bgn.public_key;
  channels : Crt.t;
  monomials : Monomials.t;
  num_buckets : int array;  (** s_i = ⌈|D_i| / B⌉ per group column *)
}

type client = {
  pp : public_params;
  kp : Bgn.keypair;
  sse_key : Sse.key;
  oxt_key : Oxt.key;           (** for the {!Oxt_conjunctive} index mode *)
  mappings : Mapping.t array;  (** f_i, one per group column *)
  drbg : Drbg.t;
  mutable dec1_tables : (int * Bgn.dec1_table) list;
  mutable dec2_tables : (int * Bgn.dec2_table) list;
}
(** The trusted client. [dec*_tables] cache discrete-log tables across
    queries. *)

val setup :
  ?mapping_strategy:(string -> Mapping.strategy) ->
  Config.t ->
  domains:(string * Value.t list) list ->
  Drbg.t ->
  client
(** [setup config ~domains drbg] runs Algorithm 1. [domains] must cover
    every group column with its full value domain; [mapping_strategy]
    selects the §5 bucket-partitioning per column (default: PRF-keyed
    random permutation). *)

(** {1 Encryption (Algorithms 2–3)} *)

type enc_row = {
  values : Bgn.c1 array array;  (** k × channels: Enc(v_j mod d_c) *)
  count_ct : Bgn.c1;            (** Enc(1); Enc(0) for dummy rows *)
  monomial_cts : Bgn.c1 array;  (** Enc(Π offsetsᵉ) in storage order *)
  pre_values : Bgn.precomp1 option array array;
      (** lazily-filled pairing precomputation per value ciphertext;
          shaped like [values], starts all-[None], never serialized *)
  mutable pre_count : Bgn.precomp1 option;
      (** dito for [count_ct] (paired-count mode) *)
}

type count_mode =
  | Count_level1
      (** aggregate the indicators directly — curve additions only, no
          pairing; counts dummy rows, so only used without dummies *)
  | Count_paired
      (** pair the hidden count column — dummy-safe *)

type index_mode =
  | Per_attribute
      (** Algorithm 2: one keyword per (column, bucket); the server
          intersects posting lists and learns per-attribute bucket
          membership *)
  | Joint
      (** §3.4's Boolean-SSE alternative: one keyword per column subset
          (size ≤ t) and joint bucket vector; queries touch only their own
          combination and individual memberships never leak, at a storage
          cost of Σ_{{i≤t}} C(l,i) postings per row *)
  | Oxt_conjunctive
      (** the same goal with O(l) storage via the OXT Boolean-SSE
          protocol (Cash et al. [6]): joint membership resolved by
          cross-tag conjunctions. Leakage sits between the other modes —
          the s-term column's bucket pattern plus which of its rows match
          the conjunction *)

type enc_table = {
  pp : public_params;
  rows : enc_row array;
  index : Sse.index;             (** Π_bas: filters (+ buckets unless OXT) *)
  oxt_index : Oxt.index option;  (** bucket membership in OXT mode *)
  count_mode : count_mode;
  index_mode : index_mode;
}
(** What the server stores: semantically secure ciphertexts plus the SSE
    index — no keys. *)

val enc_row_raw : client -> values:int array -> offsets:int array -> dummy:bool -> enc_row
(** Algorithm 3 on pre-bucketized offsets (exposed for tests). *)

val encrypt_table :
  ?dummy_groups:Value.t array list -> ?index_mode:index_mode -> client -> Table.t -> enc_table
(** Algorithm 2. [dummy_groups] appends one all-zero dummy row per entry
    (each an array of group-column values, §5), switching counting to
    {!Count_paired}. *)

val bucket_keyword : column:int -> bucket:int -> string
val joint_keyword : columns:int array -> buckets:int array -> string
val filter_keyword : column:string -> Value.t -> string
val range_keyword : column:string -> Sagma_sse.Dyadic.interval -> string
val column_subsets : l:int -> t:int -> int array array

(** {1 Database updates} *)

val append_row :
  ?range_values:(string * int) list ->
  client ->
  enc_table ->
  values:int array ->
  groups:Value.t array ->
  filters:(string * Value.t) list ->
  enc_table
(** Encrypt and append one row, extending the SSE postings (the paper's
    EncRow-based update). [range_values] supplies the row's entries for
    range-filter columns. Non-destructive. *)

val append_payload :
  ?index_mode:index_mode ->
  ?range_values:(string * int) list ->
  client ->
  values:int array ->
  groups:Value.t array ->
  filters:(string * Value.t) list ->
  enc_row * Sse.token list
(** Client half of a remote append: the encrypted row plus the SSE tokens
    from which a server extends the postings itself
    (see [Sagma_protocol.Server]). *)

(** {1 Tokens (Algorithm 4)} *)

type bucket_source =
  | Per_attribute_tokens of Sse.token array array
      (** per queried column, one token per bucket *)
  | Joint_tokens of (int array * Sse.token) array
      (** one token per joint bucket-id vector *)
  | Oxt_tokens of (int array * Oxt.stag * Curve.point array array) array
      (** one OXT conjunction per joint bucket-id vector *)

type token = {
  value_column : int option;
  group_columns : int array;
  source : bucket_source;
  filter_tokens : Sse.token list;  (** equality clauses — intersected *)
  range_token_groups : Sse.token list list;
      (** one group per BETWEEN clause (its dyadic cover) — unioned
          within a group, intersected across groups *)
  t_num_buckets : int array;
}

val token : ?index_mode:index_mode -> ?oxt_rows:int -> client -> Query.t -> token
(** [index_mode] must match the target table's; [oxt_rows] (the table's
    public row count) is required in OXT mode to bound the x-token rows.
    @raise Invalid_argument when the query exceeds the threshold t or
    filters on a non-filter column. *)

(** {1 Server-side aggregation (Algorithm 5)} *)

type block_aggregates = {
  sums : Bgn.c2 array array option;  (** per block vector, per channel *)
  counts_l1 : Bgn.c1 array option;
  counts_l2 : Bgn.c2 array option;
}

type bucket_aggregate = {
  bucket_ids : int array;
  group_size : int;  (** rows feeding this joint bucket (leaked) *)
  blocks : block_aggregates;
}

type agg_result = {
  buckets : bucket_aggregate list;
  touched_rows : int;
}

val block_vector : bucket_size:int -> arity:int -> int -> int array

val oxt_params : unit -> Oxt.params
(** The shared public OXT group parameters (deterministic). *)

(** {2 Leakage-audit hooks}

    Every index access {!aggregate} performs goes through one of these,
    recording a probe — the token's deterministic tag plus the raw
    posting list it returned — into {!Sagma_obs.Audit} when auditing is
    enabled. Exported so tests can drive a forged probe through the
    production recording path; see {!Leakage.audit_check} for the
    matching prediction. *)

val audited_search : kind:string -> Sse.index -> Sse.token -> int list
(** [Sse.search] plus an audit probe under [kind] (the kinds
    [aggregate] uses: ["sse.bucket"], ["sse.filter"], ["sse.range"]). *)

val oxt_stag_tag : Oxt.stag -> string
(** Deterministic public identity of an OXT conjunction (the s-term
    stag's keyword-key prefix) — the tag both the auditor and
    {!Leakage.of_query} record it under. *)

val audited_oxt_search :
  Oxt.params -> Oxt.index -> Oxt.stag -> Curve.point array array -> int list
(** OXT conjunction search (sorted row ids) plus an ["oxt.bucket"]
    probe. *)

val aggregate :
  ?domains:int ->
  ?pool:Sagma_pool.Pool.t ->
  ?owned:(int -> bool) ->
  enc_table ->
  token ->
  agg_result
(** Algorithm 5. Deliberately takes only public data — no keys.
    Row work within each joint bucket is split across worker domains
    (the paper's multi-core parallelization): pass [pool] to reuse a
    long-lived pool spawned once per process (the caller runs one chunk
    itself, so a [w]-worker pool gives [w + 1]-way parallelism), or
    [domains] > 1 for a transient pool spanning this one call. [pool]
    wins when both are given.

    [owned] restricts pairing work to the rows this node is responsible
    for in a sharded deployment (replicated storage, partitioned
    compute): rows failing the predicate are dropped before any pairing
    and joint buckets left empty disappear, so per-shard partials
    {!merge_agg_results}-combine to exactly the unsharded answer.

    Buckets are returned in canonical (lexicographic bucket-vector)
    order, so equal aggregates serialize to equal bytes regardless of
    how the work was partitioned. *)

val merge_agg_results : Bgn.public_key -> agg_result list -> agg_result
(** ⊕-combine per-node partial aggregates (the coordinator's
    scatter-gather merge): per-bucket level-2 sums and level-2 counts
    via [Bgn.add2], level-1 counts via [Bgn.add1], group sizes and
    touched-row counts added — no decryption anywhere. Buckets are
    matched on their joint bucket vector; one present in only some
    parts passes through unchanged. Needs only the public key. *)

(** {1 Decryption (Algorithm 6)} *)

type result_row = {
  group : Value.t list;  (** in queried-column order *)
  sum : int;
  count : int;
}

val decrypt : client -> token -> agg_result -> total_rows:int -> result_row list
(** Bounded-dlog decryption of every aggregate component, CRT
    recombination, inverse bucket mapping, and suppression of empty
    groups. *)

val query :
  ?index_mode:index_mode ->
  ?oxt_rows:int ->
  ?domains:int ->
  ?pool:Sagma_pool.Pool.t ->
  client ->
  enc_table ->
  Query.t ->
  result_row list
(** Convenience: token → aggregate → decrypt, wrapped in trace spans
    ("token"/"aggregate"/"decrypt", see {!Sagma_obs.Trace}).
    [index_mode] defaults to the table's own mode and [oxt_rows] to its
    row count — override only to exercise a mismatch deliberately.
    [domains]/[pool] parallelize the aggregation step as in
    {!aggregate}. *)

val aggregate_value : Query.t -> result_row -> float
(** SUM/COUNT/AVG as the query requested. *)

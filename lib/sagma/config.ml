(* Scheme-level configuration: the parameters fixed at Setup time
   (Algorithm 1) plus implementation knobs.

   The table layout follows §2: value columns (aggregated), group columns
   (GROUP BY targets) and filter columns (WHERE targets); one column may
   play several roles. *)

type t = {
  bucket_size : int;
  (* B: group-attribute values per bucket. Larger B = fewer buckets =
     less leakage, more computation (§3.2, §5, Figure 6a). *)
  max_group_attrs : int;
  (* t: the most grouping attributes allowed in one query. Bounds the
     stored monomials to m(l,t) (§4.1). *)
  value_columns : string list;   (* k value columns *)
  group_columns : string list;   (* l group columns *)
  filter_columns : string list;  (* auxiliary WHERE equality columns *)
  range_filter_columns : string list;
  (* int columns supporting BETWEEN filters through dyadic SSE keywords *)
  range_bits : int;
  (* bit width of range-filterable values: domain [0, 2^range_bits) *)
  bgn_bits : int;
  (* BGN modulus size. The paper evaluates 1024 bits (~80-bit security);
     tests/benches default smaller for speed. *)
  channel_bits : int;
  (* CRT channel modulus size (Hu et al. decryption trade-off, §6). *)
  value_bits : int;
  (* |D_V|: bit width of a value-column entry (paper: 32). *)
}

let default_value_columns = [ "value" ]

let make ?(bucket_size = 2) ?(max_group_attrs = 3) ?(filter_columns = [])
    ?(range_filter_columns = []) ?(range_bits = 16) ?(bgn_bits = 64) ?(channel_bits = 12)
    ?(value_bits = 32) ~value_columns ~group_columns () : t =
  if bucket_size < 1 then invalid_arg "Config.make: bucket_size < 1";
  if max_group_attrs < 1 then invalid_arg "Config.make: max_group_attrs < 1";
  if value_columns = [] then invalid_arg "Config.make: no value columns";
  if group_columns = [] then invalid_arg "Config.make: no group columns";
  if max_group_attrs > List.length group_columns then
    invalid_arg "Config.make: max_group_attrs exceeds group column count";
  if List.length (List.sort_uniq compare group_columns) <> List.length group_columns then
    invalid_arg "Config.make: duplicate group column";
  if range_bits < 1 || range_bits > 40 then invalid_arg "Config.make: range_bits out of range";
  { bucket_size; max_group_attrs; value_columns; group_columns; filter_columns;
    range_filter_columns; range_bits; bgn_bits; channel_bits; value_bits }

let group_column_index (c : t) (name : string) : int =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Config.group_column_index: %S is not a group column" name)
    | g :: rest -> if g = name then i else go (i + 1) rest
  in
  go 0 c.group_columns

let value_column_index (c : t) (name : string) : int =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Config.value_column_index: %S is not a value column" name)
    | v :: rest -> if v = name then i else go (i + 1) rest
  in
  go 0 c.value_columns

let num_group_columns (c : t) = List.length c.group_columns
let num_value_columns (c : t) = List.length c.value_columns

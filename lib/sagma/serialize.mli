(** Wire codecs for SAGMA's key material, encrypted tables, tokens and
    aggregates — the layer under the client/server protocol and the CLI's
    persistence.

    Public values (tables, tokens, aggregates) and the secret client
    state have separate entry points; treat the latter's output like a
    private key file. BGN public keys travel as (n, g, h): the pairing
    group is reconstructed deterministically from n on decode. *)

module W = Sagma_wire.Wire
module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Curve = Sagma_pairing.Curve
module Fp2 = Sagma_pairing.Fp2
module Bgn = Sagma_bgn.Bgn
module Sse = Sagma_sse.Sse
module Drbg = Sagma_crypto.Drbg

val max_pk_bits : int ref
(** Decode-side ceiling on the BGN modulus size (default 4096 bits).
    Reconstructing a pairing group runs a prime search in the size of n,
    so decoding refuses absurd key sizes with a [Wire.Decode_error]
    instead of stalling; fuzz harnesses tighten this further. *)

(** {1 Primitive codecs} *)

val put_z : W.sink -> Z.t -> unit
val get_z : W.source -> Z.t
val put_point : W.sink -> Curve.point -> unit
val get_point : W.source -> Curve.point
val put_fp2 : W.sink -> Fp2.t -> unit
val get_fp2 : W.source -> Fp2.t
val put_value : W.sink -> Value.t -> unit
val get_value : W.source -> Value.t

(** {1 Keys and parameters} *)

val put_bgn_pk : W.sink -> Bgn.public_key -> unit
val get_bgn_pk : W.source -> Bgn.public_key
val put_config : W.sink -> Config.t -> unit
val get_config : W.source -> Config.t
val put_public_params : W.sink -> Scheme.public_params -> unit
val get_public_params : W.source -> Scheme.public_params

(** {1 Encrypted data} *)

val put_enc_row : W.sink -> Scheme.enc_row -> unit
val get_enc_row : W.source -> Scheme.enc_row
val put_sse_index : W.sink -> Sse.index -> unit
val get_sse_index : W.source -> Sse.index
val put_enc_table : W.sink -> Scheme.enc_table -> unit
val get_enc_table : W.source -> Scheme.enc_table

(** {1 OXT components} *)

module Oxt = Sagma_sse.Oxt

val put_oxt_stag : W.sink -> Oxt.stag -> unit
val get_oxt_stag : W.source -> Oxt.stag
val put_oxt_index : W.sink -> Oxt.index -> unit
val get_oxt_index : W.source -> Oxt.index

(** {1 Tokens and aggregates} *)

val put_sse_token : W.sink -> Sse.token -> unit
val get_sse_token : W.source -> Sse.token
val put_token : W.sink -> Scheme.token -> unit
val get_token : W.source -> Scheme.token
val put_block_aggregates : W.sink -> Scheme.block_aggregates -> unit
val get_block_aggregates : W.source -> Scheme.block_aggregates
val put_bucket_aggregate : W.sink -> Scheme.bucket_aggregate -> unit
val get_bucket_aggregate : W.source -> Scheme.bucket_aggregate
val put_agg_result : W.sink -> Scheme.agg_result -> unit
val get_agg_result : W.source -> Scheme.agg_result
val put_result_row : W.sink -> Scheme.result_row -> unit
val get_result_row : W.source -> Scheme.result_row

(** {1 Secret client state} *)

val put_client : W.sink -> Scheme.client -> unit
(** Contains the BGN factorization, SSE key and secret mappings. *)

val get_client : drbg:Drbg.t -> W.source -> Scheme.client
(** [drbg] supplies fresh randomness for future encryptions; decryption
    tables start empty. *)

(** {1 Whole-value helpers} *)

val enc_table_to_string : Scheme.enc_table -> string
val enc_table_of_string : string -> Scheme.enc_table
val token_to_string : Scheme.token -> string
val token_of_string : string -> Scheme.token
val agg_result_to_string : Scheme.agg_result -> string
val agg_result_of_string : string -> Scheme.agg_result
val client_to_string : Scheme.client -> string
val client_of_string : drbg:Drbg.t -> string -> Scheme.client

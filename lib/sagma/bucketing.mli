(** Bucket-partitioning analysis and the §5 protection mechanisms:
    exposure measurement, optimal partitioning, dummy-row planning and
    attribute value splits. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table

val histogram : Table.t -> string -> (Value.t * int) list
(** Frequency of each value of a column, sorted by value. *)

val bucket_frequencies : Mapping.t -> (Value.t * int) list -> int array
(** Total observed frequency per bucket — what the access pattern
    leaks. *)

val exposure : Mapping.t -> (Value.t * int) list -> float
(** Exposure coefficient (after Ceselli et al., specialized to the §5
    bucket-frequency attack): the frequency-weighted probability of
    correctly identifying a value's slot given the plaintext histogram
    and the leaked bucket frequencies. 1.0 = unique reconstruction,
    1/|D| = blind guessing. *)

val optimal_mapping : ?max_domain:int -> (Value.t * int) list -> bucket_size:int -> Mapping.t
(** Exhaustive minimal-exposure partition for domains up to [max_domain]
    (default 8); falls back to the LPT frequency-balancing heuristic
    beyond that. *)

(** {1 Dummy rows (§5)} *)

val dummy_plan_for_column : Mapping.t -> (Value.t * int) list -> (Value.t * int) list
(** Per bucket, a (member value, deficit) pair padding every bucket to
    the maximum bucket frequency — flattening the access pattern. *)

val dummy_rows : Mapping.t array -> (Value.t * int) list array -> Value.t array list
(** Zip per-column plans into full dummy rows (one group value per
    column) suitable for [Scheme.encrypt_table ~dummy_groups]. *)

(** {1 Attribute value splits (§5)} *)

val split_name : string -> int -> string

val split_column : Table.t -> column:string -> value:Value.t -> parts:int -> Table.t
(** Replace a high-frequency value by round-robin sub-values g.1 … g.k.
    Only string values are splittable. *)

val split_domain : Value.t list -> value:Value.t -> parts:int -> Value.t list

val merge_split_results :
  Scheme.result_row list -> position:int -> value:Value.t -> parts:int -> Scheme.result_row list
(** Client-side post-processing: merge the sub-groups back, summing sums
    and counts. *)

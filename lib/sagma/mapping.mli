(** The secret mapping functions f_i : D_i → {0, …, |D_i|−1}
    (Algorithm 1).

    Each group column's setup-time domain is mapped injectively onto
    indices; index ÷ B is the bucket identifier, index mod B the offset
    inside the bucket. The mapping is secret — it decides which values
    share a bucket and are therefore indistinguishable (§5). *)

module Value = Sagma_db.Value
module Prf = Sagma_crypto.Prf

type strategy =
  | Prf_random
      (** PRF-keyed uniformly random permutation (the paper's default) *)
  | Optimal of (Value.t * int) list
      (** frequency-balancing partition given the histogram (§5) *)
  | Explicit of Value.t list
      (** caller-supplied index order (tests pin the paper's example) *)

type t = {
  forward : (Value.t, int) Hashtbl.t;
  backward : Value.t array;
  domain_size : int;
  bucket_size : int;
}

val of_order : Value.t list -> bucket_size:int -> t
(** @raise Invalid_argument on duplicate domain values. *)

val make : strategy -> Prf.key -> Value.t list -> bucket_size:int -> t

val index : t -> Value.t -> int
(** @raise Invalid_argument for values outside the setup domain. *)

val mem : t -> Value.t -> bool

val bucket : t -> Value.t -> int
(** ⌊f(g)/B⌋ — what the SSE index reveals. *)

val offset : t -> Value.t -> int
(** f(g) mod B — the in-bucket slot, never revealed. *)

val num_buckets : t -> int

val value_at : t -> bucket:int -> offset:int -> Value.t option
(** Inverse lookup; [None] for uninhabited slots of a partial last
    bucket. *)

val bucket_members : t -> int -> Value.t list
val domain : t -> Value.t list

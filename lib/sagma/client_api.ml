(* Facade bundling a Scheme.client with its current encrypted table, so
   the common single-table workflow is create/encrypt/query/append
   instead of hand-threading tables, index modes and row counts through
   the algorithm-level API. Pure delegation — no crypto lives here. *)

module Drbg = Sagma_crypto.Drbg
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query

type t = {
  client : Scheme.client;
  mutable table : Scheme.enc_table option;
}

let create ?mapping_strategy ?(seed = "sagma-client") ~config ~domains () : t =
  let client =
    match mapping_strategy with
    | None -> Scheme.setup config ~domains (Drbg.create seed)
    | Some strategy -> Scheme.setup ~mapping_strategy:strategy config ~domains (Drbg.create seed)
  in
  { client; table = None }

let of_client ?table (client : Scheme.client) : t = { client; table }

let client (t : t) : Scheme.client = t.client

let mappings (t : t) : Mapping.t array = t.client.Scheme.mappings

let encrypt ?dummy_groups ?index_mode (t : t) ~(table : Table.t) : unit =
  t.table <- Some (Scheme.encrypt_table ?dummy_groups ?index_mode t.client table)

let attach (t : t) (et : Scheme.enc_table) : unit = t.table <- Some et

let encrypted (t : t) : Scheme.enc_table =
  match t.table with
  | Some et -> et
  | None -> invalid_arg "Client_api: no table encrypted yet"

let row_count (t : t) : int =
  match t.table with None -> 0 | Some et -> Array.length et.Scheme.rows

let query ?index_mode ?oxt_rows ?domains ?pool (t : t) (q : Query.t) : Scheme.result_row list =
  Scheme.query ?index_mode ?oxt_rows ?domains ?pool t.client (encrypted t) q

let append ?range_values ?(filters = []) (t : t) ~(values : int array)
    ~(groups : Value.t array) : unit =
  t.table <- Some (Scheme.append_row ?range_values t.client (encrypted t) ~values ~groups ~filters)

(** Scheme-level configuration: the parameters fixed at Setup time
    (Algorithm 1) plus implementation knobs.

    Table layout follows §2: value columns (aggregated), group columns
    (GROUP BY targets) and filter columns (WHERE targets); one column may
    play several roles. *)

type t = {
  bucket_size : int;
      (** B: values per bucket — fewer buckets = less leakage, more
          computation (§3.2, §5, Figure 6a) *)
  max_group_attrs : int;
      (** t: most grouping attributes in one query; bounds storage to
          m(l,t) monomials per row (§4.1) *)
  value_columns : string list;
  group_columns : string list;
  filter_columns : string list;
  range_filter_columns : string list;
      (** int columns supporting BETWEEN filters via dyadic SSE keywords *)
  range_bits : int;
      (** width of range-filterable values: domain [0, 2^range_bits) *)
  bgn_bits : int;
      (** BGN modulus size (paper: 1024; tests default smaller) *)
  channel_bits : int;
      (** CRT channel modulus width (Hu et al. trade-off, §6) *)
  value_bits : int;
      (** |D_V|: bit width of a value entry (paper: 32) *)
}

val default_value_columns : string list

val make :
  ?bucket_size:int ->
  ?max_group_attrs:int ->
  ?filter_columns:string list ->
  ?range_filter_columns:string list ->
  ?range_bits:int ->
  ?bgn_bits:int ->
  ?channel_bits:int ->
  ?value_bits:int ->
  value_columns:string list ->
  group_columns:string list ->
  unit ->
  t
(** @raise Invalid_argument on inconsistent parameters (empty column
    lists, t larger than l, duplicates). *)

val group_column_index : t -> string -> int
val value_column_index : t -> string -> int
val num_group_columns : t -> int
val num_value_columns : t -> int

(* The static-shifting constructions (§3.1 and §3.2).

   Both encode the group membership client-side by multiplying the value
   into a block position of a packed Paillier plaintext; the additively
   homomorphic sum then accumulates every group's subtotal in its own
   block. Paillier decryption is direct (no discrete log), so the packed
   plaintext can use the full 2·|key|-bit space.

   §3.1 (Initial static shifting): one block per domain value, whole
   domain packed, multiple ciphertexts per row when the domain exceeds the
   per-ciphertext block count. Hides the access pattern entirely, at a
   storage cost of ⌈|D|·value_bits / |M|⌉ ciphertexts per row.

   §3.2 (Statically shifted bucketization): the domain is split into
   buckets of B values; a row stores one ciphertext (its bucket's) and the
   bucket membership is revealed to the server for aggregation, trading
   leakage for storage. *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Drbg = Sagma_crypto.Drbg
module Paillier = Sagma_paillier.Paillier

type client = {
  kp : Paillier.keypair;
  mapping : Mapping.t;
  value_bits : int;
  blocks_per_ct : int;
  drbg : Drbg.t;
}

(* How many value blocks fit one Paillier plaintext. *)
let blocks_per_ciphertext (pk : Paillier.public_key) ~(value_bits : int) : int =
  Paillier.plaintext_bits pk / value_bits

let setup ?(paillier_bits = 512) ?(value_bits = 32)
    ?(mapping_strategy = Mapping.Prf_random) ~(domain : Value.t list) (drbg : Drbg.t) : client =
  let kp = Paillier.keygen ~bits:paillier_bits drbg in
  let blocks = blocks_per_ciphertext kp.Paillier.pk ~value_bits in
  if blocks < 1 then invalid_arg "Static.setup: value_bits exceed plaintext space";
  let key = Sagma_crypto.Prf.gen_key drbg in
  (* §3.1 packs the whole domain, so the "bucket" for mapping purposes is
     the per-ciphertext block count. *)
  let mapping = Mapping.make mapping_strategy key domain ~bucket_size:blocks in
  { kp; mapping; value_bits; blocks_per_ct = blocks; drbg }

(* --- §3.1: whole-domain packing ----------------------------------------- *)

module Full_domain = struct
  type enc_row = Paillier.ciphertext array
  (* ⌈|D| / blocks_per_ct⌉ ciphertexts; all blocks zero except the row's. *)

  let cts_per_row (c : client) : int =
    (c.mapping.Mapping.domain_size + c.blocks_per_ct - 1) / c.blocks_per_ct

  (* v' = v · |D_V|^f(g): the blockwise left shift of §3.1. *)
  let enc_row (c : client) ~(value : int) ~(group : Value.t) : enc_row =
    if value < 0 || (c.value_bits < 62 && value >= 1 lsl c.value_bits) then
      invalid_arg "Static.enc_row: value out of domain";
    let idx = Mapping.index c.mapping group in
    let ct_idx = idx / c.blocks_per_ct in
    let block = idx mod c.blocks_per_ct in
    Array.init (cts_per_row c) (fun i ->
        let m =
          if i = ct_idx then Z.shift_left (Z.of_int value) (c.value_bits * block) else Z.zero
        in
        Paillier.encrypt c.kp.Paillier.pk c.drbg m)

  (* Server-side: componentwise homomorphic sum over all rows. *)
  let aggregate (c : client) (rows : enc_row list) : Paillier.ciphertext array =
    match rows with
    | [] -> Array.init (cts_per_row c) (fun _ -> Paillier.zero c.kp.Paillier.pk c.drbg)
    | first :: rest ->
      List.fold_left
        (fun acc row -> Array.map2 (Paillier.add c.kp.Paillier.pk) acc row)
        first rest

  (* Client-side: decrypt, unpack blocks, map indices back to values. *)
  let decrypt (c : client) (agg : Paillier.ciphertext array) : (Value.t * int) list =
    let mask = Z.pred (Z.shift_left Z.one c.value_bits) in
    let out = ref [] in
    Array.iteri
      (fun ct_idx ct ->
        let packed = Paillier.decrypt c.kp ct in
        for block = 0 to c.blocks_per_ct - 1 do
          let idx = (ct_idx * c.blocks_per_ct) + block in
          if idx < c.mapping.Mapping.domain_size then begin
            let v =
              Z.to_int_exn
                (Z.erem (Z.shift_right packed (c.value_bits * block)) (Z.succ mask))
            in
            let group = Option.get (Mapping.value_at c.mapping ~bucket:ct_idx ~offset:block) in
            out := (group, v) :: !out
          end
        done)
      agg;
    List.sort (fun (a, _) (b, _) -> Value.compare a b) !out
end

(* --- §3.2: bucketized packing -------------------------------------------- *)

module Bucketized = struct
  type client_b = {
    base : client;
    bucket_size : int;  (* B: blocks per bucket ciphertext *)
  }

  type enc_row = {
    bucket : int;                 (* revealed to the server *)
    ct : Paillier.ciphertext;     (* value shifted to its in-bucket block *)
  }

  let setup ?(paillier_bits = 512) ?(value_bits = 32) ?(mapping_strategy = Mapping.Prf_random)
      ~(bucket_size : int) ~(domain : Value.t list) (drbg : Drbg.t) : client_b =
    let kp = Paillier.keygen ~bits:paillier_bits drbg in
    if bucket_size > blocks_per_ciphertext kp.Paillier.pk ~value_bits then
      invalid_arg "Static.Bucketized.setup: bucket exceeds plaintext space";
    let key = Sagma_crypto.Prf.gen_key drbg in
    let mapping = Mapping.make mapping_strategy key domain ~bucket_size in
    { base = { kp; mapping; value_bits; blocks_per_ct = bucket_size; drbg }; bucket_size }

  (* The §3.2 shift: s(g) = |D_V|^(f(g) mod B). *)
  let enc_row (cb : client_b) ~(value : int) ~(group : Value.t) : enc_row =
    let c = cb.base in
    if value < 0 || (c.value_bits < 62 && value >= 1 lsl c.value_bits) then
      invalid_arg "Static.Bucketized.enc_row: value out of domain";
    let bucket = Mapping.bucket c.mapping group in
    let offset = Mapping.offset c.mapping group in
    let m = Z.shift_left (Z.of_int value) (c.value_bits * offset) in
    { bucket; ct = Paillier.encrypt c.kp.Paillier.pk c.drbg m }

  (* Aggregation groups rows by their (leaked) bucket id. *)
  let aggregate (cb : client_b) (rows : enc_row list) : (int * Paillier.ciphertext) list =
    let tbl : (int, Paillier.ciphertext) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun { bucket; ct } ->
        match Hashtbl.find_opt tbl bucket with
        | None -> Hashtbl.add tbl bucket ct
        | Some acc -> Hashtbl.replace tbl bucket (Paillier.add cb.base.kp.Paillier.pk acc ct))
      rows;
    Hashtbl.fold (fun b ct acc -> (b, ct) :: acc) tbl [] |> List.sort compare

  let decrypt (cb : client_b) (aggs : (int * Paillier.ciphertext) list) : (Value.t * int) list =
    let c = cb.base in
    let modulus = Z.shift_left Z.one c.value_bits in
    let out = ref [] in
    List.iter
      (fun (bucket, ct) ->
        let packed = Paillier.decrypt c.kp ct in
        for offset = 0 to cb.bucket_size - 1 do
          match Mapping.value_at c.mapping ~bucket ~offset with
          | None -> ()
          | Some group ->
            let v =
              Z.to_int_exn (Z.erem (Z.shift_right packed (c.value_bits * offset)) modulus)
            in
            out := (group, v) :: !out
        done)
      aggs;
    List.sort (fun (a, _) (b, _) -> Value.compare a b) !out
end

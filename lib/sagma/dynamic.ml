(* Dynamically shifted bucketization for a single grouping attribute
   (§3.3), with *packed* shift polynomials.

   Unlike the unit-shift strategy the full scheme uses (one indicator
   polynomial per block, B^q small aggregates), this variant evaluates a
   single polynomial P with P(offset) = |D_V|^offset, multiplies it into
   the value with the one BGN pairing, and aggregates one packed
   ciphertext per bucket per CRT channel — one pairing per row instead of
   B, at the price of a (d−1)² discrete-log range per channel and a CRT
   capacity of B·value_bits bits. It exists here as the §3.3 construction
   and as the packed-vs-unit ablation (`bench ablation:shift-strategy`).

   COUNT "aggregates the shifts instead of the shifted values" (§6):
   level-1 additions of the per-channel packed shifts, no pairing at all.

   Bucket membership is taken from the same SSE machinery as the full
   scheme; for clarity this module receives rows already grouped by
   bucket (the grouping layer is identical and tested in Scheme). *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Drbg = Sagma_crypto.Drbg
module Bgn = Sagma_bgn.Bgn
module Crt = Sagma_bgn.Crt_channels

type client = {
  kp : Bgn.keypair;
  mapping : Mapping.t;
  channels : Crt.t;
  bucket_size : int;
  value_bits : int;
  (* Per channel c, coefficients of the packed shift polynomial with
     targets 2^(value_bits·j) mod d_c on the grid {0..B−1}. Public. *)
  shift_polys : Z.t array array;
  drbg : Drbg.t;
}

let setup ?(bgn_bits = 64) ?(value_bits = 12) ?(channel_bits = 8)
    ?(mapping_strategy = Mapping.Prf_random) ~(bucket_size : int) ~(domain : Value.t list)
    (drbg : Drbg.t) : client =
  let kp = Bgn.keygen ~bits:bgn_bits drbg in
  let n = Bgn.n kp.Bgn.pk in
  let key = Sagma_crypto.Prf.gen_key drbg in
  let mapping = Mapping.make mapping_strategy key domain ~bucket_size in
  (* Capacity: B packed blocks of value_bits plus 24 bits of row head-room. *)
  let channels =
    Crt.choose ~channel_bits ~capacity_bits:((bucket_size * value_bits) + 24)
  in
  let shift_polys =
    Array.map
      (fun d ->
        Polynomial.interpolate ~n
          (Array.init bucket_size (fun j ->
               Z.erem (Z.shift_left Z.one (value_bits * j)) (Z.of_int d))))
      channels.Crt.moduli
  in
  { kp; mapping; channels; bucket_size; value_bits; shift_polys; drbg }

(* The §3.3 shift value s(g) = |D_V|^(f(g) mod B) — Table 3's E_Gender
   column contents (exposed for tests and pedagogy). *)
let shift_value (c : client) (g : Value.t) : Z.t =
  Z.shift_left Z.one (c.value_bits * Mapping.offset c.mapping g)

type enc_row = {
  value_cts : Bgn.c1 array;     (* per channel: Enc(v mod d_c) — E_Salary *)
  monomial_cts : Bgn.c1 array;  (* Enc(x^e), e = 1..B−1 — E_Gender monomials *)
  bucket : int;
}

let int_pow x e =
  let rec go acc e = if e = 0 then acc else go (acc * x) (e - 1) in
  go 1 e

let enc_row (c : client) ~(value : int) ~(group : Value.t) : enc_row =
  let pk = c.kp.Bgn.pk in
  let x = Mapping.offset c.mapping group in
  { value_cts = Array.map (fun r -> Bgn.enc1_int pk c.drbg r) (Crt.encode_int c.channels value);
    monomial_cts =
      Array.init (c.bucket_size - 1) (fun e -> Bgn.enc1_int pk c.drbg (int_pow x (e + 1)));
    bucket = Mapping.bucket c.mapping group }

(* Server: derive the per-channel encrypted shift of a row by evaluating
   the packed polynomial over the monomials. *)
let shift_ct (c : client) (row : enc_row) (channel : int) : Bgn.c1 =
  let pk = c.kp.Bgn.pk in
  let coeffs = c.shift_polys.(channel) in
  let curve = pk.Bgn.group.Sagma_pairing.Pairing.curve in
  let acc = ref (Sagma_pairing.Curve.mul curve coeffs.(0) pk.Bgn.g) in
  Array.iteri
    (fun e mono -> acc := Bgn.add1 pk !acc (Bgn.smul1 pk coeffs.(e + 1) mono))
    row.monomial_cts;
  !acc

type bucket_aggregate = {
  agg_bucket : int;
  sum_cts : Bgn.c2 array;    (* per channel: Σ e(value, shift) *)
  count_cts : Bgn.c1 array;  (* per channel: Σ shift (level 1) *)
  agg_rows : int;
}

(* Server-side aggregation of rows already looked up per bucket. *)
let aggregate (c : client) (rows : enc_row list) : bucket_aggregate list =
  let pk = c.kp.Bgn.pk in
  let nch = Crt.channels c.channels in
  let by_bucket : (int, enc_row list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt by_bucket r.bucket with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add by_bucket r.bucket (ref [ r ]))
    rows;
  Hashtbl.fold
    (fun bucket rows acc ->
      let rows = !rows in
      let sum_cts =
        (* One product of pairings (single final exponentiation) per
           channel instead of one pairing per row. *)
        Array.init nch (fun ch ->
            Bgn.mul_many pk (List.map (fun r -> (r.value_cts.(ch), shift_ct c r ch)) rows))
      in
      let count_cts =
        Array.init nch (fun ch ->
            List.fold_left (fun acc r -> Bgn.add1 pk acc (shift_ct c r ch)) Bgn.zero1 rows)
      in
      { agg_bucket = bucket; sum_cts; count_cts; agg_rows = List.length rows } :: acc)
    by_bucket []
  |> List.sort (fun a b -> compare a.agg_bucket b.agg_bucket)

type result_row = { group : Value.t; sum : int; count : int }

(* Client: decrypt each channel (dlog bounded by rows·(d−1)² for sums,
   rows·(d−1) for counts), CRT-recombine the packed aggregate, unpack. *)
let decrypt (c : client) (aggs : bucket_aggregate list) ~(total_rows : int) : result_row list =
  let block_mod = Z.shift_left Z.one c.value_bits in
  let out = ref [] in
  List.iter
    (fun ba ->
      let sum_channels =
        Array.mapi
          (fun ch ct ->
            let d = c.channels.Crt.moduli.(ch) in
            let max = total_rows * (d - 1) * (d - 1) in
            Option.value (Bgn.dec2_once c.kp ~max ct) ~default:0)
          ba.sum_cts
      in
      let count_channels =
        Array.mapi
          (fun ch ct ->
            let d = c.channels.Crt.moduli.(ch) in
            let max = total_rows * (d - 1) in
            Option.value (Bgn.dec1_once c.kp ~max ct) ~default:0)
          ba.count_cts
      in
      let packed_sum = Crt.decode c.channels sum_channels in
      let packed_count = Crt.decode c.channels count_channels in
      for offset = 0 to c.bucket_size - 1 do
        match Mapping.value_at c.mapping ~bucket:ba.agg_bucket ~offset with
        | None -> ()
        | Some group ->
          let part packed =
            Z.to_int_exn (Z.erem (Z.shift_right packed (c.value_bits * offset)) block_mod)
          in
          let count = part packed_count in
          if count > 0 then out := { group; sum = part packed_sum; count } :: !out
      done)
    aggs;
  List.sort (fun a b -> Value.compare a.group b.group) !out

(* The leakage function L of §4.2 and the simulator of Theorem 1,
   executable.

   L(T, (V₁,Q₁), …, (Vᵢ,Qᵢ)) = ((V₁,Q₁), …, (Vᵢ,Qᵢ), τᵢ): the queried
   attribute *identifiers* plus the SSE trace — per keyword query its
   search pattern (token repetition) and access pattern (matching row
   ids). Table dimensions, the bucket size and the monomial count are
   public parameters.

   The simulator consumes exactly this and emits an encrypted database and
   grouping tokens; the accompanying test checks that (a) the simulated
   transcript is structurally identical to the real one and (b) replaying
   the simulated tokens against the simulated index reproduces the leaked
   access patterns — the operational content of adaptive L-security. *)

module Drbg = Sagma_crypto.Drbg
module Sse = Sagma_sse.Sse
module Bgn = Sagma_bgn.Bgn

type sse_observation = {
  token_tag : string;   (* search pattern: equal tags = same keyword *)
  matches : int list;   (* access pattern *)
}

type query_leakage = {
  value_column : int option;   (* V: queried value-column identifier *)
  group_columns : int array;   (* Q: queried group-column identifiers *)
  observations : sse_observation list;  (* one per bucket token + filter *)
}

type t = {
  num_rows : int;
  num_monomials : int;
  num_value_columns : int;
  num_channels : int;
  index_size : int;
  queries : query_leakage list;
}

(* Replay a real token against the real index to materialize the trace —
   what a persistent honest-but-curious server records. *)
let observe_token (index : Sse.index) (tok : Sse.token) : sse_observation =
  { token_tag = Sse.token_id tok; matches = Sse.search index tok }

let of_query (et : Scheme.enc_table) (tok : Scheme.token) : query_leakage =
  let bucket_observations =
    match tok.Scheme.source with
    | Scheme.Per_attribute_tokens per_column ->
      Array.to_list per_column
      |> List.concat_map (fun per_bucket ->
             Array.to_list (Array.map (observe_token et.Scheme.index) per_bucket))
    | Scheme.Joint_tokens entries ->
      Array.to_list (Array.map (fun (_, t) -> observe_token et.Scheme.index t) entries)
    | Scheme.Oxt_tokens entries ->
      (* OXT leakage per conjunction: the matching rows; the tag is the
         s-term stag's identity. *)
      let oxt = Option.get et.Scheme.oxt_index in
      let params = Scheme.oxt_params () in
      Array.to_list
        (Array.map
           (fun (_, st, xtoks) ->
             { token_tag = Scheme.oxt_stag_tag st;
               matches = List.sort compare (Sagma_sse.Oxt.search params oxt st xtoks) })
           entries)
  in
  let observations =
    bucket_observations
    @ List.map (observe_token et.Scheme.index) tok.Scheme.filter_tokens
    @ List.concat_map
        (List.map (observe_token et.Scheme.index))
        tok.Scheme.range_token_groups
  in
  { value_column = tok.Scheme.value_column;
    group_columns = tok.Scheme.group_columns;
    observations }

let profile (et : Scheme.enc_table) (tokens : Scheme.token list) : t =
  let pp = et.Scheme.pp in
  { num_rows = Array.length et.Scheme.rows;
    num_monomials = Monomials.count pp.Scheme.monomials;
    num_value_columns = Config.num_value_columns pp.Scheme.config;
    num_channels = Sagma_bgn.Crt_channels.channels pp.Scheme.channels;
    index_size = Sse.size et.Scheme.index;
    queries = List.map (of_query et) tokens }

(* --- leakage equality -------------------------------------------------------

   Token tags are PRF outputs, so two leakage profiles taken under
   different keys (or against a simulator) never share literal tags even
   when they describe the same view. What is meaningful is the *search
   pattern* — which observations repeat a tag — so equality compares
   profiles after renaming each distinct tag to its first-occurrence
   index. *)

let canonical (leak : t) : t =
  let classes : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let class_of tag =
    match Hashtbl.find_opt classes tag with
    | Some c -> c
    | None ->
      let c = Printf.sprintf "#%d" (Hashtbl.length classes) in
      Hashtbl.add classes tag c;
      c
  in
  { leak with
    queries =
      List.map
        (fun q ->
          { q with
            observations =
              List.map
                (fun o -> { o with token_tag = class_of o.token_tag })
                q.observations })
        leak.queries }

let equal (a : t) (b : t) : bool = canonical a = canonical b

(* --- leakage audit glue ----------------------------------------------------

   [Scheme.aggregate] records every index access it performs as an
   Audit probe; these functions derive, from the declared leakage alone,
   the exact probe set an honest server may produce — same kinds, same
   tags, same posting lists as the instrumented call sites — plus a
   tight bound on the rows entering the pairing loop. Anything beyond
   the prediction (an extra bucket probed, a wider posting list, more
   rows paired) is observable behavior L does not license. *)

module Audit = Sagma_obs.Audit
module Int_set = Set.Make (Int)

let audit_prediction (et : Scheme.enc_table) (tok : Scheme.token) :
    (string * string * int list) list * int =
  let obs_of kind t =
    let o = observe_token et.Scheme.index t in
    (kind, o.token_tag, o.matches)
  in
  let bucket_obs =
    match tok.Scheme.source with
    | Scheme.Per_attribute_tokens per_column ->
      Array.to_list per_column
      |> List.concat_map (fun per_bucket ->
             Array.to_list (Array.map (obs_of "sse.bucket") per_bucket))
    | Scheme.Joint_tokens entries ->
      Array.to_list (Array.map (fun (_, t) -> obs_of "sse.bucket" t) entries)
    | Scheme.Oxt_tokens entries ->
      let oxt = Option.get et.Scheme.oxt_index in
      let params = Scheme.oxt_params () in
      Array.to_list
        (Array.map
           (fun (_, st, xtoks) ->
             ( "oxt.bucket",
               Scheme.oxt_stag_tag st,
               List.sort compare (Sagma_sse.Oxt.search params oxt st xtoks) ))
           entries)
  in
  let filter_obs = List.map (obs_of "sse.filter") tok.Scheme.filter_tokens in
  let range_obs =
    List.concat_map (List.map (obs_of "sse.range")) tok.Scheme.range_token_groups
  in
  (* Paired-row bound, mirroring the WHERE composition of Algorithm 5:
     equality clauses intersect, each range clause contributes the union
     of its cover, and a row feeds the pairing loop once per joint
     bucket containing it. *)
  let equality_sets = List.map (fun (_, _, m) -> Int_set.of_list m) filter_obs in
  let range_sets =
    List.map
      (fun group ->
        List.fold_left
          (fun acc t ->
            Int_set.union acc (Int_set.of_list (observe_token et.Scheme.index t).matches))
          Int_set.empty group)
      tok.Scheme.range_token_groups
  in
  let filtered =
    match equality_sets @ range_sets with
    | [] -> None
    | s0 :: rest -> Some (List.fold_left Int_set.inter s0 rest)
  in
  let keep r = match filtered with None -> true | Some s -> Int_set.mem r s in
  let bound =
    match tok.Scheme.source with
    | Scheme.Per_attribute_tokens per_column ->
      (* A row pairs iff, in every queried column, it lies in some
         queried bucket — i.e. the intersection of the per-column match
         unions (each row inhabits exactly one bucket per column). *)
      let col_sets =
        Array.map
          (fun per_bucket ->
            Array.fold_left
              (fun acc t ->
                List.fold_left
                  (fun acc r -> if keep r then Int_set.add r acc else acc)
                  acc (observe_token et.Scheme.index t).matches)
              Int_set.empty per_bucket)
          per_column
      in
      if Array.length col_sets = 0 then 0
      else Int_set.cardinal (Array.fold_left Int_set.inter col_sets.(0) col_sets)
    | Scheme.Joint_tokens _ | Scheme.Oxt_tokens _ ->
      (* Joint buckets are read directly: each entry pairs its own
         (filtered) matches. *)
      List.fold_left
        (fun acc (_, _, m) -> acc + List.length (List.filter keep m))
        0 bucket_obs
  in
  (bucket_obs @ filter_obs @ range_obs, bound)

let audit_check (et : Scheme.enc_table) (tok : Scheme.token) (trace : Audit.trace) :
    Audit.verdict =
  let predicted, bound = audit_prediction et tok in
  Audit.check ~max_rows_paired:bound ~predicted trace

(* --- simulator ------------------------------------------------------------ *)

type simulated = {
  sim_rows : Scheme.enc_row array;
  sim_index : Sse.index;
  sim_tokens : (string * Sse.token) list;  (* token per distinct tag *)
}

(* Build an encrypted database + tokens from the leakage alone. Ciphertext
   components are fresh encryptions of 0 under the public key (semantic
   security makes them indistinguishable from the real contents); the SSE
   dictionary is programmed so each simulated token's counter walk hits
   exactly the leaked access pattern, then padded with random entries to
   the leaked index size. *)
let simulate (pk : Bgn.public_key) (leak : t) (drbg : Drbg.t) : simulated =
  let zero () = Bgn.enc1_int pk drbg 0 in
  let sim_rows =
    Array.init leak.num_rows (fun _ ->
        { Scheme.values =
            Array.init leak.num_value_columns (fun _ ->
                Array.init leak.num_channels (fun _ -> zero ()));
          count_ct = zero ();
          monomial_cts = Array.init leak.num_monomials (fun _ -> zero ());
          pre_values =
            Array.init leak.num_value_columns (fun _ -> Array.make leak.num_channels None);
          pre_count = None })
  in
  (* One simulated token per distinct search-pattern tag; program its
     postings from the (first-seen) access pattern. *)
  let dict : (string, string) Hashtbl.t = Hashtbl.create (2 * leak.index_size) in
  let tokens : (string, Sse.token) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun q ->
      List.iter
        (fun obs ->
          if not (Hashtbl.mem tokens obs.token_tag) then begin
            let tok = Sse.simulate_token drbg in
            Hashtbl.add tokens obs.token_tag tok;
            List.iteri
              (fun counter id ->
                let label, value = Sse.entry tok counter id in
                Hashtbl.replace dict label value)
              obs.matches
          end)
        q.observations)
    leak.queries;
  (* Pad to the public index size with random garbage entries. *)
  while Hashtbl.length dict < leak.index_size do
    Hashtbl.replace dict (Drbg.bytes drbg Sse.label_size) (Drbg.bytes drbg Sse.id_size)
  done;
  let sim_index = { Sse.dict; entries = Hashtbl.length dict } in
  { sim_rows;
    sim_index;
    sim_tokens = Hashtbl.fold (fun tag tok acc -> (tag, tok) :: acc) tokens [] }

(* Deterministic byte serialization of a simulated transcript: dictionary
   entries and tokens are emitted in sorted order so the bytes depend
   only on the transcript's content, never on hash-table internals —
   which makes "same DRBG seed ⇒ byte-identical simulation" a testable
   (and pinned) property. *)
let transcript_bytes (s : simulated) : string =
  let module W = Sagma_wire.Wire in
  let sink = W.sink () in
  W.put_array sink Serialize.put_enc_row s.sim_rows;
  let entries =
    Hashtbl.fold (fun label v acc -> (label, v) :: acc) s.sim_index.Sse.dict []
    |> List.sort compare
  in
  W.put_list sink
    (fun k (label, v) ->
      W.put_bytes k label;
      W.put_bytes k v)
    entries;
  W.put_list sink
    (fun k (tag, tok) ->
      W.put_bytes k tag;
      Serialize.put_sse_token k tok)
    (List.sort compare s.sim_tokens);
  W.contents sink

(** Leakage-abuse attacks, executable (Naveed et al., CCS'15 — the
    paper's motivating threat, §1/§2).

    Frequency analysis recovers deterministic-encryption plaintexts from
    histogram leakage; against SAGMA only bucket frequencies leak, and
    dummy rows remove even those. Tests and `bench ablation:attack`
    report the measured recovery rates. *)

module Value = Sagma_db.Value

type auxiliary = (Value.t * int) list
(** The attacker's auxiliary plaintext distribution. *)

val frequency_match : (string * int) list -> auxiliary -> (string * Value.t) list
(** Align observed tag frequencies with auxiliary frequencies (the
    optimal attack when frequencies are distinct). *)

val recovery_rate :
  truth:(string * Value.t) list ->
  freqs:(string * int) list ->
  (string * Value.t) list ->
  float
(** Row-weighted fraction of correctly recovered values. *)

val attack_cryptdb :
  leaked:(string * int) list -> aux:auxiliary -> truth:(string * Value.t) list -> float
(** Run the frequency attack against a CryptDB-style deterministic
    column's leaked histogram. *)

val attack_sagma_buckets : Mapping.t -> histogram:(Value.t * int) list -> float
(** Best-case attacker against SAGMA's bucket leakage: identify buckets
    by frequency (when unique), then answer the most frequent member. *)

val baseline_guess : auxiliary -> histogram:(Value.t * int) list -> float
(** Blind guessing (auxiliary mode), for calibration. *)

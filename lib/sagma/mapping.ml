(* The secret mapping functions f_i : D_i → {0, …, |D_i|−1} (Algorithm 1).

   Each group column gets an injective mapping of its (setup-time) value
   domain onto indices; index ÷ B is the bucket identifier, index mod B the
   offset inside the bucket. The mapping must be secret — it decides which
   values share a bucket and are therefore indistinguishable (§5).

   Strategies:
   - [Prf]: a PRF-keyed uniformly random permutation of the domain — the
     paper's default ("the mapping function f can be seeded with an
     additional secret key").
   - [Optimal]: frequency-aware partitioning minimizing the exposure
     coefficient (§5 "optimal choice of the mapping function"); needs the
     plaintext histogram.
   - [Explicit]: caller-supplied order, used by tests to pin the paper's
     worked example. *)

module Value = Sagma_db.Value
module Drbg = Sagma_crypto.Drbg
module Prf = Sagma_crypto.Prf

type strategy =
  | Prf_random
  | Optimal of (Value.t * int) list  (* histogram: value -> frequency *)
  | Explicit of Value.t list          (* values in index order *)

type t = {
  forward : (Value.t, int) Hashtbl.t;   (* value -> index *)
  backward : Value.t array;             (* index -> value *)
  domain_size : int;
  bucket_size : int;
}

let of_order (order : Value.t list) ~(bucket_size : int) : t =
  let backward = Array.of_list order in
  let forward = Hashtbl.create (2 * Array.length backward) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem forward v then invalid_arg "Mapping.of_order: duplicate domain value";
      Hashtbl.add forward v i)
    backward;
  { forward; backward; domain_size = Array.length backward; bucket_size }

(* PRF-keyed permutation: canonical sort, then Fisher–Yates driven by a
   DRBG derived from the column key (deterministic per key). *)
let prf_permutation (key : Prf.key) (domain : Value.t list) ~bucket_size : t =
  let arr = Array.of_list (List.sort_uniq Value.compare domain) in
  let drbg = Drbg.create ("mapping-perm:" ^ key) in
  Drbg.shuffle drbg arr;
  of_order (Array.to_list arr) ~bucket_size

(* Frequency-balancing partition (§5): spread values over buckets so
   bucket total-frequencies collide as much as possible. Values are
   assigned largest-frequency-first to the currently lightest bucket with
   free capacity (LPT multiway partitioning) — a standard heuristic for
   minimizing the spread of bucket sums, hence exposure. *)
let balanced_partition (histogram : (Value.t * int) list) ~bucket_size : t =
  let values = List.sort (fun (_, a) (_, b) -> compare b a) histogram in
  let n = List.length values in
  let num_buckets = (n + bucket_size - 1) / bucket_size in
  let loads = Array.make num_buckets 0 in
  let members = Array.make num_buckets [] in
  List.iter
    (fun (v, freq) ->
      (* lightest bucket with capacity left *)
      let best = ref (-1) in
      for b = num_buckets - 1 downto 0 do
        if List.length members.(b) < bucket_size && (!best = -1 || loads.(b) <= loads.(!best))
        then best := b
      done;
      loads.(!best) <- loads.(!best) + freq;
      members.(!best) <- v :: members.(!best))
    values;
  (* Lay members out bucket by bucket; pad order irrelevant. *)
  let order = Array.to_list members |> List.concat_map List.rev in
  of_order order ~bucket_size

let make (strategy : strategy) (key : Prf.key) (domain : Value.t list) ~(bucket_size : int) : t =
  match strategy with
  | Prf_random -> prf_permutation key domain ~bucket_size
  | Optimal histogram ->
    (* Domain values missing from the histogram get frequency 0. *)
    let known = List.map fst histogram in
    let missing =
      List.filter (fun v -> not (List.exists (Value.equal v) known)) (List.sort_uniq Value.compare domain)
    in
    balanced_partition (histogram @ List.map (fun v -> (v, 0)) missing) ~bucket_size
  | Explicit order -> of_order order ~bucket_size

let index (m : t) (v : Value.t) : int =
  match Hashtbl.find_opt m.forward v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Mapping.index: value %S outside setup domain" (Value.to_string v))

let mem (m : t) (v : Value.t) : bool = Hashtbl.mem m.forward v

(* Bucket identifier and in-bucket offset of a value (Algorithm 2). *)
let bucket (m : t) (v : Value.t) : int = index m v / m.bucket_size
let offset (m : t) (v : Value.t) : int = index m v mod m.bucket_size

let num_buckets (m : t) : int = (m.domain_size + m.bucket_size - 1) / m.bucket_size

(* Inverse lookup: the domain value stored at (bucket, offset), if that
   slot is inhabited (the last bucket may be partial). *)
let value_at (m : t) ~(bucket : int) ~(offset : int) : Value.t option =
  let i = (bucket * m.bucket_size) + offset in
  if i < m.domain_size && offset < m.bucket_size then Some m.backward.(i) else None

(* All values in one bucket. *)
let bucket_members (m : t) (b : int) : Value.t list =
  List.filter_map (fun o -> value_at m ~bucket:b ~offset:o) (List.init m.bucket_size (fun i -> i))

let domain (m : t) : Value.t list = Array.to_list m.backward

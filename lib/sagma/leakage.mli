(** The leakage function L of §4.2 and the simulator of Theorem 1,
    executable.

    L(T, (V₁,Q₁), …) = ((V₁,Q₁), …, τ): the queried attribute
    {e identifiers} plus the SSE trace (search pattern and bucket-level
    access pattern). The simulator consumes exactly this and emits an
    encrypted database and tokens; tests check the simulated transcript
    is structurally identical to the real one and replays the leaked
    access patterns — the operational content of adaptive L-security. *)

module Drbg = Sagma_crypto.Drbg
module Sse = Sagma_sse.Sse
module Bgn = Sagma_bgn.Bgn

type sse_observation = {
  token_tag : string;  (** search pattern: equal tags = same keyword *)
  matches : int list;  (** access pattern *)
}

type query_leakage = {
  value_column : int option;
  group_columns : int array;
  observations : sse_observation list;
}

type t = {
  num_rows : int;
  num_monomials : int;
  num_value_columns : int;
  num_channels : int;
  index_size : int;
  queries : query_leakage list;
}

val observe_token : Sse.index -> Sse.token -> sse_observation
(** What a persistent honest-but-curious server records per keyword. *)

val of_query : Scheme.enc_table -> Scheme.token -> query_leakage

val profile : Scheme.enc_table -> Scheme.token list -> t
(** Materialize L for a query sequence. *)

val canonical : t -> t
(** Rename every distinct token tag to its first-occurrence index
    ([#0], [#1], …). Tags are PRF outputs, so profiles taken under
    different keys never share literal tags; only the repetition
    structure (the search pattern) carries information. *)

val equal : t -> t -> bool
(** Structural equality of {!canonical} forms — the "equal leakage"
    predicate of the §4.2 games: two (table, query list) pairs with
    [equal] profiles must be indistinguishable to the server
    ({!Sagma_games.Sim_ind} checks exactly this). *)

(** {1 Leakage audit}

    {!Scheme.aggregate} records every index access it performs as a
    {!Sagma_obs.Audit} probe; these derive the matching prediction from
    the declared leakage, so an audited trace can be replayed against
    what L licenses. *)

val audit_prediction :
  Scheme.enc_table -> Scheme.token -> (string * string * int list) list * int
(** The exact probe set (kind, tag, posting list) an honest execution of
    Algorithm 5 may produce for this token, plus a tight bound on the
    rows entering the pairing loop. *)

val audit_check :
  Scheme.enc_table -> Scheme.token -> Sagma_obs.Audit.trace -> Sagma_obs.Audit.verdict
(** [Audit.check] against {!audit_prediction}: fails iff the server
    observed anything the declared leakage does not predict. *)

type simulated = {
  sim_rows : Scheme.enc_row array;
  sim_index : Sse.index;
  sim_tokens : (string * Sse.token) list;
}

val simulate : Bgn.public_key -> t -> Drbg.t -> simulated
(** Build a fake encrypted database + tokens from the leakage alone:
    encryptions of 0 (semantic security), a programmed SSE dictionary
    reproducing the leaked access patterns, random padding to the leaked
    index size. *)

val transcript_bytes : simulated -> string
(** Deterministic serialization of a simulated transcript (rows, sorted
    dictionary entries, sorted tokens): same DRBG seed ⇒ byte-identical
    output, independent of hash-table iteration order. Tested — and
    pinned to a regression digest — in [test_games]. *)

(** Unified client facade over the algorithm-level {!Scheme} API.

    {!Scheme} exposes the paper's algorithms one by one (setup, EncTable,
    token, aggregate, decrypt) and makes the caller thread the encrypted
    table, index mode and row counts through every call. This facade
    bundles a client and its current encrypted table into one handle for
    the common single-table workflow:

    {[
      let t = Client_api.create ~config ~domains () in
      Client_api.encrypt t ~table;
      let rows = Client_api.query t q in
      Client_api.append t ~values:[| 55 |] ~groups:[| Value.Str "x" |]
    ]}

    Everything here delegates to {!Scheme}; multi-table or split
    client/server deployments should keep using {!Scheme} and
    [Sagma_protocol] directly. *)

type t
(** A trusted client plus (once {!encrypt} or {!attach} ran) its current
    encrypted table. The table is replaced in place by {!encrypt} and
    {!append}; the underlying [Scheme.enc_table] values are immutable, so
    handles obtained via {!encrypted} stay valid. *)

val create :
  ?mapping_strategy:(string -> Mapping.strategy) ->
  ?seed:string ->
  config:Config.t ->
  domains:(string * Sagma_db.Value.t list) list ->
  unit ->
  t
(** Algorithm 1 (Setup). [domains] must cover every group column with its
    full value domain; [seed] (default ["sagma-client"]) seeds the
    deterministic DRBG, so equal seeds give identical keys. *)

val of_client : ?table:Scheme.enc_table -> Scheme.client -> t
(** Wrap an existing scheme-level client (e.g. one restored through
    [Serialize.client_of_string]). *)

val client : t -> Scheme.client
(** The underlying scheme-level client, for interop with {!Scheme} and
    [Sagma_protocol]. *)

val mappings : t -> Mapping.t array
(** The secret bucket mappings, one per group column (needed e.g. by
    [Bucketing.dummy_rows]). *)

val encrypt :
  ?dummy_groups:Sagma_db.Value.t array list ->
  ?index_mode:Scheme.index_mode ->
  t ->
  table:Sagma_db.Table.t ->
  unit
(** Algorithm 2 (EncTable): encrypt [table] and make it the handle's
    current table, replacing any previous one. *)

val attach : t -> Scheme.enc_table -> unit
(** Make an already-encrypted table the current one. *)

val encrypted : t -> Scheme.enc_table
(** The current encrypted table — what a server would store.
    @raise Invalid_argument when nothing has been encrypted yet. *)

val row_count : t -> int
(** Rows (real + dummy) in the current table; 0 before {!encrypt}. *)

val query :
  ?index_mode:Scheme.index_mode ->
  ?oxt_rows:int ->
  ?domains:int ->
  ?pool:Sagma_pool.Pool.t ->
  t ->
  Sagma_db.Query.t ->
  Scheme.result_row list
(** Token → aggregate → decrypt against the current table (defaults
    follow [Scheme.query]: the table's own index mode and row count).
    [domains]/[pool] parallelize the server-side aggregation as in
    [Scheme.aggregate].
    @raise Invalid_argument when nothing has been encrypted yet. *)

val append :
  ?range_values:(string * int) list ->
  ?filters:(string * Sagma_db.Value.t) list ->
  t ->
  values:int array ->
  groups:Sagma_db.Value.t array ->
  unit
(** Encrypt and append one row to the current table (the paper's
    EncRow-based update), extending the SSE postings.
    @raise Invalid_argument when nothing has been encrypted yet. *)

(* Storage and client-cost models (§4.1, §6.2 — Table 9, Table 10,
   Figure 8).

   All storage figures count ciphertexts, as the paper does. Parameters
   follow Table 8: l group columns, threshold t, k value columns, r rows,
   n filtering clauses, bucket size B, group domain size |D| (assumed
   equal across columns, as in §6.2). *)

let choose n k =
  if k < 0 || k > n then 0
  else begin
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let int_pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

(* m(l,t) = Σ_{i=1..t} C(l,i)·(B−1)^i — monomials per row with reuse. *)
let monomial_count ~l ~t ~b : int =
  let rec sum i acc = if i > t then acc else sum (i + 1) (acc + (choose l i * int_pow (b - 1) i)) in
  sum 1 0

(* Table 9's increments: m(l,t) − m(l,t−1) = C(l,t)·(B−1)^t. *)
let monomial_increment ~l ~t ~b : int = choose l t * int_pow (b - 1) t

(* The naïve scheme (§4.1): C(l,i)·(B^i − 1) per subset size, no reuse. *)
let monomial_count_naive ~l ~t ~b : int =
  let rec sum i acc = if i > t then acc else sum (i + 1) (acc + (choose l i * (int_pow b i - 1))) in
  sum 1 0

(* --- Table 10: server storage in ciphertexts ----------------------------- *)

(* Pre-computed: every aggregate for every grouping combination, value
   column and filtering clause is materialized. *)
let precomputed_server ~l ~t ~k ~n ~d : int =
  let rec sum i acc = if i > t then acc else sum (i + 1) (acc + (choose l i * int_pow d i)) in
  sum 1 0 * k * max n 1

(* Seabed: (B+1)^i − 1 splayed columns per grouping combination, stored
   once per value column per row. *)
let seabed_server ~l ~t ~k ~r ~b : int =
  let rec sum i acc =
    if i > t then acc else sum (i + 1) (acc + (choose l i * (int_pow (b + 1) i - 1)))
  in
  sum 1 0 * k * r

(* SAGMA: m(l,t) monomials plus k value ciphertexts per row. *)
let sagma_server ~l ~t ~k ~r ~b : int = (monomial_count ~l ~t ~b + k) * r

(* --- Table 10: client operations per aggregation query ------------------- *)

(* C = |D|^t: the number of aggregation results for a t-attribute query. *)
let result_count ~t ~d : int = int_pow d t

let precomputed_client : int = 1
let seabed_client ~rho ~t ~d : int = rho * result_count ~t ~d
let sagma_client ~t ~d : int = result_count ~t ~d

(* --- Figure 8 sweeps ------------------------------------------------------ *)

type figure8_row = { x : int; precomputed : int; seabed : int; sagma : int }

(* Figure 8a: storage vs threshold t, fixed l=4, k=2, r=1000, n=2. *)
let figure8a ?(l = 4) ?(k = 2) ?(r = 1000) ?(n = 2) ?(b = 2) ?(d = 12) () : figure8_row list =
  List.map
    (fun t ->
      { x = t;
        precomputed = precomputed_server ~l ~t ~k ~n ~d;
        seabed = seabed_server ~l ~t ~k ~r ~b;
        sagma = sagma_server ~l ~t ~k ~r ~b })
    [ 1; 2; 3; 4; 5 ]
  |> List.filter (fun row -> row.x <= l)

(* Figure 8b: storage vs domain size |D|, fixed t=3. *)
let figure8b ?(l = 4) ?(t = 3) ?(k = 2) ?(r = 1000) ?(n = 2) ?(b = 2) () : figure8_row list =
  List.map
    (fun d ->
      { x = d;
        precomputed = precomputed_server ~l ~t ~k ~n ~d;
        seabed = seabed_server ~l ~t ~k ~r ~b;
        sagma = sagma_server ~l ~t ~k ~r ~b })
    [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]

(* Wire codecs for SAGMA's key material, encrypted tables, tokens and
   aggregates — the serialization layer under the client/server protocol
   (lib/protocol) and the persistence commands of the CLI.

   Public values (encrypted tables, tokens, aggregates) and the secret
   client state have separate entry points; the latter's output must be
   kept confidential. BGN public keys travel as (n, g, h): the pairing
   group is reconstructed deterministically from n on decode, and the
   cached pairing generators are recomputed. *)

module W = Sagma_wire.Wire
module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Curve = Sagma_pairing.Curve
module Fp2 = Sagma_pairing.Fp2
module Pairing = Sagma_pairing.Pairing
module Bgn = Sagma_bgn.Bgn
module Crt = Sagma_bgn.Crt_channels
module Sse = Sagma_sse.Sse
module Drbg = Sagma_crypto.Drbg

(* --- decode-side sanity bounds ---------------------------------------------

   Decoders promise to raise only [Wire.Decode_error] on malformed input
   (the wire fuzzer in test/test_prop_wire.ml holds them to it). Semantic
   constructors invoked during decoding (Config.make, Crt.make,
   Pairing.make_group, Mapping.of_order) signal bad parameters with
   Invalid_argument/Failure instead; [guard] translates those. The
   explicit bounds below stop a corrupted frame from driving decode-time
   computation out of all proportion before any validation could fail:
   reconstructing a pairing group runs a prime search in the size of n,
   and the monomial index is combinatorial in (l, B, t). *)

let max_pk_bits = ref 4096

let monomial_budget = 1_000_000

(* m(l,t) = Σ_{i=1..t} C(l,i)(B−1)^i, in float so absurd parameters
   saturate instead of overflowing. *)
let monomial_count_estimate ~(l : int) ~(b : int) ~(t : int) : float =
  let bf = float_of_int (Stdlib.max 0 (b - 1)) in
  let total = ref 0. in
  let c = ref 1. in
  for i = 1 to Stdlib.min t l do
    c := !c *. float_of_int (l - i + 1) /. float_of_int i;
    total := !total +. (!c *. (bf ** float_of_int i))
  done;
  !total

let guard (what : string) (f : unit -> 'a) : 'a =
  try f () with
  | Invalid_argument msg | Failure msg -> W.fail "%s: %s" what msg
  | Division_by_zero -> W.fail "%s: division by zero" what

(* --- primitive codecs ------------------------------------------------------ *)

let put_z (s : W.sink) (z : Z.t) : unit =
  W.put_u8 s (match Z.sign z with -1 -> 2 | 0 -> 0 | _ -> 1);
  W.put_bytes s (Z.to_bytes_be z)

let get_z (s : W.source) : Z.t =
  let sign = W.get_u8 s in
  let mag = Z.of_bytes_be (W.get_bytes s) in
  match sign with
  | 0 -> Z.zero
  | 1 -> mag
  | 2 -> Z.neg mag
  | v -> W.fail "bad bigint sign %d" v

let put_point (s : W.sink) (p : Curve.point) : unit =
  match p with
  | Curve.Infinity -> W.put_u8 s 0
  | Curve.Affine (x, y) ->
    W.put_u8 s 1;
    put_z s x;
    put_z s y

let get_point (s : W.source) : Curve.point =
  match W.get_u8 s with
  | 0 -> Curve.Infinity
  | 1 ->
    let x = get_z s in
    let y = get_z s in
    Curve.Affine (x, y)
  | v -> W.fail "bad point tag %d" v

let put_fp2 (s : W.sink) (v : Fp2.t) : unit =
  put_z s v.Fp2.re;
  put_z s v.Fp2.im

let get_fp2 (s : W.source) : Fp2.t =
  let re = get_z s in
  let im = get_z s in
  { Fp2.re; im }

let put_value (s : W.sink) (v : Value.t) : unit =
  match v with
  | Value.Int i ->
    W.put_u8 s 0;
    W.put_int s i
  | Value.Str str ->
    W.put_u8 s 1;
    W.put_bytes s str

let get_value (s : W.source) : Value.t =
  match W.get_u8 s with
  | 0 -> Value.Int (W.get_int s)
  | 1 -> Value.Str (W.get_bytes s)
  | v -> W.fail "bad value tag %d" v

(* --- BGN public key --------------------------------------------------------- *)

let put_bgn_pk (s : W.sink) (pk : Bgn.public_key) : unit =
  put_z s pk.Bgn.group.Pairing.n;
  put_point s pk.Bgn.g;
  put_point s pk.Bgn.h

let get_bgn_pk (s : W.source) : Bgn.public_key =
  let n = get_z s in
  let g = get_point s in
  let h = get_point s in
  if Z.sign n <= 0 || Z.is_even n then W.fail "bad BGN modulus (must be odd and positive)";
  if Z.num_bits n > !max_pk_bits then
    W.fail "BGN modulus of %d bits exceeds the %d-bit decode limit" (Z.num_bits n) !max_pk_bits;
  guard "bad BGN public key" (fun () ->
      let group = Pairing.make_group n in
      (* One precomputation of g serves both cached level-2 generators. *)
      let pre_g = Pairing.precompute group g in
      { Bgn.group;
        g;
        h;
        e_gg = Pairing.pairing_prod group [ (pre_g, g) ];
        e_gh = Pairing.pairing_prod group [ (pre_g, h) ] })

(* --- configuration and public parameters ------------------------------------- *)

let put_config (s : W.sink) (c : Config.t) : unit =
  W.put_int s c.Config.bucket_size;
  W.put_int s c.Config.max_group_attrs;
  W.put_list s (fun s v -> W.put_bytes s v) c.Config.value_columns;
  W.put_list s (fun s v -> W.put_bytes s v) c.Config.group_columns;
  W.put_list s (fun s v -> W.put_bytes s v) c.Config.filter_columns;
  W.put_list s (fun s v -> W.put_bytes s v) c.Config.range_filter_columns;
  W.put_int s c.Config.range_bits;
  W.put_int s c.Config.bgn_bits;
  W.put_int s c.Config.channel_bits;
  W.put_int s c.Config.value_bits

let get_config (s : W.source) : Config.t =
  let bucket_size = W.get_int s in
  let max_group_attrs = W.get_int s in
  let value_columns = W.get_list s W.get_bytes in
  let group_columns = W.get_list s W.get_bytes in
  let filter_columns = W.get_list s W.get_bytes in
  let range_filter_columns = W.get_list s W.get_bytes in
  let range_bits = W.get_int s in
  let bgn_bits = W.get_int s in
  let channel_bits = W.get_int s in
  let value_bits = W.get_int s in
  guard "bad config" (fun () ->
      Config.make ~bucket_size ~max_group_attrs ~filter_columns ~range_filter_columns ~range_bits
        ~bgn_bits ~channel_bits ~value_bits ~value_columns ~group_columns ())

let put_public_params (s : W.sink) (pp : Scheme.public_params) : unit =
  put_config s pp.Scheme.config;
  put_bgn_pk s pp.Scheme.bgn_pk;
  W.put_array s (fun s d -> W.put_int s d) pp.Scheme.channels.Crt.moduli;
  W.put_array s (fun s b -> W.put_int s b) pp.Scheme.num_buckets

let get_public_params (s : W.source) : Scheme.public_params =
  let config = get_config s in
  let bgn_pk = get_bgn_pk s in
  let moduli = W.get_array s W.get_int in
  let num_buckets = W.get_array s W.get_int in
  let l = Config.num_group_columns config in
  let b = config.Config.bucket_size in
  let t = config.Config.max_group_attrs in
  if monomial_count_estimate ~l ~b ~t > float_of_int monomial_budget then
    W.fail "monomial index m(%d,%d) with B=%d exceeds the decode budget" l t b;
  guard "bad public parameters" (fun () ->
      { Scheme.config;
        bgn_pk;
        channels = Crt.make moduli;
        monomials = Monomials.make ~num_columns:l ~bucket_size:b ~threshold:t;
        num_buckets })

(* --- encrypted rows, SSE index, encrypted table -------------------------------- *)

let put_enc_row (s : W.sink) (r : Scheme.enc_row) : unit =
  W.put_array s (fun s chs -> W.put_array s put_point chs) r.Scheme.values;
  put_point s r.Scheme.count_ct;
  W.put_array s put_point r.Scheme.monomial_cts

let get_enc_row (s : W.source) : Scheme.enc_row =
  let values = W.get_array s (fun s -> W.get_array s get_point) in
  let count_ct = get_point s in
  let monomial_cts = W.get_array s get_point in
  (* Precomputation caches are never on the wire: they are rebuilt
     lazily on first aggregation over the decoded table. *)
  { Scheme.values;
    count_ct;
    monomial_cts;
    pre_values = Array.map (fun chs -> Array.make (Array.length chs) None) values;
    pre_count = None }

let put_sse_index (s : W.sink) (i : Sse.index) : unit =
  W.put_u32 s i.Sse.entries;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) i.Sse.dict [] in
  (* Canonical order so equal indexes encode identically. *)
  W.put_list s
    (fun s (k, v) ->
      W.put_bytes s k;
      W.put_bytes s v)
    (List.sort compare entries)

let get_sse_index (s : W.source) : Sse.index =
  let entries = W.get_u32 s in
  let pairs =
    W.get_list s (fun s ->
        let k = W.get_bytes s in
        let v = W.get_bytes s in
        (k, v))
  in
  let dict = Hashtbl.create (2 * List.length pairs) in
  List.iter (fun (k, v) -> Hashtbl.replace dict k v) pairs;
  { Sse.dict; entries }

(* --- OXT components ------------------------------------------------------ *)

module Oxt = Sagma_sse.Oxt

let put_oxt_stag (s : W.sink) (st : Oxt.stag) : unit =
  W.put_bytes s st.Oxt.s_keyword_key;
  W.put_bytes s st.Oxt.s_mask_key

let get_oxt_stag (s : W.source) : Oxt.stag =
  let s_keyword_key = W.get_bytes s in
  let s_mask_key = W.get_bytes s in
  { Oxt.s_keyword_key; s_mask_key }

let put_oxt_index (s : W.sink) (i : Oxt.index) : unit =
  let tset = Hashtbl.fold (fun k v acc -> (k, v) :: acc) i.Oxt.tset [] in
  W.put_list s
    (fun s (label, entry) ->
      W.put_bytes s label;
      W.put_bytes s entry.Oxt.e;
      put_z s entry.Oxt.y)
    (List.sort compare tset);
  let xset = Hashtbl.fold (fun k () acc -> k :: acc) i.Oxt.xset [] in
  W.put_list s (fun s k -> W.put_bytes s k) (List.sort compare xset)

let get_oxt_index (s : W.source) : Oxt.index =
  let tset_entries =
    W.get_list s (fun s ->
        let label = W.get_bytes s in
        let e = W.get_bytes s in
        let y = get_z s in
        (label, { Oxt.e; y }))
  in
  let xset_keys = W.get_list s W.get_bytes in
  let tset = Hashtbl.create (2 * List.length tset_entries) in
  List.iter (fun (k, v) -> Hashtbl.replace tset k v) tset_entries;
  let xset = Hashtbl.create (2 * List.length xset_keys) in
  List.iter (fun k -> Hashtbl.replace xset k ()) xset_keys;
  { Oxt.tset; xset }

let put_enc_table (s : W.sink) (t : Scheme.enc_table) : unit =
  put_public_params s t.Scheme.pp;
  W.put_array s put_enc_row t.Scheme.rows;
  put_sse_index s t.Scheme.index;
  W.put_u8 s (match t.Scheme.count_mode with Scheme.Count_level1 -> 0 | Scheme.Count_paired -> 1);
  W.put_u8 s
    (match t.Scheme.index_mode with
     | Scheme.Per_attribute -> 0
     | Scheme.Joint -> 1
     | Scheme.Oxt_conjunctive -> 2);
  W.put_option s put_oxt_index t.Scheme.oxt_index

let get_enc_table (s : W.source) : Scheme.enc_table =
  let pp = get_public_params s in
  let rows = W.get_array s get_enc_row in
  let index = get_sse_index s in
  let count_mode =
    match W.get_u8 s with
    | 0 -> Scheme.Count_level1
    | 1 -> Scheme.Count_paired
    | v -> W.fail "bad count mode %d" v
  in
  let index_mode =
    match W.get_u8 s with
    | 0 -> Scheme.Per_attribute
    | 1 -> Scheme.Joint
    | 2 -> Scheme.Oxt_conjunctive
    | v -> W.fail "bad index mode %d" v
  in
  let oxt_index = W.get_option s get_oxt_index in
  { Scheme.pp; rows; index; oxt_index; count_mode; index_mode }

(* --- tokens ---------------------------------------------------------------------- *)

let put_sse_token (s : W.sink) (t : Sse.token) : unit =
  W.put_bytes s t.Sse.t_label;
  W.put_bytes s t.Sse.t_mask

let get_sse_token (s : W.source) : Sse.token =
  let t_label = W.get_bytes s in
  let t_mask = W.get_bytes s in
  { Sse.t_label; t_mask }

let put_token (s : W.sink) (t : Scheme.token) : unit =
  W.put_option s (fun s v -> W.put_int s v) t.Scheme.value_column;
  W.put_array s (fun s v -> W.put_int s v) t.Scheme.group_columns;
  (match t.Scheme.source with
   | Scheme.Per_attribute_tokens per ->
     W.put_u8 s 0;
     W.put_array s (fun s per_bucket -> W.put_array s put_sse_token per_bucket) per
   | Scheme.Joint_tokens entries ->
     W.put_u8 s 1;
     W.put_array s
       (fun s (buckets, tok) ->
         W.put_array s (fun s b -> W.put_int s b) buckets;
         put_sse_token s tok)
       entries
   | Scheme.Oxt_tokens entries ->
     W.put_u8 s 2;
     W.put_array s
       (fun s (buckets, st, xtoks) ->
         W.put_array s (fun s b -> W.put_int s b) buckets;
         put_oxt_stag s st;
         W.put_array s (fun s row -> W.put_array s put_point row) xtoks)
       entries);
  W.put_list s put_sse_token t.Scheme.filter_tokens;
  W.put_list s (fun s g -> W.put_list s put_sse_token g) t.Scheme.range_token_groups;
  W.put_array s (fun s v -> W.put_int s v) t.Scheme.t_num_buckets

let get_token (s : W.source) : Scheme.token =
  let value_column = W.get_option s W.get_int in
  let group_columns = W.get_array s W.get_int in
  let source =
    match W.get_u8 s with
    | 0 -> Scheme.Per_attribute_tokens (W.get_array s (fun s -> W.get_array s get_sse_token))
    | 1 ->
      Scheme.Joint_tokens
        (W.get_array s (fun s ->
             let buckets = W.get_array s W.get_int in
             let tok = get_sse_token s in
             (buckets, tok)))
    | 2 ->
      Scheme.Oxt_tokens
        (W.get_array s (fun s ->
             let buckets = W.get_array s W.get_int in
             let st = get_oxt_stag s in
             let xtoks = W.get_array s (fun s -> W.get_array s get_point) in
             (buckets, st, xtoks)))
    | v -> W.fail "bad bucket source tag %d" v
  in
  let filter_tokens = W.get_list s get_sse_token in
  let range_token_groups = W.get_list s (fun s -> W.get_list s get_sse_token) in
  let t_num_buckets = W.get_array s W.get_int in
  { Scheme.value_column; group_columns; source; filter_tokens; range_token_groups; t_num_buckets }

(* --- aggregates -------------------------------------------------------------------- *)

let put_block_aggregates (s : W.sink) (b : Scheme.block_aggregates) : unit =
  W.put_option s (fun s sums -> W.put_array s (fun s chs -> W.put_array s put_fp2 chs) sums)
    b.Scheme.sums;
  W.put_option s (fun s c -> W.put_array s put_point c) b.Scheme.counts_l1;
  W.put_option s (fun s c -> W.put_array s put_fp2 c) b.Scheme.counts_l2

let get_block_aggregates (s : W.source) : Scheme.block_aggregates =
  let sums = W.get_option s (fun s -> W.get_array s (fun s -> W.get_array s get_fp2)) in
  let counts_l1 = W.get_option s (fun s -> W.get_array s get_point) in
  let counts_l2 = W.get_option s (fun s -> W.get_array s get_fp2) in
  { Scheme.sums; counts_l1; counts_l2 }

let put_bucket_aggregate (s : W.sink) (b : Scheme.bucket_aggregate) : unit =
  W.put_array s (fun s v -> W.put_int s v) b.Scheme.bucket_ids;
  W.put_int s b.Scheme.group_size;
  put_block_aggregates s b.Scheme.blocks

let get_bucket_aggregate (s : W.source) : Scheme.bucket_aggregate =
  let bucket_ids = W.get_array s W.get_int in
  let group_size = W.get_int s in
  let blocks = get_block_aggregates s in
  { Scheme.bucket_ids; group_size; blocks }

let put_agg_result (s : W.sink) (a : Scheme.agg_result) : unit =
  W.put_list s put_bucket_aggregate a.Scheme.buckets;
  W.put_int s a.Scheme.touched_rows

let get_agg_result (s : W.source) : Scheme.agg_result =
  let buckets = W.get_list s get_bucket_aggregate in
  let touched_rows = W.get_int s in
  { Scheme.buckets; touched_rows }

let put_result_row (s : W.sink) (r : Scheme.result_row) : unit =
  W.put_list s put_value r.Scheme.group;
  W.put_int s r.Scheme.sum;
  W.put_int s r.Scheme.count

let get_result_row (s : W.source) : Scheme.result_row =
  let group = W.get_list s get_value in
  let sum = W.get_int s in
  let count = W.get_int s in
  { Scheme.group; sum; count }

(* --- secret client state -------------------------------------------------------------

   Contains the BGN factorization, the SSE key and the secret mappings:
   treat the output like a private key file. *)

let put_client (s : W.sink) (c : Scheme.client) : unit =
  put_public_params s c.Scheme.pp;
  put_z s c.Scheme.kp.Bgn.sk.Bgn.q1;
  put_z s c.Scheme.kp.Bgn.sk.Bgn.q2;
  W.put_bytes s c.Scheme.sse_key;
  W.put_bytes s c.Scheme.oxt_key.Oxt.k_t;
  W.put_bytes s c.Scheme.oxt_key.Oxt.k_x;
  W.put_bytes s c.Scheme.oxt_key.Oxt.k_i;
  W.put_bytes s c.Scheme.oxt_key.Oxt.k_z;
  W.put_array s (fun s m -> W.put_list s put_value (Mapping.domain m)) c.Scheme.mappings

(* [get_client data ~drbg] restores a client; [drbg] supplies fresh
   randomness for future encryptions (the stream position of the original
   DRBG is deliberately not persisted). *)
let get_client ~(drbg : Drbg.t) (s : W.source) : Scheme.client =
  let pp = get_public_params s in
  let q1 = get_z s in
  let q2 = get_z s in
  let sse_key = W.get_bytes s in
  let k_t = W.get_bytes s in
  let k_x = W.get_bytes s in
  let k_i = W.get_bytes s in
  let k_z = W.get_bytes s in
  let orders = W.get_array s (fun s -> W.get_list s get_value) in
  let mappings =
    guard "bad mapping" (fun () ->
        Array.map (Mapping.of_order ~bucket_size:pp.Scheme.config.Config.bucket_size) orders)
  in
  { Scheme.pp;
    kp = { Bgn.pk = pp.Scheme.bgn_pk; sk = { Bgn.q1; q2 } };
    sse_key;
    oxt_key = { Oxt.k_t; k_x; k_i; k_z };
    mappings;
    drbg;
    dec1_tables = [];
    dec2_tables = [] }

(* --- convenience whole-value entry points ----------------------------------------------- *)

let enc_table_to_string (t : Scheme.enc_table) : string = W.encode put_enc_table t
let enc_table_of_string (s : string) : Scheme.enc_table = W.decode get_enc_table s
let token_to_string (t : Scheme.token) : string = W.encode put_token t
let token_of_string (s : string) : Scheme.token = W.decode get_token s
let agg_result_to_string (a : Scheme.agg_result) : string = W.encode put_agg_result a
let agg_result_of_string (s : string) : Scheme.agg_result = W.decode get_agg_result s
let client_to_string (c : Scheme.client) : string = W.encode put_client c
let client_of_string ~drbg (s : string) : Scheme.client = W.decode (get_client ~drbg) s

(* Shift polynomials over Z_n (§3.3–§3.4).

   The server derives each row's shift by evaluating a polynomial with
   public coefficients over the row's encrypted monomials. Two flavours:

   - Unit-shift (indicator) polynomials: I_j(x) = 1 iff x = j on the grid
     {0, …, B−1} — the form the paper's evaluation uses ("B polynomials
     are required to evaluate the shifts", §6.1), because it keeps the
     exponents that reach BGN's discrete-log decryption tiny.

   - Packed shift polynomial: P(x) = |D_V|^x on the grid — the textbook
     §3.3 form, usable with Paillier-style direct decryption and kept as
     an ablation.

   All arithmetic is mod n = q₁q₂. Lagrange denominators are products of
   integers < B ≪ q₁, hence invertible. *)

module Z = Sagma_bigint.Bigint

(* Coefficients of Π_{k ∈ ks} (X − k) mod n, lowest degree first. *)
let expand_roots ~(n : Z.t) (ks : int list) : Z.t array =
  let coeffs = ref [| Z.one |] in
  List.iter
    (fun k ->
      let old = !coeffs in
      let deg = Array.length old in
      let next = Array.make (deg + 1) Z.zero in
      Array.iteri
        (fun i c ->
          (* multiply by X: degree i -> i+1 *)
          next.(i + 1) <- Z.addm next.(i + 1) c n;
          (* multiply by -k *)
          next.(i) <- Z.erem (Z.sub next.(i) (Z.mul_int c k)) n)
        old;
      coeffs := next)
    ks;
  !coeffs

(* Horner evaluation mod n (used by tests as an oracle). *)
let eval ~(n : Z.t) (coeffs : Z.t array) (x : int) : Z.t =
  let acc = ref Z.zero in
  for i = Array.length coeffs - 1 downto 0 do
    acc := Z.erem (Z.add (Z.mul_int !acc x) coeffs.(i)) n
  done;
  !acc

(* Lagrange indicator for slot [j] on the grid {0..B-1}:
   I_j(X) = Π_{k≠j} (X−k)/(j−k); coefficient array of length B. *)
let indicator ~(n : Z.t) ~(bucket_size : int) (j : int) : Z.t array =
  if j < 0 || j >= bucket_size then invalid_arg "Polynomial.indicator: slot out of range";
  let others = List.filter (fun k -> k <> j) (List.init bucket_size (fun i -> i)) in
  let numerator = expand_roots ~n others in
  let denom =
    List.fold_left (fun acc k -> Z.erem (Z.mul_int acc (j - k)) n) Z.one others
  in
  let inv = Z.invm_exn denom n in
  Array.map (fun c -> Z.mulm c inv n) numerator

(* Interpolation through arbitrary grid targets: P(x) = targets.(x) for
   x ∈ {0..B−1} — Σ_j targets(j) · I_j. *)
let interpolate ~(n : Z.t) (targets : Z.t array) : Z.t array =
  let bucket_size = Array.length targets in
  if bucket_size = 0 then invalid_arg "Polynomial.interpolate: empty";
  let acc = Array.make bucket_size Z.zero in
  Array.iteri
    (fun j target ->
      let ind = indicator ~n ~bucket_size j in
      Array.iteri (fun i c -> acc.(i) <- Z.addm acc.(i) (Z.mulm c target n) n) ind)
    targets;
  acc

(* The §3.3 packed shift polynomial: P(x) = 2^(value_bits·x). *)
let packed_shift ~(n : Z.t) ~(bucket_size : int) ~(value_bits : int) : Z.t array =
  interpolate ~n
    (Array.init bucket_size (fun j -> Z.erem (Z.shift_left Z.one (value_bits * j)) n))

(* --- multivariate indicators ---------------------------------------------

   For a query over q attributes and block vector j = (j_1..j_q), the
   joint indicator is the product of univariate ones:

       I_j(x_1..x_q) = Π_c I_{j_c}(x_c)

   expanded into the monomial basis {x_1^{e_1}···x_q^{e_q}} with
   0 ≤ e_c < B. The exponent vector [e] indexes the stored monomials. *)

type term = { exponents : int array; coeff : Z.t }
(* [exponents] is parallel to the query's attribute list. *)

let multivariate_indicator ~(n : Z.t) ~(bucket_size : int) (j : int array) : term list =
  let q = Array.length j in
  if q = 0 then invalid_arg "Polynomial.multivariate_indicator: no attributes";
  let unis = Array.map (fun jc -> indicator ~n ~bucket_size jc) j in
  (* Cartesian product over per-attribute degrees. *)
  let rec go c exponents coeff acc =
    if c = q then { exponents = Array.of_list (List.rev exponents); coeff } :: acc
    else begin
      let acc = ref acc in
      Array.iteri
        (fun e uc ->
          if not (Z.is_zero uc) then
            acc := go (c + 1) (e :: exponents) (Z.mulm coeff uc n) !acc)
        unis.(c);
      !acc
    end
  in
  go 0 [] Z.one []

(* Oracle evaluation of a term list (tests). *)
let eval_terms ~(n : Z.t) (terms : term list) (xs : int array) : Z.t =
  List.fold_left
    (fun acc { exponents; coeff } ->
      let m = ref Z.one in
      Array.iteri (fun c e -> m := Z.erem (Z.mul !m (Z.pow (Z.of_int xs.(c)) e)) n) exponents;
      Z.addm acc (Z.mulm coeff !m n) n)
    Z.zero terms

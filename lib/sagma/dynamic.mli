(** Dynamically shifted bucketization for a single grouping attribute
    (§3.3), with packed shift polynomials.

    One pairing per row per CRT channel (instead of B with unit shifts),
    at the price of a (d−1)²-range discrete log per channel and a CRT
    capacity of B·value_bits bits. Kept as the §3.3 construction and the
    packed-vs-unit ablation. COUNT aggregates the per-channel packed
    shifts at level 1 ("count aggregates the shifts", §6). *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Drbg = Sagma_crypto.Drbg
module Bgn = Sagma_bgn.Bgn
module Crt = Sagma_bgn.Crt_channels

type client = {
  kp : Bgn.keypair;
  mapping : Mapping.t;
  channels : Crt.t;
  bucket_size : int;
  value_bits : int;
  shift_polys : Z.t array array;
      (** per channel: coefficients with targets 2^(value_bits·j) mod d *)
  drbg : Drbg.t;
}

val setup :
  ?bgn_bits:int ->
  ?value_bits:int ->
  ?channel_bits:int ->
  ?mapping_strategy:Mapping.strategy ->
  bucket_size:int ->
  domain:Value.t list ->
  Drbg.t ->
  client

val shift_value : client -> Value.t -> Z.t
(** s(g) = |D_V|^(f(g) mod B) — Table 3's E_Gender contents. *)

val int_pow : int -> int -> int

type enc_row = {
  value_cts : Bgn.c1 array;
  monomial_cts : Bgn.c1 array;  (** Enc(xᵉ), e = 1..B−1 *)
  bucket : int;
}

val enc_row : client -> value:int -> group:Value.t -> enc_row

val shift_ct : client -> enc_row -> int -> Bgn.c1
(** Server-side: the encrypted per-channel shift, from the packed
    polynomial over the monomials. *)

type bucket_aggregate = {
  agg_bucket : int;
  sum_cts : Bgn.c2 array;
  count_cts : Bgn.c1 array;
  agg_rows : int;
}

val aggregate : client -> enc_row list -> bucket_aggregate list

type result_row = { group : Value.t; sum : int; count : int }

val decrypt : client -> bucket_aggregate list -> total_rows:int -> result_row list

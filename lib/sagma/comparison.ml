(* Table 11: qualitative comparison of related work. *)

type security = None_ | Partial | Full

type scheme_row = {
  name : string;
  aggregation : bool;           (* server-side aggregation *)
  grouping : bool;              (* server-side grouping *)
  security : security;          (* ○ / ◐ / ● in the paper *)
  proof : bool;                 (* formal security proof *)
  multiple_attributes : bool;   (* GROUP BY over attribute combinations *)
}

let rows : scheme_row list =
  [ { name = "Bucketization [17]"; aggregation = false; grouping = true;
      security = Partial; proof = false; multiple_attributes = false };
    { name = "CryptDB [26]"; aggregation = true; grouping = true;
      security = None_; proof = false; multiple_attributes = true };
    { name = "Seabed [25]"; aggregation = true; grouping = true;
      security = Partial; proof = true; multiple_attributes = false };
    { name = "SAGMA w/o buckets (§3.1)"; aggregation = true; grouping = true;
      security = Full; proof = true; multiple_attributes = false };
    { name = "SAGMA"; aggregation = true; grouping = true;
      security = Partial; proof = true; multiple_attributes = true } ]

let security_glyph = function None_ -> "O" | Partial -> "(*)" | Full -> "(#)"

let bool_glyph b = if b then "yes" else "no"

let render () : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %-12s %-9s %-9s %-6s %s\n" "Scheme" "Aggregation" "Grouping"
       "Security" "Proof" "Multi-attr");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %-12s %-9s %-9s %-6s %s\n" r.name (bool_glyph r.aggregation)
           (bool_glyph r.grouping) (security_glyph r.security) (bool_glyph r.proof)
           (bool_glyph r.multiple_attributes)))
    rows;
  Buffer.contents buf

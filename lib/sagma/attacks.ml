(* Leakage-abuse attacks, executable.

   The paper's security motivation (§1, §2) is that deterministic
   encryption's frequency leakage enables "simple, yet detrimental
   leakage-abuse attacks" (Naveed, Kamara, Wright — CCS'15). This module
   implements the frequency-analysis attacker and runs it against the
   leakage each scheme actually produces:

   - CryptDB: the deterministic group column leaks the exact histogram →
     the attacker matches ciphertext frequencies against an auxiliary
     plaintext distribution.
   - SAGMA: only bucket-level frequencies leak; the attacker can at best
     identify a bucket, then guess uniformly inside it — and dummy rows
     remove even the bucket signal.

   Tests and the `ablation:attack` bench report the recovery rates. *)

module Value = Sagma_db.Value

type auxiliary = (Value.t * int) list
(* The attacker's auxiliary knowledge: the (approximate) plaintext
   distribution, e.g. census data in Naveed et al.'s setting. *)

(* Frequency matching: sort observed ciphertext tags and auxiliary values
   by frequency and align them (the optimal attack when all frequencies
   are distinct). Returns tag -> guessed value. *)
let frequency_match (observed : (string * int) list) (aux : auxiliary) :
    (string * Value.t) list =
  let by_freq_desc cmp_tie a b =
    let c = compare (snd b) (snd a) in
    if c <> 0 then c else cmp_tie (fst a) (fst b)
  in
  let obs = List.sort (by_freq_desc compare) observed in
  let aux = List.sort (by_freq_desc Value.compare) aux in
  List.filteri (fun i _ -> i < List.length aux) obs
  |> List.mapi (fun i (tag, _) -> (tag, fst (List.nth aux i)))

(* Recovery rate of a guessed assignment against the truth, weighted by
   row frequency (the metric Naveed et al. report). *)
let recovery_rate ~(truth : (string * Value.t) list) ~(freqs : (string * int) list)
    (guess : (string * Value.t) list) : float =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 freqs in
  if total = 0 then 0.
  else begin
    let correct =
      List.fold_left
        (fun acc (tag, v) ->
          match (List.assoc_opt tag truth, List.assoc_opt tag freqs) with
          | Some tv, Some c when Value.equal tv v -> acc + c
          | _ -> acc)
        0 guess
    in
    float_of_int correct /. float_of_int total
  end

(* --- attacking CryptDB's deterministic column ----------------------------- *)

(* The adversary reads the histogram straight off the ciphertexts
   (Cryptdb.leaked_histogram) and frequency-matches. [truth] maps the
   deterministic tag to its plaintext, for scoring only. *)
let attack_cryptdb ~(leaked : (string * int) list) ~(aux : auxiliary)
    ~(truth : (string * Value.t) list) : float =
  recovery_rate ~truth ~freqs:leaked (frequency_match leaked aux)

(* --- attacking SAGMA's bucket leakage -------------------------------------- *)

(* Against SAGMA the adversary sees only bucket access-pattern sizes. The
   strongest move: frequency-match *buckets* against all candidate bucket
   partitions of the auxiliary distribution, then guess uniformly within
   the matched bucket. We give the attacker the true partition structure
   (best case for the attack): expected recovery is

       Σ_buckets (bucket rows) · [bucket identifiable] / (B · total)

   computed here empirically by matching bucket frequencies. *)
let attack_sagma_buckets (m : Mapping.t) ~(histogram : (Value.t * int) list) : float =
  let freqs = Bucketing.bucket_frequencies m histogram in
  let total = Array.fold_left ( + ) 0 freqs in
  if total = 0 then 0.
  else begin
    let rate = ref 0. in
    Array.iteri
      (fun b f ->
        let same = Array.fold_left (fun acc g -> if g = f then acc + 1 else acc) 0 freqs in
        let members = List.length (Mapping.bucket_members m b) in
        if members > 0 then
          (* Identify the bucket with probability 1/same, then guess the
             most frequent member value inside it. *)
          let best_member =
            List.fold_left
              (fun acc v ->
                let c = Option.value (List.assoc_opt v histogram) ~default:0 in
                max acc c)
              0 (Mapping.bucket_members m b)
          in
          rate := !rate +. (float_of_int best_member /. float_of_int same))
      freqs;
    !rate /. float_of_int total
  end

(* Blind-guess baseline: always answer the auxiliary mode. *)
let baseline_guess (aux : auxiliary) ~(histogram : (Value.t * int) list) : float =
  match List.sort (fun (_, a) (_, b) -> compare b a) aux with
  | [] -> 0.
  | (mode, _) :: _ ->
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 histogram in
    let hit = Option.value (List.assoc_opt mode histogram) ~default:0 in
    if total = 0 then 0. else float_of_int hit /. float_of_int total

(** Table 11: qualitative comparison of related work. *)

type security = None_ | Partial | Full

type scheme_row = {
  name : string;
  aggregation : bool;
  grouping : bool;
  security : security;
  proof : bool;
  multiple_attributes : bool;
}

val rows : scheme_row list
val security_glyph : security -> string
val bool_glyph : bool -> string
val render : unit -> string

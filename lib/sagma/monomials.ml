(* The stored-monomial index (§3.4, §4.1).

   EncRow stores one BGN ciphertext per monomial x_1^{e_1}···x_l^{e_l}
   with exponent vector e ∈ {0..B−1}^l, e ≠ 0, and |support(e)| ≤ t.
   Monomial reuse (Figure 2) is exactly this: a query over attributes Q
   only touches exponent vectors supported inside Q, and those same
   vectors serve every superset query.

   The count is m(l,t) = Σ_{i=1..t} C(l,i)·(B−1)^i (§4.1, Table 9). *)

type t = {
  num_columns : int;                       (* l *)
  bucket_size : int;                       (* B *)
  threshold : int;                         (* t *)
  vectors : int array array;               (* storage order *)
  index : (string, int) Hashtbl.t;         (* exponent vector -> position *)
}

let key_of (e : int array) : string =
  String.concat "," (Array.to_list (Array.map string_of_int e))

(* Enumerate exponent vectors with nonzero entries in [1, B−1] and support
   size in [1, t], in a deterministic order. *)
let enumerate ~(num_columns : int) ~(bucket_size : int) ~(threshold : int) : int array array =
  let out = ref [] in
  (* choose support subsets by recursion over columns *)
  let rec go col support_size current =
    if col = num_columns then begin
      if support_size > 0 then out := Array.of_list (List.rev current) :: !out
    end
    else begin
      (* zero exponent at this column *)
      go (col + 1) support_size (0 :: current);
      if support_size < threshold then
        for e = 1 to bucket_size - 1 do
          go (col + 1) (support_size + 1) (e :: current)
        done
    end
  in
  go 0 0 [];
  Array.of_list (List.rev !out)

let make ~(num_columns : int) ~(bucket_size : int) ~(threshold : int) : t =
  let vectors = enumerate ~num_columns ~bucket_size ~threshold in
  let index = Hashtbl.create (2 * Array.length vectors) in
  Array.iteri (fun i e -> Hashtbl.add index (key_of e) i) vectors;
  { num_columns; bucket_size; threshold; vectors; index }

let count (t : t) : int = Array.length t.vectors

(* Closed form m(l,t) = Σ C(l,i)·(B−1)^i (§4.1). *)
let count_formula ~(num_columns : int) ~(bucket_size : int) ~(threshold : int) : int =
  let choose n k =
    if k < 0 || k > n then 0
    else begin
      let acc = ref 1 in
      for i = 0 to k - 1 do
        acc := !acc * (n - i) / (i + 1)
      done;
      !acc
    end
  in
  let rec sum i acc =
    if i > threshold then acc
    else begin
      let pow = int_of_float (float_of_int (bucket_size - 1) ** float_of_int i) in
      sum (i + 1) (acc + (choose num_columns i * pow))
    end
  in
  sum 1 0

(* The naïve scheme's count (§4.1): apply the single-combination scheme to
   every subset of size ≤ t — no reuse across subsets. *)
let count_naive ~(num_columns : int) ~(bucket_size : int) ~(threshold : int) : int =
  let choose n k =
    if k < 0 || k > n then 0
    else begin
      let acc = ref 1 in
      for i = 0 to k - 1 do
        acc := !acc * (n - i) / (i + 1)
      done;
      !acc
    end
  in
  let rec sum i acc =
    if i > threshold then acc
    else begin
      let bt = int_of_float (float_of_int bucket_size ** float_of_int i) in
      sum (i + 1) (acc + (choose num_columns i * (bt - 1)))
    end
  in
  sum 1 0

(* Position of an exponent vector in storage order. *)
let position (t : t) (e : int array) : int =
  match Hashtbl.find_opt t.index (key_of e) with
  | Some i -> i
  | None -> invalid_arg ("Monomials.position: unsupported exponent vector " ^ key_of e)

let vector (t : t) (i : int) : int array = t.vectors.(i)

(* Plaintext value of monomial [e] on bucketized group offsets [xs]
   (length l). Computed mod nothing — callers reduce. *)
let eval_monomial (e : int array) (xs : int array) : Sagma_bigint.Bigint.t =
  let module Z = Sagma_bigint.Bigint in
  let acc = ref Z.one in
  Array.iteri (fun c exp -> if exp > 0 then acc := Z.mul !acc (Z.pow (Z.of_int xs.(c)) exp)) e;
  !acc

(* Lift a query-local exponent vector (parallel to the queried columns) to
   the full-width vector over all l columns. *)
let lift_exponents (t : t) ~(query_columns : int array) (local : int array) : int array =
  let full = Array.make t.num_columns 0 in
  Array.iteri (fun c e -> full.(query_columns.(c)) <- e) local;
  full

(* The full SAGMA construction (§3.4, Algorithms 1–6).

   Client-side state: a BGN keypair, an SSE key and one secret mapping per
   group column. Server-side state: per row, BGN level-1 encryptions of
   (a) each value column split into CRT residue channels, (b) a hidden
   count column fixed to 1 (0 for dummy rows) and (c) the monomials of the
   bucketized group offsets; plus an SSE index over bucket identifiers and
   filter keywords.

   Query processing (AggGrpBy): the server locates each queried bucket's
   rows through SSE, intersects them into joint buckets, derives every
   row's unit-shift indicator values S_r^{(j)} by evaluating public
   Lagrange coefficients over the encrypted monomials (additive
   homomorphism only), and pairs them with the value/count ciphertexts —
   the scheme's single ciphertext multiplication — before summing in the
   target group. The client decrypts each aggregate with a bounded
   discrete log and recombines CRT channels.

   The server never sees a group value, only bucket identifiers: the
   leakage is exactly L of §4.2. *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module Bgn = Sagma_bgn.Bgn
module Crt = Sagma_bgn.Crt_channels
module Sse = Sagma_sse.Sse
module Oxt = Sagma_sse.Oxt
module Curve = Sagma_pairing.Curve
module Obs = Sagma_obs.Metrics
module Trace = Sagma_obs.Trace
module Audit = Sagma_obs.Audit
module Pool = Sagma_pool.Pool

(* Scheme-level observability: row/bucket volumes plus per-chunk wall
   clock for the parallel accumulation path (chunks run on spawned
   domains, where spans are off-limits). *)
let m_enc_rows = Obs.counter "scheme.enc.rows"
let m_agg_rows = Obs.counter "scheme.agg.rows"
let m_agg_buckets = Obs.counter "scheme.agg.joint_buckets"
let m_precomp_hits = Obs.counter "pairing.precomp_hits"
let h_chunk_ms = Obs.histogram "scheme.agg.chunk_ms"

(* --- public parameters and keys (Algorithm 1: Setup) -------------------- *)

(* Shared OXT group parameters: public, deterministic, independent of any
   key. Lazy so the underlying prime search runs only when the OXT index
   mode is actually used. *)
let oxt_params_lazy = lazy (Oxt.make_params ())
let oxt_params () = Lazy.force oxt_params_lazy

type public_params = {
  config : Config.t;
  bgn_pk : Bgn.public_key;
  channels : Crt.t;
  monomials : Monomials.t;
  num_buckets : int array;  (* s_i = ⌈|D_i| / B⌉ per group column *)
}

type client = {
  pp : public_params;
  kp : Bgn.keypair;
  sse_key : Sse.key;
  oxt_key : Oxt.key;            (* for the Oxt_conjunctive index mode *)
  mappings : Mapping.t array;   (* f_i, one per group column *)
  drbg : Drbg.t;
  (* decryption tables, lazily built and reused across queries *)
  mutable dec1_tables : (int * Bgn.dec1_table) list;
  mutable dec2_tables : (int * Bgn.dec2_table) list;
}

(* [setup config ~domains drbg] runs Algorithm 1. [domains] must cover
   every group column with its full value domain. [mapping_strategy] keys
   the §5 bucket-partitioning choice. *)
let setup ?(mapping_strategy = fun (_ : string) -> Mapping.Prf_random) (config : Config.t)
    ~(domains : (string * Value.t list) list) (drbg : Drbg.t) : client =
  let kp = Bgn.keygen ~bits:config.Config.bgn_bits drbg in
  let sse_key = Sse.gen drbg in
  let master = Sagma_crypto.Prf.gen_key drbg in
  let mappings =
    Array.of_list
      (List.map
         (fun col ->
           let domain =
             match List.assoc_opt col domains with
             | Some d -> d
             | None -> invalid_arg (Printf.sprintf "Scheme.setup: no domain for group column %S" col)
           in
           let key = Sagma_crypto.Prf.derive master ~domain:("mapping:" ^ col) in
           Mapping.make (mapping_strategy col) key domain ~bucket_size:config.Config.bucket_size)
         config.Config.group_columns)
  in
  (* CRT capacity: a sum of up to 2^24 rows of value_bits-sized values. *)
  let channels =
    Crt.choose ~channel_bits:config.Config.channel_bits
      ~capacity_bits:(config.Config.value_bits + 24)
  in
  let monomials =
    Monomials.make
      ~num_columns:(Config.num_group_columns config)
      ~bucket_size:config.Config.bucket_size
      ~threshold:config.Config.max_group_attrs
  in
  let num_buckets = Array.map Mapping.num_buckets mappings in
  let oxt_key = Oxt.gen drbg in
  { pp = { config; bgn_pk = kp.Bgn.pk; channels; monomials; num_buckets };
    kp; sse_key; oxt_key; mappings; drbg; dec1_tables = []; dec2_tables = [] }

(* --- encrypted rows and tables (Algorithms 2–3) -------------------------- *)

type enc_row = {
  values : Bgn.c1 array array;  (* k × channels: Enc(v_j mod d_c) *)
  count_ct : Bgn.c1;            (* Enc(1); Enc(0) for dummy rows *)
  monomial_cts : Bgn.c1 array;  (* Enc(Π offsets^e) in storage order *)
  (* Pairing precomputation caches, one slot per value/count ciphertext,
     filled lazily on first use in [aggregate] and reused across blocks
     and queries. Never serialized: rebuilt after decoding (one Miller
     ladder each — cheaper than a single pairing). Updates from pool
     worker domains race benignly: slots only ever go None → Some of an
     immutable value, so the worst case is duplicated precomputation. *)
  pre_values : Bgn.precomp1 option array array;
  mutable pre_count : Bgn.precomp1 option;
}

type count_mode = Count_level1 | Count_paired
(* Level-1 counting aggregates the indicators directly (the paper's "count
   aggregates the shifts") — one curve addition per row, no pairing. It
   counts dummy rows too, so tables padded with dummies switch to paired
   counting against the hidden count column (dummies encrypt 0 there). *)

type index_mode = Per_attribute | Joint | Oxt_conjunctive
(* [Per_attribute] is the paper's Algorithm 2: one SSE keyword per
   (column, bucket); the server intersects posting lists, learning each
   queried attribute's bucket membership individually.

   [Joint] realizes §3.4's remark that "an SSE scheme that supports
   Boolean queries can be used to determine joint bucket membership
   without leaking the bucket membership of individual attributes": one
   keyword per (column subset of size ≤ t, joint bucket vector). A query
   then touches exactly its own combination's buckets and the server
   never sees per-attribute memberships — at a storage cost of
   Σ_{i≤t} C(l,i) postings per row instead of l.

   [Oxt_conjunctive] reaches the same goal with O(l) storage through the
   OXT Boolean-SSE protocol (Cash et al. [6]): bucket membership lives in
   an OXT TSet/XSet, joint membership is resolved by a cross-tag
   conjunction. Leakage sits between the other two modes: the s-term
   column's bucket access pattern plus which of its rows satisfy the
   conjunction. *)

type enc_table = {
  pp : public_params;
  rows : enc_row array;
  index : Sse.index;            (* Π_bas index: filters (+ buckets unless OXT) *)
  oxt_index : Oxt.index option; (* bucket membership in Oxt_conjunctive mode *)
  count_mode : count_mode;
  index_mode : index_mode;
}

(* Encrypt one row given its value-column entries and its group-column
   bucket offsets (Algorithm 3). *)
let enc_row_raw (c : client) ~(values : int array) ~(offsets : int array) ~(dummy : bool) : enc_row =
  let pp = c.pp in
  let pk = pp.bgn_pk in
  let enc_values =
    Array.map
      (fun v ->
        if v < 0 then invalid_arg "Scheme.enc_row: negative value";
        Array.map (fun r -> Bgn.enc1_int pk c.drbg r) (Crt.encode_int pp.channels v))
      values
  in
  let count_ct = Bgn.enc1_int pk c.drbg (if dummy then 0 else 1) in
  let monomial_cts =
    Array.map
      (fun e -> Bgn.enc1 pk c.drbg (Monomials.eval_monomial e offsets))
      pp.monomials.Monomials.vectors
  in
  { values = enc_values;
    count_ct;
    monomial_cts;
    pre_values = Array.map (fun chans -> Array.make (Array.length chans) None) enc_values;
    pre_count = None }

let bucket_keyword ~(column : int) ~(bucket : int) : string =
  Printf.sprintf "grp:%d:%d" column bucket

(* Joint-bucket keyword for a column subset and its bucket-id vector;
   canonicalized by column so query order does not matter. *)
let joint_keyword ~(columns : int array) ~(buckets : int array) : string =
  let pairs = Array.init (Array.length columns) (fun i -> (columns.(i), buckets.(i))) in
  Array.sort compare pairs;
  Printf.sprintf "jgrp:%s:%s"
    (String.concat "," (Array.to_list (Array.map (fun (c, _) -> string_of_int c) pairs)))
    (String.concat "," (Array.to_list (Array.map (fun (_, b) -> string_of_int b) pairs)))

(* Subsets of {0..l-1} of size in [1, t], each as a sorted int array. *)
let column_subsets ~(l : int) ~(t : int) : int array array =
  let out = ref [] in
  let rec go from current size =
    if size > 0 then
      for i = from to l - 1 do
        let current = i :: current in
        out := Array.of_list (List.rev current) :: !out;
        go (i + 1) current (size - 1)
      done
  in
  go 0 [] t;
  Array.of_list (List.rev !out)

let filter_keyword ~(column : string) (v : Value.t) : string =
  Printf.sprintf "flt:%s:%s" column (Value.encode v)

(* Dyadic-interval keyword for range filtering (Faber-et-al.-style cover
   over single-keyword SSE). *)
let range_keyword ~(column : string) (i : Sagma_sse.Dyadic.interval) : string =
  Printf.sprintf "rng:%s:%s" column (Sagma_sse.Dyadic.keyword_tag i)

(* [encrypt_table c table ~dummy_groups] runs Algorithm 2 over the
   plaintext [table] and appends one all-zero dummy row per entry of
   [dummy_groups] (each an array of group-column values, §5).
   [index_mode] selects per-attribute bucket keywords (Algorithm 2) or
   the joint-bucket index (see {!index_mode}). *)
let encrypt_table ?(dummy_groups : Value.t array list = []) ?(index_mode = Per_attribute)
    (c : client) (table : Table.t) : enc_table =
  let pp = c.pp in
  let config = pp.config in
  let value_idxs =
    Array.of_list (List.map (Table.column_index table) config.Config.value_columns)
  in
  let group_idxs =
    Array.of_list (List.map (Table.column_index table) config.Config.group_columns)
  in
  let real_rows = Array.of_list (Table.rows table) in
  let l = Config.num_group_columns config in
  (* Per-row group values: real rows read from the table, dummies from the
     caller-provided assignments. *)
  let group_values =
    Array.append
      (Array.map (fun row -> Array.map (fun i -> row.(i)) group_idxs) real_rows)
      (Array.of_list
         (List.map
            (fun g ->
              if Array.length g <> l then
                invalid_arg "Scheme.encrypt_table: dummy group arity mismatch";
              g)
            dummy_groups))
  in
  let num_real = Array.length real_rows in
  let total = Array.length group_values in
  let enc_rows =
    Array.init total (fun r ->
        let offsets = Array.mapi (fun i g -> Mapping.offset c.mappings.(i) g) group_values.(r) in
        let values =
          if r < num_real then
            Array.map (fun i -> Value.as_int real_rows.(r).(i)) value_idxs
          else Array.make (Array.length value_idxs) 0
        in
        enc_row_raw c ~values ~offsets ~dummy:(r >= num_real))
  in
  Obs.add m_enc_rows total;
  (* SSE postings: bucket membership for every group column (Algorithm 2)
     plus filter keywords for real rows. *)
  let postings : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let post kw id =
    match Hashtbl.find_opt postings kw with
    | Some l -> l := id :: !l
    | None -> Hashtbl.add postings kw (ref [ id ])
  in
  (match index_mode with
   | Per_attribute ->
     Array.iteri
       (fun r groups ->
         Array.iteri
           (fun i g -> post (bucket_keyword ~column:i ~bucket:(Mapping.bucket c.mappings.(i) g)) r)
           groups)
       group_values
   | Joint ->
     let subsets =
       column_subsets ~l:(Config.num_group_columns config) ~t:config.Config.max_group_attrs
     in
     Array.iteri
       (fun r groups ->
         Array.iter
           (fun columns ->
             let buckets =
               Array.map (fun i -> Mapping.bucket c.mappings.(i) groups.(i)) columns
             in
             post (joint_keyword ~columns ~buckets) r)
           subsets)
       group_values
   | Oxt_conjunctive ->
     (* Bucket membership lives in the OXT structures, built below. *)
     ());
  List.iteri
    (fun i col ->
      ignore i;
      let idx = Table.column_index table col in
      Array.iteri (fun r row -> post (filter_keyword ~column:col row.(idx)) r) real_rows)
    config.Config.filter_columns;
  (* Range-filter columns: post every value under its dyadic ancestors. *)
  List.iter
    (fun col ->
      let idx = Table.column_index table col in
      Array.iteri
        (fun r row ->
          let v = Value.as_int row.(idx) in
          List.iter
            (fun interval -> post (range_keyword ~column:col interval) r)
            (Sagma_sse.Dyadic.keywords_for_value ~depth:config.Config.range_bits v))
        real_rows)
    config.Config.range_filter_columns;
  let assoc = Hashtbl.fold (fun kw ids acc -> (kw, List.rev !ids) :: acc) postings [] in
  let index = Sse.build c.sse_key (List.sort compare assoc) in
  (* OXT mode: bucket keywords go into the TSet/XSet instead. *)
  let oxt_index =
    match index_mode with
    | Per_attribute | Joint -> None
    | Oxt_conjunctive ->
      let oxt_postings : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
      Array.iteri
        (fun r groups ->
          Array.iteri
            (fun i g ->
              let kw = bucket_keyword ~column:i ~bucket:(Mapping.bucket c.mappings.(i) g) in
              match Hashtbl.find_opt oxt_postings kw with
              | Some l -> l := r :: !l
              | None -> Hashtbl.add oxt_postings kw (ref [ r ]))
            groups)
        group_values;
      let oxt_assoc =
        Hashtbl.fold (fun kw ids acc -> (kw, List.rev !ids) :: acc) oxt_postings []
      in
      Some (Oxt.build (oxt_params ()) c.oxt_key (List.sort compare oxt_assoc))
  in
  { pp;
    rows = enc_rows;
    index;
    oxt_index;
    count_mode = (if dummy_groups = [] then Count_level1 else Count_paired);
    index_mode }

(* The grouping keywords a new row must be posted under, depending on the
   table's index mode. *)
let row_keywords (c : client) (index_mode : index_mode) (groups : Value.t array) : string list =
  let config = c.pp.config in
  match index_mode with
  | Per_attribute | Oxt_conjunctive ->
    Array.to_list
      (Array.mapi
         (fun i g -> bucket_keyword ~column:i ~bucket:(Mapping.bucket c.mappings.(i) g))
         groups)
  | Joint ->
    let subsets =
      column_subsets ~l:(Config.num_group_columns config) ~t:config.Config.max_group_attrs
    in
    Array.to_list
      (Array.map
         (fun columns ->
           let buckets = Array.map (fun i -> Mapping.bucket c.mappings.(i) groups.(i)) columns in
           joint_keyword ~columns ~buckets)
         subsets)

let filter_keywords (c : client) (filters : (string * Value.t) list) ~(caller : string) :
    string list =
  List.map
    (fun (col, v) ->
      if not (List.mem col c.pp.config.Config.filter_columns) then
        invalid_arg (Printf.sprintf "Scheme.%s: %S is not a filter column" caller col);
      filter_keyword ~column:col v)
    filters

let range_keywords (c : client) (range_values : (string * int) list) ~(caller : string) :
    string list =
  List.concat_map
    (fun (col, v) ->
      if not (List.mem col c.pp.config.Config.range_filter_columns) then
        invalid_arg (Printf.sprintf "Scheme.%s: %S is not a range filter column" caller col);
      List.map
        (fun interval -> range_keyword ~column:col interval)
        (Sagma_sse.Dyadic.keywords_for_value ~depth:c.pp.config.Config.range_bits v))
    range_values

let check_append_arity (c : client) ~(caller : string) (values : int array)
    (groups : Value.t array) : unit =
  let config = c.pp.config in
  if Array.length values <> Config.num_value_columns config then
    invalid_arg (Printf.sprintf "Scheme.%s: value arity mismatch" caller);
  if Array.length groups <> Config.num_group_columns config then
    invalid_arg (Printf.sprintf "Scheme.%s: group arity mismatch" caller)

(* Database updates (§3/§8: "this algorithm can be used for database
   updates after the initial table encryption if the bucket index I is
   updated correspondingly"): encrypt one new row and extend the SSE
   postings. The per-keyword counters are recovered by replaying the
   keyword search, which only uses key material the client holds. *)
let append_row ?(range_values : (string * int) list = []) (c : client) (et : enc_table)
    ~(values : int array) ~(groups : Value.t array) ~(filters : (string * Value.t) list) :
    enc_table =
  check_append_arity c ~caller:"append_row" values groups;
  let id = Array.length et.rows in
  let offsets = Array.mapi (fun i g -> Mapping.offset c.mappings.(i) g) groups in
  let row = enc_row_raw c ~values ~offsets ~dummy:false in
  let add_keyword index kw =
    let counter = List.length (Sse.search index (Sse.token c.sse_key kw)) in
    Sse.add c.sse_key index kw ~counter id
  in
  let aux_keywords =
    filter_keywords c filters ~caller:"append_row"
    @ range_keywords c range_values ~caller:"append_row"
  in
  match et.index_mode with
  | Per_attribute | Joint ->
    let index =
      List.fold_left add_keyword et.index (row_keywords c et.index_mode groups @ aux_keywords)
    in
    { et with rows = Array.append et.rows [| row |]; index }
  | Oxt_conjunctive ->
    (* Bucket keywords extend the OXT structures; filters stay in Π_bas. *)
    let params = oxt_params () in
    let oxt =
      List.fold_left
        (fun oxt kw ->
          let counter = Oxt.stag_count oxt (Oxt.stag c.oxt_key kw) in
          Oxt.add params c.oxt_key oxt kw ~counter id)
        (Option.get et.oxt_index)
        (row_keywords c et.index_mode groups)
    in
    let index = List.fold_left add_keyword et.index aux_keywords in
    { et with rows = Array.append et.rows [| row |]; index; oxt_index = Some oxt }

(* Client-side half of a *remote* append: the encrypted row plus the SSE
   tokens of its keywords. A server holding the encrypted table can
   derive the new postings from the tokens alone (Sse.add_with_token);
   see Sagma_protocol.Server. [index_mode] must match the remote table. *)
let append_payload ?(index_mode = Per_attribute) ?(range_values : (string * int) list = [])
    (c : client) ~(values : int array) ~(groups : Value.t array)
    ~(filters : (string * Value.t) list) : enc_row * Sse.token list =
  if index_mode = Oxt_conjunctive then
    invalid_arg
      "Scheme.append_payload: remote appends need secret OXT keys; append client-side instead";
  check_append_arity c ~caller:"append_payload" values groups;
  let offsets = Array.mapi (fun i g -> Mapping.offset c.mappings.(i) g) groups in
  let row = enc_row_raw c ~values ~offsets ~dummy:false in
  let keywords =
    row_keywords c index_mode groups
    @ filter_keywords c filters ~caller:"append_payload"
    @ range_keywords c range_values ~caller:"append_payload"
  in
  (row, List.map (Sse.token c.sse_key) keywords)

(* --- grouping tokens (Algorithm 4) --------------------------------------- *)

type bucket_source =
  | Per_attribute_tokens of Sse.token array array
      (* per queried column, one token per bucket; the server intersects *)
  | Joint_tokens of (int array * Sse.token) array
      (* one token per joint bucket-id vector; no intersection, and no
         per-attribute membership leaks *)
  | Oxt_tokens of (int array * Oxt.stag * Curve.point array array) array
      (* one OXT conjunction per joint bucket-id vector: the first
         queried column's bucket keyword is the s-term, the rest are
         resolved through cross-tags *)

type token = {
  value_column : int option;           (* index into config.value_columns *)
  group_columns : int array;           (* indices into config.group_columns *)
  source : bucket_source;
  filter_tokens : Sse.token list;      (* equality clauses: intersection *)
  range_token_groups : Sse.token list list;
  (* one group per BETWEEN clause: union within a group (its dyadic
     cover), intersection across groups and with filter_tokens *)
  t_num_buckets : int array;           (* s_q per queried column *)
}

(* [token c q] is Algorithm 4. [index_mode] must match the mode the table
   was encrypted with; [oxt_rows] (required in OXT mode) bounds the
   x-token rows by the table's public row count. *)
let token ?(index_mode = Per_attribute) ?(oxt_rows : int option) (c : client) (q : Query.t) :
    token =
  let config = c.pp.config in
  if List.length q.Query.group_by > config.Config.max_group_attrs then
    invalid_arg
      (Printf.sprintf "Scheme.token: %d grouping attributes exceed threshold t=%d"
         (List.length q.Query.group_by) config.Config.max_group_attrs);
  let group_columns =
    Array.of_list (List.map (Config.group_column_index config) q.Query.group_by)
  in
  let value_column =
    match Query.value_column q.Query.aggregate with
    | None -> None
    | Some col -> Some (Config.value_column_index config col)
  in
  let t_num_buckets = Array.map (fun col -> c.pp.num_buckets.(col)) group_columns in
  let source =
    match index_mode with
    | Per_attribute ->
      Per_attribute_tokens
        (Array.map
           (fun col ->
             let s = c.pp.num_buckets.(col) in
             Array.init s (fun b -> Sse.token c.sse_key (bucket_keyword ~column:col ~bucket:b)))
           group_columns)
    | Joint | Oxt_conjunctive -> begin
      (* One token per element of the cartesian product of the queried
         columns' buckets. *)
      let arity = Array.length group_columns in
      let total = Array.fold_left ( * ) 1 t_num_buckets in
      let decode idx =
        let buckets = Array.make arity 0 in
        let rem = ref idx in
        for i = arity - 1 downto 0 do
          buckets.(i) <- !rem mod t_num_buckets.(i);
          rem := !rem / t_num_buckets.(i)
        done;
        buckets
      in
      match index_mode with
      | Joint ->
        Joint_tokens
          (Array.init total (fun idx ->
               let buckets = decode idx in
               ( buckets,
                 Sse.token c.sse_key (joint_keyword ~columns:group_columns ~buckets) )))
      | Oxt_conjunctive ->
        let rows =
          match oxt_rows with
          | Some r -> r
          | None -> invalid_arg "Scheme.token: OXT mode needs ~oxt_rows (the table's row count)"
        in
        Oxt_tokens
          (Array.init total (fun idx ->
               let buckets = decode idx in
               let keywords =
                 Array.mapi
                   (fun i col -> bucket_keyword ~column:col ~bucket:buckets.(i))
                   group_columns
               in
               let s_term = keywords.(0) in
               let x_terms = Array.to_list (Array.sub keywords 1 (arity - 1)) in
               ( buckets,
                 Oxt.stag c.oxt_key s_term,
                 Oxt.xtokens (oxt_params ()) c.oxt_key ~s_term ~x_terms ~count:rows )))
      | Per_attribute -> assert false
    end
  in
  let filter_tokens =
    List.map
      (fun (col, v) ->
        if not (List.mem col config.Config.filter_columns) then
          invalid_arg (Printf.sprintf "Scheme.token: %S is not a filter column" col);
        Sse.token c.sse_key (filter_keyword ~column:col v))
      q.Query.where
  in
  let range_token_groups =
    List.map
      (fun (col, lo, hi) ->
        if not (List.mem col config.Config.range_filter_columns) then
          invalid_arg (Printf.sprintf "Scheme.token: %S is not a range filter column" col);
        List.map
          (fun interval -> Sse.token c.sse_key (range_keyword ~column:col interval))
          (Sagma_sse.Dyadic.cover ~depth:config.Config.range_bits ~lo ~hi))
      q.Query.ranges
  in
  { value_column; group_columns; source; filter_tokens; range_token_groups; t_num_buckets }

(* --- server-side aggregation (Algorithm 5) -------------------------------

   This function deliberately takes only public data: the encrypted table
   (which embeds the public parameters) and a token. *)

(* Audit hooks: every index access [aggregate] performs goes through one
   of these, recording the raw posting list (the access pattern, before
   any WHERE filtering — filtering happens on the server after the read,
   so the read itself is what leaks) under the token's deterministic tag
   (the search pattern). [Leakage] derives the matching prediction from
   the declared leakage function; Audit.check compares the two. The
   helpers are exported so tests can drive a forged probe through the
   production recording path. *)

let audited_search ~(kind : string) (index : Sse.index) (t : Sse.token) : int list =
  let rows = Sse.search index t in
  if !Audit.enabled then Audit.probe ~kind ~tag:(Sse.token_id t) ~matches:rows;
  rows

(* Deterministic public identity of an OXT conjunction: the s-term stag's
   keyword-key prefix (shared convention with [Leakage.of_query]). *)
let oxt_stag_tag (st : Oxt.stag) : string =
  Sagma_crypto.Encoding.to_hex (String.sub st.Oxt.s_keyword_key 0 8)

let audited_oxt_search (params : Oxt.params) (oxt : Oxt.index) (st : Oxt.stag)
    (xtoks : Curve.point array array) : int list =
  let rows = List.sort compare (Oxt.search params oxt st xtoks) in
  if !Audit.enabled then Audit.probe ~kind:"oxt.bucket" ~tag:(oxt_stag_tag st) ~matches:rows;
  rows

type block_aggregates = {
  sums : Bgn.c2 array array option;  (* per block vector, per channel *)
  counts_l1 : Bgn.c1 array option;   (* per block vector (level-1 mode) *)
  counts_l2 : Bgn.c2 array option;   (* per block vector (paired mode) *)
}

type bucket_aggregate = {
  bucket_ids : int array;   (* one bucket per queried column *)
  group_size : int;         (* rows feeding this joint bucket (leaked) *)
  blocks : block_aggregates;
}

type agg_result = {
  buckets : bucket_aggregate list;
  touched_rows : int;
}

module Int_set = Set.Make (Int)

(* Decompose a block index into the per-column offset vector (mixed radix
   base B, least-significant = last queried column). *)
let block_vector ~(bucket_size : int) ~(arity : int) (idx : int) : int array =
  let v = Array.make arity 0 in
  let rec go i rem =
    if i >= 0 then begin
      v.(i) <- rem mod bucket_size;
      go (i - 1) (rem / bucket_size)
    end
  in
  go (arity - 1) idx;
  v

(* Joint buckets in canonical (lexicographic bucket-vector) order. The
   enumeration order of [joint_bucket_rows] depends on the token source
   and, under sharding, on which rows a node owns — sorting makes the
   encoding deterministic, so a coordinator's ⊕-merge of per-shard
   partials is byte-identical to the single-server answer. *)
let sort_buckets (buckets : bucket_aggregate list) : bucket_aggregate list =
  List.sort (fun a b -> compare a.bucket_ids b.bucket_ids) buckets

(* [aggregate et tok] is Algorithm 5 (pure server side). Row work within
   each joint bucket is split across worker domains when [pool] is given
   (a long-lived pool, spawned once per process) or when [domains] > 1
   (a transient pool spanning this one call) — never one spawn per
   bucket. [owned] restricts the pairing work to the rows this node is
   responsible for in a sharded deployment (storage is replicated,
   compute is partitioned): rows failing the predicate are excluded
   before any pairing, and joint buckets left empty are dropped, so the
   per-shard partials ⊕-combine to exactly the unsharded answer. *)
let aggregate ?(domains = 1) ?pool ?owned (et : enc_table) (tok : token) : agg_result =
  let pp = et.pp in
  let pk = pp.bgn_pk in
  let n = Bgn.n pk in
  let config = pp.config in
  let bucket_size = config.Config.bucket_size in
  let arity = Array.length tok.group_columns in
  let num_blocks = int_of_float (float_of_int bucket_size ** float_of_int arity) in
  (* Filter rows first (WHERE composition, §2): intersect the equality
     clauses' results; each range clause contributes the union of its
     dyadic cover. *)
  let filtered =
    Trace.with_span "filter" @@ fun () ->
    let equality_sets =
      List.map
        (fun t -> Int_set.of_list (audited_search ~kind:"sse.filter" et.index t))
        tok.filter_tokens
    in
    let range_sets =
      List.map
        (fun group ->
          List.fold_left
            (fun acc t ->
              Int_set.union acc (Int_set.of_list (audited_search ~kind:"sse.range" et.index t)))
            Int_set.empty group)
        tok.range_token_groups
    in
    match equality_sets @ range_sets with
    | [] -> None
    | s0 :: rest -> Some (List.fold_left Int_set.inter s0 rest)
  in
  let keep r =
    (match filtered with None -> true | Some s -> Int_set.mem r s)
    && (match owned with None -> true | Some f -> f r)
  in
  (* Materialize the joint buckets: per-attribute mode intersects the
     queried columns' bucket posting lists; joint mode reads each joint
     bucket's rows in one SSE query. *)
  let joint_bucket_rows : (int array * int list) list =
    Trace.with_span "bucket_intersection" @@ fun () ->
    match tok.source with
    | Joint_tokens entries ->
      Array.to_list entries
      |> List.filter_map (fun (buckets, t) ->
             match List.filter keep (audited_search ~kind:"sse.bucket" et.index t) with
             | [] -> None
             | rows -> Some (buckets, rows))
    | Oxt_tokens entries ->
      let oxt =
        match et.oxt_index with
        | Some oxt -> oxt
        | None -> invalid_arg "Scheme.aggregate: OXT token against a non-OXT table"
      in
      let params = oxt_params () in
      Array.to_list entries
      |> List.filter_map (fun (buckets, st, xtoks) ->
             match List.filter keep (audited_oxt_search params oxt st xtoks) with
             | [] -> None
             | rows -> Some (buckets, rows))
    | Per_attribute_tokens per_column ->
      let bucket_rows =
        Array.map
          (fun tokens ->
            Array.map (fun t -> List.filter keep (audited_search ~kind:"sse.bucket" et.index t)) tokens)
          per_column
      in
      let rec enumerate col chosen rows acc =
        if col = arity then begin
          match rows with
          | [] -> acc
          | rows -> (Array.of_list (List.rev chosen), rows) :: acc
        end
        else begin
          let acc = ref acc in
          Array.iteri
            (fun b rows_b ->
              let inter =
                if col = 0 then rows_b
                else begin
                  let set = Int_set.of_list rows in
                  List.filter (fun r -> Int_set.mem r set) rows_b
                end
              in
              acc := enumerate (col + 1) (b :: chosen) inter !acc)
            bucket_rows.(col);
          !acc
        end
      in
      enumerate 0 [] [] []
  in
  (* Public indicator coefficients per block vector: the constant term and
     (monomial position, coefficient) pairs. Shared across joint buckets. *)
  let block_coeffs =
    Trace.with_span "indicator_coeffs" @@ fun () ->
    Array.init num_blocks (fun bi ->
        let j = block_vector ~bucket_size ~arity bi in
        let terms = Polynomial.multivariate_indicator ~n ~bucket_size j in
        let constant = ref Z.zero in
        let monos = ref [] in
        List.iter
          (fun { Polynomial.exponents; coeff } ->
            if Array.for_all (fun e -> e = 0) exponents then constant := coeff
            else begin
              let full =
                Monomials.lift_exponents pp.monomials ~query_columns:tok.group_columns exponents
              in
              monos := (Monomials.position pp.monomials full, coeff) :: !monos
            end)
          terms;
        (!constant, !monos))
  in
  (* Unit shift S_r^{(j)} = Enc(1 iff offsets = j): a trivial encryption of
     the constant term plus coefficient-weighted monomial ciphertexts. The
     constant-term point a₀·g is shared by every row. *)
  let curve = pk.Bgn.group.Sagma_pairing.Pairing.curve in
  let block_const_points =
    (* One batched inversion normalizes all B^arity scalar multiples. *)
    Curve.mul_batch curve (Array.map (fun (constant, _) -> (constant, pk.Bgn.g)) block_coeffs)
  in
  let shift_of_row row_idx bi : Bgn.c1 =
    let row = et.rows.(row_idx) in
    let _, monos = block_coeffs.(bi) in
    let acc = ref block_const_points.(bi) in
    List.iter
      (fun (pos, coeff) ->
        acc := Bgn.add1 pk !acc (Bgn.smul1 pk coeff row.monomial_cts.(pos)))
      monos;
    !acc
  in
  (* Precomputation-cache accessors for the table-side pairing arguments
     (the row's value/count ciphertexts are the fixed left argument of
     every multiplication they appear in). *)
  let value_pre (row : enc_row) vcol ch : Bgn.precomp1 =
    match row.pre_values.(vcol).(ch) with
    | Some pre ->
      Obs.incr m_precomp_hits;
      pre
    | None ->
      let pre = Bgn.precompute1 pk row.values.(vcol).(ch) in
      row.pre_values.(vcol).(ch) <- Some pre;
      pre
  in
  let count_pre (row : enc_row) : Bgn.precomp1 =
    match row.pre_count with
    | Some pre ->
      Obs.incr m_precomp_hits;
      pre
    | None ->
      let pre = Bgn.precompute1 pk row.count_ct in
      row.pre_count <- Some pre;
      pre
  in
  let touched = ref 0 in
  (* Aggregate one joint bucket: compute every row's shift per block once
     and feed it to both the sum and the count accumulators. Row chunks
     are processed on the worker pool's domains (the paper parallelizes
     query execution the same way). *)
  let aggregate_bucket chunk_pool (bucket_ids, rows) =
    touched := !touched + List.length rows;
    Obs.incr m_agg_buckets;
    Obs.add m_agg_rows (List.length rows);
    if !Audit.enabled then Audit.rows_paired (List.length rows);
    let num_channels = Crt.channels pp.channels in
        (* Each (block, channel) accumulator is one product of pairings:
           gather the chunk's (precomp, shift) pairs and hand the whole
           batch to [Bgn.mul_many_pre] — one interleaved Miller loop and
           one shared final exponentiation per accumulator, instead of
           one final exponentiation (and, before the Jacobian rewrite,
           ~|n| field inversions) per row. *)
        let accumulate_chunk (chunk : int list) =
          let sum_pairs =
            Option.map
              (fun _ -> Array.init num_blocks (fun _ -> Array.make num_channels []))
              tok.value_column
          in
          let counts_l1 =
            match et.count_mode with
            | Count_level1 -> Some (Array.make num_blocks Bgn.zero1)
            | Count_paired -> None
          in
          let count_pairs =
            match et.count_mode with
            | Count_paired -> Some (Array.make num_blocks [])
            | Count_level1 -> None
          in
          List.iter
            (fun r ->
              for bi = 0 to num_blocks - 1 do
                let s = shift_of_row r bi in
                (match (sum_pairs, tok.value_column) with
                 | Some acc, Some vcol ->
                   for ch = 0 to num_channels - 1 do
                     acc.(bi).(ch) <- (value_pre et.rows.(r) vcol ch, s) :: acc.(bi).(ch)
                   done
                 | _ -> ());
                (match counts_l1 with
                 | Some c -> c.(bi) <- Bgn.add1 pk c.(bi) s
                 | None -> ());
                (match count_pairs with
                 | Some c -> c.(bi) <- (count_pre et.rows.(r), s) :: c.(bi)
                 | None -> ())
              done)
            chunk;
          let batch pairs = Bgn.mul_many_pre pk (List.rev pairs) in
          ( Option.map (Array.map (Array.map batch)) sum_pairs,
            counts_l1,
            Option.map (Array.map batch) count_pairs )
        in
        (* The "chunk" span rides the submitting request's trace context
           (Pool.submit captures it), so pooled chunk work shows up
           under this bucket's pairing_loop span even when it ran on
           another domain. Inline row work (no pool, or a bucket too
           small to split) skips the extra span so the profiler
           attributes its allocation to pairing_loop itself. *)
        let accumulate_inline chunk =
          Obs.observe_ms h_chunk_ms (fun () -> accumulate_chunk chunk)
        in
        let accumulate chunk = Trace.with_span "chunk" (fun () -> accumulate_inline chunk) in
        let merge (s1, c1a, c1b) (s2, c2a, c2b) =
          let merge_arr2 a b = Array.map2 (Array.map2 (Bgn.add2 pk)) a b in
          ( (match (s1, s2) with
             | Some a, Some b -> Some (merge_arr2 a b)
             | a, None -> a
             | None, b -> b),
            (match (c1a, c2a) with
             | Some a, Some b -> Some (Array.map2 (Bgn.add1 pk) a b)
             | a, None -> a
             | None, b -> b),
            (match (c1b, c2b) with
             | Some a, Some b -> Some (Array.map2 (Bgn.add2 pk) a b)
             | a, None -> a
             | None, b -> b) )
        in
    let sums, counts_l1, counts_l2 =
      (* The caller runs one chunk itself, so [workers] helpers give
         [workers + 1]-way parallelism; tiny buckets stay inline. *)
      let workers = match chunk_pool with Some p -> Pool.workers p | None -> 0 in
      let chunk_count = workers + 1 in
      if workers = 0 || List.length rows < 2 * chunk_count then accumulate_inline rows
      else begin
        (* Round-robin split keeps chunks balanced. *)
        let chunks = Array.make chunk_count [] in
        List.iteri (fun i r -> chunks.(i mod chunk_count) <- r :: chunks.(i mod chunk_count)) rows;
        let p = Option.get chunk_pool in
        let futures =
          Array.to_list
            (Array.map (fun chunk -> Pool.submit p (fun () -> accumulate chunk))
               (Array.sub chunks 1 (chunk_count - 1)))
        in
        let first = accumulate chunks.(0) in
        List.fold_left (fun acc f -> merge acc (Pool.await f)) first futures
      end
    in
    { bucket_ids; group_size = List.length rows; blocks = { sums; counts_l1; counts_l2 } }
  in
  (* A caller-supplied pool is shared and long-lived; otherwise
     [domains] > 1 gets a transient pool spanning every bucket of this
     call (the caller contributes the (+1)th domain). *)
  let owned_pool =
    match pool with
    | Some _ -> None
    | None when domains > 1 -> Some (Pool.create ~name:"aggregate" ~workers:(domains - 1) ())
    | None -> None
  in
  let chunk_pool = match pool with Some _ -> pool | None -> owned_pool in
  let buckets =
    Fun.protect
      ~finally:(fun () -> Option.iter Pool.shutdown owned_pool)
      (fun () ->
        Trace.with_span "pairing_loop" (fun () ->
            List.map (aggregate_bucket chunk_pool) joint_bucket_rows))
  in
  { buckets = sort_buckets buckets; touched_rows = !touched }

(* ⊕-combine per-node partial aggregates (scatter-gather merge). Every
   ciphertext is additively homomorphic, so summing the level-2 (and
   level-1 count) components bucket-by-bucket yields exactly the
   aggregate a single server would have produced over the union of the
   parts' rows — no decryption anywhere. Buckets are matched on their
   joint bucket vector; a bucket present in only some parts passes
   through unchanged (its rows all lived on those nodes). *)
let merge_agg_results (pk : Bgn.public_key) (parts : agg_result list) : agg_result =
  let merge_opt f a b =
    match (a, b) with
    | Some a, Some b -> Some (f a b)
    | a, None -> a
    | None, b -> b
  in
  let merge_blocks (a : block_aggregates) (b : block_aggregates) : block_aggregates =
    {
      sums = merge_opt (Array.map2 (Array.map2 (Bgn.add2 pk))) a.sums b.sums;
      counts_l1 = merge_opt (Array.map2 (Bgn.add1 pk)) a.counts_l1 b.counts_l1;
      counts_l2 = merge_opt (Array.map2 (Bgn.add2 pk)) a.counts_l2 b.counts_l2;
    }
  in
  let tbl : (int list, bucket_aggregate) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun part ->
      List.iter
        (fun b ->
          let key = Array.to_list b.bucket_ids in
          match Hashtbl.find_opt tbl key with
          | None -> Hashtbl.add tbl key b
          | Some prev ->
            Hashtbl.replace tbl key
              {
                bucket_ids = prev.bucket_ids;
                group_size = prev.group_size + b.group_size;
                blocks = merge_blocks prev.blocks b.blocks;
              })
        part.buckets)
    parts;
  {
    buckets = sort_buckets (Hashtbl.fold (fun _ b acc -> b :: acc) tbl []);
    touched_rows = List.fold_left (fun acc p -> acc + p.touched_rows) 0 parts;
  }

(* --- decryption (Algorithm 6) -------------------------------------------- *)

type result_row = {
  group : Value.t list;  (* in queried-column order *)
  sum : int;
  count : int;
}

let dec1_table (c : client) ~(max : int) : Bgn.dec1_table =
  match List.assoc_opt max c.dec1_tables with
  | Some t -> t
  | None ->
    let t = Bgn.make_dec1_table c.kp ~max in
    c.dec1_tables <- (max, t) :: c.dec1_tables;
    t

let dec2_table (c : client) ~(max : int) : Bgn.dec2_table =
  match List.assoc_opt max c.dec2_tables with
  | Some t -> t
  | None ->
    let t = Bgn.make_dec2_table c.kp ~max in
    c.dec2_tables <- (max, t) :: c.dec2_tables;
    t

let decrypt (c : client) (tok : token) (agg : agg_result) ~(total_rows : int) : result_row list =
  let pp = c.pp in
  let config = pp.config in
  let bucket_size = config.Config.bucket_size in
  let arity = Array.length tok.group_columns in
  let num_blocks = int_of_float (float_of_int bucket_size ** float_of_int arity) in
  let count_max = total_rows in
  let results = ref [] in
  List.iter
    (fun ba ->
      for bi = 0 to num_blocks - 1 do
        let offsets = block_vector ~bucket_size ~arity bi in
        (* Map (bucket, offset) back to the group value per column; slots
           beyond a partial last bucket are uninhabited. *)
        let group =
          Array.to_list
            (Array.mapi
               (fun cidx col ->
                 Mapping.value_at c.mappings.(col) ~bucket:ba.bucket_ids.(cidx)
                   ~offset:offsets.(cidx))
               tok.group_columns)
        in
        if List.for_all Option.is_some group then begin
          let group = List.map Option.get group in
          let count =
            match (ba.blocks.counts_l1, ba.blocks.counts_l2) with
            | Some cts, _ ->
              Option.value
                (Bgn.dec1 c.kp (dec1_table c ~max:count_max) ~max:count_max cts.(bi))
                ~default:0
            | None, Some cts ->
              Option.value
                (Bgn.dec2 c.kp (dec2_table c ~max:count_max) ~max:count_max cts.(bi))
                ~default:0
            | None, None -> 0
          in
          let sum =
            match ba.blocks.sums with
            | None -> 0
            | Some sums ->
              let per_channel =
                Array.mapi
                  (fun ch ct ->
                    let d = pp.channels.Crt.moduli.(ch) in
                    let max = total_rows * (d - 1) in
                    Option.value (Bgn.dec2 c.kp (dec2_table c ~max) ~max ct) ~default:0)
                  sums.(bi)
              in
              Z.to_int_exn (Crt.decode pp.channels per_channel)
          in
          if count > 0 then results := { group; sum; count } :: !results
        end
      done)
    agg.buckets;
  List.sort
    (fun a b -> Stdlib.compare (List.map Value.to_string a.group) (List.map Value.to_string b.group))
    !results

(* End-to-end convenience: token → aggregate → decrypt. The optional
   arguments default to the table's own mode and row count;
   [domains]/[pool] parallelize the aggregation step. *)
let query ?index_mode ?oxt_rows ?(domains = 1) ?pool (c : client) (et : enc_table) (q : Query.t) :
    result_row list =
  let index_mode = Option.value index_mode ~default:et.index_mode in
  let oxt_rows = Option.value oxt_rows ~default:(Array.length et.rows) in
  let tok = Trace.with_span "token" (fun () -> token ~index_mode ~oxt_rows c q) in
  let agg = Trace.with_span "aggregate" (fun () -> aggregate ~domains ?pool et tok) in
  Trace.with_span "decrypt" (fun () ->
      decrypt c tok agg ~total_rows:(Array.length et.rows))

let aggregate_value (q : Query.t) (r : result_row) : float =
  match q.Query.aggregate with
  | Query.Sum _ -> float_of_int r.sum
  | Query.Count -> float_of_int r.count
  | Query.Avg _ -> if r.count = 0 then 0. else float_of_int r.sum /. float_of_int r.count

(** The stored-monomial index (§3.4, §4.1).

    EncRow stores one BGN ciphertext per monomial x₁^{e₁}···x_l^{e_l}
    with e ∈ {0..B−1}^l, e ≠ 0 and |support(e)| ≤ t. Monomial reuse
    (Figure 2) falls out: a query over attributes Q touches exactly the
    vectors supported inside Q, and those same vectors serve every
    superset. m(l,t) = Σ_{i=1..t} C(l,i)(B−1)^i (§4.1, Table 9). *)

type t = {
  num_columns : int;
  bucket_size : int;
  threshold : int;
  vectors : int array array;        (** exponent vectors, storage order *)
  index : (string, int) Hashtbl.t;
}

val make : num_columns:int -> bucket_size:int -> threshold:int -> t

val count : t -> int

val count_formula : num_columns:int -> bucket_size:int -> threshold:int -> int
(** Closed form m(l,t). *)

val count_naive : num_columns:int -> bucket_size:int -> threshold:int -> int
(** The reuse-free naïve scheme's count (§4.1). *)

val position : t -> int array -> int
(** Storage position of an exponent vector.
    @raise Invalid_argument for unsupported vectors. *)

val vector : t -> int -> int array

val eval_monomial : int array -> int array -> Sagma_bigint.Bigint.t
(** Plaintext value of monomial [e] on bucket offsets [xs]. *)

val lift_exponents : t -> query_columns:int array -> int array -> int array
(** Widen a query-local exponent vector to all l columns. *)

(** The static-shifting constructions (§3.1 and §3.2).

    Group membership is encoded client-side by shifting the value into a
    block of a packed Paillier plaintext; the homomorphic sum accumulates
    every group's subtotal in its own block and decryption is direct (no
    discrete log). §3.1 packs the whole domain (full access-pattern
    hiding, heavy storage); §3.2 packs per bucket and reveals the bucket
    membership. *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Drbg = Sagma_crypto.Drbg
module Paillier = Sagma_paillier.Paillier

type client = {
  kp : Paillier.keypair;
  mapping : Mapping.t;
  value_bits : int;
  blocks_per_ct : int;
  drbg : Drbg.t;
}

val blocks_per_ciphertext : Paillier.public_key -> value_bits:int -> int

val setup :
  ?paillier_bits:int ->
  ?value_bits:int ->
  ?mapping_strategy:Mapping.strategy ->
  domain:Value.t list ->
  Drbg.t ->
  client

(** §3.1: whole-domain packing. *)
module Full_domain : sig
  type enc_row = Paillier.ciphertext array
  (** ⌈|D| / blocks_per_ct⌉ ciphertexts; all blocks zero except the
      row's. *)

  val cts_per_row : client -> int

  val enc_row : client -> value:int -> group:Value.t -> enc_row
  (** v′ = v·|D_V|^f(g), the §3.1 blockwise shift. *)

  val aggregate : client -> enc_row list -> Paillier.ciphertext array
  (** Componentwise homomorphic sum (server side). *)

  val decrypt : client -> Paillier.ciphertext array -> (Value.t * int) list
  (** Unpack blocks and map indices back to group values. *)
end

(** §3.2: bucketized packing — one ciphertext per row, bucket id
    revealed. *)
module Bucketized : sig
  type client_b = { base : client; bucket_size : int }

  type enc_row = {
    bucket : int;  (** revealed to the server *)
    ct : Paillier.ciphertext;
  }

  val setup :
    ?paillier_bits:int ->
    ?value_bits:int ->
    ?mapping_strategy:Mapping.strategy ->
    bucket_size:int ->
    domain:Value.t list ->
    Drbg.t ->
    client_b

  val enc_row : client_b -> value:int -> group:Value.t -> enc_row
  val aggregate : client_b -> enc_row list -> (int * Paillier.ciphertext) list
  val decrypt : client_b -> (int * Paillier.ciphertext) list -> (Value.t * int) list
end

(* Bucket-partitioning analysis and the §5 protection mechanisms:
   exposure measurement, dummy-row planning and attribute value splits. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Drbg = Sagma_crypto.Drbg

(* Histogram of one column. *)
let histogram (table : Table.t) (column : string) : (Value.t * int) list =
  let idx = Table.column_index table column in
  let tbl : (Value.t, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun row ->
      let v = row.(idx) in
      Hashtbl.replace tbl v (1 + Option.value (Hashtbl.find_opt tbl v) ~default:0))
    (Table.rows table);
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

(* Total observed frequency of each bucket of a mapping. *)
let bucket_frequencies (m : Mapping.t) (hist : (Value.t * int) list) : int array =
  let freqs = Array.make (Mapping.num_buckets m) 0 in
  List.iter
    (fun (v, c) ->
      if Mapping.mem m v then begin
        let b = Mapping.bucket m v in
        freqs.(b) <- freqs.(b) + c
      end)
    hist;
  freqs

(* Exposure coefficient (after Ceselli et al., specialized to the
   bucket-frequency attack of §5): the adversary sees one access-pattern
   frequency per bucket and knows the plaintext histogram. A value's
   bucket is identifiable with probability 1/c where c is the number of
   buckets sharing its bucket's total frequency; within a bucket of size
   s, a slot is a 1/s guess. Exposure is the average, weighted by value
   frequency, of 1/(c·s) — 1.0 means every row's group value is uniquely
   reconstructable from leakage, 1/|D| is the blind-guess floor. *)
let exposure (m : Mapping.t) (hist : (Value.t * int) list) : float =
  let freqs = bucket_frequencies m hist in
  let same_freq f = Array.fold_left (fun acc g -> if g = f then acc + 1 else acc) 0 freqs in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  if total = 0 then 0.
  else begin
    let weighted =
      List.fold_left
        (fun acc (v, c) ->
          if not (Mapping.mem m v) then acc
          else begin
            let b = Mapping.bucket m v in
            let candidates = same_freq freqs.(b) in
            let bucket_members = List.length (Mapping.bucket_members m b) in
            acc +. (float_of_int c /. (float_of_int candidates *. float_of_int bucket_members))
          end)
        0. hist
    in
    weighted /. float_of_int total
  end

(* Exhaustive optimal partition for small domains: try every assignment of
   values to ⌈|D|/B⌉ buckets (sizes ≤ B) and keep the minimal exposure.
   Exponential — guarded by [max_domain]. *)
let optimal_mapping ?(max_domain = 8) (hist : (Value.t * int) list) ~(bucket_size : int) :
    Mapping.t =
  let values = List.map fst hist in
  let nv = List.length values in
  if nv > max_domain then
    (* Fall back to the balanced heuristic the Mapping module provides. *)
    Mapping.make (Mapping.Optimal hist) "optimal-fallback" values ~bucket_size
  else begin
    let num_buckets = (nv + bucket_size - 1) / bucket_size in
    (* The index scheme (bucket = ⌊f(g)/B⌋) can only express partitions
       where every bucket except the last is full. *)
    let capacity b =
      if b < num_buckets - 1 then bucket_size else nv - (bucket_size * (num_buckets - 1))
    in
    let best = ref None in
    let buckets = Array.make num_buckets [] in
    let rec assign = function
      | [] ->
        let order = Array.to_list buckets |> List.concat_map List.rev in
        let m = Mapping.of_order order ~bucket_size in
        let e = exposure m hist in
        (match !best with
         | Some (be, _) when be <= e -> ()
         | _ -> best := Some (e, m))
      | v :: rest ->
        (* Canonical form: among equal-capacity buckets, fill an empty one
           only if it is the first empty one (they are interchangeable). *)
        let seen_empty_full_cap = ref false in
        for b = 0 to num_buckets - 1 do
          let size = List.length buckets.(b) in
          let full_cap = capacity b = bucket_size in
          let prune = size = 0 && full_cap && !seen_empty_full_cap in
          if size < capacity b && not prune then begin
            if size = 0 && full_cap then seen_empty_full_cap := true;
            buckets.(b) <- v :: buckets.(b);
            assign rest;
            buckets.(b) <- List.tl buckets.(b)
          end
        done
    in
    assign values;
    match !best with
    | Some (_, m) -> m
    | None -> Mapping.of_order values ~bucket_size
  end

(* --- dummy rows (§5) ------------------------------------------------------

   Pad every bucket of a column to the maximum bucket frequency so all
   buckets leak the same access-pattern size. Dummy rows carry zero
   values and a zero count channel, so results are unaffected. *)

let dummy_plan_for_column (m : Mapping.t) (hist : (Value.t * int) list) : (Value.t * int) list =
  let freqs = bucket_frequencies m hist in
  let target = Array.fold_left max 0 freqs in
  List.filter_map
    (fun b ->
      let deficit = target - freqs.(b) in
      if deficit <= 0 then None
      else begin
        match Mapping.bucket_members m b with
        | [] -> None
        | v :: _ -> Some (v, deficit)  (* any member value lands in bucket b *)
      end)
    (List.init (Mapping.num_buckets m) (fun b -> b))

(* Build full dummy rows (one group value per group column) equalizing
   every column's buckets simultaneously: per column compute its plan,
   then zip the per-column dummy streams, padding shorter streams with a
   repeat of that column's first domain value. *)
let dummy_rows (mappings : Mapping.t array) (hists : (Value.t * int) list array) :
    Value.t array list =
  let streams =
    Array.mapi
      (fun i m ->
        let plan = dummy_plan_for_column m hists.(i) in
        List.concat_map (fun (v, k) -> List.init k (fun _ -> v)) plan)
      mappings
  in
  let longest = Array.fold_left (fun acc s -> max acc (List.length s)) 0 streams in
  let filler i =
    match Mapping.domain mappings.(i) with
    | v :: _ -> v
    | [] -> invalid_arg "Bucketing.dummy_rows: empty domain"
  in
  List.init longest (fun r ->
      Array.mapi
        (fun i s -> match List.nth_opt s r with Some v -> v | None -> filler i)
        streams)

(* --- attribute value splits (§5) ------------------------------------------

   Replace a high-frequency group value [g] by sub-values g.1 … g.k,
   assigned round-robin, thinning its frequency. The client merges the
   sub-groups back after decryption. Only string columns are splittable
   (sub-values need distinct encodings in the same domain). *)

let split_name (s : string) (i : int) : string = Printf.sprintf "%s.%d" s (i + 1)

let split_column (table : Table.t) ~(column : string) ~(value : Value.t) ~(parts : int) :
    Table.t =
  if parts < 2 then invalid_arg "Bucketing.split_column: parts < 2";
  let base =
    match value with
    | Value.Str s -> s
    | Value.Int _ -> invalid_arg "Bucketing.split_column: only string values are splittable"
  in
  let idx = Table.column_index table column in
  let counter = ref 0 in
  let rows =
    List.map
      (fun row ->
        if Value.equal row.(idx) value then begin
          let row = Array.copy row in
          row.(idx) <- Value.Str (split_name base (!counter mod parts));
          incr counter;
          row
        end
        else row)
      (Table.rows table)
  in
  Table.of_rows (Table.schema table) rows

(* The domain after splitting: [value] replaced by its sub-values. *)
let split_domain (domain : Value.t list) ~(value : Value.t) ~(parts : int) : Value.t list =
  let base =
    match value with
    | Value.Str s -> s
    | Value.Int _ -> invalid_arg "Bucketing.split_domain: only string values are splittable"
  in
  List.concat_map
    (fun v ->
      if Value.equal v value then List.init parts (fun i -> Value.Str (split_name base i))
      else [ v ])
    domain

(* Merge split sub-groups in decrypted results: "g.i" → "g" in the given
   group position, summing sums and counts. *)
let merge_split_results (results : Scheme.result_row list) ~(position : int)
    ~(value : Value.t) ~(parts : int) : Scheme.result_row list =
  let base =
    match value with
    | Value.Str s -> s
    | Value.Int _ -> invalid_arg "Bucketing.merge_split_results: string values only"
  in
  let subnames = List.init parts (fun i -> split_name base i) in
  let canon (r : Scheme.result_row) : Scheme.result_row =
    let group =
      List.mapi
        (fun i g ->
          if i = position then
            match g with
            | Value.Str s when List.mem s subnames -> value
            | other -> other
          else g)
        r.Scheme.group
    in
    { r with Scheme.group }
  in
  let tbl : (string, Scheme.result_row) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let r = canon r in
      let key = String.concat "\x00" (List.map Value.encode r.Scheme.group) in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key r
      | Some prev ->
        Hashtbl.replace tbl key
          { prev with
            Scheme.sum = prev.Scheme.sum + r.Scheme.sum;
            Scheme.count = prev.Scheme.count + r.Scheme.count })
    results;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b ->
         Stdlib.compare
           (List.map Value.to_string a.Scheme.group)
           (List.map Value.to_string b.Scheme.group))

(** Storage and client-cost models (§4.1, §6.2 — Tables 9/10,
    Figure 8). All storage figures count ciphertexts, as the paper
    does. *)

val choose : int -> int -> int
(** Binomial coefficient. *)

val int_pow : int -> int -> int

val monomial_count : l:int -> t:int -> b:int -> int
(** m(l,t) = Σ C(l,i)(B−1)^i — monomials per row with reuse. *)

val monomial_increment : l:int -> t:int -> b:int -> int
(** Table 9's rows: m(l,t) − m(l,t−1) = C(l,t)(B−1)^t. *)

val monomial_count_naive : l:int -> t:int -> b:int -> int

(** {1 Table 10: server storage} *)

val precomputed_server : l:int -> t:int -> k:int -> n:int -> d:int -> int
val seabed_server : l:int -> t:int -> k:int -> r:int -> b:int -> int
val sagma_server : l:int -> t:int -> k:int -> r:int -> b:int -> int

(** {1 Table 10: client operations per query} *)

val result_count : t:int -> d:int -> int
(** C = |D|^t. *)

val precomputed_client : int
val seabed_client : rho:int -> t:int -> d:int -> int
val sagma_client : t:int -> d:int -> int

(** {1 Figure 8 sweeps} *)

type figure8_row = { x : int; precomputed : int; seabed : int; sagma : int }

val figure8a :
  ?l:int -> ?k:int -> ?r:int -> ?n:int -> ?b:int -> ?d:int -> unit -> figure8_row list
(** Storage vs threshold t (paper defaults l=4, k=2, r=1000, n=2). *)

val figure8b : ?l:int -> ?t:int -> ?k:int -> ?r:int -> ?n:int -> ?b:int -> unit -> figure8_row list
(** Storage vs domain size |D| at t=3. *)

(* The naïve multi-attribute scheme (§3.4 "Naïve scheme") — modelled for
   its storage cost and its leakage, which motivate the improved scheme.

   It instantiates the single-attribute construction once per attribute
   subset of size ≤ t. To keep the combined-attribute buckets from leaking
   more than the individual ones (the Table 4 attack), a subset of i
   attributes needs bucket size B^i. *)

module Value = Sagma_db.Value

(* All subsets of size in [1, t], as index lists. *)
let subsets ~(l : int) ~(t : int) : int list list =
  let rec go from size =
    if size = 0 then [ [] ]
    else begin
      let out = ref [] in
      for i = from to l - 1 do
        List.iter (fun rest -> out := (i :: rest) :: !out) (go (i + 1) (size - 1))
      done;
      !out
    end
  in
  List.concat_map (fun size -> go 0 size) (List.init t (fun i -> i + 1))

(* Monomials stored per row: B^i − 1 per subset of size i (no reuse). *)
let monomials_per_row ~(l : int) ~(t : int) ~(b : int) : int =
  List.fold_left
    (fun acc s ->
      let i = List.length s in
      let rec pow acc e = if e = 0 then acc else pow (acc * b) (e - 1) in
      acc + (pow 1 i - 1))
    0
    (subsets ~l ~t)

(* --- the Table 4 leakage ---------------------------------------------------

   With per-attribute bucket size B and combined-attribute bucket size
   also B (i.e. *without* raising it to B^i), two rows that share every
   individual bucket can still part ways in a combined bucket, revealing
   that their value tuples differ. [combined_leak] reports whether a pair
   of rows is separated by the combined attribute while being identical
   under the individual ones. *)

type row_buckets = {
  individual : int array;  (* bucket per attribute *)
  combined : int;          (* bucket of the attribute combination *)
}

let buckets_of_row (mappings : Mapping.t array) (combined : Mapping.t) (groups : Value.t array)
    : row_buckets =
  { individual = Array.mapi (fun i g -> Mapping.bucket mappings.(i) g) groups;
    combined = Mapping.bucket combined (Value.Str (String.concat "|" (Array.to_list (Array.map Value.encode groups)))) }

let distinguishable (a : row_buckets) (b : row_buckets) : bool =
  a.individual = b.individual && a.combined <> b.combined

(* Required combined bucket size to avoid the attack: every combination of
   the individual buckets' members must share one combined bucket. *)
let safe_combined_bucket_size ~(b : int) ~(arity : int) : int =
  let rec pow acc e = if e = 0 then acc else pow (acc * b) (e - 1) in
  pow 1 arity

(** The naïve multi-attribute scheme (§3.4 "Naïve scheme") — modelled for
    its storage cost and the Table 4 leakage that motivates the improved
    scheme. A subset of i attributes needs bucket size B^i to avoid
    leaking that rows sharing all individual buckets differ. *)

module Value = Sagma_db.Value

val subsets : l:int -> t:int -> int list list
(** All attribute subsets of size 1..t. *)

val monomials_per_row : l:int -> t:int -> b:int -> int
(** B^i − 1 per subset — no reuse (§4.1). *)

type row_buckets = {
  individual : int array;
  combined : int;
}

val buckets_of_row : Mapping.t array -> Mapping.t -> Value.t array -> row_buckets

val distinguishable : row_buckets -> row_buckets -> bool
(** The Table 4 attack: same individual buckets, different combined
    bucket. *)

val safe_combined_bucket_size : b:int -> arity:int -> int
(** B^arity. *)

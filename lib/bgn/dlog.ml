(* Baby-step/giant-step discrete logarithms, generic over the group.

   BGN decryption reduces to a discrete log in a subgroup with a known
   small exponent bound (the aggregate's value range). The baby table is
   reusable across decryptions with the same base, which matters because
   one SAGMA query decrypts many aggregate components. *)

type 'a ops = {
  mul : 'a -> 'a -> 'a;
  inv : 'a -> 'a;
  one : 'a;
  serialize : 'a -> string;  (* injective encoding for table keys *)
}

type 'a table = {
  ops : 'a ops;
  base : 'a;
  stride : int;                       (* number of baby steps *)
  baby : (string, int) Hashtbl.t;     (* base^j -> j, 0 <= j < stride *)
  giant : 'a;                         (* base^(-stride) *)
}

let m_tables = Sagma_obs.Metrics.counter "bgn.dlog.table_builds"
let m_solves = Sagma_obs.Metrics.counter "bgn.dlog.solves"
let m_giant_steps = Sagma_obs.Metrics.counter "bgn.dlog.giant_steps"

(* [make ops base ~max] prepares a table able to solve exponents in
   [0, max]. The table holds about sqrt(max) entries. *)
let make (ops : 'a ops) (base : 'a) ~(max : int) : 'a table =
  if max < 0 then invalid_arg "Dlog.make: negative bound";
  Sagma_obs.Metrics.incr m_tables;
  let stride = int_of_float (sqrt (float_of_int (max + 1))) + 1 in
  let baby = Hashtbl.create (2 * stride) in
  let acc = ref ops.one in
  for j = 0 to stride - 1 do
    let key = ops.serialize !acc in
    if not (Hashtbl.mem baby key) then Hashtbl.add baby key j;
    acc := ops.mul !acc base
  done;
  (* !acc = base^stride *)
  { ops; base; stride; baby = baby; giant = ops.inv !acc }

(* [solve t target ~max] finds x in [0, max] with base^x = target. *)
let solve (t : 'a table) (target : 'a) ~(max : int) : int option =
  Sagma_obs.Metrics.incr m_solves;
  let steps = (max / t.stride) + 1 in
  let rec go i cur =
    if i > steps then None
    else begin
      match Hashtbl.find_opt t.baby (t.ops.serialize cur) with
      | Some j when (i * t.stride) + j <= max ->
        Sagma_obs.Metrics.add m_giant_steps i;
        Some ((i * t.stride) + j)
      | _ -> go (i + 1) (t.ops.mul cur t.giant)
    end
  in
  go 0 target

let solve_exn t target ~max =
  match solve t target ~max with
  | Some x -> x
  | None -> failwith "Dlog.solve_exn: no solution in range (plaintext overflow?)"

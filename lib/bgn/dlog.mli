(** Baby-step/giant-step discrete logarithms, generic over the group.

    BGN decryption reduces to a discrete log with a known small bound.
    Tables cost O(√max) space/time to build and are reusable across
    solves with the same base — one SAGMA query decrypts many aggregate
    components under one base. *)

type 'a ops = {
  mul : 'a -> 'a -> 'a;
  inv : 'a -> 'a;
  one : 'a;
  serialize : 'a -> string;  (** injective encoding for table keys *)
}

type 'a table

val make : 'a ops -> 'a -> max:int -> 'a table
(** [make ops base ~max] prepares a table able to solve exponents in
    [\[0, max\]]. *)

val solve : 'a table -> 'a -> max:int -> int option
(** [solve t target ~max] finds x ∈ [\[0, max\]] with base^x = target. *)

val solve_exn : 'a table -> 'a -> max:int -> int
(** @raise Failure when no exponent in range matches (plaintext
    overflow). *)

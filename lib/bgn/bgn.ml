(* The Boneh–Goh–Nissim somewhat homomorphic encryption scheme (TCC'05).

   Plaintexts live in Z_n with n = q1·q2. Level-1 ciphertexts are points
   of the order-n curve subgroup G: Enc(m) = m·g + r·h where h generates
   the order-q1 subgroup. One ciphertext–ciphertext multiplication is
   available via the pairing, landing in the target group G_T ⊂ F_p²
   (level 2), which remains additively homomorphic.

   Decryption raises to the power q1 (killing the blinding subgroup) and
   solves a discrete log, so decryptable plaintexts must come from a
   small, known range — exactly the constraint the paper's CRT channels
   (Hu et al., ACNS'12) work around. *)

module Z = Sagma_bigint.Bigint
module Curve = Sagma_pairing.Curve
module Fp2 = Sagma_pairing.Fp2
module Pairing = Sagma_pairing.Pairing
module Drbg = Sagma_crypto.Drbg

type public_key = {
  group : Pairing.group;
  g : Curve.point;   (* generator of G, order n *)
  h : Curve.point;   (* generator of the order-q1 blinding subgroup *)
  e_gg : Fp2.t;      (* ê(g, g): level-2 generator *)
  e_gh : Fp2.t;      (* ê(g, h): level-2 blinding generator *)
}

type secret_key = { q1 : Z.t; q2 : Z.t }

type keypair = { pk : public_key; sk : secret_key }

(* Level-1 ciphertext: a curve point. *)
type c1 = Curve.point

(* Level-2 ciphertext: an element of G_T. *)
type c2 = Fp2.t

let n (pk : public_key) = pk.group.Pairing.n

(* [keygen ~bits drbg] generates a key with an n of roughly [bits] bits
   (two primes of bits/2 each). The paper instantiates 1024-bit n for
   ~80-bit security; tests and default benches use smaller sizes. *)
let keygen ~(bits : int) (drbg : Drbg.t) : keypair =
  if bits < 16 then invalid_arg "Bgn.keygen: modulus too small";
  let rng = Drbg.rng drbg in
  let half = bits / 2 in
  let q1 = Z.random_prime rng ~bits:half in
  let rec distinct () =
    let q2 = Z.random_prime rng ~bits:(bits - half) in
    if Z.equal q1 q2 then distinct () else q2
  in
  let q2 = distinct () in
  let group = Pairing.make_group ~rng (Z.mul q1 q2) in
  let curve = group.Pairing.curve in
  (* Points of order exactly n = q1·q2: the sampler rejects candidates
     either prime factor kills, given the factorization. *)
  let order_n () = Pairing.random_order_n_point ~factors:[ q1; q2 ] group rng in
  let g = order_n () in
  let u = order_n () in
  let h = Curve.mul curve q2 u in
  (* One precomputation of g serves both cached level-2 generators. *)
  let pre_g = Pairing.precompute group g in
  let e_gg = Pairing.pairing_prod group [ (pre_g, g) ] in
  let e_gh = Pairing.pairing_prod group [ (pre_g, h) ] in
  { pk = { group; g; h; e_gg; e_gh }; sk = { q1; q2 } }

let random_blinding (pk : public_key) (drbg : Drbg.t) : Z.t =
  Z.random_below (Drbg.rng drbg) (n pk)

(* Operation counters: the quantities the paper's cost analysis (§3.4,
   §6) is expressed in. *)
module Metrics = Sagma_obs.Metrics

let m_enc1 = Metrics.counter "bgn.enc1"
let m_enc2 = Metrics.counter "bgn.enc2"
let m_add1 = Metrics.counter "bgn.add1"
let m_add2 = Metrics.counter "bgn.add2"
let m_smul1 = Metrics.counter "bgn.smul1"
let m_smul2 = Metrics.counter "bgn.smul2"
let m_mul = Metrics.counter "bgn.mul"

(* --- level 1 ------------------------------------------------------------ *)

let enc1 (pk : public_key) (drbg : Drbg.t) (m : Z.t) : c1 =
  Metrics.incr m_enc1;
  let curve = pk.group.Pairing.curve in
  let r = random_blinding pk drbg in
  Curve.add curve (Curve.mul curve (Z.erem m (n pk)) pk.g) (Curve.mul curve r pk.h)

let enc1_int pk drbg m = enc1 pk drbg (Z.of_int m)

let add1 (pk : public_key) (a : c1) (b : c1) : c1 =
  Metrics.incr m_add1;
  Curve.add pk.group.Pairing.curve a b

let neg1 (pk : public_key) (a : c1) : c1 = Curve.neg pk.group.Pairing.curve a

(* Multiply a ciphertext by a plaintext scalar (the ⊗-by-plaintext the
   paper uses for polynomial coefficients). *)
let smul1 (pk : public_key) (k : Z.t) (a : c1) : c1 =
  Metrics.incr m_smul1;
  Curve.mul pk.group.Pairing.curve (Z.erem k (n pk)) a

let zero1 : c1 = Curve.Infinity

let rerandomize1 (pk : public_key) (drbg : Drbg.t) (a : c1) : c1 =
  let curve = pk.group.Pairing.curve in
  Curve.add curve a (Curve.mul curve (random_blinding pk drbg) pk.h)

(* --- level 2 ------------------------------------------------------------ *)

let enc2 (pk : public_key) (drbg : Drbg.t) (m : Z.t) : c2 =
  Metrics.incr m_enc2;
  let p = pk.group.Pairing.p in
  let r = random_blinding pk drbg in
  Fp2.mul ~p (Fp2.pow ~p pk.e_gg (Z.erem m (n pk))) (Fp2.pow ~p pk.e_gh r)

let add2 (pk : public_key) (a : c2) (b : c2) : c2 =
  Metrics.incr m_add2;
  Fp2.mul ~p:pk.group.Pairing.p a b

let smul2 (pk : public_key) (k : Z.t) (a : c2) : c2 =
  Metrics.incr m_smul2;
  Fp2.pow ~p:pk.group.Pairing.p a (Z.erem k (n pk))

let zero2 : c2 = Fp2.one

let rerandomize2 (pk : public_key) (drbg : Drbg.t) (a : c2) : c2 =
  let p = pk.group.Pairing.p in
  Fp2.mul ~p a (Fp2.pow ~p pk.e_gh (random_blinding pk drbg))

(* The one ciphertext–ciphertext multiplication: G × G → G_T. *)
let mul (pk : public_key) (a : c1) (b : c1) : c2 =
  Metrics.incr m_mul;
  Pairing.pairing pk.group a b

(* --- batched multiplication ----------------------------------------------

   A level-2 sum Σ aᵢ·bᵢ is a product of pairings, so the whole batch
   shares one interleaved Miller loop and a single final exponentiation
   instead of paying one per term. The precomputed variant additionally
   skips the per-term Miller ladder for left arguments that repeat
   across calls (SAGMA pairs each encrypted value against every block
   constant). Counters: [bgn.mul] advances by the full list length —
   the same as calling {!mul} termwise — so cost models are unchanged. *)

type precomp1 = Pairing.Precomp.t

let precompute1 (pk : public_key) (a : c1) : precomp1 = Pairing.precompute pk.group a

let mul_many_pre (pk : public_key) (pairs : (precomp1 * c1) list) : c2 =
  Metrics.add m_mul (List.length pairs);
  Pairing.pairing_prod pk.group pairs

let mul_many (pk : public_key) (pairs : (c1 * c1) list) : c2 =
  Metrics.add m_mul (List.length pairs);
  Pairing.pairing_prod pk.group
    (List.map (fun (a, b) -> (Pairing.precompute pk.group a, b)) pairs)

(* --- decryption ----------------------------------------------------------

   Decryption tables are exposed so callers can reuse them: one SAGMA
   query decrypts many components under the same base. *)

type dec1_table = Curve.point Dlog.table

type dec2_table = Fp2.t Dlog.table

let curve_ops (pk : public_key) : Curve.point Dlog.ops =
  let curve = pk.group.Pairing.curve in
  { Dlog.mul = Curve.add curve;
    inv = Curve.neg curve;
    one = Curve.Infinity;
    serialize = Curve.serialize }

let gt_ops (pk : public_key) : Fp2.t Dlog.ops =
  let p = pk.group.Pairing.p in
  { Dlog.mul = Fp2.mul ~p;
    (* In μ_n ⊂ F_p²  conjugation is inversion: x^p = x⁻¹ since n | p+1. *)
    inv = Fp2.conj ~p;
    one = Fp2.one;
    serialize = Fp2.serialize }

let make_dec1_table (kp : keypair) ~(max : int) : dec1_table =
  let curve = kp.pk.group.Pairing.curve in
  let base = Curve.mul curve kp.sk.q1 kp.pk.g in
  Dlog.make (curve_ops kp.pk) base ~max

let dec1 (kp : keypair) (table : dec1_table) ~(max : int) (c : c1) : int option =
  let curve = kp.pk.group.Pairing.curve in
  Dlog.solve table (Curve.mul curve kp.sk.q1 c) ~max

let make_dec2_table (kp : keypair) ~(max : int) : dec2_table =
  let p = kp.pk.group.Pairing.p in
  let base = Fp2.pow ~p kp.pk.e_gg kp.sk.q1 in
  Dlog.make (gt_ops kp.pk) base ~max

let dec2 (kp : keypair) (table : dec2_table) ~(max : int) (c : c2) : int option =
  let p = kp.pk.group.Pairing.p in
  Dlog.solve table (Fp2.pow ~p c kp.sk.q1) ~max

(* One-shot decryption helpers (build a throwaway table). *)
let dec1_once (kp : keypair) ~(max : int) (c : c1) : int option =
  dec1 kp (make_dec1_table kp ~max) ~max c

let dec2_once (kp : keypair) ~(max : int) (c : c2) : int option =
  dec2 kp (make_dec2_table kp ~max) ~max c

(* CRT plaintext channels for BGN (Hu, Martin, Sunar — ACNS'12).

   BGN decryption is a bounded discrete log, so large plaintexts are
   undecryptable. The fix the SAGMA evaluation adopts: split each value
   into residues modulo small pairwise-coprime channel moduli d_1..d_k,
   encrypt each residue separately, run the homomorphic computation
   channel-wise, decrypt each channel with a small dlog and recombine via
   the Chinese remainder theorem.

   After summing [rows] products of two residues, channel i's exponent is
   bounded by rows·(d_i−1)² (or rows·(d_i−1) when one factor is a 0/1
   indicator, as in SAGMA's unit shifts) — the caller supplies the bound
   that matches its computation. *)

module Z = Sagma_bigint.Bigint

type t = {
  moduli : int array;   (* pairwise coprime, ascending *)
  product : Z.t;        (* Π moduli: the effective plaintext capacity *)
}

let product_of moduli =
  Array.fold_left (fun acc d -> Z.mul acc (Z.of_int d)) Z.one moduli

let make (moduli : int array) : t =
  if Array.length moduli = 0 then invalid_arg "Crt_channels.make: empty";
  Array.iter (fun d -> if d < 2 then invalid_arg "Crt_channels.make: modulus < 2") moduli;
  (* Verify pairwise coprimality up front; a violation silently corrupts
     every decryption later. *)
  let k = Array.length moduli in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let g = Z.gcd (Z.of_int moduli.(i)) (Z.of_int moduli.(j)) in
      if not (Z.equal g Z.one) then invalid_arg "Crt_channels.make: moduli not coprime"
    done
  done;
  { moduli; product = product_of moduli }

(* Small primes starting just below 2^channel_bits, enough of them that
   the product covers [capacity_bits] bits of plaintext. *)
let choose ~(channel_bits : int) ~(capacity_bits : int) : t =
  if channel_bits < 2 || channel_bits > 20 then
    invalid_arg "Crt_channels.choose: channel_bits out of range";
  let is_prime x =
    let rec go d = d * d > x || (x mod d <> 0 && go (d + 1)) in
    x >= 2 && go 2
  in
  let target = Z.shift_left Z.one capacity_bits in
  let rec collect acc prod candidate =
    if Z.geq prod target then List.rev acc
    else if candidate < 2 then
      invalid_arg "Crt_channels.choose: capacity unreachable with given channel_bits"
    else if is_prime candidate then
      collect (candidate :: acc) (Z.mul prod (Z.of_int candidate)) (candidate - 1)
    else collect acc prod (candidate - 1)
  in
  let start = (1 lsl channel_bits) - 1 in
  make (Array.of_list (collect [] Z.one start))

let channels (t : t) = Array.length t.moduli

let capacity_bits (t : t) = Z.num_bits t.product - 1

(* Residue vector of a (possibly big) non-negative value. *)
let encode (t : t) (v : Z.t) : int array =
  if Z.sign v < 0 then invalid_arg "Crt_channels.encode: negative";
  Array.map (fun d -> Z.to_int_exn (Z.erem v (Z.of_int d))) t.moduli

let encode_int (t : t) (v : int) : int array = encode t (Z.of_int v)

(* Recombine channel results. Channel values may exceed their modulus
   (they are sums of residues); they are reduced here. The true value must
   be < product for the result to be exact. *)
let decode (t : t) (channel_values : int array) : Z.t =
  if Array.length channel_values <> Array.length t.moduli then
    invalid_arg "Crt_channels.decode: arity mismatch";
  let pairs =
    Array.to_list
      (Array.mapi
         (fun i v -> (Z.of_int (v mod t.moduli.(i)), Z.of_int t.moduli.(i)))
         channel_values)
  in
  Z.crt pairs

(** CRT plaintext channels for BGN (Hu, Martin, Sunar — ACNS'12).

    BGN decryption is a bounded discrete log, so large plaintexts are
    undecryptable directly. Values are split into residues modulo small
    pairwise-coprime channel moduli, the homomorphic computation runs
    channel-wise, each channel decrypts with a small dlog, and the client
    recombines via the Chinese remainder theorem (§6 of the SAGMA
    paper). *)

module Z = Sagma_bigint.Bigint

type t = {
  moduli : int array;  (** pairwise coprime *)
  product : Z.t;       (** Π moduli — the plaintext capacity *)
}

val make : int array -> t
(** @raise Invalid_argument when the moduli are not pairwise coprime. *)

val choose : channel_bits:int -> capacity_bits:int -> t
(** Primes just below [2^channel_bits], enough that the product covers
    [capacity_bits] bits of plaintext. *)

val channels : t -> int
val capacity_bits : t -> int

val encode : t -> Z.t -> int array
(** Residue vector of a non-negative value. *)

val encode_int : t -> int -> int array

val decode : t -> int array -> Z.t
(** Recombine channel results (which may exceed their modulus — they are
    reduced first). Exact when the true value is below [product]. *)

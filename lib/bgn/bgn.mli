(** The Boneh–Goh–Nissim somewhat homomorphic encryption scheme (TCC'05).

    Plaintexts live in Z_n, n = q₁q₂. Level-1 ciphertexts are points of
    the order-n curve subgroup: Enc(m) = m·g + r·h with h generating the
    order-q₁ blinding subgroup. Ciphertexts add homomorphically and admit
    {e one} multiplication via the pairing, landing in the target group
    G_T ⊆ F_p² (level 2), which is again additively homomorphic.

    Decryption raises to q₁ (killing the blinding) and solves a bounded
    discrete log — the constraint SAGMA's CRT channels
    ({!Crt_channels}) work around. *)

module Z = Sagma_bigint.Bigint
module Curve = Sagma_pairing.Curve
module Fp2 = Sagma_pairing.Fp2
module Pairing = Sagma_pairing.Pairing
module Drbg = Sagma_crypto.Drbg

type public_key = {
  group : Pairing.group;
  g : Curve.point;   (** generator of G, order n *)
  h : Curve.point;   (** generator of the order-q₁ blinding subgroup *)
  e_gg : Fp2.t;      (** ê(g, g): level-2 generator (cached) *)
  e_gh : Fp2.t;      (** ê(g, h): level-2 blinding generator (cached) *)
}

type secret_key = { q1 : Z.t; q2 : Z.t }

type keypair = { pk : public_key; sk : secret_key }

type c1 = Curve.point
(** Level-1 ciphertext. *)

type c2 = Fp2.t
(** Level-2 (post-pairing) ciphertext. *)

val n : public_key -> Z.t
(** The plaintext modulus n = q₁q₂ (public). *)

val keygen : bits:int -> Drbg.t -> keypair
(** [keygen ~bits] draws two primes of [bits/2] each. The paper's setting
    is 1024-bit n; tests and default benches use smaller moduli. *)

val random_blinding : public_key -> Drbg.t -> Z.t

(** {1 Level 1} *)

val enc1 : public_key -> Drbg.t -> Z.t -> c1
val enc1_int : public_key -> Drbg.t -> int -> c1
val add1 : public_key -> c1 -> c1 -> c1
val neg1 : public_key -> c1 -> c1

val smul1 : public_key -> Z.t -> c1 -> c1
(** Multiply the plaintext by a public scalar (the ⊗-by-plaintext used
    for SAGMA's polynomial coefficients). *)

val zero1 : c1
(** The trivial encryption of 0. *)

val rerandomize1 : public_key -> Drbg.t -> c1 -> c1

(** {1 Level 2} *)

val enc2 : public_key -> Drbg.t -> Z.t -> c2
val add2 : public_key -> c2 -> c2 -> c2
val smul2 : public_key -> Z.t -> c2 -> c2
val zero2 : c2
val rerandomize2 : public_key -> Drbg.t -> c2 -> c2

val mul : public_key -> c1 -> c1 -> c2
(** The one ciphertext–ciphertext multiplication: ê(C₁, C₂). *)

type precomp1 = Pairing.Precomp.t
(** Cached Miller-loop lines for a level-1 ciphertext used as the left
    argument of many multiplications (see {!Pairing.precompute}). *)

val precompute1 : public_key -> c1 -> precomp1

val mul_many : public_key -> (c1 * c1) list -> c2
(** [mul_many pk [(a1,b1); ...]] is Σᵢ aᵢ·bᵢ at level 2 — equal to
    folding {!mul} results with {!add2}, but computed as one product of
    pairings with a {e single} shared final exponentiation. The empty
    list yields {!zero2}. [bgn.mul] advances by the list length, exactly
    as the termwise loop would. *)

val mul_many_pre : public_key -> (precomp1 * c1) list -> c2
(** Like {!mul_many} for left arguments already precomputed — the hot
    path of [Scheme.aggregate], which pairs each encrypted value against
    every block constant of every query. *)

(** {1 Decryption}

    Tables are exposed for reuse: building one costs O(√max) group
    operations; each decryption is then O(√max) lookups. *)

type dec1_table
type dec2_table

val curve_ops : public_key -> Curve.point Dlog.ops
val gt_ops : public_key -> Fp2.t Dlog.ops

val make_dec1_table : keypair -> max:int -> dec1_table
val dec1 : keypair -> dec1_table -> max:int -> c1 -> int option
val make_dec2_table : keypair -> max:int -> dec2_table
val dec2 : keypair -> dec2_table -> max:int -> c2 -> int option

val dec1_once : keypair -> max:int -> c1 -> int option
(** One-shot decryption with a throwaway table. *)

val dec2_once : keypair -> max:int -> c2 -> int option

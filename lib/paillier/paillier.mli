(** The Paillier cryptosystem (EUROCRYPT'99): additively homomorphic
    encryption over Z_n with ciphertexts in Z_{n²}.

    Used by the §3.1/§3.2 static constructions (packed plaintexts fit the
    large message space and decryption is direct, not a discrete log) and
    by the CryptDB baseline. *)

module Z = Sagma_bigint.Bigint
module Drbg = Sagma_crypto.Drbg

type public_key = { n : Z.t; n2 : Z.t }
type secret_key = { lambda : Z.t; mu : Z.t }
type keypair = { pk : public_key; sk : secret_key }
type ciphertext = Z.t

val plaintext_bits : public_key -> int
(** Usable plaintext width (|n| − 1 bits). *)

val keygen : bits:int -> Drbg.t -> keypair

val encrypt : public_key -> Drbg.t -> Z.t -> ciphertext
val encrypt_int : public_key -> Drbg.t -> int -> ciphertext
val decrypt : keypair -> ciphertext -> Z.t

val add : public_key -> ciphertext -> ciphertext -> ciphertext
(** Homomorphic addition of plaintexts. *)

val smul : public_key -> Z.t -> ciphertext -> ciphertext
(** Multiply the plaintext by a public scalar. *)

val zero : public_key -> Drbg.t -> ciphertext
val rerandomize : public_key -> Drbg.t -> ciphertext -> ciphertext

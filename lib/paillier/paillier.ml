(* The Paillier cryptosystem (EUROCRYPT'99): additively homomorphic
   encryption over Z_n with ciphertexts in Z_{n²}.

   Used by the paper's §3.1/§3.2 static constructions (the packed shifted
   values fit Paillier's large plaintext space, and decryption is a direct
   computation, not a discrete log) and by the CryptDB baseline. *)

module Z = Sagma_bigint.Bigint
module Drbg = Sagma_crypto.Drbg

type public_key = {
  n : Z.t;       (* modulus *)
  n2 : Z.t;      (* n² *)
}

type secret_key = {
  lambda : Z.t;  (* lcm(p−1, q−1) *)
  mu : Z.t;      (* λ⁻¹ mod n *)
}

type keypair = { pk : public_key; sk : secret_key }

type ciphertext = Z.t

let plaintext_bits (pk : public_key) = Z.num_bits pk.n - 1

let keygen ~(bits : int) (drbg : Drbg.t) : keypair =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus too small";
  let rng = Drbg.rng drbg in
  let half = bits / 2 in
  let p = Z.random_prime rng ~bits:half in
  let rec distinct () =
    let q = Z.random_prime rng ~bits:(bits - half) in
    if Z.equal p q then distinct () else q
  in
  let q = distinct () in
  let n = Z.mul p q in
  let n2 = Z.mul n n in
  let p1 = Z.pred p and q1 = Z.pred q in
  let lambda = Z.div (Z.mul p1 q1) (Z.gcd p1 q1) in
  let mu = Z.invm_exn lambda n in
  { pk = { n; n2 }; sk = { lambda; mu } }

(* Enc(m) = (1+n)^m · r^n mod n², with (1+n)^m = 1 + m·n mod n². *)
let encrypt (pk : public_key) (drbg : Drbg.t) (m : Z.t) : ciphertext =
  let m = Z.erem m pk.n in
  let rec invertible () =
    let r = Z.random_below (Drbg.rng drbg) pk.n in
    if Z.equal (Z.gcd r pk.n) Z.one && not (Z.is_zero r) then r else invertible ()
  in
  let r = invertible () in
  let gm = Z.erem (Z.succ (Z.mul m pk.n)) pk.n2 in
  Z.mulm gm (Z.powm r pk.n pk.n2) pk.n2

let encrypt_int pk drbg m = encrypt pk drbg (Z.of_int m)

(* L(u) = (u − 1) / n; Dec(c) = L(c^λ mod n²)·μ mod n. *)
let decrypt (kp : keypair) (c : ciphertext) : Z.t =
  let pk = kp.pk in
  let u = Z.powm c kp.sk.lambda pk.n2 in
  let l = Z.div (Z.pred u) pk.n in
  Z.mulm l kp.sk.mu pk.n

(* Homomorphic addition of plaintexts. *)
let add (pk : public_key) (a : ciphertext) (b : ciphertext) : ciphertext =
  Z.mulm a b pk.n2

(* Multiplication of the plaintext by a (possibly large) scalar. *)
let smul (pk : public_key) (k : Z.t) (a : ciphertext) : ciphertext =
  Z.powm a (Z.erem k pk.n) pk.n2

let zero (pk : public_key) (drbg : Drbg.t) : ciphertext = encrypt pk drbg Z.zero

let rerandomize (pk : public_key) (drbg : Drbg.t) (a : ciphertext) : ciphertext =
  add pk a (zero pk drbg)

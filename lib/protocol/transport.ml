(* Length-prefixed message framing over file descriptors, plus the TCP
   serving loops used by the sagma_server binary and the CLI's remote
   commands.

   The accept loop can serve connections concurrently on a fixed-size
   domain pool ([?workers]); shared server state is the handlers'
   problem ({!Server} takes its own lock). Per-connection deadlines use
   SO_RCVTIMEO/SO_SNDTIMEO, so a stalled peer surfaces as
   [EAGAIN]/[EWOULDBLOCK] on that connection only. Above [?max_conns]
   in-flight connections, new arrivals are shed with a [Failed Busy]
   response instead of queueing without bound. *)

let max_frame = 1 lsl 30

(* Server-side default frame cap. The length header is attacker
   controlled, so the server should not honor the full 1 GiB protocol
   limit unless explicitly configured to; 64 MiB comfortably holds any
   realistic encrypted table upload. *)
let default_server_max_frame = 64 * 1024 * 1024

(* Frame bodies are read in chunks of this size, so memory committed to
   a connection grows with bytes actually received, never with the
   claimed length alone. *)
let recv_chunk = 64 * 1024

module Obs = Sagma_obs.Metrics
module Log = Sagma_obs.Log
module Pool = Sagma_pool.Pool

let m_conns = Obs.counter "transport.connections"
let m_frames_sent = Obs.counter "transport.frames_sent"
let m_bytes_sent = Obs.counter "transport.bytes_sent"
let m_frames_recv = Obs.counter "transport.frames_recv"
let m_bytes_recv = Obs.counter "transport.bytes_recv"
let m_rejected = Obs.counter "transport.rejected"
let m_accept_retries = Obs.counter "transport.accept_retries"
let g_inflight = Obs.gauge "transport.inflight"

(* Retry a syscall interrupted by a signal — unless the process is
   shutting down, in which case the signal may be the very reason to
   stop blocking. *)
let rec retry_eintr ?(stop = fun () -> false) (f : unit -> 'a) : 'a =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    if stop () then failwith "Transport: interrupted by shutdown" else retry_eintr ~stop f

let write_all ?stop (fd : Unix.file_descr) (data : string) : unit =
  let len = String.length data in
  let bytes = Bytes.unsafe_of_string data in
  let rec go off =
    if off < len then begin
      let n = retry_eintr ?stop (fun () -> Unix.write fd bytes off (len - off)) in
      go (off + n)
    end
  in
  go 0

let read_exactly ?stop (fd : Unix.file_descr) (len : int) : string =
  if len = 0 then ""
  else begin
    let chunk_len = min len recv_chunk in
    let chunk = Bytes.create chunk_len in
    let buf = Buffer.create chunk_len in
    let rec go remaining =
      if remaining > 0 then begin
        let n =
          retry_eintr ?stop (fun () -> Unix.read fd chunk 0 (min remaining chunk_len))
        in
        if n = 0 then failwith "Transport.read_exactly: peer closed";
        Buffer.add_subbytes buf chunk 0 n;
        go (remaining - n)
      end
    in
    go len;
    Buffer.contents buf
  end

(* Frame: 4-byte big-endian length, then the payload. *)
let send ?max_frame:(cap = max_frame) ?stop (fd : Unix.file_descr) (msg : string) : unit =
  let len = String.length msg in
  if len > cap then invalid_arg "Transport.send: frame too large";
  let hdr = String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff)) in
  Obs.incr m_frames_sent;
  Obs.add m_bytes_sent (4 + len);
  write_all ?stop fd (hdr ^ msg)

let recv ?max_frame:(cap = max_frame) ?stop (fd : Unix.file_descr) : string =
  let hdr = read_exactly ?stop fd 4 in
  let len = ref 0 in
  String.iter (fun c -> len := (!len lsl 8) lor Char.code c) hdr;
  if !len > cap then
    failwith (Printf.sprintf "Transport.recv: %d-byte frame exceeds the %d-byte cap" !len cap);
  Obs.incr m_frames_recv;
  Obs.add m_bytes_recv (4 + !len);
  read_exactly ?stop fd !len

(* One client request/response exchange. *)
let call_x ?max_frame ?trace (fd : Unix.file_descr) (req : Protocol.request) :
    Protocol.response * Protocol.explain option =
  send ?max_frame fd (Protocol.encode_request ?trace req);
  Protocol.decode_response_x (recv ?max_frame fd)

let call ?max_frame ?trace (fd : Unix.file_descr) (req : Protocol.request) : Protocol.response =
  fst (call_x ?max_frame ?trace fd req)

(* Serve one connection until the peer closes (or a deadline fires:
   SO_RCVTIMEO surfaces here as EAGAIN, ending the connection without
   touching any other). Send-side failures — EPIPE from a peer gone
   mid-reply, a send deadline — end this connection the same way
   instead of escaping to the accept loop. [after_request] runs once
   per handled request — the server binary hooks periodic metric dumps
   here. The [handler] is any raw-frame function — a storage server's
   [Server.handle_encoded state], a query router's
   [Router.handle_encoded router] — so the serving loops are agnostic
   to the node's role. *)
let serve_connection ?(after_request = fun () -> ()) ?max_frame ?stop
    (handler : string -> string) (fd : Unix.file_descr) : unit =
  let rec loop () =
    match recv ?max_frame ?stop fd with
    | raw ->
      (match send ?stop fd (handler raw) with
       | () ->
         after_request ();
         loop ()
       | exception (Failure _ | Unix.Unix_error _) -> ())
    | exception (Failure _ | End_of_file | Unix.Unix_error _) -> ()
  in
  loop ()

let peer_name = function
  | Unix.ADDR_INET (addr, port) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
  | Unix.ADDR_UNIX path -> path

let listen_and_serve ?(backlog = 64) ?after_request ?(workers = 0) ?(max_conns = 64)
    ?request_timeout_ms ?(max_frame = default_server_max_frame)
    ?(stop = fun () -> false) ~(port : int) (handler : string -> string) : unit =
  (* A peer that disappears mid-reply must surface as EPIPE on the
     write, handled per-connection — not as a SIGPIPE killing the whole
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let pool = Pool.create ~name:"transport" ~workers () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock backlog;
  (* In-flight bookkeeping. [conns] lets the drain path unblock reads
     that are still waiting on slow peers; closing happens exactly once,
     under the registry lock, so a drained fd can never be reused by a
     fresh accept while a handler still holds it. *)
  let inflight = Atomic.make 0 in
  let conns_lock = Mutex.create () in
  let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 16 in
  let register fd =
    Mutex.lock conns_lock;
    Hashtbl.replace conns fd ();
    Mutex.unlock conns_lock
  in
  let close_conn fd =
    Mutex.lock conns_lock;
    if Hashtbl.mem conns fd then begin
      Hashtbl.remove conns fd;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end;
    Mutex.unlock conns_lock
  in
  let shutdown_receives () =
    Mutex.lock conns_lock;
    Hashtbl.iter
      (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns;
    Mutex.unlock conns_lock
  in
  let set_deadlines fd =
    match request_timeout_ms with
    | Some t when t > 0 ->
      let secs = float_of_int t /. 1000. in
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs
       with Unix.Unix_error _ | Invalid_argument _ -> ())
    | _ -> ()
  in
  let handle_conn conn peer =
    Obs.incr m_conns;
    Obs.gauge_incr g_inflight;
    Log.info "conn.accepted" ~fields:[ Log.str "peer" peer ];
    Fun.protect
      ~finally:(fun () ->
        ignore (Atomic.fetch_and_add inflight (-1));
        Obs.gauge_decr g_inflight;
        close_conn conn;
        Log.info "conn.closed" ~fields:[ Log.str "peer" peer ])
      (fun () ->
        try serve_connection ?after_request ~max_frame ~stop handler conn with _ -> ())
  in
  (* Over the limit: answer with a structured Busy failure (framed at
     the current protocol version — the request is unread, so the
     peer's version is unknown) and close. A short send deadline keeps
     a hostile peer from parking the accept loop here. *)
  let shed conn peer =
    Obs.incr m_rejected;
    Log.warn "conn.rejected"
      ~fields:[ Log.str "peer" peer; Log.int "max_conns" max_conns ];
    (try
       (try Unix.setsockopt_float conn Unix.SO_SNDTIMEO 1.0
        with Unix.Unix_error _ | Invalid_argument _ -> ());
       send conn
         (Protocol.encode_response
            (Protocol.failed Protocol.Busy "server at its %d-connection limit" max_conns))
     with Failure _ | Unix.Unix_error _ -> ());
    try Unix.close conn with Unix.Unix_error _ -> ()
  in
  (* Accept with a short select tick so a stop request never waits on
     the next client, and with retries for the transient accept
     errors that would otherwise kill the server: EINTR/ECONNABORTED
     are immediate retries, fd or buffer exhaustion backs off briefly
     to let in-flight connections release resources. *)
  let rec accept_loop () =
    if not (stop ()) then begin
      match retry_eintr ~stop (fun () -> Unix.select [ sock ] [] [] 0.25) with
      | exception Failure _ -> ()
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ ->
        (match Unix.accept sock with
         | conn, peer_addr ->
           let peer = peer_name peer_addr in
           if Atomic.fetch_and_add inflight 1 >= max_conns then begin
             ignore (Atomic.fetch_and_add inflight (-1));
             shed conn peer
           end
           else begin
             register conn;
             set_deadlines conn;
             if Pool.workers pool = 0 then handle_conn conn peer
             else ignore (Pool.submit pool (fun () -> handle_conn conn peer))
           end;
           accept_loop ()
         | exception Unix.Unix_error ((EINTR | ECONNABORTED | EAGAIN | EWOULDBLOCK) as e, _, _)
           ->
           Obs.incr m_accept_retries;
           Log.debug "accept.retry" ~fields:[ Log.str "error" (Unix.error_message e) ];
           accept_loop ()
         | exception Unix.Unix_error ((EMFILE | ENFILE | ENOBUFS | ENOMEM) as e, _, _) ->
           Obs.incr m_accept_retries;
           Log.warn "accept.retry"
             ~fields:[ Log.str "error" (Unix.error_message e); Log.str "action" "backoff" ];
           Unix.sleepf 0.05;
           accept_loop ())
    end
  in
  accept_loop ();
  (* Drain: no new connections, unblock reads parked on slow peers
     (their handlers see EOF and finish the response in flight), then
     wait for every handler task to complete. *)
  (try Unix.close sock with Unix.Unix_error _ -> ());
  shutdown_receives ();
  Pool.shutdown pool;
  Log.info "server.drained" ~fields:[ Log.int "rejected" (Obs.value m_rejected) ]

let resolve_host (host : string) : Unix.inet_addr =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      failwith (Printf.sprintf "Transport.connect: cannot resolve host %S" host)
    | h -> h.Unix.h_addr_list.(0))

let connect ?host ~(port : int) () : Unix.file_descr =
  let addr = match host with None -> Unix.inet_addr_loopback | Some h -> resolve_host h in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match Unix.connect sock (Unix.ADDR_INET (addr, port)) with
   | () -> ()
   | exception e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  sock

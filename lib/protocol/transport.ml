(* Length-prefixed message framing over file descriptors, plus the
   blocking TCP loops used by the sagma_server binary and the CLI's
   remote commands. *)

let max_frame = 1 lsl 30

module Obs = Sagma_obs.Metrics
module Log = Sagma_obs.Log

let m_conns = Obs.counter "transport.connections"
let m_frames_sent = Obs.counter "transport.frames_sent"
let m_bytes_sent = Obs.counter "transport.bytes_sent"
let m_frames_recv = Obs.counter "transport.frames_recv"
let m_bytes_recv = Obs.counter "transport.bytes_recv"

let write_all (fd : Unix.file_descr) (data : string) : unit =
  let len = String.length data in
  let bytes = Bytes.unsafe_of_string data in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
    end
  in
  go 0

let read_exactly (fd : Unix.file_descr) (len : int) : string =
  let buf = Bytes.create len in
  let rec go off =
    if off < len then begin
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then failwith "Transport.read_exactly: peer closed";
      go (off + n)
    end
  in
  go 0;
  Bytes.unsafe_to_string buf

(* Frame: 4-byte big-endian length, then the payload. *)
let send (fd : Unix.file_descr) (msg : string) : unit =
  let len = String.length msg in
  if len > max_frame then invalid_arg "Transport.send: frame too large";
  let hdr =
    String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
  in
  Obs.incr m_frames_sent;
  Obs.add m_bytes_sent (4 + len);
  write_all fd (hdr ^ msg)

let recv (fd : Unix.file_descr) : string =
  let hdr = read_exactly fd 4 in
  let len = ref 0 in
  String.iter (fun c -> len := (!len lsl 8) lor Char.code c) hdr;
  if !len > max_frame then failwith "Transport.recv: frame too large";
  Obs.incr m_frames_recv;
  Obs.add m_bytes_recv (4 + !len);
  read_exactly fd !len

(* One client request/response exchange. *)
let call (fd : Unix.file_descr) (req : Protocol.request) : Protocol.response =
  send fd (Protocol.encode_request req);
  Protocol.decode_response (recv fd)

(* Serve one connection until the peer closes. [after_request] runs once
   per handled request — the server binary hooks periodic metric dumps
   here. *)
let serve_connection ?(after_request = fun () -> ()) (state : Server.t)
    (fd : Unix.file_descr) : unit =
  let rec loop () =
    match recv fd with
    | raw ->
      send fd (Server.handle_encoded state raw);
      after_request ();
      loop ()
    | exception (Failure _ | End_of_file | Unix.Unix_error _) -> ()
  in
  loop ()

(* Blocking accept loop; connections are served sequentially (the server
   holds mutable shared state). *)
let listen_and_serve ?(backlog = 8) ?after_request ~(port : int) (state : Server.t) : unit =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock backlog;
  let peer_name = function
    | Unix.ADDR_INET (addr, port) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
    | Unix.ADDR_UNIX path -> path
  in
  let rec accept_loop () =
    let conn, peer = Unix.accept sock in
    Obs.incr m_conns;
    Log.info "conn.accepted" ~fields:[ Log.str "peer" (peer_name peer) ];
    (try serve_connection ?after_request state conn with _ -> ());
    (try Unix.close conn with Unix.Unix_error _ -> ());
    Log.info "conn.closed" ~fields:[ Log.str "peer" (peer_name peer) ];
    accept_loop ()
  in
  accept_loop ()

let connect ~(port : int) : Unix.file_descr =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  sock

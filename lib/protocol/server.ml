(* The untrusted server's request handler.

   Deliberately key-free: the state holds only what the client uploaded
   (semantically secure ciphertexts, the SSE index, public parameters),
   and every operation is expressible from public data — aggregation is
   {!Sagma.Scheme.aggregate}, appends extend SSE postings from tokens.
   The handler is transport-agnostic; {!Transport} adds framing. *)

module Sse = Sagma_sse.Sse
module Scheme = Sagma.Scheme

type t = { tables : (string, Scheme.enc_table) Hashtbl.t }

let create () : t = { tables = Hashtbl.create 8 }

let table_names (s : t) : (string * int) list =
  Hashtbl.fold (fun name et acc -> (name, Array.length et.Scheme.rows) :: acc) s.tables []
  |> List.sort compare

let handle (s : t) (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Upload { name; table } ->
    Hashtbl.replace s.tables name table;
    Protocol.Ack
  | Protocol.List_tables -> Protocol.Tables (table_names s)
  | Protocol.Drop name ->
    if Hashtbl.mem s.tables name then begin
      Hashtbl.remove s.tables name;
      Protocol.Ack
    end
    else Protocol.Failed (Printf.sprintf "no such table %S" name)
  | Protocol.Aggregate { name; token } -> begin
    match Hashtbl.find_opt s.tables name with
    | None -> Protocol.Failed (Printf.sprintf "no such table %S" name)
    | Some et -> (
      try Protocol.Aggregates (Scheme.aggregate et token)
      with Invalid_argument msg | Failure msg -> Protocol.Failed msg)
  end
  | Protocol.Append { name; row; keywords } -> begin
    match Hashtbl.find_opt s.tables name with
    | None -> Protocol.Failed (Printf.sprintf "no such table %S" name)
    | Some et when et.Scheme.index_mode = Scheme.Oxt_conjunctive ->
      ignore (row, keywords);
      Protocol.Failed "remote appends are unsupported for OXT-indexed tables"
    | Some et -> (
      try
        let id = Array.length et.Scheme.rows in
        let index =
          List.fold_left
            (fun index tok ->
              let counter = List.length (Sse.search index tok) in
              Sse.add_with_token index tok ~counter id)
            et.Scheme.index keywords
        in
        Hashtbl.replace s.tables name
          { et with Scheme.rows = Array.append et.Scheme.rows [| row |]; index };
        Protocol.Ack
      with Invalid_argument msg | Failure msg -> Protocol.Failed msg)
  end

(* Handle a raw encoded request, never letting an exception cross the
   transport boundary. *)
let handle_encoded (s : t) (raw : string) : string =
  let response =
    try handle s (Protocol.decode_request raw) with
    | Sagma_wire.Wire.Decode_error msg -> Protocol.Failed ("malformed request: " ^ msg)
    | Invalid_argument msg | Failure msg -> Protocol.Failed msg
  in
  Protocol.encode_response response

(* The untrusted server's request handler.

   Deliberately key-free: the state holds only what the client uploaded
   (semantically secure ciphertexts, the SSE index, public parameters),
   and every operation is expressible from public data — aggregation is
   {!Sagma.Scheme.aggregate}, appends extend SSE postings from tokens.
   The handler is transport-agnostic; {!Transport} adds framing.

   A server can also be one storage node of a scatter-gather fleet
   ([?shard]): storage stays replicated (each node holds every uploaded
   row — the SSE index is PRF-opaque, so the server cannot split it),
   but compute is partitioned: aggregation only pairs the rows the node
   owns ([row mod count = index]), so a coordinator ({!Router}) can
   ⊕-merge the per-shard partials into the full answer. *)

module Sse = Sagma_sse.Sse
module Scheme = Sagma.Scheme
module Obs = Sagma_obs.Metrics
module Log = Sagma_obs.Log
module Audit = Sagma_obs.Audit
module Trace = Sagma_obs.Trace
module Pool = Sagma_pool.Pool
module Watchdog = Sagma_obs.Watchdog

let m_requests = Obs.counter "proto.requests"
let m_failed = Obs.counter "proto.requests_failed"
let m_bytes_in = Obs.counter "proto.bytes_in"
let m_bytes_out = Obs.counter "proto.bytes_out"
let h_request_ms = Obs.histogram "proto.request_ms"

(* Registry keys outlive any client's ability to drop them only if we
   let arbitrary strings in; an empty name is invisible in listings and
   a multi-MiB one is a memory-amplification vector. *)
let max_table_name_len = 1024

let validate_table_name (name : string) : string option =
  if name = "" then Some "table name must not be empty"
  else if String.length name > max_table_name_len then
    Some
      (Printf.sprintf "table name too long (%d bytes, max %d)" (String.length name)
         max_table_name_len)
  else None

(* One registered table: the immutable snapshot plus a per-token
   posting-count cache keyed by {!Sse.token_id}. Without the cache every
   append re-walks each keyword's postings ([Sse.search]) under the
   registry lock just to learn the next counter — O(postings) per
   keyword, quadratic over a stream of appends. The first append of a
   token pays one search; after that the counter is O(1). Upload
   replaces the whole entry, so the cache can never outlive its index. *)
type entry = {
  mutable table : Scheme.enc_table;
  post_counts : (string, int) Hashtbl.t;
}

(* Connection handlers may run on several pool domains at once, so the
   table registry takes a lock around every access. Aggregation — the
   expensive part — runs OUTSIDE the lock on a snapshot: [enc_table]
   values are immutable (Append replaces the whole record rather than
   mutating it), so a concurrent writer can at worst make the snapshot
   stale, never torn. [agg_pool] optionally parallelizes row work within
   each aggregation; it must be a different pool from the one running
   connections (a task awaiting futures on its own pool deadlocks). *)
type t = {
  lock : Mutex.t;
  tables : (string, entry) Hashtbl.t;
  agg_pool : Pool.t option;
  shard : (int * int) option;  (* (index, count) storage-node slice *)
  trace_sample : int;      (* trace every Nth request; 0 disables *)
  slow_query_ms : float;   (* requests over this emit a slow_query event; 0. disables *)
  started : float;         (* epoch seconds, for Stats uptime *)
  watchdog : Watchdog.t option;  (* active alerts served in v7 Health replies *)
  draining : bool Atomic.t;      (* graceful shutdown begun: Health says "draining" *)
}

let create ?agg_pool ?shard ?(trace_sample = 0) ?(slow_query_ms = 0.) ?watchdog () : t =
  (match shard with
   | Some (i, n) when n < 1 || i < 0 || i >= n ->
     invalid_arg (Printf.sprintf "Server.create: shard %d/%d out of range" i n)
   | _ -> ());
  { lock = Mutex.create (); tables = Hashtbl.create 8; agg_pool; shard; trace_sample;
    slow_query_ms; started = Unix.gettimeofday (); watchdog;
    draining = Atomic.make false }

let set_draining (s : t) (d : bool) : unit = Atomic.set s.draining d

(* The v7 health summary shared by the storage server and (with a
   per-shard block) the {!Router}: draining beats everything, any
   firing alert means degraded, a down shard likewise. *)
let health_status ~(draining : bool) ~(alerts : Watchdog.alert list)
    ~(shards : Protocol.shard_health list) : string =
  if draining then "draining"
  else if alerts <> [] || List.exists (fun sh -> not sh.Protocol.shc_reachable) shards then
    "degraded"
  else "ok"

let with_lock (s : t) (f : unit -> 'a) : 'a =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let table_names (s : t) : (string * int) list =
  with_lock s (fun () ->
      Hashtbl.fold (fun name e acc -> (name, Array.length e.table.Scheme.rows) :: acc) s.tables [])
  |> List.sort compare

let request_kind : Protocol.request -> string = function
  | Protocol.Upload _ -> "upload"
  | Protocol.Aggregate _ -> "aggregate"
  | Protocol.Append _ -> "append"
  | Protocol.List_tables -> "list-tables"
  | Protocol.Drop _ -> "drop"
  | Protocol.Stats -> "stats"
  | Protocol.Traces -> "traces"
  | Protocol.Health -> "health"

(* The v5 gc section of a Stats reply — also used by {!Router}. *)
let gc_stats_now () : Protocol.gc_stats =
  let g = Gc.quick_stat () in
  { Protocol.gs_minor_words = g.Gc.minor_words; gs_promoted_words = g.Gc.promoted_words;
    gs_major_words = g.Gc.major_words; gs_minor_collections = g.Gc.minor_collections;
    gs_major_collections = g.Gc.major_collections; gs_compactions = g.Gc.compactions;
    gs_heap_words = g.Gc.heap_words; gs_top_heap_words = g.Gc.top_heap_words }

let handle (s : t) (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Stats ->
    (* A read-only snapshot: safe to serve even while the registry is
       being written — counters are atomic, histograms lock per cell.
       The gc (v5) and topology (v6) sections are filled
       unconditionally and dropped by the encoder for older peers. *)
    Protocol.Stats_report
      { Protocol.sr_snapshot = Obs.snapshot (); sr_audit = Audit.summary ();
        sr_uptime_s = Unix.gettimeofday () -. s.started; sr_start_time = s.started;
        sr_gc = Some (gc_stats_now ());
        sr_topology =
          Some
            (match s.shard with
             | Some (i, n) ->
               { Protocol.tp_role = "shard"; tp_shard_index = i; tp_shard_count = n;
                 tp_shards = [] }
             | None ->
               { Protocol.tp_role = "single"; tp_shard_index = -1; tp_shard_count = 1;
                 tp_shards = [] }) }
  | Protocol.Traces -> Protocol.Trace_dump (Trace.requests ())
  | Protocol.Health ->
    let alerts = match s.watchdog with Some w -> Watchdog.active w | None -> [] in
    Protocol.Health_report
      { Protocol.hr_status =
          health_status ~draining:(Atomic.get s.draining) ~alerts ~shards:[];
        hr_uptime_s = Unix.gettimeofday () -. s.started; hr_alerts = alerts;
        hr_shards = [] }
  | Protocol.Upload { name; table } -> begin
    match validate_table_name name with
    | Some msg -> Protocol.failed Protocol.Bad_request "%s" msg
    | None ->
      with_lock s (fun () ->
          Hashtbl.replace s.tables name { table; post_counts = Hashtbl.create 8 });
      Protocol.Ack
  end
  | Protocol.List_tables -> Protocol.Tables (table_names s)
  | Protocol.Drop name ->
    if
      with_lock s (fun () ->
          let existed = Hashtbl.mem s.tables name in
          if existed then Hashtbl.remove s.tables name;
          existed)
    then Protocol.Ack
    else Protocol.failed Protocol.No_such_table "no such table %S" name
  | Protocol.Aggregate { name; token } -> begin
    (* Snapshot under the lock, aggregate outside it: concurrent
       requests pay for the lookup, not for each other's pairings. *)
    match with_lock s (fun () -> Hashtbl.find_opt s.tables name) with
    | None -> Protocol.failed Protocol.No_such_table "no such table %S" name
    | Some e -> (
      let et = with_lock s (fun () -> e.table) in
      (* A storage node only pairs the rows of its slice; the
         coordinator ⊕-merges the per-shard partials back into the
         full answer. *)
      let owned =
        match s.shard with
        | Some (i, n) when n > 1 -> Some (fun r -> r mod n = i)
        | _ -> None
      in
      (* The "aggregate" span mirrors Scheme.query's client-side phase
         name, so a sampled server trace reads request → aggregate →
         filter/bucket_intersection/indicator_coeffs/pairing_loop. *)
      try
        Protocol.Aggregates
          (Trace.with_span "aggregate" (fun () ->
               Scheme.aggregate ?pool:s.agg_pool ?owned et token))
      with
      | Invalid_argument msg -> Protocol.failed Protocol.Bad_request "%s" msg
      | Failure msg -> Protocol.failed Protocol.Internal_error "%s" msg)
  end
  | Protocol.Append { name; row; keywords; row_id } ->
    (* The whole read-modify-write stays under the lock so two
       concurrent appends cannot lose one row. *)
    with_lock s (fun () ->
        match Hashtbl.find_opt s.tables name with
        | None -> Protocol.failed Protocol.No_such_table "no such table %S" name
        | Some e when e.table.Scheme.index_mode = Scheme.Oxt_conjunctive ->
          ignore (row, keywords);
          Protocol.failed Protocol.Unsupported
            "remote appends are unsupported for OXT-indexed tables"
        | Some e -> (
          let et = e.table in
          let local = Array.length et.Scheme.rows in
          match row_id with
          | Some id when id <> local ->
            (* A coordinator-stamped id that is not our next position
               means this replica diverged from the fleet; refusing is
               the only answer that keeps the ownership arithmetic
               ([id mod count]) meaningful. *)
            Protocol.failed Protocol.Bad_request
              "append out of sync: coordinator row id %d, local next row %d" id local
          | _ -> (
            try
              let id = local in
              (* Each keyword's next counter comes from the cache when
                 warm; a cold token pays one [Sse.search]. The cache is
                 committed only after every [add_with_token] succeeded,
                 so a failed append cannot desynchronize it. *)
              let index, bumped =
                List.fold_left
                  (fun (index, bumped) tok ->
                    let tid = Sse.token_id tok in
                    let counter =
                      match List.assoc_opt tid bumped with
                      | Some c -> c
                      | None -> (
                        match Hashtbl.find_opt e.post_counts tid with
                        | Some c -> c
                        | None -> List.length (Sse.search index tok))
                    in
                    (Sse.add_with_token index tok ~counter id, (tid, counter + 1) :: bumped))
                  (et.Scheme.index, []) keywords
              in
              List.iter (fun (tid, c) -> Hashtbl.replace e.post_counts tid c) bumped;
              e.table <- { et with Scheme.rows = Array.append et.Scheme.rows [| row |]; index };
              Protocol.Ack
            with
            | Invalid_argument msg -> Protocol.failed Protocol.Bad_request "%s" msg
            | Failure msg -> Protocol.failed Protocol.Internal_error "%s" msg)))

(* Handle a raw encoded request, never letting an exception cross the
   transport boundary. Each request gets a fresh id shared by its log
   lines and its audit trace: the audit brackets the whole handler, so
   every index probe [Scheme.aggregate] fires lands in this request's
   trace. Generic over the actual request handler so the storage
   server ({!handle}) and the query router ({!Router.handle}) share
   the metrics/tracing/framing pipeline. *)
let pipeline ~(trace_sample : int) ~(slow_query_ms : float)
    (handle : Protocol.request -> Protocol.response) (raw : string) : string =
  Obs.incr m_requests;
  Obs.add m_bytes_in (String.length raw);
  let req_id = Log.next_request_id () in
  Audit.begin_request req_id;
  let t0 = Unix.gettimeofday () in
  let kind = ref "undecodable" in
  (* Reply in the version the peer spoke, so a v1 client can decode the
     response to its own v1 request. Until the request header has been
     decoded successfully we only know the peer claims *some* version,
     so undecodable or version-mismatched frames get a min_version reply
     — the one framing every conforming peer accepts. A v1 request can
     never yield a v2-only response (the decoder rejects v2 tags in v1
     frames), so encoding at the request's version cannot fail. *)
  let resp_version = ref Protocol.min_version in
  let rtrace : Trace.rtrace option ref = ref None in
  let response =
    Obs.observe_ms h_request_ms (fun () ->
        try
          let req_version, tc, req = Protocol.decode_request_vt raw in
          resp_version := req_version;
          kind := request_kind req;
          (* Sampling: the peer can force a trace (v4 sampling flag);
             otherwise every [trace_sample]th request is traced, and a
             configured slow-query threshold traces everything — a slow
             request can only report its span tree if it was traced from
             the start. All of it needs metrics collection on. *)
          let sampled =
            !Obs.enabled
            && ((match tc with Some { Protocol.tc_sampled = true; _ } -> true | _ -> false)
               || (trace_sample > 0 && req_id mod trace_sample = 0)
               || slow_query_ms > 0.)
          in
          if sampled then begin
            let trace_id =
              match tc with Some { Protocol.tc_id = Some id; _ } -> Some id | _ -> None
            in
            let resp, rt = Trace.with_request_full ?trace_id (fun () -> handle req) in
            rtrace := Some rt;
            resp
          end
          else handle req
        with
        | Sagma_wire.Wire.Decode_error msg ->
          Protocol.failed Protocol.Bad_request "malformed request: %s" msg
        | Protocol.Version_mismatch { expected; got } ->
          Protocol.failed Protocol.Version_unsupported
            "protocol version %d not supported (this server speaks %d)" got expected
        | Invalid_argument msg -> Protocol.failed Protocol.Bad_request "%s" msg
        | Failure msg -> Protocol.failed Protocol.Internal_error "%s" msg
        | Not_found -> Protocol.failed Protocol.Internal_error "not found"
        | Division_by_zero -> Protocol.failed Protocol.Internal_error "division by zero")
  in
  let trace = Audit.end_request () in
  (match response with Protocol.Failed _ -> Obs.incr m_failed | _ -> ());
  (* Fill the byte counts into the trace's cost block (the completed
     ring holds the same record, so exports see them too), then attach
     the EXPLAIN trailer for v4 peers. [bytes_out] must describe the
     frame that actually leaves — trailer included — but the trailer
     itself embeds the cost block, and the varint width of [bytes_out]
     depends on its value; iterate to the (immediately reached)
     fixpoint instead of reporting the trailer-less first encoding.
     Re-encoding is confined to sampled v4 requests. *)
  let encoded = Protocol.encode_response ~version:!resp_version response in
  let encoded =
    match !rtrace with
    | Some rt when !resp_version >= 4 ->
      let encode_with bytes_out =
        Trace.set_cost rt
          { rt.Trace.r_cost with Trace.bytes_in = String.length raw; bytes_out };
        Protocol.encode_response ~version:!resp_version
          ~explain:
            { Protocol.x_id = rt.Trace.r_id;
              x_timings = Trace.phase_timings rt.Trace.r_root; x_cost = rt.Trace.r_cost;
              x_gc = Some rt.Trace.r_gc }
          response
      in
      let rec fix guess attempts =
        let e = encode_with guess in
        if String.length e = guess || attempts <= 0 then e
        else fix (String.length e) (attempts - 1)
      in
      fix (String.length encoded) 4
    | Some rt ->
      Trace.set_cost rt
        { rt.Trace.r_cost with
          Trace.bytes_in = String.length raw; bytes_out = String.length encoded };
      encoded
    | None -> encoded
  in
  Obs.add m_bytes_out (String.length encoded);
  let duration_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  if Log.enabled Log.Info then begin
    let base =
      [ Log.int "req" req_id; Log.str "kind" !kind; Log.float "ms" duration_ms;
        Log.float "duration_ms" duration_ms; Log.int "bytes_in" (String.length raw);
        Log.int "bytes_out" (String.length encoded) ]
    in
    match response with
    | Protocol.Failed { code; message } ->
      Log.warn "request"
        ~fields:
          (base
          @ [ Log.str "error" (Protocol.error_code_to_string code); Log.str "message" message ])
    | _ ->
      let audit_fields =
        match trace with
        | Some t ->
          [ Log.int "audit_probes" (List.length t.Audit.t_probes);
            Log.int "audit_rows_paired" t.Audit.t_rows_paired ]
        | None -> []
      in
      Log.info "request" ~fields:(base @ audit_fields)
  end;
  if slow_query_ms > 0. && duration_ms > slow_query_ms && Log.enabled Log.Warn then begin
    let trace_fields =
      match !rtrace with
      | Some rt ->
        [ Log.str "trace_id" rt.Trace.r_id; Log.str "spans" (Trace.to_json rt.Trace.r_root) ]
        @ List.map (fun (k, v) -> Log.int ("cost_" ^ k) v) (Trace.cost_fields rt.Trace.r_cost)
        @ List.map (fun (k, v) -> Log.int ("gc_" ^ k) v) (Trace.gc_fields rt.Trace.r_gc)
      | None -> []
    in
    Log.warn "slow_query"
      ~fields:
        ([ Log.int "req" req_id; Log.str "kind" !kind; Log.float "duration_ms" duration_ms;
           Log.float "threshold_ms" slow_query_ms ]
        @ trace_fields)
  end;
  encoded

let handle_encoded (s : t) (raw : string) : string =
  pipeline ~trace_sample:s.trace_sample ~slow_query_ms:s.slow_query_ms (handle s) raw

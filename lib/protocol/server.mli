(** The untrusted server's request handler.

    Deliberately key-free: the state holds only uploaded ciphertexts and
    SSE indexes; aggregation is [Sagma.Scheme.aggregate], appends extend
    postings from tokens. Transport-agnostic. *)

module Scheme = Sagma.Scheme

type t

val create :
  ?agg_pool:Sagma_pool.Pool.t ->
  ?shard:int * int ->
  ?trace_sample:int ->
  ?slow_query_ms:float ->
  ?watchdog:Sagma_obs.Watchdog.t ->
  unit ->
  t
(** [create ()] builds an empty, thread-safe server state: request
    handlers may run concurrently (registry accesses take an internal
    lock; aggregation runs lock-free on immutable table snapshots).
    [agg_pool] parallelizes row work inside each aggregation — it MUST
    be a different pool from the one serving connections, or a
    connection task could await futures only its own pool can run.

    [shard:(i, n)] makes this a storage node of an [n]-shard
    scatter-gather fleet (see {!Router}): storage stays replicated
    (uploads and appends land on every node — the SSE index is
    PRF-opaque and cannot be split server-side), but aggregation only
    pairs the rows of slice [row mod n = i], so the fleet divides the
    pairing work and a coordinator ⊕-merges the partials. The node
    reports role ["shard"] in its v6 Stats topology.
    @raise Invalid_argument unless [0 <= i < n].

    [trace_sample] (default 0 = off) traces every Nth request:
    a sampled request runs under [Sagma_obs.Trace.with_request_full],
    lands on the completed-trace ring (served by the v4 [Traces]
    request) and carries an EXPLAIN trailer in v4 replies. A v4 peer's
    sampling flag forces a trace regardless. [slow_query_ms] (default
    0. = off) makes every request over the threshold emit a
    [slow_query] log event with its span tree and cost block — which
    requires tracing every request, so a nonzero threshold implies
    sampling them all. Both need metrics collection enabled.

    [watchdog] serves that watchdog's currently-firing alerts in v7
    [Health] replies (the caller runs the poll loop); without one the
    alert list is always empty. *)

val set_draining : t -> bool -> unit
(** Flip the v7 health status to ["draining"] (graceful shutdown has
    begun) — and back, should the drain be aborted. *)

val health_status :
  draining:bool ->
  alerts:Sagma_obs.Watchdog.alert list ->
  shards:Protocol.shard_health list ->
  string
(** The v7 status word: ["draining"] wins, then any firing alert or
    unreachable shard means ["degraded"], else ["ok"]. Shared with
    {!Router}. *)

val table_names : t -> (string * int) list

val request_kind : Protocol.request -> string
(** Stable kebab-case name of the request constructor (log field). *)

val validate_table_name : string -> string option
(** [Some message] when a table name must be rejected with
    [Bad_request] — empty, or longer than 1024 bytes (an unlistable or
    memory-amplifying registry key). Shared with {!Router}. *)

val gc_stats_now : unit -> Protocol.gc_stats
(** The process's current [Gc.quick_stat] as the v5 Stats section. *)

val pipeline :
  trace_sample:int ->
  slow_query_ms:float ->
  (Protocol.request -> Protocol.response) ->
  string ->
  string
(** The encoded-request pipeline {!handle_encoded} is built on, generic
    over the actual handler so a query router ({!Router}) shares the
    metrics, logging, audit bracketing, sampling, version-mirroring and
    EXPLAIN-trailer machinery of the storage server. *)

val handle : t -> Protocol.request -> Protocol.response

val handle_encoded : t -> string -> string
(** Decode, handle, encode; never lets an exception escape (malformed
    requests yield [Failed]). The response is framed at the request's
    protocol version, so old clients can decode replies to their own
    requests; undecodable frames get a [Protocol.min_version] reply.
    Brackets the handler with a fresh request id shared by the
    [Sagma_obs.Log] "request" event (which carries
    [duration_ms]/[bytes_out]) and the [Sagma_obs.Audit] trace (when
    those subsystems are enabled). Sampled requests (see {!create}) run
    under a [Sagma_obs.Trace] request context and attach an EXPLAIN
    trailer to v4 replies. *)

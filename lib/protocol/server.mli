(** The untrusted server's request handler.

    Deliberately key-free: the state holds only uploaded ciphertexts and
    SSE indexes; aggregation is [Sagma.Scheme.aggregate], appends extend
    postings from tokens. Transport-agnostic. *)

module Scheme = Sagma.Scheme

type t

val create : ?agg_pool:Sagma_pool.Pool.t -> unit -> t
(** [create ()] builds an empty, thread-safe server state: request
    handlers may run concurrently (registry accesses take an internal
    lock; aggregation runs lock-free on immutable table snapshots).
    [agg_pool] parallelizes row work inside each aggregation — it MUST
    be a different pool from the one serving connections, or a
    connection task could await futures only its own pool can run. *)

val table_names : t -> (string * int) list

val request_kind : Protocol.request -> string
(** Stable kebab-case name of the request constructor (log field). *)

val handle : t -> Protocol.request -> Protocol.response

val handle_encoded : t -> string -> string
(** Decode, handle, encode; never lets an exception escape (malformed
    requests yield [Failed]). The response is framed at the request's
    protocol version, so old clients can decode replies to their own
    requests; undecodable frames get a [Protocol.min_version] reply.
    Brackets the handler with a fresh request id shared by the
    [Sagma_obs.Log] "request" event and the [Sagma_obs.Audit] trace
    (when those subsystems are enabled). *)

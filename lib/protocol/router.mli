(** The query router (coordinator) of a scatter-gather deployment.

    Speaks the same wire protocol as a storage server but owns no rows:
    [Aggregate] fans out to every shard concurrently (over
    [Sagma_pool]), each shard — a [Server] created with [?shard] —
    pairs only the rows it owns, and the per-bucket partial sums come
    back ⊕-mergeable ([Sagma.Scheme.merge_agg_results], public key
    only). The router NEVER decrypts; the client pays one decrypt, same
    as against a single server, and receives bytes identical to the
    single-server answer.

    [Upload]/[Append] fan to every shard (storage is replicated — the
    SSE index is PRF-opaque and cannot be split server-side); appends
    are stamped with the coordinator's global row id (v6) so replicas
    stay aligned and the compute owner [row_id mod count] is stable.

    Fault handling: any unreachable, timed-out or failing shard turns
    the reply into [Failed] naming that shard, within the per-call
    deadline. Version-mixed fleets work: the router caches each shard's
    accepted protocol version and steps down on
    [Failed Version_unsupported] (a v5 shard simply never sees v6-only
    constructs).

    Tracing: when the router's request is sampled, shard calls carry
    the router's trace id as their v4 trace context, and shard EXPLAIN
    timings are grafted back under the per-shard spans — the
    distributed request renders as one tree:
    request → fanout → shard:N → remote:aggregate. *)

type t

val create :
  ?deadline_ms:int ->
  ?fanout_workers:int ->
  ?trace_sample:int ->
  ?slow_query_ms:float ->
  string list ->
  t
(** [create endpoints] builds a router over the given shard endpoints
    ("host:port"; a bare port means loopback). [deadline_ms] (default
    5000) bounds each shard call's reads and writes, so a dead shard
    yields a prompt [Failed] instead of a hang; 0 disables.
    [fanout_workers] sizes the internal fan-out pool (default
    [min shards 8]) — it is always distinct from any connection-serving
    pool, as required by [Sagma_pool]. [trace_sample]/[slow_query_ms]
    as in [Server.create].
    @raise Invalid_argument on an empty or unparsable endpoint list. *)

val shutdown : t -> unit
(** Shut the fan-out pool down (idempotent via [Sagma_pool]). *)

val topology : t -> Protocol.topology
(** The ["coordinator"] topology this router reports in v6 Stats. *)

val handle : t -> Protocol.request -> Protocol.response

val handle_encoded : t -> string -> string
(** [Server.pipeline] over {!handle}: same metrics, logging, audit
    bracketing, sampling and version-mirrored framing as a storage
    server's [Server.handle_encoded]. *)

(** The query router (coordinator) of a scatter-gather deployment.

    Speaks the same wire protocol as a storage server but owns no rows:
    [Aggregate] fans out to every shard concurrently (over
    [Sagma_pool]), each shard — a [Server] created with [?shard] —
    pairs only the rows it owns, and the per-bucket partial sums come
    back ⊕-mergeable ([Sagma.Scheme.merge_agg_results], public key
    only). The router NEVER decrypts; the client pays one decrypt, same
    as against a single server, and receives bytes identical to the
    single-server answer.

    [Upload]/[Append] fan to every shard (storage is replicated — the
    SSE index is PRF-opaque and cannot be split server-side); appends
    are stamped with the coordinator's global row id (v6) so replicas
    stay aligned and the compute owner [row_id mod count] is stable.

    Fault handling: any unreachable, timed-out or failing shard turns
    the reply into [Failed] naming that shard, within the per-call
    deadline. Version-mixed fleets work: the router caches each shard's
    accepted protocol version and steps down on
    [Failed Version_unsupported] (a v5 shard simply never sees v6-only
    constructs).

    Tracing: when the router's request is sampled, shard calls carry
    the router's trace id as their v4 trace context, and shard EXPLAIN
    timings are grafted back under the per-shard spans — the
    distributed request renders as one tree:
    request → fanout → shard:N → remote:aggregate.

    Fleet health (v7): with [?probe_interval_ms] set, a background
    prober maintains per-shard reachability state (up/down since,
    failure streak, EWMA RTT) served in [Health_report], exported as
    [router.shard_up]{shard="..."} gauges, and used to fast-fail
    fan-out calls to known-down shards until a probe sees them recover.
    The Stats reply federates: the coordinator's own snapshot is merged
    with every reachable shard's into fleet aggregates, with each
    shard's series riding along labeled {shard="i"}. *)

type t

val create :
  ?deadline_ms:int ->
  ?fanout_workers:int ->
  ?trace_sample:int ->
  ?slow_query_ms:float ->
  ?probe_interval_ms:int ->
  ?watchdog:Sagma_obs.Watchdog.t ->
  string list ->
  t
(** [create endpoints] builds a router over the given shard endpoints
    ("host:port"; a bare port means loopback). [deadline_ms] (default
    5000) bounds each shard call's reads and writes, so a dead shard
    yields a prompt [Failed] instead of a hang; 0 disables.
    [fanout_workers] sizes the internal fan-out pool (default
    [min shards 8]) — it is always distinct from any connection-serving
    pool, as required by [Sagma_pool]. [trace_sample]/[slow_query_ms]
    as in [Server.create].

    [probe_interval_ms] (default 0 = off) enables background health
    probing at that period — call {!start_probes} to actually start the
    loop — and with it the fast-fail of calls to known-down shards.
    [watchdog] serves that watchdog's firing alerts in v7 [Health]
    replies (the caller runs the poll loop, feeding it
    {!down_count}).
    @raise Invalid_argument on an empty or unparsable endpoint list. *)

val start_probes : t -> unit
(** Spawn the background probe domain (a no-op when
    [probe_interval_ms] is 0 or the loop already runs). Each round
    probes every shard on a small dedicated pool — [Health] once a
    shard is known to speak v7, [List_tables] for older peers — and
    updates the per-shard state. Stopped by {!shutdown}. *)

val shutdown : t -> unit
(** Stop the probe loop (if running) and shut the pools down
    (idempotent via [Sagma_pool]). *)

val set_draining : t -> bool -> unit
(** Flip the v7 health status to ["draining"] — and back. *)

val shard_health : t -> Protocol.shard_health list
(** The per-shard block a v7 [Health_report] carries, one entry per
    shard in fan-out order. *)

val down_count : t -> int
(** How many shards are currently marked unreachable — the watchdog's
    [Shards_down] signal. *)

val topology : t -> Protocol.topology
(** The ["coordinator"] topology this router reports in v6 Stats. *)

val handle : t -> Protocol.request -> Protocol.response

val handle_encoded : t -> string -> string
(** [Server.pipeline] over {!handle}: same metrics, logging, audit
    bracketing, sampling and version-mirrored framing as a storage
    server's [Server.handle_encoded]. *)

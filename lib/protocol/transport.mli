(** Length-prefixed message framing over file descriptors, plus blocking
    TCP loops for the sagma_server binary and the CLI's remote
    commands. *)

val max_frame : int

val send : Unix.file_descr -> string -> unit
(** One frame: 4-byte big-endian length, then the payload. *)

val recv : Unix.file_descr -> string
(** @raise Failure when the peer closes mid-frame or the frame is
    oversized. *)

val call : Unix.file_descr -> Protocol.request -> Protocol.response
(** One request/response exchange. *)

val serve_connection :
  ?after_request:(unit -> unit) -> Server.t -> Unix.file_descr -> unit
(** Serve one connection until the peer closes. [after_request] runs
    after each handled request (e.g. to dump metrics periodically). *)

val listen_and_serve :
  ?backlog:int -> ?after_request:(unit -> unit) -> port:int -> Server.t -> unit
(** Blocking accept loop on localhost; connections served
    sequentially. *)

val connect : port:int -> Unix.file_descr

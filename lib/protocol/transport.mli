(** Length-prefixed message framing over file descriptors, plus the TCP
    serving loops for the sagma_server binary and the CLI's remote
    commands.

    All blocking reads and writes retry [EINTR] (unless [?stop] says the
    process is shutting down), and frame bodies are read in bounded
    chunks so memory committed to a connection tracks bytes actually
    received, never the attacker-controlled length header alone. *)

val max_frame : int
(** Hard protocol-level frame cap (1 GiB) — the largest [?max_frame]
    that makes sense anywhere, and the client-side default. *)

val default_server_max_frame : int
(** Server-side default frame cap (64 MiB): the length header is
    peer-controlled, so servers only honor larger frames when
    explicitly configured to. *)

val send : ?max_frame:int -> ?stop:(unit -> bool) -> Unix.file_descr -> string -> unit
(** One frame: 4-byte big-endian length, then the payload.
    @raise Invalid_argument if the message exceeds [?max_frame]
    (default {!max_frame}). *)

val recv : ?max_frame:int -> ?stop:(unit -> bool) -> Unix.file_descr -> string
(** @raise Failure when the peer closes mid-frame, the claimed length
    exceeds [?max_frame] (default {!max_frame}; checked before reading
    or buffering any payload), or [?stop] turns true during an
    interrupted read. *)

val call :
  ?max_frame:int -> ?trace:Protocol.trace_ctx -> Unix.file_descr -> Protocol.request ->
  Protocol.response
(** One request/response exchange. [?trace] attaches a v4 trace context
    to the request (id and/or sampling flag). *)

val call_x :
  ?max_frame:int -> ?trace:Protocol.trace_ctx -> Unix.file_descr -> Protocol.request ->
  Protocol.response * Protocol.explain option
(** Like {!call} but also returns the v4 EXPLAIN trailer, present when
    the server traced the request. *)

val serve_connection :
  ?after_request:(unit -> unit) ->
  ?max_frame:int ->
  ?stop:(unit -> bool) ->
  (string -> string) ->
  Unix.file_descr ->
  unit
(** Serve one connection until the peer closes, a read/write deadline
    set on the fd fires, or a send fails (e.g. [EPIPE] from a peer gone
    mid-reply) — never letting an I/O error escape. [after_request]
    runs after each handled request (e.g. to dump metrics
    periodically). The handler maps one raw request frame to one raw
    response frame — [Server.handle_encoded state] for a storage node,
    [Router.handle_encoded router] for a coordinator — so the serving
    loops are agnostic to the node's role. *)

val listen_and_serve :
  ?backlog:int ->
  ?after_request:(unit -> unit) ->
  ?workers:int ->
  ?max_conns:int ->
  ?request_timeout_ms:int ->
  ?max_frame:int ->
  ?stop:(unit -> bool) ->
  port:int ->
  (string -> string) ->
  unit
(** Accept loop on localhost, serving the given raw-frame handler (see
    {!serve_connection}). With [?workers = 0] (the default)
    connections are served sequentially on the calling domain; with
    [?workers = n > 0] each connection becomes a task on an [n]-domain
    pool, so slow clients no longer block fast ones. Ignores SIGPIPE
    process-wide and retries transient accept errors
    ([EINTR]/[ECONNABORTED]; short backoff on fd exhaustion).

    [?max_conns] (default 64) caps in-flight connections: excess
    arrivals get a current-version [Failed Busy] response and are
    closed, counted by [transport.rejected]. [?request_timeout_ms] sets
    SO_RCVTIMEO/SO_SNDTIMEO on every accepted fd — a connection idle or
    stalled past the deadline is dropped without touching the others
    (0 disables). [?max_frame] defaults to
    {!default_server_max_frame}.

    [?stop] is polled a few times per second; once true the loop stops
    accepting, unblocks reads parked on slow peers, drains in-flight
    handlers, and returns — the graceful-shutdown path for
    SIGINT/SIGTERM. Gauges/counters: [transport.inflight],
    [transport.rejected], [transport.accept_retries], plus the pool's
    [pool.tasks]/[pool.queue_depth]. *)

val connect : ?host:string -> port:int -> unit -> Unix.file_descr
(** TCP connection to [host:port] (default loopback). [?host] accepts a
    dotted quad or a resolvable name; @raise Failure when it resolves
    to nothing. *)

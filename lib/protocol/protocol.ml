(* The client/server protocol: message types and their wire codecs.

   The deployment model of the paper — a thin trusted client and an
   untrusted storage/compute server — made concrete: the client uploads
   encrypted tables, sends grouping tokens, and receives encrypted
   aggregates it decrypts locally. The server side (see {!Server}) only
   ever calls public-parameter operations.

   Framing is left to {!Transport}; this module encodes single messages.

   Every message starts with a 2-byte magic ("SG") and a version byte,
   so mismatched peers fail loudly instead of misparsing ciphertext
   payloads: bad magic is a {!Sagma_wire.Wire.Decode_error} (not a SAGMA
   frame at all), while a good magic with an unknown version raises the
   typed {!Version_mismatch}.

   Version history: v1 carried requests 0–4 (Upload/Aggregate/Append/
   List_tables/Drop) and responses 0–3; v2 adds the Stats request and
   the StatsReport response; v3 adds the Busy error code (load shedding
   under a connection limit) and a gauges section in StatsReport; v4
   adds an optional trace context after every request header (trace id +
   sampling flag), an optional EXPLAIN trailer after every response
   payload (per-phase timings + cost block), the Traces request with its
   TraceDump response, and uptime/start-time fields in StatsReport; v5
   adds resource telemetry: an optional gc section in StatsReport
   (process-lifetime GC stats and heap size), an optional gc
   differential in the EXPLAIN trailer, and a GC/allocation summary on
   every dumped trace; v6 adds scatter-gather sharding: an optional
   topology section in StatsReport (node role, shard index/count,
   coordinator shard endpoints) and an optional explicit row id on
   Append so a coordinator can stamp the global row position (and hence
   the owning shard) when fanning an append across replicas; v7 adds
   fleet health: a Health request with its HealthReport response —
   node status (ok/degraded/draining), uptime, the watchdog's active
   alerts, and on coordinators a per-shard block (reachability,
   consecutive probe failures, last error, negotiated version, EWMA
   probe RTT). Each older frame is a valid newer frame with a different
   version byte, so the decoders accept every supported version and
   only reject tags (and error codes, and trailers) the claimed version
   does not define. *)

module W = Sagma_wire.Wire
module Sse = Sagma_sse.Sse
module Scheme = Sagma.Scheme
module Serialize = Sagma.Serialize
module Metrics = Sagma_obs.Metrics
module Audit = Sagma_obs.Audit
module Trace = Sagma_obs.Trace
module Watchdog = Sagma_obs.Watchdog

let magic = "SG"
let version = 7
let min_version = 1

exception Version_mismatch of { expected : int; got : int }

let () =
  Printexc.register_printer (function
    | Version_mismatch { expected; got } ->
      Some (Printf.sprintf "Sagma_protocol.Protocol.Version_mismatch (expected %d, got %d)"
              expected got)
    | _ -> None)

let put_header ?version:(v = version) (s : W.sink) : unit =
  if v < min_version || v > version then
    invalid_arg
      (Printf.sprintf "Protocol.put_header: version %d outside supported range %d..%d" v
         min_version version);
  W.put_u8 s (Char.code magic.[0]);
  W.put_u8 s (Char.code magic.[1]);
  W.put_u8 s v

(* Returns the frame's version so tag dispatch can reject constructs the
   claimed version does not define. *)
let get_header (s : W.source) : int =
  let m0 = W.get_u8 s in
  let m1 = W.get_u8 s in
  if m0 <> Char.code magic.[0] || m1 <> Char.code magic.[1] then
    W.fail "bad magic 0x%02x%02x (not a SAGMA frame)" m0 m1;
  let v = W.get_u8 s in
  if v < min_version || v > version then raise (Version_mismatch { expected = version; got = v });
  v

(* Structured failure codes, so clients can react programmatically
   instead of string-matching messages. *)
type error_code =
  | No_such_table
  | Bad_request          (* undecodable or semantically invalid request *)
  | Unsupported          (* recognized but deliberately not implemented *)
  | Version_unsupported  (* peer spoke a different protocol version *)
  | Internal_error
  | Busy                 (* v3: server at its connection limit, retry later *)

let error_code_to_string = function
  | No_such_table -> "no-such-table"
  | Bad_request -> "bad-request"
  | Unsupported -> "unsupported"
  | Version_unsupported -> "version-unsupported"
  | Internal_error -> "internal-error"
  | Busy -> "busy"

let put_error_code ~(version : int) (s : W.sink) (c : error_code) : unit =
  W.put_u8 s
    (match c with
     | No_such_table -> 0
     | Bad_request -> 1
     | Unsupported -> 2
     | Version_unsupported -> 3
     | Internal_error -> 4
     | Busy ->
       if version < 3 then
         invalid_arg "Protocol.put_error_code: Busy needs protocol version >= 3";
       5)

let get_error_code ~(version : int) (s : W.source) : error_code =
  match W.get_u8 s with
  | 0 -> No_such_table
  | 1 -> Bad_request
  | 2 -> Unsupported
  | 3 -> Version_unsupported
  | 4 -> Internal_error
  | 5 when version >= 3 -> Busy
  | v -> W.fail "bad error code %d for protocol version %d" v version

type request =
  | Upload of { name : string; table : Scheme.enc_table }
      (** Store an encrypted table under [name] (replaces silently). *)
  | Aggregate of { name : string; token : Scheme.token }
      (** Run AggGrpBy (Algorithm 5) over table [name]. *)
  | Append of {
      name : string;
      row : Scheme.enc_row;
      keywords : Sse.token list;
      row_id : int option;
          (** v6: the row's global position, stamped by a coordinator
              fanning the append across shard replicas so every replica
              agrees on the id (and hence on the owning shard,
              [row_id mod shard_count]). [None] — every direct client
              append — means "next local position". Dropped from
              encodings below v6. *)
    }
      (** Append one encrypted row; the server extends the SSE postings of
          each keyword token itself (leaking those keywords' identities —
          the usual dynamic-SSE update leakage). *)
  | List_tables
  | Drop of string
  | Stats
      (** v2: fetch the server's metrics snapshot and audit summary. *)
  | Traces
      (** v4: fetch the server's completed request-trace ring. *)
  | Health
      (** v7: fetch the node's health — status, uptime, active alerts,
          and (on a coordinator) the per-shard probe state. *)

(* v4: a request may carry a trace context right after the header — a
   client-supplied id to correlate across systems and a sampling flag
   forcing the server to trace this request. *)
type trace_ctx = { tc_id : string option; tc_sampled : bool }

(* v4: the EXPLAIN block a traced request's response carries — the trace
   id, per-phase wall-clock timings from the span tree, and the cost
   block of request-scoped counter deltas. v5 adds the per-request GC
   differential ([None] when decoded from a v4 frame). *)
type explain = {
  x_id : string;
  x_timings : (string * float) list;
  x_cost : Trace.cost;
  x_gc : Trace.gc_delta option;  (* v5 *)
}

(* v5: process-lifetime GC statistics in a StatsReport — the server's
   [Gc.quick_stat] at reply time, word counts as floats because they
   are monotone process totals. *)
type gc_stats = {
  gs_minor_words : float;
  gs_promoted_words : float;
  gs_major_words : float;
  gs_minor_collections : int;
  gs_major_collections : int;
  gs_compactions : int;
  gs_heap_words : int;
  gs_top_heap_words : int;
}

(* v6: the node's place in a scatter-gather deployment, carried in a
   StatsReport so operators (and the CLI) can see the cluster shape from
   any node. A standalone server reports ["single"], a storage node
   ["shard"] with its index/count, a query router ["coordinator"] with
   the endpoints it fans out to. *)
type topology = {
  tp_role : string;         (* "single" | "shard" | "coordinator" *)
  tp_shard_index : int;     (* this node's slice, -1 for non-shards *)
  tp_shard_count : int;     (* fleet size; 1 for a standalone server *)
  tp_shards : string list;  (* coordinator only: "host:port" endpoints *)
}

type stats_report = {
  sr_snapshot : Sagma_obs.Metrics.snapshot;
  sr_audit : Sagma_obs.Audit.summary;
  sr_uptime_s : float;     (* v4; 0. when decoded from an older frame *)
  sr_start_time : float;   (* v4; epoch seconds, 0. from an older frame *)
  sr_gc : gc_stats option; (* v5; [None] from an older frame *)
  sr_topology : topology option; (* v6; [None] from an older frame *)
}

(* v7: one shard's health as the coordinator's prober sees it. The
   block carries only reachability and timing data — nothing the §4.2
   leakage function does not already license. *)
type shard_health = {
  shc_index : int;           (* shard slot in the fan-out order *)
  shc_endpoint : string;     (* "host:port" *)
  shc_reachable : bool;
  shc_since : float;         (* epoch seconds the shard has been up (or down) since *)
  shc_failures : int;        (* consecutive probe/call failures, 0 when healthy *)
  shc_last_error : string;   (* "" when none recorded *)
  shc_version : int;         (* negotiated wire version from the downgrade ladder *)
  shc_rtt_ms : float;        (* EWMA probe round-trip, 0. before the first success *)
}

(* v7: the answer to Health. [hr_shards] is empty on single servers and
   storage shards; a coordinator reports one entry per shard. *)
type health_report = {
  hr_status : string;        (* "ok" | "degraded" | "draining" *)
  hr_uptime_s : float;
  hr_alerts : Watchdog.alert list;  (* the watchdog's currently-firing alerts *)
  hr_shards : shard_health list;
}

type response =
  | Ack
  | Tables of (string * int) list  (** table name, row count *)
  | Aggregates of Scheme.agg_result
  | Failed of { code : error_code; message : string }
  | Stats_report of stats_report  (** v2: answer to {!Stats} *)
  | Trace_dump of Trace.rtrace list  (** v4: answer to {!Traces} *)
  | Health_report of health_report  (** v7: answer to {!Health} *)

let failed code fmt = Printf.ksprintf (fun message -> Failed { code; message }) fmt

(* --- codecs ------------------------------------------------------------------ *)

let put_hist_stats (s : W.sink) (h : Metrics.hist_stats) : unit =
  W.put_int s h.Metrics.h_count;
  W.put_f64 s h.Metrics.h_sum;
  W.put_f64 s h.Metrics.h_min;
  W.put_f64 s h.Metrics.h_max;
  W.put_list s
    (fun s (bound, cum) ->
      W.put_f64 s bound;
      W.put_int s cum)
    (Array.to_list h.Metrics.h_buckets);
  W.put_f64 s h.Metrics.h_p50;
  W.put_f64 s h.Metrics.h_p95;
  W.put_f64 s h.Metrics.h_p99

let get_hist_stats (s : W.source) : Metrics.hist_stats =
  let h_count = W.get_int s in
  let h_sum = W.get_f64 s in
  let h_min = W.get_f64 s in
  let h_max = W.get_f64 s in
  let h_buckets =
    Array.of_list
      (W.get_list s (fun s ->
           let bound = W.get_f64 s in
           let cum = W.get_int s in
           (bound, cum)))
  in
  let h_p50 = W.get_f64 s in
  let h_p95 = W.get_f64 s in
  let h_p99 = W.get_f64 s in
  { Metrics.h_count; h_sum; h_min; h_max; h_buckets; h_p50; h_p95; h_p99 }

(* --- v4 tracing codecs ---------------------------------------------------- *)

let put_trace_ctx (s : W.sink) (tc : trace_ctx) : unit =
  W.put_option s (fun s id -> W.put_bytes s id) tc.tc_id;
  W.put_bool s tc.tc_sampled

let get_trace_ctx (s : W.source) : trace_ctx =
  let tc_id = W.get_option s W.get_bytes in
  let tc_sampled = W.get_bool s in
  { tc_id; tc_sampled }

let put_cost (s : W.sink) (c : Trace.cost) : unit =
  List.iter (fun (_, v) -> W.put_int s v) (Trace.cost_fields c)

let get_cost (s : W.source) : Trace.cost =
  let pairings = W.get_int s in
  let miller_steps = W.get_int s in
  let bgn_mul = W.get_int s in
  let dlog_solves = W.get_int s in
  let dlog_giant_steps = W.get_int s in
  let sse_postings = W.get_int s in
  let agg_rows = W.get_int s in
  let agg_buckets = W.get_int s in
  let bytes_in = W.get_int s in
  let bytes_out = W.get_int s in
  { Trace.pairings; miller_steps; bgn_mul; dlog_solves; dlog_giant_steps; sse_postings;
    agg_rows; agg_buckets; bytes_in; bytes_out }

(* v5 resource codecs: the per-request GC differential (explain
   trailer, trace dumps) and the process-lifetime GC stats (Stats
   report). *)

let put_gc_delta (s : W.sink) (g : Trace.gc_delta) : unit =
  List.iter (fun (_, v) -> W.put_int s v) (Trace.gc_fields g)

let get_gc_delta (s : W.source) : Trace.gc_delta =
  let gc_minor_words = W.get_int s in
  let gc_promoted_words = W.get_int s in
  let gc_major_words = W.get_int s in
  let gc_minor_collections = W.get_int s in
  let gc_major_collections = W.get_int s in
  let gc_heap_words = W.get_int s in
  let gc_heap_growth = W.get_int s in
  { Trace.gc_minor_words; gc_promoted_words; gc_major_words; gc_minor_collections;
    gc_major_collections; gc_heap_words; gc_heap_growth }

let put_gc_stats (s : W.sink) (g : gc_stats) : unit =
  W.put_f64 s g.gs_minor_words;
  W.put_f64 s g.gs_promoted_words;
  W.put_f64 s g.gs_major_words;
  W.put_int s g.gs_minor_collections;
  W.put_int s g.gs_major_collections;
  W.put_int s g.gs_compactions;
  W.put_int s g.gs_heap_words;
  W.put_int s g.gs_top_heap_words

(* v6 topology codecs (StatsReport section). *)

let put_topology (s : W.sink) (t : topology) : unit =
  W.put_bytes s t.tp_role;
  W.put_int s t.tp_shard_index;
  W.put_int s t.tp_shard_count;
  W.put_list s W.put_bytes t.tp_shards

let get_topology (s : W.source) : topology =
  let tp_role = W.get_bytes s in
  let tp_shard_index = W.get_int s in
  let tp_shard_count = W.get_int s in
  let tp_shards = W.get_list s W.get_bytes in
  { tp_role; tp_shard_index; tp_shard_count; tp_shards }

let get_gc_stats (s : W.source) : gc_stats =
  let gs_minor_words = W.get_f64 s in
  let gs_promoted_words = W.get_f64 s in
  let gs_major_words = W.get_f64 s in
  let gs_minor_collections = W.get_int s in
  let gs_major_collections = W.get_int s in
  let gs_compactions = W.get_int s in
  let gs_heap_words = W.get_int s in
  let gs_top_heap_words = W.get_int s in
  { gs_minor_words; gs_promoted_words; gs_major_words; gs_minor_collections;
    gs_major_collections; gs_compactions; gs_heap_words; gs_top_heap_words }

(* The gc differential travels only in v5 explain trailers: encoding at
   v4 drops it, decoding a v4 frame yields [None]. *)
let put_explain ~(version : int) (s : W.sink) (x : explain) : unit =
  W.put_bytes s x.x_id;
  W.put_list s
    (fun s (name, ms) ->
      W.put_bytes s name;
      W.put_f64 s ms)
    x.x_timings;
  put_cost s x.x_cost;
  if version >= 5 then W.put_option s put_gc_delta x.x_gc

let get_explain ~(version : int) (s : W.source) : explain =
  let x_id = W.get_bytes s in
  let x_timings =
    W.get_list s (fun s ->
        let name = W.get_bytes s in
        let ms = W.get_f64 s in
        (name, ms))
  in
  let x_cost = get_cost s in
  let x_gc = if version >= 5 then W.get_option s get_gc_delta else None in
  { x_id; x_timings; x_cost; x_gc }

let rec put_span (s : W.sink) (sp : Trace.span) : unit =
  W.put_bytes s sp.Trace.name;
  W.put_f64 s sp.Trace.t0;
  W.put_f64 s sp.Trace.ms;
  W.put_list s put_span sp.Trace.children

(* A hostile frame could nest spans arbitrarily deep and overflow the
   decoder's stack; real trees are a handful of levels. *)
let max_span_depth = 64

let rec get_span ~(depth : int) (s : W.source) : Trace.span =
  if depth > max_span_depth then W.fail "span tree deeper than %d levels" max_span_depth;
  let name = W.get_bytes s in
  let t0 = W.get_f64 s in
  let ms = W.get_f64 s in
  let children = W.get_list s (get_span ~depth:(depth + 1)) in
  { Trace.name; t0; ms; children }

(* Dumped traces carry their GC differential and allocation table only
   in v5 frames; a v4 peer gets the v4 shape and a v4 frame decodes to
   zero/empty resource fields. *)
let put_rtrace ~(version : int) (s : W.sink) (rt : Trace.rtrace) : unit =
  W.put_bytes s rt.Trace.r_id;
  W.put_f64 s rt.Trace.r_start;
  put_span s rt.Trace.r_root;
  put_cost s rt.Trace.r_cost;
  if version >= 5 then begin
    put_gc_delta s rt.Trace.r_gc;
    W.put_list s
      (fun s (span, words) ->
        W.put_bytes s span;
        W.put_int s words)
      rt.Trace.r_alloc
  end

let get_rtrace ~(version : int) (s : W.source) : Trace.rtrace =
  let r_id = W.get_bytes s in
  let r_start = W.get_f64 s in
  let r_root = get_span ~depth:0 s in
  let r_cost = get_cost s in
  let r_gc = if version >= 5 then get_gc_delta s else Trace.zero_gc in
  let r_alloc =
    if version >= 5 then
      W.get_list s (fun s ->
          let span = W.get_bytes s in
          let words = W.get_int s in
          (span, words))
    else []
  in
  { Trace.r_id; r_start; r_root; r_cost; r_gc; r_alloc }

(* A v2 report has no gauges section: encoding at v2 drops the gauges
   (the only consumers of v2 frames predate them), decoding a v2 frame
   yields [gauges = []]. Likewise the v4 uptime/start-time fields are
   dropped from older encodings and decode to 0, and the v5 gc section
   is dropped from older encodings and decodes to [None]. *)
let put_stats_report ~(version : int) (s : W.sink) (r : stats_report) : unit =
  W.put_list s
    (fun s (name, v) ->
      W.put_bytes s name;
      W.put_int s v)
    r.sr_snapshot.Metrics.counters;
  if version >= 3 then
    W.put_list s
      (fun s (name, v) ->
        W.put_bytes s name;
        W.put_int s v)
      r.sr_snapshot.Metrics.gauges;
  W.put_list s
    (fun s (name, h) ->
      W.put_bytes s name;
      put_hist_stats s h)
    r.sr_snapshot.Metrics.histograms;
  W.put_int s r.sr_audit.Audit.s_requests;
  W.put_int s r.sr_audit.Audit.s_probes;
  W.put_int s r.sr_audit.Audit.s_checks_run;
  W.put_int s r.sr_audit.Audit.s_check_failures;
  if version >= 4 then begin
    W.put_f64 s r.sr_uptime_s;
    W.put_f64 s r.sr_start_time
  end;
  if version >= 5 then W.put_option s put_gc_stats r.sr_gc;
  if version >= 6 then W.put_option s put_topology r.sr_topology

let get_stats_report ~(version : int) (s : W.source) : stats_report =
  let counters =
    W.get_list s (fun s ->
        let name = W.get_bytes s in
        let v = W.get_int s in
        (name, v))
  in
  let gauges =
    if version < 3 then []
    else
      W.get_list s (fun s ->
          let name = W.get_bytes s in
          let v = W.get_int s in
          (name, v))
  in
  let histograms =
    W.get_list s (fun s ->
        let name = W.get_bytes s in
        let h = get_hist_stats s in
        (name, h))
  in
  let s_requests = W.get_int s in
  let s_probes = W.get_int s in
  let s_checks_run = W.get_int s in
  let s_check_failures = W.get_int s in
  let sr_uptime_s = if version >= 4 then W.get_f64 s else 0. in
  let sr_start_time = if version >= 4 then W.get_f64 s else 0. in
  let sr_gc = if version >= 5 then W.get_option s get_gc_stats else None in
  let sr_topology = if version >= 6 then W.get_option s get_topology else None in
  { sr_snapshot = { Metrics.counters; gauges; histograms };
    sr_audit = { Audit.s_requests; s_probes; s_checks_run; s_check_failures };
    sr_uptime_s; sr_start_time; sr_gc; sr_topology }

(* v7 health codecs. *)

let put_alert (s : W.sink) (a : Watchdog.alert) : unit =
  W.put_bytes s a.Watchdog.a_rule;
  W.put_f64 s a.Watchdog.a_since;
  W.put_f64 s a.Watchdog.a_value;
  W.put_f64 s a.Watchdog.a_threshold;
  W.put_bytes s a.Watchdog.a_message

let get_alert (s : W.source) : Watchdog.alert =
  let a_rule = W.get_bytes s in
  let a_since = W.get_f64 s in
  let a_value = W.get_f64 s in
  let a_threshold = W.get_f64 s in
  let a_message = W.get_bytes s in
  { Watchdog.a_rule; a_since; a_value; a_threshold; a_message }

let put_shard_health (s : W.sink) (sh : shard_health) : unit =
  W.put_int s sh.shc_index;
  W.put_bytes s sh.shc_endpoint;
  W.put_bool s sh.shc_reachable;
  W.put_f64 s sh.shc_since;
  W.put_int s sh.shc_failures;
  W.put_bytes s sh.shc_last_error;
  W.put_int s sh.shc_version;
  W.put_f64 s sh.shc_rtt_ms

let get_shard_health (s : W.source) : shard_health =
  let shc_index = W.get_int s in
  let shc_endpoint = W.get_bytes s in
  let shc_reachable = W.get_bool s in
  let shc_since = W.get_f64 s in
  let shc_failures = W.get_int s in
  let shc_last_error = W.get_bytes s in
  let shc_version = W.get_int s in
  let shc_rtt_ms = W.get_f64 s in
  { shc_index; shc_endpoint; shc_reachable; shc_since; shc_failures; shc_last_error;
    shc_version; shc_rtt_ms }

let put_health_report (s : W.sink) (h : health_report) : unit =
  W.put_bytes s h.hr_status;
  W.put_f64 s h.hr_uptime_s;
  W.put_list s put_alert h.hr_alerts;
  W.put_list s put_shard_health h.hr_shards

let get_health_report (s : W.source) : health_report =
  let hr_status = W.get_bytes s in
  let hr_uptime_s = W.get_f64 s in
  let hr_alerts = W.get_list s get_alert in
  let hr_shards = W.get_list s get_shard_health in
  { hr_status; hr_uptime_s; hr_alerts; hr_shards }

(* [?version] lets a caller (or a compat test) emit a frame an older
   peer accepts; only tags the requested version defines are allowed.
   [?trace] is the v4 trace context, written (as an option) right after
   the header of every v4 frame. *)
let put_request ?(version = version) ?(trace : trace_ctx option) (s : W.sink) (r : request) :
    unit =
  put_header ~version s;
  if version >= 4 then W.put_option s put_trace_ctx trace
  else if trace <> None then
    invalid_arg "Protocol.put_request: trace context needs protocol version >= 4";
  match r with
  | Upload { name; table } ->
    W.put_u8 s 0;
    W.put_bytes s name;
    Serialize.put_enc_table s table
  | Aggregate { name; token } ->
    W.put_u8 s 1;
    W.put_bytes s name;
    Serialize.put_token s token
  | Append { name; row; keywords; row_id } ->
    W.put_u8 s 2;
    W.put_bytes s name;
    Serialize.put_enc_row s row;
    W.put_list s Serialize.put_sse_token keywords;
    (* A pre-v6 peer assigns the next local position itself, which is
       exactly what dropping the field means. *)
    if version >= 6 then W.put_option s W.put_int row_id
  | List_tables -> W.put_u8 s 3
  | Drop name ->
    W.put_u8 s 4;
    W.put_bytes s name
  | Stats ->
    if version < 2 then invalid_arg "Protocol.put_request: Stats needs protocol version >= 2";
    W.put_u8 s 5
  | Traces ->
    if version < 4 then invalid_arg "Protocol.put_request: Traces needs protocol version >= 4";
    W.put_u8 s 6
  | Health ->
    if version < 7 then invalid_arg "Protocol.put_request: Health needs protocol version >= 7";
    W.put_u8 s 7

(* Returns the frame's version and trace context alongside the request,
   so a server can frame its reply at the peer's version and honor the
   peer's sampling request (see {!Server.handle_encoded}). *)
let get_request_vt (s : W.source) : int * trace_ctx option * request =
  let v = get_header s in
  let trace = if v >= 4 then W.get_option s get_trace_ctx else None in
  let req =
    match W.get_u8 s with
    | 0 ->
      let name = W.get_bytes s in
      let table = Serialize.get_enc_table s in
      Upload { name; table }
    | 1 ->
      let name = W.get_bytes s in
      let token = Serialize.get_token s in
      Aggregate { name; token }
    | 2 ->
      let name = W.get_bytes s in
      let row = Serialize.get_enc_row s in
      let keywords = W.get_list s Serialize.get_sse_token in
      let row_id = if v >= 6 then W.get_option s W.get_int else None in
      Append { name; row; keywords; row_id }
    | 3 -> List_tables
    | 4 -> Drop (W.get_bytes s)
    | 5 when v >= 2 -> Stats
    | 6 when v >= 4 -> Traces
    | 7 when v >= 7 -> Health
    | t -> W.fail "bad request tag %d for protocol version %d" t v
  in
  (v, trace, req)

let get_request_v (s : W.source) : int * request =
  let v, _, req = get_request_vt s in
  (v, req)

let get_request (s : W.source) : request = snd (get_request_v s)

(* [?explain] is the v4 EXPLAIN trailer, written (as an option) after
   the payload of every v4 frame so older decoders never see it. *)
let put_response ?(version = version) ?(explain : explain option) (s : W.sink) (r : response) :
    unit =
  put_header ~version s;
  if version < 4 && explain <> None then
    invalid_arg "Protocol.put_response: explain trailer needs protocol version >= 4";
  (match r with
   | Ack -> W.put_u8 s 0
   | Tables ts ->
     W.put_u8 s 1;
     W.put_list s
       (fun s (name, rows) ->
         W.put_bytes s name;
         W.put_int s rows)
       ts
   | Aggregates a ->
     W.put_u8 s 2;
     Serialize.put_agg_result s a
   | Failed { code; message } ->
     W.put_u8 s 3;
     put_error_code ~version s code;
     W.put_bytes s message
   | Stats_report r ->
     if version < 2 then
       invalid_arg "Protocol.put_response: Stats_report needs protocol version >= 2";
     W.put_u8 s 4;
     put_stats_report ~version s r
   | Trace_dump ts ->
     if version < 4 then
       invalid_arg "Protocol.put_response: Trace_dump needs protocol version >= 4";
     W.put_u8 s 5;
     W.put_list s (put_rtrace ~version) ts
   | Health_report h ->
     if version < 7 then
       invalid_arg "Protocol.put_response: Health_report needs protocol version >= 7";
     W.put_u8 s 6;
     put_health_report s h);
  if version >= 4 then W.put_option s (put_explain ~version) explain

let get_response_x (s : W.source) : response * explain option =
  let v = get_header s in
  let resp =
    match W.get_u8 s with
    | 0 -> Ack
    | 1 ->
      Tables
        (W.get_list s (fun s ->
             let name = W.get_bytes s in
             let rows = W.get_int s in
             (name, rows)))
    | 2 -> Aggregates (Serialize.get_agg_result s)
    | 3 ->
      let code = get_error_code ~version:v s in
      let message = W.get_bytes s in
      Failed { code; message }
    | 4 when v >= 2 -> Stats_report (get_stats_report ~version:v s)
    | 5 when v >= 4 -> Trace_dump (W.get_list s (get_rtrace ~version:v))
    | 6 when v >= 7 -> Health_report (get_health_report s)
    | t -> W.fail "bad response tag %d for protocol version %d" t v
  in
  let explain = if v >= 4 then W.get_option s (get_explain ~version:v) else None in
  (resp, explain)

let get_response (s : W.source) : response = fst (get_response_x s)

let encode_request ?version ?trace (r : request) : string =
  W.encode (fun s r -> put_request ?version ?trace s r) r

let decode_request_vt (s : string) : int * trace_ctx option * request =
  W.decode get_request_vt s

let decode_request_v (s : string) : int * request = W.decode get_request_v s
let decode_request (s : string) : request = snd (decode_request_v s)

let encode_response ?version ?explain (r : response) : string =
  W.encode (fun s r -> put_response ?version ?explain s r) r

let decode_response_x (s : string) : response * explain option = W.decode get_response_x s
let decode_response (s : string) : response = fst (decode_response_x s)

(* --- JSON rendering ----------------------------------------------------------

   `sagma_cli stats --json` must carry everything the human and
   Prometheus paths render — snapshot, uptime/start-time, audit
   summary, GC block, topology — as one object; it used to print only
   the snapshot. Kept here next to the types so the shape and the codec
   evolve together. *)

let json_float (v : float) : string =
  if Float.is_nan v || v = infinity || v = neg_infinity then "null"
  else Printf.sprintf "%.17g" v

let stats_report_to_json (r : stats_report) : string =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"snapshot\":%s" (Metrics.snapshot_to_json r.sr_snapshot);
  add ",\"uptime_s\":%s,\"start_time\":%s" (json_float r.sr_uptime_s)
    (json_float r.sr_start_time);
  add ",\"audit\":{\"requests\":%d,\"probes\":%d,\"checks_run\":%d,\"check_failures\":%d}"
    r.sr_audit.Audit.s_requests r.sr_audit.Audit.s_probes r.sr_audit.Audit.s_checks_run
    r.sr_audit.Audit.s_check_failures;
  (match r.sr_gc with
   | None -> add ",\"gc\":null"
   | Some g ->
     add
       ",\"gc\":{\"minor_words\":%s,\"promoted_words\":%s,\"major_words\":%s,\
        \"minor_collections\":%d,\"major_collections\":%d,\"compactions\":%d,\
        \"heap_words\":%d,\"top_heap_words\":%d}"
       (json_float g.gs_minor_words) (json_float g.gs_promoted_words)
       (json_float g.gs_major_words) g.gs_minor_collections g.gs_major_collections
       g.gs_compactions g.gs_heap_words g.gs_top_heap_words);
  (match r.sr_topology with
   | None -> add ",\"topology\":null"
   | Some t ->
     add ",\"topology\":{\"role\":\"%s\",\"shard_index\":%d,\"shard_count\":%d,\"shards\":[%s]}"
       (Metrics.json_escape t.tp_role) t.tp_shard_index t.tp_shard_count
       (String.concat ","
          (List.map (fun e -> "\"" ^ Metrics.json_escape e ^ "\"") t.tp_shards)));
  add "}";
  Buffer.contents buf

let health_report_to_json (h : health_report) : string =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"status\":\"%s\",\"uptime_s\":%s" (Metrics.json_escape h.hr_status)
    (json_float h.hr_uptime_s);
  add ",\"alerts\":[%s]"
    (String.concat ","
       (List.map
          (fun (a : Watchdog.alert) ->
            Printf.sprintf
              "{\"rule\":\"%s\",\"since\":%s,\"value\":%s,\"threshold\":%s,\"message\":\"%s\"}"
              (Metrics.json_escape a.Watchdog.a_rule) (json_float a.Watchdog.a_since)
              (json_float a.Watchdog.a_value) (json_float a.Watchdog.a_threshold)
              (Metrics.json_escape a.Watchdog.a_message))
          h.hr_alerts));
  add ",\"shards\":[%s]}"
    (String.concat ","
       (List.map
          (fun sh ->
            Printf.sprintf
              "{\"index\":%d,\"endpoint\":\"%s\",\"reachable\":%b,\"since\":%s,\
               \"failures\":%d,\"last_error\":\"%s\",\"version\":%d,\"rtt_ms\":%s}"
              sh.shc_index
              (Metrics.json_escape sh.shc_endpoint)
              sh.shc_reachable (json_float sh.shc_since) sh.shc_failures
              (Metrics.json_escape sh.shc_last_error) sh.shc_version
              (json_float sh.shc_rtt_ms))
          h.hr_shards));
  Buffer.contents buf

(* The client/server protocol: message types and their wire codecs.

   The deployment model of the paper — a thin trusted client and an
   untrusted storage/compute server — made concrete: the client uploads
   encrypted tables, sends grouping tokens, and receives encrypted
   aggregates it decrypts locally. The server side (see {!Server}) only
   ever calls public-parameter operations.

   Framing is left to {!Transport}; this module encodes single messages. *)

module W = Sagma_wire.Wire
module Sse = Sagma_sse.Sse
module Scheme = Sagma.Scheme
module Serialize = Sagma.Serialize

type request =
  | Upload of { name : string; table : Scheme.enc_table }
      (** Store an encrypted table under [name] (replaces silently). *)
  | Aggregate of { name : string; token : Scheme.token }
      (** Run AggGrpBy (Algorithm 5) over table [name]. *)
  | Append of { name : string; row : Scheme.enc_row; keywords : Sse.token list }
      (** Append one encrypted row; the server extends the SSE postings of
          each keyword token itself (leaking those keywords' identities —
          the usual dynamic-SSE update leakage). *)
  | List_tables
  | Drop of string

type response =
  | Ack
  | Tables of (string * int) list  (** table name, row count *)
  | Aggregates of Scheme.agg_result
  | Failed of string

(* --- codecs ------------------------------------------------------------------ *)

let put_request (s : W.sink) (r : request) : unit =
  match r with
  | Upload { name; table } ->
    W.put_u8 s 0;
    W.put_bytes s name;
    Serialize.put_enc_table s table
  | Aggregate { name; token } ->
    W.put_u8 s 1;
    W.put_bytes s name;
    Serialize.put_token s token
  | Append { name; row; keywords } ->
    W.put_u8 s 2;
    W.put_bytes s name;
    Serialize.put_enc_row s row;
    W.put_list s Serialize.put_sse_token keywords
  | List_tables -> W.put_u8 s 3
  | Drop name ->
    W.put_u8 s 4;
    W.put_bytes s name

let get_request (s : W.source) : request =
  match W.get_u8 s with
  | 0 ->
    let name = W.get_bytes s in
    let table = Serialize.get_enc_table s in
    Upload { name; table }
  | 1 ->
    let name = W.get_bytes s in
    let token = Serialize.get_token s in
    Aggregate { name; token }
  | 2 ->
    let name = W.get_bytes s in
    let row = Serialize.get_enc_row s in
    let keywords = W.get_list s Serialize.get_sse_token in
    Append { name; row; keywords }
  | 3 -> List_tables
  | 4 -> Drop (W.get_bytes s)
  | v -> W.fail "bad request tag %d" v

let put_response (s : W.sink) (r : response) : unit =
  match r with
  | Ack -> W.put_u8 s 0
  | Tables ts ->
    W.put_u8 s 1;
    W.put_list s
      (fun s (name, rows) ->
        W.put_bytes s name;
        W.put_int s rows)
      ts
  | Aggregates a ->
    W.put_u8 s 2;
    Serialize.put_agg_result s a
  | Failed msg ->
    W.put_u8 s 3;
    W.put_bytes s msg

let get_response (s : W.source) : response =
  match W.get_u8 s with
  | 0 -> Ack
  | 1 ->
    Tables
      (W.get_list s (fun s ->
           let name = W.get_bytes s in
           let rows = W.get_int s in
           (name, rows)))
  | 2 -> Aggregates (Serialize.get_agg_result s)
  | 3 -> Failed (W.get_bytes s)
  | v -> W.fail "bad response tag %d" v

let encode_request (r : request) : string = W.encode put_request r
let decode_request (s : string) : request = W.decode get_request s
let encode_response (r : response) : string = W.encode put_response r
let decode_response (s : string) : response = W.decode get_response s

(* The query router of a scatter-gather deployment (protocol v6/v7).

   Speaks the same wire protocol as a storage server, but owns no rows:
   every request is routed to a fleet of shard endpoints and the
   replies are combined. The interesting case is [Aggregate]: the fan
   out queries all shards concurrently (over {!Sagma_pool}), each shard
   pairs only the rows it owns ([Server] created with [?shard]), and
   the per-bucket level-2 partial sums come back ⊕-mergeable — BGN
   ciphertexts are additively homomorphic — so the router combines them
   with {!Sagma.Scheme.merge_agg_results} using only the table's PUBLIC
   key and returns one [Aggregates] reply. The router never decrypts
   anything (it has no secret key to decrypt with); the client pays a
   single decrypt, same as against one server.

   Storage is replicated: [Upload] and [Append] fan to every shard (the
   SSE index is PRF-opaque, so rows cannot be partitioned server-side),
   with appends stamped with the coordinator's global row id (v6) so
   replicas stay aligned and the owning shard — [row_id mod count] — is
   deterministic.

   Tracing: when the router's own request is sampled, each shard call
   carries the router's trace id as its v4 trace context (with the
   sampling flag forced), so coordinator and shards record the same
   id; the shard's EXPLAIN phase timings are grafted back under the
   router's per-shard span, rendering the distributed request as one
   tree: request → fanout → shard:N → remote:aggregate.

   Version-mixed fleets: the router remembers, per shard, the highest
   protocol version the shard accepted (starting at {!Protocol.version})
   and steps down on [Failed Version_unsupported] replies — a v5 shard
   behind a v7 coordinator keeps working, it just never sees newer
   constructs (its appends fall back to local row numbering, which
   matches the coordinator's as long as replicas stay aligned).

   Fleet health (v7): with [?probe_interval_ms] set, a background
   domain probes every shard on a small dedicated {!Sagma_pool} —
   [Health] for v7 shards, [List_tables] for older ones — maintaining
   per-shard state (up/down since, consecutive-failure streak, last
   error, EWMA probe RTT) that is served in [Health_report], exported
   as router.shard_up{shard="..."} gauges, and used to fast-fail
   fan-out calls to known-down shards (the prober keeps watching, so a
   recovered shard rejoins within one interval). Direct shard traffic
   feeds the same state opportunistically: a transport-level failure
   marks the shard down, any reply marks it up. *)

module P = Protocol
module Obs = Sagma_obs.Metrics
module Export = Sagma_obs.Export
module Audit = Sagma_obs.Audit
module Trace = Sagma_obs.Trace
module Log = Sagma_obs.Log
module Watchdog = Sagma_obs.Watchdog
module Pool = Sagma_pool.Pool
module Scheme = Sagma.Scheme
module Bgn = Sagma.Scheme.Bgn

let m_fanouts = Obs.counter "router.fanouts"
let m_shard_calls = Obs.counter "router.shard_calls"
let m_shard_errors = Obs.counter "router.shard_errors"
let m_merges = Obs.counter "router.merges"
let m_downgrades = Obs.counter "router.version_downgrades"
let m_probes = Obs.counter "router.probes"
let m_probe_failures = Obs.counter "router.probe_failures"
let m_fast_fails = Obs.counter "router.fast_fails"

type shard = {
  sh_endpoint : string;          (* as configured, for messages/topology *)
  sh_host : string option;       (* None = loopback *)
  sh_port : int;
  mutable sh_version : int;      (* highest protocol version the shard accepted *)
  (* Health state, guarded by the router's [hlock] (not the request
     lock — probes must never wait on an in-flight append fan-out). *)
  mutable sh_up : bool;
  mutable sh_since : float;      (* epoch seconds of the last up/down transition *)
  mutable sh_failures : int;     (* consecutive probe/call failures *)
  mutable sh_last_error : string;
  mutable sh_rtt_ms : float;     (* EWMA probe RTT; 0. before the first sample *)
  sh_up_gauge : Obs.gauge;       (* router.shard_up{endpoint=...,shard=...} ∈ {0,1} *)
}

type t = {
  lock : Mutex.t;
  shards : shard array;
  pool : Pool.t;  (* fan-out pool — distinct from any connection-serving pool *)
  (* Per-table state gleaned from the uploads that passed through: the
     BGN public key (all ⊕-merging needs) and the global row count
     (appends are stamped with it so every replica agrees on ids). *)
  pks : (string, Bgn.public_key) Hashtbl.t;
  row_counts : (string, int) Hashtbl.t;
  deadline_ms : int;
  trace_sample : int;
  slow_query_ms : float;
  started : float;
  (* Fleet health. *)
  hlock : Mutex.t;
  probe_interval_ms : int;          (* 0 = probing (and fast-fail) off *)
  probe_pool : Pool.t option;
  probe_stop : bool Atomic.t;
  mutable probe_domain : unit Domain.t option;
  watchdog : Watchdog.t option;     (* alerts served in v7 Health replies *)
  draining : bool Atomic.t;
}

(* "host:port" (host optional — ":7501" or "7501" mean loopback). *)
let parse_endpoint (ep : string) : string option * int =
  let bad () = invalid_arg (Printf.sprintf "Router: bad shard endpoint %S (want host:port)" ep) in
  let host, port_s =
    match String.rindex_opt ep ':' with
    | Some i -> (String.sub ep 0 i, String.sub ep (i + 1) (String.length ep - i - 1))
    | None -> ("", ep)
  in
  match int_of_string_opt port_s with
  | Some p when p > 0 && p < 65536 -> ((if host = "" then None else Some host), p)
  | _ -> bad ()

let shard_label (i : int) (sh : shard) : string =
  Printf.sprintf "shard %d (%s)" i sh.sh_endpoint

(* Forward declaration dance is avoided by defining the probe loop after
   [call_shard]; [create] stores the domain once spawned. *)
let create ?(deadline_ms = 5000) ?fanout_workers ?(trace_sample = 0) ?(slow_query_ms = 0.)
    ?(probe_interval_ms = 0) ?watchdog (endpoints : string list) : t =
  if endpoints = [] then invalid_arg "Router.create: need at least one shard endpoint";
  let now = Unix.gettimeofday () in
  let shards =
    Array.of_list
      (List.mapi
         (fun i ep ->
           let sh_host, sh_port = parse_endpoint ep in
           (* Labeled gauge: the exposition page serves one
              router_shard_up series per shard. Endpoints are
              operator-supplied strings, hence the escaping in
              [Export.labeled]. *)
           let g =
             Obs.gauge
               (Export.labeled "router.shard_up"
                  [ ("shard", string_of_int i); ("endpoint", ep) ])
           in
           Obs.gauge_set g 1;
           (* Optimistic start: a shard is presumed up until a probe or
              call says otherwise, so a freshly booted fleet is never
              fast-failed before its first probe. *)
           { sh_endpoint = ep; sh_host; sh_port; sh_version = P.version; sh_up = true;
             sh_since = now; sh_failures = 0; sh_last_error = ""; sh_rtt_ms = 0.;
             sh_up_gauge = g })
         endpoints)
  in
  let workers =
    match fanout_workers with Some w -> w | None -> min (Array.length shards) 8
  in
  { lock = Mutex.create (); shards; pool = Pool.create ~name:"fanout" ~workers ();
    pks = Hashtbl.create 8; row_counts = Hashtbl.create 8; deadline_ms; trace_sample;
    slow_query_ms; started = now; hlock = Mutex.create (); probe_interval_ms;
    probe_pool =
      (if probe_interval_ms > 0 then
         Some (Pool.create ~name:"probe" ~workers:(min (Array.length shards) 4) ())
       else None);
    probe_stop = Atomic.make false; probe_domain = None; watchdog;
    draining = Atomic.make false }

let with_lock (r : t) (f : unit -> 'a) : 'a =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let topology (r : t) : P.topology =
  { P.tp_role = "coordinator"; tp_shard_index = -1; tp_shard_count = Array.length r.shards;
    tp_shards = Array.to_list (Array.map (fun s -> s.sh_endpoint) r.shards) }

(* --- per-shard health state ------------------------------------------------ *)

let ewma_alpha = 0.3

let record_success (r : t) (i : int) (sh : shard) (rtt_ms : float) : unit =
  Mutex.lock r.hlock;
  let was_down = not sh.sh_up in
  sh.sh_up <- true;
  if was_down then sh.sh_since <- Unix.gettimeofday ();
  sh.sh_failures <- 0;
  sh.sh_rtt_ms <-
    (if sh.sh_rtt_ms = 0. then rtt_ms
     else ((1. -. ewma_alpha) *. sh.sh_rtt_ms) +. (ewma_alpha *. rtt_ms));
  Mutex.unlock r.hlock;
  Obs.gauge_set sh.sh_up_gauge 1;
  if was_down then
    Log.info "shard_up"
      ~fields:[ Log.int "shard" i; Log.str "endpoint" sh.sh_endpoint ]

let record_failure (r : t) (i : int) (sh : shard) (msg : string) : unit =
  Obs.incr m_probe_failures;
  Mutex.lock r.hlock;
  let was_up = sh.sh_up in
  sh.sh_up <- false;
  if was_up then sh.sh_since <- Unix.gettimeofday ();
  sh.sh_failures <- sh.sh_failures + 1;
  sh.sh_last_error <- msg;
  let failures = sh.sh_failures in
  Mutex.unlock r.hlock;
  Obs.gauge_set sh.sh_up_gauge 0;
  if was_up then
    Log.warn "shard_down"
      ~fields:
        [ Log.int "shard" i; Log.str "endpoint" sh.sh_endpoint; Log.str "error" msg;
          Log.int "failures" failures ]

let shard_health (r : t) : P.shard_health list =
  Mutex.lock r.hlock;
  let out =
    Array.to_list
      (Array.mapi
         (fun i sh ->
           { P.shc_index = i; shc_endpoint = sh.sh_endpoint; shc_reachable = sh.sh_up;
             shc_since = sh.sh_since; shc_failures = sh.sh_failures;
             shc_last_error = sh.sh_last_error; shc_version = sh.sh_version;
             shc_rtt_ms = sh.sh_rtt_ms })
         r.shards)
  in
  Mutex.unlock r.hlock;
  out

let down_count (r : t) : int =
  Mutex.lock r.hlock;
  let n = Array.fold_left (fun acc sh -> if sh.sh_up then acc else acc + 1) 0 r.shards in
  Mutex.unlock r.hlock;
  n

(* --- shard calls ----------------------------------------------------------- *)

(* The downgrade ladder must stop at the oldest version that can still
   encode the request — probing a v6 shard with Health would otherwise
   try to emit Health in a v6 frame ([Invalid_argument]). *)
let request_min_version : P.request -> int = function
  | P.Stats -> 2
  | P.Traces -> 4
  | P.Health -> 7
  | _ -> P.min_version

(* One shard exchange: fresh connection, the router's deadline on both
   directions, the request encoded at the shard's cached version, and a
   downgrade-and-retry on [Version_unsupported] so a fleet can mix
   protocol generations. *)
let call_shard (r : t) (sh : shard) (req : P.request) : P.response * P.explain option =
  Obs.incr m_shard_calls;
  let trace =
    match Trace.current_request_id () with
    | Some id -> Some { P.tc_id = Some id; tc_sampled = true }
    | None -> None
  in
  let deadline = float_of_int r.deadline_ms /. 1000. in
  let floor = request_min_version req in
  let rec attempt v =
    let fd = Transport.connect ?host:sh.sh_host ~port:sh.sh_port () in
    let resp, x =
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          if deadline > 0. then
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO deadline;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO deadline
             with Unix.Unix_error _ | Invalid_argument _ -> ());
          Transport.send fd
            (P.encode_request ~version:v ?trace:(if v >= 4 then trace else None) req);
          P.decode_response_x (Transport.recv fd))
    in
    match resp with
    | P.Failed { code = P.Version_unsupported; _ } when v > floor ->
      Obs.incr m_downgrades;
      attempt (v - 1)
    | P.Failed { code = P.Version_unsupported; _ } ->
      (* The shard is older than this request's floor: reachable, but
         the request cannot be downgraded to it. Leave the cached
         version alone — it reflects what the shard actually accepted. *)
      (resp, x)
    | _ ->
      sh.sh_version <- v;
      (resp, x)
  in
  attempt (max sh.sh_version floor)

(* [call_shard] with every failure mode — unreachable endpoint,
   deadline, malformed reply, or the shard's own [Failed] — turned into
   a [Failed] response naming the shard, so the client always learns
   which node broke the query. Transport-level failures mark the shard
   down for the prober; any decoded reply marks it up. When probing is
   on, a known-down shard is fast-failed without a connect attempt —
   the background prober notices recovery within one interval. *)
let safe_call (r : t) (i : int) (sh : shard) (req : P.request) :
    P.response * P.explain option =
  let label = shard_label i sh in
  if r.probe_interval_ms > 0 && not sh.sh_up then begin
    Obs.incr m_fast_fails;
    Obs.incr m_shard_errors;
    ( P.failed P.Internal_error "%s: down (%d consecutive failures): %s" label sh.sh_failures
        sh.sh_last_error,
      None )
  end
  else begin
    let t0 = Unix.gettimeofday () in
    let lived () = record_success r i sh ((Unix.gettimeofday () -. t0) *. 1000.) in
    match call_shard r sh req with
    | P.Failed { code; message }, x ->
      (* An application-level failure from a live shard (no such table,
         bad request, ...) is not unhealth — the shard answered. *)
      Obs.incr m_shard_errors;
      lived ();
      (P.Failed { code; message = Printf.sprintf "%s: %s" label message }, x)
    | resp, x ->
      lived ();
      (resp, x)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Obs.incr m_shard_errors;
      let msg = Printf.sprintf "deadline exceeded after %d ms" r.deadline_ms in
      record_failure r i sh msg;
      (P.failed P.Internal_error "%s: %s" label msg, None)
    | exception Unix.Unix_error (e, _, _) ->
      Obs.incr m_shard_errors;
      let msg = Unix.error_message e in
      record_failure r i sh msg;
      (P.failed P.Internal_error "%s: %s" label msg, None)
    | exception (Failure msg | Sagma_wire.Wire.Decode_error msg) ->
      Obs.incr m_shard_errors;
      record_failure r i sh msg;
      (P.failed P.Internal_error "%s: %s" label msg, None)
  end

(* --- background probing ---------------------------------------------------- *)

(* One lightweight probe: [Health] once a shard is known to speak v7,
   [List_tables] otherwise (the ladder in [call_shard] then settles
   [sh_version], after which pre-v7 shards keep being probed cheaply).
   Runs outside [safe_call] so a probe is never itself fast-failed. *)
let probe_shard (r : t) (i : int) (sh : shard) : unit =
  Obs.incr m_probes;
  let t0 = Unix.gettimeofday () in
  let finish_ok () = record_success r i sh ((Unix.gettimeofday () -. t0) *. 1000.) in
  let req = if sh.sh_version >= 7 then P.Health else P.List_tables in
  match call_shard r sh req with
  | P.Failed { code = P.Version_unsupported; _ }, _ -> begin
    (* Reachable but older than v7: re-probe with a v1 request so the
       ladder can negotiate the shard's real version. *)
    match call_shard r sh P.List_tables with
    | _, _ -> finish_ok ()
    | exception Unix.Unix_error (e, _, _) -> record_failure r i sh (Unix.error_message e)
    | exception (Failure msg | Sagma_wire.Wire.Decode_error msg) -> record_failure r i sh msg
  end
  | _, _ ->
    (* Any decoded reply — Health_report, Tables, even an application
       Failed — proves the shard is alive and answering. *)
    finish_ok ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    record_failure r i sh (Printf.sprintf "deadline exceeded after %d ms" r.deadline_ms)
  | exception Unix.Unix_error (e, _, _) -> record_failure r i sh (Unix.error_message e)
  | exception (Failure msg | Sagma_wire.Wire.Decode_error msg) -> record_failure r i sh msg

let probe_all (r : t) : unit =
  match r.probe_pool with
  | None -> ()
  | Some pool ->
    let futures =
      Array.mapi (fun i sh -> Pool.submit pool (fun () -> probe_shard r i sh)) r.shards
    in
    Array.iter Pool.await futures

(* The probe loop runs on its own domain (never a pool task — it awaits
   pool futures), sleeping in short slices so shutdown stays prompt. *)
let start_probes (r : t) : unit =
  if r.probe_interval_ms > 0 && r.probe_domain = None then
    r.probe_domain <-
      Some
        (Domain.spawn (fun () ->
             let slice = 0.05 in
             let interval = float_of_int r.probe_interval_ms /. 1000. in
             let rec nap left =
               if left > 0. && not (Atomic.get r.probe_stop) then begin
                 Unix.sleepf (Float.min slice left);
                 nap (left -. slice)
               end
             in
             let rec loop () =
               if not (Atomic.get r.probe_stop) then begin
                 (try probe_all r with _ -> ());
                 nap interval;
                 loop ()
               end
             in
             loop ()))

let shutdown (r : t) : unit =
  Atomic.set r.probe_stop true;
  (match r.probe_domain with
   | Some d ->
     r.probe_domain <- None;
     Domain.join d
   | None -> ());
  (match r.probe_pool with Some p -> Pool.shutdown p | None -> ());
  Pool.shutdown r.pool

let set_draining (r : t) (d : bool) : unit = Atomic.set r.draining d

(* Query every shard concurrently on the fan-out pool. Each call runs
   under a "shard:N" span (the pool inherits the router's trace
   context, so these land under "fanout" in the request tree), and a
   traced shard's EXPLAIN phase timings are grafted back as
   "remote:..." child spans — the cross-node stitch. *)
let fanout (r : t) (req : P.request) : (P.response * P.explain option) array =
  Obs.incr m_fanouts;
  Trace.with_span "fanout" @@ fun () ->
  let futures =
    Array.mapi
      (fun i sh ->
        Pool.submit r.pool (fun () ->
            Trace.with_span (Printf.sprintf "shard:%d" i) (fun () ->
                let ((_, x) as result) = safe_call r i sh req in
                (match x with
                 | Some { P.x_timings; _ } ->
                   List.iter
                     (fun (name, ms) ->
                       Trace.attach_span
                         { Trace.name = "remote:" ^ name;
                           t0 = Unix.gettimeofday () -. (ms /. 1000.); ms; children = [] })
                     x_timings
                 | None -> ());
                result)))
      r.shards
  in
  Array.map Pool.await futures

let first_failure (results : (P.response * P.explain option) array) : P.response option =
  Array.find_map
    (fun (resp, _) -> match resp with P.Failed _ -> Some resp | _ -> None)
    results

(* --- stats federation ------------------------------------------------------ *)

(* Rename every series of a shard's snapshot into its labeled form:
   proto.requests → proto.requests{shard="1"}. *)
let label_snapshot (i : int) (s : Obs.snapshot) : Obs.snapshot =
  let tag name = Export.labeled name [ ("shard", string_of_int i) ] in
  { Obs.counters = List.map (fun (n, v) -> (tag n, v)) s.Obs.counters;
    gauges = List.map (fun (n, v) -> (tag n, v)) s.Obs.gauges;
    histograms = List.map (fun (n, h) -> (tag n, h)) s.Obs.histograms }

(* The coordinator's Stats reply covers the fleet: its own snapshot is
   ⊕-merged with every reachable shard's into unlabeled fleet
   aggregates, and each shard's snapshot additionally rides along as
   {shard="i"}-labeled series. Unreachable or pre-v2 shards are
   skipped — a Stats scrape must degrade, never fail. *)
let federated_snapshot (r : t) : Obs.snapshot =
  let own = Obs.snapshot () in
  let results = fanout r P.Stats in
  let fleet = ref own in
  let labeled = ref [] in
  Array.iteri
    (fun i (resp, _) ->
      match resp with
      | P.Stats_report rep ->
        fleet := Obs.merge_snapshots !fleet rep.P.sr_snapshot;
        labeled := label_snapshot i rep.P.sr_snapshot :: !labeled
      | _ -> ())
    results;
  List.fold_left
    (fun acc s ->
      { Obs.counters = acc.Obs.counters @ s.Obs.counters;
        gauges = acc.Obs.gauges @ s.Obs.gauges;
        histograms = acc.Obs.histograms @ s.Obs.histograms })
    !fleet (List.rev !labeled)

let handle (r : t) (req : P.request) : P.response =
  match req with
  | P.Stats ->
    P.Stats_report
      { P.sr_snapshot = federated_snapshot r; sr_audit = Audit.summary ();
        sr_uptime_s = Unix.gettimeofday () -. r.started; sr_start_time = r.started;
        sr_gc = Some (Server.gc_stats_now ()); sr_topology = Some (topology r) }
  | P.Traces -> P.Trace_dump (Trace.requests ())
  | P.Health ->
    let shards = shard_health r in
    let alerts = match r.watchdog with Some w -> Watchdog.active w | None -> [] in
    P.Health_report
      { P.hr_status =
          Server.health_status ~draining:(Atomic.get r.draining) ~alerts ~shards;
        hr_uptime_s = Unix.gettimeofday () -. r.started; hr_alerts = alerts;
        hr_shards = shards }
  | P.List_tables ->
    (* Replicas are identical by construction; one (live) shard speaks
       for the fleet. *)
    let i =
      let n = Array.length r.shards in
      let rec find k = if k >= n then 0 else if r.shards.(k).sh_up then k else find (k + 1) in
      find 0
    in
    fst (safe_call r i r.shards.(i) P.List_tables)
  | P.Upload { name; table } -> begin
    match Server.validate_table_name name with
    | Some msg -> P.failed P.Bad_request "%s" msg
    | None -> (
      let results = fanout r req in
      match first_failure results with
      | Some f -> f
      | None ->
        (* Remember what ⊕-merging and append stamping need: the
           table's public key and its global row count. *)
        with_lock r (fun () ->
            Hashtbl.replace r.pks name table.Scheme.pp.Scheme.bgn_pk;
            Hashtbl.replace r.row_counts name (Array.length table.Scheme.rows));
        P.Ack)
  end
  | P.Drop name -> (
    let results = fanout r req in
    with_lock r (fun () ->
        Hashtbl.remove r.pks name;
        Hashtbl.remove r.row_counts name);
    match first_failure results with Some f -> f | None -> P.Ack)
  | P.Append { name; row; keywords; row_id = _ } ->
    (* The whole read-stamp-fanout-commit holds the lock so concurrent
       appends through the router get distinct row ids in order. *)
    with_lock r (fun () ->
        match Hashtbl.find_opt r.row_counts name with
        | None ->
          P.failed P.No_such_table
            "no such table %S (uploads must pass through this coordinator)" name
        | Some next -> (
          let stamped = P.Append { name; row; keywords; row_id = Some next } in
          let results = fanout r stamped in
          match first_failure results with
          | Some f -> f
          | None ->
            Hashtbl.replace r.row_counts name (next + 1);
            P.Ack))
  | P.Aggregate { name; _ } -> begin
    match with_lock r (fun () -> Hashtbl.find_opt r.pks name) with
    | None ->
      P.failed P.No_such_table
        "no such table %S (uploads must pass through this coordinator)" name
    | Some pk -> (
      let results = fanout r req in
      let parts = ref [] in
      let failure = ref None in
      Array.iteri
        (fun i (resp, _) ->
          match (resp, !failure) with
          | _, Some _ -> ()
          | P.Aggregates a, None -> parts := a :: !parts
          | (P.Failed _ as f), None -> failure := Some f
          | _, None ->
            failure :=
              Some
                (P.failed P.Internal_error "%s: unexpected reply to Aggregate"
                   (shard_label i r.shards.(i))))
        results;
      match !failure with
      | Some f -> f
      | None ->
        (* ⊕-merge of the per-shard partials: public-key group
           operations only — the router cannot and does not decrypt. *)
        Obs.incr m_merges;
        P.Aggregates
          (Trace.with_span "merge" (fun () ->
               Scheme.merge_agg_results pk (List.rev !parts))))
  end

let handle_encoded (r : t) (raw : string) : string =
  Server.pipeline ~trace_sample:r.trace_sample ~slow_query_ms:r.slow_query_ms (handle r) raw

(* The query router of a scatter-gather deployment (protocol v6).

   Speaks the same wire protocol as a storage server, but owns no rows:
   every request is routed to a fleet of shard endpoints and the
   replies are combined. The interesting case is [Aggregate]: the fan
   out queries all shards concurrently (over {!Sagma_pool}), each shard
   pairs only the rows it owns ([Server] created with [?shard]), and
   the per-bucket level-2 partial sums come back ⊕-mergeable — BGN
   ciphertexts are additively homomorphic — so the router combines them
   with {!Sagma.Scheme.merge_agg_results} using only the table's PUBLIC
   key and returns one [Aggregates] reply. The router never decrypts
   anything (it has no secret key to decrypt with); the client pays a
   single decrypt, same as against one server.

   Storage is replicated: [Upload] and [Append] fan to every shard (the
   SSE index is PRF-opaque, so rows cannot be partitioned server-side),
   with appends stamped with the coordinator's global row id (v6) so
   replicas stay aligned and the owning shard — [row_id mod count] — is
   deterministic.

   Tracing: when the router's own request is sampled, each shard call
   carries the router's trace id as its v4 trace context (with the
   sampling flag forced), so coordinator and shards record the same
   id; the shard's EXPLAIN phase timings are grafted back under the
   router's per-shard span, rendering the distributed request as one
   tree: request → fanout → shard:N → remote:aggregate.

   Version-mixed fleets: the router remembers, per shard, the highest
   protocol version the shard accepted (starting at {!Protocol.version})
   and steps down on [Failed Version_unsupported] replies — a v5 shard
   behind a v6 coordinator keeps working, it just never sees v6-only
   constructs (its appends fall back to local row numbering, which
   matches the coordinator's as long as replicas stay aligned). *)

module P = Protocol
module Obs = Sagma_obs.Metrics
module Audit = Sagma_obs.Audit
module Trace = Sagma_obs.Trace
module Pool = Sagma_pool.Pool
module Scheme = Sagma.Scheme
module Bgn = Sagma.Scheme.Bgn

let m_fanouts = Obs.counter "router.fanouts"
let m_shard_calls = Obs.counter "router.shard_calls"
let m_shard_errors = Obs.counter "router.shard_errors"
let m_merges = Obs.counter "router.merges"
let m_downgrades = Obs.counter "router.version_downgrades"

type shard = {
  sh_endpoint : string;          (* as configured, for messages/topology *)
  sh_host : string option;       (* None = loopback *)
  sh_port : int;
  mutable sh_version : int;      (* highest protocol version the shard accepted *)
}

type t = {
  lock : Mutex.t;
  shards : shard array;
  pool : Pool.t;  (* fan-out pool — distinct from any connection-serving pool *)
  (* Per-table state gleaned from the uploads that passed through: the
     BGN public key (all ⊕-merging needs) and the global row count
     (appends are stamped with it so every replica agrees on ids). *)
  pks : (string, Bgn.public_key) Hashtbl.t;
  row_counts : (string, int) Hashtbl.t;
  deadline_ms : int;
  trace_sample : int;
  slow_query_ms : float;
  started : float;
}

(* "host:port" (host optional — ":7501" or "7501" mean loopback). *)
let parse_endpoint (ep : string) : string option * int =
  let bad () = invalid_arg (Printf.sprintf "Router: bad shard endpoint %S (want host:port)" ep) in
  let host, port_s =
    match String.rindex_opt ep ':' with
    | Some i -> (String.sub ep 0 i, String.sub ep (i + 1) (String.length ep - i - 1))
    | None -> ("", ep)
  in
  match int_of_string_opt port_s with
  | Some p when p > 0 && p < 65536 -> ((if host = "" then None else Some host), p)
  | _ -> bad ()

let create ?(deadline_ms = 5000) ?fanout_workers ?(trace_sample = 0) ?(slow_query_ms = 0.)
    (endpoints : string list) : t =
  if endpoints = [] then invalid_arg "Router.create: need at least one shard endpoint";
  let shards =
    Array.of_list
      (List.map
         (fun ep ->
           let sh_host, sh_port = parse_endpoint ep in
           { sh_endpoint = ep; sh_host; sh_port; sh_version = P.version })
         endpoints)
  in
  let workers =
    match fanout_workers with Some w -> w | None -> min (Array.length shards) 8
  in
  { lock = Mutex.create (); shards; pool = Pool.create ~name:"fanout" ~workers ();
    pks = Hashtbl.create 8; row_counts = Hashtbl.create 8; deadline_ms; trace_sample;
    slow_query_ms; started = Unix.gettimeofday () }

let shutdown (r : t) : unit = Pool.shutdown r.pool

let with_lock (r : t) (f : unit -> 'a) : 'a =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let shard_label (i : int) (sh : shard) : string =
  Printf.sprintf "shard %d (%s)" i sh.sh_endpoint

let topology (r : t) : P.topology =
  { P.tp_role = "coordinator"; tp_shard_index = -1; tp_shard_count = Array.length r.shards;
    tp_shards = Array.to_list (Array.map (fun s -> s.sh_endpoint) r.shards) }

(* One shard exchange: fresh connection, the router's deadline on both
   directions, the request encoded at the shard's cached version, and a
   downgrade-and-retry on [Version_unsupported] so a fleet can mix
   protocol generations. *)
let call_shard (r : t) (sh : shard) (req : P.request) : P.response * P.explain option =
  Obs.incr m_shard_calls;
  let trace =
    match Trace.current_request_id () with
    | Some id -> Some { P.tc_id = Some id; tc_sampled = true }
    | None -> None
  in
  let deadline = float_of_int r.deadline_ms /. 1000. in
  let rec attempt v =
    let fd = Transport.connect ?host:sh.sh_host ~port:sh.sh_port () in
    let resp, x =
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          if deadline > 0. then
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO deadline;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO deadline
             with Unix.Unix_error _ | Invalid_argument _ -> ());
          Transport.send fd
            (P.encode_request ~version:v ?trace:(if v >= 4 then trace else None) req);
          P.decode_response_x (Transport.recv fd))
    in
    match resp with
    | P.Failed { code = P.Version_unsupported; _ } when v > P.min_version ->
      Obs.incr m_downgrades;
      attempt (v - 1)
    | _ ->
      sh.sh_version <- v;
      (resp, x)
  in
  attempt sh.sh_version

(* [call_shard] with every failure mode — unreachable endpoint,
   deadline, malformed reply, or the shard's own [Failed] — turned into
   a [Failed] response naming the shard, so the client always learns
   which node broke the query. *)
let safe_call (r : t) (i : int) (sh : shard) (req : P.request) :
    P.response * P.explain option =
  let label = shard_label i sh in
  match call_shard r sh req with
  | P.Failed { code; message }, x ->
    Obs.incr m_shard_errors;
    (P.Failed { code; message = Printf.sprintf "%s: %s" label message }, x)
  | ok -> ok
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Obs.incr m_shard_errors;
    (P.failed P.Internal_error "%s: deadline exceeded after %d ms" label r.deadline_ms, None)
  | exception Unix.Unix_error (e, _, _) ->
    Obs.incr m_shard_errors;
    (P.failed P.Internal_error "%s: %s" label (Unix.error_message e), None)
  | exception (Failure msg | Sagma_wire.Wire.Decode_error msg) ->
    Obs.incr m_shard_errors;
    (P.failed P.Internal_error "%s: %s" label msg, None)

(* Query every shard concurrently on the fan-out pool. Each call runs
   under a "shard:N" span (the pool inherits the router's trace
   context, so these land under "fanout" in the request tree), and a
   traced shard's EXPLAIN phase timings are grafted back as
   "remote:..." child spans — the cross-node stitch. *)
let fanout (r : t) (req : P.request) : (P.response * P.explain option) array =
  Obs.incr m_fanouts;
  Trace.with_span "fanout" @@ fun () ->
  let futures =
    Array.mapi
      (fun i sh ->
        Pool.submit r.pool (fun () ->
            Trace.with_span (Printf.sprintf "shard:%d" i) (fun () ->
                let ((_, x) as result) = safe_call r i sh req in
                (match x with
                 | Some { P.x_timings; _ } ->
                   List.iter
                     (fun (name, ms) ->
                       Trace.attach_span
                         { Trace.name = "remote:" ^ name;
                           t0 = Unix.gettimeofday () -. (ms /. 1000.); ms; children = [] })
                     x_timings
                 | None -> ());
                result)))
      r.shards
  in
  Array.map Pool.await futures

let first_failure (results : (P.response * P.explain option) array) : P.response option =
  Array.find_map
    (fun (resp, _) -> match resp with P.Failed _ -> Some resp | _ -> None)
    results

let handle (r : t) (req : P.request) : P.response =
  match req with
  | P.Stats ->
    P.Stats_report
      { P.sr_snapshot = Obs.snapshot (); sr_audit = Audit.summary ();
        sr_uptime_s = Unix.gettimeofday () -. r.started; sr_start_time = r.started;
        sr_gc = Some (Server.gc_stats_now ()); sr_topology = Some (topology r) }
  | P.Traces -> P.Trace_dump (Trace.requests ())
  | P.List_tables ->
    (* Replicas are identical by construction; one shard speaks for
       the fleet. *)
    fst (safe_call r 0 r.shards.(0) P.List_tables)
  | P.Upload { name; table } -> begin
    match Server.validate_table_name name with
    | Some msg -> P.failed P.Bad_request "%s" msg
    | None -> (
      let results = fanout r req in
      match first_failure results with
      | Some f -> f
      | None ->
        (* Remember what ⊕-merging and append stamping need: the
           table's public key and its global row count. *)
        with_lock r (fun () ->
            Hashtbl.replace r.pks name table.Scheme.pp.Scheme.bgn_pk;
            Hashtbl.replace r.row_counts name (Array.length table.Scheme.rows));
        P.Ack)
  end
  | P.Drop name -> (
    let results = fanout r req in
    with_lock r (fun () ->
        Hashtbl.remove r.pks name;
        Hashtbl.remove r.row_counts name);
    match first_failure results with Some f -> f | None -> P.Ack)
  | P.Append { name; row; keywords; row_id = _ } ->
    (* The whole read-stamp-fanout-commit holds the lock so concurrent
       appends through the router get distinct row ids in order. *)
    with_lock r (fun () ->
        match Hashtbl.find_opt r.row_counts name with
        | None ->
          P.failed P.No_such_table
            "no such table %S (uploads must pass through this coordinator)" name
        | Some next -> (
          let stamped = P.Append { name; row; keywords; row_id = Some next } in
          let results = fanout r stamped in
          match first_failure results with
          | Some f -> f
          | None ->
            Hashtbl.replace r.row_counts name (next + 1);
            P.Ack))
  | P.Aggregate { name; _ } -> begin
    match with_lock r (fun () -> Hashtbl.find_opt r.pks name) with
    | None ->
      P.failed P.No_such_table
        "no such table %S (uploads must pass through this coordinator)" name
    | Some pk -> (
      let results = fanout r req in
      let parts = ref [] in
      let failure = ref None in
      Array.iteri
        (fun i (resp, _) ->
          match (resp, !failure) with
          | _, Some _ -> ()
          | P.Aggregates a, None -> parts := a :: !parts
          | (P.Failed _ as f), None -> failure := Some f
          | _, None ->
            failure :=
              Some
                (P.failed P.Internal_error "%s: unexpected reply to Aggregate"
                   (shard_label i r.shards.(i))))
        results;
      match !failure with
      | Some f -> f
      | None ->
        (* ⊕-merge of the per-shard partials: public-key group
           operations only — the router cannot and does not decrypt. *)
        Obs.incr m_merges;
        P.Aggregates
          (Trace.with_span "merge" (fun () ->
               Scheme.merge_agg_results pk (List.rev !parts))))
  end

let handle_encoded (r : t) (raw : string) : string =
  Server.pipeline ~trace_sample:r.trace_sample ~slow_query_ms:r.slow_query_ms (handle r) raw

(** Client/server protocol messages and their wire codecs.

    The paper's deployment model made concrete: a thin trusted client
    uploads encrypted tables, sends grouping tokens, and decrypts the
    returned encrypted aggregates. Framing is {!Transport}'s job. *)

module Sse = Sagma_sse.Sse
module Scheme = Sagma.Scheme

type request =
  | Upload of { name : string; table : Scheme.enc_table }
  | Aggregate of { name : string; token : Scheme.token }
  | Append of { name : string; row : Scheme.enc_row; keywords : Sse.token list }
      (** The server extends each keyword token's postings itself —
          standard dynamic-SSE update leakage. *)
  | List_tables
  | Drop of string

type response =
  | Ack
  | Tables of (string * int) list  (** name, row count *)
  | Aggregates of Scheme.agg_result
  | Failed of string

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

val put_request : Sagma_wire.Wire.sink -> request -> unit
val get_request : Sagma_wire.Wire.source -> request
val put_response : Sagma_wire.Wire.sink -> response -> unit
val get_response : Sagma_wire.Wire.source -> response

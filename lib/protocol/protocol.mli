(** Client/server protocol messages and their wire codecs.

    The paper's deployment model made concrete: a thin trusted client
    uploads encrypted tables, sends grouping tokens, and decrypts the
    returned encrypted aggregates. Framing is {!Transport}'s job.

    Every message is prefixed with the magic {!magic} and a version
    byte. This build speaks v7 but still decodes v1–v6 frames (v6 = v7
    minus the fleet-health constructs: the [Health]/[Health_report]
    pair; v5 = v6
    minus the scatter-gather sharding constructs: the topology section
    of [Stats_report] and the explicit row id on [Append]; v4 = v5
    minus the resource-telemetry sections: the gc block of
    [Stats_report], the gc differential of the EXPLAIN trailer, and the
    GC/allocation summary on dumped traces; v3 = v4 minus the
    per-request trace context, the EXPLAIN response trailer, the
    [Traces]/[Trace_dump] messages and the uptime fields of
    [Stats_report]; v2 = v3 minus the [Busy] error code and the gauges
    section of [Stats_report]; v1 = v2 minus the
    [Stats]/[Stats_report] messages), so old clients keep working
    against a new server; frames claiming any other version raise
    {!Version_mismatch}, and frames without the magic raise
    [Sagma_wire.Wire.Decode_error]. *)

module Sse = Sagma_sse.Sse
module Scheme = Sagma.Scheme

val magic : string
(** ["SG"] — the two bytes opening every frame. *)

val version : int
(** Wire protocol version this build speaks and encodes by default
    (currently 7). *)

val min_version : int
(** Oldest version the decoders still accept (currently 1). *)

exception Version_mismatch of { expected : int; got : int }

(** Structured failure codes, so clients can react programmatically
    instead of string-matching messages. *)
type error_code =
  | No_such_table
  | Bad_request          (** undecodable or semantically invalid request *)
  | Unsupported          (** recognized but deliberately not implemented *)
  | Version_unsupported  (** peer spoke a different protocol version *)
  | Internal_error
  | Busy                 (** v3: server at its connection limit, retry later *)

val error_code_to_string : error_code -> string
(** Stable kebab-case name, e.g. ["no-such-table"]. *)

type request =
  | Upload of { name : string; table : Scheme.enc_table }
  | Aggregate of { name : string; token : Scheme.token }
  | Append of {
      name : string;
      row : Scheme.enc_row;
      keywords : Sse.token list;
      row_id : int option;
          (** v6: the global row position a coordinator stamps when
              fanning an append across shard replicas, so every replica
              agrees on the id (and the owning shard,
              [row_id mod shard_count]). [None] means "next local
              position". Dropped from encodings below v6. *)
    }
      (** The server extends each keyword token's postings itself —
          standard dynamic-SSE update leakage. *)
  | List_tables
  | Drop of string
  | Stats
      (** v2: fetch the server's metrics snapshot and audit summary. *)
  | Traces
      (** v4: fetch the server's completed request-trace ring. *)
  | Health
      (** v7: fetch the node's health — status, uptime, the watchdog's
          active alerts, and (on a coordinator) the per-shard probe
          state. *)

(** v4: the optional trace context after a request header — a
    client-supplied id to correlate across systems, and a sampling flag
    forcing the server to trace this request. *)
type trace_ctx = { tc_id : string option; tc_sampled : bool }

(** v4: the EXPLAIN block a traced request's response carries — trace
    id, per-phase wall-clock timings from the span tree, and the cost
    block of request-scoped counter deltas. *)
type explain = {
  x_id : string;
  x_timings : (string * float) list;
  x_cost : Sagma_obs.Trace.cost;
  x_gc : Sagma_obs.Trace.gc_delta option;
      (** v5: per-request GC differential; [None] from v4 frames. *)
}

(** v5: process-lifetime GC statistics in a {!Stats_report} — the
    server's [Gc.quick_stat] at reply time. Word counts are floats
    because they are monotone process totals. *)
type gc_stats = {
  gs_minor_words : float;
  gs_promoted_words : float;
  gs_major_words : float;
  gs_minor_collections : int;
  gs_major_collections : int;
  gs_compactions : int;
  gs_heap_words : int;
  gs_top_heap_words : int;
}

(** v6: the node's place in a scatter-gather deployment, carried in a
    {!Stats_report} so operators can see the cluster shape from any
    node: ["single"] for a standalone server, ["shard"] (with
    index/count) for a storage node serving slice
    [row mod tp_shard_count = tp_shard_index], ["coordinator"] (with
    the endpoint list) for a query router. *)
type topology = {
  tp_role : string;
  tp_shard_index : int;     (** -1 for non-shards *)
  tp_shard_count : int;     (** 1 for a standalone server *)
  tp_shards : string list;  (** coordinator only: "host:port" endpoints *)
}

type stats_report = {
  sr_snapshot : Sagma_obs.Metrics.snapshot;
      (** The snapshot's gauges travel only in v3+ frames: encoding at
          v2 drops them, decoding a v2 frame yields [gauges = []]. *)
  sr_audit : Sagma_obs.Audit.summary;
  sr_uptime_s : float;
      (** v4: seconds since the server started; 0. from older frames. *)
  sr_start_time : float;
      (** v4: server start, epoch seconds; 0. from older frames. *)
  sr_gc : gc_stats option;
      (** v5: the server's GC/heap state; [None] from older frames. *)
  sr_topology : topology option;
      (** v6: the node's cluster role; [None] from older frames. *)
}

(** v7: one shard's health as the coordinator's prober sees it. The
    block carries only reachability/timing data — nothing the §4.2
    leakage function does not already license. *)
type shard_health = {
  shc_index : int;          (** shard slot in the fan-out order *)
  shc_endpoint : string;    (** "host:port" *)
  shc_reachable : bool;
  shc_since : float;        (** epoch seconds up (or down) since *)
  shc_failures : int;       (** consecutive probe/call failures *)
  shc_last_error : string;  (** [""] when none recorded *)
  shc_version : int;        (** negotiated version from the downgrade ladder *)
  shc_rtt_ms : float;       (** EWMA probe RTT; 0. before the first success *)
}

(** v7: the answer to {!Health}. [hr_shards] is empty on single servers
    and storage shards; a coordinator reports one entry per shard. *)
type health_report = {
  hr_status : string;  (** ["ok"] | ["degraded"] | ["draining"] *)
  hr_uptime_s : float;
  hr_alerts : Sagma_obs.Watchdog.alert list;  (** currently-firing alerts *)
  hr_shards : shard_health list;
}

type response =
  | Ack
  | Tables of (string * int) list  (** name, row count *)
  | Aggregates of Scheme.agg_result
  | Failed of { code : error_code; message : string }
  | Stats_report of stats_report  (** v2: answer to {!Stats} *)
  | Trace_dump of Sagma_obs.Trace.rtrace list  (** v4: answer to {!Traces} *)
  | Health_report of health_report  (** v7: answer to {!Health} *)

val failed : error_code -> ('a, unit, string, response) format4 -> 'a
(** [failed code fmt ...] builds a {!Failed} response. *)

val stats_report_to_json : stats_report -> string
(** One JSON object carrying everything a {!Stats_report} holds —
    [snapshot], [uptime_s]/[start_time], [audit], [gc] (or null),
    [topology] (or null) — so `sagma stats --json` drops nothing the
    human and Prometheus paths render. *)

val health_report_to_json : health_report -> string
(** One JSON object: [status], [uptime_s], [alerts], [shards]. *)

val encode_request : ?version:int -> ?trace:trace_ctx -> request -> string
val decode_request : string -> request
val decode_request_v : string -> int * request
(** Like {!decode_request}, but also returns the frame's version byte so
    a server can encode its reply at the peer's version. *)

val decode_request_vt : string -> int * trace_ctx option * request
(** Like {!decode_request_v}, but also returns the v4 trace context
    (always [None] for v1–v3 frames). *)

val encode_response : ?version:int -> ?explain:explain -> response -> string
val decode_response : string -> response
val decode_response_x : string -> response * explain option
(** Decoders accept versions {!min_version}..{!version} and raise
    {!Version_mismatch} on anything else, [Sagma_wire.Wire.Decode_error]
    on malformed frames (including tags and trailers the claimed version
    does not define). Encoders default to {!version}; pass [?version] to
    emit a frame an older peer accepts (@raise Invalid_argument if the
    version is outside {!min_version}..{!version}, the message does not
    exist in that version, or [?trace]/[?explain] is passed below v4).
    The v4 trace context and EXPLAIN trailer travel only in v4+ frames
    (and the trailer's gc differential only in v5 frames);
    {!decode_response} silently drops a trailer,
    {!decode_response_x} returns it. *)

val put_request :
  ?version:int -> ?trace:trace_ctx -> Sagma_wire.Wire.sink -> request -> unit
val get_request : Sagma_wire.Wire.source -> request
val get_request_v : Sagma_wire.Wire.source -> int * request
val get_request_vt : Sagma_wire.Wire.source -> int * trace_ctx option * request
val put_response :
  ?version:int -> ?explain:explain -> Sagma_wire.Wire.sink -> response -> unit
val get_response : Sagma_wire.Wire.source -> response
val get_response_x : Sagma_wire.Wire.source -> response * explain option

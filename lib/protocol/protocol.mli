(** Client/server protocol messages and their wire codecs.

    The paper's deployment model made concrete: a thin trusted client
    uploads encrypted tables, sends grouping tokens, and decrypts the
    returned encrypted aggregates. Framing is {!Transport}'s job.

    Every message is prefixed with the magic {!magic} and the protocol
    {!version}: decoding a frame from a peer speaking another version
    raises {!Version_mismatch}; a frame without the magic raises
    [Sagma_wire.Wire.Decode_error]. *)

module Sse = Sagma_sse.Sse
module Scheme = Sagma.Scheme

val magic : string
(** ["SG"] — the two bytes opening every frame. *)

val version : int
(** Wire protocol version this build speaks (currently 1). *)

exception Version_mismatch of { expected : int; got : int }

(** Structured failure codes, so clients can react programmatically
    instead of string-matching messages. *)
type error_code =
  | No_such_table
  | Bad_request          (** undecodable or semantically invalid request *)
  | Unsupported          (** recognized but deliberately not implemented *)
  | Version_unsupported  (** peer spoke a different protocol version *)
  | Internal_error

val error_code_to_string : error_code -> string
(** Stable kebab-case name, e.g. ["no-such-table"]. *)

type request =
  | Upload of { name : string; table : Scheme.enc_table }
  | Aggregate of { name : string; token : Scheme.token }
  | Append of { name : string; row : Scheme.enc_row; keywords : Sse.token list }
      (** The server extends each keyword token's postings itself —
          standard dynamic-SSE update leakage. *)
  | List_tables
  | Drop of string

type response =
  | Ack
  | Tables of (string * int) list  (** name, row count *)
  | Aggregates of Scheme.agg_result
  | Failed of { code : error_code; message : string }

val failed : error_code -> ('a, unit, string, response) format4 -> 'a
(** [failed code fmt ...] builds a {!Failed} response. *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
(** Decoders raise {!Version_mismatch} on a recognized frame of another
    version, [Sagma_wire.Wire.Decode_error] on anything malformed. *)

val put_request : Sagma_wire.Wire.sink -> request -> unit
val get_request : Sagma_wire.Wire.source -> request
val put_response : Sagma_wire.Wire.sink -> response -> unit
val get_response : Sagma_wire.Wire.source -> response

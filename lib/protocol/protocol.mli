(** Client/server protocol messages and their wire codecs.

    The paper's deployment model made concrete: a thin trusted client
    uploads encrypted tables, sends grouping tokens, and decrypts the
    returned encrypted aggregates. Framing is {!Transport}'s job.

    Every message is prefixed with the magic {!magic} and a version
    byte. This build speaks v3 but still decodes v1 and v2 frames (v2 =
    v3 minus the [Busy] error code and the gauges section of
    [Stats_report]; v1 = v2 minus the [Stats]/[Stats_report] messages),
    so old clients keep working against a new server; frames claiming
    any other version raise {!Version_mismatch}, and frames without the
    magic raise [Sagma_wire.Wire.Decode_error]. *)

module Sse = Sagma_sse.Sse
module Scheme = Sagma.Scheme

val magic : string
(** ["SG"] — the two bytes opening every frame. *)

val version : int
(** Wire protocol version this build speaks and encodes by default
    (currently 3). *)

val min_version : int
(** Oldest version the decoders still accept (currently 1). *)

exception Version_mismatch of { expected : int; got : int }

(** Structured failure codes, so clients can react programmatically
    instead of string-matching messages. *)
type error_code =
  | No_such_table
  | Bad_request          (** undecodable or semantically invalid request *)
  | Unsupported          (** recognized but deliberately not implemented *)
  | Version_unsupported  (** peer spoke a different protocol version *)
  | Internal_error
  | Busy                 (** v3: server at its connection limit, retry later *)

val error_code_to_string : error_code -> string
(** Stable kebab-case name, e.g. ["no-such-table"]. *)

type request =
  | Upload of { name : string; table : Scheme.enc_table }
  | Aggregate of { name : string; token : Scheme.token }
  | Append of { name : string; row : Scheme.enc_row; keywords : Sse.token list }
      (** The server extends each keyword token's postings itself —
          standard dynamic-SSE update leakage. *)
  | List_tables
  | Drop of string
  | Stats
      (** v2: fetch the server's metrics snapshot and audit summary. *)

type stats_report = {
  sr_snapshot : Sagma_obs.Metrics.snapshot;
      (** The snapshot's gauges travel only in v3+ frames: encoding at
          v2 drops them, decoding a v2 frame yields [gauges = []]. *)
  sr_audit : Sagma_obs.Audit.summary;
}

type response =
  | Ack
  | Tables of (string * int) list  (** name, row count *)
  | Aggregates of Scheme.agg_result
  | Failed of { code : error_code; message : string }
  | Stats_report of stats_report  (** v2: answer to {!Stats} *)

val failed : error_code -> ('a, unit, string, response) format4 -> 'a
(** [failed code fmt ...] builds a {!Failed} response. *)

val encode_request : ?version:int -> request -> string
val decode_request : string -> request
val decode_request_v : string -> int * request
(** Like {!decode_request}, but also returns the frame's version byte so
    a server can encode its reply at the peer's version. *)

val encode_response : ?version:int -> response -> string
val decode_response : string -> response
(** Decoders accept versions {!min_version}..{!version} and raise
    {!Version_mismatch} on anything else, [Sagma_wire.Wire.Decode_error]
    on malformed frames (including v2-only tags inside a v1 frame).
    Encoders default to {!version}; pass [?version] to emit a frame an
    older peer accepts (@raise Invalid_argument if the version is
    outside {!min_version}..{!version} or the message does not exist in
    that version). *)

val put_request : ?version:int -> Sagma_wire.Wire.sink -> request -> unit
val get_request : Sagma_wire.Wire.source -> request
val get_request_v : Sagma_wire.Wire.source -> int * request
val put_response : ?version:int -> Sagma_wire.Wire.sink -> response -> unit
val get_response : Sagma_wire.Wire.source -> response

(* Signed arbitrary-precision integers on top of {!Nat} magnitudes. *)

type t = { sign : int; mag : Nat.t }
(* Invariant: sign ∈ {-1, 0, 1}; sign = 0 iff mag is zero. *)

let mk sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.of_int 1 }
let two = { sign = 1; mag = Nat.of_int 2 }
let minus_one = { sign = -1; mag = Nat.of_int 1 }

let of_int x =
  if x = 0 then zero
  else if x > 0 then { sign = 1; mag = Nat.of_int x }
  else { sign = -1; mag = Nat.of_int (-x) }
  (* min_int would overflow on negation, but no caller builds it. *)

let to_int_opt a =
  match Nat.to_int_opt a.mag with
  | None -> None
  | Some v -> if a.sign >= 0 then Some v else Some (-v)

let to_int_exn a =
  match to_int_opt a with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: out of range"

let sign a = a.sign
let is_zero a = a.sign = 0
let is_even a = a.sign = 0 || not (Nat.bit a.mag 0)
let is_odd a = not (is_even a)
let neg a = mk (-a.sign) a.mag
let abs a = mk (if a.sign = 0 then 0 else 1) a.mag

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (Nat.sub a.mag b.mag)
    else mk b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else mk (a.sign * b.sign) (Nat.mul a.mag b.mag)

let mul_int a x = mul a (of_int x)

(* Truncated division (rounds toward zero), like OCaml's [/] and [mod]:
   the remainder carries the sign of the dividend. *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  (mk (a.sign * b.sign) q, mk a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Euclidean division: remainder is always in [0, |b|). *)
let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let ediv a b = fst (ediv_rem a b)
let erem a b = snd (ediv_rem a b)

let shift_left a k = mk a.sign (Nat.shift_left a.mag k)
let shift_right a k = mk a.sign (Nat.shift_right a.mag k)
  (* Arithmetic shift of the magnitude; only used on non-negative values. *)

let num_bits a = Nat.num_bits a.mag
let bit a i = Nat.bit a.mag i

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let to_string a = if a.sign < 0 then "-" ^ Nat.to_string a.mag else Nat.to_string a.mag

let of_string s =
  if String.length s = 0 then invalid_arg "Bigint.of_string: empty";
  if s.[0] = '-' then mk (-1) (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '+' then mk 1 (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else mk 1 (Nat.of_string s)

let to_hex a = if a.sign < 0 then "-" ^ Nat.to_hex a.mag else Nat.to_hex a.mag

let of_hex s =
  if String.length s > 0 && s.[0] = '-' then
    mk (-1) (Nat.of_hex (String.sub s 1 (String.length s - 1)))
  else mk 1 (Nat.of_hex s)

let of_bytes_be s = mk 1 (Nat.of_bytes_be s)
let to_bytes_be a = Nat.to_bytes_be a.mag

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* --- modular arithmetic ------------------------------------------------ *)

(* All modular functions require m > 0 and reduce inputs with [erem]. *)

let addm a b m = erem (add a b) m
let subm a b m = erem (sub a b) m
let mulm a b m = erem (mul a b) m

let powm_binary base expo m =
  let nbits = num_bits expo in
  let b = ref (erem base m) and acc = ref one in
  for i = 0 to nbits - 1 do
    if bit expo i then acc := mulm !acc !b m;
    if i < nbits - 1 then b := mulm !b !b m
  done;
  if equal m one then zero else !acc

(* Montgomery pays off once the modulus clears a few limbs and there are
   enough squarings to amortize the context setup. *)
let montgomery_threshold_bits = 96

let m_powm = Sagma_obs.Metrics.counter "bigint.powm"
let m_invm = Sagma_obs.Metrics.counter "bigint.invm"
let m_invm_batch = Sagma_obs.Metrics.counter "bigint.invm_batch"

let powm base expo m =
  if m.sign <= 0 then invalid_arg "Bigint.powm: modulus <= 0";
  if expo.sign < 0 then invalid_arg "Bigint.powm: negative exponent";
  Sagma_obs.Metrics.incr m_powm;
  if is_odd m && num_bits m >= montgomery_threshold_bits && num_bits expo > 4 then begin
    let ctx = Montgomery.make m.mag in
    mk 1 (Montgomery.powm ctx (erem base m).mag expo.mag)
  end
  else powm_binary base expo m

(* Extended gcd: returns (g, x, y) with a*x + b*y = g, g >= 0. *)
let egcd a b =
  let rec go r0 r1 s0 s1 t0 t1 =
    if is_zero r1 then (r0, s0, t0)
    else begin
      let q, r = divmod r0 r1 in
      go r1 r s1 (sub s0 (mul q s1)) t1 (sub t0 (mul q t1))
    end
  in
  let g, x, y = go a b one zero zero one in
  if g.sign < 0 then (neg g, neg x, neg y) else (g, x, y)

let gcd a b =
  let g, _, _ = egcd a b in
  g

(* Dedicated inverse: like egcd but tracks only the coefficient of [a],
   saving a third of the work on this very hot path (curve arithmetic
   performs one inversion per affine point operation). *)
let invm a m =
  Sagma_obs.Metrics.incr m_invm;
  let rec go r0 r1 s0 s1 =
    if is_zero r1 then (r0, s0)
    else begin
      let q, r = divmod r0 r1 in
      go r1 r s1 (sub s0 (mul q s1))
    end
  in
  let g, x = go (erem a m) m one zero in
  if not (equal g one) then None else Some (erem x m)

let invm_exn a m =
  match invm a m with
  | Some x -> x
  | None -> failwith "Bigint.invm_exn: not invertible"

(* Montgomery's trick: invert n residues with one egcd and 3(n-1)
   modular multiplications. Prefix products first, then one inversion
   of the total product, then back-substitution. Every element must be
   invertible mod [m]; raises like {!invm_exn} otherwise. *)
let invm_batch (xs : t array) (m : t) : t array =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    Sagma_obs.Metrics.incr m_invm_batch;
    let prefix = Array.make n zero in
    let acc = ref one in
    for i = 0 to n - 1 do
      prefix.(i) <- !acc;
      acc := mulm !acc xs.(i) m
    done;
    let inv = ref (invm_exn !acc m) in
    let out = Array.make n zero in
    for i = n - 1 downto 0 do
      out.(i) <- mulm !inv prefix.(i) m;
      inv := mulm !inv xs.(i) m
    done;
    out
  end

(* Montgomery-form residues for inner loops that cannot afford the
   division hiding in [mulm]. The pairing layer keeps its whole Miller
   loop in this form; conversion in/out happens once per batch. *)
module Mont = struct
  type ctx = { m : t; mctx : Montgomery.ctx }
  type el = int array

  let make (m : t) : ctx =
    if m.sign <= 0 then invalid_arg "Bigint.Mont.make: modulus <= 0";
    { m; mctx = Montgomery.make m.mag }

  let of_z (c : ctx) (a : t) : el = Montgomery.to_mont c.mctx (erem a c.m).mag
  let to_z (c : ctx) (a : el) : t = mk 1 (Montgomery.of_mont c.mctx a)
  let one (c : ctx) : el = Montgomery.one c.mctx
  let zero (c : ctx) : el = Array.make (Array.length (Montgomery.one c.mctx)) 0
  let mul (c : ctx) (a : el) (b : el) : el = Montgomery.mont_mul c.mctx a b
  let add (c : ctx) (a : el) (b : el) : el = Montgomery.add c.mctx a b
  let sub (c : ctx) (a : el) (b : el) : el = Montgomery.sub c.mctx a b
  let is_zero (a : el) : bool = Array.for_all (fun l -> l = 0) a
  let equal (a : el) (b : el) : bool = a = b
end

(* Jacobi symbol (a/n) for odd positive n. *)
let jacobi a n =
  if n.sign <= 0 || is_even n then invalid_arg "Bigint.jacobi: n must be odd positive";
  let rec go a n acc =
    let a = erem a n in
    if is_zero a then (if equal n one then acc else 0)
    else begin
      (* Pull out factors of two. *)
      let rec twos a acc =
        if is_even a then begin
          let nmod8 = to_int_exn (erem n (of_int 8)) in
          let acc = if nmod8 = 3 || nmod8 = 5 then -acc else acc in
          twos (shift_right a 1) acc
        end else (a, acc)
      in
      let a, acc = twos a acc in
      if equal a one then acc
      else begin
        (* Quadratic reciprocity. *)
        let amod4 = to_int_exn (erem a (of_int 4)) in
        let nmod4 = to_int_exn (erem n (of_int 4)) in
        let acc = if amod4 = 3 && nmod4 = 3 then -acc else acc in
        go n a acc
      end
    end
  in
  go a n 1

(* Square root mod a prime p with p ≡ 3 (mod 4): a^((p+1)/4). *)
let sqrtm_p3 a p =
  if to_int_exn (erem p (of_int 4)) <> 3 then invalid_arg "Bigint.sqrtm_p3: p mod 4 <> 3";
  let r = powm a (shift_right (succ p) 2) p in
  if equal (mulm r r p) (erem a p) then Some r else None

(* CRT recombination for pairwise-coprime moduli. *)
let crt (pairs : (t * t) list) : t =
  match pairs with
  | [] -> invalid_arg "Bigint.crt: empty"
  | (r0, m0) :: rest ->
    List.fold_left
      (fun (r, m) (r', m') ->
        (* Find x ≡ r (mod m), x ≡ r' (mod m'). *)
        let inv = invm_exn m m' in
        let diff = erem (sub r' r) m' in
        let k = mulm diff inv m' in
        (add r (mul k m), mul m m'))
      (erem r0 m0, m0) rest
    |> fst

(* --- randomness and primality ------------------------------------------ *)

type rng = int -> string
(* [rng n] returns [n] uniformly random bytes. *)

let random_bits (rng : rng) (bits : int) : t =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let raw = rng nbytes in
    let v = of_bytes_be raw in
    (* Trim excess high bits. *)
    let excess = (nbytes * 8) - bits in
    shift_right v excess
  end

(* Uniform in [0, bound) by rejection sampling. *)
let random_below (rng : rng) (bound : t) : t =
  if bound.sign <= 0 then invalid_arg "Bigint.random_below: bound <= 0";
  let bits = num_bits bound in
  let rec go () =
    let v = random_bits rng bits in
    if lt v bound then v else go ()
  in
  go ()

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139;
    149; 151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223;
    227; 229; 233; 239; 241; 251 ]

(* One Miller–Rabin round with base [a]; true = "probably prime". *)
let miller_rabin_round n a =
  let n1 = pred n in
  (* n - 1 = d * 2^s with d odd *)
  let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
  let d, s = split n1 0 in
  let x = powm a d n in
  if equal x one || equal x n1 then true
  else begin
    let rec loop x i =
      if i >= s - 1 then false
      else begin
        let x = mulm x x n in
        if equal x n1 then true else loop x (i + 1)
      end
    in
    loop x 0
  end

let is_probable_prime ?(rounds = 32) (rng : rng) (n : t) : bool =
  if leq n one then false
  else if lt n (of_int 4) then true (* 2, 3 *)
  else if is_even n then false
  else begin
    let divisible_by_small =
      List.exists
        (fun p ->
          let p = of_int p in
          lt p n && is_zero (erem n p))
        small_primes
    in
    if divisible_by_small then false
    else begin
      (* Fixed small bases catch all composites below 3.3 * 10^24;
         random bases extend the guarantee probabilistically. *)
      let fixed = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ] in
      let fixed_ok =
        List.for_all
          (fun a ->
            let a = of_int a in
            geq a n || miller_rabin_round n a)
          fixed
      in
      if not fixed_ok then false
      else begin
        let rec random_rounds i =
          if i >= rounds then true
          else begin
            let a = add (random_below rng (sub n (of_int 3))) two in
            if miller_rabin_round n a then random_rounds (i + 1) else false
          end
        in
        random_rounds 0
      end
    end
  end

let random_prime ?(rounds = 32) (rng : rng) ~(bits : int) : t =
  if bits < 2 then invalid_arg "Bigint.random_prime: bits < 2";
  let rec go () =
    let candidate = random_bits rng (bits - 1) in
    (* Force the top bit (exact size) and the bottom bit (odd). *)
    let candidate =
      add (shift_left one (bits - 1))
        (if is_even candidate then succ candidate else candidate)
    in
    let candidate = if num_bits candidate > bits then pred (shift_left one bits) else candidate in
    if is_probable_prime ~rounds rng candidate then candidate else go ()
  in
  go ()

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = erem
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) = gt
  let ( >= ) = geq
end

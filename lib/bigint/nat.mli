(** Unsigned arbitrary-precision naturals — the magnitude layer under
    {!Bigint}.

    Representation: little-endian [int array] of 26-bit limbs, normalized
    (no most-significant zero limbs); zero is [[||]]. 26-bit limbs keep
    every intermediate inside OCaml's 63-bit native integers. Exposed for
    white-box tests and the multiplication ablation. *)

type t = int array

val limb_bits : int
val base : int
val limb_mask : int

val zero : t
val is_zero : t -> bool
val normalize : t -> t

val of_int : int -> t
(** @raise Invalid_argument on negatives. *)

val to_int_opt : t -> int option

val compare : t -> t -> int
val equal : t -> t -> bool

val num_bits : t -> int
val bit : t -> int -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument on underflow. *)

val add_int : t -> int -> t
val mul_limb : t -> int -> t

val mul_schoolbook : t -> t -> t
(** O(n²) multiplication (kept public for the Karatsuba ablation). *)

val karatsuba_threshold : int

val mul : t -> t -> t
(** Schoolbook below {!karatsuba_threshold} limbs, Karatsuba above. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val shift_limbs : t -> int -> t
val split_at : t -> int -> t * t

val divmod_limb : t -> int -> t * int

val divmod : t -> t -> t * t
(** Knuth TAOCP Algorithm D. @raise Division_by_zero. *)

val rem : t -> t -> t

val to_string : t -> string
val of_string : string -> t
val to_hex : t -> string
val of_hex : string -> t
val of_bytes_be : string -> t
val to_bytes_be : t -> string

(* Unsigned arbitrary-precision naturals.

   Representation: little-endian [int array] of limbs in base 2^26,
   normalized (no most-significant zero limbs); zero is [||].

   26-bit limbs keep every intermediate inside OCaml's 63-bit native
   integers: a limb product is < 2^52, so a product plus a limb plus a
   carry stays < 2^53, and Knuth's division needs only a 52-bit by
   26-bit hardware division. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

(* Strip most-significant zero limbs. *)
let normalize (a : t) : t =
  let n = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let m = top n in
  if m = n then a else Array.sub a 0 m

let of_int (x : int) : t =
  if x < 0 then invalid_arg "Nat.of_int: negative"
  else if x = 0 then zero
  else begin
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr limb_bits) in
    let n = count 0 x in
    Array.init n (fun i -> (x lsr (i * limb_bits)) land limb_mask)
  end

let to_int_opt (a : t) : int option =
  (* max_int has 62 bits: up to 2 full limbs plus 10 bits of a third. *)
  let n = Array.length a in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let compare (a : t) (b : t) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let num_bits (a : t) : int =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + width 0 top
  end

let bit (a : t) (i : int) : bool =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = (if la > lb then la else lb) + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

(* Requires a >= b. *)
let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: underflow";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: underflow";
  normalize r

let add_int (a : t) (x : int) : t = add a (of_int x)

(* Multiply by a single limb (0 <= x < base) and add into nothing. *)
let mul_limb (a : t) (x : int) : t =
  if x = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * x) + !carry in
      r.(i) <- p land limb_mask;
      carry := p lsr limb_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p land limb_mask;
          carry := p lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land limb_mask;
          carry := s lsr limb_bits;
          incr k
        done
      end
    done;
    normalize r
  end

(* Measured crossover on this representation is ≈4096 bits (see
   `bench ablation:karatsuba`); below it the recursion overhead loses to
   the cache-friendly schoolbook loop. *)
let karatsuba_threshold = 80

(* Split [a] at limb index [k] into (low, high). *)
let split_at (a : t) (k : int) : t * t =
  let la = Array.length a in
  if la <= k then (a, zero)
  else (normalize (Array.sub a 0 k), Array.sub a k (la - k))

let shift_limbs (a : t) (k : int) : t =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let k = (if la > lb then la else lb) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let shift_left (a : t) (k : int) : t =
  if k < 0 then invalid_arg "Nat.shift_left: negative"
  else if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right (a : t) (k : int) : t =
  if k < 0 then invalid_arg "Nat.shift_right: negative"
  else if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
        r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb: returns (quotient, remainder). *)
let divmod_limb (a : t) (d : int) : t * int =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_limb";
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Knuth TAOCP vol.2 Algorithm D.  Requires b <> 0. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end else begin
    (* Normalize: shift so divisor's top limb has its high bit set. *)
    let shift = limb_bits - (num_bits b - (Array.length b - 1) * limb_bits) in
    let u = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u - n in
    let m = if m < 0 then 0 else m in
    (* Working copy of u with one extra high limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vsec = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      (* Estimate q_hat from the top two limbs of the current remainder. *)
      let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      if !qhat >= base then begin qhat := base - 1; rhat := num - !qhat * vtop end;
      (* Refine using the third limb. *)
      let continue = ref true in
      while !continue && !rhat < base do
        let lhs = !qhat * vsec in
        let rhs = (!rhat lsl limb_bits) lor (if j + n - 2 >= 0 then w.(j + n - 2) else 0) in
        if lhs > rhs then begin decr qhat; rhat := !rhat + vtop end
        else continue := false
      done;
      (* Multiply-and-subtract: w[j..j+n] -= qhat * v. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * v.(i) + !carry in
        carry := p lsr limb_bits;
        let d = w.(j + i) - (p land limb_mask) - !borrow in
        if d < 0 then begin w.(j + i) <- d + base; borrow := 1 end
        else begin w.(j + i) <- d; borrow := 0 end
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        w.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(j + i) + v.(i) + !c in
          w.(j + i) <- s land limb_mask;
          c := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !c) land limb_mask
      end else
        w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let rem = normalize (Array.sub w 0 n) in
    (normalize q, shift_right rem shift)
  end

let rem a b = snd (divmod a b)

(* Decimal conversion works in chunks of 7 digits: 10^7 < 2^26. *)
let decimal_chunk = 10_000_000
let decimal_chunk_digits = 7

let to_string (a : t) : string =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a acc =
      if is_zero a then acc
      else begin
        let q, r = divmod_limb a decimal_chunk in
        go q (r :: acc)
      end
    in
    (match go a [] with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest);
    Buffer.contents buf
  end

let of_string (s : string) : t =
  let n = String.length s in
  if n = 0 then invalid_arg "Nat.of_string: empty";
  String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_string: bad digit") s;
  let acc = ref zero in
  let i = ref 0 in
  while !i < n do
    let take = min decimal_chunk_digits (n - !i) in
    let chunk = int_of_string (String.sub s !i take) in
    let scale = int_of_float (10. ** float_of_int take) in
    acc := add_int (mul_limb !acc scale) chunk;
    i := !i + take
  done;
  !acc

let to_hex (a : t) : string =
  if is_zero a then "0"
  else begin
    let bits = num_bits a in
    let digits = (bits + 3) / 4 in
    let buf = Buffer.create digits in
    for i = digits - 1 downto 0 do
      let nibble =
        ((if bit a (4 * i + 3) then 8 else 0)
         lor (if bit a (4 * i + 2) then 4 else 0)
         lor (if bit a (4 * i + 1) then 2 else 0)
         lor (if bit a (4 * i) then 1 else 0))
      in
      Buffer.add_char buf "0123456789abcdef".[nibble]
    done;
    Buffer.contents buf
  end

let of_hex (s : string) : t =
  let n = String.length s in
  if n = 0 then invalid_arg "Nat.of_hex: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Nat.of_hex: bad digit"
      in
      acc := add_int (shift_left !acc 4) v)
    s;
  !acc

(* Big-endian byte deserialization; used to turn raw PRG output into
   numbers without bias games at call sites. *)
let of_bytes_be (s : string) : t =
  let acc = ref zero in
  String.iter (fun c -> acc := add_int (shift_left !acc 8) (Char.code c)) s;
  !acc

let to_bytes_be (a : t) : string =
  let nbytes = (num_bits a + 7) / 8 in
  if nbytes = 0 then ""
  else
    String.init nbytes (fun i ->
        let bit_base = (nbytes - 1 - i) * 8 in
        let v = ref 0 in
        for b = 7 downto 0 do
          v := (!v lsl 1) lor (if bit a (bit_base + b) then 1 else 0)
        done;
        Char.chr !v)

(** Montgomery modular multiplication (CIOS) over 26-bit limbs.

    Numbers are carried as x·R mod n with R = base^k; a multiplication
    costs ~2k² limb products and no division. {!Bigint.powm} dispatches
    here for large odd moduli. *)

type ctx

val make : Nat.t -> ctx
(** @raise Invalid_argument for even or zero moduli. *)

val limb_inverse : int -> int
(** Inverse of an odd limb mod 2^26 (exposed for tests). *)

val mont_mul : ctx -> int array -> int array -> int array
(** a·b·R⁻¹ mod n on k-limb padded operands (exposed for tests). *)

val pad : ctx -> Nat.t -> int array
val to_mont : ctx -> Nat.t -> int array
val of_mont : ctx -> int array -> Nat.t

val add : ctx -> int array -> int array -> int array
(** (a + b) mod n on k-limb padded residues (< n); Montgomery form is
    linear, so this works unchanged on Montgomery representatives. *)

val sub : ctx -> int array -> int array -> int array
(** (a - b) mod n on k-limb padded residues (< n). *)

val one : ctx -> int array
(** Montgomery form of 1 (R mod n), k-limb padded. *)

val powm : ctx -> Nat.t -> Nat.t -> Nat.t
(** base^expo mod n. *)

(* Montgomery modular multiplication (CIOS variant) over 26-bit limbs.

   For an odd modulus n of k limbs, numbers are represented as
   x·R mod n with R = base^k. One Montgomery multiplication costs
   ~2k² limb products with no division — substantially faster than
   multiply-then-Knuth-divide for the exponentiation loads in this
   repository (Paillier over n², Miller–Rabin, F_p² final
   exponentiations). [Bigint.powm] dispatches here for large odd moduli;
   `bench ablation:montgomery` measures the gain. *)

type ctx = {
  n : Nat.t;           (* the modulus, odd, normalized *)
  k : int;             (* limb count of n *)
  n0_inv : int;        (* -n^{-1} mod base *)
  r2 : Nat.t;          (* R² mod n, for conversion into Montgomery form *)
  one_mont : Nat.t;    (* R mod n = Montgomery form of 1 *)
}

(* Inverse of an odd limb modulo 2^26 by Newton iteration. *)
let limb_inverse (n0 : int) : int =
  let x = ref 1 in
  for _ = 1 to 5 do
    x := !x * (2 - (n0 * !x)) land Nat.limb_mask
  done;
  !x land Nat.limb_mask

let make (n : Nat.t) : ctx =
  if Nat.is_zero n || n.(0) land 1 = 0 then invalid_arg "Montgomery.make: modulus must be odd";
  let k = Array.length n in
  let n0_inv = Nat.limb_mask land (Nat.base - limb_inverse n.(0)) in
  (* R² mod n via shifting (no division beyond Nat.rem). *)
  let r = Nat.rem (Nat.shift_left (Nat.of_int 1) (k * Nat.limb_bits)) n in
  let r2 = Nat.rem (Nat.mul r r) n in
  { n; k; n0_inv; r2; one_mont = r }

(* CIOS Montgomery multiplication: returns a·b·R⁻¹ mod n. Operands are
   k-limb arrays (zero-padded); the result is a fresh k-limb array. *)
let mont_mul (c : ctx) (a : int array) (b : int array) : int array =
  let k = c.k in
  let n = c.n in
  let t = Array.make (k + 2) 0 in
  for i = 0 to k - 1 do
    (* t := t + a_i * b *)
    let ai = a.(i) in
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let s = t.(j) + (ai * b.(j)) + !carry in
      t.(j) <- s land Nat.limb_mask;
      carry := s lsr Nat.limb_bits
    done;
    let s = t.(k) + !carry in
    t.(k) <- s land Nat.limb_mask;
    t.(k + 1) <- t.(k + 1) + (s lsr Nat.limb_bits);
    (* m := t_0 · n' mod base; t := (t + m·n) / base *)
    let m = (t.(0) * c.n0_inv) land Nat.limb_mask in
    let s = t.(0) + (m * n.(0)) in
    let carry = ref (s lsr Nat.limb_bits) in
    for j = 1 to k - 1 do
      let s = t.(j) + (m * n.(j)) + !carry in
      t.(j - 1) <- s land Nat.limb_mask;
      carry := s lsr Nat.limb_bits
    done;
    let s = t.(k) + !carry in
    t.(k - 1) <- s land Nat.limb_mask;
    t.(k) <- t.(k + 1) + (s lsr Nat.limb_bits);
    t.(k + 1) <- 0
  done;
  (* t may be >= n (but < 2n): one conditional subtraction. *)
  let result = Array.sub t 0 k in
  let ge =
    t.(k) > 0
    ||
    let rec cmp i = if i < 0 then true else if result.(i) <> n.(i) then result.(i) > n.(i) else cmp (i - 1) in
    cmp (k - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = result.(j) - n.(j) - !borrow in
      if d < 0 then begin
        result.(j) <- d + Nat.base;
        borrow := 1
      end
      else begin
        result.(j) <- d;
        borrow := 0
      end
    done
  end;
  result

let pad (c : ctx) (a : Nat.t) : int array =
  let out = Array.make c.k 0 in
  Array.blit a 0 out 0 (Array.length a);
  out

(* Modular addition/subtraction on k-limb padded residues (< n).
   Montgomery form is linear, so these work unchanged on Montgomery
   representatives; the pairing tower uses them between mont_muls. *)
let add (c : ctx) (a : int array) (b : int array) : int array =
  let k = c.k in
  let n = c.n in
  let out = Array.make k 0 in
  let carry = ref 0 in
  for j = 0 to k - 1 do
    let s = a.(j) + b.(j) + !carry in
    out.(j) <- s land Nat.limb_mask;
    carry := s lsr Nat.limb_bits
  done;
  let ge =
    !carry > 0
    ||
    let rec cmp i = if i < 0 then true else if out.(i) <> n.(i) then out.(i) > n.(i) else cmp (i - 1) in
    cmp (k - 1)
  in
  if ge then begin
    (* a + b < 2n, so one subtraction lands in [0, n); a final borrow
       just cancels the carry limb. *)
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = out.(j) - n.(j) - !borrow in
      if d < 0 then begin
        out.(j) <- d + Nat.base;
        borrow := 1
      end
      else begin
        out.(j) <- d;
        borrow := 0
      end
    done
  end;
  out

let sub (c : ctx) (a : int array) (b : int array) : int array =
  let k = c.k in
  let out = Array.make k 0 in
  let borrow = ref 0 in
  for j = 0 to k - 1 do
    let d = a.(j) - b.(j) - !borrow in
    if d < 0 then begin
      out.(j) <- d + Nat.base;
      borrow := 1
    end
    else begin
      out.(j) <- d;
      borrow := 0
    end
  done;
  if !borrow = 1 then begin
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let s = out.(j) + c.n.(j) + !carry in
      out.(j) <- s land Nat.limb_mask;
      carry := s lsr Nat.limb_bits
    done
  end;
  out

let one (c : ctx) : int array = pad c c.one_mont

(* Convert into / out of Montgomery form. *)
let to_mont (c : ctx) (a : Nat.t) : int array = mont_mul c (pad c (Nat.rem a c.n)) (pad c c.r2)

let of_mont (c : ctx) (a : int array) : Nat.t =
  let one = Array.make c.k 0 in
  one.(0) <- 1;
  Nat.normalize (mont_mul c a one)

(* Modular exponentiation: base^expo mod n, left-to-right square-and-
   multiply in Montgomery form. *)
let powm (c : ctx) (base : Nat.t) (expo : Nat.t) : Nat.t =
  let nbits = Nat.num_bits expo in
  if nbits = 0 then Nat.rem (Nat.of_int 1) c.n
  else begin
    let base_m = to_mont c base in
    let acc = ref (pad c c.one_mont) in
    for i = nbits - 1 downto 0 do
      acc := mont_mul c !acc !acc;
      if Nat.bit expo i then acc := mont_mul c !acc base_m
    done;
    of_mont c !acc
  end

(** Signed arbitrary-precision integers.

    This module is the repository's substitute for [zarith]: all
    cryptographic layers (Paillier, BGN, pairings) are built on it. Values
    are immutable; all operations are functional. *)

type t
(** A signed integer of unbounded magnitude. *)

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t
(** [of_int x] converts a native integer ([min_int] excluded). *)

val to_int_opt : t -> int option
(** [to_int_opt a] is [Some x] when [a] fits a native [int]. *)

val to_int_exn : t -> int
(** Like {!to_int_opt} but raises [Failure] when out of range. *)

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_even : t -> bool
val is_odd : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val succ : t -> t
val pred : t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** Truncated division: quotient rounds toward zero and the remainder has
    the dividend's sign (like OCaml's [/] and [mod]).
    @raise Division_by_zero when the divisor is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: the remainder is always in [\[0, |b|)]. *)

val ediv : t -> t -> t
val erem : t -> t -> t

val shift_left : t -> int -> t
(** [shift_left a k] multiplies by [2^k]. *)

val shift_right : t -> int -> t
(** [shift_right a k] divides the magnitude by [2^k] (use on non-negative
    values). *)

val num_bits : t -> int
(** Bit-length of the magnitude; [num_bits zero = 0]. *)

val bit : t -> int -> bool
(** [bit a i] tests bit [i] of the magnitude. *)

val pow : t -> int -> t
(** [pow b e] with a native-int exponent [e >= 0]. *)

(** {1 Text and byte encodings} *)

val to_string : t -> string
(** Decimal rendering, with a leading [-] for negatives. *)

val of_string : string -> t
(** Parses optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_hex : t -> string
val of_hex : string -> t

val of_bytes_be : string -> t
(** Big-endian unsigned byte decoding. *)

val to_bytes_be : t -> string
(** Big-endian minimal byte encoding of the magnitude ([""] for zero). *)

val pp : Format.formatter -> t -> unit

(** {1 Modular arithmetic}

    All modular operations require a positive modulus and reduce their
    inputs into [\[0, m)] first. *)

val addm : t -> t -> t -> t
val subm : t -> t -> t -> t
val mulm : t -> t -> t -> t

val powm : t -> t -> t -> t
(** [powm base expo m] is [base^expo mod m]; [expo] must be non-negative. *)

val egcd : t -> t -> t * t * t
(** [egcd a b = (g, x, y)] with [a*x + b*y = g] and [g = gcd a b >= 0]. *)

val gcd : t -> t -> t

val invm : t -> t -> t option
(** Modular inverse, [None] when [gcd a m <> 1]. *)

val invm_exn : t -> t -> t

val invm_batch : t array -> t -> t array
(** [invm_batch xs m] inverts every element of [xs] modulo [m] with a
    single extended gcd (Montgomery's trick: prefix products, one
    {!invm_exn}, back-substitution — 3(n-1) modular multiplications
    instead of n inversions). Bumps the [bigint.invm_batch] counter once
    per call. @raise Failure if any element is not invertible. *)

(** Montgomery-form residues modulo a fixed odd modulus, for inner loops
    that cannot afford the division hiding in {!mulm}. [el] values are
    raw limb arrays; convert in/out with [of_z]/[to_z] once per batch
    and stay in form in between ([mul]/[add]/[sub] never divide). *)
module Mont : sig
  type ctx
  type el

  val make : t -> ctx
  (** @raise Invalid_argument for non-positive or even moduli. *)

  val of_z : ctx -> t -> el
  val to_z : ctx -> el -> t
  val one : ctx -> el
  val zero : ctx -> el
  val mul : ctx -> el -> el -> el
  val add : ctx -> el -> el -> el
  val sub : ctx -> el -> el -> el
  val is_zero : el -> bool
  val equal : el -> el -> bool
end

val jacobi : t -> t -> int
(** Jacobi symbol [(a/n)] for odd positive [n]. *)

val sqrtm_p3 : t -> t -> t option
(** Square root modulo a prime [p ≡ 3 (mod 4)]; [None] for non-residues. *)

val crt : (t * t) list -> t
(** [crt \[(r1,m1); ...\]] is the unique [x mod Π mi] with [x ≡ ri (mod mi)];
    the moduli must be pairwise coprime. *)

(** {1 Randomness and primality}

    Random generation is parameterized over a byte source so this library
    stays free of crypto dependencies; [Sagma_crypto.Drbg] provides one. *)

type rng = int -> string
(** [rng n] must return [n] fresh random bytes. *)

val random_bits : rng -> int -> t
(** Uniform value with at most [bits] bits. *)

val random_below : rng -> t -> t
(** Uniform value in [\[0, bound)] (rejection sampling). *)

val is_probable_prime : ?rounds:int -> rng -> t -> bool
(** Trial division by small primes, deterministic Miller–Rabin bases up to
    37, then [rounds] random Miller–Rabin rounds. *)

val random_prime : ?rounds:int -> rng -> bits:int -> t
(** Random probable prime of exactly [bits] bits. *)

(** Operators for readable arithmetic-heavy code; [mod] is Euclidean. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** Deterministic authenticated encryption (SIV construction).

    Equal plaintexts yield equal ciphertexts — the property CryptDB's DET
    layer relies on for server-side grouping, and exactly the frequency
    leakage the SAGMA paper eliminates. Used here by the baselines. *)

type key

val tag_size : int

val of_master : string -> key
val gen_key : Drbg.t -> key

val encrypt : key -> string -> string
(** [encrypt k m] is [tag ‖ ct] with [tag = HMAC(m)] as synthetic IV. *)

val decrypt : key -> string -> string option
(** [None] when authentication fails. *)

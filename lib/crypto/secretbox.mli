(** Authenticated symmetric encryption: ChaCha20 + HMAC-SHA256
    (encrypt-then-MAC). Wire format: nonce ‖ ciphertext ‖ tag. *)

type key

val key_size : int
val nonce_size : int
val tag_size : int

val overhead : int
(** Bytes added to each plaintext (nonce + tag). *)

val of_master : string -> key
(** Derive the encryption/MAC key pair from one master secret. *)

val gen_key : Drbg.t -> key

val seal : key -> Drbg.t -> string -> string
(** Encrypt with a fresh random nonce and authenticate. *)

val open_exn : key -> string -> string
(** Verify and decrypt.
    @raise Invalid_argument on authentication failure. *)

val open_opt : key -> string -> string option

(** Byte-string helpers shared by the crypto modules and their tests. *)

val to_hex : string -> string
val of_hex : string -> string

val xor : string -> string -> string
(** Bytewise XOR of equal-length strings. *)

val equal_ct : string -> string -> bool
(** Timing-balanced equality (best-effort in OCaml). *)

(** 32-bit little-endian (ChaCha20) and big-endian (SHA-256) codecs. *)

val le32_get : string -> int -> int
val le32_set : Bytes.t -> int -> int -> unit
val be32_get : string -> int -> int
val be32_set : Bytes.t -> int -> int -> unit
val be64_set : Bytes.t -> int -> int -> unit

(** The ChaCha20 stream cipher (RFC 8439). *)

val key_size : int
(** 32 bytes. *)

val nonce_size : int
(** 12 bytes. *)

val block_size : int
(** 64 bytes of keystream per block. *)

val block : key:string -> nonce:string -> int -> string
(** [block ~key ~nonce counter] is one 64-byte keystream block. *)

val xor_stream : ?counter:int -> key:string -> nonce:string -> string -> string
(** XOR a message with the keystream starting at block [counter]
    (default 1). Encryption and decryption are the same operation. *)

val encrypt : ?counter:int -> key:string -> nonce:string -> string -> string
val decrypt : ?counter:int -> key:string -> nonce:string -> string -> string

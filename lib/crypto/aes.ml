(* AES-128/AES-256 block cipher (FIPS 197) and AES-GCM authenticated
   encryption (NIST SP 800-38D).

   The paper's introduction names AES-GCM as the standard encryption that
   protects data while "render[ing] database operations impossible"; the
   download-everything baseline can run on it, and it serves as a second,
   standards-based AEAD next to the ChaCha20 secretbox. Table-based
   S-box, byte-oriented — correctness-first, not constant-time. *)

(* --- S-box, computed from the algebraic definition at module init ------- *)

let sbox = Bytes.create 256
let inv_sbox = Bytes.create 256

(* GF(2^8) multiplication modulo x^8 + x^4 + x^3 + x + 1. *)
let gf_mul (a : int) (b : int) : int =
  let a = ref a and b = ref b and p = ref 0 in
  for _ = 0 to 7 do
    if !b land 1 = 1 then p := !p lxor !a;
    let hi = !a land 0x80 in
    a := (!a lsl 1) land 0xff;
    if hi <> 0 then a := !a lxor 0x1b;
    b := !b lsr 1
  done;
  !p

let () =
  (* Multiplicative inverses by brute force (256² once at startup), then
     the affine transformation. *)
  let inv = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gf_mul a b = 1 then inv.(a) <- b
    done
  done;
  for a = 0 to 255 do
    let x = inv.(a) in
    let s =
      x
      lxor ((x lsl 1) lor (x lsr 7))
      lxor ((x lsl 2) lor (x lsr 6))
      lxor ((x lsl 3) lor (x lsr 5))
      lxor ((x lsl 4) lor (x lsr 4))
      lxor 0x63
    in
    let s = s land 0xff in
    Bytes.set sbox a (Char.chr s);
    Bytes.set inv_sbox s (Char.chr a)
  done

let sub (b : int) : int = Char.code (Bytes.get sbox b)

(* --- key expansion -------------------------------------------------------- *)

type key = {
  round_keys : int array array;  (* (rounds+1) × 16 bytes *)
  rounds : int;
}

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36; 0x6c; 0xd8 |]
  [@ocamlformat "disable"]

let expand_key (raw : string) : key =
  let nk = String.length raw / 4 in
  if nk <> 4 && nk <> 8 then invalid_arg "Aes.expand_key: key must be 16 or 32 bytes";
  let rounds = nk + 6 in
  let words = Array.make (4 * (rounds + 1)) [| 0; 0; 0; 0 |] in
  for i = 0 to nk - 1 do
    words.(i) <- Array.init 4 (fun j -> Char.code raw.[(4 * i) + j])
  done;
  for i = nk to (4 * (rounds + 1)) - 1 do
    let temp = Array.copy words.(i - 1) in
    let temp =
      if i mod nk = 0 then begin
        (* RotWord + SubWord + Rcon *)
        let t = [| sub temp.(1); sub temp.(2); sub temp.(3); sub temp.(0) |] in
        t.(0) <- t.(0) lxor rcon.((i / nk) - 1);
        t
      end
      else if nk = 8 && i mod nk = 4 then Array.map sub temp
      else temp
    in
    words.(i) <- Array.init 4 (fun j -> words.(i - nk).(j) lxor temp.(j))
  done;
  let round_keys =
    Array.init (rounds + 1) (fun r ->
        Array.init 16 (fun j -> words.((4 * r) + (j / 4)).(j mod 4)))
  in
  { round_keys; rounds }

(* --- block encryption ------------------------------------------------------ *)

let add_round_key (state : int array) (rk : int array) : unit =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes (state : int array) : unit =
  for i = 0 to 15 do
    state.(i) <- sub state.(i)
  done

(* State is column-major: byte (row, col) at index 4*col + row. *)
let shift_rows (state : int array) : unit =
  let copy = Array.copy state in
  for col = 0 to 3 do
    for row = 1 to 3 do
      state.((4 * col) + row) <- copy.((4 * ((col + row) mod 4)) + row)
    done
  done

let mix_columns (state : int array) : unit =
  for col = 0 to 3 do
    let o = 4 * col in
    let a0 = state.(o) and a1 = state.(o + 1) and a2 = state.(o + 2) and a3 = state.(o + 3) in
    state.(o) <- gf_mul a0 2 lxor gf_mul a1 3 lxor a2 lxor a3;
    state.(o + 1) <- a0 lxor gf_mul a1 2 lxor gf_mul a2 3 lxor a3;
    state.(o + 2) <- a0 lxor a1 lxor gf_mul a2 2 lxor gf_mul a3 3;
    state.(o + 3) <- gf_mul a0 3 lxor a1 lxor a2 lxor gf_mul a3 2
  done

(* [encrypt_block k block] is the forward cipher on one 16-byte block
   (the only direction GCM needs). *)
let encrypt_block (k : key) (block : string) : string =
  if String.length block <> 16 then invalid_arg "Aes.encrypt_block: need 16 bytes";
  let state = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key state k.round_keys.(0);
  for round = 1 to k.rounds - 1 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state k.round_keys.(round)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state k.round_keys.(k.rounds);
  String.init 16 (fun i -> Char.chr state.(i))

(* --- GCM --------------------------------------------------------------------

   GHASH over GF(2^128) with the polynomial x^128 + x^7 + x^2 + x + 1,
   bit-reflected per SP 800-38D. Blocks are (hi, lo) 64-bit pairs. *)

type block128 = { hi : int64; lo : int64 }

let block_of_string (s : string) (off : int) : block128 =
  let word o =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + o + i]))
    done;
    !v
  in
  { hi = word 0; lo = word 8 }

let string_of_block (b : block128) : string =
  String.init 16 (fun i ->
      let w = if i < 8 then b.hi else b.lo in
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical w (8 * (7 - (i mod 8)))) 0xffL)))

let block_xor a b = { hi = Int64.logxor a.hi b.hi; lo = Int64.logxor a.lo b.lo }

let zero_block = { hi = 0L; lo = 0L }

(* GF(2^128) multiply, MSB-first bit order (SP 800-38D algorithm 1). *)
let gf128_mul (x : block128) (y : block128) : block128 =
  let z = ref zero_block in
  let v = ref y in
  for i = 0 to 127 do
    let bit =
      if i < 64 then Int64.logand (Int64.shift_right_logical x.hi (63 - i)) 1L
      else Int64.logand (Int64.shift_right_logical x.lo (127 - i)) 1L
    in
    if bit = 1L then z := block_xor !z !v;
    (* v := v >> 1, with conditional reduction by R = 11100001 || 0^120. *)
    let lsb = Int64.logand !v.lo 1L in
    let lo = Int64.logor (Int64.shift_right_logical !v.lo 1) (Int64.shift_left !v.hi 63) in
    let hi = Int64.shift_right_logical !v.hi 1 in
    v := if lsb = 1L then { hi = Int64.logxor hi 0xe100000000000000L; lo } else { hi; lo }
  done;
  !z

let ghash (h : block128) (data : string) : block128 =
  let n = String.length data in
  let y = ref zero_block in
  let i = ref 0 in
  while !i < n do
    let chunk =
      if !i + 16 <= n then block_of_string data !i
      else begin
        let padded = Bytes.make 16 '\000' in
        Bytes.blit_string data !i padded 0 (n - !i);
        block_of_string (Bytes.unsafe_to_string padded) 0
      end
    in
    y := gf128_mul (block_xor !y chunk) h;
    i := !i + 16
  done;
  !y

let inc32 (b : block128) : block128 =
  let ctr = Int64.logand b.lo 0xffffffffL in
  let ctr' = Int64.logand (Int64.add ctr 1L) 0xffffffffL in
  { b with lo = Int64.logor (Int64.logand b.lo 0xffffffff00000000L) ctr' }

let gctr (k : key) (icb : block128) (data : string) : string =
  let n = String.length data in
  let out = Bytes.create n in
  let cb = ref icb in
  let i = ref 0 in
  while !i < n do
    let ks = encrypt_block k (string_of_block !cb) in
    let take = min 16 (n - !i) in
    for j = 0 to take - 1 do
      Bytes.set out (!i + j) (Char.chr (Char.code data.[!i + j] lxor Char.code ks.[j]))
    done;
    cb := inc32 !cb;
    i := !i + 16
  done;
  Bytes.unsafe_to_string out

let be64_string (v : int) : string =
  String.init 8 (fun i -> Char.chr ((v lsr (8 * (7 - i))) land 0xff))

let tag_size = 16
let nonce_size = 12

(* [gcm_encrypt k ~nonce ~aad pt] is (ciphertext, tag) per SP 800-38D
   with a 96-bit nonce. *)
let gcm_encrypt (k : key) ~(nonce : string) ?(aad = "") (plaintext : string) : string * string =
  if String.length nonce <> nonce_size then invalid_arg "Aes.gcm_encrypt: nonce must be 12 bytes";
  let h = block_of_string (encrypt_block k (String.make 16 '\000')) 0 in
  let j0 = block_of_string (nonce ^ "\000\000\000\001") 0 in
  let ct = gctr k (inc32 j0) plaintext in
  let pad_len s = (16 - (String.length s mod 16)) mod 16 in
  let ghash_input =
    aad ^ String.make (pad_len aad) '\000' ^ ct ^ String.make (pad_len ct) '\000'
    ^ be64_string (8 * String.length aad)
    ^ be64_string (8 * String.length ct)
  in
  let s = ghash h ghash_input in
  let tag = gctr k j0 (string_of_block s) in
  (ct, tag)

let gcm_decrypt (k : key) ~(nonce : string) ?(aad = "") ~(tag : string) (ct : string) :
    string option =
  if String.length nonce <> nonce_size then invalid_arg "Aes.gcm_decrypt: nonce must be 12 bytes";
  (* Recompute the tag over the received ciphertext, then decrypt. *)
  let h = block_of_string (encrypt_block k (String.make 16 '\000')) 0 in
  let j0 = block_of_string (nonce ^ "\000\000\000\001") 0 in
  let pad_len s = (16 - (String.length s mod 16)) mod 16 in
  let ghash_input =
    aad ^ String.make (pad_len aad) '\000' ^ ct ^ String.make (pad_len ct) '\000'
    ^ be64_string (8 * String.length aad)
    ^ be64_string (8 * String.length ct)
  in
  let s = ghash h ghash_input in
  let tag' = gctr k j0 (string_of_block s) in
  if Encoding.equal_ct tag tag' then Some (gctr k (inc32 j0) ct) else None

(* Byte-string helpers shared by the crypto modules and their tests. *)

let to_hex (s : string) : string =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex (s : string) : string =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Encoding.of_hex: odd length";
  String.init (n / 2) (fun i ->
      let v = int_of_string ("0x" ^ String.sub s (2 * i) 2) in
      Char.chr v)

let xor (a : string) (b : string) : string =
  if String.length a <> String.length b then invalid_arg "Encoding.xor: length mismatch";
  String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(* Constant-time(ish) equality: good enough against remote timing in a
   reproduction; OCaml strings preclude true constant-time guarantees. *)
let equal_ct (a : string) (b : string) : bool =
  String.length a = String.length b
  && begin
    let acc = ref 0 in
    String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
    !acc = 0
  end

(* Little-endian 32-bit integer codecs (ChaCha20). *)
let le32_get (s : string) (off : int) : int =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let le32_set (b : Bytes.t) (off : int) (v : int) : unit =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

(* Big-endian 32-bit (SHA-256) and 64-bit length codecs. *)
let be32_get (s : string) (off : int) : int =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let be32_set (b : Bytes.t) (off : int) (v : int) : unit =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let be64_set (b : Bytes.t) (off : int) (v : int) : unit =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * (7 - i))) land 0xff))
  done

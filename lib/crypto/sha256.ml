(* SHA-256 (FIPS 180-4), pure OCaml.

   32-bit words live in native ints; every operation masks back to 32 bits
   with [m32]. *)

let m32 = 0xffffffff

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land m32

type state = {
  mutable h0 : int; mutable h1 : int; mutable h2 : int; mutable h3 : int;
  mutable h4 : int; mutable h5 : int; mutable h6 : int; mutable h7 : int;
}

let init_state () =
  { h0 = 0x6a09e667; h1 = 0xbb67ae85; h2 = 0x3c6ef372; h3 = 0xa54ff53a;
    h4 = 0x510e527f; h5 = 0x9b05688c; h6 = 0x1f83d9ab; h7 = 0x5be0cd19 }

let compress (st : state) (block : string) (off : int) : unit =
  let w = Array.make 64 0 in
  for i = 0 to 15 do
    w.(i) <- Encoding.be32_get block (off + 4 * i)
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land m32
  done;
  let a = ref st.h0 and b = ref st.h1 and c = ref st.h2 and d = ref st.h3 in
  let e = ref st.h4 and f = ref st.h5 and g = ref st.h6 and h = ref st.h7 in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!h + s1 + ch + k.(i) + w.(i)) land m32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land m32 in
    h := !g; g := !f; f := !e;
    e := (!d + t1) land m32;
    d := !c; c := !b; b := !a;
    a := (t1 + t2) land m32
  done;
  st.h0 <- (st.h0 + !a) land m32;
  st.h1 <- (st.h1 + !b) land m32;
  st.h2 <- (st.h2 + !c) land m32;
  st.h3 <- (st.h3 + !d) land m32;
  st.h4 <- (st.h4 + !e) land m32;
  st.h5 <- (st.h5 + !f) land m32;
  st.h6 <- (st.h6 + !g) land m32;
  st.h7 <- (st.h7 + !h) land m32

let digest_size = 32

(* [digest msg] is the 32-byte SHA-256 hash of [msg]. *)
let digest (msg : string) : string =
  let st = init_state () in
  let len = String.length msg in
  let full_blocks = len / 64 in
  for i = 0 to full_blocks - 1 do
    compress st msg (64 * i)
  done;
  (* Padding: 0x80, zeros, 64-bit big-endian bit length. *)
  let remaining = len - (64 * full_blocks) in
  let tail_len = if remaining < 56 then 64 else 128 in
  let tail = Bytes.make tail_len '\000' in
  Bytes.blit_string msg (64 * full_blocks) tail 0 remaining;
  Bytes.set tail remaining '\x80';
  Encoding.be64_set tail (tail_len - 8) (len * 8);
  let tail = Bytes.unsafe_to_string tail in
  compress st tail 0;
  if tail_len = 128 then compress st tail 64;
  let out = Bytes.create 32 in
  List.iteri
    (fun i v -> Encoding.be32_set out (4 * i) v)
    [ st.h0; st.h1; st.h2; st.h3; st.h4; st.h5; st.h6; st.h7 ];
  Bytes.unsafe_to_string out

let hexdigest (msg : string) : string = Encoding.to_hex (digest msg)

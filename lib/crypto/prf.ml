(* Keyed pseudorandom functions.

   SAGMA needs PRFs in two places: the secret bucket-mapping functions
   [f_i : D_i -> N] (Algorithm 1) and the SSE label/mask derivations. Both
   are HMAC-SHA256 under domain-separated keys. *)

type key = string

let key_size = 32

let gen_key (drbg : Drbg.t) : key = Drbg.bytes drbg key_size

(* Derive an independent sub-key for a named domain. *)
let derive (k : key) ~(domain : string) : key =
  Hmac.hkdf ~salt:"sagma-prf-derive" ~info:domain ~ikm:k key_size

(* Raw PRF: 32 pseudorandom bytes. *)
let eval (k : key) (input : string) : string = Hmac.mac ~key:k input

(* PRF with output in [0, bound), bias < 2^-64 (128-bit reduction). *)
let eval_int (k : key) (input : string) ~(bound : int) : int =
  if bound <= 0 then invalid_arg "Prf.eval_int: bound <= 0";
  let raw = eval k input in
  (* Fold 16 bytes into an integer mod bound, Horner style. *)
  let acc = ref 0 in
  for i = 0 to 15 do
    acc := ((!acc * 256) + Char.code raw.[i]) mod bound
  done;
  !acc

(* Truncated PRF output, for labels. *)
let eval_trunc (k : key) (input : string) ~(len : int) : string =
  if len <= Hmac.tag_size then String.sub (eval k input) 0 len
  else Hmac.hkdf ~salt:"sagma-prf-long" ~info:input ~ikm:k len

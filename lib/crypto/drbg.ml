(* Deterministic random byte generator built on the ChaCha20 keystream.

   Every randomized component in this repository (key generation, dummy
   rows, workload synthesis) draws from a [Drbg.t] seeded explicitly, so
   entire experiments are reproducible from their seeds. *)

type t = {
  key : string;            (* 32-byte ChaCha20 key derived from the seed *)
  nonce : string;          (* fixed 12-byte stream nonce *)
  mutable counter : int;   (* next keystream block *)
  mutable buf : string;    (* unconsumed keystream *)
  mutable pos : int;
}

(* [create seed] derives an independent stream for every distinct seed. *)
let create (seed : string) : t =
  let okm = Hmac.hkdf ~salt:"sagma-drbg-v1" ~ikm:seed (Chacha20.key_size + Chacha20.nonce_size) in
  { key = String.sub okm 0 Chacha20.key_size;
    nonce = String.sub okm Chacha20.key_size Chacha20.nonce_size;
    counter = 0;
    buf = "";
    pos = 0 }

let of_int_seed (seed : int) : t = create (Printf.sprintf "int-seed:%d" seed)

(* [bytes t n] returns the next [n] bytes of the stream. *)
let bytes (t : t) (n : int) : string =
  let out = Buffer.create n in
  let rec fill need =
    if need > 0 then begin
      if t.pos >= String.length t.buf then begin
        t.buf <- Chacha20.block ~key:t.key ~nonce:t.nonce t.counter;
        t.counter <- t.counter + 1;
        t.pos <- 0
      end;
      let take = min need (String.length t.buf - t.pos) in
      Buffer.add_substring out t.buf t.pos take;
      t.pos <- t.pos + take;
      fill (need - take)
    end
  in
  fill n;
  Buffer.contents out

(* Adapter for {!Sagma_bigint.Bigint.rng}. *)
let rng (t : t) : int -> string = fun n -> bytes t n

(* Uniform int in [0, bound) by rejection sampling over 62-bit chunks. *)
let int_below (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Drbg.int_below: bound <= 0";
  let limit = max_int - (max_int mod bound) in
  let rec go () =
    let raw = bytes t 8 in
    let v = ref 0 in
    String.iter (fun c -> v := ((!v lsl 8) lor Char.code c) land max_int) raw;
    if !v < limit then !v mod bound else go ()
  in
  go ()

let int_range (t : t) (lo : int) (hi : int) : int =
  if hi < lo then invalid_arg "Drbg.int_range";
  lo + int_below t (hi - lo + 1)

let bool (t : t) : bool = Char.code (bytes t 1).[0] land 1 = 1

let float (t : t) : float =
  (* 53 random bits scaled to [0,1). *)
  let raw = bytes t 7 in
  let v = ref 0 in
  String.iter (fun c -> v := (!v lsl 8) lor Char.code c) raw;
  float_of_int (!v lsr 3) /. 9007199254740992.0

(* Fisher–Yates shuffle (in place). *)
let shuffle (t : t) (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick (t : t) (a : 'a array) : 'a =
  if Array.length a = 0 then invalid_arg "Drbg.pick: empty";
  a.(int_below t (Array.length a))

(* Deterministic authenticated encryption (SIV construction):

       tag = HMAC_{k1}(m)            (synthetic IV, truncated to 16 bytes)
       ct  = ChaCha20_{k2}(nonce = tag[0..11], m)
       out = tag ‖ ct

   Equal plaintexts yield equal ciphertexts — the property CryptDB's DET
   layer relies on for server-side grouping, and exactly the leakage the
   SAGMA paper criticizes (frequency of every group value). Decryption
   re-derives the tag for authenticity. *)

type key = { siv : string; enc : string }

let tag_size = 16

let of_master (master : string) : key =
  let okm = Hmac.hkdf ~salt:"sagma-det" ~ikm:master 64 in
  { siv = String.sub okm 0 32; enc = String.sub okm 32 32 }

let gen_key (drbg : Drbg.t) : key = of_master (Drbg.bytes drbg 32)

let encrypt (k : key) (m : string) : string =
  let tag = String.sub (Hmac.mac ~key:k.siv m) 0 tag_size in
  let nonce = String.sub tag 0 Chacha20.nonce_size in
  tag ^ Chacha20.encrypt ~key:k.enc ~nonce m

let decrypt (k : key) (c : string) : string option =
  if String.length c < tag_size then None
  else begin
    let tag = String.sub c 0 tag_size in
    let nonce = String.sub tag 0 Chacha20.nonce_size in
    let m = Chacha20.decrypt ~key:k.enc ~nonce (String.sub c tag_size (String.length c - tag_size)) in
    if Encoding.equal_ct tag (String.sub (Hmac.mac ~key:k.siv m) 0 tag_size) then Some m
    else None
  end

(** HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). *)

val block_size : int
(** SHA-256 block size, 64 bytes. *)

val tag_size : int
(** MAC tag size, 32 bytes. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]
    (keys longer than one block are hashed first, per the RFC). *)

val verify : key:string -> string -> string -> bool
(** [verify ~key msg tag] checks the tag in constant time. *)

val hkdf : ?salt:string -> ?info:string -> ikm:string -> int -> string
(** [hkdf ~salt ~info ~ikm len] is HKDF-Extract-then-Expand producing
    [len <= 255 * 32] output bytes. *)

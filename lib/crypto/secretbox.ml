(* Authenticated symmetric encryption: ChaCha20 + HMAC-SHA256
   (encrypt-then-MAC).

   Used for row payloads in the SSE index and anywhere the schemes need
   semantically secure symmetric encryption of byte strings. *)

type key = { enc : string; mac : string }

let key_size = 64

let of_master (master : string) : key =
  let okm = Hmac.hkdf ~salt:"sagma-secretbox" ~ikm:master 64 in
  { enc = String.sub okm 0 32; mac = String.sub okm 32 32 }

let gen_key (drbg : Drbg.t) : key = of_master (Drbg.bytes drbg 32)

let nonce_size = Chacha20.nonce_size
let tag_size = Hmac.tag_size

(* Wire format: nonce || ciphertext || tag. *)
let seal (k : key) (drbg : Drbg.t) (plaintext : string) : string =
  let nonce = Drbg.bytes drbg nonce_size in
  let ct = Chacha20.encrypt ~key:k.enc ~nonce plaintext in
  let tag = Hmac.mac ~key:k.mac (nonce ^ ct) in
  nonce ^ ct ^ tag

let open_exn (k : key) (box : string) : string =
  let n = String.length box in
  if n < nonce_size + tag_size then invalid_arg "Secretbox.open_exn: too short";
  let nonce = String.sub box 0 nonce_size in
  let ct = String.sub box nonce_size (n - nonce_size - tag_size) in
  let tag = String.sub box (n - tag_size) tag_size in
  if not (Hmac.verify ~key:k.mac (nonce ^ ct) tag) then
    invalid_arg "Secretbox.open_exn: authentication failed";
  Chacha20.decrypt ~key:k.enc ~nonce ct

let open_opt (k : key) (box : string) : string option =
  try Some (open_exn k box) with Invalid_argument _ -> None

let overhead = nonce_size + tag_size

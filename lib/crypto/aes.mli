(** AES-128/AES-256 (FIPS 197) and AES-GCM authenticated encryption
    (NIST SP 800-38D) — the standard scheme the paper's introduction
    references. Byte-oriented and correctness-first (not constant-time);
    used by the baselines and available as a second AEAD next to the
    ChaCha20 {!Secretbox}. *)

type key

val expand_key : string -> key
(** 16- or 32-byte raw keys. @raise Invalid_argument otherwise. *)

val encrypt_block : key -> string -> string
(** Forward cipher on one 16-byte block. *)

val gf_mul : int -> int -> int
(** GF(2⁸) multiplication (exposed for tests). *)

val tag_size : int
val nonce_size : int

val gcm_encrypt : key -> nonce:string -> ?aad:string -> string -> string * string
(** [(ciphertext, tag)] with a 96-bit nonce. Never reuse a nonce under
    one key. *)

val gcm_decrypt : key -> nonce:string -> ?aad:string -> tag:string -> string -> string option
(** [None] on authentication failure. *)

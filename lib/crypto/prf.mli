(** Keyed pseudorandom functions (HMAC-SHA256 based).

    SAGMA uses PRFs for the secret bucket-mapping functions [f_i]
    (Algorithm 1) and for the SSE label/mask derivations. *)

type key = string

val key_size : int
(** 32 bytes. *)

val gen_key : Drbg.t -> key

val derive : key -> domain:string -> key
(** [derive k ~domain] is an independent sub-key for a named domain. *)

val eval : key -> string -> string
(** Raw PRF: 32 pseudorandom bytes. *)

val eval_int : key -> string -> bound:int -> int
(** PRF with output in [\[0, bound)]; bias below [2^-64]. *)

val eval_trunc : key -> string -> len:int -> string
(** PRF with arbitrary output length. *)

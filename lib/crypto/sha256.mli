(** SHA-256 (FIPS 180-4), pure OCaml. *)

val digest_size : int
(** 32 bytes. *)

val digest : string -> string
(** [digest msg] is the 32-byte SHA-256 hash of [msg]. *)

val hexdigest : string -> string
(** [digest] rendered as lowercase hex. *)

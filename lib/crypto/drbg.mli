(** Deterministic random byte generator (ChaCha20-based).

    Every randomized component in this repository draws from a [Drbg.t]
    seeded explicitly, so entire experiments are reproducible from their
    seeds. Generators are stateful; two generators with the same seed
    produce the same stream regardless of how reads are chunked. *)

type t

val create : string -> t
(** [create seed] derives an independent stream per distinct seed. *)

val of_int_seed : int -> t

val bytes : t -> int -> string
(** [bytes t n] returns the next [n] bytes of the stream. *)

val rng : t -> int -> string
(** Adapter matching {!Sagma_bigint.Bigint.rng}. *)

val int_below : t -> int -> int
(** Uniform in [\[0, bound)], rejection-sampled (no modulo bias). *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [\[lo, hi\]]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)] with 53 random bits. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

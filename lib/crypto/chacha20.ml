(* ChaCha20 stream cipher (RFC 8439). *)

let m32 = 0xffffffff

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land m32

let quarter_round (st : int array) a b c d =
  st.(a) <- (st.(a) + st.(b)) land m32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land m32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land m32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land m32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let key_size = 32
let nonce_size = 12
let block_size = 64

(* One 64-byte keystream block for (key, nonce, counter). *)
let block ~(key : string) ~(nonce : string) (counter : int) : string =
  if String.length key <> key_size then invalid_arg "Chacha20.block: key must be 32 bytes";
  if String.length nonce <> nonce_size then invalid_arg "Chacha20.block: nonce must be 12 bytes";
  let st = Array.make 16 0 in
  st.(0) <- 0x61707865; st.(1) <- 0x3320646e; st.(2) <- 0x79622d32; st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- Encoding.le32_get key (4 * i)
  done;
  st.(12) <- counter land m32;
  for i = 0 to 2 do
    st.(13 + i) <- Encoding.le32_get nonce (4 * i)
  done;
  let w = Array.copy st in
  for _ = 1 to 10 do
    quarter_round w 0 4 8 12;
    quarter_round w 1 5 9 13;
    quarter_round w 2 6 10 14;
    quarter_round w 3 7 11 15;
    quarter_round w 0 5 10 15;
    quarter_round w 1 6 11 12;
    quarter_round w 2 7 8 13;
    quarter_round w 3 4 9 14
  done;
  let out = Bytes.create block_size in
  for i = 0 to 15 do
    Encoding.le32_set out (4 * i) ((w.(i) + st.(i)) land m32)
  done;
  Bytes.unsafe_to_string out

(* XOR [msg] with the keystream starting at block [counter] (RFC default 1
   for encryption, 0 reserved for MAC keys; the caller chooses). *)
let xor_stream ?(counter = 1) ~key ~nonce (msg : string) : string =
  let len = String.length msg in
  let out = Bytes.create len in
  let nblocks = (len + block_size - 1) / block_size in
  for b = 0 to nblocks - 1 do
    let ks = block ~key ~nonce (counter + b) in
    let off = b * block_size in
    let n = min block_size (len - off) in
    for i = 0 to n - 1 do
      Bytes.set out (off + i) (Char.chr (Char.code msg.[off + i] lxor Char.code ks.[i]))
    done
  done;
  Bytes.unsafe_to_string out

let encrypt = xor_stream
let decrypt = xor_stream

(* HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). *)

let block_size = 64
let tag_size = Sha256.digest_size

(* [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. *)
let mac ~(key : string) (msg : string) : string =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let key = key ^ String.make (block_size - String.length key) '\000' in
  let ipad = String.map (fun c -> Char.chr (Char.code c lxor 0x36)) key in
  let opad = String.map (fun c -> Char.chr (Char.code c lxor 0x5c)) key in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let verify ~key msg tag = Encoding.equal_ct (mac ~key msg) tag

(* HKDF-Extract then HKDF-Expand, SHA-256 based. *)
let hkdf ?(salt = "") ?(info = "") ~(ikm : string) (len : int) : string =
  if len > 255 * tag_size then invalid_arg "Hmac.hkdf: output too long";
  let prk = mac ~key:(if salt = "" then String.make tag_size '\000' else salt) ikm in
  let buf = Buffer.create len in
  let rec go t i =
    if Buffer.length buf < len then begin
      let t = mac ~key:prk (t ^ info ^ String.make 1 (Char.chr i)) in
      Buffer.add_string buf t;
      go t (i + 1)
    end
  in
  go "" 1;
  String.sub (Buffer.contents buf) 0 len

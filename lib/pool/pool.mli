(** A fixed-size domain pool with a shared task queue.

    Worker domains are spawned once at {!create} and fed through
    {!submit}, so the server path pays the (multi-millisecond) cost of
    [Domain.spawn] per process instead of per connection or per
    aggregation bucket.

    Deadlock discipline: a task running on a pool must never {!await} a
    future submitted to the {e same} pool — with every worker blocked in
    such a wait no worker is left to run the awaited tasks. The server
    therefore uses two instances (one for connections, one for
    aggregation chunks), and aggregation tasks never await anything.

    Observability: submissions bump the [pool.tasks] counter and the
    [pool.queue_depth] gauge (decremented when a worker picks the task
    up), visible in every metrics snapshot and over the Stats RPC. *)

type t

val create : ?name:string -> workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] domains that block on the
    queue. [workers = 0] builds an inline pool: {!submit} runs the task
    on the calling domain before returning — same API, sequential
    behavior. [name] only labels error messages.
    @raise Invalid_argument if [workers < 0]. *)

type 'a future
(** The pending result of a submitted task. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Any exception it raises is captured with its
    backtrace and re-raised by {!await}. The submitting domain's tracing
    context ([Sagma_obs.Trace.capture]) is installed around the task, so
    spans it opens and cost-counter deltas it records are attributed to
    the submitting request.
    @raise Invalid_argument if the pool was {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task finishes; returns its value or re-raises its
    exception (with the original backtrace). Safe to call from any
    domain, any number of times. *)

val shutdown : t -> unit
(** Stop accepting tasks, let the workers drain everything already
    queued, and join them. Idempotent; concurrent callers may return
    before the join completes (the first caller owns it). *)

val workers : t -> int
(** Number of worker domains (0 for an inline pool). *)

val queue_depth : t -> int
(** Tasks currently queued and not yet picked up by a worker. *)

(* A fixed-size domain pool: worker domains are spawned once and fed
   from a shared queue, so the cost of [Domain.spawn] is paid per
   process instead of per connection or per aggregation bucket.

   Two independent instances serve the two server-side uses — one pool
   runs connection handlers, another runs aggregation chunks — so a
   connection task awaiting its aggregation futures can never deadlock
   against the workers that must complete them. Aggregation tasks
   themselves never await anything.

   OCaml worker domains hold no runtime lock while blocked in
   [Condition.wait], so an idle pool costs nothing but memory. *)

module Obs = Sagma_obs.Metrics
module Trace = Sagma_obs.Trace

let m_tasks = Obs.counter "pool.tasks"
let g_queue_depth = Obs.gauge "pool.queue_depth"

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

type t = {
  p_name : string;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;   (* no further submits; workers drain and exit *)
  mutable joined : bool;   (* some caller already owns the Domain.join *)
  mutable domains : unit Domain.t array;
}

(* Workers drain the queue even after [closed] is set, so shutdown
   completes queued work rather than dropping it. *)
let rec worker_loop (p : t) : unit =
  Mutex.lock p.lock;
  while Queue.is_empty p.queue && not p.closed do
    Condition.wait p.nonempty p.lock
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.lock
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.lock;
    Obs.gauge_decr g_queue_depth;
    task ();
    worker_loop p
  end

let create ?(name = "pool") ~(workers : int) () : t =
  if workers < 0 then invalid_arg "Pool.create: workers must be >= 0";
  let p =
    { p_name = name; lock = Mutex.create (); nonempty = Condition.create ();
      queue = Queue.create (); closed = false; joined = false; domains = [||] }
  in
  p.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop p));
  p

let workers (p : t) : int = Array.length p.domains

let queue_depth (p : t) : int =
  Mutex.lock p.lock;
  let n = Queue.length p.queue in
  Mutex.unlock p.lock;
  n

let fulfill (fut : 'a future) (st : 'a state) : unit =
  Mutex.lock fut.f_lock;
  fut.f_state <- st;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_lock

let submit (p : t) (fn : unit -> 'a) : 'a future =
  let fut = { f_lock = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  (* Captured on the submitting domain: the worker installs the
     submitter's trace frame and cost scope around [fn], so spans and
     counter deltas of pooled work land in the request that submitted
     it rather than in the worker's own (empty) context. *)
  let ctx = Trace.capture () in
  let run () =
    let st =
      match Trace.with_ctx ctx fn with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    fulfill fut st
  in
  Obs.incr m_tasks;
  if Array.length p.domains = 0 then begin
    (* A zero-worker pool executes inline: callers get sequential
       behavior through the same API (the bench baseline, and a safe
       fallback anywhere a pool is optional). *)
    run ();
    fut
  end
  else begin
    Mutex.lock p.lock;
    if p.closed then begin
      Mutex.unlock p.lock;
      invalid_arg (Printf.sprintf "Pool.submit: pool %s is shut down" p.p_name)
    end;
    Queue.push run p.queue;
    Obs.gauge_incr g_queue_depth;
    Condition.signal p.nonempty;
    Mutex.unlock p.lock;
    fut
  end

let await (fut : 'a future) : 'a =
  Mutex.lock fut.f_lock;
  let rec wait () =
    match fut.f_state with
    | Pending ->
      Condition.wait fut.f_cond fut.f_lock;
      wait ()
    | Done v ->
      Mutex.unlock fut.f_lock;
      v
    | Failed (e, bt) ->
      Mutex.unlock fut.f_lock;
      Printexc.raise_with_backtrace e bt
  in
  wait ()

let shutdown (p : t) : unit =
  Mutex.lock p.lock;
  p.closed <- true;
  Condition.broadcast p.nonempty;
  let join_here = not p.joined in
  p.joined <- true;
  Mutex.unlock p.lock;
  if join_here then Array.iter Domain.join p.domains

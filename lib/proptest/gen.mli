(** Composable random-value generators over {!Sagma_crypto.Drbg}.

    A generator is a function of the DRBG, so the same seed always
    produces the same value — the property runner ({!Runner}) relies on
    this to make every failure replayable from its printed seed. *)

module Drbg = Sagma_crypto.Drbg
module Z = Sagma_bigint.Bigint

type 'a t = Drbg.t -> 'a

(** {1 Combinators} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val map3 : ('a -> 'b -> 'c -> 'd) -> 'a t -> 'b t -> 'c t -> 'd t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** {1 Scalars} *)

val bool : bool t

val int_range : int -> int -> int t
(** Uniform in [\[lo, hi\]]. *)

val int_below : int -> int t

val size : ?lo:int -> hi:int -> unit -> int t
(** Log-uniform in [\[lo, hi\]]: favors small sizes while still reaching
    [hi]. *)

val int_edgy : int -> int -> int t
(** Like {!int_range} but returns the exact bounds with elevated
    probability — integer properties live or die at the edges. *)

val oneofl : 'a list -> 'a t
val oneof : 'a t list -> 'a t
val frequency : (int * 'a t) list -> 'a t

(** {1 Structures} *)

val list_size : int t -> 'a t -> 'a list t
val list : ?max_len:int -> 'a t -> 'a list t
val array_size : int t -> 'a t -> 'a array t
val array : ?max_len:int -> 'a t -> 'a array t

val string_size : ?chars:char t -> int t -> string t
val string : ?max_len:int -> unit -> string t
(** Printable ASCII. *)

val bytes_size : int t -> string t
val bytes : ?max_len:int -> unit -> string t
(** Arbitrary bytes, including NUL and non-ASCII. *)

val shuffle : 'a list -> 'a list t
val subset : 'a list -> 'a list t
(** Non-empty subset, preserving order. *)

(** {1 Bigints} *)

val bigint_bits : int -> Z.t t
val bigint_below : Z.t -> Z.t t

val bigint_boundary : Z.t t
(** Values hugging the 26-bit limb boundaries of the bignum
    representation: [2^26k ± δ], all-ones limb runs, single high limbs
    with the top bit set — where carry, borrow and normalization bugs
    live. *)

val bigint : ?bits:int -> unit -> Z.t t
(** Mixes uniform values (up to [bits], default 192), limb-boundary
    values and the small constants 0, 1, 2. *)

val bigint_signed : ?bits:int -> unit -> Z.t t
val bigint_nonzero : ?bits:int -> unit -> Z.t t

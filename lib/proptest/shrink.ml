(* Counterexample shrinking.

   A shrinker maps a failing value to a lazy sequence of strictly
   "smaller" candidates; the runner greedily re-tests candidates and
   recurses on the first that still fails. Sequences must be finite and
   move toward a fixpoint (every candidate smaller under some
   well-founded measure), or shrinking would not terminate — the runner
   additionally caps total shrink steps as a backstop. *)

module Z = Sagma_bigint.Bigint

type 'a t = 'a -> 'a Seq.t

let nothing : 'a t = fun _ -> Seq.empty

(* Halving walk toward zero: x → 0, x/2, x - x/4, ..., pred x. *)
let int : int t =
 fun x ->
  if x = 0 then Seq.empty
  else begin
    let rec candidates step () =
      if step = 0 then Seq.Nil
      else Seq.Cons (x - step, candidates (step / 2))
    in
    candidates x
  end

(* Shrink toward [lo] rather than 0. *)
let int_toward (lo : int) : int t =
 fun x -> Seq.map (fun d -> lo + d) (int (x - lo))

let bigint : Z.t t =
 fun x ->
  if Z.is_zero x then Seq.empty
  else begin
    let rec candidates step () =
      if Z.is_zero step then Seq.Nil
      else Seq.Cons (Z.sub x step, candidates (Z.shift_right step 1))
    in
    candidates x
  end

let option (shrink : 'a t) : 'a option t = function
  | None -> Seq.empty
  | Some x -> Seq.cons None (Seq.map (fun y -> Some y) (shrink x))

let pair (sa : 'a t) (sb : 'b t) : ('a * 'b) t =
 fun (a, b) ->
  Seq.append (Seq.map (fun a' -> (a', b)) (sa a)) (Seq.map (fun b' -> (a, b')) (sb b))

let triple (sa : 'a t) (sb : 'b t) (sc : 'c t) : ('a * 'b * 'c) t =
 fun (a, b, c) ->
  List.to_seq
    [ Seq.map (fun a' -> (a', b, c)) (sa a);
      Seq.map (fun b' -> (a, b', c)) (sb b);
      Seq.map (fun c' -> (a, b, c')) (sc c) ]
  |> Seq.concat

(* Structural list shrinking: drop halves, then quarters, ..., then
   single elements, then shrink elements in place. *)
let list ?(shrink_elt : 'a t = nothing) () : 'a list t =
 fun xs ->
  let n = List.length xs in
  if n = 0 then Seq.empty
  else begin
    let drop_chunk chunk =
      (* all ways to remove [chunk] consecutive elements *)
      Seq.init (n - chunk + 1) (fun at ->
          List.filteri (fun i _ -> i < at || i >= at + chunk) xs)
    in
    let rec chunks c () = if c = 0 then Seq.Nil else Seq.Cons (c, chunks (c / 2)) in
    let removals = Seq.concat_map drop_chunk (chunks n) in
    let in_place =
      Seq.concat
        (Seq.init n (fun i ->
             Seq.map
               (fun x' -> List.mapi (fun j x -> if j = i then x' else x) xs)
               (shrink_elt (List.nth xs i))))
    in
    Seq.append removals in_place
  end

let array ?(shrink_elt : 'a t = nothing) () : 'a array t =
 fun xs -> Seq.map Array.of_list (list ~shrink_elt () (Array.to_list xs))

let string : string t =
 fun s ->
  let chars = List.init (String.length s) (String.get s) in
  Seq.map
    (fun cs -> String.init (List.length cs) (List.nth cs))
    (list ~shrink_elt:(fun c -> if c = 'a' then Seq.empty else Seq.return 'a') () chars)
